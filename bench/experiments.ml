(* Experiment harness: one section per experiment of DESIGN.md section 5.

   The paper (SPAA 2014) is a theory paper with no empirical tables or
   figures, so each experiment here validates a theorem/claim empirically;
   EXPERIMENTS.md records the claim-versus-measurement ledger that these
   tables feed. *)

module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module H = Hgp_hierarchy.Hierarchy
module Tree = Hgp_tree.Tree
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module Pipeline = Hgp_core.Pipeline
module Tree_dp = Hgp_core.Tree_dp
module Feasible = Hgp_core.Feasible
module Demand = Hgp_core.Demand
module B = Hgp_baselines
module Prng = Hgp_util.Prng
module Stats = Hgp_util.Stats
module Tablefmt = Hgp_util.Tablefmt
module Ensemble = Hgp_racke.Ensemble

let fmt = Tablefmt.fmt_float

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1 — Lemma 2: assignment cost (Eq. 1) = mirror cost (Eq. 3).        *)

let e1_cost_identity () =
  let rng = Prng.create 101 in
  let hierarchies =
    [ ("dual_socket", H.Presets.dual_socket); ("quad_socket", H.Presets.quad_socket);
      ("cluster", H.Presets.cluster) ]
  in
  let rows =
    List.concat_map
      (fun (hname, hy) ->
        List.map
          (fun spec ->
            let inst = spec.Hgp_workloads.Presets.build rng hy in
            let trials = 50 in
            let max_rel = ref 0. in
            for _ = 1 to trials do
              let p =
                Array.init (Instance.n inst) (fun _ -> Prng.int rng (H.num_leaves hy))
              in
              let a = Cost.assignment_cost inst p in
              let m = Cost.mirror_cost inst p in
              let rel = Float.abs (a -. m) /. (1. +. Float.abs a) in
              if rel > !max_rel then max_rel := rel
            done;
            [ spec.Hgp_workloads.Presets.name; hname; string_of_int trials;
              Printf.sprintf "%.2e" !max_rel;
              (if !max_rel < 1e-9 then "EQUAL" else "DIFFER") ])
          Hgp_workloads.Presets.small_suite)
      hierarchies
  in
  Tablefmt.print ~title:"E1  Lemma 2: Eq.1 vs Eq.3 cost identity (random assignments)"
    ~header:[ "workload"; "hierarchy"; "trials"; "max rel diff"; "verdict" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2 — Lemma 1: normalizing cm preserves optimal solutions.           *)

let e2_normalization () =
  let rng = Prng.create 202 in
  let hy = H.create ~degs:[| 2; 2 |] ~cm:[| 12.; 5.; 2. |] ~leaf_capacity:1.0 in
  let hy_norm, offset = H.normalize hy in
  let rows =
    List.map
      (fun n ->
        let g = Gen.gnp_connected rng n 0.5 in
        let g = Gen.randomize_weights rng g ~lo:1.0 ~hi:5.0 in
        let w_total = Graph.total_weight g in
        let inst_raw = Instance.uniform_demands g hy ~load_factor:0.5 in
        let inst_norm = Instance.uniform_demands g hy_norm ~load_factor:0.5 in
        let p_raw, opt_raw =
          match B.Brute_force.exact inst_raw ~slack:1.0 with
          | Some r -> r
          | None -> ([||], nan)
        in
        let _, opt_norm =
          match B.Brute_force.exact inst_norm ~slack:1.0 with
          | Some r -> r
          | None -> ([||], nan)
        in
        let reconstructed = opt_norm +. (offset *. w_total) in
        let same_argmin =
          Array.length p_raw > 0
          && Float.abs (Cost.assignment_cost inst_norm p_raw +. (offset *. w_total) -. opt_raw)
             < 1e-6
        in
        [ string_of_int n; fmt opt_raw; fmt reconstructed;
          (if Float.abs (opt_raw -. reconstructed) < 1e-6 then "EQUAL" else "DIFFER");
          string_of_bool same_argmin ])
      [ 5; 6; 7; 8 ]
  in
  Tablefmt.print
    ~title:"E2  Lemma 1: OPT(raw cm) vs OPT(normalized cm) + cm(h).W (exact, gnp)"
    ~header:[ "n"; "OPT raw"; "OPT norm + off*W"; "verdict"; "optimum transfers" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — Theorems 2-4: the tree DP is cost-optimal for RHGPT.           *)

let e3_tree_dp_optimal () =
  let rng = Prng.create 303 in
  let rows =
    List.map
      (fun (h, cm, cp) ->
        let trials = 60 in
        let matches = ref 0 and feasible = ref 0 in
        let max_gap = ref 0. in
        for _ = 1 to trials do
          let n = 3 + Prng.int rng 5 in
          let g = Gen.randomize_weights rng (Gen.random_tree rng n) ~lo:1.0 ~hi:9.0 in
          let t, job_leaf = Tree.lift_internal_jobs (Tree.of_graph g ~root:0) in
          let demand_units = Array.make (Tree.n_nodes t) 0 in
          Array.iter (fun l -> demand_units.(l) <- 1 + Prng.int rng 2) job_leaf;
          let cfg = { Tree_dp.cm; cp_units = cp n; bucketing = None; prune = true; beam_width = None } in
          match (Tree_dp.solve t ~demand_units cfg, Tree_dp.brute_force t ~demand_units cfg) with
          | Some r, Some bf ->
            incr feasible;
            let gap = Float.abs (r.cost -. bf) in
            if gap < 1e-6 then incr matches;
            if gap > !max_gap then max_gap := gap
          | None, None -> ()
          | _ -> max_gap := infinity
        done;
        [ string_of_int h; string_of_int trials; string_of_int !feasible;
          Printf.sprintf "%d/%d" !matches !feasible; Printf.sprintf "%.1e" !max_gap ])
      [
        (1, [| 10.; 0. |], fun n -> [| 4 * n; 4 |]);
        (2, [| 10.; 3.; 0. |], fun n -> [| 4 * n; 8; 4 |]);
        (3, [| 10.; 5.; 2.; 0. |], fun n -> [| 4 * n; 12; 6; 3 |]);
      ]
  in
  Tablefmt.print
    ~title:"E3  Theorems 2-4: DP optimum vs exhaustive enumeration (random job trees)"
    ~header:[ "height h"; "trials"; "feasible"; "exact matches"; "max gap" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 5 + 2: capacity violation of the full tree pipeline.   *)

let e4_capacity_violation () =
  let rng = Prng.create 404 in
  let rows =
    List.map
      (fun h ->
        let degs = Array.make h 2 in
        let cm = Array.init (h + 1) (fun j -> float_of_int ((1 lsl (h - j)) - 1)) in
        let hy = H.create ~degs ~cm ~leaf_capacity:1.0 in
        let trials = 30 in
        let worst = ref 0. and costs_ok = ref 0 in
        for _ = 1 to trials do
          let n = 6 + Prng.int rng 10 in
          let g = Gen.randomize_weights rng (Gen.random_tree rng n) ~lo:1.0 ~hi:9.0 in
          let t = Tree.of_graph g ~root:0 in
          let demands = Array.init n (fun _ -> 0.15 +. Prng.float rng 0.5) in
          let total_cap = float_of_int (H.num_leaves hy) in
          let sum = Array.fold_left ( +. ) 0. demands in
          let demands =
            if sum > 0.8 *. total_cap then
              Array.map (fun d -> Float.max 0.01 (d *. 0.8 *. total_cap /. sum)) demands
            else demands
          in
          let options = { Solver.default_options with resolution = Some 8 } in
          (try
             let _, cost, relaxed, violation = Solver.solve_tree t ~demands hy ~options in
             if violation > !worst then worst := violation;
             if cost <= relaxed +. 1e-6 then incr costs_ok
           with Failure _ -> ())
        done;
        let bound = Feasible.theoretical_violation_bound ~h ~eps:0.25 in
        [ string_of_int h; string_of_int trials; Printf.sprintf "%.3f" !worst;
          Printf.sprintf "%.2f" bound;
          (if !worst <= bound then "WITHIN" else "EXCEEDED");
          string_of_int !costs_ok ])
      [ 1; 2; 3; 4 ]
  in
  Tablefmt.print
    ~title:
      "E4  Theorem 5: measured capacity violation vs (1+eps)(1+h) bound (HGPT pipeline)"
    ~header:
      [ "height h"; "trials"; "worst violation"; "bound"; "verdict"; "cost<=relaxed" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 1: end-to-end cost ratio vs the exact optimum.         *)

let e5_approx_ratio () =
  let rng = Prng.create 505 in
  let hy = H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 3.; 0. |] ~leaf_capacity:1.0 in
  let families =
    [
      ("gnp", fun n -> Gen.randomize_weights rng (Gen.gnp_connected rng n 0.5) ~lo:1.0 ~hi:5.0);
      ("tree", fun n -> Gen.randomize_weights rng (Gen.random_tree rng n) ~lo:1.0 ~hi:5.0);
      ("grid", fun n -> Gen.grid2d ~rows:2 ~cols:(n / 2));
    ]
  in
  let rows =
    List.map
      (fun (name, make) ->
        let ratios = ref [] in
        let trials = 12 in
        for _ = 1 to trials do
          let n = 6 + Prng.int rng 3 in
          let g = make n in
          let inst = Instance.uniform_demands g hy ~load_factor:0.6 in
          match B.Brute_force.exact inst ~slack:1.0 with
          | Some (_, opt) when opt > 1e-9 ->
            let sol = Solver.solve ~options:{ Solver.default_options with seed = Prng.int rng 10000 } inst in
            ratios := (sol.cost /. opt) :: !ratios
          | _ -> ()
        done;
        let r = Array.of_list !ratios in
        if Array.length r = 0 then [ name; "0"; "-"; "-"; "-" ]
        else
          [ name; string_of_int (Array.length r);
            Printf.sprintf "%.2f" (Stats.mean r);
            Printf.sprintf "%.2f" (snd (Stats.min_max r));
            Printf.sprintf "%.2f" (log (float_of_int 8)) ])
      families
  in
  Tablefmt.print
    ~title:"E5  Theorem 1: solver cost / exact OPT on tiny instances (O(log n) claim)"
    ~header:[ "family"; "samples"; "mean ratio"; "max ratio"; "ln n (scale ref)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 6/7 substrate: decomposition-tree cut distortion.      *)

let e6_tree_distortion () =
  let rng = Prng.create 606 in
  let families =
    [
      ("gnp", fun n -> Gen.gnp_connected rng n (6.0 /. float_of_int n));
      ("grid", fun n ->
        let side = int_of_float (sqrt (float_of_int n)) in
        Gen.grid2d ~rows:side ~cols:side);
      ("torus", fun n ->
        let side = max 3 (int_of_float (sqrt (float_of_int n))) in
        Gen.torus2d ~rows:side ~cols:side);
    ]
  in
  let sizes = [ 16; 32; 64; 128 ] in
  let rows =
    List.concat_map
      (fun (name, make) ->
        List.map
          (fun n ->
            let g = make n in
            let e = Ensemble.sample rng g ~size:4 in
            let avg = Ensemble.average_distortion e rng ~trials:30 in
            [ name; string_of_int (Graph.n g); Printf.sprintf "%.2f" avg;
              Printf.sprintf "%.2f" (log (float_of_int (Graph.n g))) ])
          sizes)
      families
  in
  Tablefmt.print
    ~title:
      "E6  Theorem 6 substrate: average cut distortion w_T/w_G of decomposition trees"
    ~header:[ "family"; "n"; "avg distortion"; "ln n (O(log n) ref)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — the motivating claim: hierarchy-aware beats flat baselines.    *)

let e7_baseline_compare () =
  let hierarchies =
    [ ("dual_socket", H.Presets.dual_socket); ("cluster", H.Presets.cluster) ]
  in
  let slack = 1.25 in
  List.iter
    (fun (hname, hy) ->
      let rows =
        List.concat_map
          (fun spec ->
            let rng = Prng.create 707 in
            let inst = spec.Hgp_workloads.Presets.build rng hy in
            let k = H.num_leaves hy in
            let capacity = slack *. H.leaf_capacity hy in
            let parts =
              (B.Multilevel.partition rng inst.graph ~demands:inst.demands ~k ~capacity)
                .parts
            in
            let sol =
              Solver.solve ~options:{ Solver.default_options with ensemble_size = 4 } inst
            in
            let refined, _ = B.Local_search.refine inst sol.assignment ~slack ~max_passes:8 in
            let portfolio =
              (B.Portfolio.solve rng inst ~slack ~refine_passes:8).B.Portfolio.best
            in
            let entries =
              [
                ("random", B.Placement.random rng inst ~slack);
                ("greedy", B.Placement.greedy inst ~slack ());
                ("kbgp-flat", B.Mapping.identity parts);
                ("kbgp+map", B.Mapping.optimize inst ~parts ~k);
                ("dual-recursive", B.Recursive_bisection.assign rng inst ~slack);
                ("hgp", sol.assignment);
                ("hgp+ls", refined);
                ("portfolio", portfolio.B.Portfolio.assignment);
              ]
            in
            let best =
              List.fold_left
                (fun acc (_, p) -> Float.min acc (Cost.assignment_cost inst p))
                infinity entries
            in
            List.map
              (fun (mname, p) ->
                let c = Cost.assignment_cost inst p in
                [
                  spec.Hgp_workloads.Presets.name; mname; fmt c;
                  Printf.sprintf "%.2f" (c /. best);
                  Printf.sprintf "%.2f" (Cost.max_violation inst p);
                ])
              entries)
          Hgp_workloads.Presets.small_suite
      in
      Tablefmt.print
        ~title:(Printf.sprintf "E7  baseline comparison on %s (cost; x = vs best)" hname)
        ~header:[ "workload"; "method"; "cost"; "x best"; "violation" ]
        rows)
    hierarchies

(* ------------------------------------------------------------------ *)
(* E8 — running-time scaling of the DP.                                *)

let e8_dp_scaling () =
  let rng = Prng.create 808 in
  (* Jobs carry heterogeneous unit demands at ~50% load so that the DP state
     space is genuinely exercised; beam is disabled so the exact Pareto
     frontier drives the time. *)
  let run_one ~n ~resolution ~degs =
    let h = Array.length degs in
    let cm = Array.init (h + 1) (fun j -> float_of_int (h - j)) in
    let hy = H.create ~degs ~cm ~leaf_capacity:1.0 in
    let g = Gen.randomize_weights rng (Gen.caterpillar ~spine:(n / 2) ~legs:1) ~lo:1.0 ~hi:5.0 in
    let t = Tree.of_graph g ~root:0 in
    let n = Graph.n g in
    let total_cap = float_of_int (H.num_leaves hy) in
    let unit = 1.0 /. float_of_int resolution in
    let demands =
      Array.init n (fun _ ->
          let target = 0.5 *. total_cap /. float_of_int n in
          let units = max 1 (int_of_float (target /. unit *. (0.5 +. Prng.float rng 1.0))) in
          Float.min 1.0 (float_of_int units *. unit))
    in
    let options =
      { Solver.default_options with resolution = Some resolution; beam_width = None }
    in
    let (_, _, _, _), dt = time (fun () -> Solver.solve_tree t ~demands hy ~options) in
    dt
  in
  let rows_n =
    List.map
      (fun n ->
        let resolution = max 8 (n / 8) in
        [ "n sweep (D ~ n)"; string_of_int n; string_of_int resolution; "2";
          Printf.sprintf "%.3f" (run_one ~n ~resolution ~degs:[| 4; 4 |]) ])
      [ 32; 64; 128; 256; 512 ]
  in
  let rows_r =
    List.map
      (fun r ->
        [ "resolution sweep"; "128"; string_of_int r; "2";
          Printf.sprintf "%.3f" (run_one ~n:128 ~resolution:r ~degs:[| 4; 4 |]) ])
      [ 8; 16; 32; 64; 128 ]
  in
  let rows_h =
    List.map
      (fun h ->
        let degs = Array.make h 2 in
        let resolution = max 8 (256 / (1 lsl h)) in
        [ "height sweep"; "128"; string_of_int resolution; string_of_int h;
          Printf.sprintf "%.3f" (run_one ~n:128 ~resolution ~degs) ])
      [ 1; 2; 3; 4 ]
  in
  Tablefmt.print
    ~title:"E8  DP runtime scaling (caterpillar HGPT instances; exact DP, seconds)"
    ~header:[ "sweep"; "n"; "resolution"; "height"; "time (s)" ]
    (rows_n @ rows_r @ rows_h)

(* ------------------------------------------------------------------ *)
(* E9 — Theorem 7: best-of-p decomposition trees.                      *)

let e9_ensemble_ablation () =
  let hy = H.Presets.dual_socket in
  let rows =
    List.concat_map
      (fun spec ->
        let rng = Prng.create 909 in
        let inst = spec.Hgp_workloads.Presets.build rng hy in
        List.map
          (fun p ->
            let sol =
              Solver.solve
                ~options:{ Solver.default_options with ensemble_size = p; seed = 11 }
                inst
            in
            [ spec.Hgp_workloads.Presets.name; string_of_int p; fmt sol.cost;
              string_of_int sol.tree_index ])
          [ 1; 2; 4; 8 ])
      [ List.nth Hgp_workloads.Presets.small_suite 0;
        List.nth Hgp_workloads.Presets.small_suite 2 ]
  in
  Tablefmt.print
    ~title:"E9  Theorem 7 ablation: solution cost vs ensemble size p (monotone non-increasing)"
    ~header:[ "workload"; "p trees"; "cost"; "winning tree" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — geometric signature bucketing ablation.                       *)

let e10_bucketing_ablation () =
  let rng = Prng.create 1010 in
  let hy = H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 3.; 0. |] ~leaf_capacity:1.0 in
  let n = 48 in
  let g = Gen.randomize_weights rng (Gen.random_tree rng n) ~lo:1.0 ~hi:9.0 in
  let t = Tree.of_graph g ~root:0 in
  let demands = Array.init n (fun _ -> 0.02 +. Prng.float rng 0.12) in
  let rows =
    List.map
      (fun (label, bucketing) ->
        let options =
          {
            Solver.default_options with
            resolution = Some 32;
            bucketing;
            beam_width = None;
          }
        in
        let (_, cost, relaxed, violation), dt =
          time (fun () -> Solver.solve_tree t ~demands hy ~options)
        in
        [ label; fmt relaxed; fmt cost; Printf.sprintf "%.3f" violation;
          Printf.sprintf "%.3f" dt ])
      [
        ("exact", None);
        ("delta=0.1", Some 0.1);
        ("delta=0.3", Some 0.3);
        ("delta=0.5", Some 0.5);
      ]
  in
  Tablefmt.print
    ~title:"E10  signature bucketing ablation (HGPT, n=48, resolution=32)"
    ~header:[ "mode"; "relaxed cost"; "final cost"; "violation"; "time (s)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 — decomposition shape strategy ablation.                        *)

let e11_strategy_ablation () =
  let hy = H.Presets.dual_socket in
  let strategies =
    [
      ("low_diameter", Ensemble.Pure Hgp_racke.Decomposition.Low_diameter);
      ("bfs_bisection", Ensemble.Pure Hgp_racke.Decomposition.Bfs_bisection);
      ("gomory_hu", Ensemble.Pure Hgp_racke.Decomposition.Gomory_hu);
      ("mixed", Ensemble.Mixed);
    ]
  in
  let rows =
    List.concat_map
      (fun spec ->
        let rng = Prng.create 1111 in
        let inst = spec.Hgp_workloads.Presets.build rng hy in
        List.map
          (fun (name, strategy) ->
            let sol =
              Solver.solve
                ~options:{ Solver.default_options with strategy; ensemble_size = 3; seed = 5 }
                inst
            in
            [ spec.Hgp_workloads.Presets.name; name; fmt sol.cost;
              Printf.sprintf "%.2f" sol.max_violation ])
          strategies)
      Hgp_workloads.Presets.small_suite
  in
  Tablefmt.print
    ~title:"E11  decomposition-tree shape ablation (3 trees each)"
    ~header:[ "workload"; "strategy"; "cost"; "violation" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — does the HGP cost predict simulated system behaviour?         *)

let e12_simulation_correlation () =
  let rng = Prng.create 1212 in
  let w =
    Hgp_workloads.Stream_dag.generate rng
      { Hgp_workloads.Stream_dag.default_params with n_sources = 10; pipeline_depth = 5 }
  in
  let hy = H.Presets.dual_socket in
  let inst = Hgp_workloads.Stream_dag.to_instance w hy ~load_factor:0.45 in
  let sw = Hgp_workloads.Stream_dag.to_sim_workload w ~demands:inst.Instance.demands in
  let cfg =
    {
      Hgp_sim.Des.default_config with
      duration = 30.0;
      warmup = 3.0;
      load = 0.75;
      comm_overhead = 2e-3;
    }
  in
  let sol = Solver.solve inst in
  let refined, _ = B.Local_search.refine inst sol.assignment ~slack:1.2 ~max_passes:8 in
  let placements =
    [
      ("random", B.Placement.random rng inst ~slack:1.25);
      ("greedy", B.Placement.greedy inst ~slack:1.25 ());
      ("kbgp+map",
        let k = H.num_leaves hy in
        let parts =
          (B.Multilevel.partition rng inst.Instance.graph ~demands:inst.Instance.demands ~k
             ~capacity:1.25)
            .parts
        in
        B.Mapping.optimize inst ~parts ~k);
      ("hgp", sol.assignment);
      ("hgp+ls", refined);
    ]
  in
  let measured =
    List.map
      (fun (name, p) ->
        let m = Hgp_sim.Des.run sw hy ~assignment:p cfg in
        (name, Cost.assignment_cost inst p, m))
      placements
  in
  let rows =
    List.map
      (fun (name, cost, (m : Hgp_sim.Des.metrics)) ->
        [
          name; fmt cost; Printf.sprintf "%.1f" m.throughput; string_of_int m.dropped;
          (if Float.is_nan m.avg_latency then "-"
           else Printf.sprintf "%.1f" (m.avg_latency *. 1e3));
          Printf.sprintf "%.2f" m.max_core_utilization;
        ])
      measured
  in
  Tablefmt.print
    ~title:
      "E12  HGP cost vs simulated stream execution (75% load; cost should track latency)"
    ~header:[ "placement"; "hgp cost"; "tuples/s"; "drops"; "avg lat (ms)"; "max util" ]
    rows;
  (* Rank agreement between cost and average latency (drops push latency of
     saturated placements up, so compare on the saturation indicator too). *)
  let by_cost =
    List.sort (fun (_, c1, _) (_, c2, _) -> compare c1 c2) measured |> List.map (fun (n, _, _) -> n)
  in
  Printf.printf "cost ranking (best first): %s\n" (String.concat " < " by_cost)

(* ------------------------------------------------------------------ *)
(* E13 — end-to-end scalability of the full pipeline.                  *)

let e13_pipeline_scaling () =
  let hy = H.Presets.dual_socket in
  let rows =
    List.concat_map
      (fun n ->
        let rng = Prng.create (1300 + n) in
        (* Uniform demands at 70% of capacity, clamped per leaf. *)
        let uniform g =
          let d =
            Float.min 1.0 (0.7 *. float_of_int (H.num_leaves hy) /. float_of_int (Graph.n g))
          in
          Instance.create g ~demands:(Array.make (Graph.n g) d) hy
        in
        let make =
          [
            ("gnp", fun () -> uniform (Gen.gnp_connected rng n (6.0 /. float_of_int n)));
            ("grid", fun () ->
              let side = int_of_float (sqrt (float_of_int n)) in
              uniform (Gen.grid2d ~rows:side ~cols:side));
          ]
        in
        List.map
          (fun (gname, build) ->
            let inst = build () in
            let sol, dt =
              time (fun () ->
                  Solver.solve
                    ~options:{ Solver.default_options with ensemble_size = 2; seed = 3 }
                    inst)
            in
            [ gname; string_of_int (Instance.n inst); Printf.sprintf "%.2f" dt;
              string_of_int sol.dp_states; Printf.sprintf "%.2f" sol.max_violation ])
          make)
      [ 64; 144; 256; 400 ]
  in
  Tablefmt.print
    ~title:"E13  end-to-end pipeline wall time (2 trees, dual_socket; seconds)"
    ~header:[ "family"; "n"; "time (s)"; "dp states"; "violation" ]
    rows

(* ------------------------------------------------------------------ *)
(* E14 — online HGP under churn: greedy-only vs periodic rebalance.    *)

let e14_dynamic_churn () =
  let hy = H.Presets.dual_socket in
  let run_policy ~resolve_period seed =
    let rng = Prng.create seed in
    let cfg =
      {
        Hgp_core.Dynamic.slack = 1.25;
        resolve_period;
        solver_options = { Solver.default_options with ensemble_size = 2; seed };
      }
    in
    let t = Hgp_core.Dynamic.create hy cfg in
    let live = ref [] in
    let cost_samples = ref [] in
    (* 150 churn events: 70% arrivals with locality-biased edges. *)
    for _ = 1 to 150 do
      if !live <> [] && Prng.float rng 1.0 < 0.3 then begin
        let victim = Prng.choose rng (Array.of_list !live) in
        Hgp_core.Dynamic.remove_task t victim;
        live := List.filter (fun x -> x <> victim) !live
      end
      else begin
        let recent = List.filteri (fun i _ -> i < 4) !live in
        let edges = List.map (fun id -> (id, 1. +. Prng.float rng 9.)) recent in
        let id = Hgp_core.Dynamic.add_task t ~demand:(0.05 +. Prng.float rng 0.25) ~edges in
        live := id :: !live
      end;
      cost_samples := Hgp_core.Dynamic.current_cost t :: !cost_samples
    done;
    let s = Hgp_core.Dynamic.stats t in
    (Stats.mean (Array.of_list !cost_samples), Hgp_core.Dynamic.current_cost t, s.migrations)
  in
  let rows =
    List.map
      (fun (name, period) ->
        let mean_cost, final_cost, migrations = run_policy ~resolve_period:period 14 in
        [ name; fmt mean_cost; fmt final_cost; string_of_int migrations ])
      [ ("greedy only", 0); ("rebalance/50", 50); ("rebalance/20", 20); ("rebalance/10", 10) ]
  in
  Tablefmt.print
    ~title:"E14  online churn (150 events): placement quality vs migration volume"
    ~header:[ "policy"; "mean cost"; "final cost"; "migrations" ]
    rows

(* ------------------------------------------------------------------ *)
(* E15 — resilience: supervisor overhead, deadline adherence, and the  *)
(* degradation ladder under injected faults (docs/ROBUSTNESS.md).      *)

let e15_resilience () =
  let hy = H.Presets.dual_socket in
  let make n =
    let rng = Prng.create (1500 + n) in
    let g = Gen.gnp_connected rng n (6.0 /. float_of_int n) in
    Instance.uniform_demands g hy ~load_factor:0.7
  in
  let options = { Solver.default_options with ensemble_size = 2; seed = 15 } in
  let fallbacks =
    [
      ( "portfolio",
        fun inst ->
          (B.Portfolio.solve ~include_hgp:false (Prng.create 15) inst ~slack:1.25
             ~refine_passes:2)
            .best.B.Portfolio.assignment );
      ( "recursive-bisection",
        fun inst -> B.Recursive_bisection.assign (Prng.create 15) inst ~slack:1.25 );
    ]
  in
  let supervised ?deadline_ms inst =
    match Solver.solve_supervised ~options ?deadline_ms ~fallbacks inst with
    | Ok s -> s
    | Error e -> failwith (Hgp_resilience.Hgp_error.to_string e)
  in
  (* (a) Happy-path overhead: the supervisor's isolation fences and the
     final re-certification versus the raw pipeline. *)
  let overhead_rows =
    List.map
      (fun n ->
        let inst = make n in
        let sol, t_plain = time (fun () -> Solver.solve ~options inst) in
        let sup, t_sup = time (fun () -> supervised inst) in
        [ string_of_int n; fmt sol.cost; fmt sup.Solver.solution.cost; sup.Solver.rung;
          Printf.sprintf "%.3f" t_plain; Printf.sprintf "%.3f" t_sup;
          Printf.sprintf "%+.0f%%"
            (100. *. (t_sup -. t_plain) /. Float.max 1e-9 t_plain) ])
      [ 64; 144; 256 ]
  in
  Tablefmt.print ~title:"E15a  supervisor overhead (no faults, no deadline)"
    ~header:[ "n"; "plain cost"; "sup cost"; "rung"; "plain (s)"; "sup (s)"; "overhead" ]
    overhead_rows;
  (* (b) Deadline adherence: observed wall time must track the budget, and
     tighter budgets must descend to cheaper rungs, never fail. *)
  let inst = make 400 in
  let deadline_rows =
    List.map
      (fun budget_ms ->
        let sup, dt = time (fun () -> supervised ~deadline_ms:budget_ms inst) in
        [ Printf.sprintf "%.0f" budget_ms; Printf.sprintf "%.0f" (dt *. 1e3);
          sup.Solver.rung; string_of_bool sup.Solver.degraded;
          Printf.sprintf "%.2f" sup.Solver.solution.max_violation ])
      [ 5.; 25.; 100.; 1000.; 10000. ]
  in
  Tablefmt.print
    ~title:"E15b  deadline adherence on n=400 (wall time vs budget; winning rung)"
    ~header:[ "budget (ms)"; "observed (ms)"; "rung"; "degraded"; "violation" ]
    deadline_rows;
  (* (c) Degradation ladder under injected faults: every plan must end in a
     certified assignment, stepping down only as far as the faults force. *)
  let plan s = Result.get_ok (Hgp_resilience.Faults.parse s) in
  let inst = make 144 in
  let fault_rows =
    List.map
      (fun (label, p) ->
        let sup =
          match p with
          | None -> supervised inst
          | Some p -> Hgp_resilience.Faults.with_plan (plan p) (fun () -> supervised inst)
        in
        [ label; sup.Solver.rung;
          string_of_int (List.length sup.Solver.tree_failures);
          fmt sup.Solver.solution.cost;
          Printf.sprintf "%.2f" sup.Solver.solution.max_violation ])
      [
        ("none", None);
        ("one tree crashes", Some "seed=7;tree_dp.solve=crash@1");
        ("every build crashes", Some "seed=7;decomposition.build=crash");
        ("packer drops a leaf", Some "seed=7;feasible.pack=corrupt");
        ("DP corrupts kappa", Some "seed=7;tree_dp.solve=corrupt");
      ]
  in
  Tablefmt.print
    ~title:"E15c  degradation ladder under injected faults (n=144; all certified)"
    ~header:[ "fault plan"; "rung"; "tree failures"; "cost"; "violation" ]
    fault_rows

(* ------------------------------------------------------------------ *)
(* E16 — artifact reuse: cold vs warm latency, cache hit rate over a   *)
(* repeated solve / a portfolio rerun / an eps sweep                   *)
(* (docs/ARCHITECTURE.md).                                             *)

let e16_artifact_reuse () =
  let hy = H.Presets.dual_socket in
  let rng = Prng.create 1600 in
  let g = Gen.gnp_connected rng 200 0.03 in
  let inst = Instance.uniform_demands g hy ~load_factor:0.7 in
  let options = { Solver.default_options with ensemble_size = 2; seed = 16 } in
  let combined () =
    List.fold_left
      (fun (h, m) (_, st) ->
        (h + st.Hgp_util.Lru.hits, m + st.Hgp_util.Lru.misses))
      (0, 0) (Pipeline.cache_stats ())
  in
  let pct h m = Printf.sprintf "%.0f%%" (100. *. float_of_int h /. float_of_int (max 1 (h + m))) in
  (* (a) Repeated solve: one cold, three warm.  The warm runs must be served
     from the packed cache, bit-identical to the cold answer. *)
  Pipeline.clear_caches ();
  Pipeline.reset_cache_stats ();
  let cold, t_cold = time (fun () -> Solver.solve ~options inst) in
  let warms = List.init 3 (fun _ -> time (fun () -> Solver.solve ~options inst)) in
  let t_warm = List.fold_left (fun acc (_, t) -> acc +. t) 0. warms /. 3. in
  let identical =
    List.for_all (fun ((w : Solver.solution), _) -> w.assignment = cold.Solver.assignment) warms
  in
  let a_hits, a_misses = combined () in
  (* (b) The same portfolio run twice: the second run's hgp candidate reuses
     both artifacts. *)
  Pipeline.clear_caches ();
  Pipeline.reset_cache_stats ();
  let solve_portfolio () =
    B.Portfolio.solve ~solver_options:options (Prng.create 16) inst ~slack:1.25
      ~refine_passes:1
  in
  let _, t_p1 = time solve_portfolio in
  let _, t_p2 = time solve_portfolio in
  let b_hits, b_misses = combined () in
  (* (c) An eps sweep re-packs per eps (the prepared key digests eps) but
     never re-samples the embedding (the ensemble key does not). *)
  Pipeline.reset_cache_stats ();
  let _, t_sweep =
    time (fun () ->
        List.iter
          (fun eps -> ignore (Solver.solve ~options:{ options with eps } inst))
          [ 0.2; 0.3; 0.4; 0.5 ])
  in
  let e_st = List.assoc "ensemble" (Pipeline.cache_stats ()) in
  let rows =
    [
      [ "repeated solve (1 cold + 3 warm)"; Printf.sprintf "%.3f" t_cold;
        Printf.sprintf "%.4f" t_warm; Printf.sprintf "%.0fx" (t_cold /. Float.max 1e-9 t_warm);
        Printf.sprintf "%d/%d" a_hits (a_hits + a_misses); pct a_hits a_misses ];
      [ "portfolio rerun"; Printf.sprintf "%.3f" t_p1; Printf.sprintf "%.3f" t_p2;
        Printf.sprintf "%.1fx" (t_p1 /. Float.max 1e-9 t_p2);
        Printf.sprintf "%d/%d" b_hits (b_hits + b_misses); pct b_hits b_misses ];
      [ "eps sweep x4 (embed reuse)"; Printf.sprintf "%.3f" t_sweep; "-"; "-";
        Printf.sprintf "ens %d/%d" e_st.Hgp_util.Lru.hits
          (e_st.Hgp_util.Lru.hits + e_st.Hgp_util.Lru.misses);
        pct e_st.Hgp_util.Lru.hits e_st.Hgp_util.Lru.misses ];
    ]
  in
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "E16  artifact reuse on n=200 gnp/dual_socket (warm bit-identical: %b)" identical)
    ~header:[ "scenario"; "cold (s)"; "warm (s)"; "speedup"; "cache hits"; "hit rate" ]
    rows

(* ------------------------------------------------------------------ *)
(* E17 — batch solve service: 32 requests (8 distinct x 4 duplicates)  *)
(* through the sharded scheduler over 4 workers, versus solving each   *)
(* request one-shot with cold caches.  Responses must be bit-identical *)
(* to the one-shot answers (docs/SERVING.md).                          *)

module Protocol = Hgp_server.Protocol
module Server = Hgp_server.Server

let e17_batch_service () =
  let hy = H.Presets.dual_socket in
  let distinct = 8 and dups = 4 and workers = 4 in
  let insts =
    Array.init distinct (fun i ->
        let rng = Prng.create (1700 + i) in
        Instance.uniform_demands (Gen.gnp_connected rng 150 0.04) hy ~load_factor:0.7)
  in
  let options i = { Solver.default_options with ensemble_size = 2; seed = 1700 + i } in
  (* Sequential one-shot: every request solved in isolation, nothing shared
     (caches cleared per request, as separate processes would behave). *)
  let reference = Array.make distinct [||] in
  let (), t_seq =
    time (fun () ->
        for d = 0 to dups - 1 do
          for i = 0 to distinct - 1 do
            Pipeline.clear_caches ();
            let s = Solver.solve ~options:(options i) insts.(i) in
            if d = 0 then reference.(i) <- s.Solver.assignment
          done
        done)
  in
  (* The same 32 requests as one batch over the service. *)
  Pipeline.clear_caches ();
  let server = Server.create ~config:{ Server.workers; queue_limit = 64; slack = 1.25 } () in
  let identical = ref true in
  let responses = ref [] in
  let (), t_batch =
    time (fun () ->
        for d = 0 to dups - 1 do
          for i = 0 to distinct - 1 do
            match
              Server.submit server
                (Protocol.inline_request
                   ~id:(Printf.sprintf "i%d-d%d" i d)
                   ~trees:2 ~seed:(1700 + i) insts.(i))
            with
            | `Admitted -> ()
            | `Rejected r -> failwith ("E17: rejected " ^ Protocol.response_to_line r)
          done
        done;
        responses := Server.drain server)
  in
  List.iter
    (fun (r : Protocol.response) ->
      match r.Protocol.outcome with
      | Protocol.Solved s ->
        let i = Scanf.sscanf r.Protocol.id "i%d-d%d" (fun i _ -> i) in
        if s.Protocol.assignment <> reference.(i) then identical := false
      | Protocol.Updated _ -> failwith ("E17: unexpected update response " ^ r.Protocol.id)
      | Protocol.Failed e ->
        failwith ("E17: " ^ r.Protocol.id ^ " failed: " ^ Hgp_resilience.Hgp_error.to_string e))
    !responses;
  let st = Server.stats server in
  ignore (Server.shutdown server);
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "E17  batch service: %d reqs (%dx%d) on %d workers (bit-identical: %b)"
         (distinct * dups) distinct dups workers !identical)
    ~header:[ "mode"; "total (s)"; "speedup"; "coalesced"; "cache hits"; "steals" ]
    [
      [ "sequential one-shot"; Printf.sprintf "%.3f" t_seq; "1.0x"; "-"; "-"; "-" ];
      [ "batch service"; Printf.sprintf "%.3f" t_batch;
        Printf.sprintf "%.1fx" (t_seq /. Float.max 1e-9 t_batch);
        string_of_int st.Server.coalesced; string_of_int st.Server.cache_hits;
        string_of_int st.Server.steals ];
    ]

(* ------------------------------------------------------------------ *)
(* E18 — flat DP kernel: the workspace/arena rewrite of Tree_dp.solve  *)
(* against the Hashtbl reference implementation it replaced (kept as   *)
(* the differential oracle in test/support).  Same instance as the     *)
(* tree_dp.solve_large microbench: n=256, uniform 4^3 hierarchy,       *)
(* resolution 8, beam 512.  Cold = fresh workspace per solve; warm =   *)
(* one lease reused across solves (the pipeline's steady state).       *)

module Ref_dp = Test_support.Tree_dp_reference
module Workspace = Hgp_util.Workspace

let e18_dp_kernel () =
  let rng = Prng.create 1800 in
  let g = Gen.randomize_weights rng (Gen.gnp_connected rng 256 0.05) ~lo:1.0 ~hi:5.0 in
  let d = Hgp_racke.Decomposition.build (Prng.create 2) g in
  let tree = Hgp_racke.Decomposition.tree d in
  let demand_units = Array.make (Tree.n_nodes tree) 0 in
  Array.iter (fun l -> demand_units.(l) <- 1) (Tree.leaves tree);
  let cfg =
    Tree_dp.config_of_hierarchy
      (H.Presets.uniform ~branching:4 ~height:3)
      ~resolution:8 ~beam_width:512 ()
  in
  let iters = 5 in
  (* Median wall time and mean allocation over [iters] runs of [f]. *)
  let measure f =
    let samples =
      List.init iters (fun _ ->
          let b0 = Gc.allocated_bytes () in
          let r, dt = time f in
          (r, dt, Gc.allocated_bytes () -. b0))
    in
    let times = List.map (fun (_, dt, _) -> dt) samples |> List.sort compare in
    let med = List.nth times (iters / 2) in
    let bytes =
      List.fold_left (fun acc (_, _, b) -> acc +. b) 0. samples /. float_of_int iters
    in
    let r, _, _ = List.hd samples in
    (r, med, bytes)
  in
  let ref_r, t_ref, b_ref = measure (fun () -> Ref_dp.solve tree ~demand_units cfg) in
  let cold_r, t_cold, b_cold =
    measure (fun () ->
        (* a private fresh workspace: every arena starts at seed capacity *)
        let lease = { Workspace.workspace = Workspace.create (); slot = None } in
        Tree_dp.solve ~workspace:lease tree ~demand_units cfg)
  in
  let warm_lease = Workspace.acquire () in
  let warm_r, t_warm, b_warm =
    measure (fun () -> Tree_dp.solve ~workspace:warm_lease tree ~demand_units cfg)
  in
  Workspace.release warm_lease;
  let cost = function
    | Some (r : Tree_dp.result) -> r.cost
    | None -> nan
  in
  let identical =
    match (ref_r, cold_r, warm_r) with
    | Some a, Some b, Some c ->
      Float.equal a.Tree_dp.cost b.Tree_dp.cost
      && Float.equal a.Tree_dp.cost c.Tree_dp.cost
      && a.Tree_dp.kappa = b.Tree_dp.kappa
      && a.Tree_dp.kappa = c.Tree_dp.kappa
      && a.Tree_dp.states_explored = b.Tree_dp.states_explored
    | _ -> false
  in
  (* Recorded in BENCH_obs.jsonl (bench/main.ml dumps the registry at
     exit) so the kernel's before/after is tracked alongside counters. *)
  Hgp_obs.Obs.gauge "e18.reference_ms" (t_ref *. 1000.);
  Hgp_obs.Obs.gauge "e18.cold_ms" (t_cold *. 1000.);
  Hgp_obs.Obs.gauge "e18.warm_ms" (t_warm *. 1000.);
  Hgp_obs.Obs.gauge "e18.reference_bytes" b_ref;
  Hgp_obs.Obs.gauge "e18.cold_bytes" b_cold;
  Hgp_obs.Obs.gauge "e18.warm_bytes" b_warm;
  let mb b = Printf.sprintf "%.2f" (b /. 1e6) in
  let row name t b r =
    [ name; Printf.sprintf "%.4f" t; mb b; Printf.sprintf "%.1fx" (t_ref /. Float.max 1e-9 t);
      Printf.sprintf "%.1fx" (b_ref /. Float.max 1. b);
      fmt (cost r) ]
  in
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "E18  flat DP kernel vs Hashtbl reference, n=256 beam=512 (bit-identical: %b)"
         identical)
    ~header:[ "variant"; "time (s)"; "alloc MB/solve"; "speedup"; "alloc ratio"; "cost" ]
    [
      row "reference (Hashtbl)" t_ref b_ref ref_r;
      row "flat kernel, cold ws" t_cold b_cold cold_r;
      row "flat kernel, warm ws" t_warm b_warm warm_r;
    ]

(* ------------------------------------------------------------------ *)
(* E19 — the multilevel V-cycle front-end (docs/MULTILEVEL.md) vs the  *)
(* exact pipeline at scale, on stream DAGs from n=256 to n=10^6.  The  *)
(* exact attempt runs under the supervisor's cooperative deadline: if  *)
(* the full-ensemble rung cannot finish inside the cap, the row        *)
(* reports the cap as a lower bound on its time (at 10^5 the exact     *)
(* path was still running after 15 minutes when probed unbounded; the  *)
(* 10^6 attempt is skipped outright).                                  *)

module V = Hgp_multilevel.Vcycle

let e19_multilevel_vcycle () =
  let hy = H.Presets.dual_socket in
  let solver = { Solver.default_options with ensemble_size = 2; seed = 19 } in
  let vopts = { V.default_options with solver } in
  let exact_cap = 120. (* seconds *) in
  let make n_sources =
    let rng = Prng.create (1900 + n_sources) in
    let w =
      Hgp_workloads.Stream_dag.generate rng
        { Hgp_workloads.Stream_dag.default_params with n_sources }
    in
    Hgp_workloads.Stream_dag.to_instance w hy ~load_factor:0.6
  in
  (* n_sources is the generator knob; the emitted DAG lands near 5.5
     vertices per source. *)
  let sizes =
    [ ("256", 47, `Exact); ("1e4", 1830, `Capped); ("1e5", 18300, `Capped);
      ("1e6", 185000, `Skip) ]
  in
  let rows =
    List.map
      (fun (label, n_sources, exact_mode) ->
        let inst = make n_sources in
        let n = Instance.n inst in
        Pipeline.clear_caches ();
        let r_cold, t_cold = time (fun () -> V.solve ~options:vopts inst) in
        let _, t_warm = time (fun () -> V.solve ~options:vopts inst) in
        let refine_delta =
          List.fold_left
            (fun acc (lr : V.level_report) -> acc +. lr.V.gain)
            0. r_cold.V.level_reports
        in
        let cert = r_cold.V.coarse_certificate in
        let exact_s, speedup_s =
          let capped () =
            ( Printf.sprintf "> %.0f" exact_cap,
              Printf.sprintf "> %.0fx" (exact_cap /. Float.max 1e-9 t_cold) )
          in
          match exact_mode with
          | `Skip -> ("skipped", "-")
          | `Exact | `Capped -> (
            Pipeline.clear_caches ();
            let res, t_exact =
              time (fun () ->
                  Solver.solve_supervised ~options:solver
                    ~deadline_ms:(exact_cap *. 1000.) inst)
            in
            match res with
            | Ok sup when sup.Solver.rung = "ensemble" && not sup.Solver.degraded ->
              ( Printf.sprintf "%.2f" t_exact,
                Printf.sprintf "%.0fx" (t_exact /. Float.max 1e-9 t_cold) )
            | _ ->
              (* The full rung missed the cap and a cheaper rung answered:
                 the cap is a lower bound on the exact path's time. *)
              capped ())
        in
        Hgp_obs.Obs.gauge (Printf.sprintf "e19.vcycle_cold_ms.%s" label) (t_cold *. 1000.);
        Hgp_obs.Obs.gauge (Printf.sprintf "e19.vcycle_warm_ms.%s" label) (t_warm *. 1000.);
        Hgp_obs.Obs.gauge (Printf.sprintf "e19.coarsening_ratio.%s" label)
          r_cold.V.coarsening_ratio;
        Hgp_obs.Obs.gauge (Printf.sprintf "e19.refine_delta.%s" label) refine_delta;
        [
          label; string_of_int n; exact_s; Printf.sprintf "%.2f" t_cold;
          Printf.sprintf "%.3f" t_warm; speedup_s; string_of_int r_cold.V.levels;
          Printf.sprintf "%.0f" r_cold.V.coarsening_ratio;
          Printf.sprintf "%.0f" refine_delta;
          (if cert.Hgp_core.Verify.within_theorem_bound then "YES" else "NO");
        ])
      sizes
  in
  Tablefmt.print
    ~title:
      (Printf.sprintf
         "E19  multilevel V-cycle vs exact pipeline on stream DAGs (exact capped at %.0fs)"
         exact_cap)
    ~header:
      [ "size"; "n"; "exact (s)"; "vcycle cold (s)"; "warm (s)"; "speedup";
        "levels"; "ratio"; "refine delta"; "certified" ]
    rows

(* ------------------------------------------------------------------ *)
(* E20 — FM gain-bucket refinement with boundary re-solve vs the       *)
(* greedy pass, on the E19 stream-DAG scale points, over a regular     *)
(* and a ragged hierarchy.  The FM engine is stacked (warm-started     *)
(* from the greedy fixed point, docs/MULTILEVEL.md), so its final      *)
(* cost must never exceed greedy's — the ledger enforces that at       *)
(* every scale point, re-verifies every level in-band through the      *)
(* on_level hook, and checks per-level cost monotonicity from the      *)
(* level reports.                                                      *)

module Refine = Hgp_multilevel.Refine

let e20_fm_refinement () =
  let solver = { Solver.default_options with ensemble_size = 2; seed = 20 } in
  let hierarchies =
    [ ("dual_socket", H.Presets.dual_socket); ("ragged_rack", H.Presets.ragged_rack) ]
  in
  (* n_sources is the stream generator's knob; the DAG lands near 5.5
     vertices per source (same calibration as E19). *)
  let sizes = [ ("1e4", 1830); ("1e5", 18300); ("1e6", 185000) ] in
  let make hy n_sources =
    let rng = Prng.create (2000 + n_sources) in
    let w =
      Hgp_workloads.Stream_dag.generate rng
        { Hgp_workloads.Stream_dag.default_params with n_sources }
    in
    Hgp_workloads.Stream_dag.to_instance w hy ~load_factor:0.6
  in
  let rows =
    List.concat_map
      (fun (hname, hy) ->
        List.map
          (fun (label, n_sources) ->
            let inst = make hy n_sources in
            let n = Instance.n inst in
            Pipeline.clear_caches ();
            let levels_checked = ref 0 in
            let on_level level slack csr a =
              if not (Refine.in_band csr hy a ~slack) then
                failwith
                  (Printf.sprintf "E20 %s/%s: level %d assignment out of band"
                     hname label level);
              incr levels_checked
            in
            let run refine_algo boundary_resolve =
              let vopts =
                { V.default_options with solver; refine_algo; boundary_resolve;
                  on_level }
              in
              time (fun () -> V.solve ~options:vopts inst)
            in
            (* Greedy cold; the FM runs reuse the cached coarsening chain
               (its key is independent of the refinement options), so the
               three runs differ only in how levels are polished. *)
            let rg, tg = run Refine.Greedy false in
            let rf, tf = run (Refine.Fm { hill_climb = true }) false in
            let rb, tb = run (Refine.Fm { hill_climb = true }) true in
            let cost (r : V.result) = r.V.solution.Pipeline.cost in
            let cg = cost rg and cf = cost rf and cb = cost rb in
            (* The acceptance bar: stacked FM (+ boundary) never costlier
               than greedy at any scale point, on either hierarchy. *)
            List.iter
              (fun (tag, c) ->
                if c > cg +. 1e-6 then
                  failwith
                    (Printf.sprintf
                       "E20 %s/%s: %s cost %.3f regressed past greedy %.3f"
                       hname label tag c cg))
              [ ("fm", cf); ("fm+boundary", cb) ];
            let monotone =
              List.for_all
                (fun (lr : V.level_report) ->
                  lr.V.cost_after <= lr.V.cost_before +. 1e-9)
                (rf.V.level_reports @ rb.V.level_reports)
            in
            let resolves =
              List.length
                (List.filter
                   (fun (lr : V.level_report) -> lr.V.boundary_resolved)
                   rb.V.level_reports)
            in
            let delta_pct =
              if cg > 1e-9 then (cg -. cb) /. cg *. 100. else 0.
            in
            let certified =
              rb.V.coarse_certificate.Hgp_core.Verify.within_theorem_bound
            in
            let g sub v =
              Hgp_obs.Obs.gauge
                (Printf.sprintf "e20.%s.%s.%s" sub hname label) v
            in
            g "cost_greedy" cg;
            g "cost_fm" cf;
            g "cost_fm_boundary" cb;
            g "fm_boundary_ms" (tb *. 1000.);
            [
              hname; label; string_of_int n;
              Printf.sprintf "%.1f" cg; Printf.sprintf "%.2f" tg;
              Printf.sprintf "%.1f" cf; Printf.sprintf "%.2f" tf;
              Printf.sprintf "%.1f" cb; Printf.sprintf "%.2f" tb;
              Printf.sprintf "%.1f%%" delta_pct; string_of_int resolves;
              string_of_int !levels_checked;
              (if monotone then "YES" else "NO");
              (if certified then "YES" else "NO");
            ])
          sizes)
      hierarchies
  in
  Tablefmt.print
    ~title:
      "E20  FM refinement (stacked, hill-climb) vs greedy on stream DAGs; \
       every level re-verified in-band"
    ~header:
      [ "hierarchy"; "size"; "n"; "greedy"; "(s)"; "fm"; "(s)"; "fm+bnd";
        "(s)"; "delta"; "resolves"; "bands ok"; "monotone"; "certified" ]
    rows

(* ------------------------------------------------------------------ *)
(* E21 — incremental re-partitioning (docs/INCREMENTAL.md).  Part A:    *)
(* single-edge reweights against a warm multilevel session vs a         *)
(* cache-disabled cold solve on the post-delta instance — the cold run  *)
(* doubles as the bit-identity oracle, and every re-solve must come     *)
(* back certified.  Part B: drift streams (reweights + periodic         *)
(* structural edits) through Des.run_drift on both session backends,    *)
(* with the amortized incremental/cold ratio in the ledger.  The        *)
(* timing gate itself lives in CI (hgp_cli drift --assert-amortized);   *)
(* here only a conservative 5x tripwire guards the 1e5 speedup claim    *)
(* against wholesale regressions of the fast path.                      *)

module Delta = Hgp_core.Delta
module Des = Hgp_sim.Des

let e21_incremental () =
  let hy = H.Presets.dual_socket in
  let solver = { Solver.default_options with ensemble_size = 2; seed = 21 } in
  let vopts = { V.default_options with solver } in
  let make n_sources =
    let rng = Prng.create (2100 + n_sources) in
    let w =
      Hgp_workloads.Stream_dag.generate rng
        { Hgp_workloads.Stream_dag.default_params with n_sources }
    in
    Hgp_workloads.Stream_dag.to_instance w hy ~load_factor:0.6
  in
  let single_rows =
    List.map
      (fun (label, n_sources) ->
        let inst = make n_sources in
        let n = Instance.n inst in
        Pipeline.clear_caches ();
        let sess, _ = V.start_session ~options:vopts inst in
        let rng = Prng.create (31 + n_sources) in
        let steps = 3 in
        let t_incr = ref 0. and resolved = ref 0 and reused = ref 0 in
        let certified = ref true in
        for _ = 1 to steps do
          let delta =
            Des.drift_delta rng (V.session_instance sess) ~edits:1
              ~magnitude:0.05 ~structural:false
          in
          let rep, dt = time (fun () -> V.resolve_delta sess delta) in
          t_incr := !t_incr +. dt;
          resolved := !resolved + rep.V.u_resolved_subtrees;
          reused := !reused + rep.V.u_reused_subtrees;
          certified := !certified && rep.V.u_certified
        done;
        let mean_incr = !t_incr /. float_of_int steps in
        (* the oracle: a cold solve of the drifted instance with every
           cache bypassed must be bit-identical to the session's state *)
        let cold, t_cold =
          Pipeline.set_caching false;
          Fun.protect
            ~finally:(fun () -> Pipeline.set_caching true)
            (fun () ->
              Pipeline.clear_caches ();
              time (fun () -> V.solve ~options:vopts (V.session_instance sess)))
        in
        let identical =
          cold.V.solution.Pipeline.assignment = V.session_assignment sess
        in
        if not identical then
          failwith
            (Printf.sprintf "E21 %s: incremental state diverged from cold" label);
        if not !certified then
          failwith (Printf.sprintf "E21 %s: uncertified incremental result" label);
        let speedup = t_cold /. Float.max 1e-9 mean_incr in
        if label = "1e5" && speedup < 5. then
          failwith
            (Printf.sprintf
               "E21 %s: single-edge re-solve only %.1fx faster than cold" label
               speedup);
        Hgp_obs.Obs.gauge (Printf.sprintf "e21.incr_ms.%s" label)
          (mean_incr *. 1000.);
        Hgp_obs.Obs.gauge (Printf.sprintf "e21.cold_ms.%s" label) (t_cold *. 1000.);
        Hgp_obs.Obs.gauge (Printf.sprintf "e21.speedup.%s" label) speedup;
        [
          "single-edge"; label; string_of_int n; Printf.sprintf "%.2f" t_cold;
          Printf.sprintf "%.1f" (mean_incr *. 1000.);
          Printf.sprintf "%.1fx" speedup;
          string_of_int (!resolved / steps); string_of_int (!reused / steps);
          "-"; "YES"; "YES";
        ])
      [ ("1e4", 1830); ("1e5", 18300) ]
  in
  let drift_rows =
    List.map
      (fun (kind, label, n_sources, backend, params) ->
        let inst = make n_sources in
        let n = Instance.n inst in
        Pipeline.clear_caches ();
        let rng = Prng.create (77 + n_sources) in
        let r = Des.run_drift ~params rng inst backend in
        if not r.Des.d_all_identical then
          failwith (Printf.sprintf "E21 drift %s: diverged from cold" label);
        if not r.Des.d_all_certified then
          failwith (Printf.sprintf "E21 drift %s: uncertified step" label);
        Hgp_obs.Obs.gauge (Printf.sprintf "e21.amortized.%s.%s" kind label)
          r.Des.d_amortized;
        [
          Printf.sprintf "drift/%s" kind; label; string_of_int n;
          Printf.sprintf "%.2f" (r.Des.d_mean_cold_ms /. 1000.);
          Printf.sprintf "%.1f" r.Des.d_mean_incr_ms;
          Printf.sprintf "%.0f%%" (r.Des.d_amortized *. 100.);
          "-"; "-";
          Printf.sprintf "%d" r.Des.d_final_n;
          "YES"; "YES";
        ])
      [
        ( "exact", "1e3", 180,
          Des.Exact solver,
          { Des.default_drift_params with Des.steps = 8; structural_every = 4;
            cold_every = 4 } );
        ( "vcycle", "1e4", 1830,
          Des.Multilevel vopts,
          { Des.default_drift_params with Des.steps = 10; structural_every = 5;
            cold_every = 5 } );
        ( "vcycle", "1e5", 18300,
          Des.Multilevel vopts,
          { Des.default_drift_params with Des.steps = 10; magnitude = 0.05;
            cold_every = 5 } );
      ]
  in
  Tablefmt.print
    ~title:
      "E21  incremental re-partitioning: session re-solves vs cache-disabled \
       cold solves (bit-identity enforced, all steps certified)"
    ~header:
      [ "mode"; "size"; "n"; "cold (s)"; "incr (ms)"; "speedup"; "resolved";
        "reused"; "final n"; "identical"; "certified" ]
    (single_rows @ drift_rows)

let run_all () =
  let experiments =
    [
      ("E1", e1_cost_identity);
      ("E2", e2_normalization);
      ("E3", e3_tree_dp_optimal);
      ("E4", e4_capacity_violation);
      ("E5", e5_approx_ratio);
      ("E6", e6_tree_distortion);
      ("E7", e7_baseline_compare);
      ("E8", e8_dp_scaling);
      ("E9", e9_ensemble_ablation);
      ("E10", e10_bucketing_ablation);
      ("E11", e11_strategy_ablation);
      ("E12", e12_simulation_correlation);
      ("E13", e13_pipeline_scaling);
      ("E14", e14_dynamic_churn);
      ("E15", e15_resilience);
      ("E16", e16_artifact_reuse);
      ("E17", e17_batch_service);
      ("E18", e18_dp_kernel);
      ("E19", e19_multilevel_vcycle);
      ("E20", e20_fm_refinement);
      ("E21", e21_incremental);
    ]
  in
  List.iter
    (fun (name, f) ->
      let (), dt = time f in
      Printf.printf "[%s completed in %.1fs]\n%!" name dt)
    experiments
