(* Benchmark entry point.

   Runs the full experiment suite (E1-E10, see DESIGN.md section 5 and
   EXPERIMENTS.md) followed by the Bechamel micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- E3 E7   # selected experiments
     dune exec bench/main.exe -- micro   # micro-benchmarks only *)

(* Every bench run collects pipeline telemetry and leaves a machine-readable
   stage breakdown in BENCH_obs.jsonl (schema: docs/OBSERVABILITY.md), so
   perf trajectories across commits can be diffed stage by stage. *)
let emit_obs () =
  let path = "BENCH_obs.jsonl" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Hgp_obs.Obs.emit Hgp_obs.Obs.Jsonl oc);
  Printf.printf "\nwrote %s (pipeline stage breakdown, JSON lines)\n%!" path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  Printf.printf "hierarchical graph partitioning — experiment suite\n";
  Printf.printf "(paper: Hajiaghayi, Johnson, Khani, Saha — SPAA 2014)\n%!";
  Hgp_obs.Obs.enable ();
  at_exit emit_obs;
  match args with
  | [] ->
    Experiments.run_all ();
    Microbench.run ()
  | selected ->
    let table =
      [
        ("E1", Experiments.e1_cost_identity);
        ("E2", Experiments.e2_normalization);
        ("E3", Experiments.e3_tree_dp_optimal);
        ("E4", Experiments.e4_capacity_violation);
        ("E5", Experiments.e5_approx_ratio);
        ("E6", Experiments.e6_tree_distortion);
        ("E7", Experiments.e7_baseline_compare);
        ("E8", Experiments.e8_dp_scaling);
        ("E9", Experiments.e9_ensemble_ablation);
        ("E10", Experiments.e10_bucketing_ablation);
        ("E11", Experiments.e11_strategy_ablation);
        ("E12", Experiments.e12_simulation_correlation);
        ("E13", Experiments.e13_pipeline_scaling);
        ("E14", Experiments.e14_dynamic_churn);
        ("E15", Experiments.e15_resilience);
        ("E16", Experiments.e16_artifact_reuse);
        ("E17", Experiments.e17_batch_service);
        ("E18", Experiments.e18_dp_kernel);
        ("E19", Experiments.e19_multilevel_vcycle);
        ("E20", Experiments.e20_fm_refinement);
        ("E21", Experiments.e21_incremental);
        ("micro", Microbench.run);
      ]
    in
    List.iter
      (fun name ->
        match List.assoc_opt name table with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S (know: %s)\n" name
            (String.concat ", " (List.map fst table));
          exit 1)
      selected
