(* Bechamel micro-benchmarks for the computational kernels.

   Kernels are measured with telemetry collection disabled (the default
   production posture) so times stay comparable across commits; the obs.*
   entries measure the telemetry layer itself in both postures. *)

open Bechamel
module Gen = Hgp_graph.Generators
module H = Hgp_hierarchy.Hierarchy
module Tree = Hgp_tree.Tree
module Instance = Hgp_core.Instance
module Prng = Hgp_util.Prng
module Obs = Hgp_obs.Obs

let tests () =
  let rng = Prng.create 4242 in
  (* Fixed inputs, built once. *)
  let g = Gen.randomize_weights rng (Gen.gnp_connected rng 64 0.12) ~lo:1.0 ~hi:5.0 in
  let hy = H.Presets.dual_socket in
  let inst = Instance.uniform_demands g hy ~load_factor:0.7 in
  let decomposition = Hgp_racke.Decomposition.build (Prng.create 1) g in
  let tree = Hgp_racke.Decomposition.tree decomposition in
  let demand_units = Array.make (Tree.n_nodes tree) 0 in
  (* 1 unit per job: 64 units against CP(0) = 8 * 16 = 128 — feasible. *)
  Array.iter (fun l -> demand_units.(l) <- 1) (Tree.leaves tree);
  let cfg = Hgp_core.Tree_dp.config_of_hierarchy hy ~resolution:8 ~beam_width:256 () in
  let assignment = Array.init 64 (fun v -> v mod 16) in
  [
    Test.make ~name:"decomposition.build"
      (Staged.stage (fun () -> Hgp_racke.Decomposition.build (Prng.create 7) g));
    Test.make ~name:"tree_dp.solve"
      (Staged.stage (fun () -> Hgp_core.Tree_dp.solve tree ~demand_units cfg));
    (let rng = Prng.create 777 in
     let g_large =
       Gen.randomize_weights rng (Gen.gnp_connected rng 256 0.05) ~lo:1.0 ~hi:5.0
     in
     let d_large = Hgp_racke.Decomposition.build (Prng.create 2) g_large in
     let tree_large = Hgp_racke.Decomposition.tree d_large in
     let demand_large = Array.make (Tree.n_nodes tree_large) 0 in
     Array.iter (fun l -> demand_large.(l) <- 1) (Tree.leaves tree_large);
     (* 256 units against CP(0) = 8 * 64 = 512 on uniform 4^3. *)
     let cfg_large =
       Hgp_core.Tree_dp.config_of_hierarchy
         (H.Presets.uniform ~branching:4 ~height:3)
         ~resolution:8 ~beam_width:512 ()
     in
     Test.make ~name:"tree_dp.solve_large"
       (Staged.stage (fun () ->
            Hgp_core.Tree_dp.solve tree_large ~demand_units:demand_large cfg_large)));
    (* Arena kernels in isolation: the merge table's insert/probe cycle and
       the sorted-prune permutation pass. *)
    (let tbl = Hgp_util.Arena.Table.create ~capacity:1024 () in
     Test.make ~name:"arena.table_upsert"
       (Staged.stage (fun () ->
            Hgp_util.Arena.Table.clear tbl;
            for i = 0 to 511 do
              ignore
                (Hgp_util.Arena.Table.upsert tbl ((i * 7919) land 4095)
                   (float_of_int (i land 63))
                   i (i + 1) 0)
            done;
            Hgp_util.Arena.Table.size tbl)));
    (let rng = Prng.create 99 in
     let m = 512 in
     let costs = Array.init m (fun _ -> float_of_int (Prng.int rng 1000)) in
     let keys = Array.init m (fun _ -> Prng.int rng 100_000) in
     let perm = Array.make m 0 in
     Test.make ~name:"arena.sort_perm"
       (Staged.stage (fun () ->
            for i = 0 to m - 1 do
              perm.(i) <- i
            done;
            Hgp_util.Arena.sort_perm_by_cost_key perm 0 m costs keys;
            perm.(0))));
    Test.make ~name:"cost.assignment"
      (Staged.stage (fun () -> Hgp_core.Cost.assignment_cost inst assignment));
    Test.make ~name:"cost.mirror"
      (Staged.stage (fun () -> Hgp_core.Cost.mirror_cost inst assignment));
    Test.make ~name:"maxflow.dinic"
      (Staged.stage (fun () -> Hgp_flow.Maxflow.min_cut_value g ~src:0 ~dst:63));
    Test.make ~name:"multilevel.partition"
      (Staged.stage (fun () ->
           Hgp_baselines.Multilevel.partition (Prng.create 3) g
             ~demands:inst.Instance.demands ~k:16 ~capacity:1.25));
    Test.make ~name:"treecut.min_cut"
      (Staged.stage (fun () ->
           Hgp_tree.Treecut.min_cut_weight tree ~in_set:(fun l -> l mod 2 = 0)));
    (* Telemetry layer itself: the disabled case is the overhead every
       instrumented call site pays in production. *)
    Test.make ~name:"obs.span_disabled"
      (Staged.stage (fun () -> Obs.span "bench.probe" (fun () -> Sys.opaque_identity 0)));
    Test.make ~name:"obs.span_enabled"
      (Staged.stage (fun () ->
           Obs.enable ();
           let r = Obs.span "bench.probe" (fun () -> Sys.opaque_identity 0) in
           Obs.disable ();
           r));
    Test.make ~name:"obs.count_enabled"
      (Staged.stage (fun () ->
           Obs.enable ();
           Obs.count "bench.counter" 1;
           Obs.disable ()));
  ]

let run () =
  (* Measure kernels in the disabled-telemetry posture regardless of what the
     surrounding harness enabled; restore afterwards. *)
  let was_enabled = Obs.enabled () in
  Obs.disable ();
  Fun.protect ~finally:(fun () -> if was_enabled then Obs.enable ())
  @@ fun () ->
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s.%s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let estimate =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | _ -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort compare
    |> List.map (fun (name, ns) ->
           let time_str =
             if Float.is_nan ns then "n/a"
             else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
             else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
             else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
             else Printf.sprintf "%.0f ns" ns
           in
           [ name; time_str ])
  in
  Hgp_util.Tablefmt.print ~title:"micro-benchmarks (Bechamel, monotonic clock per run)"
    ~header:[ "kernel"; "time/run" ]
    rows
