(* hgp_cli — command-line front end for the hierarchical graph partitioner.

   Subcommands:
     generate   emit a workload graph in METIS format
     solve      read a graph, solve HGP, print the assignment
     compare    run the solver against every baseline
     validate   check an assignment file against an instance
     serve      batch solve service on stdin/stdout (JSON lines)
     batch      solve a JSON-lines request file as one batch

   Hierarchies are given as a preset name, a regular "degs@cms" spec such
   as "2x4x2@100,30,8,0", or a ragged bracket spec such as
   "[100,[10,4,4,4,4],[10,4,4,2],[5,8,8]]" (docs/HIERARCHY.md). *)

module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Io = Hgp_graph.Io
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module Pipeline = Hgp_core.Pipeline
module B = Hgp_baselines
module Server = Hgp_server.Server
module Protocol = Hgp_server.Protocol
module Prng = Hgp_util.Prng
module Tablefmt = Hgp_util.Tablefmt
module Obs = Hgp_obs.Obs
module Hgp_error = Hgp_resilience.Hgp_error
module Faults = Hgp_resilience.Faults
open Cmdliner

(* The hierarchy argument stays a raw string through cmdliner and is parsed
   inside [handle_errors]: a malformed spec is invalid INPUT, not invalid
   usage, so it must exit with the documented sysexits code 65
   (Hgp_error.Invalid_input) and the parser's token-and-position message,
   not cmdliner's generic option error. *)
let resolve_hierarchy s =
  match Hgp_hierarchy.Topology.parse_result s with
  | Ok h -> h
  | Error msg -> Hgp_error.error (Hgp_error.Invalid_input { context = "hierarchy"; msg })

let hierarchy_arg =
  let doc =
    "Hierarchy: a preset name (flat16, dual_socket, quad_socket, cluster, \
     datacenter, ragged_rack, gpu_cpu_tier), a regular DEGS@CMS spec such as \
     2x4x2@100,30,8,0, or a ragged bracket spec such as \
     [100,[10,4,4,4,4],[10,4,4,2],[5,8,8]] (leaves are CAP or CAP:CM; see \
     docs/HIERARCHY.md)."
  in
  Arg.(value & opt string "dual_socket" & info [ "hierarchy"; "H" ] ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let load_arg =
  Arg.(value & opt float 0.7 & info [ "load" ] ~doc:"Load factor in (0, 1].")

let slack_arg =
  Arg.(value & opt float 1.25 & info [ "slack" ] ~doc:"Capacity slack for heuristics.")

(* --metrics[=json|table]: enable pipeline telemetry and print the stage
   breakdown to stderr (stdout keeps its machine-readable contract). *)
let metrics_arg =
  let sink = Arg.enum [ ("table", Obs.Table); ("json", Obs.Jsonl) ] in
  Arg.(
    value
    & opt ~vopt:(Some Obs.Table) (some sink) None
    & info [ "metrics" ]
        ~doc:
          "Collect pipeline telemetry and print the stage breakdown to stderr; \
           $(docv) is 'table' (default) or 'json' (JSON lines, see \
           docs/OBSERVABILITY.md)."
        ~docv:"SINK")

let with_metrics metrics f =
  match metrics with
  | None -> f ()
  | Some sink ->
    Obs.enable ();
    Fun.protect ~finally:(fun () -> Obs.emit sink stderr) f

(* Structured errors become documented exit codes (docs/ROBUSTNESS.md):
   parse 65, io 66, infeasible 69, tree/domain/fault/internal 70, deadline
   75.  The handler sits OUTSIDE [with_metrics] so telemetry still flushes
   on the way out. *)
let handle_errors f =
  try f () with
  | Hgp_error.Error e ->
    Printf.eprintf "hgp_cli: %s\n" (Hgp_error.to_string e);
    exit (Hgp_error.exit_code e)

(* ---- generate ---- *)

let generate_cmd =
  let kind =
    Arg.(
      value
      & opt (enum [ ("stream", `Stream); ("mesh", `Mesh); ("gnp", `Gnp); ("powerlaw", `Pl) ])
          `Stream
      & info [ "kind" ] ~doc:"Workload kind: stream, mesh, gnp, powerlaw.")
  in
  let size = Arg.(value & opt int 64 & info [ "n" ] ~doc:"Approximate size.") in
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Output file (stdout).") in
  let as_instance =
    Arg.(
      value & flag
      & info [ "as-instance" ]
          ~doc:"Emit a full instance file (graph + demands + hierarchy) instead of METIS.")
  in
  let run kind n seed out as_instance hierarchy load =
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    let rng = Prng.create seed in
    let g =
      match kind with
      | `Stream ->
        let p =
          { Hgp_workloads.Stream_dag.default_params with n_sources = max 2 (n / 8) }
        in
        (Hgp_workloads.Stream_dag.generate rng p).graph
      | `Mesh ->
        let side = max 2 (int_of_float (sqrt (float_of_int n))) in
        Gen.grid2d ~rows:side ~cols:side
      | `Gnp -> Gen.gnp_connected rng n (4.0 /. float_of_int n)
      | `Pl ->
        Hgp_graph.Traversal.ensure_connected
          (Gen.chung_lu rng ~n ~exponent:2.5 ~avg_degree:4.0)
          rng
    in
    let text =
      if as_instance then begin
        let g = Hgp_graph.Traversal.ensure_connected g rng in
        let inst = Instance.uniform_demands g hierarchy ~load_factor:load in
        Hgp_core.Instance_io.to_string inst
      end
      else Io.to_string g
    in
    match out with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc text);
      Printf.printf "wrote %s (n=%d, m=%d)\n" path (Graph.n g) (Graph.m g)
  in
  let term =
    Term.(const run $ kind $ size $ seed_arg $ out $ as_instance $ hierarchy_arg $ load_arg)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a workload graph (METIS format).") term

(* ---- shared instance loading ---- *)

(* Accepts either a METIS graph (demands synthesized uniformly from --load)
   or a full instance file produced by [Instance_io] (auto-detected by its
   "%hgp-instance" header; -H and --load are then ignored). *)
let load_instance path hierarchy load seed =
  let ic = open_in path in
  let first = try input_line ic with End_of_file -> "" in
  close_in ic;
  if String.length first >= 13 && String.sub first 0 13 = "%hgp-instance" then
    Hgp_core.Instance_io.load path
  else begin
    let g = Io.load path in
    let rng = Prng.create seed in
    let g = Hgp_graph.Traversal.ensure_connected g rng in
    Instance.uniform_demands g hierarchy ~load_factor:load
  end

let graph_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"METIS graph file.")

(* ---- solve ---- *)

let solve_cmd =
  let ensemble =
    Arg.(value & opt int 4 & info [ "trees" ] ~doc:"Decomposition trees to sample.")
  in
  let resolution =
    Arg.(value & opt (some int) None & info [ "resolution" ] ~doc:"Units per leaf capacity.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ]
          ~doc:
            "Soft wall-clock budget in milliseconds; on expiry the solve \
             degrades through cheaper rungs instead of failing (see \
             docs/ROBUSTNESS.md).")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ]
          ~doc:
            "Solve $(docv) times in-process; repeats after the first are served \
             from the artifact caches (pair with --cache-stats).")
  in
  let cache_stats =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:
            "After solving, print artifact-cache hit/miss statistics and \
             cumulative per-stage timings to stderr (see docs/ARCHITECTURE.md).")
  in
  let multilevel =
    Arg.(
      value
      & opt ~vopt:(Some Hgp_multilevel.Vcycle.default_options.Hgp_multilevel.Vcycle.threshold)
          (some int) None
      & info [ "multilevel" ]
          ~doc:
            "Solve via the multilevel V-cycle front-end: coarsen by heavy-edge \
             matching down to $(docv) vertices (default 128), run the exact \
             pipeline on the coarse graph, certify there, then uncoarsen with \
             banded boundary refinement.  The path for graphs far beyond the \
             exact solver's reach (see docs/MULTILEVEL.md)."
          ~docv:"THRESHOLD")
  in
  let multilevel_refine =
    (* The value is (engine, boundary re-solve); "fm,boundary" is a single
       enum token — cmdliner only treats commas specially in list converters. *)
    let engine_conv =
      Arg.enum
        [
          ("greedy", (Hgp_multilevel.Refine.Greedy, false));
          ("fm", (Hgp_multilevel.Refine.Fm { hill_climb = true }, false));
          ("fm,boundary", (Hgp_multilevel.Refine.Fm { hill_climb = true }, true));
        ]
    in
    Arg.(
      value
      & opt engine_conv (Hgp_multilevel.Refine.Greedy, false)
      & info [ "multilevel-refine" ]
          ~doc:
            "Refinement engine for the --multilevel uncoarsening phase: greedy \
             (default, single-vertex descent), fm (gain-bucket \
             Fiduccia-Mattheyses with hill-climbing and best-prefix rollback), \
             or fm,boundary (fm plus an exact re-solve of each level's \
             boundary subgraph, spliced back only when it improves cost and \
             stays inside the certified band).  See docs/MULTILEVEL.md."
          ~docv:"ENGINE")
  in
  let delta_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "delta" ]
          ~doc:
            "Apply the delta file (%hgp-delta text format) after solving: the \
             base instance is solved once to open an incremental session, the \
             delta is re-solved through the dirty-cone path, and the \
             post-delta assignment is printed with '# incremental ...' \
             accounting.  Composes with --multilevel.  See \
             docs/INCREMENTAL.md."
          ~docv:"FILE")
  in
  let run path hierarchy load seed ensemble resolution deadline_ms slack metrics repeat
      cache_stats multilevel multilevel_refine delta_file =
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    with_metrics metrics @@ fun () ->
    let inst = load_instance path hierarchy load seed in
    let options =
      { Solver.default_options with ensemble_size = ensemble; seed; resolution }
    in
    (* Satellite of ISSUE: surface the silent tractability clamp.  When eps
       stops binding the default resolution, say so once on stderr. *)
    if Solver.resolution_clamped inst options then
      Printf.eprintf
        "hgp_cli: note: demand resolution clamped at %d (tractability cap; \
         eps=%g no longer binds — pass --resolution to override)\n"
        (Solver.resolution_of inst options)
        options.Solver.eps;
    (match (delta_file, multilevel) with
     | Some dfile, Some threshold ->
       (* Incremental multilevel: open a V-cycle session on the base
          instance, stream the delta through the dirty-cone path. *)
       let module V = Hgp_multilevel.Vcycle in
       let refine_algo, boundary_resolve = multilevel_refine in
       let mopts =
         { V.default_options with V.threshold; refine_algo; boundary_resolve; solver = options }
       in
       let delta = Hgp_core.Delta.load dfile in
       let sess, _ = V.start_session ~options:mopts inst in
       let u = V.resolve_delta sess delta in
       let r = u.V.u_result in
       let sol = r.V.solution in
       Printf.printf "# cost %.6g\n# violation %.4f\n# tree %d\n# dp-states %d\n" sol.cost
         sol.max_violation sol.tree_index sol.dp_states;
       Printf.printf "# multilevel levels=%d coarse-n=%d ratio=%.2f cached=%b\n" r.V.levels
         r.V.coarse_n r.V.coarsening_ratio r.V.hierarchy_cached;
       Printf.printf
         "# incremental resolved=%d reused=%d reused-levels=%d/%d churn=%.4f \
          certified=%b incremental=%b\n"
         u.V.u_resolved_subtrees u.V.u_reused_subtrees u.V.u_reused_levels
         u.V.u_total_levels u.V.u_churn u.V.u_certified u.V.u_incremental;
       Array.iteri (fun v leaf -> Printf.printf "%d %d\n" v leaf) sol.assignment
     | Some dfile, None -> (
       (* Incremental exact: a pipeline session plus one delta re-solve. *)
       let delta = Hgp_core.Delta.load dfile in
       let infeasible msg =
         Hgp_error.error
           (Hgp_error.Infeasible
              { resolution = Solver.resolution_of inst options; retried = false; msg })
       in
       match Pipeline.start_session inst options with
       | None -> infeasible "base instance infeasible; incremental sessions do not retry"
       | Some (sess, _) -> (
         match Pipeline.resolve_delta sess delta with
         | None -> infeasible "post-delta instance infeasible at this resolution"
         | Some u ->
           let sol = u.Pipeline.u_solution in
           Printf.printf "# cost %.6g\n# violation %.4f\n# tree %d\n# dp-states %d\n"
             sol.cost sol.max_violation sol.tree_index sol.dp_states;
           Printf.printf "# cached-dp-states %d\n" sol.cached_dp_states;
           Printf.printf "# incremental resolved=%d reused=%d churn=%.4f certified=%b\n"
             u.Pipeline.resolved_subtrees u.Pipeline.reused_subtrees u.Pipeline.churn
             u.Pipeline.certified;
           Array.iteri (fun v leaf -> Printf.printf "%d %d\n" v leaf) sol.assignment))
     | None, Some threshold ->
       let module V = Hgp_multilevel.Vcycle in
       let refine_algo, boundary_resolve = multilevel_refine in
       let mopts =
         { V.default_options with V.threshold; refine_algo; boundary_resolve; solver = options }
       in
       let solve_once () = V.solve ~options:mopts inst in
       let r = ref (solve_once ()) in
       for _ = 2 to max 1 repeat do
         r := solve_once ()
       done;
       let r = !r in
       let sol = r.V.solution in
       Printf.printf "# cost %.6g\n# violation %.4f\n# tree %d\n# dp-states %d\n" sol.cost
         sol.max_violation sol.tree_index sol.dp_states;
       Printf.printf "# cached-dp-states %d\n" sol.cached_dp_states;
       Printf.printf "# multilevel levels=%d coarse-n=%d ratio=%.2f cached=%b\n" r.V.levels
         r.V.coarse_n r.V.coarsening_ratio r.V.hierarchy_cached;
       let cert = r.V.coarse_certificate in
       Printf.printf "# coarse-certified within-band=%b violation=%.4f bound=%.4f\n"
         cert.Hgp_core.Verify.within_theorem_bound cert.Hgp_core.Verify.max_violation
         cert.Hgp_core.Verify.theorem_bound;
       (* Describe line only in FM modes — the greedy output (and its golden)
          stays byte-identical. *)
       (match refine_algo with
        | Hgp_multilevel.Refine.Greedy -> ()
        | Hgp_multilevel.Refine.Fm { hill_climb } ->
          let rollbacks =
            List.fold_left (fun acc (lr : V.level_report) -> acc + lr.V.rollbacks) 0
              r.V.level_reports
          in
          let resolves =
            List.fold_left
              (fun acc (lr : V.level_report) -> if lr.V.boundary_resolved then acc + 1 else acc)
              0 r.V.level_reports
          in
          Printf.printf
            "# multilevel-refine engine=fm hill-climb=%b boundary=%b rollbacks=%d \
             boundary-resolves=%d\n"
            hill_climb boundary_resolve rollbacks resolves);
       List.iter
         (fun (lr : V.level_report) ->
           Printf.printf "# refine level=%d n=%d moves=%d gain=%.6g\n" lr.V.level lr.V.n
             lr.V.moves lr.V.gain)
         r.V.level_reports;
       Array.iteri (fun v leaf -> Printf.printf "%d %d\n" v leaf) sol.assignment
     | None, None ->
       (* Ladder rungs below the core pipeline: the refined heuristic portfolio
          (sans the hgp candidate — it just failed above us), then plain dual
          recursive bisection.  Each gets a fresh deterministic rng. *)
       let fallbacks =
         [
           ( "portfolio",
             fun inst ->
               (B.Portfolio.solve ~include_hgp:false (Prng.create seed) inst ~slack
                  ~refine_passes:2)
                 .best.B.Portfolio.assignment );
           ( "recursive-bisection",
             fun inst -> B.Recursive_bisection.assign (Prng.create seed) inst ~slack );
         ]
       in
       let solve_once () =
         match Solver.solve_supervised ~options ?deadline_ms ~fallbacks inst with
         | Error e -> Hgp_error.error e
         | Ok s -> s
       in
       let s = ref (solve_once ()) in
       for _ = 2 to max 1 repeat do
         s := solve_once ()
       done;
       let s = !s in
       let sol = s.Solver.solution in
       Printf.printf "# cost %.6g\n# violation %.4f\n# tree %d\n# dp-states %d\n" sol.cost
         sol.max_violation sol.tree_index sol.dp_states;
       Printf.printf "# cached-dp-states %d\n" sol.cached_dp_states;
       Printf.printf "# rung %s\n# degraded %b\n# tree-failures %d\n" s.Solver.rung
         s.Solver.degraded
         (List.length s.Solver.tree_failures);
       Array.iteri (fun v leaf -> Printf.printf "%d %d\n" v leaf) sol.assignment);
    if cache_stats then prerr_string (Pipeline.render_cache_stats ())
  in
  let term =
    Term.(
      const run $ graph_arg $ hierarchy_arg $ load_arg $ seed_arg $ ensemble $ resolution
      $ deadline $ slack_arg $ metrics_arg $ repeat $ cache_stats $ multilevel
      $ multilevel_refine $ delta_arg)
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve HGP on a graph; prints 'vertex leaf' lines.") term

(* ---- compare ---- *)

let compare_cmd =
  let run path hierarchy load seed slack metrics =
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    with_metrics metrics @@ fun () ->
    let inst = load_instance path hierarchy load seed in
    let rng = Prng.create seed in
    let k = Hierarchy.num_leaves hierarchy in
    let capacity = slack *. Hierarchy.leaf_capacity hierarchy in
    (* Identity mapping sends part p to leaf p, so the flat partitioner can
       honor each leaf's own capacity. *)
    let leaf_caps = Array.init k (fun l -> slack *. Hierarchy.leaf_cap hierarchy l) in
    let entries =
      [
        ("random", B.Placement.random rng inst ~slack);
        ("greedy", B.Placement.greedy inst ~slack ());
        ( "kbgp-flat",
          B.Mapping.identity
            (B.Multilevel.partition rng ~capacities:leaf_caps inst.graph
               ~demands:inst.demands ~k ~capacity)
              .parts );
        ( "kbgp+map",
          let parts =
            (B.Multilevel.partition rng inst.graph ~demands:inst.demands ~k ~capacity).parts
          in
          B.Mapping.optimize inst ~parts ~k );
        ("dual-recursive", B.Recursive_bisection.assign rng inst ~slack);
        ("hgp", (Solver.solve ~options:{ Solver.default_options with seed } inst).assignment);
      ]
    in
    let rows =
      List.map
        (fun (name, p) ->
          [
            name;
            Tablefmt.fmt_float (Cost.assignment_cost inst p);
            Printf.sprintf "%.3f" (Cost.max_violation inst p);
          ])
        entries
    in
    Tablefmt.print ~title:"method comparison" ~header:[ "method"; "cost"; "violation" ] rows
  in
  let term =
    Term.(
      const run $ graph_arg $ hierarchy_arg $ load_arg $ seed_arg $ slack_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare the solver against the baselines.") term

(* ---- validate ---- *)

let validate_cmd =
  let assignment_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"ASSIGNMENT" ~doc:"'vertex leaf' lines.")
  in
  let run path assignment_path hierarchy load seed slack =
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    let inst = load_instance path hierarchy load seed in
    let p = Array.make (Instance.n inst) (-1) in
    let ic = open_in assignment_path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            let line = String.trim line in
            if line <> "" && line.[0] <> '#' then
              Scanf.sscanf line "%d %d" (fun v leaf -> p.(v) <- leaf)
          done
        with End_of_file -> ());
    let report = Hgp_core.Verify.certify inst p ~eps:0.25 in
    Format.printf "%a" Hgp_core.Verify.pp report;
    Printf.printf "valid at %.2f slack    : %b\n" slack (Cost.is_valid inst p ~slack);
    if not report.Hgp_core.Verify.assignment_complete then exit 1
  in
  let term =
    Term.(const run $ graph_arg $ assignment_arg $ hierarchy_arg $ load_arg $ seed_arg $ slack_arg)
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate an assignment file for an instance.") term

(* ---- describe ---- *)

let describe_cmd =
  let run hierarchy =
    handle_errors @@ fun () ->
    print_string (Hgp_hierarchy.Topology.describe (resolve_hierarchy hierarchy))
  in
  let term = Term.(const run $ hierarchy_arg) in
  Cmd.v (Cmd.info "describe" ~doc:"Describe a hierarchy level by level.") term

(* ---- portfolio ---- *)

let portfolio_cmd =
  let run path hierarchy load seed slack =
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    let inst = load_instance path hierarchy load seed in
    let rng = Prng.create seed in
    let r = B.Portfolio.solve rng inst ~slack ~refine_passes:8 in
    let rows =
      List.map
        (fun (e : B.Portfolio.entry) ->
          [
            (if e.name = r.best.B.Portfolio.name then e.name ^ " *" else e.name);
            Tablefmt.fmt_float e.cost;
            Printf.sprintf "%.3f" e.violation;
          ])
        r.entries
    in
    Tablefmt.print ~title:"portfolio (best marked *)"
      ~header:[ "candidate"; "cost"; "violation" ]
      rows
  in
  let term = Term.(const run $ graph_arg $ hierarchy_arg $ load_arg $ seed_arg $ slack_arg) in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:"Run the approximation algorithm plus refined heuristics; keep the best.")
    term

(* ---- simulate ---- *)

let simulate_cmd =
  let n_sources =
    Arg.(value & opt int 8 & info [ "sources" ] ~doc:"Stream sources to generate.")
  in
  let depth = Arg.(value & opt int 5 & info [ "depth" ] ~doc:"Pipeline depth.") in
  let sim_load =
    Arg.(value & opt float 0.75 & info [ "sim-load" ] ~doc:"Source-rate multiplier.")
  in
  let run hierarchy load seed slack n_sources depth sim_load =
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    let rng = Prng.create seed in
    let w =
      Hgp_workloads.Stream_dag.generate rng
        { Hgp_workloads.Stream_dag.default_params with n_sources; pipeline_depth = depth }
    in
    let inst = Hgp_workloads.Stream_dag.to_instance w hierarchy ~load_factor:load in
    let sw = Hgp_workloads.Stream_dag.to_sim_workload w ~demands:inst.Instance.demands in
    let cfg =
      { Hgp_sim.Des.default_config with load = sim_load; comm_overhead = 2e-3; seed }
    in
    let sol = Solver.solve ~options:{ Solver.default_options with seed } inst in
    let placements =
      [
        ("random", B.Placement.random rng inst ~slack);
        ("greedy", B.Placement.greedy inst ~slack ());
        ("hgp", sol.assignment);
      ]
    in
    let rows =
      List.map
        (fun (name, p) ->
          let m = Hgp_sim.Des.run sw hierarchy ~assignment:p cfg in
          [
            name;
            Tablefmt.fmt_float (Cost.assignment_cost inst p);
            Printf.sprintf "%.1f" m.throughput;
            string_of_int m.dropped;
            (if Float.is_nan m.avg_latency then "-"
             else Printf.sprintf "%.1f" (m.avg_latency *. 1e3));
            Printf.sprintf "%.2f" m.max_core_utilization;
          ])
        placements
    in
    Tablefmt.print ~title:"simulated stream execution"
      ~header:[ "placement"; "cost"; "tuples/s"; "drops"; "avg lat (ms)"; "max util" ]
      rows
  in
  let term =
    Term.(
      const run $ hierarchy_arg $ load_arg $ seed_arg $ slack_arg $ n_sources $ depth
      $ sim_load)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Generate a stream workload, place it, and simulate its execution.")
    term

(* ---- drift ---- *)

let drift_cmd =
  let module D = Hgp_sim.Des in
  let n_sources =
    Arg.(value & opt int 8 & info [ "sources" ] ~doc:"Stream sources to generate.")
  in
  let depth = Arg.(value & opt int 5 & info [ "depth" ] ~doc:"Pipeline depth.") in
  let steps =
    Arg.(value & opt int D.default_drift_params.D.steps & info [ "steps" ] ~doc:"Drift steps.")
  in
  let edits =
    Arg.(
      value
      & opt int D.default_drift_params.D.edits_per_step
      & info [ "edits" ] ~doc:"Edge reweights per drift step.")
  in
  let magnitude =
    Arg.(
      value
      & opt float D.default_drift_params.D.magnitude
      & info [ "magnitude" ] ~doc:"Max relative weight perturbation per edit.")
  in
  let structural_every =
    Arg.(
      value & opt int 0
      & info [ "structural-every" ]
          ~doc:"Every $(docv)-th step also adds/removes an edge (0 = never).")
  in
  let cold_every =
    Arg.(
      value
      & opt int D.default_drift_params.D.cold_every
      & info [ "cold-every" ]
          ~doc:
            "Sample a cache-bypassing cold full solve (timing + bit-identity \
             check) every $(docv)-th step; 0 disables.")
  in
  let trees =
    Arg.(value & opt int 2 & info [ "trees" ] ~doc:"Decomposition trees to sample.")
  in
  let multilevel =
    Arg.(
      value
      & opt ~vopt:(Some Hgp_multilevel.Vcycle.default_options.Hgp_multilevel.Vcycle.threshold)
          (some int) None
      & info [ "multilevel" ]
          ~doc:"Drive a multilevel V-cycle session (coarsening threshold $(docv))."
          ~docv:"THRESHOLD")
  in
  let assert_amortized =
    Arg.(
      value
      & opt (some float) None
      & info [ "assert-amortized" ]
          ~doc:
            "Fail (non-zero exit) unless amortized incremental cost is below \
             $(docv) of a cold solve, every step certified, and every sampled \
             step bit-identical — the CI incremental-smoke gate."
          ~docv:"RATIO")
  in
  let run hierarchy load seed slack n_sources depth steps edits magnitude structural_every
      cold_every trees multilevel assert_amortized metrics =
    ignore slack;
    handle_errors @@ fun () ->
    let hierarchy = resolve_hierarchy hierarchy in
    with_metrics metrics @@ fun () ->
    let rng = Prng.create seed in
    let w =
      Hgp_workloads.Stream_dag.generate rng
        { Hgp_workloads.Stream_dag.default_params with n_sources; pipeline_depth = depth }
    in
    let inst = Hgp_workloads.Stream_dag.to_instance w hierarchy ~load_factor:load in
    let options = { Solver.default_options with ensemble_size = trees; seed } in
    let backend =
      match multilevel with
      | None -> D.Exact options
      | Some threshold ->
        let module V = Hgp_multilevel.Vcycle in
        D.Multilevel { V.default_options with V.threshold; solver = options }
    in
    let params =
      {
        D.steps;
        edits_per_step = edits;
        magnitude;
        structural_every;
        cold_every;
      }
    in
    let r = D.run_drift ~params rng inst backend in
    Printf.printf "# drift n=%d steps=%d edits=%d backend=%s\n" r.D.d_final_n steps edits
      (match backend with D.Exact _ -> "exact" | D.Multilevel _ -> "multilevel");
    Printf.printf "# step edits structural incr-ms cold-ms churn certified identical\n";
    List.iter
      (fun (s : D.drift_step) ->
        Printf.printf "%d %d %b %.3f %s %.4f %b %s\n" s.D.d_step s.D.d_edits
          s.D.d_structural s.D.d_incr_ms
          (if Float.is_nan s.D.d_cold_ms then "-" else Printf.sprintf "%.3f" s.D.d_cold_ms)
          s.D.d_churn s.D.d_certified
          (if Float.is_nan s.D.d_cold_ms then "-" else string_of_bool s.D.d_identical))
      r.D.d_steps;
    Printf.printf
      "# summary mean-incr-ms=%.3f mean-cold-ms=%.3f amortized=%.4f all-certified=%b \
       all-identical=%b\n"
      r.D.d_mean_incr_ms r.D.d_mean_cold_ms r.D.d_amortized r.D.d_all_certified
      r.D.d_all_identical;
    match assert_amortized with
    | None -> ()
    | Some bound ->
      let fails =
        (if not r.D.d_all_certified then [ "a step's solution is not certified" ] else [])
        @ (if not r.D.d_all_identical then
             [ "a sampled step is not bit-identical to its cold solve" ]
           else [])
        @
        if Float.is_nan r.D.d_amortized || r.D.d_amortized > bound then
          [ Printf.sprintf "amortized ratio %.4f exceeds %.4f" r.D.d_amortized bound ]
        else []
      in
      if fails <> [] then
        Hgp_error.error
          (Hgp_error.Internal { stage = "drift"; msg = String.concat "; " fails })
  in
  let term =
    Term.(
      const run $ hierarchy_arg $ load_arg $ seed_arg $ slack_arg $ n_sources $ depth
      $ steps $ edits $ magnitude $ structural_every $ cold_every $ trees $ multilevel
      $ assert_amortized $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "drift"
       ~doc:
         "Stream drift deltas through an incremental solve session and compare \
          amortized re-solve cost against sampled cold solves.  See \
          docs/INCREMENTAL.md.")
    term

(* ---- batch / serve ---- *)

let workers_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.workers
    & info [ "workers" ] ~doc:"Worker domains (= scheduler shards).")

let queue_limit_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.queue_limit
    & info [ "queue-limit" ]
        ~doc:
          "Bounded admission queue; once full, further requests are rejected \
           with a structured 'overloaded' response (exit is still 0 — the \
           rejection is per-request).")

let server_stats_arg =
  Arg.(
    value & flag
    & info [ "server-stats" ]
        ~doc:"Print the cumulative server statistics line to stderr on exit.")

let parse_error_response ~lineno msg =
  {
    Protocol.id = Printf.sprintf "line-%d" lineno;
    outcome =
      Protocol.Failed (Hgp_error.Parse { line = Some lineno; context = "request"; msg });
    queue_ms = 0.;
    solve_ms = 0.;
  }

(* Submit a window of [(lineno, raw-line)] pairs, drain, and emit one response
   line per request in input order — rejections (parse, overloaded, resolve)
   are merged back among the drained responses.  A line carrying a "delta"
   field is an update against a named session (docs/INCREMENTAL.md). *)
let run_window server window =
  let rejects = ref [] in
  let admitted = ref [] in
  List.iter
    (fun (lineno, raw) ->
      match Protocol.parse_any raw with
      | Error msg -> rejects := (lineno, parse_error_response ~lineno msg) :: !rejects
      | Ok req -> (
        match Server.submit_any server req with
        | `Admitted -> admitted := lineno :: !admitted
        | `Rejected r -> rejects := (lineno, r) :: !rejects))
    window;
  let drained = Server.drain server in
  List.combine (List.rev !admitted) drained @ !rejects
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.iter (fun (_, r) -> print_endline (Protocol.response_to_line r));
  flush stdout

let mk_server workers queue_limit slack =
  Server.create ~config:{ Server.workers; queue_limit; slack } ()

let finish server server_stats =
  List.iter (fun r -> print_endline (Protocol.response_to_line r)) (Server.shutdown server);
  if server_stats then prerr_endline (Server.render_stats (Server.stats server))

let serve_cmd =
  let run workers queue_limit slack metrics server_stats =
    handle_errors @@ fun () ->
    with_metrics metrics @@ fun () ->
    let server = mk_server workers queue_limit slack in
    let rec loop window lineno =
      match input_line stdin with
      | exception End_of_file -> run_window server (List.rev window)
      | line ->
        let lineno = lineno + 1 in
        if String.trim line = "" then begin
          (* Blank line = flush: drain the window and answer it before
             reading on. *)
          run_window server (List.rev window);
          loop [] lineno
        end
        else loop ((lineno, line) :: window) lineno
    in
    loop [] 0;
    finish server server_stats
  in
  let term =
    Term.(
      const run $ workers_arg $ queue_limit_arg $ slack_arg $ metrics_arg $ server_stats_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch solve service: read JSON-lines requests from stdin, answer on \
          stdout.  A blank line drains the pending window; EOF drains and shuts \
          down gracefully.  See docs/SERVING.md.")
    term

let batch_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"REQUESTS" ~doc:"JSON-lines request file ('-' for stdin).")
  in
  let run workers queue_limit slack metrics server_stats path =
    handle_errors @@ fun () ->
    with_metrics metrics @@ fun () ->
    let ic, close =
      if path = "-" then (stdin, Fun.id)
      else begin
        if not (Sys.file_exists path) then
          Hgp_error.error (Hgp_error.Io_error { path; msg = "no such file" });
        let ic = open_in path in
        (ic, fun () -> close_in ic)
      end
    in
    let window = ref [] in
    let lineno = ref 0 in
    Fun.protect
      ~finally:(fun () -> close ())
      (fun () ->
        try
          while true do
            let line = input_line ic in
            incr lineno;
            if String.trim line <> "" then window := (!lineno, line) :: !window
          done
        with End_of_file -> ());
    let server = mk_server workers queue_limit slack in
    run_window server (List.rev !window);
    finish server server_stats
  in
  let term =
    Term.(
      const run $ workers_arg $ queue_limit_arg $ slack_arg $ metrics_arg
      $ server_stats_arg $ file_arg)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Solve a file of JSON-lines requests as one batch over the sharded \
          scheduler; one response line per request, in request order.  See \
          docs/SERVING.md.")
    term

let () =
  (* Arm fault injection from HGP_FAULT_PLAN before any command runs, so a
     chaos harness can target every site including instance loading.  A
     malformed plan is a usage error (sysexits EX_USAGE). *)
  (match Faults.from_env () with
   | Ok _ -> ()
   | Error msg ->
     Printf.eprintf "hgp_cli: invalid %s: %s\n" Faults.env_var msg;
     exit 64);
  let info = Cmd.info "hgp_cli" ~doc:"Hierarchical graph partitioning (SPAA 2014) toolkit." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; solve_cmd; compare_cmd; validate_cmd; describe_cmd; portfolio_cmd;
            simulate_cmd; drift_cmd; serve_cmd; batch_cmd;
          ]))
