(** Part-to-leaf mapping: the second half of the "partition then map"
    heuristic (Walshaw–Cross style).

    Given a flat k-way partition, choosing which hierarchy leaf hosts which
    part is a quadratic assignment problem over the contracted part graph.
    Two strategies are provided: the identity (hierarchy-blind, what plain
    k-BGP gives you) and a greedy construction followed by pairwise-swap
    local search on leaf labels. *)

(** [identity parts] maps part [i] to leaf [i] (requires [k <= num_leaves];
    parts array is used as the assignment directly). *)
val identity : int array -> int array

(** [optimize inst ~parts ~k] returns the assignment [vertex -> leaf] using a
    greedy seeding (heaviest-communicating parts placed on nearby leaves)
    improved by swap local search until a fixed point.  Requires
    [k <= num_leaves]. *)
val optimize : Hgp_core.Instance.t -> parts:int array -> k:int -> int array
