module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance

let assign rng (inst : Instance.t) ~slack =
  let hy = inst.hierarchy in
  let h = Hierarchy.height hy in
  let assignment = Array.make (Instance.n inst) (-1) in
  (* vertices: original vertex ids currently routed to hierarchy node
     (level, idx). *)
  let rec descend level idx vertices =
    if Array.length vertices > 0 then begin
      if level = h then Array.iter (fun v -> assignment.(v) <- idx) vertices
      else begin
        let deg = Hierarchy.deg hy level in
        let sub, back = Graph.induced inst.graph vertices in
        let demands = Array.map (fun v -> inst.demands.(v)) vertices in
        let capacity = slack *. Hierarchy.capacity hy (level + 1) in
        let result = Multilevel.partition rng sub ~demands ~k:deg ~capacity in
        let groups = Array.make deg [] in
        Array.iteri
          (fun i p -> groups.(p) <- back.(i) :: groups.(p))
          result.Multilevel.parts;
        let first_child, _ = Hierarchy.children_of hy ~level idx in
        Array.iteri
          (fun b members -> descend (level + 1) (first_child + b) (Array.of_list members))
          groups
      end
    end
  in
  descend 0 0 (Array.init (Instance.n inst) (fun i -> i));
  assignment
