module Graph = Hgp_graph.Graph

(* Power iteration on M = (c I - L) where c bounds the spectral radius of the
   Laplacian L; the dominant eigenvector of M restricted to the complement of
   the constant vector is the Fiedler vector. *)
let fiedler_vector g ~iterations =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Spectral.fiedler_vector: need >= 2 vertices";
  let wdeg = Array.init n (fun v -> Graph.weighted_degree g v) in
  let c = 2. *. Array.fold_left Float.max 1e-9 wdeg in
  let x = Array.init n (fun i -> sin (float_of_int (i + 1))) in
  let deflate y =
    let mean = Array.fold_left ( +. ) 0. y /. float_of_int n in
    Array.iteri (fun i v -> y.(i) <- v -. mean) y
  in
  let normalize y =
    let norm = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. y) in
    if norm > 1e-30 then Array.iteri (fun i v -> y.(i) <- v /. norm) y
  in
  deflate x;
  normalize x;
  let y = Array.make n 0. in
  for _ = 1 to iterations do
    (* y = (cI - L) x = c x - D x + W x *)
    for v = 0 to n - 1 do
      y.(v) <- (c -. wdeg.(v)) *. x.(v)
    done;
    Graph.iter_edges
      (fun u v w ->
        y.(u) <- y.(u) +. (w *. x.(v));
        y.(v) <- y.(v) +. (w *. x.(u)))
      g;
    deflate y;
    normalize y;
    Array.blit y 0 x 0 n
  done;
  Array.copy x

let bisect g ~demands =
  let n = Graph.n g in
  if Array.length demands <> n then invalid_arg "Spectral.bisect: demands length";
  let f = fiedler_vector g ~iterations:(max 50 (8 * n)) in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare f.(a) f.(b)) order;
  let total = Array.fold_left ( +. ) 0. demands in
  let side = Array.make n false in
  let acc = ref 0. in
  Array.iter
    (fun v ->
      if !acc +. demands.(v) <= total /. 2. +. 1e-9 then begin
        side.(v) <- true;
        acc := !acc +. demands.(v)
      end)
    order;
  (* Guarantee both sides non-empty. *)
  if Array.for_all (fun s -> s) side then side.(order.(n - 1)) <- false;
  if Array.for_all (fun s -> not s) side then side.(order.(0)) <- true;
  side
