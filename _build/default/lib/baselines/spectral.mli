(** Spectral bisection via the Fiedler vector (power iteration on the shifted
    Laplacian, with deflation of the constant eigenvector).  A classical
    high-quality bisection primitive; used standalone in tests and as an
    alternative initial bisection. *)

(** [fiedler_vector g ~iterations] approximates the eigenvector of the second
    smallest Laplacian eigenvalue.  Requires [Graph.n g >= 2]. *)
val fiedler_vector : Hgp_graph.Graph.t -> iterations:int -> float array

(** [bisect g ~demands] splits the vertices at the demand-weighted median of
    the Fiedler vector; returns the side array (true/false) with sides
    balanced by demand. *)
val bisect : Hgp_graph.Graph.t -> demands:float array -> bool array
