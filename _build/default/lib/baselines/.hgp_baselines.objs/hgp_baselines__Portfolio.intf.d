lib/baselines/portfolio.mli: Hgp_core Hgp_util
