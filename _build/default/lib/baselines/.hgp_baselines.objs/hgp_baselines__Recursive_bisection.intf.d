lib/baselines/recursive_bisection.mli: Hgp_core Hgp_util
