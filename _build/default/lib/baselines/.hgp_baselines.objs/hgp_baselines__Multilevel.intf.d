lib/baselines/multilevel.mli: Hgp_graph Hgp_util
