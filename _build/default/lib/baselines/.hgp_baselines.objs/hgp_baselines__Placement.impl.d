lib/baselines/placement.ml: Array Hgp_core Hgp_graph Hgp_hierarchy Hgp_util List
