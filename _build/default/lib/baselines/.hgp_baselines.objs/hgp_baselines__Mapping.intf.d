lib/baselines/mapping.mli: Hgp_core
