lib/baselines/recursive_bisection.ml: Array Hgp_core Hgp_graph Hgp_hierarchy Multilevel
