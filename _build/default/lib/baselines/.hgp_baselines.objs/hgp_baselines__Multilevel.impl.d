lib/baselines/multilevel.ml: Array Hashtbl Hgp_graph Hgp_util List
