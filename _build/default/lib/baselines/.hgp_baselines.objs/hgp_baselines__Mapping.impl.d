lib/baselines/mapping.ml: Array Hgp_core Hgp_graph Hgp_hierarchy
