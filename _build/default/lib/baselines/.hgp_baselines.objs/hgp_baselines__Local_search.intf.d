lib/baselines/local_search.mli: Hgp_core
