lib/baselines/spectral.mli: Hgp_graph
