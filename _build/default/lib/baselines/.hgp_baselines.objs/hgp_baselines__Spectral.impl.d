lib/baselines/spectral.ml: Array Float Hgp_graph
