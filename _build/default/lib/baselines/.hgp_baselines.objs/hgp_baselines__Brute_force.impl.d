lib/baselines/brute_force.ml: Array Hgp_core Hgp_graph Hgp_hierarchy
