lib/baselines/local_search.ml: Array Hgp_core Hgp_graph Hgp_hierarchy
