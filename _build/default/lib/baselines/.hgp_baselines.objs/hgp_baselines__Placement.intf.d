lib/baselines/placement.mli: Hgp_core Hgp_util
