lib/baselines/portfolio.ml: Hgp_core Hgp_hierarchy List Local_search Mapping Multilevel Placement Recursive_bisection
