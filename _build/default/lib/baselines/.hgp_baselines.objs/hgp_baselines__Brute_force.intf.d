lib/baselines/brute_force.mli: Hgp_core
