module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance

let identity parts = Array.copy parts

let optimize (inst : Instance.t) ~parts ~k =
  let hy = inst.hierarchy in
  let n_leaves = Hierarchy.num_leaves hy in
  if k > n_leaves then invalid_arg "Mapping.optimize: more parts than leaves";
  (* Contracted communication matrix between parts. *)
  let comm = Array.make_matrix k k 0. in
  Graph.iter_edges
    (fun u v w ->
      let pu = parts.(u) and pv = parts.(v) in
      if pu <> pv then begin
        comm.(pu).(pv) <- comm.(pu).(pv) +. w;
        comm.(pv).(pu) <- comm.(pv).(pu) +. w
      end)
    inst.graph;
  (* Greedy: place parts in order of total communication volume; each part
     goes to the free leaf minimizing its cost against placed parts. *)
  let volume = Array.init k (fun p -> Array.fold_left ( +. ) 0. comm.(p)) in
  let order = Array.init k (fun i -> i) in
  Array.sort (fun a b -> compare volume.(b) volume.(a)) order;
  let leaf_of_part = Array.make k (-1) in
  let used = Array.make n_leaves false in
  Array.iter
    (fun p ->
      let best = ref (-1) and best_cost = ref infinity in
      for l = 0 to n_leaves - 1 do
        if not used.(l) then begin
          let c = ref 0. in
          for q = 0 to k - 1 do
            if leaf_of_part.(q) >= 0 && comm.(p).(q) > 0. then
              c := !c +. (comm.(p).(q) *. Hierarchy.edge_cost hy l leaf_of_part.(q))
          done;
          if !c < !best_cost then begin
            best_cost := !c;
            best := l
          end
        end
      done;
      leaf_of_part.(p) <- !best;
      used.(!best) <- true)
    order;
  (* Pairwise-swap local search on leaf labels. *)
  let part_cost p l =
    let c = ref 0. in
    for q = 0 to k - 1 do
      if q <> p && comm.(p).(q) > 0. then
        c := !c +. (comm.(p).(q) *. Hierarchy.edge_cost hy l leaf_of_part.(q))
    done;
    !c
  in
  let improved = ref true in
  let guard = ref 0 in
  while !improved && !guard < 50 do
    improved := false;
    incr guard;
    for p = 0 to k - 1 do
      for q = p + 1 to k - 1 do
        let lp = leaf_of_part.(p) and lq = leaf_of_part.(q) in
        let before = part_cost p lp +. part_cost q lq in
        (* Evaluate the swap; the p-q term appears in both sums before and
           after with the same lca, so the comparison is exact. *)
        leaf_of_part.(p) <- lq;
        leaf_of_part.(q) <- lp;
        let after = part_cost p lq +. part_cost q lp in
        if after < before -. 1e-9 then improved := true
        else begin
          leaf_of_part.(p) <- lp;
          leaf_of_part.(q) <- lq
        end
      done
    done
  done;
  Array.map (fun p -> leaf_of_part.(p)) parts
