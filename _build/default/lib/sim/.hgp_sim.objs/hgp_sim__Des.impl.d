lib/sim/des.ml: Array Float Hgp_hierarchy Hgp_util List Queue
