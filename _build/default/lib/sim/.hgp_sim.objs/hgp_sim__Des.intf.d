lib/sim/des.mli: Hgp_hierarchy
