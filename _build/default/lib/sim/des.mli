(** Discrete-event simulation of a pinned stream-processing system — the
    motivating scenario of the paper (TidalRace-style task pinning), used to
    show that the abstract HGP cost tracks real latency and throughput.

    Model:
    - operators of a dataflow DAG are pinned to hierarchy leaves (cores);
    - each core executes one tuple at a time, FCFS across its operators;
    - an operator's service time per tuple is [demand / rate], so a stream
      at its nominal rate loads the core by exactly its HGP demand;
    - forwarding a tuple along an edge whose endpoints sit on cores with
      LCA level [j] costs the {e sending core} an extra
      [comm_overhead * cm(j) / cm(0)] of CPU time and delays the tuple by a
      network latency [latency_per_cm * cm(j)] — co-located operators
      communicate for free, which is precisely the structure the HGP
      objective optimizes;
    - sources emit Poisson streams; join/fan-out semantics follow edge rates
      probabilistically;
    - sinks record end-to-end tuple latency.

    The simulation is deterministic given the seed. *)

type workload = {
  n_tasks : int;
  sources : (int * float) list;  (** (task, emission rate) *)
  edges : (int * int * float) list;  (** dataflow edges (src, dst, rate) *)
  rates : float array;  (** nominal processed rate per task *)
  demands : float array;  (** HGP demand (core fraction) per task *)
  sinks : int list;
}

(* An adapter from generated stream DAGs lives in
   [Hgp_workloads.Stream_dag.to_sim_workload] to keep this library free of a
   workloads dependency. *)

type config = {
  duration : float;  (** simulated seconds after warmup *)
  warmup : float;  (** initial transient discarded from metrics *)
  load : float;  (** source-rate multiplier (1.0 = nominal) *)
  comm_overhead : float;  (** CPU seconds per forwarded tuple at cm(0) *)
  latency_per_cm : float;  (** network seconds per unit of [cm] *)
  link_occupancy : float;
      (** exclusive seconds a tuple occupies the shared link of the
          endpoints' lowest common ancestor, at cm(0), scaled by
          [cm(lvl)/cm(0)]; [0.] (default) disables link contention *)
  max_queue : int;  (** per-core queue bound; overflowing tuples drop *)
  seed : int;
}

val default_config : config

type metrics = {
  completed : int;  (** tuples absorbed by sinks during measurement *)
  dropped : int;  (** tuples lost to full queues *)
  avg_latency : float;  (** mean end-to-end latency (s); [nan] if none *)
  p99_latency : float;
  max_core_utilization : float;  (** busiest core's busy fraction *)
  throughput : float;  (** completed tuples per simulated second *)
}

(** [run workload hierarchy ~assignment config] simulates the pinned system.
    [assignment.(task)] must be a valid hierarchy leaf. *)
val run :
  workload ->
  Hgp_hierarchy.Hierarchy.t ->
  assignment:int array ->
  config ->
  metrics
