module Prng = Hgp_util.Prng
module Pqueue = Hgp_util.Pqueue
module Graph = Hgp_graph.Graph

type cluster = Leaf of int | Node of cluster list

let inverse_weight_length w = if w <= 0. then infinity else 1. /. w
let unit_length _ = 1.

let partition rng g ~vertices ~radius ~edge_length =
  if not (radius > 0.) then invalid_arg "Clustering.partition: radius must be positive";
  let nv = Array.length vertices in
  if nv = 0 then []
  else begin
    let sub, back = Graph.induced g vertices in
    (* MPX: vertex u joins the center c minimizing dist(c,u) - shift(c);
       realised as multi-source Dijkstra with negative start keys. *)
    let beta = Float.max 1e-9 (log (float_of_int (max 2 nv)) /. radius) in
    let shift = Array.init nv (fun _ -> Prng.exponential rng ~rate:beta) in
    let max_shift = Array.fold_left max 0. shift in
    let dist = Array.make nv infinity in
    let owner = Array.make nv (-1) in
    let heap = Pqueue.Indexed.create nv in
    for v = 0 to nv - 1 do
      (* Offset keys by max_shift to keep them nonnegative. *)
      dist.(v) <- max_shift -. shift.(v);
      owner.(v) <- v;
      Pqueue.Indexed.insert heap v dist.(v)
    done;
    while not (Pqueue.Indexed.is_empty heap) do
      let u, du = Pqueue.Indexed.pop_min heap in
      if du <= dist.(u) then
        Graph.iter_neighbors
          (fun v w ->
            let len = edge_length w in
            let alt = du +. len in
            if alt < dist.(v) then begin
              dist.(v) <- alt;
              owner.(v) <- owner.(u);
              Pqueue.Indexed.insert_or_decrease heap v alt
            end)
          sub u
    done;
    let buckets = Hashtbl.create 16 in
    for v = nv - 1 downto 0 do
      let c = owner.(v) in
      let existing = try Hashtbl.find buckets c with Not_found -> [] in
      Hashtbl.replace buckets c (back.(v) :: existing)
    done;
    Hashtbl.fold (fun _ members acc -> Array.of_list members :: acc) buckets []
    |> List.sort compare
  end

let approx_weighted_diameter g ~edge_length vertices =
  (* Two BFS-style Dijkstra sweeps from an arbitrary vertex. *)
  let sub, _back = Graph.induced g vertices in
  let nv = Array.length vertices in
  if nv <= 1 then 0.
  else begin
    let far dists =
      let best = ref 0 and bd = ref 0. in
      Array.iteri
        (fun i d -> if d < infinity && d > !bd then begin
             bd := d;
             best := i
           end)
        dists;
      (!best, !bd)
    in
    let d0 = Hgp_graph.Traversal.dijkstra sub 0 ~edge_length in
    let v1, _ = far d0 in
    let d1 = Hgp_graph.Traversal.dijkstra sub v1 ~edge_length in
    let _, diam = far d1 in
    Float.max diam 1e-9
  end

let hierarchical rng g ~edge_length =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Clustering.hierarchical: empty graph";
  let all = Array.init n (fun i -> i) in
  let diam = approx_weighted_diameter g ~edge_length all in
  let rec build vertices radius =
    if Array.length vertices = 1 then Leaf vertices.(0)
    else begin
      let parts = partition rng g ~vertices ~radius ~edge_length in
      match parts with
      | [ single ] when Array.length single = Array.length vertices ->
        (* Did not split: shrink the radius and retry at this level so that
           unary chains are collapsed. *)
        build vertices (radius /. 2.)
      | parts ->
        Node (List.map (fun p -> build p (radius /. 2.)) parts)
    end
  in
  match build all (Float.max (diam /. 2.) 1e-9) with
  | Leaf v -> Node [ Leaf v ]
  | Node _ as c -> c

let bfs_bisection rng g ~edge_length =
  let n = Graph.n g in
  if n = 0 then invalid_arg "Clustering.bfs_bisection: empty graph";
  let rec build vertices =
    let nv = Array.length vertices in
    if nv = 1 then Leaf vertices.(0)
    else begin
      let sub, back = Graph.induced g vertices in
      (* Grow a Dijkstra ordering from a vertex far from a random start; the
         first half of the ordering is one side. *)
      let start = Prng.int rng nv in
      let d0 = Hgp_graph.Traversal.dijkstra sub start ~edge_length in
      let far = ref start in
      Array.iteri (fun v d -> if d < infinity && d > d0.(!far) then far := v) d0;
      let d1 = Hgp_graph.Traversal.dijkstra sub !far ~edge_length in
      let order = Array.init nv (fun i -> i) in
      Array.sort (fun a b -> compare (d1.(a), a) (d1.(b), b)) order;
      let half = nv / 2 in
      let left = Array.map (fun i -> back.(order.(i))) (Array.init half (fun i -> i)) in
      let right =
        Array.map (fun i -> back.(order.(half + i))) (Array.init (nv - half) (fun i -> i))
      in
      Node [ build left; build right ]
    end
  in
  match build (Array.init n (fun i -> i)) with
  | Leaf v -> Node [ Leaf v ]
  | Node _ as c -> c

let rec cluster_vertices = function
  | Leaf v -> [| v |]
  | Node children -> Array.concat (List.map cluster_vertices children)

let rec depth = function
  | Leaf _ -> 0
  | Node children -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
