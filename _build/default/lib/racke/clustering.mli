(** Low-diameter random decompositions of weighted graphs — the clustering
    engine behind decomposition trees.

    The partition routine is the Miller–Peng–Xu variant of the
    Calinescu–Karloff–Rabani scheme: every vertex draws an exponential start
    shift and a single multi-source Dijkstra assigns each vertex to the
    "earliest" center.  Clusters are connected, have radius [O(r log n)] with
    high probability, and each edge is cut with probability [O(len(e)/r)] —
    the property that yields the [O(log n)] expected cut distortion of the
    resulting trees.

    Edge lengths default to [1 /. w]: heavy (high-communication) edges are
    short and therefore rarely separated, exactly the bias a Räcke-style
    decomposition needs. *)

(** A hierarchical clustering: either a single graph vertex or a cluster of
    sub-clusters.  [Node] always has at least one child and the union of the
    children's vertex sets is the node's vertex set. *)
type cluster = Leaf of int | Node of cluster list

(** [partition rng g ~vertices ~radius ~edge_length] partitions the given
    vertex set (inducing the subgraph) into connected low-diameter clusters.
    Returns the list of clusters as vertex arrays.  [radius] must be
    positive. *)
val partition :
  Hgp_util.Prng.t ->
  Hgp_graph.Graph.t ->
  vertices:int array ->
  radius:float ->
  edge_length:(float -> float) ->
  int array list

(** [hierarchical rng g ~edge_length] builds a full hierarchical clustering of
    [g] by repeatedly halving the decomposition radius, starting from the
    (approximate) weighted diameter, until all clusters are singletons.
    Unary levels (a cluster that did not split) are collapsed.  The graph
    must be connected. *)
val hierarchical :
  Hgp_util.Prng.t -> Hgp_graph.Graph.t -> edge_length:(float -> float) -> cluster

(** [bfs_bisection rng g ~edge_length] builds a hierarchical clustering by
    recursive halving: each cluster is split into two demand-balanced halves
    of a Dijkstra ordering grown from a random peripheral vertex.  Produces
    geometric, balanced splits — particularly effective on meshes where
    random low-diameter clusters are ragged. *)
val bfs_bisection :
  Hgp_util.Prng.t -> Hgp_graph.Graph.t -> edge_length:(float -> float) -> cluster

(** [inverse_weight_length w] is [1. /. w] (and [infinity] for [w = 0.]). *)
val inverse_weight_length : float -> float

(** [unit_length w] ignores the weight and returns [1.]. *)
val unit_length : float -> float

(** [cluster_vertices c] lists the graph vertices of a cluster. *)
val cluster_vertices : cluster -> int array

(** [depth c] is the height of the clustering. *)
val depth : cluster -> int
