lib/racke/ensemble.ml: Array Decomposition Hgp_util
