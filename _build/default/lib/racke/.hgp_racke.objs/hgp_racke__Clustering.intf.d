lib/racke/clustering.mli: Hgp_graph Hgp_util
