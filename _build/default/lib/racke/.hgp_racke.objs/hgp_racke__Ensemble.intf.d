lib/racke/ensemble.mli: Decomposition Hgp_graph Hgp_util
