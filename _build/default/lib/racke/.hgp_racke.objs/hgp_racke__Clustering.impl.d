lib/racke/clustering.ml: Array Float Hashtbl Hgp_graph Hgp_util List
