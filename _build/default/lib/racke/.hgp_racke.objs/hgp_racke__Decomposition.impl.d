lib/racke/decomposition.ml: Array Clustering Hashtbl Hgp_flow Hgp_graph Hgp_tree Hgp_util List Printf
