lib/racke/decomposition.mli: Clustering Hgp_graph Hgp_tree Hgp_util
