module Prng = Hgp_util.Prng
module Pqueue = Hgp_util.Pqueue

let bfs_hops g src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors
      (fun v _ ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      g u
  done;
  dist

let bfs_order g src =
  let n = Graph.n g in
  let seen = Array.make n false in
  let order = ref [] in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order := u :: !order;
    Graph.iter_neighbors
      (fun v _ ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      g u
  done;
  Array.of_list (List.rev !order)

let dijkstra g src ~edge_length =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let heap = Pqueue.Indexed.create n in
  dist.(src) <- 0.;
  Pqueue.Indexed.insert heap src 0.;
  while not (Pqueue.Indexed.is_empty heap) do
    let u, du = Pqueue.Indexed.pop_min heap in
    if du <= dist.(u) then
      Graph.iter_neighbors
        (fun v w ->
          let len = edge_length w in
          if not (len >= 0.) then invalid_arg "Traversal.dijkstra: negative length";
          let alt = du +. len in
          if alt < dist.(v) then begin
            dist.(v) <- alt;
            Pqueue.Indexed.insert_or_decrease heap v alt
          end)
        g u
  done;
  dist

let components g =
  let n = Graph.n g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let id = !next in
      incr next;
      let q = Queue.create () in
      comp.(v) <- id;
      Queue.add v q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        Graph.iter_neighbors
          (fun x _ ->
            if comp.(x) = -1 then begin
              comp.(x) <- id;
              Queue.add x q
            end)
          g u
      done
    end
  done;
  (comp, !next)

let is_connected g =
  let _, k = components g in
  k <= 1

let ensure_connected g rng =
  let comp, k = components g in
  if k <= 1 then g
  else begin
    let n = Graph.n g in
    (* Pick one random representative per component, chain them. *)
    let members = Array.make k [] in
    for v = n - 1 downto 0 do
      members.(comp.(v)) <- v :: members.(comp.(v))
    done;
    let reps =
      Array.map (fun lst -> Prng.choose rng (Array.of_list lst)) members
    in
    let b = Graph.Builder.create n in
    Graph.iter_edges (fun u v w -> Graph.Builder.add_edge b u v w) g;
    for i = 0 to k - 2 do
      Graph.Builder.add_edge b reps.(i) reps.(i + 1) 1.0
    done;
    Graph.Builder.build b
  end
