(** Cut-weight evaluation helpers. *)

(** [cut_weight g in_set] is the total weight of edges with exactly one
    endpoint [v] such that [in_set v] holds. *)
val cut_weight : Graph.t -> (int -> bool) -> float

(** [cut_weight_of_set g set] is {!cut_weight} for an explicit vertex set. *)
val cut_weight_of_set : Graph.t -> int array -> float

(** [kway_cut g parts] is the total weight of edges whose endpoints lie in
    different parts, where [parts.(v)] is the part id of [v]. *)
val kway_cut : Graph.t -> int array -> float

(** [boundary g parts] lists edges crossing between parts as [(u, v, w)]. *)
val boundary : Graph.t -> int array -> (int * int * float) list

(** [part_loads parts ~n_parts ~demand] sums [demand v] over each part. *)
val part_loads : int array -> n_parts:int -> demand:(int -> float) -> float array

(** [imbalance parts ~n_parts ~demand] is [max_load /. (total /. n_parts)];
    [1.0] means perfectly balanced.  Requires positive total demand. *)
val imbalance : int array -> n_parts:int -> demand:(int -> float) -> float
