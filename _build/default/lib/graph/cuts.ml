let cut_weight g in_set =
  Graph.fold_edges
    (fun acc u v w -> if in_set u <> in_set v then acc +. w else acc)
    0. g

let cut_weight_of_set g set =
  let members = Array.make (Graph.n g) false in
  Array.iter (fun v -> members.(v) <- true) set;
  cut_weight g (fun v -> members.(v))

let kway_cut g parts =
  Graph.fold_edges
    (fun acc u v w -> if parts.(u) <> parts.(v) then acc +. w else acc)
    0. g

let boundary g parts =
  List.rev
    (Graph.fold_edges
       (fun acc u v w -> if parts.(u) <> parts.(v) then (u, v, w) :: acc else acc)
       [] g)

let part_loads parts ~n_parts ~demand =
  let loads = Array.make n_parts 0. in
  Array.iteri
    (fun v p ->
      if p < 0 || p >= n_parts then invalid_arg "Cuts.part_loads: part id out of range";
      loads.(p) <- loads.(p) +. demand v)
    parts;
  loads

let imbalance parts ~n_parts ~demand =
  let loads = part_loads parts ~n_parts ~demand in
  let total = Array.fold_left ( +. ) 0. loads in
  if not (total > 0.) then invalid_arg "Cuts.imbalance: zero total demand";
  let max_load = Array.fold_left max 0. loads in
  max_load /. (total /. float_of_int n_parts)
