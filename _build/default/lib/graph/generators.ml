module Prng = Hgp_util.Prng

let path n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1, 1.0)))

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: n must be >= 3";
  Graph.of_edges n ((n - 1, 0, 1.0) :: List.init (n - 1) (fun i -> (i, i + 1, 1.0)))

let complete n =
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      Graph.Builder.add_edge b u v 1.0
    done
  done;
  Graph.Builder.build b

let star n =
  Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1, 1.0)))

let grid2d ~rows ~cols =
  let id r c = (r * cols) + c in
  let b = Graph.Builder.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.Builder.add_edge b (id r c) (id r (c + 1)) 1.0;
      if r + 1 < rows then Graph.Builder.add_edge b (id r c) (id (r + 1) c) 1.0
    done
  done;
  Graph.Builder.build b

let torus2d ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Generators.torus2d: dims must be >= 3";
  let id r c = (r * cols) + c in
  let b = Graph.Builder.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Graph.Builder.add_edge b (id r c) (id r ((c + 1) mod cols)) 1.0;
      Graph.Builder.add_edge b (id r c) (id ((r + 1) mod rows) c) 1.0
    done
  done;
  Graph.Builder.build b

let binary_tree depth =
  if depth < 0 then invalid_arg "Generators.binary_tree: negative depth";
  let n = (1 lsl (depth + 1)) - 1 in
  let b = Graph.Builder.create n in
  for v = 1 to n - 1 do
    Graph.Builder.add_edge b v ((v - 1) / 2) 1.0
  done;
  Graph.Builder.build b

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Generators.caterpillar";
  let n = spine * (1 + legs) in
  let b = Graph.Builder.create n in
  for s = 0 to spine - 2 do
    Graph.Builder.add_edge b s (s + 1) 1.0
  done;
  for s = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      Graph.Builder.add_edge b s (spine + (s * legs) + l) 1.0
    done
  done;
  Graph.Builder.build b

let gnp rng n p =
  if p < 0. || p > 1. then invalid_arg "Generators.gnp: p out of range";
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float rng 1.0 < p then Graph.Builder.add_edge b u v 1.0
    done
  done;
  Graph.Builder.build b

let gnp_connected rng n p = Traversal.ensure_connected (gnp rng n p) rng

let chung_lu rng ~n ~exponent ~avg_degree =
  if not (exponent > 2.) then invalid_arg "Generators.chung_lu: exponent must exceed 2";
  let gamma = 1.0 /. (exponent -. 1.0) in
  let w = Array.init n (fun i -> (float_of_int (i + 1)) ** (-.gamma)) in
  let sum_w = Array.fold_left ( +. ) 0. w in
  (* In the Chung–Lu model E[deg u] ~ w_u, so the expected average degree is
     (sum w) / n; scale the weights to hit the request. *)
  let scale = avg_degree *. float_of_int n /. sum_w in
  let w = Array.map (fun x -> x *. scale) w in
  let sw = Array.fold_left ( +. ) 0. w in
  let b = Graph.Builder.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      (* Chung–Lu probability w_u w_v / sum_w, clamped. *)
      let p = min 1.0 (w.(u) *. w.(v) /. sw) in
      if Prng.float rng 1.0 < p then Graph.Builder.add_edge b u v 1.0
    done
  done;
  Graph.Builder.build b

let random_regular rng ~n ~degree =
  if degree >= n || degree < 0 then invalid_arg "Generators.random_regular: degree";
  if (n * degree) mod 2 <> 0 then invalid_arg "Generators.random_regular: n*degree odd";
  let max_attempts = 200 in
  let attempt () =
    let stubs = Array.make (n * degree) 0 in
    for i = 0 to (n * degree) - 1 do
      stubs.(i) <- i / degree
    done;
    Prng.shuffle rng stubs;
    let seen = Hashtbl.create (n * degree) in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < n * degree do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      if u = v || Hashtbl.mem seen (min u v, max u v) then ok := false
      else Hashtbl.add seen (min u v, max u v) ();
      i := !i + 2
    done;
    if !ok then Some (Hashtbl.fold (fun (u, v) () acc -> (u, v, 1.0) :: acc) seen [])
    else None
  in
  let rec go k =
    if k = 0 then
      (* Fall back to a near-regular graph: keep the valid prefix of a final
         attempt, which is simple though possibly missing a few edges. *)
      let stubs = Array.make (n * degree) 0 in
      let () =
        for i = 0 to (n * degree) - 1 do
          stubs.(i) <- i / degree
        done
      in
      let () = Prng.shuffle rng stubs in
      let seen = Hashtbl.create (n * degree) in
      let i = ref 0 in
      let () =
        while !i < n * degree do
          let u = stubs.(!i) and v = stubs.(!i + 1) in
          if u <> v && not (Hashtbl.mem seen (min u v, max u v)) then
            Hashtbl.add seen (min u v, max u v) ();
          i := !i + 2
        done
      in
      Graph.of_edges n (Hashtbl.fold (fun (u, v) () acc -> (u, v, 1.0) :: acc) seen [])
    else begin
      match attempt () with
      | Some edges -> Graph.of_edges n edges
      | None -> go (k - 1)
    end
  in
  go max_attempts

let random_tree rng n =
  if n <= 0 then invalid_arg "Generators.random_tree: n must be positive";
  if n = 1 then Graph.of_edges 1 []
  else if n = 2 then Graph.of_edges 2 [ (0, 1, 1.0) ]
  else begin
    (* Decode a random Prüfer sequence. *)
    let prufer = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) prufer;
    let heap = Hgp_util.Pqueue.create () in
    for v = 0 to n - 1 do
      if deg.(v) = 1 then Hgp_util.Pqueue.push heap ~prio:(float_of_int v) v
    done;
    let edges = ref [] in
    Array.iter
      (fun v ->
        let _, leaf = Hgp_util.Pqueue.pop_min heap in
        edges := (leaf, v, 1.0) :: !edges;
        deg.(v) <- deg.(v) - 1;
        if deg.(v) = 1 then Hgp_util.Pqueue.push heap ~prio:(float_of_int v) v)
      prufer;
    let _, a = Hgp_util.Pqueue.pop_min heap in
    let _, b = Hgp_util.Pqueue.pop_min heap in
    edges := (a, b, 1.0) :: !edges;
    Graph.of_edges n !edges
  end

let randomize_weights rng ?(lo = 1.0) ?(hi = 10.0) g =
  if not (hi > lo) then invalid_arg "Generators.randomize_weights: hi <= lo";
  let b = Graph.Builder.create (Graph.n g) in
  Graph.iter_edges
    (fun u v _ -> Graph.Builder.add_edge b u v (lo +. Prng.float rng (hi -. lo)))
    g;
  Graph.Builder.build b

let hypercube dims =
  if dims < 0 || dims > 20 then invalid_arg "Generators.hypercube: dims out of range";
  let n = 1 lsl dims in
  let b = Graph.Builder.create n in
  for v = 0 to n - 1 do
    for bit = 0 to dims - 1 do
      let u = v lxor (1 lsl bit) in
      if u > v then Graph.Builder.add_edge b v u 1.0
    done
  done;
  Graph.Builder.build b

let barbell ~clique ~bridge =
  if clique < 2 || bridge < 0 then invalid_arg "Generators.barbell";
  let n = (2 * clique) + bridge in
  let b = Graph.Builder.create n in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      Graph.Builder.add_edge b u v 1.0;
      Graph.Builder.add_edge b (clique + bridge + u) (clique + bridge + v) 1.0
    done
  done;
  (* Path of [bridge] vertices joining the two cliques. *)
  let left_anchor = clique - 1 in
  let right_anchor = clique + bridge in
  if bridge = 0 then Graph.Builder.add_edge b left_anchor right_anchor 1.0
  else begin
    Graph.Builder.add_edge b left_anchor clique 1.0;
    for i = 0 to bridge - 2 do
      Graph.Builder.add_edge b (clique + i) (clique + i + 1) 1.0
    done;
    Graph.Builder.add_edge b (clique + bridge - 1) right_anchor 1.0
  end;
  Graph.Builder.build b

let watts_strogatz rng ~n ~k ~beta =
  if n < 4 || k < 2 || k mod 2 <> 0 || k >= n then invalid_arg "Generators.watts_strogatz";
  if not (beta >= 0. && beta <= 1.) then invalid_arg "Generators.watts_strogatz: beta";
  (* Ring lattice with k/2 neighbors each side, then rewire each edge's far
     endpoint with probability beta. *)
  let b = Graph.Builder.create n in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for d = 1 to k / 2 do
      edges := (v, (v + d) mod n) :: !edges
    done
  done;
  let exists = Hashtbl.create (2 * n) in
  let add u v = Hashtbl.replace exists (min u v, max u v) () in
  let mem u v = Hashtbl.mem exists (min u v, max u v) in
  List.iter
    (fun (u, v) ->
      if Prng.float rng 1.0 < beta then begin
        (* Rewire: pick a fresh endpoint avoiding self loops and duplicates. *)
        let rec pick tries =
          if tries = 0 then v
          else begin
            let w = Prng.int rng n in
            if w <> u && not (mem u w) then w else pick (tries - 1)
          end
        in
        let w = pick 16 in
        if not (mem u w) && u <> w then add u w else if not (mem u v) then add u v
      end
      else if not (mem u v) then add u v)
    !edges;
  Hashtbl.iter (fun (u, v) () -> Graph.Builder.add_edge b u v 1.0) exists;
  Graph.Builder.build b
