(** Graph serialization in the METIS graph-file format.

    Format: a header line [n m fmt] where [fmt = 001] marks edge weights,
    followed by one line per vertex listing [neighbor weight] pairs
    (vertices are 1-based in the file).  Comment lines start with ['%']. *)

(** [to_string g] renders [g] in METIS format with edge weights. *)
val to_string : Graph.t -> string

(** [of_string s] parses a METIS-format graph (with or without edge weights).
    @raise Failure on malformed input or header/content mismatch. *)
val of_string : string -> Graph.t

(** [save g path] writes [to_string g] to [path]. *)
val save : Graph.t -> string -> unit

(** [load path] reads a graph from [path]. *)
val load : string -> Graph.t

(** [to_edge_list_string g] renders one ["u v w"] line per edge (0-based). *)
val to_edge_list_string : Graph.t -> string

(** [of_edge_list_string s] parses the edge-list format; the vertex count is
    one plus the largest mentioned id. *)
val of_edge_list_string : string -> Graph.t
