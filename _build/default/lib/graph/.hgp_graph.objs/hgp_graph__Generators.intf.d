lib/graph/generators.mli: Graph Hgp_util
