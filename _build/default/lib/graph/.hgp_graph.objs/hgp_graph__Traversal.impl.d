lib/graph/traversal.ml: Array Graph Hgp_util List Queue
