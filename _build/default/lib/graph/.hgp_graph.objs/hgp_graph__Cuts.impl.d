lib/graph/cuts.ml: Array Graph List
