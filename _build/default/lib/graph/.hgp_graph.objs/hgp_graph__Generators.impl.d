lib/graph/generators.ml: Array Graph Hashtbl Hgp_util List Traversal
