lib/graph/traversal.mli: Graph Hgp_util
