(** Graph traversal primitives: BFS, Dijkstra, connected components. *)

(** [bfs_hops g src] is the array of hop distances from [src]
    ([max_int] for unreachable vertices). *)
val bfs_hops : Graph.t -> int -> int array

(** [bfs_order g src] lists reachable vertices in BFS discovery order. *)
val bfs_order : Graph.t -> int -> int array

(** [dijkstra g src ~edge_length] computes shortest-path distances from [src]
    under the given per-edge length function (applied to the edge weight).
    Unreachable vertices get [infinity].  Lengths must be nonnegative. *)
val dijkstra : Graph.t -> int -> edge_length:(float -> float) -> float array

(** [components g] returns [(comp, n_comps)] where [comp.(v)] is the id of
    [v]'s connected component, ids are dense in [0..n_comps-1] and assigned
    in order of smallest member. *)
val components : Graph.t -> int array * int

(** [is_connected g] tests connectivity ([true] for the empty graph). *)
val is_connected : Graph.t -> bool

(** [ensure_connected g rng] returns [g] if connected; otherwise a copy with
    one unit-weight edge added between consecutive components (deterministic
    given [rng]). *)
val ensure_connected : Graph.t -> Hgp_util.Prng.t -> Graph.t
