(** Synthetic stream-processing workloads, modelled on the data-stream
    warehousing system (TidalRace) that motivates the paper.

    A query plan is a layered DAG: source operators ingest streams, a chain
    of parsers/filters/transforms processes them, occasional joins fuse
    pipelines, and aggregate/sink operators terminate them.  Communication
    weight on an edge is the tuple rate flowing across it (decayed by filter
    selectivity); an operator's CPU demand is proportional to the rate it
    processes.  Heavy pipelines therefore want to stay on nearby cores, which
    is exactly the structure hierarchical partitioning exploits. *)

type params = {
  n_sources : int;  (** ingest streams *)
  pipeline_depth : int;  (** operators per pipeline *)
  join_probability : float;  (** chance a stage joins two pipelines *)
  fanout_probability : float;  (** chance a stage splits a pipeline in two *)
  selectivity : float;  (** per-stage rate decay in (0, 1] *)
  rate_min : float;  (** minimum source rate *)
  rate_max : float;  (** maximum source rate *)
}

val default_params : params

type t = {
  graph : Hgp_graph.Graph.t;  (** the undirected communication graph *)
  rates : float array;  (** tuple rate processed by each operator *)
  kinds : string array;  (** "source" / "op" / "join" / "sink" *)
  directed_edges : (int * int * float) list;
      (** dataflow edges [(src, dst, rate)] in generation order; the
          undirected [graph] is their symmetrization (plus connectivity
          patch edges, if any) *)
}

(** [generate rng params] builds a workload.  The graph is connected. *)
val generate : Hgp_util.Prng.t -> params -> t

(** [to_instance w hierarchy ~load_factor] turns the workload into an HGP
    instance: demands proportional to operator rates, rescaled so total
    demand is [load_factor] of the hierarchy capacity (each demand clamped to
    a leaf capacity). *)
val to_instance :
  t -> Hgp_hierarchy.Hierarchy.t -> load_factor:float -> Hgp_core.Instance.t

(** [to_sim_workload w ~demands] adapts the DAG for the discrete-event
    simulator ({!Hgp_sim.Des}); [demands] are the per-operator core fractions
    of the HGP instance the placement was computed for. *)
val to_sim_workload : t -> demands:float array -> Hgp_sim.Des.workload
