lib/workloads/stream_dag.ml: Array Float Hgp_core Hgp_graph Hgp_hierarchy Hgp_sim Hgp_util List
