lib/workloads/presets.ml: Array Float Hgp_core Hgp_graph Hgp_hierarchy Hgp_util Printf Stream_dag
