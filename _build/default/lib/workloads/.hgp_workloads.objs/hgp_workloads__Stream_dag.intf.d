lib/workloads/stream_dag.mli: Hgp_core Hgp_graph Hgp_hierarchy Hgp_sim Hgp_util
