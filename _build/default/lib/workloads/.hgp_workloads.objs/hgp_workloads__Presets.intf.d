lib/workloads/presets.mli: Hgp_core Hgp_hierarchy Hgp_util
