(** Named workload presets used by the experiment harness and the examples:
    each couples a graph generator with a demand model. *)

type spec = {
  name : string;
  build : Hgp_util.Prng.t -> Hgp_hierarchy.Hierarchy.t -> Hgp_core.Instance.t;
}

(** [stream ~n_sources ~depth] is a streaming-DAG workload at 70% load. *)
val stream : n_sources:int -> depth:int -> spec

(** [mesh ~rows ~cols] is a 2-D stencil computation (uniform demands, 80%
    load) — the scientific-computing workload of the mapping literature. *)
val mesh : rows:int -> cols:int -> spec

(** [gnp ~n ~p] is an Erdős–Rényi communication pattern with random demands
    at 75% load. *)
val gnp : n:int -> p:float -> spec

(** [powerlaw ~n] is a Chung–Lu power-law graph (hub-heavy communication)
    with uniform demands at 75% load. *)
val powerlaw : n:int -> spec

(** [small_suite] is a compact list for experiments ([n] around 30–80). *)
val small_suite : spec list

(** [barbell ~clique ~bridge] is two communication-heavy task cliques joined
    by a thin bridge (uniform demands, 70% load). *)
val barbell : clique:int -> bridge:int -> spec

(** [small_world ~n] is a Watts–Strogatz small-world pattern (70% load). *)
val small_world : n:int -> spec

(** [full_suite] is {!small_suite} plus the barbell and small-world
    workloads. *)
val full_suite : spec list
