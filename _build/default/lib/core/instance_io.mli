(** Serialization of full HGP instances (graph + demands + hierarchy).

    Text format, line oriented:
    {v
    %hgp-instance 1
    hierarchy 2x4x2@100,30,8,0 capacity 1
    demands 0.5 0.25 ...
    graph
    <METIS graph text>
    v}
    Comment lines starting with ['#'] are ignored before the [graph]
    section. *)

(** [to_string inst] renders the instance. *)
val to_string : Instance.t -> string

(** [of_string s] parses an instance.
    @raise Failure on malformed input. *)
val of_string : string -> Instance.t

(** [save inst path] / [load path]: file variants. *)
val save : Instance.t -> string -> unit

val load : string -> Instance.t
