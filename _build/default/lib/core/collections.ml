module Tree = Hgp_tree.Tree
module Laminar = Hgp_tree.Laminar

type t = {
  family : Laminar.family;
  h : int;
}

let of_kappa tree ~kappa ~h = { family = Levels.laminar_family tree ~kappa ~h; h }

let is_valid_relaxed c tree =
  let universe = Array.copy (Tree.leaves tree) in
  Array.sort compare universe;
  Array.length c.family = c.h + 1 && Laminar.is_laminar c.family ~universe

let demand_ok c ~demand_units ~cp_units =
  let ok = ref true in
  for j = 0 to c.h do
    Array.iter
      (fun set ->
        let d = Array.fold_left (fun acc l -> acc + demand_units.(l)) 0 set in
        if d > cp_units.(j) then ok := false)
      c.family.(j)
  done;
  !ok

let refinement_widths c =
  let counts = Laminar.refinement_counts c.family in
  Array.map
    (fun per_set -> List.fold_left max 0 per_set)
    counts

let definition3_cost c tree ~cm =
  let total = ref 0. in
  for j = 1 to c.h do
    let diff = (cm.(j - 1) -. cm.(j)) /. 2. in
    if diff <> 0. then
      Array.iter
        (fun set ->
          let members = Hashtbl.create (Array.length set) in
          Array.iter (fun l -> Hashtbl.replace members l ()) set;
          let w =
            Hgp_tree.Treecut.min_cut_weight tree ~in_set:(fun l -> Hashtbl.mem members l)
          in
          total := !total +. (w *. diff))
        c.family.(j)
  done;
  !total
