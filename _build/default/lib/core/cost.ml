module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy

let assignment_cost (inst : Instance.t) p =
  let h = inst.hierarchy in
  Graph.fold_edges
    (fun acc u v w -> acc +. (w *. Hierarchy.edge_cost h p.(u) p.(v)))
    0. inst.graph

let mirror_cost (inst : Instance.t) p =
  let hy = inst.hierarchy in
  let h = Hierarchy.height hy in
  let total = ref 0. in
  for j = 1 to h do
    let diff = (Hierarchy.cm hy (j - 1) -. Hierarchy.cm hy j) /. 2. in
    if diff <> 0. then begin
      (* Boundary weight of every Level-(j) group: an edge contributes to the
         groups of both endpoints when they differ. *)
      let boundary = Array.make (Hierarchy.nodes_at_level hy j) 0. in
      Graph.iter_edges
        (fun u v w ->
          let au = Hierarchy.ancestor hy ~level:j p.(u)
          and av = Hierarchy.ancestor hy ~level:j p.(v) in
          if au <> av then begin
            boundary.(au) <- boundary.(au) +. w;
            boundary.(av) <- boundary.(av) +. w
          end)
        inst.graph;
      Array.iter (fun b -> total := !total +. (b *. diff)) boundary
    end
  done;
  (* A non-normalized hierarchy charges cm(h) on every edge (Lemma 1). *)
  let base = Hierarchy.cm hy h in
  if base <> 0. then total := !total +. (base *. Graph.total_weight inst.graph);
  !total

let leaf_loads (inst : Instance.t) p =
  let k = Hierarchy.num_leaves inst.hierarchy in
  let loads = Array.make k 0. in
  Array.iteri
    (fun v leaf ->
      if leaf < 0 || leaf >= k then invalid_arg "Cost.leaf_loads: leaf out of range";
      loads.(leaf) <- loads.(leaf) +. inst.demands.(v))
    p;
  loads

let level_violation (inst : Instance.t) p j =
  let hy = inst.hierarchy in
  let loads = Array.make (Hierarchy.nodes_at_level hy j) 0. in
  Array.iteri
    (fun v leaf ->
      let a = Hierarchy.ancestor hy ~level:j leaf in
      loads.(a) <- loads.(a) +. inst.demands.(v))
    p;
  let cap = Hierarchy.capacity hy j in
  Array.fold_left (fun acc l -> Float.max acc (l /. cap)) 0. loads

let max_violation (inst : Instance.t) p =
  let h = Hierarchy.height inst.hierarchy in
  let worst = ref 0. in
  for j = 1 to h do
    worst := Float.max !worst (level_violation inst p j)
  done;
  !worst

let is_valid (inst : Instance.t) p ~slack =
  Array.length p = Instance.n inst
  && Array.for_all (fun leaf -> leaf >= 0 && leaf < Hierarchy.num_leaves inst.hierarchy) p
  &&
  let loads = leaf_loads inst p in
  let cap = Hierarchy.leaf_capacity inst.hierarchy in
  Array.for_all (fun l -> l <= (slack *. cap) +. 1e-9) loads
