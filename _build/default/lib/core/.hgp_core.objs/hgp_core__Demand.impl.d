lib/core/demand.ml: Array Hgp_hierarchy
