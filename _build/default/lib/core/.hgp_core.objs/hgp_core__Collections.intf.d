lib/core/collections.mli: Hgp_tree
