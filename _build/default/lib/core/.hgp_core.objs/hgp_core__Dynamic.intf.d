lib/core/dynamic.mli: Hgp_hierarchy Solver
