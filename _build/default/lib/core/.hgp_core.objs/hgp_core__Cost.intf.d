lib/core/cost.mli: Instance
