lib/core/feasible.ml: Array Float Hgp_hierarchy Hgp_tree Levels List
