lib/core/collections.ml: Array Hashtbl Hgp_tree Levels List
