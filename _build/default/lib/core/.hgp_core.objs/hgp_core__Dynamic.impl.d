lib/core/dynamic.ml: Array Float Hashtbl Hgp_graph Hgp_hierarchy Hgp_util Instance List Solver
