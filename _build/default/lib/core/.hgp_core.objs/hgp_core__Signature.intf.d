lib/core/signature.mli:
