lib/core/levels.mli: Hgp_tree
