lib/core/tree_dp.ml: Array Float Hashtbl Hgp_hierarchy Hgp_tree Hgp_util List Signature Stack
