lib/core/instance.mli: Format Hgp_graph Hgp_hierarchy Hgp_util
