lib/core/solver.ml: Array Cost Demand Domain Feasible Float Hgp_graph Hgp_hierarchy Hgp_racke Hgp_tree Hgp_util Instance Logs Tree_dp
