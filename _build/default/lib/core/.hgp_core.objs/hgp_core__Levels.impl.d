lib/core/levels.ml: Array Hgp_tree Hgp_util List
