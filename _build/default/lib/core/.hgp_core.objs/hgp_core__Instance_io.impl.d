lib/core/instance_io.ml: Array Buffer Fun Hgp_graph Hgp_hierarchy Instance List Printf String
