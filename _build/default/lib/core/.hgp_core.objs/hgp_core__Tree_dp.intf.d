lib/core/tree_dp.mli: Hgp_hierarchy Hgp_tree
