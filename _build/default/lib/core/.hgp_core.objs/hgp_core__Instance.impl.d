lib/core/instance.ml: Array Float Format Hgp_graph Hgp_hierarchy Hgp_util Printf
