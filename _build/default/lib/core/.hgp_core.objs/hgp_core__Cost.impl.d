lib/core/cost.ml: Array Float Hgp_graph Hgp_hierarchy Instance
