lib/core/feasible.mli: Hgp_hierarchy Hgp_tree
