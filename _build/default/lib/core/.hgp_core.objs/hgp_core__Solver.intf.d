lib/core/solver.mli: Demand Hgp_hierarchy Hgp_racke Hgp_tree Instance
