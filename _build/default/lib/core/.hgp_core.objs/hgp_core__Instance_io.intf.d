lib/core/instance_io.mli: Instance
