lib/core/signature.ml: Array
