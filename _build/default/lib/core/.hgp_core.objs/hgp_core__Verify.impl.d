lib/core/verify.ml: Array Cost Feasible Float Format Hgp_hierarchy Instance
