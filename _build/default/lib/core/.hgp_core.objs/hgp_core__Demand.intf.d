lib/core/demand.mli: Hgp_hierarchy
