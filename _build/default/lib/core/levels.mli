(** Extracting the laminar level structure from a [kappa] edge labeling.

    For level [j], the Level-(j) sets of the RHGPT solution are the connected
    components of the subforest [{e | kappa e >= j}] (see {!Tree_dp}). *)

(** [components t ~kappa ~level] returns [(comp, n_comps)]: [comp.(v)] is the
    dense component id of node [v] at the given level (level [0] puts every
    node in component [0]). *)
val components : Hgp_tree.Tree.t -> kappa:int array -> level:int -> int array * int

(** [laminar_family t ~kappa ~h] is the per-level family of leaf sets —
    [family.(j)] lists the Level-(j) sets (only components containing at
    least one leaf appear).  Suitable for {!Hgp_tree.Laminar.is_laminar}. *)
val laminar_family : Hgp_tree.Tree.t -> kappa:int array -> h:int -> Hgp_tree.Laminar.family

(** [component_tree t ~kappa ~h] returns, for each level [j in 0..h-1], the
    parent map from Level-(j+1) component ids to Level-(j) component ids. *)
val component_tree : Hgp_tree.Tree.t -> kappa:int array -> h:int -> int array array
