(** The paper's explicit solution representation (Definition 3 / 4): a family
    of Level-(j) collections [S^(0), ..., S^(h)] of leaf sets, with costs
    expressed through minimum tree cuts — bridging the [kappa] edge-labeling
    the solver works with and the formalism of the paper.

    Used by tests and experiments to check structural theorems (laminarity,
    refinement-width, Definition-3 cost relations) on real solver output. *)

type t = {
  family : Hgp_tree.Laminar.family;  (** [family.(j)] = the Level-(j) sets *)
  h : int;
}

(** [of_kappa t ~kappa ~h] materializes the collections of an edge labeling:
    Level-(j) sets are the leaf contents of the [kappa >= j] components. *)
val of_kappa : Hgp_tree.Tree.t -> kappa:int array -> h:int -> t

(** [is_valid_relaxed c tree] checks the four conditions of Definition 4
    (single Level-0 set, per-level partitions, refinement) — capacity is
    checked separately by {!demand_ok}. *)
val is_valid_relaxed : t -> Hgp_tree.Tree.t -> bool

(** [demand_ok c ~demand_units ~cp_units] checks Condition 3 of Definition 4:
    every Level-(j) set's demand is at most [CP(j)]. *)
val demand_ok : t -> demand_units:int array -> cp_units:int array -> bool

(** [refinement_widths c] returns, per level [j < h], the maximum number of
    Level-(j+1) sets a Level-(j) set splits into — Definition 3 requires this
    to be at most [DEG(j)]; the relaxation drops the bound and Theorem 5
    restores it by packing. *)
val refinement_widths : t -> int array

(** [definition3_cost c tree ~cm] is the cost of Definition 3:
    [sum over j of sum over Level-(j) sets S of
     w(CUT_T(S)) * (cm(j-1) - cm(j)) / 2], with [CUT_T] the {e minimum}
    leaf-separating cut of {!Hgp_tree.Treecut}.  It never exceeds the
    edge-labeling cost [Tree_dp.kappa_cost] of the inducing labeling (each
    component's boundary is one feasible cut, and shared boundaries are
    halved), and the two agree on job-complete trees. *)
val definition3_cost : t -> Hgp_tree.Tree.t -> cm:float array -> float
