(** Online HGP: maintain a placement while tasks arrive and depart.

    The motivating system (a stream-processing warehouse) adds and removes
    query operators continuously.  This manager keeps an incremental
    assignment: arrivals are placed greedily (cheapest feasible leaf against
    current neighbors), departures free capacity, and a full re-solve
    ({!rebalance}) can be triggered manually or every [resolve_period]
    events — the classic cost/migration trade-off, measured in experiment
    E14.

    Task ids are dense integers handed out by {!add_task} and remain valid
    until removed. *)

type config = {
  slack : float;  (** per-leaf capacity slack for greedy placement *)
  resolve_period : int;
      (** full re-solve every this many events ([0] disables auto-resolve) *)
  solver_options : Solver.options;
}

(** [default_config hierarchy] uses slack 1.25, no auto-resolve, and the
    solver defaults. *)
val default_config : Hgp_hierarchy.Hierarchy.t -> config

type stats = {
  events : int;  (** arrivals + departures processed *)
  auto_resolves : int;
  migrations : int;  (** tasks whose leaf changed during rebalances *)
}

type t

(** [create hierarchy config] starts with no tasks. *)
val create : Hgp_hierarchy.Hierarchy.t -> config -> t

(** [add_task t ~demand ~edges] places a new task greedily and returns its
    id.  [edges] lists [(existing_task, weight)] communication links; links
    to removed ids are rejected.  Demand must be in [(0, leaf_capacity]].
    May trigger an auto-resolve. *)
val add_task : t -> demand:float -> edges:(int * float) list -> int

(** [remove_task t id] departs a task.
    @raise Invalid_argument if [id] is unknown or already removed. *)
val remove_task : t -> int -> unit

(** [n_alive t] is the number of live tasks. *)
val n_alive : t -> int

(** [leaf_of t id] is the current placement of a live task. *)
val leaf_of : t -> int -> int

(** [current_cost t] is the Equation-1 cost over live tasks. *)
val current_cost : t -> float

(** [max_violation t] is the worst per-level load factor of the current
    placement (1.0 = within capacity). *)
val max_violation : t -> float

(** [rebalance t] runs the full HGP solver on the live tasks and applies the
    result {e if it is cheaper than the incumbent placement} (the solver is
    an approximation, so a good incremental placement may already win);
    returns the number of migrated tasks ([0] when the incumbent is kept or
    fewer than 2 tasks are live). *)
val rebalance : t -> int

(** [stats t] returns event counters. *)
val stats : t -> stats
