(** End-to-end HGP solvers (Theorem 1 pipeline and the HGPT special case).

    For a general graph: sample an ensemble of decomposition trees (Theorem
    6/7 substrate), solve the relaxed problem optimally on each tree
    (Theorems 2–4), convert each relaxed solution to a feasible hierarchy
    assignment (Theorem 5) and keep the assignment whose {e true graph cost}
    (Equation 1) is smallest.  Picking by true cost instead of by tree cost
    is a strict improvement over the paper's statement and keeps the same
    guarantee. *)

type options = {
  ensemble_size : int;  (** number of decomposition trees sampled *)
  eps : float;  (** rounding accuracy; drives resolution unless set *)
  resolution : int option;
      (** demand units per leaf capacity; default caps the paper's
          [n / eps] at {!default_max_resolution} to keep the DP practical
          (the cap is a documented substitution) *)
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
      (** DP state budget per table (see {!Tree_dp.config}); [Some 512] by
          default — exact on small frontiers, graceful on large ones *)
  strategy : Hgp_racke.Ensemble.strategy;
      (** decomposition-tree shapes; [Mixed] (default) round-robins
          low-diameter / BFS-bisection / Gomory–Hu shapes for diversity *)
  parallel : bool;
      (** solve ensemble trees on separate OCaml 5 domains (per-tree work is
          independent and shares only immutable data); off by default *)
  seed : int;
}

val default_options : options

(** The resolution cap applied when [resolution = None]. *)
val default_max_resolution : int

type solution = {
  assignment : int array;  (** vertex -> hierarchy leaf *)
  cost : float;  (** Equation-1 cost of [assignment] on the graph *)
  max_violation : float;  (** true-demand violation factor (1.0 = feasible) *)
  relaxed_tree_cost : float;  (** DP optimum on the winning tree *)
  tree_index : int;  (** which ensemble member won *)
  dp_states : int;  (** total DP table entries over all trees *)
}

(** [solve ?options inst] runs the full pipeline.  The instance's graph must
    be connected (preprocess with {!Hgp_graph.Traversal.ensure_connected}).
    @raise Failure if the quantized instance is infeasible. *)
val solve : ?options:options -> Instance.t -> solution

(** [solve_on_decomposition inst d ~options] solves on one given tree;
    exposed for ensemble ablations. *)
val solve_on_decomposition :
  Instance.t -> Hgp_racke.Decomposition.t -> options:options -> solution

(** [solve_tree tree ~demands hierarchy ~options] solves the HGPT problem
    where the communication graph is itself the tree [tree] and {e every
    node} is a job with the given demand (the paper's dummy-leaf reduction is
    applied internally).  Returns the assignment indexed by original tree
    node, its Equation-1 cost (edges of [tree] as the communication edges),
    the relaxed DP lower bound, and the violation factor. *)
val solve_tree :
  Hgp_tree.Tree.t ->
  demands:float array ->
  Hgp_hierarchy.Hierarchy.t ->
  options:options ->
  int array * float * float * float
