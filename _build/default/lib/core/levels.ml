module Tree = Hgp_tree.Tree
module Dsu = Hgp_util.Dsu

let components t ~kappa ~level =
  let n = Tree.n_nodes t in
  let dsu = Dsu.create n in
  for v = 0 to n - 1 do
    if v <> Tree.root t && kappa.(v) >= level then ignore (Dsu.union dsu v (Tree.parent t v))
  done;
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = Dsu.find dsu v in
    if comp.(r) = -1 then begin
      comp.(r) <- !next;
      incr next
    end;
    comp.(v) <- comp.(r)
  done;
  (comp, !next)

let laminar_family t ~kappa ~h =
  Array.init (h + 1) (fun j ->
      let comp, n_comps = components t ~kappa ~level:j in
      let buckets = Array.make n_comps [] in
      Array.iter (fun l -> buckets.(comp.(l)) <- l :: buckets.(comp.(l))) (Tree.leaves t);
      Array.of_list
        (List.filter_map
           (fun members ->
             if members = [] then None else Some (Array.of_list (List.rev members)))
           (Array.to_list buckets)))

let component_tree t ~kappa ~h =
  let per_level = Array.init (h + 1) (fun j -> components t ~kappa ~level:j) in
  Array.init h (fun j ->
      let comp_j, _ = per_level.(j) in
      let comp_j1, n_j1 = per_level.(j + 1) in
      let parent = Array.make n_j1 (-1) in
      Array.iteri (fun v cj1 -> parent.(cj1) <- comp_j.(v)) comp_j1;
      parent)
