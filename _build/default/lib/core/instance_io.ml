module Hierarchy = Hgp_hierarchy.Hierarchy
module Topology = Hgp_hierarchy.Topology
module Io = Hgp_graph.Io

let to_string (inst : Instance.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "%hgp-instance 1\n";
  Buffer.add_string buf
    (Printf.sprintf "hierarchy %s capacity %.17g\n"
       (Topology.to_spec inst.hierarchy)
       (Hierarchy.leaf_capacity inst.hierarchy));
  Buffer.add_string buf "demands";
  Array.iter (fun d -> Buffer.add_string buf (Printf.sprintf " %.17g" d)) inst.demands;
  Buffer.add_string buf "\ngraph\n";
  Buffer.add_string buf (Io.to_string inst.graph);
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec parse lines hierarchy demands =
    match lines with
    | [] -> failwith "Instance_io.of_string: missing graph section"
    | line :: rest -> (
      let line_t = String.trim line in
      if line_t = "" || line_t.[0] = '#' || line_t = "%hgp-instance 1" then
        parse rest hierarchy demands
      else
        match String.index_opt line_t ' ' with
        | _ when line_t = "graph" -> (hierarchy, demands, rest)
        | Some _ when String.length line_t > 10 && String.sub line_t 0 10 = "hierarchy " -> (
          let spec = String.sub line_t 10 (String.length line_t - 10) in
          match String.split_on_char ' ' spec with
          | [ topo; "capacity"; cap ] ->
            let base = Topology.parse topo in
            let h =
              Hierarchy.create ~degs:(Hierarchy.degs base)
                ~cm:(Array.init (Hierarchy.height base + 1) (Hierarchy.cm base))
                ~leaf_capacity:(float_of_string cap)
            in
            parse rest (Some h) demands
          | [ topo ] -> parse rest (Some (Topology.parse topo)) demands
          | _ -> failwith "Instance_io.of_string: malformed hierarchy line")
        | Some _ when String.length line_t > 8 && String.sub line_t 0 8 = "demands " ->
          let ds =
            String.sub line_t 8 (String.length line_t - 8)
            |> String.split_on_char ' '
            |> List.filter (fun x -> x <> "")
            |> List.map float_of_string
            |> Array.of_list
          in
          parse rest hierarchy (Some ds)
        | _ -> failwith (Printf.sprintf "Instance_io.of_string: unexpected line %S" line_t))
  in
  let hierarchy, demands, graph_lines = parse lines None None in
  let graph = Io.of_string (String.concat "\n" graph_lines) in
  match (hierarchy, demands) with
  | Some h, Some d -> Instance.create graph ~demands:d h
  | None, _ -> failwith "Instance_io.of_string: missing hierarchy line"
  | _, None -> failwith "Instance_io.of_string: missing demands line"

let save inst path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string inst))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
