(** Solution certificates: everything worth checking about an assignment,
    computed independently of how it was produced.

    Used by the CLI's [validate] command and by integration tests; checking a
    solution is much cheaper than finding one, so downstream users can always
    re-certify. *)

type report = {
  n : int;
  assignment_complete : bool;  (** every vertex mapped to a real leaf *)
  cost_eq1 : float;  (** Equation-1 assignment cost *)
  cost_eq3 : float;  (** Equation-3 mirror cost *)
  lemma2_gap : float;  (** |eq1 - eq3| / (1 + eq1); ~0 by Lemma 2 *)
  leaf_loads : float array;
  level_violation : float array;
      (** index [j] for [j = 1..h]: max load/CP(j); index [0] = total/CP(0) *)
  max_violation : float;
  theorem_bound : float;  (** (1+eps)(1+h) *)
  within_theorem_bound : bool;
}

(** [certify inst p ~eps] computes the full report.  Never raises on a
    malformed assignment — [assignment_complete] is simply [false] and
    out-of-range entries are ignored in the load accounting. *)
val certify : Instance.t -> int array -> eps:float -> report

(** [pp ppf report] renders a human-readable multi-line certificate. *)
val pp : Format.formatter -> report -> unit
