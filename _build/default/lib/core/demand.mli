(** Demand quantization (the rounding step of Theorem 4).

    The dynamic program needs integer demands.  The paper scales every demand
    by [n / eps] and floors, giving total units [D = O(n^2 / eps)] — correct
    but enormous; we expose the resolution directly: [resolution] units per
    leaf capacity (choosing [resolution = n / eps] recovers the paper).
    Flooring under-counts each job by less than one unit, so a leaf that
    receives at most [n] jobs is over-packed by at most [n / resolution]
    leaf-capacities — the [(1 + eps)] factor of Theorem 2. *)

type mode =
  | Floor  (** paper's choice: optimal cost preserved, capacity inflated *)
  | Ceil  (** conservative: capacities never violated by rounding, optimum may
              be missed when the packing is tight *)

type t = {
  units : int array;  (** quantized demand per vertex/leaf *)
  unit_size : float;  (** demand represented by one unit *)
  resolution : int;  (** units per leaf capacity *)
  mode : mode;
}

(** [quantize ~demands ~leaf_capacity ~resolution ~mode] converts float
    demands to units.  Requires [resolution >= 1] and all demands in
    [(0, leaf_capacity]].  With [Floor] a demand may round to [0] units. *)
val quantize :
  demands:float array -> leaf_capacity:float -> resolution:int -> mode:mode -> t

(** [resolution_for_eps ~n ~eps] is the paper's resolution
    [ceil (n / eps)]. *)
val resolution_for_eps : n:int -> eps:float -> int

(** [capacity_units t ~hierarchy] is the per-level capacity vector in units:
    element [j] is [CP(j)] for [j = 0..h]. *)
val capacity_units : t -> hierarchy:Hgp_hierarchy.Hierarchy.t -> int array

(** [rounding_error_bound t ~n_jobs] bounds the absolute demand error of any
    set of at most [n_jobs] jobs, in original demand units. *)
val rounding_error_bound : t -> n_jobs:int -> float
