type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top bits to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_incl t lo hi =
  if lo > hi then invalid_arg "Prng.int_incl: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  if not (bound > 0.) then invalid_arg "Prng.float: bound must be positive";
  let r = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 random bits -> uniform in [0,1). *)
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~rate =
  if not (rate > 0.) then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.(log u) /. rate

let pareto t ~alpha ~x_min =
  if not (alpha > 0. && x_min > 0.) then invalid_arg "Prng.pareto";
  let u = 1.0 -. float t 1.0 in
  x_min /. (u ** (1.0 /. alpha))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t ~n ~k =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  if 2 * k >= n then Array.sub (permutation t n) 0 k
  else begin
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
