let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min_max xs =
  check_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0))
    xs

let quantile xs q =
  check_nonempty "Stats.quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let geometric_mean xs =
  check_nonempty "Stats.geometric_mean" xs;
  let sum_log =
    Array.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive element";
        acc +. log x)
      0. xs
  in
  exp (sum_log /. float_of_int (Array.length xs))

let summary xs =
  let lo, hi = min_max xs in
  Printf.sprintf "%.4g +- %.2g [%.4g, %.4g]" (mean xs) (stddev xs) lo hi
