type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ~header ?aligns rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> ncols then invalid_arg "Tablefmt.render: aligns length mismatch";
      Array.of_list a
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let normalize row =
    let len = List.length row in
    if len > ncols then invalid_arg "Tablefmt.render: row longer than header";
    row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let render_row row =
    String.concat "  " (List.mapi (fun i cell -> pad aligns.(i) widths.(i) cell) row)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let print ~title ~header ?aligns rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~header ?aligns rows)

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 1e6 || (Float.abs x < 1e-3 && x <> 0.) then Printf.sprintf "%.3e" x
  else Printf.sprintf "%.4g" x
