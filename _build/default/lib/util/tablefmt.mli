(** Plain-text aligned table rendering for the experiment harness. *)

type align = Left | Right

(** [render ~header ?aligns rows] renders an aligned table with a separator
    under the header.  [aligns] defaults to left for the first column and
    right for the rest.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)
val render : header:string list -> ?aligns:align list -> string list list -> string

(** [print ~title ~header ?aligns rows] prints a titled table to stdout. *)
val print : title:string -> header:string list -> ?aligns:align list -> string list list -> unit

(** [fmt_float x] renders a float compactly ("123.4", "0.0123", "1.2e+07"). *)
val fmt_float : float -> string
