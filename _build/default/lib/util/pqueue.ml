type 'a entry = { prio : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let grow h =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = max 8 (2 * cap) in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.data.(i).prio < h.data.(p).prio then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(p);
      h.data.(p) <- tmp;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.data.(l).prio < h.data.(!smallest).prio then smallest := l;
  if r < h.len && h.data.(r).prio < h.data.(!smallest).prio then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~prio value =
  let e = { prio; value } in
  if h.len = 0 && Array.length h.data = 0 then h.data <- Array.make 8 e
  else grow h;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_min h =
  if h.len = 0 then raise Not_found;
  let e = h.data.(0) in
  (e.prio, e.value)

let pop_min h =
  if h.len = 0 then raise Not_found;
  let e = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  (e.prio, e.value)

module Indexed = struct
  type t = {
    keys : int array; (* heap position -> key *)
    pos : int array; (* key -> heap position, or -1 *)
    prios : float array; (* key -> priority *)
    mutable len : int;
  }

  let create n =
    { keys = Array.make n (-1); pos = Array.make n (-1); prios = Array.make n 0.; len = 0 }

  let is_empty h = h.len = 0
  let length h = h.len
  let mem h k = h.pos.(k) >= 0

  let priority h k = if mem h k then h.prios.(k) else raise Not_found

  let swap h i j =
    let ki = h.keys.(i) and kj = h.keys.(j) in
    h.keys.(i) <- kj;
    h.keys.(j) <- ki;
    h.pos.(ki) <- j;
    h.pos.(kj) <- i

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if h.prios.(h.keys.(i)) < h.prios.(h.keys.(p)) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && h.prios.(h.keys.(l)) < h.prios.(h.keys.(!smallest)) then smallest := l;
    if r < h.len && h.prios.(h.keys.(r)) < h.prios.(h.keys.(!smallest)) then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let insert h k prio =
    if mem h k then invalid_arg "Pqueue.Indexed.insert: key already present";
    h.keys.(h.len) <- k;
    h.pos.(k) <- h.len;
    h.prios.(k) <- prio;
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let decrease h k prio =
    if not (mem h k) then invalid_arg "Pqueue.Indexed.decrease: key absent";
    if prio < h.prios.(k) then begin
      h.prios.(k) <- prio;
      sift_up h h.pos.(k)
    end

  let insert_or_decrease h k prio = if mem h k then decrease h k prio else insert h k prio

  let pop_min h =
    if h.len = 0 then raise Not_found;
    let k = h.keys.(0) in
    let p = h.prios.(k) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      let last = h.keys.(h.len) in
      h.keys.(0) <- last;
      h.pos.(last) <- 0;
      sift_down h 0
    end;
    h.pos.(k) <- -1;
    (k, p)
end
