(** Disjoint-set union (union–find) with path compression and union by rank.

    Used for connected components, Kruskal-style clustering and laminar-family
    bookkeeping.  All operations are amortized near-constant time. *)

type t

(** [create n] builds a structure over elements [0..n-1], each a singleton. *)
val create : int -> t

(** [size t] is the number of elements (not sets). *)
val size : t -> int

(** [find t x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union t x y] merges the sets of [x] and [y]; returns [true] iff they were
    previously distinct. *)
val union : t -> int -> int -> bool

(** [same t x y] tests whether [x] and [y] are in the same set. *)
val same : t -> int -> int -> bool

(** [set_size t x] is the number of elements in [x]'s set. *)
val set_size : t -> int -> int

(** [count_sets t] is the current number of disjoint sets. *)
val count_sets : t -> int

(** [groups t] lists every set as an array of its members, representatives in
    increasing order. *)
val groups : t -> int array list
