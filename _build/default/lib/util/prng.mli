(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    Every randomized component of the library threads an explicit [Prng.t] so
    that experiments are reproducible from a single seed.  The generator is
    mutable; use {!split} to derive statistically independent streams for
    parallel or per-trial use. *)

type t

(** [create seed] returns a fresh generator determined entirely by [seed]. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    independent of the subsequent outputs of [t]. *)
val split : t -> t

(** [bits64 t] returns 64 uniformly random bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_incl t lo hi] is uniform in [\[lo, hi\]].  Requires [lo <= hi]. *)
val int_incl : t -> int -> int -> int

(** [float t bound] is uniform in [\[0, bound)].  Requires [bound > 0.]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [exponential t ~rate] samples an exponential variate with the given rate.
    Requires [rate > 0.]. *)
val exponential : t -> rate:float -> float

(** [pareto t ~alpha ~x_min] samples a Pareto variate with shape [alpha] and
    scale [x_min]. *)
val pareto : t -> alpha:float -> x_min:float -> float

(** [shuffle t a] permutes array [a] uniformly in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a uniform random permutation of [0..n-1]. *)
val permutation : t -> int -> int array

(** [choose t a] is a uniform element of [a].  Requires [a] non-empty. *)
val choose : t -> 'a array -> 'a

(** [sample_without_replacement t ~n ~k] draws [k] distinct values from
    [0..n-1], in random order.  Requires [0 <= k <= n]. *)
val sample_without_replacement : t -> n:int -> k:int -> int array
