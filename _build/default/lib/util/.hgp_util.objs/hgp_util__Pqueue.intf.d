lib/util/pqueue.mli:
