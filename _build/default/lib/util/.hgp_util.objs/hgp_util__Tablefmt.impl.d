lib/util/tablefmt.ml: Array Float List Printf String
