lib/util/dsu.ml: Array Hashtbl List
