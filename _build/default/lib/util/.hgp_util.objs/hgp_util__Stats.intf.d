lib/util/stats.mli:
