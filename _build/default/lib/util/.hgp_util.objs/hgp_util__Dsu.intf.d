lib/util/dsu.mli:
