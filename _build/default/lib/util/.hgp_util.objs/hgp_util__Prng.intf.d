lib/util/prng.mli:
