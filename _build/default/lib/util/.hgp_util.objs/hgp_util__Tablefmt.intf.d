lib/util/tablefmt.mli:
