type t = {
  parent : int array;
  rank : int array;
  sizes : int array;
  mutable n_sets : int;
}

let create n =
  {
    parent = Array.init n (fun i -> i);
    rank = Array.make n 0;
    sizes = Array.make n 1;
    n_sets = n;
  }

let size t = Array.length t.parent

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    let rx, ry = if t.rank.(rx) < t.rank.(ry) then ry, rx else rx, ry in
    t.parent.(ry) <- rx;
    t.sizes.(rx) <- t.sizes.(rx) + t.sizes.(ry);
    if t.rank.(rx) = t.rank.(ry) then t.rank.(rx) <- t.rank.(rx) + 1;
    t.n_sets <- t.n_sets - 1;
    true
  end

let same t x y = find t x = find t y

let set_size t x = t.sizes.(find t x)

let count_sets t = t.n_sets

let groups t =
  let n = size t in
  let buckets = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find t i in
    let existing = try Hashtbl.find buckets r with Not_found -> [] in
    Hashtbl.replace buckets r (i :: existing)
  done;
  let reps = Hashtbl.fold (fun r _ acc -> r :: acc) buckets [] in
  let reps = List.sort compare reps in
  List.map
    (fun r -> Array.of_list (List.rev (Hashtbl.find buckets r)))
    reps
