(** Small descriptive-statistics helpers used by the experiment harness. *)

(** [mean xs] is the arithmetic mean.  Requires [xs] non-empty. *)
val mean : float array -> float

(** [stddev xs] is the sample standard deviation (n-1 denominator; [0.] for a
    single observation). *)
val stddev : float array -> float

(** [min_max xs] is [(min, max)].  Requires [xs] non-empty. *)
val min_max : float array -> float * float

(** [quantile xs q] is the [q]-quantile using linear interpolation,
    [0. <= q <= 1.].  Requires [xs] non-empty. *)
val quantile : float array -> float -> float

(** [median xs] is [quantile xs 0.5]. *)
val median : float array -> float

(** [geometric_mean xs] requires every element positive. *)
val geometric_mean : float array -> float

(** [summary xs] renders ["mean +- sd [min, max]"]. *)
val summary : float array -> string
