(** Mutable binary min-heap keyed by floats, with optional decrease-key via
    element handles.

    Two interfaces are provided: a plain polymorphic heap ({!t}) and an
    indexed heap ({!Indexed.t}) over elements [0..n-1] supporting
    [decrease_key], as needed by Dijkstra-style algorithms. *)

type 'a t

(** [create ()] is an empty heap. *)
val create : unit -> 'a t

(** [length h] is the number of stored elements. *)
val length : 'a t -> int

(** [is_empty h] is [length h = 0]. *)
val is_empty : 'a t -> bool

(** [push h ~prio x] inserts [x] with priority [prio]. *)
val push : 'a t -> prio:float -> 'a -> unit

(** [pop_min h] removes and returns the minimum-priority binding.
    @raise Not_found if the heap is empty. *)
val pop_min : 'a t -> float * 'a

(** [peek_min h] returns the minimum-priority binding without removing it.
    @raise Not_found if the heap is empty. *)
val peek_min : 'a t -> float * 'a

module Indexed : sig
  type t

  (** [create n] is an empty indexed heap over keys [0..n-1]. *)
  val create : int -> t

  val is_empty : t -> bool
  val length : t -> int

  (** [mem h k] tests whether key [k] is currently in the heap. *)
  val mem : t -> int -> bool

  (** [priority h k] is the current priority of [k].
      @raise Not_found if [k] is absent. *)
  val priority : t -> int -> float

  (** [insert h k prio] inserts key [k].  Requires [k] absent. *)
  val insert : t -> int -> float -> unit

  (** [decrease h k prio] lowers [k]'s priority to [prio] (no-op when [prio]
      is not lower).  Requires [k] present. *)
  val decrease : t -> int -> float -> unit

  (** [insert_or_decrease h k prio] inserts [k] or lowers its priority. *)
  val insert_or_decrease : t -> int -> float -> unit

  (** [pop_min h] removes and returns the minimum binding as [(key, prio)].
      @raise Not_found if the heap is empty. *)
  val pop_min : t -> int * float
end
