(* Minimum leaf-separating cut by tree DP.

   For every node v define:
   - dp_s.(v): min cost within subtree(v) given v's residual component is on
     the S side (may contain only S leaves);
   - dp_o.(v): same with v on the other side.
   A child is either kept (same side) or its edge is cut (opposite side pays
   the edge).  Leaves are forced to their own side. *)

let solve t ~in_set =
  let n = Tree.n_nodes t in
  let dp_s = Array.make n 0. and dp_o = Array.make n 0. in
  (* choice.(v).(i): for child i of v, whether the child edge is cut when v is
     on the S side (bit 0) / other side (bit 1). *)
  let cut_if_s = Array.make n [||] in
  let cut_if_o = Array.make n [||] in
  Array.iter
    (fun v ->
      if Tree.is_leaf t v then begin
        if in_set v then begin
          dp_s.(v) <- 0.;
          dp_o.(v) <- infinity
        end
        else begin
          dp_s.(v) <- infinity;
          dp_o.(v) <- 0.
        end
      end
      else begin
        let cs = Tree.children t v in
        let k = Array.length cs in
        cut_if_s.(v) <- Array.make k false;
        cut_if_o.(v) <- Array.make k false;
        let s = ref 0. and o = ref 0. in
        Array.iteri
          (fun i c ->
            let w = Tree.edge_weight t c in
            let keep_s = dp_s.(c) and cut_s = dp_o.(c) +. w in
            (* Ties prefer keeping the edge: fewer cut edges, hence the
               smaller mirror region required by the paper's tie-breaking. *)
            if cut_s < keep_s then begin
              s := !s +. cut_s;
              cut_if_s.(v).(i) <- true
            end
            else s := !s +. keep_s;
            let keep_o = dp_o.(c) and cut_o = dp_s.(c) +. w in
            if cut_o < keep_o then begin
              o := !o +. cut_o;
              cut_if_o.(v).(i) <- true
            end
            else o := !o +. keep_o)
          cs;
        dp_s.(v) <- !s;
        dp_o.(v) <- !o
      end)
    (Tree.post_order t);
  (dp_s, dp_o, cut_if_s, cut_if_o)

let reconstruct t (dp_s, dp_o, cut_if_s, cut_if_o) =
  let r = Tree.root t in
  let cut_edges = ref [] in
  let side = Array.make (Tree.n_nodes t) false in
  let rec go v on_s_side =
    side.(v) <- on_s_side;
    if not (Tree.is_leaf t v) then begin
      let cs = Tree.children t v in
      let cuts = if on_s_side then cut_if_s.(v) else cut_if_o.(v) in
      Array.iteri
        (fun i c ->
          if cuts.(i) then begin
            cut_edges := c :: !cut_edges;
            go c (not on_s_side)
          end
          else go c on_s_side)
        cs
    end
  in
  let root_on_s = dp_s.(r) <= dp_o.(r) in
  go r root_on_s;
  let value = min dp_s.(r) dp_o.(r) in
  (value, !cut_edges, side)

let min_cut t ~in_set =
  let any_in = Array.exists in_set (Tree.leaves t) in
  let any_out = Array.exists (fun l -> not (in_set l)) (Tree.leaves t) in
  if not (any_in && any_out) then (0., [])
  else begin
    let value, edges, _ = reconstruct t (solve t ~in_set) in
    (value, edges)
  end

let min_cut_weight t ~in_set = fst (min_cut t ~in_set)

let mirror_region t ~in_set =
  let n = Tree.n_nodes t in
  let any_in = Array.exists in_set (Tree.leaves t) in
  if not any_in then Array.make n false
  else if not (Array.exists (fun l -> not (in_set l)) (Tree.leaves t)) then
    Array.make n true
  else begin
    let _, _, side = reconstruct t (solve t ~in_set) in
    side
  end

let brute_force_weight t ~in_set =
  let n = Tree.n_nodes t in
  let edges =
    List.filter (fun v -> v <> Tree.root t) (List.init n (fun i -> i))
  in
  let m = List.length edges in
  if m > 20 then invalid_arg "Treecut.brute_force_weight: too large";
  let edge_arr = Array.of_list edges in
  let leaves = Tree.leaves t in
  let best = ref infinity in
  for mask = 0 to (1 lsl m) - 1 do
    let dsu = Hgp_util.Dsu.create n in
    (* Union kept edges. *)
    Array.iteri
      (fun i c ->
        if (mask lsr i) land 1 = 0 then ignore (Hgp_util.Dsu.union dsu c (Tree.parent t c)))
      edge_arr;
    let valid = ref true in
    Array.iter
      (fun a ->
        Array.iter
          (fun b ->
            if in_set a && not (in_set b) && Hgp_util.Dsu.same dsu a b then valid := false)
          leaves)
      leaves;
    if !valid then begin
      let cost = ref 0. in
      Array.iteri
        (fun i c -> if (mask lsr i) land 1 = 1 then cost := !cost +. Tree.edge_weight t c)
        edge_arr;
      if !cost < !best then best := !cost
    end
  done;
  !best
