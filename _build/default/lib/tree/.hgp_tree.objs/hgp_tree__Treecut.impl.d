lib/tree/treecut.ml: Array Hgp_util List Tree
