lib/tree/tree.mli: Format Hgp_graph
