lib/tree/treecut.mli: Tree
