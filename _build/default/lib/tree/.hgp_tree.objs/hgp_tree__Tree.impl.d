lib/tree/tree.ml: Array Format Hashtbl Hgp_graph List Queue Stack
