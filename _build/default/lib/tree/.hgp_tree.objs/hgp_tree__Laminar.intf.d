lib/tree/laminar.mli:
