lib/tree/laminar.ml: Array Hashtbl
