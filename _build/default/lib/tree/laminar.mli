(** Laminar-family utilities over integer sets, used to validate HGPT
    solutions (Definitions 3 and 4 of the paper). *)

(** A level structure: [collections.(j)] lists the Level-(j) sets, each an
    integer array of leaf ids. *)
type family = int array array array

(** [is_partition sets ~universe] tests that [sets] partitions [universe]
    (given as a sorted array of distinct elements). *)
val is_partition : int array array -> universe:int array -> bool

(** [refines fine coarse] tests that every set of [fine] is contained in some
    set of [coarse]. *)
val refines : int array array -> int array array -> bool

(** [is_laminar fam ~universe] tests the full structure of Definition 4:
    exactly one Level-0 set equal to the universe, every level a partition of
    the universe, and each level refining the previous. *)
val is_laminar : family -> universe:int array -> bool

(** [refinement_counts fam] returns, for each level [j < h] and each Level-(j)
    set, the number of Level-(j+1) sets it splits into — the quantity bounded
    by [DEG(j)] in Definition 3. *)
val refinement_counts : family -> int list array

(** [demands fam ~demand] sums [demand l] over each set, per level. *)
val demands : family -> demand:(int -> float) -> float list array
