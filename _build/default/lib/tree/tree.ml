type t = {
  root : int;
  parents : int array;
  weights : float array;
  children : int array array;
  post : int array;
  depths : int array;
  leaf_ids : int array;
}

let compute_children n root parents =
  let counts = Array.make n 0 in
  Array.iteri
    (fun v p ->
      if v <> root then begin
        if p < 0 || p >= n || p = v then invalid_arg "Tree: bad parent pointer";
        counts.(p) <- counts.(p) + 1
      end)
    parents;
  let children = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make n 0 in
  for v = 0 to n - 1 do
    if v <> root then begin
      let p = parents.(v) in
      children.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  children

let compute_post n root children =
  (* Iterative post-order to avoid stack overflow on deep trees. *)
  let post = Array.make n 0 in
  let idx = ref 0 in
  let stack = Stack.create () in
  Stack.push (root, 0) stack;
  while not (Stack.is_empty stack) do
    let v, next_child = Stack.pop stack in
    if next_child < Array.length children.(v) then begin
      Stack.push (v, next_child + 1) stack;
      Stack.push (children.(v).(next_child), 0) stack
    end
    else begin
      post.(!idx) <- v;
      incr idx
    end
  done;
  if !idx <> n then invalid_arg "Tree: parent structure is not a connected tree";
  post

let of_parents ~root ~parents ~weights =
  let n = Array.length parents in
  if Array.length weights <> n then invalid_arg "Tree.of_parents: length mismatch";
  if root < 0 || root >= n then invalid_arg "Tree.of_parents: root out of range";
  Array.iteri
    (fun v w ->
      if v <> root && not (w >= 0.) then invalid_arg "Tree.of_parents: negative weight")
    weights;
  let children = compute_children n root parents in
  let post = compute_post n root children in
  let depths = Array.make n 0 in
  (* Process in reverse post-order (parents before children). *)
  for i = n - 1 downto 0 do
    let v = post.(i) in
    if v <> root then depths.(v) <- depths.(parents.(v)) + 1
  done;
  let leaf_ids =
    Array.of_list
      (List.filter
         (fun v -> Array.length children.(v) = 0)
         (List.init n (fun i -> i)))
  in
  {
    root;
    parents = Array.copy parents;
    weights = Array.copy weights;
    children;
    post;
    depths;
    leaf_ids;
  }

let of_graph g ~root =
  let n = Hgp_graph.Graph.n g in
  if Hgp_graph.Graph.m g <> n - 1 then invalid_arg "Tree.of_graph: not a tree (edge count)";
  let parents = Array.make n (-1) in
  let weights = Array.make n 0. in
  let visited = Array.make n false in
  let q = Queue.create () in
  visited.(root) <- true;
  Queue.add root q;
  let seen = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Hgp_graph.Graph.iter_neighbors
      (fun v w ->
        if not visited.(v) then begin
          visited.(v) <- true;
          parents.(v) <- u;
          weights.(v) <- w;
          incr seen;
          Queue.add v q
        end)
      g u
  done;
  if !seen <> n then invalid_arg "Tree.of_graph: graph is disconnected";
  of_parents ~root ~parents ~weights

let n_nodes t = Array.length t.parents
let root t = t.root
let parent t v = t.parents.(v)

let edge_weight t v =
  if v = t.root then invalid_arg "Tree.edge_weight: root has no parent edge";
  t.weights.(v)

let children t v = t.children.(v)
let is_leaf t v = Array.length t.children.(v) = 0
let leaves t = t.leaf_ids
let n_leaves t = Array.length t.leaf_ids
let post_order t = t.post
let depth t v = t.depths.(v)

let subtree_leaves t v =
  let acc = ref [] in
  let rec go u =
    if is_leaf t u then acc := u :: !acc
    else Array.iter go t.children.(u)
  in
  go v;
  Array.of_list (List.rev !acc)

let lift_internal_jobs t =
  let n = n_nodes t in
  let internals = List.filter (fun v -> not (is_leaf t v)) (List.init n (fun i -> i)) in
  let extra = List.length internals in
  let parents = Array.make (n + extra) (-1) in
  let weights = Array.make (n + extra) 0. in
  for v = 0 to n - 1 do
    parents.(v) <- t.parents.(v);
    weights.(v) <- t.weights.(v)
  done;
  let job_leaf = Array.init n (fun v -> v) in
  List.iteri
    (fun i v ->
      let d = n + i in
      parents.(d) <- v;
      weights.(d) <- infinity;
      job_leaf.(v) <- d)
    internals;
  (of_parents ~root:t.root ~parents ~weights, job_leaf)

let binarize t =
  let n = n_nodes t in
  (* Collect new nodes: originals keep their ids; dummies are appended. *)
  let next_id = ref n in
  let dummy_parents = Hashtbl.create 16 in
  let new_parent = Array.make n (-1) in
  let new_weight = Array.make n 0. in
  Array.iter
    (fun v ->
      let cs = t.children.(v) in
      let deg = Array.length cs in
      if deg <= 2 then
        Array.iter
          (fun c ->
            new_parent.(c) <- v;
            new_weight.(c) <- t.weights.(c))
          cs
      else begin
        (* Chain of deg-1 dummies under v; each dummy takes one real child,
           the last takes two. *)
        let rec chain parent_node remaining =
          match remaining with
          | [ c1; c2 ] ->
            new_parent.(c1) <- parent_node;
            new_weight.(c1) <- t.weights.(c1);
            new_parent.(c2) <- parent_node;
            new_weight.(c2) <- t.weights.(c2)
          | c :: rest ->
            new_parent.(c) <- parent_node;
            new_weight.(c) <- t.weights.(c);
            let d = !next_id in
            incr next_id;
            Hashtbl.add dummy_parents d (parent_node, infinity);
            chain d rest
          | [] -> ()
        in
        chain v (Array.to_list cs)
      end)
    t.post;
  let total = !next_id in
  let parents_arr = Array.make total (-1) in
  let weights_arr = Array.make total 0. in
  for v = 0 to n - 1 do
    parents_arr.(v) <- (if v = t.root then -1 else new_parent.(v));
    weights_arr.(v) <- new_weight.(v)
  done;
  Hashtbl.iter
    (fun d (p, w) ->
      parents_arr.(d) <- p;
      weights_arr.(d) <- w)
    dummy_parents;
  let mapping = Array.init n (fun v -> v) in
  (of_parents ~root:t.root ~parents:parents_arr ~weights:weights_arr, mapping)

let total_edge_weight t =
  let acc = ref 0. in
  for v = 0 to n_nodes t - 1 do
    if v <> t.root && t.weights.(v) <> infinity then acc := !acc +. t.weights.(v)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "tree(nodes=%d, leaves=%d, root=%d)" (n_nodes t) (n_leaves t) t.root
