type family = int array array array

let sorted_copy a =
  let c = Array.copy a in
  Array.sort compare c;
  c

let is_partition sets ~universe =
  let all = Array.concat (Array.to_list sets) in
  let all = sorted_copy all in
  if Array.length all <> Array.length universe then false
  else begin
    let distinct = ref true in
    Array.iteri
      (fun i x ->
        if i > 0 && all.(i - 1) = x then distinct := false;
        if x <> universe.(i) then distinct := false)
      all;
    !distinct
  end

let refines fine coarse =
  (* Map each element to its coarse set id, then check constancy per fine set. *)
  let owner = Hashtbl.create 64 in
  Array.iteri
    (fun i set -> Array.iter (fun x -> Hashtbl.replace owner x i) set)
    coarse;
  Array.for_all
    (fun set ->
      Array.length set = 0
      ||
      match Hashtbl.find_opt owner set.(0) with
      | None -> false
      | Some id ->
        Array.for_all
          (fun x -> match Hashtbl.find_opt owner x with Some id' -> id' = id | None -> false)
          set)
    fine

let is_laminar fam ~universe =
  let h = Array.length fam - 1 in
  h >= 0
  && Array.length fam.(0) = 1
  && sorted_copy fam.(0).(0) = universe
  && (let ok = ref true in
      for j = 0 to h do
        if not (is_partition fam.(j) ~universe) then ok := false
      done;
      for j = 0 to h - 1 do
        if not (refines fam.(j + 1) fam.(j)) then ok := false
      done;
      !ok)

let refinement_counts fam =
  let h = Array.length fam - 1 in
  Array.init h (fun j ->
      let coarse = fam.(j) and fine = fam.(j + 1) in
      let owner = Hashtbl.create 64 in
      Array.iteri
        (fun i set -> Array.iter (fun x -> Hashtbl.replace owner x i) set)
        coarse;
      let counts = Array.make (Array.length coarse) 0 in
      Array.iter
        (fun set ->
          if Array.length set > 0 then begin
            match Hashtbl.find_opt owner set.(0) with
            | Some id -> counts.(id) <- counts.(id) + 1
            | None -> ()
          end)
        fine;
      Array.to_list counts)

let demands fam ~demand =
  Array.map
    (fun sets ->
      Array.to_list
        (Array.map (fun set -> Array.fold_left (fun acc x -> acc +. demand x) 0. set) sets))
    fam
