(** Rooted weighted trees [T] — the domain of the HGPT problem and the shape
    of decomposition trees.

    Nodes are [0..n-1].  Every non-root node has a unique parent edge, so an
    edge is identified with its child endpoint throughout the library.  Jobs
    live at the leaves (nodes without children); internal nodes carry no
    demand, matching Definition 2 of the paper (the reduction that moves
    internal jobs to dummy leaves is {!lift_internal_jobs}). *)

type t

(** [of_parents ~root ~parents ~weights] builds a tree; [parents.(root)] must
    be [-1] and is ignored, [weights.(v)] is the weight of the edge from [v]
    to its parent ([weights.(root)] ignored).  Weights must be nonnegative
    (use [infinity] for uncuttable edges).
    @raise Invalid_argument if the parent structure is not a tree. *)
val of_parents : root:int -> parents:int array -> weights:float array -> t

(** [of_graph g ~root] interprets the undirected graph [g] (which must be a
    tree: connected with [n-1] edges) as a tree rooted at [root]. *)
val of_graph : Hgp_graph.Graph.t -> root:int -> t

(** [n_nodes t] is the number of nodes. *)
val n_nodes : t -> int

(** [root t] is the root node id. *)
val root : t -> int

(** [parent t v] is the parent of [v], [-1] for the root. *)
val parent : t -> int -> int

(** [edge_weight t v] is the weight of the edge from [v] to its parent.
    Requires [v <> root t]. *)
val edge_weight : t -> int -> float

(** [children t v] is the (shared, do not mutate) array of children of [v]. *)
val children : t -> int -> int array

(** [is_leaf t v] tests whether [v] has no children. *)
val is_leaf : t -> int -> bool

(** [leaves t] is the array of leaf ids in increasing order. *)
val leaves : t -> int array

(** [n_leaves t] is the number of leaves. *)
val n_leaves : t -> int

(** [post_order t] lists all nodes with every node after its children. *)
val post_order : t -> int array

(** [depth t v] is the number of edges from the root to [v]. *)
val depth : t -> int -> int

(** [subtree_leaves t v] lists the leaves in the subtree of [v]. *)
val subtree_leaves : t -> int -> int array

(** [lift_internal_jobs t] implements the paper's reduction for instances
    where internal nodes also carry jobs: every internal node [v] gains a
    dummy leaf attached by an [infinity]-weight edge.  Returns the new tree
    and [job_leaf] mapping each original node to the leaf that represents its
    job (the node itself if it was already a leaf). *)
val lift_internal_jobs : t -> t * int array

(** [binarize t] implements the paper's binarization: each node with more
    than two children is replaced by a chain of dummy nodes joined by
    [infinity]-weight edges, the original child edges keeping their weights.
    Returns the new tree and the (injective) map from old node ids to new
    ones.  Solutions and costs over the leaves are preserved.  (The DP folds
    children incrementally so it does not require this; it is kept for
    cross-checking the equivalence.) *)
val binarize : t -> t * int array

(** [total_edge_weight t] sums all finite edge weights. *)
val total_edge_weight : t -> float

(** [pp] prints a one-line summary. *)
val pp : Format.formatter -> t -> unit
