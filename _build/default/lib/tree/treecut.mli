(** Minimum cuts separating leaf sets in a tree — the [CUT_T] operator of the
    paper (Section 3). *)

(** [min_cut t ~in_set] returns [(weight, cut_edges)] where [cut_edges] (each
    identified by its child endpoint) is a minimum-weight edge set whose
    removal disconnects every leaf [l] with [in_set l] from every leaf
    without.  Runs in [O(n)] by dynamic programming.  When one side is empty
    the cut is empty. *)
val min_cut : Tree.t -> in_set:(int -> bool) -> float * int list

(** [min_cut_weight t ~in_set] is the weight only. *)
val min_cut_weight : Tree.t -> in_set:(int -> bool) -> float

(** [mirror_region t ~in_set] returns the membership array of the mirror set
    [N(S)] (Definition 5): nodes in components of [T \ CUT_T(S)] containing a
    leaf of [S], for the specific minimum cut computed by {!min_cut}. *)
val mirror_region : Tree.t -> in_set:(int -> bool) -> bool array

(** [brute_force_weight t ~in_set] enumerates all edge subsets of trees with
    at most 20 edges, for testing. *)
val brute_force_weight : Tree.t -> in_set:(int -> bool) -> float
