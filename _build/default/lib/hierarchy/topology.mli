(** Parsing, rendering and derivation of hierarchy topologies.

    The textual format is ["DEGSxDEGS@CM,CM,..."], e.g. ["2x4x2@100,30,8,0"]
    for a dual-socket server, or a preset name from
    {!Hierarchy.Presets.all}.  This module also derives cost multipliers from
    physical latency tables (the way a practitioner would calibrate [cm] from
    measured core-to-core latencies). *)

(** [parse s] accepts a preset name or an explicit spec.
    @raise Invalid_argument on malformed input. *)
val parse : string -> Hierarchy.t

(** [parse_result s] is [parse] with an error message instead of an
    exception. *)
val parse_result : string -> (Hierarchy.t, string) result

(** [to_spec h] renders a hierarchy back to the ["degs@cms"] format
    (round-trips through {!parse}). *)
val to_spec : Hierarchy.t -> string

(** [of_latencies ~degs ~latencies ~leaf_capacity] builds a hierarchy whose
    cost multipliers are communication latencies per level: [latencies.(j)]
    is the cost of a message between tasks whose lowest common ancestor is at
    Level-(j) (e.g. nanoseconds).  Same length/monotonicity rules as
    {!Hierarchy.create}'s [cm]. *)
val of_latencies :
  degs:int array -> latencies:float array -> leaf_capacity:float -> Hierarchy.t

(** [describe h] is a human-readable multi-line description: one line per
    level with node counts, capacities, and multipliers. *)
val describe : Hierarchy.t -> string
