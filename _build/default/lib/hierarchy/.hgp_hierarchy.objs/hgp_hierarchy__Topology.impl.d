lib/hierarchy/topology.ml: Array Buffer Format Hierarchy List Printf String
