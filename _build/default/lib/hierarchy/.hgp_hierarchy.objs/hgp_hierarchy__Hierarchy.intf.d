lib/hierarchy/hierarchy.mli: Format
