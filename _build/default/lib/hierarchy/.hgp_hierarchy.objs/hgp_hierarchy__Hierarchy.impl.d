lib/hierarchy/hierarchy.ml: Array Format Printf String
