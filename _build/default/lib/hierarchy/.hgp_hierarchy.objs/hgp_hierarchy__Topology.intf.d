lib/hierarchy/topology.mli: Hierarchy
