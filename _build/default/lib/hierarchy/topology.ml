let parse_result s =
  match String.split_on_char '@' s with
  | [ preset ] -> (
    match List.assoc_opt preset Hierarchy.Presets.all with
    | Some h -> Ok h
    | None ->
      Error
        (Printf.sprintf "unknown hierarchy preset %S (know: %s)" preset
           (String.concat ", " (List.map fst Hierarchy.Presets.all))))
  | [ degs_s; cms_s ] -> (
    try
      let degs =
        if degs_s = "" then [||]
        else String.split_on_char 'x' degs_s |> List.map int_of_string |> Array.of_list
      in
      let cm =
        String.split_on_char ',' cms_s |> List.map float_of_string |> Array.of_list
      in
      Ok (Hierarchy.create ~degs ~cm ~leaf_capacity:1.0)
    with
    | Invalid_argument m -> Error m
    | Failure _ -> Error (Printf.sprintf "malformed hierarchy spec %S" s))
  | _ -> Error "expected PRESET or DEGSxDEGS@CM,CM,..."

let parse s =
  match parse_result s with
  | Ok h -> h
  | Error m -> invalid_arg ("Topology.parse: " ^ m)

let to_spec h =
  let degs =
    Hierarchy.degs h |> Array.map string_of_int |> Array.to_list |> String.concat "x"
  in
  let cms =
    List.init
      (Hierarchy.height h + 1)
      (fun j -> Printf.sprintf "%g" (Hierarchy.cm h j))
    |> String.concat ","
  in
  degs ^ "@" ^ cms

let of_latencies ~degs ~latencies ~leaf_capacity =
  Hierarchy.create ~degs ~cm:latencies ~leaf_capacity

let level_name j h =
  (* Conventional names for common heights; generic otherwise. *)
  let names =
    match h with
    | 1 -> [| "root"; "core" |]
    | 2 -> [| "machine"; "socket"; "core" |]
    | 3 -> [| "machine"; "socket"; "core"; "hyperthread" |]
    | 4 -> [| "pod"; "rack"; "server"; "socket"; "core" |]
    | _ -> [||]
  in
  if j < Array.length names then names.(j) else Printf.sprintf "level-%d" j

let describe h =
  let buf = Buffer.create 256 in
  let height = Hierarchy.height h in
  Buffer.add_string buf (Format.asprintf "%a\n" Hierarchy.pp h);
  for j = 0 to height do
    Buffer.add_string buf
      (Printf.sprintf "  level %d (%s): %d node(s), capacity %g, cm %g%s\n" j
         (level_name j height)
         (Hierarchy.nodes_at_level h j)
         (Hierarchy.capacity h j) (Hierarchy.cm h j)
         (if j < height then Printf.sprintf ", fan-out %d" (Hierarchy.deg h j) else ""))
  done;
  Buffer.contents buf
