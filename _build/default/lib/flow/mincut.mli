(** Global minimum cut of an undirected weighted graph (Stoer–Wagner). *)

(** [stoer_wagner g] returns [(value, side)] where [value] is the weight of a
    global minimum cut and [side] is the membership array of one side.
    Requires [Graph.n g >= 2] and a connected graph for a meaningful result
    (a disconnected graph yields value [0.] and one component as the side). *)
val stoer_wagner : Hgp_graph.Graph.t -> float * bool array

(** [brute_force g] enumerates all 2^(n-1) cuts; for cross-checking on tiny
    graphs ([n <= 20]). *)
val brute_force : Hgp_graph.Graph.t -> float * bool array
