module Graph = Hgp_graph.Graph

let stoer_wagner g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Mincut.stoer_wagner: need at least two vertices";
  (* Dense adjacency matrix of the (progressively merged) graph. *)
  let w = Array.make_matrix n n 0. in
  Graph.iter_edges
    (fun u v wt ->
      w.(u).(v) <- w.(u).(v) +. wt;
      w.(v).(u) <- w.(v).(u) +. wt)
    g;
  (* members.(i): original vertices currently merged into super-vertex i. *)
  let members = Array.init n (fun i -> [ i ]) in
  let active = Array.make n true in
  let best_value = ref infinity in
  let best_side = ref [] in
  let n_active = ref n in
  while !n_active > 1 do
    (* Minimum cut phase: maximum adjacency ordering. *)
    let in_a = Array.make n false in
    let key = Array.make n 0. in
    let prev = ref (-1) in
    let last = ref (-1) in
    for _ = 1 to !n_active do
      (* Select the active vertex not in A with maximum key. *)
      let sel = ref (-1) in
      for v = 0 to n - 1 do
        if active.(v) && not in_a.(v) && (!sel = -1 || key.(v) > key.(!sel)) then sel := v
      done;
      let s = !sel in
      in_a.(s) <- true;
      prev := !last;
      last := s;
      for v = 0 to n - 1 do
        if active.(v) && not in_a.(v) then key.(v) <- key.(v) +. w.(s).(v)
      done
    done;
    let s = !last and t = !prev in
    (* Cut-of-the-phase: [s] alone versus the rest. *)
    let phase_value = key.(s) in
    if phase_value < !best_value then begin
      best_value := phase_value;
      best_side := members.(s)
    end;
    (* Merge s into t. *)
    for v = 0 to n - 1 do
      if active.(v) && v <> s && v <> t then begin
        w.(t).(v) <- w.(t).(v) +. w.(s).(v);
        w.(v).(t) <- w.(v).(t) +. w.(v).(s)
      end
    done;
    members.(t) <- members.(s) @ members.(t);
    active.(s) <- false;
    decr n_active
  done;
  let side = Array.make n false in
  List.iter (fun v -> side.(v) <- true) !best_side;
  (!best_value, side)

let brute_force g =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Mincut.brute_force: need at least two vertices";
  if n > 20 then invalid_arg "Mincut.brute_force: too large";
  let best_value = ref infinity in
  let best_mask = ref 1 in
  (* Fix vertex 0 on the false side; enumerate the rest. *)
  for mask = 1 to (1 lsl (n - 1)) - 1 do
    let in_set v = v > 0 && (mask lsr (v - 1)) land 1 = 1 in
    let value = Hgp_graph.Cuts.cut_weight g in_set in
    if value < !best_value then begin
      best_value := value;
      best_mask := mask
    end
  done;
  let side = Array.init n (fun v -> v > 0 && (!best_mask lsr (v - 1)) land 1 = 1) in
  (!best_value, side)
