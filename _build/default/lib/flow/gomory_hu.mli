(** Gomory–Hu cut trees (Gusfield's algorithm).

    A Gomory–Hu tree of an undirected weighted graph is a tree on the same
    vertex set such that for every pair [(u, v)] the minimum [u]–[v] cut in
    the graph equals the smallest edge weight on the tree path between them —
    and moreover, removing that smallest edge splits the vertices into a
    bipartition realizing the cut.

    Built with [n - 1] max-flow computations (Gusfield's simplification: no
    vertex contraction needed).  Besides being a classic cut oracle, a
    Gomory–Hu tree is a valid decomposition tree for the HGP pipeline: every
    tree edge's weight equals the exact graph cut its removal induces. *)

type t = {
  parent : int array;  (** [parent.(v)] for [v > 0]; [parent.(0) = -1] *)
  flow : float array;  (** [flow.(v)]: min-cut value between [v] and parent *)
}

(** [build g] computes a Gomory–Hu tree of the connected graph [g].
    Requires [Graph.n g >= 1]. *)
val build : Hgp_graph.Graph.t -> t

(** [min_cut_between t u v] is the minimum cut value between [u] and [v]:
    the smallest [flow] on the tree path.  Requires [u <> v]. *)
val min_cut_between : t -> int -> int -> float

(** [to_graph t] renders the tree as an undirected graph (edge weights =
    cut values), e.g. for re-rooting with {!Hgp_tree.Tree.of_graph}. *)
val to_graph : t -> Hgp_graph.Graph.t

(** [check t g ~pairs] verifies the Gomory–Hu property on the given vertex
    pairs by direct max-flow computation; returns the worst absolute error
    (testing helper). *)
val check : t -> Hgp_graph.Graph.t -> pairs:(int * int) list -> float
