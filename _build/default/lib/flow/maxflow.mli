(** Maximum s–t flow (Dinic's algorithm) on directed capacitated networks.

    A network is built imperatively; undirected graph edges can be imported
    with {!of_graph}, which models each undirected edge as a pair of opposed
    arcs sharing residual capacity (the standard undirected-flow reduction). *)

type t

(** [create n] is an empty network on vertices [0..n-1]. *)
val create : int -> t

(** [add_arc t u v cap] adds a directed arc of capacity [cap >= 0.] (and its
    zero-capacity reverse arc). *)
val add_arc : t -> int -> int -> float -> unit

(** [add_undirected t u v cap] adds arcs in both directions with capacity
    [cap] each, modelling an undirected edge. *)
val add_undirected : t -> int -> int -> float -> unit

(** [of_graph g] imports all edges of [g] as undirected capacities. *)
val of_graph : Hgp_graph.Graph.t -> t

(** [max_flow t ~src ~dst] computes the maximum flow value.  The network keeps
    the residual state; call {!reset} to reuse it.  Requires [src <> dst]. *)
val max_flow : t -> src:int -> dst:int -> float

(** [min_cut_side t ~src] returns, after a {!max_flow} run, the set of
    vertices reachable from [src] in the residual network — the source side of
    a minimum cut — as a boolean membership array. *)
val min_cut_side : t -> src:int -> bool array

(** [reset t] restores all residual capacities to their original values. *)
val reset : t -> unit

(** [min_cut_value g ~src ~dst] is a convenience wrapper: the weight of the
    minimum cut separating [src] from [dst] in the undirected graph [g]. *)
val min_cut_value : Hgp_graph.Graph.t -> src:int -> dst:int -> float
