type t = {
  n : int;
  mutable heads : int array; (* arc -> head vertex *)
  mutable caps : float array; (* arc -> residual capacity *)
  mutable orig : float array; (* arc -> original capacity *)
  mutable first : int array; (* vertex -> first arc id, -1 if none *)
  mutable next : int array; (* arc -> next arc of same tail *)
  mutable n_arcs : int;
  level : int array;
  cursor : int array;
}

let create n =
  {
    n;
    heads = Array.make 16 0;
    caps = Array.make 16 0.;
    orig = Array.make 16 0.;
    first = Array.make n (-1);
    next = Array.make 16 (-1);
    n_arcs = 0;
    level = Array.make n (-1);
    cursor = Array.make n (-1);
  }

let ensure_capacity t =
  let cap = Array.length t.heads in
  if t.n_arcs + 2 > cap then begin
    let ncap = 2 * cap in
    let grow_int a = Array.append a (Array.make (ncap - cap) (-1)) in
    let grow_float a = Array.append a (Array.make (ncap - cap) 0.) in
    t.heads <- Array.append t.heads (Array.make (ncap - cap) 0);
    t.caps <- grow_float t.caps;
    t.orig <- grow_float t.orig;
    t.next <- grow_int t.next
  end

let push_arc t u v cap =
  ensure_capacity t;
  let id = t.n_arcs in
  t.heads.(id) <- v;
  t.caps.(id) <- cap;
  t.orig.(id) <- cap;
  t.next.(id) <- t.first.(u);
  t.first.(u) <- id;
  t.n_arcs <- id + 1

let add_arc t u v cap =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Maxflow.add_arc: vertex";
  if not (cap >= 0.) then invalid_arg "Maxflow.add_arc: negative capacity";
  (* Arcs are created in pairs; arc i's reverse is i lxor 1. *)
  push_arc t u v cap;
  push_arc t v u 0.

let add_undirected t u v cap =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Maxflow.add_undirected";
  if not (cap >= 0.) then invalid_arg "Maxflow.add_undirected: negative capacity";
  push_arc t u v cap;
  push_arc t v u cap

let of_graph g =
  let t = create (Hgp_graph.Graph.n g) in
  Hgp_graph.Graph.iter_edges (fun u v w -> add_undirected t u v w) g;
  t

let eps = 1e-12

let bfs t ~src ~dst =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  t.level.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let arc = ref t.first.(u) in
    while !arc >= 0 do
      let v = t.heads.(!arc) in
      if t.caps.(!arc) > eps && t.level.(v) < 0 then begin
        t.level.(v) <- t.level.(u) + 1;
        Queue.add v q
      end;
      arc := t.next.(!arc)
    done
  done;
  t.level.(dst) >= 0

let rec dfs t ~dst u pushed =
  if u = dst then pushed
  else begin
    let result = ref 0. in
    while !result = 0. && t.cursor.(u) >= 0 do
      let arc = t.cursor.(u) in
      let v = t.heads.(arc) in
      if t.caps.(arc) > eps && t.level.(v) = t.level.(u) + 1 then begin
        let got = dfs t ~dst v (min pushed t.caps.(arc)) in
        if got > eps then begin
          t.caps.(arc) <- t.caps.(arc) -. got;
          t.caps.(arc lxor 1) <- t.caps.(arc lxor 1) +. got;
          result := got
        end
        else t.cursor.(u) <- t.next.(arc)
      end
      else t.cursor.(u) <- t.next.(arc)
    done;
    !result
  end

let max_flow t ~src ~dst =
  if src = dst then invalid_arg "Maxflow.max_flow: src = dst";
  let flow = ref 0. in
  while bfs t ~src ~dst do
    Array.blit t.first 0 t.cursor 0 t.n;
    let pushed = ref (dfs t ~dst src infinity) in
    while !pushed > eps do
      flow := !flow +. !pushed;
      pushed := dfs t ~dst src infinity
    done
  done;
  !flow

let min_cut_side t ~src =
  let side = Array.make t.n false in
  let q = Queue.create () in
  side.(src) <- true;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let arc = ref t.first.(u) in
    while !arc >= 0 do
      let v = t.heads.(!arc) in
      if t.caps.(!arc) > eps && not side.(v) then begin
        side.(v) <- true;
        Queue.add v q
      end;
      arc := t.next.(!arc)
    done
  done;
  side

let reset t = Array.blit t.orig 0 t.caps 0 t.n_arcs

let min_cut_value g ~src ~dst =
  let t = of_graph g in
  max_flow t ~src ~dst
