module Graph = Hgp_graph.Graph

type t = {
  parent : int array;
  flow : float array;
}

(* Gusfield's algorithm: process vertices 1..n-1; run max-flow against the
   current parent; vertices on the source side whose parent is the sink are
   re-parented to the source. *)
let build g =
  let n = Graph.n g in
  if n < 1 then invalid_arg "Gomory_hu.build: empty graph";
  let parent = Array.make n 0 in
  parent.(0) <- -1;
  let flow = Array.make n 0. in
  let network = Maxflow.of_graph g in
  for s = 1 to n - 1 do
    let t = parent.(s) in
    Maxflow.reset network;
    let f = Maxflow.max_flow network ~src:s ~dst:t in
    flow.(s) <- f;
    let side = Maxflow.min_cut_side network ~src:s in
    for v = s + 1 to n - 1 do
      if side.(v) && parent.(v) = t then parent.(v) <- s
    done;
    (* Standard Gusfield fix-up: if the sink's parent ended on the source
       side, swap roles. *)
    if t <> 0 && parent.(t) >= 0 && side.(parent.(t)) then begin
      parent.(s) <- parent.(t);
      parent.(t) <- s;
      flow.(s) <- flow.(t);
      flow.(t) <- f
    end
  done;
  { parent; flow }

let min_cut_between t u v =
  if u = v then invalid_arg "Gomory_hu.min_cut_between: u = v";
  let n = Array.length t.parent in
  (* Walk both vertices to the root, tracking the minimum edge seen; use
     depths to synchronize. *)
  let depth = Array.make n (-1) in
  let rec depth_of x = if x < 0 then -1
    else if depth.(x) >= 0 then depth.(x)
    else begin
      let d = 1 + depth_of t.parent.(x) in
      depth.(x) <- d;
      d
    end
  in
  let rec lift x steps best =
    if steps = 0 then (x, best)
    else lift t.parent.(x) (steps - 1) (Float.min best t.flow.(x))
  in
  let du = depth_of u and dv = depth_of v in
  let u', best_u = if du > dv then lift u (du - dv) infinity else (u, infinity) in
  let v', best_v = if dv > du then lift v (dv - du) infinity else (v, infinity) in
  let rec meet x y best =
    if x = y then best
    else
      meet t.parent.(x) t.parent.(y)
        (Float.min best (Float.min t.flow.(x) t.flow.(y)))
  in
  meet u' v' (Float.min best_u best_v)

let to_graph t =
  let n = Array.length t.parent in
  let b = Graph.Builder.create n in
  for v = 1 to n - 1 do
    Graph.Builder.add_edge b v t.parent.(v) t.flow.(v)
  done;
  Graph.Builder.build b

let check t g ~pairs =
  List.fold_left
    (fun worst (u, v) ->
      let claimed = min_cut_between t u v in
      let actual = Maxflow.min_cut_value g ~src:u ~dst:v in
      Float.max worst (Float.abs (claimed -. actual)))
    0. pairs
