lib/flow/mincut.ml: Array Hgp_graph List
