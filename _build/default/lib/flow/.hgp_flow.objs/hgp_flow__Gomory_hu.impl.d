lib/flow/gomory_hu.ml: Array Float Hgp_graph List Maxflow
