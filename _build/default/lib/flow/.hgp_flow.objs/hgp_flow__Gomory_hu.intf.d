lib/flow/gomory_hu.mli: Hgp_graph
