lib/flow/mincut.mli: Hgp_graph
