lib/flow/maxflow.ml: Array Hgp_graph Queue
