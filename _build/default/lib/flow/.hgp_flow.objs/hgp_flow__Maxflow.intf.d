lib/flow/maxflow.mli: Hgp_graph
