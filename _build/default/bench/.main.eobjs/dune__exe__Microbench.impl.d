bench/microbench.ml: Analyze Array Bechamel Benchmark Float Hashtbl Hgp_baselines Hgp_core Hgp_flow Hgp_graph Hgp_hierarchy Hgp_racke Hgp_tree Hgp_util List Measure Printf Staged Test Time Toolkit
