bench/experiments.ml: Array Float Hgp_baselines Hgp_core Hgp_graph Hgp_hierarchy Hgp_racke Hgp_sim Hgp_tree Hgp_util Hgp_workloads List Printf String Unix
