bench/main.mli:
