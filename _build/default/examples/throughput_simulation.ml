(* Throughput simulation: does the abstract HGP cost predict real system
   behaviour?

   The paper's motivation is that pinning strongly-communicating tasks on
   nearby cores improves the maximum throughput of a stream-processing
   system.  Here we generate a streaming query plan, place it with several
   strategies, and run each placement through the discrete-event simulator
   (operators pinned to cores, per-level communication overhead and latency).
   The HGP cost should rank the placements the same way the simulated
   latency/utilization does.

   Run with:  dune exec examples/throughput_simulation.exe *)

module H = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module SD = Hgp_workloads.Stream_dag
module Des = Hgp_sim.Des
module Prng = Hgp_util.Prng
module Tablefmt = Hgp_util.Tablefmt

let () =
  let rng = Prng.create 31 in
  let w = SD.generate rng { SD.default_params with n_sources = 10; pipeline_depth = 5 } in
  let hy = H.Presets.dual_socket in
  let inst = SD.to_instance w hy ~load_factor:0.45 in
  let sw = SD.to_sim_workload w ~demands:inst.demands in
  Format.printf "workload: %d operators on %a@." (Instance.n inst) H.pp hy;

  let sim_cfg =
    { Des.default_config with duration = 40.0; warmup = 4.0; load = 0.75; comm_overhead = 2e-3 }
  in
  let sol = Solver.solve inst in
  let refined, _ =
    Hgp_baselines.Local_search.refine inst sol.assignment ~slack:1.2 ~max_passes:8
  in
  let placements =
    [
      ("random (OS-like)", Hgp_baselines.Placement.random rng inst ~slack:1.25);
      ("greedy", Hgp_baselines.Placement.greedy inst ~slack:1.25 ());
      ("hgp", sol.assignment);
      ("hgp + local search", refined);
    ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        let m = Des.run sw hy ~assignment:p sim_cfg in
        [
          name;
          Tablefmt.fmt_float (Cost.assignment_cost inst p);
          Printf.sprintf "%.1f" m.throughput;
          string_of_int m.dropped;
          Printf.sprintf "%.1f" (m.avg_latency *. 1e3);
          Printf.sprintf "%.1f" (m.p99_latency *. 1e3);
          Printf.sprintf "%.2f" m.max_core_utilization;
        ])
      placements
  in
  Tablefmt.print ~title:"simulated execution of each placement"
    ~header:
      [ "placement"; "hgp cost"; "tuples/s"; "drops"; "avg lat (ms)"; "p99 (ms)"; "max util" ]
    rows;
  Format.printf
    "@.Lower HGP cost should track lower latency / utilization — the paper's motivation.@."
