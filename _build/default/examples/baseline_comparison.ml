(* Baseline shoot-out on every workload preset: reproduces the paper's
   motivation that hierarchy-aware placement dominates flat partitioning.

   Run with:  dune exec examples/baseline_comparison.exe *)

module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module B = Hgp_baselines
module Presets = Hgp_workloads.Presets
module Prng = Hgp_util.Prng
module Tablefmt = Hgp_util.Tablefmt

let slack = 1.25

let methods rng (inst : Instance.t) =
  let k = Hierarchy.num_leaves inst.hierarchy in
  let capacity = slack *. Hierarchy.leaf_capacity inst.hierarchy in
  let ml () =
    B.Multilevel.partition rng inst.graph ~demands:inst.demands ~k ~capacity
  in
  [
    ("random", fun () -> B.Placement.random rng inst ~slack);
    ("greedy", fun () -> B.Placement.greedy inst ~slack ());
    ("kbgp-flat", fun () -> B.Mapping.identity (ml ()).parts);
    ("kbgp+map", fun () -> B.Mapping.optimize inst ~parts:(ml ()).parts ~k);
    ("dual-recursive", fun () -> B.Recursive_bisection.assign rng inst ~slack);
    ( "hgp (this paper)",
      fun () ->
        (Solver.solve ~options:{ Solver.default_options with ensemble_size = 4 } inst)
          .assignment );
    ( "hgp + local search",
      fun () ->
        let sol = Solver.solve ~options:{ Solver.default_options with ensemble_size = 4 } inst in
        fst (B.Local_search.refine inst sol.assignment ~slack ~max_passes:8) );
  ]

let () =
  let hierarchy = Hierarchy.Presets.dual_socket in
  List.iter
    (fun spec ->
      let rng = Prng.create 99 in
      let inst = spec.Presets.build rng hierarchy in
      let rows =
        List.map
          (fun (name, f) ->
            let p = f () in
            [
              name;
              Tablefmt.fmt_float (Cost.assignment_cost inst p);
              Printf.sprintf "%.2f" (Cost.max_violation inst p);
            ])
          (methods rng inst)
      in
      Tablefmt.print
        ~title:(Printf.sprintf "%s (n=%d) on dual_socket" spec.Presets.name (Instance.n inst))
        ~header:[ "method"; "cost"; "violation" ]
        rows)
    Presets.small_suite
