(* Cluster mapping: place a 2-D stencil computation onto a rack hierarchy.

   Scientific-computing workloads communicate along mesh neighbourhoods; a
   good mapping tiles the mesh so that tiles fall on nearby cores (the
   "architecture-aware partitioning" literature the paper cites).  We map a
   mesh onto the [cluster] preset (2 racks x 4 servers x 8 cores) and show
   the resulting tile structure plus a comparison with SCOTCH-style dual
   recursive bipartitioning.

   Run with:  dune exec examples/cluster_mapping.exe *)

module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module Prng = Hgp_util.Prng

let rows = 8
let cols = 8

let () =
  let g = Gen.grid2d ~rows ~cols in
  let hierarchy = Hierarchy.Presets.cluster in
  let inst = Instance.uniform_demands g hierarchy ~load_factor:0.75 in
  Format.printf "mesh %dx%d onto %a@.@." rows cols Hierarchy.pp hierarchy;

  let sol =
    Solver.solve ~options:{ Solver.default_options with ensemble_size = 6; seed = 7 } inst
  in
  let rng = Prng.create 7 in
  let drb = Hgp_baselines.Recursive_bisection.assign rng inst ~slack:1.2 in
  let greedy = Hgp_baselines.Placement.greedy inst ~slack:1.2 () in

  (* Render the mesh with the rack (level-1 ancestor) of each cell. *)
  Format.printf "rack assignment per mesh cell (0/1 = rack id):@.";
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let v = (r * cols) + c in
      Format.printf "%d" (Hierarchy.ancestor hierarchy ~level:1 sol.assignment.(v))
    done;
    Format.printf "@."
  done;

  let report name p =
    Format.printf "%-24s cost=%-10.0f violation=%.2f@." name
      (Cost.assignment_cost inst p) (Cost.max_violation inst p)
  in
  Format.printf "@.";
  report "hgp solver" sol.assignment;
  report "recursive bisection" drb;
  report "greedy placement" greedy;

  (* Refining the solver output with hierarchy-aware local search. *)
  let refined, stats =
    Hgp_baselines.Local_search.refine inst sol.assignment ~slack:1.2 ~max_passes:10
  in
  report "hgp + local search" refined;
  Format.printf "(local search: %d moves, %d swaps, %d passes)@." stats.moves stats.swaps
    stats.passes
