(* Online placement under churn: operators of a streaming system arrive and
   depart; the Dynamic manager places arrivals greedily and periodically
   re-solves with the full HGP algorithm, migrating tasks only when the
   solver actually found something cheaper.

   Run with:  dune exec examples/dynamic_churn.exe *)

module H = Hgp_hierarchy.Hierarchy
module Dynamic = Hgp_core.Dynamic
module Solver = Hgp_core.Solver
module Prng = Hgp_util.Prng

let () =
  let hy = H.Presets.dual_socket in
  let rng = Prng.create 77 in
  let cfg =
    {
      Dynamic.slack = 1.25;
      resolve_period = 25;
      solver_options = { Solver.default_options with ensemble_size = 2 };
    }
  in
  let t = Dynamic.create hy cfg in
  let live = ref [] in
  Format.printf "churning 120 events on %a@.@." H.pp hy;
  Format.printf "%6s  %6s  %10s  %9s  %10s@." "event" "tasks" "cost" "violation" "migrations";
  for step = 1 to 120 do
    if !live <> [] && Prng.float rng 1.0 < 0.35 then begin
      let victim = Prng.choose rng (Array.of_list !live) in
      Dynamic.remove_task t victim;
      live := List.filter (fun x -> x <> victim) !live
    end
    else begin
      (* New operators talk to a few recent ones (pipeline locality). *)
      let recent = List.filteri (fun i _ -> i < 3) !live in
      let edges = List.map (fun id -> (id, 2. +. Prng.float rng 8.)) recent in
      let id = Dynamic.add_task t ~demand:(0.1 +. Prng.float rng 0.3) ~edges in
      live := id :: !live
    end;
    if step mod 20 = 0 then
      Format.printf "%6d  %6d  %10.1f  %9.2f  %10d@." step (Dynamic.n_alive t)
        (Dynamic.current_cost t) (Dynamic.max_violation t)
        (Dynamic.stats t).migrations
  done;
  let before = Dynamic.current_cost t in
  let moved = Dynamic.rebalance t in
  Format.printf "@.final manual rebalance: cost %.1f -> %.1f (%d tasks migrated)@." before
    (Dynamic.current_cost t) moved
