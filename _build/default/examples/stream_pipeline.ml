(* Stream pipeline placement: the paper's motivating scenario.

   A TidalRace-style streaming query plan (sources -> filters -> joins ->
   sinks) is pinned onto a 64-core quad-socket server.  We compare the
   hierarchy-aware solver with the operating-system-like random placement
   and report where the communication goes (same core / same socket /
   cross socket).

   Run with:  dune exec examples/stream_pipeline.exe *)

module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module Stream_dag = Hgp_workloads.Stream_dag
module Prng = Hgp_util.Prng
module Tablefmt = Hgp_util.Tablefmt

let traffic_breakdown hierarchy g p =
  (* Weight of communication per LCA level of the endpoints. *)
  let h = Hierarchy.height hierarchy in
  let per_level = Array.make (h + 1) 0. in
  Graph.iter_edges
    (fun u v w ->
      let l = Hierarchy.lca_level hierarchy p.(u) p.(v) in
      per_level.(l) <- per_level.(l) +. w)
    g;
  per_level

let () =
  let rng = Prng.create 2024 in
  let params =
    { Stream_dag.default_params with n_sources = 12; pipeline_depth = 6 }
  in
  let w = Stream_dag.generate rng params in
  let hierarchy = Hierarchy.Presets.quad_socket in
  let inst = Stream_dag.to_instance w hierarchy ~load_factor:0.65 in
  Format.printf "workload: %d operators, %d edges, total rate %.0f@."
    (Graph.n w.graph) (Graph.m w.graph)
    (Array.fold_left ( +. ) 0. w.rates);
  Format.printf "hardware: %a@." Hierarchy.pp hierarchy;

  let sol = Solver.solve ~options:{ Solver.default_options with ensemble_size = 4 } inst in
  let random = Hgp_baselines.Placement.random rng inst ~slack:1.2 in

  let label = [| "cross-socket"; "same socket"; "same core"; "same hyperthread" |] in
  let rows p =
    let per_level = traffic_breakdown hierarchy inst.graph p in
    Array.to_list
      (Array.mapi
         (fun l wgt -> Printf.sprintf "%s: %.0f" label.(min l 3) wgt)
         per_level)
  in
  Tablefmt.print ~title:"traffic by locality (weight units)"
    ~header:[ "placement"; "cost"; "violation"; "breakdown" ]
    [
      [
        "hgp solver";
        Tablefmt.fmt_float sol.cost;
        Printf.sprintf "%.2f" sol.max_violation;
        String.concat ", " (rows sol.assignment);
      ];
      [
        "random (OS-like)";
        Tablefmt.fmt_float (Cost.assignment_cost inst random);
        Printf.sprintf "%.2f" (Cost.max_violation inst random);
        String.concat ", " (rows random);
      ];
    ];
  let improvement = Cost.assignment_cost inst random /. sol.cost in
  Format.printf "@.hierarchy-aware placement is %.1fx cheaper than random@." improvement
