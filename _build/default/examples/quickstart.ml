(* Quickstart: pin a small task graph onto a dual-socket server.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Solver = Hgp_core.Solver
module Cost = Hgp_core.Cost

let () =
  (* 1. The communication graph: 8 tasks in two tightly-coupled squares
        joined by one light edge.  Edge weights are message rates. *)
  let g =
    Graph.of_edges 8
      [
        (0, 1, 10.); (1, 2, 10.); (2, 3, 10.); (3, 0, 10.);
        (4, 5, 10.); (5, 6, 10.); (6, 7, 10.); (7, 4, 10.);
        (3, 4, 1.);
      ]
  in

  (* 2. The hardware hierarchy: 2 sockets x 4 cores x 2 hyperthreads.
        Cost multipliers reflect cross-socket vs shared-cache latency. *)
  let hierarchy = Hierarchy.Presets.dual_socket in
  Format.printf "hierarchy: %a@." Hierarchy.pp hierarchy;

  (* 3. Each task needs half a core. *)
  let inst = Instance.create g ~demands:(Array.make 8 0.5) hierarchy in

  (* 4. Solve.  The pipeline samples decomposition trees, runs the signature
        DP on each (Theorems 2-4), converts the relaxed solutions to feasible
        placements (Theorem 5) and keeps the cheapest. *)
  let sol = Solver.solve inst in

  Format.printf "assignment (task -> core):@.";
  Array.iteri (fun task core -> Format.printf "  task %d -> core %d@." task core) sol.assignment;
  Format.printf "communication cost : %g@." sol.cost;
  Format.printf "capacity violation : %.3f (1.0 = perfectly packed)@." sol.max_violation;

  (* 5. Sanity: the two squares should land on different sockets, with the
        light (3,4) edge the only cross-socket traffic. *)
  let socket t = Hierarchy.ancestor hierarchy ~level:1 sol.assignment.(t) in
  let squares_separated =
    List.for_all (fun (a, b) -> socket a = socket b) [ (0, 1); (1, 2); (2, 3) ]
    && List.for_all (fun (a, b) -> socket a = socket b) [ (4, 5); (5, 6); (6, 7) ]
  in
  Format.printf "squares kept socket-local: %b@." squares_separated
