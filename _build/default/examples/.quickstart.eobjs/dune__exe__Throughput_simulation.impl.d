examples/throughput_simulation.ml: Format Hgp_baselines Hgp_core Hgp_hierarchy Hgp_sim Hgp_util Hgp_workloads List Printf
