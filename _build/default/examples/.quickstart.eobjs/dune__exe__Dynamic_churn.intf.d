examples/dynamic_churn.mli:
