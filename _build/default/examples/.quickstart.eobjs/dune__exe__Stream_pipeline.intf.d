examples/stream_pipeline.mli:
