examples/dynamic_churn.ml: Array Format Hgp_core Hgp_hierarchy Hgp_util List
