examples/baseline_comparison.ml: Hgp_baselines Hgp_core Hgp_hierarchy Hgp_util Hgp_workloads List Printf
