examples/stream_pipeline.ml: Array Format Hgp_baselines Hgp_core Hgp_graph Hgp_hierarchy Hgp_util Hgp_workloads Printf String
