examples/throughput_simulation.mli:
