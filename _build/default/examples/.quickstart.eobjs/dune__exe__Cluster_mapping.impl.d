examples/cluster_mapping.ml: Array Format Hgp_baselines Hgp_core Hgp_graph Hgp_hierarchy Hgp_util
