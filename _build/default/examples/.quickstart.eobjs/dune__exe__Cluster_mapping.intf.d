examples/cluster_mapping.mli:
