examples/quickstart.ml: Array Format Hgp_core Hgp_graph Hgp_hierarchy List
