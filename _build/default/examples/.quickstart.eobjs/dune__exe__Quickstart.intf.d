examples/quickstart.mli:
