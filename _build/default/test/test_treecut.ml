module Tree = Hgp_tree.Tree
module Treecut = Hgp_tree.Treecut

let sample () =
  (* Path-ish tree: 0 - 1 - 2 with leaves hanging off. *)
  let parents = [| -1; 0; 1; 0; 1; 2; 2 |] in
  let weights = [| 0.; 10.; 10.; 1.; 2.; 3.; 4. |] in
  (* leaves: 3 (w1, child of 0), 4 (w2, child of 1), 5 (w3), 6 (w4, children of 2) *)
  Tree.of_parents ~root:0 ~parents ~weights

let test_singleton_cut () =
  let t = sample () in
  let w, edges = Treecut.min_cut t ~in_set:(fun l -> l = 3) in
  Test_support.check_close "cheapest separation" 1. w;
  Alcotest.(check (list int)) "cuts its own edge" [ 3 ] edges

let test_deep_pair () =
  let t = sample () in
  (* Separate {5,6} (both under node 2): cutting the edge above node 2 costs
     10, cutting both their leaf edges costs 7, but isolating the complement
     leaves 3 and 4 instead costs only 1 + 2 = 3. *)
  let w, _ = Treecut.min_cut t ~in_set:(fun l -> l = 5 || l = 6) in
  Test_support.check_close "isolating the complement wins" 3. w

let test_empty_and_full () =
  let t = sample () in
  Test_support.check_close "empty set" 0. (Treecut.min_cut_weight t ~in_set:(fun _ -> false));
  Test_support.check_close "full set" 0. (Treecut.min_cut_weight t ~in_set:(fun _ -> true))

let test_infinite_edges_avoided () =
  let parents = [| -1; 0; 0 |] in
  let weights = [| 0.; infinity; 2. |] in
  let t = Tree.of_parents ~root:0 ~parents ~weights in
  let w, edges = Treecut.min_cut t ~in_set:(fun l -> l = 1) in
  Test_support.check_close "cuts the finite edge" 2. w;
  Alcotest.(check (list int)) "edge 2" [ 2 ] edges

let test_mirror_region () =
  let t = sample () in
  let region = Treecut.mirror_region t ~in_set:(fun l -> l = 3) in
  Alcotest.(check bool) "contains the leaf" true region.(3);
  Alcotest.(check bool) "excludes the root" false region.(0);
  let full = Treecut.mirror_region t ~in_set:(fun _ -> true) in
  Alcotest.(check bool) "full set covers everything" true (Array.for_all Fun.id full)

let prop_matches_brute_force =
  Test_support.qtest ~count:150 "DP min cut = brute force"
    QCheck2.Gen.(pair (Test_support.gen_tree ~max_n:8 ()) (int_bound 255))
    (fun (t, mask) ->
      let leaves = Tree.leaves t in
      let in_set l =
        let rec idx i = if leaves.(i) = l then i else idx (i + 1) in
        (mask lsr idx 0) land 1 = 1
      in
      let dp = Treecut.min_cut_weight t ~in_set in
      let bf = Treecut.brute_force_weight t ~in_set in
      Float.abs (dp -. bf) < 1e-9)

let prop_cut_edges_realize_value =
  Test_support.qtest ~count:150 "returned edges sum to the value and separate"
    QCheck2.Gen.(pair (Test_support.gen_tree ~max_n:8 ()) (int_bound 255))
    (fun (t, mask) ->
      let leaves = Tree.leaves t in
      let in_set l =
        let rec idx i = if leaves.(i) = l then i else idx (i + 1) in
        (mask lsr idx 0) land 1 = 1
      in
      let w, edges = Treecut.min_cut t ~in_set in
      let sum = List.fold_left (fun acc c -> acc +. Tree.edge_weight t c) 0. edges in
      (* Removing the edges separates the sets. *)
      let n = Tree.n_nodes t in
      let dsu = Hgp_util.Dsu.create n in
      for v = 0 to n - 1 do
        if v <> Tree.root t && not (List.mem v edges) then
          ignore (Hgp_util.Dsu.union dsu v (Tree.parent t v))
      done;
      let separated = ref true in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if in_set a && (not (in_set b)) && Hgp_util.Dsu.same dsu a b then
                separated := false)
            leaves)
        leaves;
      Float.abs (sum -. w) < 1e-9 && !separated)

let prop_mirror_contains_set_only =
  Test_support.qtest ~count:150 "mirror region contains S and no foreign leaves"
    QCheck2.Gen.(pair (Test_support.gen_tree ~max_n:8 ()) (int_bound 255))
    (fun (t, mask) ->
      let leaves = Tree.leaves t in
      let in_set l =
        let rec idx i = if leaves.(i) = l then i else idx (i + 1) in
        (mask lsr idx 0) land 1 = 1
      in
      let any_in = Array.exists in_set leaves in
      let any_out = Array.exists (fun l -> not (in_set l)) leaves in
      if not (any_in && any_out) then true
      else begin
        let region = Treecut.mirror_region t ~in_set in
        Array.for_all
          (fun l -> if in_set l then region.(l) else not region.(l))
          leaves
      end)

let () =
  Alcotest.run "treecut"
    [
      ( "unit",
        [
          Alcotest.test_case "singleton" `Quick test_singleton_cut;
          Alcotest.test_case "deep pair" `Quick test_deep_pair;
          Alcotest.test_case "empty and full" `Quick test_empty_and_full;
          Alcotest.test_case "infinite edges" `Quick test_infinite_edges_avoided;
          Alcotest.test_case "mirror region" `Quick test_mirror_region;
        ] );
      ( "property",
        [ prop_matches_brute_force; prop_cut_edges_realize_value; prop_mirror_contains_set_only ] );
    ]
