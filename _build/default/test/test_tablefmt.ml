module Tablefmt = Hgp_util.Tablefmt

let test_render_basic () =
  let out =
    Tablefmt.render ~header:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 4 (List.length lines);
  (* Every line has the same width. *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "header present" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 4 = "name")

let test_right_alignment () =
  let out = Tablefmt.render ~header:[ "a"; "num" ] [ [ "x"; "7" ] ] in
  let last_line = List.nth (String.split_on_char '\n' out) 2 in
  (* "num" column is right aligned: the 7 sits at the end. *)
  Alcotest.(check char) "right aligned" '7' last_line.[String.length last_line - 1]

let test_row_padding () =
  let out = Tablefmt.render ~header:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_row_too_long () =
  Alcotest.check_raises "too long" (Invalid_argument "Tablefmt.render: row longer than header")
    (fun () -> ignore (Tablefmt.render ~header:[ "a" ] [ [ "x"; "y" ] ]))

let test_fmt_float () =
  Alcotest.(check string) "integer" "42" (Tablefmt.fmt_float 42.);
  Alcotest.(check string) "small" "1.234e-04" (Tablefmt.fmt_float 0.00012345);
  Alcotest.(check string) "large" "1.235e+07" (Tablefmt.fmt_float 12345678.9);
  Alcotest.(check string) "plain" "3.142" (Tablefmt.fmt_float 3.14159)

let prop_row_count =
  Test_support.qtest "renders n+2 lines"
    QCheck2.Gen.(int_range 0 20)
    (fun n ->
      let rows = List.init n (fun i -> [ string_of_int i; "v" ]) in
      let out = Tablefmt.render ~header:[ "i"; "v" ] rows in
      List.length (String.split_on_char '\n' out) = n + 2)

let () =
  Alcotest.run "tablefmt"
    [
      ( "unit",
        [
          Alcotest.test_case "render basic" `Quick test_render_basic;
          Alcotest.test_case "right alignment" `Quick test_right_alignment;
          Alcotest.test_case "row padding" `Quick test_row_padding;
          Alcotest.test_case "row too long" `Quick test_row_too_long;
          Alcotest.test_case "fmt float" `Quick test_fmt_float;
        ] );
      ("property", [ prop_row_count ]);
    ]
