module Tree = Hgp_tree.Tree
module Tree_dp = Hgp_core.Tree_dp
module Feasible = Hgp_core.Feasible
module H = Hgp_hierarchy.Hierarchy
module Gen = Hgp_graph.Generators
module Prng = Hgp_util.Prng

(* Random job-tree instances solved by the DP, then converted. *)
let gen_solved =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* n = int_range 2 12 in
  let* hidx = int_range 0 2 in
  let rng = Prng.create seed in
  let hy =
    match hidx with
    | 0 -> H.create ~degs:[| 2 |] ~cm:[| 10.; 0. |] ~leaf_capacity:1.0
    | 1 -> H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 3.; 0. |] ~leaf_capacity:1.0
    | _ -> H.create ~degs:[| 2; 2; 2 |] ~cm:[| 10.; 5.; 2.; 0. |] ~leaf_capacity:1.0
  in
  let resolution = 4 in
  let g = Gen.random_tree rng n in
  let g = Gen.randomize_weights rng g ~lo:1.0 ~hi:9.0 in
  let t = Tree.of_graph g ~root:0 in
  let t, job_leaf = Tree.lift_internal_jobs t in
  let demand_units = Array.make (Tree.n_nodes t) 0 in
  (* Load roughly 60% of total capacity. *)
  let total_units = resolution * H.num_leaves hy in
  let budget = max n (6 * total_units / 10) in
  Array.iteri
    (fun i l -> demand_units.(l) <- max 1 (min resolution (budget / n + (i mod 2))))
    job_leaf;
  return (t, job_leaf, demand_units, hy, resolution)

let solve_and_pack (t, _job_leaf, demand_units, hy, resolution) =
  let cfg = Tree_dp.config_of_hierarchy hy ~resolution () in
  match Tree_dp.solve t ~demand_units cfg with
  | None -> None
  | Some r ->
    Some (r, Feasible.pack t ~kappa:r.kappa ~demand_units ~hierarchy:hy ~resolution)

let prop_all_leaves_assigned =
  Test_support.qtest ~count:120 "every leaf gets a real hierarchy leaf"
    gen_solved
    (fun ((t, _, _, hy, _) as inst) ->
      match solve_and_pack inst with
      | None -> true
      | Some (_, report) ->
        Array.for_all
          (fun l ->
            let a = report.Feasible.assignment.(l) in
            a >= 0 && a < H.num_leaves hy)
          (Tree.leaves t)
        && Array.for_all
             (fun v ->
               Tree.is_leaf t v || report.Feasible.assignment.(v) = -1)
             (Array.init (Tree.n_nodes t) (fun i -> i)))

let prop_violation_bounded =
  Test_support.qtest ~count:120 "Theorem 5: violation <= (1 + h) per level"
    gen_solved
    (fun ((_, _, _, hy, _) as inst) ->
      match solve_and_pack inst with
      | None -> true
      | Some (_, report) ->
        let h = H.height hy in
        let ok = ref true in
        for j = 1 to h do
          (* Level-j sets obey (1 + j) CP(j) by Theorem 5. *)
          if report.Feasible.level_violation_units.(j) > float_of_int (1 + j) +. 1e-9 then
            ok := false
        done;
        !ok
        && report.Feasible.max_violation_units
           <= Feasible.theoretical_violation_bound ~h ~eps:0. +. 1e-9)

let prop_cost_never_increases =
  Test_support.qtest ~count:120 "Theorem 5: conversion cost <= relaxed DP cost"
    gen_solved
    (fun ((t, job_leaf, _, hy, _) as inst) ->
      match solve_and_pack inst with
      | None -> true
      | Some (r, report) ->
        (* Equation-1 cost of the packed assignment: every node of the
           original tree is anchored at its job leaf (dummy leaves ride along
           uncut infinite edges), so charge each finite tree edge by the LCA
           level of its endpoints' job-leaf assignments. *)
        let location v = report.Feasible.assignment.(job_leaf.(v)) in
        let n_orig = Array.length job_leaf in
        let packed_cost = ref 0. in
        for v = 0 to n_orig - 1 do
          if v <> Tree.root t then begin
            let w = Tree.edge_weight t v in
            if w <> infinity then
              packed_cost :=
                !packed_cost +. (w *. H.cm hy (H.lca_level hy (location v) (location (Tree.parent t v))))
          end
        done;
        !packed_cost <= r.Tree_dp.cost +. 1e-6)

let test_explicit_packing () =
  (* Star with 4 unit leaves, capacities 1 unit per H-leaf, h=2 (2x2).
     The relaxed optimum puts each leaf alone (all edges cut at level 0 or
     deeper as needed); packing must assign 4 distinct H-leaves. *)
  let t =
    Tree.of_parents ~root:0 ~parents:[| -1; 0; 0; 0; 0 |]
      ~weights:[| 0.; 1.; 1.; 1.; 1. |]
  in
  let demand_units = [| 0; 1; 1; 1; 1 |] in
  let hy = H.create ~degs:[| 2; 2 |] ~cm:[| 4.; 1.; 0. |] ~leaf_capacity:1.0 in
  let cfg = Tree_dp.config_of_hierarchy hy ~resolution:1 () in
  match Tree_dp.solve t ~demand_units cfg with
  | None -> Alcotest.fail "feasible"
  | Some r ->
    let report = Feasible.pack t ~kappa:r.kappa ~demand_units ~hierarchy:hy ~resolution:1 in
    let leaves = [ 1; 2; 3; 4 ] in
    let assigned = List.map (fun l -> report.Feasible.assignment.(l)) leaves in
    Alcotest.(check int) "four distinct leaves" 4
      (List.length (List.sort_uniq compare assigned));
    Test_support.check_close "perfectly packed" 1. report.Feasible.max_violation_units

let test_bound_helper () =
  Test_support.check_close "bound" 7.5
    (Feasible.theoretical_violation_bound ~h:4 ~eps:0.5)

let () =
  Alcotest.run "feasible"
    [
      ( "unit",
        [
          Alcotest.test_case "explicit packing" `Quick test_explicit_packing;
          Alcotest.test_case "bound helper" `Quick test_bound_helper;
        ] );
      ( "property",
        [ prop_all_leaves_assigned; prop_violation_bounded; prop_cost_never_increases ] );
    ]
