module Dsu = Hgp_util.Dsu

let test_singletons () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "sets" 5 (Dsu.count_sets d);
  for i = 0 to 4 do
    Alcotest.(check int) "self find" i (Dsu.find d i);
    Alcotest.(check int) "size 1" 1 (Dsu.set_size d i)
  done

let test_union_semantics () =
  let d = Dsu.create 4 in
  Alcotest.(check bool) "first union merges" true (Dsu.union d 0 1);
  Alcotest.(check bool) "repeat union no-op" false (Dsu.union d 0 1);
  Alcotest.(check bool) "same" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 2);
  Alcotest.(check int) "sizes" 2 (Dsu.set_size d 1);
  Alcotest.(check int) "sets" 3 (Dsu.count_sets d)

let test_groups () =
  let d = Dsu.create 6 in
  ignore (Dsu.union d 0 2);
  ignore (Dsu.union d 2 4);
  ignore (Dsu.union d 1 5);
  let groups = Dsu.groups d in
  let sets = List.map Array.to_list groups in
  Alcotest.(check int) "three groups" 3 (List.length sets);
  Alcotest.(check bool) "0,2,4 together" true (List.mem [ 0; 2; 4 ] sets);
  Alcotest.(check bool) "1,5 together" true (List.mem [ 1; 5 ] sets);
  Alcotest.(check bool) "3 alone" true (List.mem [ 3 ] sets)

(* Model-based property test: compare against a naive partition refinement. *)
let prop_matches_naive =
  Test_support.qtest ~count:200 "matches naive model"
    QCheck2.Gen.(
      pair (int_range 1 20) (list_size (int_bound 40) (pair (int_bound 19) (int_bound 19))))
    (fun (n, ops) ->
      let ops = List.map (fun (a, b) -> (a mod n, b mod n)) ops in
      let d = Dsu.create n in
      (* Naive model: representative array updated by full scans. *)
      let model = Array.init n (fun i -> i) in
      List.iter
        (fun (a, b) ->
          ignore (Dsu.union d a b);
          let ra = model.(a) and rb = model.(b) in
          if ra <> rb then
            Array.iteri (fun i r -> if r = rb then model.(i) <- ra) model)
        ops;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Dsu.same d i j <> (model.(i) = model.(j)) then ok := false
        done
      done;
      (* Sizes and set counts agree with the model too. *)
      let model_sets =
        List.length (List.sort_uniq compare (Array.to_list model))
      in
      !ok && Dsu.count_sets d = model_sets)

let prop_group_sizes =
  Test_support.qtest ~count:100 "groups partition the universe"
    QCheck2.Gen.(
      pair (int_range 1 15) (list_size (int_bound 30) (pair (int_bound 14) (int_bound 14))))
    (fun (n, ops) ->
      let d = Dsu.create n in
      List.iter (fun (a, b) -> ignore (Dsu.union d (a mod n) (b mod n))) ops;
      let members = List.concat_map Array.to_list (Dsu.groups d) in
      List.sort compare members = List.init n (fun i -> i))

let () =
  Alcotest.run "dsu"
    [
      ( "unit",
        [
          Alcotest.test_case "singletons" `Quick test_singletons;
          Alcotest.test_case "union semantics" `Quick test_union_semantics;
          Alcotest.test_case "groups" `Quick test_groups;
        ] );
      ("property", [ prop_matches_naive; prop_group_sizes ]);
    ]
