module Tree = Hgp_tree.Tree
module Tree_dp = Hgp_core.Tree_dp
module Collections = Hgp_core.Collections
module Gen = Hgp_graph.Generators
module Prng = Hgp_util.Prng

(* Random solved instances: job-complete trees and solved DP labelings. *)
let gen_solved =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* n = int_range 2 9 in
  let* h = int_range 1 3 in
  let rng = Prng.create seed in
  let g = Gen.randomize_weights rng (Gen.random_tree rng n) ~lo:1.0 ~hi:9.0 in
  let t, job_leaf = Tree.lift_internal_jobs (Tree.of_graph g ~root:0) in
  let demand_units = Array.make (Tree.n_nodes t) 0 in
  Array.iter (fun l -> demand_units.(l) <- 1 + Prng.int rng 2) job_leaf;
  let cm = Array.init (h + 1) (fun j -> float_of_int (2 * (h - j))) in
  let cp_units = Array.init (h + 1) (fun j -> 4 * (h + 1 - j) * max 1 (n / 2)) in
  let cfg = { Tree_dp.cm; cp_units; bucketing = None; prune = true; beam_width = None } in
  return (t, demand_units, cm, cp_units, h, cfg)

let prop_solver_output_is_definition4 =
  Test_support.qtest ~count:120 "DP output satisfies Definition 4 structure and capacities"
    gen_solved
    (fun (t, demand_units, _cm, cp_units, h, cfg) ->
      match Tree_dp.solve t ~demand_units cfg with
      | None -> true
      | Some r ->
        let c = Collections.of_kappa t ~kappa:r.kappa ~h in
        Collections.is_valid_relaxed c t
        && Collections.demand_ok c ~demand_units ~cp_units)

let prop_definition3_cost_dominated =
  Test_support.qtest ~count:120
    "Definition-3 (min-cut) cost never exceeds the edge-labeling cost"
    gen_solved
    (fun (t, demand_units, cm, _cp, h, cfg) ->
      match Tree_dp.solve t ~demand_units cfg with
      | None -> true
      | Some r ->
        let c = Collections.of_kappa t ~kappa:r.kappa ~h in
        let d3 = Collections.definition3_cost c t ~cm in
        let kc = Tree_dp.kappa_cost t ~kappa:r.kappa ~cm in
        d3 <= kc +. 1e-6)

let prop_random_labelings_laminar =
  Test_support.qtest ~count:120 "arbitrary labelings still produce Definition-4 families"
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 2 12 in
      let* h = int_range 1 3 in
      return (seed, n, h))
    (fun (seed, n, h) ->
      let rng = Prng.create seed in
      let g = Gen.random_tree rng n in
      let t = Tree.of_graph g ~root:0 in
      let kappa = Array.init n (fun v -> if v = 0 then 0 else Prng.int rng (h + 1)) in
      let c = Collections.of_kappa t ~kappa ~h in
      Collections.is_valid_relaxed c t)

let test_refinement_widths () =
  (* Star of 4 leaves fully separated at level 1: the root set splits into 4
     level-1 sets — width 4, which Definition 3 would cap at DEG(0). *)
  let t =
    Tree.of_parents ~root:0 ~parents:[| -1; 0; 0; 0; 0 |]
      ~weights:[| 0.; 1.; 1.; 1.; 1. |]
  in
  let kappa = [| 0; 0; 0; 0; 0 |] in
  let c = Collections.of_kappa t ~kappa ~h:1 in
  Alcotest.(check (array int)) "width 4" [| 4 |] (Collections.refinement_widths c)

let test_definition3_star_example () =
  (* The star example from the development notes: cost with min cuts is half
     the boundary sum when regions do not tile. *)
  let t =
    Tree.of_parents ~root:0 ~parents:[| -1; 0; 0; 0 |] ~weights:[| 0.; 1.; 1.; 1. |]
  in
  let kappa = [| 0; 0; 0; 1 |] in
  (* leaves 1,2 separated; leaf 3 keeps its edge: level-1 sets {1},{2},{3}. *)
  let c = Collections.of_kappa t ~kappa ~h:1 in
  let d3 = Collections.definition3_cost c t ~cm:[| 2.; 0. |] in
  (* CUT({1}) = 1, CUT({2}) = 1, CUT({3}) = 1, each * (2-0)/2 = 1. *)
  Test_support.check_close "min-cut cost" 3. d3;
  let kc = Hgp_core.Tree_dp.kappa_cost t ~kappa ~cm:[| 2.; 0. |] in
  Test_support.check_close "labeling cost" 4. kc

let () =
  Alcotest.run "collections"
    [
      ( "unit",
        [
          Alcotest.test_case "refinement widths" `Quick test_refinement_widths;
          Alcotest.test_case "definition3 star" `Quick test_definition3_star_example;
        ] );
      ( "property",
        [
          prop_solver_output_is_definition4;
          prop_definition3_cost_dominated;
          prop_random_labelings_laminar;
        ] );
    ]
