module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module GH = Hgp_flow.Gomory_hu
module Maxflow = Hgp_flow.Maxflow
module Prng = Hgp_util.Prng

let test_path_graph () =
  (* On a path the GH tree is the path itself: min cut between i and j is the
     lightest edge between them. *)
  let g = Graph.of_edges 4 [ (0, 1, 5.); (1, 2, 2.); (2, 3, 7.) ] in
  let t = GH.build g in
  Test_support.check_close "0-3 bottleneck" 2. (GH.min_cut_between t 0 3);
  Test_support.check_close "0-1 direct" 5. (GH.min_cut_between t 0 1);
  Test_support.check_close "2-3 direct" 7. (GH.min_cut_between t 2 3)

let test_triangle () =
  let g = Graph.of_edges 3 [ (0, 1, 1.); (1, 2, 2.); (0, 2, 3.) ] in
  let t = GH.build g in
  (* Min cut isolating vertex 1 is 1+2=3; between 0 and 2 it is min(4, ...) *)
  Test_support.check_close "0-1" 3. (GH.min_cut_between t 0 1);
  Test_support.check_close "1-2" 3. (GH.min_cut_between t 1 2);
  Test_support.check_close "0-2" 4. (GH.min_cut_between t 0 2)

let test_single_vertex () =
  let g = Graph.of_edges 1 [] in
  let t = GH.build g in
  Alcotest.(check int) "trivial" 1 (Array.length t.GH.parent)

let test_to_graph_is_tree () =
  let rng = Prng.create 3 in
  let g = Gen.gnp_connected rng 12 0.4 in
  let t = GH.build g in
  let tg = GH.to_graph t in
  Alcotest.(check int) "n-1 edges" 11 (Graph.m tg);
  Alcotest.(check bool) "connected" true (Hgp_graph.Traversal.is_connected tg)

let prop_all_pairs_correct =
  Test_support.qtest ~count:40 "GH tree gives exact min cuts for all pairs"
    (Test_support.gen_graph ~max_n:9 ())
    (fun g ->
      let n = Graph.n g in
      let t = GH.build g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let claimed = GH.min_cut_between t u v in
          let actual = Maxflow.min_cut_value g ~src:u ~dst:v in
          if Float.abs (claimed -. actual) > 1e-6 then ok := false
        done
      done;
      !ok)

let prop_check_helper =
  Test_support.qtest ~count:40 "check reports zero error"
    (Test_support.gen_graph ~max_n:10 ())
    (fun g ->
      let n = Graph.n g in
      let t = GH.build g in
      let pairs = List.init (n - 1) (fun i -> (i, i + 1)) in
      GH.check t g ~pairs < 1e-6)

let () =
  Alcotest.run "gomory_hu"
    [
      ( "unit",
        [
          Alcotest.test_case "path graph" `Quick test_path_graph;
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "single vertex" `Quick test_single_vertex;
          Alcotest.test_case "to_graph" `Quick test_to_graph_is_tree;
        ] );
      ("property", [ prop_all_pairs_correct; prop_check_helper ]);
    ]
