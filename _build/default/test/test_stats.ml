module Stats = Hgp_util.Stats

let test_mean () =
  Test_support.check_close "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stddev () =
  Test_support.check_close "stddev known" (sqrt 2.5)
    (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  Test_support.check_close "single obs" 0. (Stats.stddev [| 7. |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  Test_support.check_close "min" (-1.) lo;
  Test_support.check_close "max" 7. hi

let test_quantiles () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  Test_support.check_close "q0" 1. (Stats.quantile xs 0.);
  Test_support.check_close "q1" 4. (Stats.quantile xs 1.);
  Test_support.check_close "median" 2.5 (Stats.median xs);
  Test_support.check_close "q0.25" 1.75 (Stats.quantile xs 0.25)

let test_geometric_mean () =
  Test_support.check_close "geomean" 4. (Stats.geometric_mean [| 2.; 8. |])

let test_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]));
  Alcotest.check_raises "bad quantile" (Invalid_argument "Stats.quantile: q out of range")
    (fun () -> ignore (Stats.quantile [| 1. |] 1.5));
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geometric_mean: non-positive element") (fun () ->
      ignore (Stats.geometric_mean [| 1.; 0. |]))

let prop_mean_bounds =
  Test_support.qtest "min <= mean <= max"
    QCheck2.Gen.(array_size (int_range 1 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_quantile_monotone =
  Test_support.qtest "quantiles monotone in q"
    QCheck2.Gen.(
      triple
        (array_size (int_range 1 50) (float_range (-100.) 100.))
        (float_range 0. 1.) (float_range 0. 1.))
    (fun (xs, q1, q2) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile xs lo <= Stats.quantile xs hi +. 1e-9)

let prop_geomean_le_mean =
  Test_support.qtest "AM-GM inequality"
    QCheck2.Gen.(array_size (int_range 1 30) (float_range 0.01 1e3))
    (fun xs -> Stats.geometric_mean xs <= Stats.mean xs +. 1e-6)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min max" `Quick test_min_max;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ("property", [ prop_mean_bounds; prop_quantile_monotone; prop_geomean_le_mean ]);
    ]
