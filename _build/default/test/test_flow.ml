module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Maxflow = Hgp_flow.Maxflow
module Mincut = Hgp_flow.Mincut
module Cuts = Hgp_graph.Cuts

(* Brute-force minimum s-t cut by enumerating vertex bipartitions. *)
let brute_st_cut g ~src ~dst =
  let n = Graph.n g in
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    let in_set v = (mask lsr v) land 1 = 1 in
    if in_set src && not (in_set dst) then begin
      let w = Cuts.cut_weight g in_set in
      if w < !best then best := w
    end
  done;
  !best

let test_known_flow () =
  (* Classic diamond: 0->{1,2}->3 with a cross edge. *)
  let t = Maxflow.create 4 in
  Maxflow.add_arc t 0 1 3.;
  Maxflow.add_arc t 0 2 2.;
  Maxflow.add_arc t 1 3 2.;
  Maxflow.add_arc t 2 3 3.;
  Maxflow.add_arc t 1 2 1.;
  Test_support.check_close "max flow" 5. (Maxflow.max_flow t ~src:0 ~dst:3)

let test_disconnected_flow () =
  let t = Maxflow.create 3 in
  Maxflow.add_arc t 0 1 4.;
  Test_support.check_close "no path" 0. (Maxflow.max_flow t ~src:0 ~dst:2)

let test_reset () =
  let t = Maxflow.create 2 in
  Maxflow.add_arc t 0 1 7.;
  Test_support.check_close "first" 7. (Maxflow.max_flow t ~src:0 ~dst:1);
  Test_support.check_close "drained" 0. (Maxflow.max_flow t ~src:0 ~dst:1);
  Maxflow.reset t;
  Test_support.check_close "after reset" 7. (Maxflow.max_flow t ~src:0 ~dst:1)

let test_min_cut_side () =
  let g = Graph.of_edges 4 [ (0, 1, 10.); (1, 2, 1.); (2, 3, 10.) ] in
  let t = Maxflow.of_graph g in
  let f = Maxflow.max_flow t ~src:0 ~dst:3 in
  Test_support.check_close "bottleneck" 1. f;
  let side = Maxflow.min_cut_side t ~src:0 in
  Alcotest.(check bool) "src side" true side.(0);
  Alcotest.(check bool) "1 with src" true side.(1);
  Alcotest.(check bool) "dst side" false side.(3)

let prop_flow_equals_brute_cut =
  Test_support.qtest ~count:80 "max-flow = brute min s-t cut"
    (Test_support.gen_graph ~max_n:9 ())
    (fun g ->
      let n = Graph.n g in
      let src = 0 and dst = n - 1 in
      let f = Maxflow.min_cut_value g ~src ~dst in
      let c = brute_st_cut g ~src ~dst in
      Float.abs (f -. c) < 1e-6)

let prop_cut_side_is_min_cut =
  Test_support.qtest ~count:80 "residual side realizes the flow value"
    (Test_support.gen_graph ~max_n:9 ())
    (fun g ->
      let n = Graph.n g in
      let t = Maxflow.of_graph g in
      let f = Maxflow.max_flow t ~src:0 ~dst:(n - 1) in
      let side = Maxflow.min_cut_side t ~src:0 in
      side.(0)
      && (not side.(n - 1))
      && Float.abs (Cuts.cut_weight g (fun v -> side.(v)) -. f) < 1e-6)

let test_stoer_wagner_known () =
  (* Two triangles joined by a single light edge. *)
  let g =
    Graph.of_edges 6
      [
        (0, 1, 3.); (1, 2, 3.); (0, 2, 3.);
        (3, 4, 3.); (4, 5, 3.); (3, 5, 3.);
        (2, 3, 1.);
      ]
  in
  let value, side = Mincut.stoer_wagner g in
  Test_support.check_close "min cut" 1. value;
  Test_support.check_close "side realizes it" 1. (Cuts.cut_weight g (fun v -> side.(v)))

let prop_stoer_wagner_vs_brute =
  Test_support.qtest ~count:60 "Stoer-Wagner = brute global min cut"
    (Test_support.gen_graph ~max_n:9 ())
    (fun g ->
      let sw, side = Mincut.stoer_wagner g in
      let bf, _ = Mincut.brute_force g in
      Float.abs (sw -. bf) < 1e-6
      && Float.abs (Cuts.cut_weight g (fun v -> side.(v)) -. sw) < 1e-6)

let test_errors () =
  Alcotest.(check bool) "src=dst rejected" true
    (try
       let t = Maxflow.create 2 in
       ignore (Maxflow.max_flow t ~src:0 ~dst:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "tiny stoer-wagner rejected" true
    (try
       ignore (Mincut.stoer_wagner (Graph.of_edges 1 []));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "flow"
    [
      ( "unit",
        [
          Alcotest.test_case "known flow" `Quick test_known_flow;
          Alcotest.test_case "disconnected" `Quick test_disconnected_flow;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side;
          Alcotest.test_case "stoer-wagner known" `Quick test_stoer_wagner_known;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "property",
        [ prop_flow_equals_brute_cut; prop_cut_side_is_min_cut; prop_stoer_wagner_vs_brute ] );
    ]
