module D = Hgp_racke.Decomposition
module Clustering = Hgp_racke.Clustering
module Ensemble = Hgp_racke.Ensemble
module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Tree = Hgp_tree.Tree
module Prng = Hgp_util.Prng

let test_leaf_bijection () =
  let rng = Prng.create 1 in
  let g = Gen.grid2d ~rows:3 ~cols:3 in
  let d = D.build rng g in
  let t = D.tree d in
  Alcotest.(check int) "one leaf per vertex" 9 (Tree.n_leaves t);
  for v = 0 to 8 do
    Alcotest.(check int) "roundtrip" v (D.vertex_of_leaf d (D.leaf_of_vertex d v))
  done

let test_explicit_clustering_weights () =
  (* Square 0-1-2-3-0 with known weights; cluster {{0,1},{2,3}}. *)
  let g = Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.); (3, 0, 4.) ] in
  let c =
    Clustering.Node
      [
        Clustering.Node [ Clustering.Leaf 0; Clustering.Leaf 1 ];
        Clustering.Node [ Clustering.Leaf 2; Clustering.Leaf 3 ];
      ]
  in
  let d = D.of_clustering g c in
  let t = D.tree d in
  (* The edge above the {0,1} cluster must weigh cut({0,1}) = 2 + 4 = 6. *)
  let leaf0 = D.leaf_of_vertex d 0 in
  let cluster01 = Tree.parent t leaf0 in
  Test_support.check_close "cluster cut weight" 6. (Tree.edge_weight t cluster01);
  (* A leaf's edge weighs the vertex's weighted degree. *)
  Test_support.check_close "leaf edge = degree" 5. (Tree.edge_weight t leaf0)

let test_missing_vertex_rejected () =
  let g = Graph.of_edges 2 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (D.of_clustering g (Clustering.Node [ Clustering.Leaf 0 ]));
       false
     with Invalid_argument _ -> true)

let test_disconnected_rejected () =
  let g = Graph.of_edges 3 [ (0, 1, 1.) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (D.build (Prng.create 0) g);
       false
     with Invalid_argument _ -> true)

(* Proposition 1: tree cuts dominate graph cuts — exact by construction,
   for every shape strategy. *)
let prop_tree_cut_dominates =
  Test_support.qtest ~count:80 "Proposition 1: w_T(CUT_T) >= w_G(CUT_G), all strategies"
    QCheck2.Gen.(
      quad (int_bound 100000) (int_range 3 14) (int_bound 10000) (int_range 0 2))
    (fun (seed, n, mask, strat) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.35 in
      let g = Gen.randomize_weights rng g ~lo:1.0 ~hi:5.0 in
      let strategy =
        match strat with
        | 0 -> D.Low_diameter
        | 1 -> D.Bfs_bisection
        | _ -> D.Gomory_hu
      in
      let d = D.build ~strategy rng g in
      let in_set v = (mask lsr v) land 1 = 1 in
      let wg = D.graph_cut_weight d ~in_vertex_set:in_set in
      let wt = D.tree_cut_weight d ~in_vertex_set:in_set in
      wt >= wg -. 1e-6)

let prop_strategies_leaf_bijection =
  Test_support.qtest ~count:60 "every strategy keeps the leaf bijection"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 16))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.4 in
      List.for_all
        (fun strategy ->
          let d = D.build ~strategy rng g in
          let t = D.tree d in
          Tree.n_leaves t = n
          && List.for_all
               (fun v -> D.vertex_of_leaf d (D.leaf_of_vertex d v) = v)
               (List.init n (fun i -> i)))
        [ D.Low_diameter; D.Bfs_bisection; D.Gomory_hu ])

let test_mixed_ensemble () =
  let rng = Prng.create 21 in
  let g = Gen.grid2d ~rows:4 ~cols:4 in
  let e = Ensemble.sample ~strategy:Ensemble.Mixed rng g ~size:6 in
  Alcotest.(check int) "size" 6 (Ensemble.size e);
  List.iter
    (fun d ->
      Alcotest.(check int) "leaves" 16 (Tree.n_leaves (D.tree d)))
    (Ensemble.to_list e)

let test_spanning_shape_validation () =
  let g = Graph.of_edges 3 [ (0, 1, 1.); (1, 2, 1.) ] in
  Alcotest.(check bool) "no root rejected" true
    (try
       ignore (D.of_spanning_shape g ~parents:[| 1; 2; 0 |]);
       false
     with Invalid_argument _ -> true)

let prop_tree_edge_weights_are_cuts =
  Test_support.qtest ~count:60 "every tree edge weighs its induced G-cut"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 3 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.35 in
      let g = Gen.randomize_weights rng g ~lo:1.0 ~hi:5.0 in
      let d = D.build rng g in
      let t = D.tree d in
      let ok = ref true in
      for z = 0 to Tree.n_nodes t - 1 do
        if z <> Tree.root t then begin
          let below = Tree.subtree_leaves t z in
          let members = Array.make n false in
          Array.iter (fun l -> members.(D.vertex_of_leaf d l) <- true) below;
          let cut = Hgp_graph.Cuts.cut_weight g (fun v -> members.(v)) in
          if Float.abs (cut -. Tree.edge_weight t z) > 1e-6 then ok := false
        end
      done;
      !ok)

let test_distortion_sample () =
  let rng = Prng.create 7 in
  let g = Gen.grid2d ~rows:4 ~cols:4 in
  let d = D.build rng g in
  let ratios = D.distortion_sample d rng ~trials:20 in
  Alcotest.(check bool) "has samples" true (Array.length ratios > 0);
  Array.iter
    (fun r -> Alcotest.(check bool) "every ratio >= 1" true (r >= 1. -. 1e-9))
    ratios

let test_ensemble () =
  let rng = Prng.create 11 in
  let g = Gen.grid2d ~rows:3 ~cols:4 in
  let e = Ensemble.sample rng g ~size:5 in
  Alcotest.(check int) "size" 5 (Ensemble.size e);
  Alcotest.(check int) "to_list" 5 (List.length (Ensemble.to_list e));
  (* best_of finds the minimum score. *)
  let count = ref 0 in
  let idx, res, score =
    Ensemble.best_of e (fun _ ->
        incr count;
        let s = float_of_int ((!count * 7) mod 5) in
        (!count, s))
  in
  Alcotest.(check int) "visited all" 5 !count;
  Test_support.check_close "min score" 0. score;
  Alcotest.(check bool) "consistent result" true (res = idx + 1);
  let avg = Ensemble.average_distortion e rng ~trials:5 in
  Alcotest.(check bool) "distortion >= 1" true (avg >= 1. -. 1e-9)

let () =
  Alcotest.run "decomposition"
    [
      ( "unit",
        [
          Alcotest.test_case "leaf bijection" `Quick test_leaf_bijection;
          Alcotest.test_case "explicit weights" `Quick test_explicit_clustering_weights;
          Alcotest.test_case "missing vertex" `Quick test_missing_vertex_rejected;
          Alcotest.test_case "disconnected" `Quick test_disconnected_rejected;
          Alcotest.test_case "distortion sample" `Quick test_distortion_sample;
          Alcotest.test_case "ensemble" `Quick test_ensemble;
          Alcotest.test_case "mixed ensemble" `Quick test_mixed_ensemble;
          Alcotest.test_case "spanning shape validation" `Quick test_spanning_shape_validation;
        ] );
      ( "property",
        [
          prop_tree_cut_dominates;
          prop_tree_edge_weights_are_cuts;
          prop_strategies_leaf_bijection;
        ] );
    ]
