module H = Hgp_hierarchy.Hierarchy
module Des = Hgp_sim.Des
module SD = Hgp_workloads.Stream_dag
module Prng = Hgp_util.Prng

(* A deterministic 3-stage pipeline: source -> op -> sink. *)
let pipeline ~rate ~demand =
  {
    Des.n_tasks = 3;
    sources = [ (0, rate) ];
    edges = [ (0, 1, rate); (1, 2, rate) ];
    rates = [| rate; rate; rate |];
    demands = [| demand; demand; demand |];
    sinks = [ 2 ];
  }

let hy2 () = H.create ~degs:[| 2 |] ~cm:[| 10.; 0. |] ~leaf_capacity:1.0

let base_cfg =
  { Des.default_config with duration = 30.0; warmup = 3.0; seed = 7 }

let test_pipeline_flows () =
  let w = pipeline ~rate:50. ~demand:0.3 in
  let m = Des.run w (hy2 ()) ~assignment:[| 0; 0; 1 |] base_cfg in
  Alcotest.(check bool) "completions" true (m.completed > 1000);
  Alcotest.(check int) "no drops at low load" 0 m.dropped;
  (* Throughput close to the nominal rate. *)
  Alcotest.(check bool) "throughput near nominal" true
    (m.throughput > 40. && m.throughput < 60.);
  Alcotest.(check bool) "latency positive and small" true
    (m.avg_latency > 0. && m.avg_latency < 0.2);
  Alcotest.(check bool) "p99 >= avg" true (m.p99_latency >= m.avg_latency)

let test_utilization_tracks_demand () =
  let w = pipeline ~rate:50. ~demand:0.3 in
  (* All three stages on one core: utilization ~ 0.9 + comm. *)
  let m = Des.run w (hy2 ()) ~assignment:[| 0; 0; 0 |] base_cfg in
  Alcotest.(check bool) "near 0.9" true
    (m.max_core_utilization > 0.8 && m.max_core_utilization < 1.0)

let test_saturation_drops () =
  let w = pipeline ~rate:50. ~demand:0.6 in
  (* 3 * 0.6 = 1.8 cores of work on one core: must saturate and drop. *)
  let m =
    Des.run w (hy2 ()) ~assignment:[| 0; 0; 0 |] { base_cfg with max_queue = 16 }
  in
  Alcotest.(check bool) "saturated" true (m.max_core_utilization > 0.99);
  Alcotest.(check bool) "drops" true (m.dropped > 0);
  Alcotest.(check bool) "throughput capped below nominal" true (m.throughput < 50.)

let test_colocated_cheaper_than_split () =
  (* With heavy communication overhead, splitting a hot pipeline across the
     hierarchy costs CPU: co-located placement sustains more. *)
  let w = pipeline ~rate:100. ~demand:0.25 in
  let cfg = { base_cfg with comm_overhead = 4e-3 } in
  let split = Des.run w (hy2 ()) ~assignment:[| 0; 1; 0 |] cfg in
  let colocated = Des.run w (hy2 ()) ~assignment:[| 0; 0; 0 |] cfg in
  Alcotest.(check bool) "co-location lowers peak utilization" true
    (colocated.max_core_utilization < split.max_core_utilization +. 1e-9)

let test_link_contention_throttles () =
  (* Two parallel heavy pipelines both crossing the root link: with link
     contention the shared link becomes the bottleneck; co-locating each
     pipeline avoids it entirely. *)
  let w =
    {
      Des.n_tasks = 4;
      sources = [ (0, 200.); (2, 200.) ];
      edges = [ (0, 1, 200.); (2, 3, 200.) ];
      rates = [| 200.; 200.; 200.; 200. |];
      demands = [| 0.2; 0.2; 0.2; 0.2 |];
      sinks = [ 1; 3 ];
    }
  in
  let cfg = { base_cfg with link_occupancy = 5e-3; duration = 15.0; warmup = 2.0 } in
  (* Both pipelines split across the root edge: 400 tuples/s contend on a
     link that serves 200/s. *)
  let contended = Des.run w (hy2 ()) ~assignment:[| 0; 1; 0; 1 |] cfg in
  let colocated = Des.run w (hy2 ()) ~assignment:[| 0; 0; 1; 1 |] cfg in
  Alcotest.(check bool) "co-location avoids the shared link" true
    (colocated.throughput > contended.throughput);
  Alcotest.(check bool) "contended latency worse" true
    (Float.is_nan colocated.avg_latency
    || colocated.avg_latency < contended.avg_latency);
  (* With occupancy 0 the same split placement flows freely. *)
  let free =
    Des.run w (hy2 ()) ~assignment:[| 0; 1; 0; 1 |] { cfg with link_occupancy = 0. }
  in
  Alcotest.(check bool) "no contention without occupancy" true
    (free.throughput > contended.throughput)

let test_deterministic () =
  let w = pipeline ~rate:40. ~demand:0.2 in
  let m1 = Des.run w (hy2 ()) ~assignment:[| 0; 1; 0 |] base_cfg in
  let m2 = Des.run w (hy2 ()) ~assignment:[| 0; 1; 0 |] base_cfg in
  Alcotest.(check int) "same completions" m1.completed m2.completed;
  Test_support.check_close "same latency" m1.avg_latency m2.avg_latency

let test_config_validation () =
  let w = pipeline ~rate:10. ~demand:0.1 in
  Alcotest.(check bool) "bad duration" true
    (try
       ignore (Des.run w (hy2 ()) ~assignment:[| 0; 0; 0 |] { base_cfg with duration = 0. });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad assignment" true
    (try
       ignore (Des.run w (hy2 ()) ~assignment:[| 0; 5; 0 |] base_cfg);
       false
     with Invalid_argument _ -> true)

let test_stream_adapter () =
  let rng = Prng.create 11 in
  let w = SD.generate rng { SD.default_params with n_sources = 4; pipeline_depth = 3 } in
  let hy = H.Presets.dual_socket in
  let inst = SD.to_instance w hy ~load_factor:0.5 in
  let sw = SD.to_sim_workload w ~demands:inst.Hgp_core.Instance.demands in
  Alcotest.(check int) "task count" (Hgp_core.Instance.n inst) sw.Des.n_tasks;
  Alcotest.(check int) "four sources" 4 (List.length sw.Des.sources);
  Alcotest.(check bool) "has sinks" true (sw.Des.sinks <> []);
  let sol = Hgp_core.Solver.solve inst in
  let m =
    Des.run sw hy ~assignment:sol.Hgp_core.Solver.assignment
      { base_cfg with duration = 10.0; warmup = 1.0; load = 0.5 }
  in
  Alcotest.(check bool) "tuples flow end to end" true (m.completed > 0)

let prop_selectivity_throughput =
  (* Deeper pipelines with selectivity < 1 deliver fewer tuples to sinks. *)
  Test_support.qtest ~count:10 "selectivity reduces deliveries"
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
      let rng = Prng.create seed in
      let make selectivity =
        let w =
          SD.generate rng
            { SD.default_params with n_sources = 4; pipeline_depth = 4; selectivity;
              join_probability = 0.; fanout_probability = 0. }
        in
        let hy = H.Presets.dual_socket in
        let inst = SD.to_instance w hy ~load_factor:0.4 in
        let sw = SD.to_sim_workload w ~demands:inst.Hgp_core.Instance.demands in
        let p = Hgp_baselines.Placement.greedy inst ~slack:1.3 () in
        Des.run sw hy ~assignment:p { base_cfg with duration = 10.0; warmup = 1.0; seed }
      in
      let lossy = make 0.5 in
      let lossless = make 1.0 in
      (* 0.5^3 of tuples survive three decaying hops vs all of them. *)
      lossy.completed < lossless.completed)

let () =
  Alcotest.run "sim"
    [
      ( "unit",
        [
          Alcotest.test_case "pipeline flows" `Quick test_pipeline_flows;
          Alcotest.test_case "utilization tracks demand" `Quick test_utilization_tracks_demand;
          Alcotest.test_case "saturation drops" `Quick test_saturation_drops;
          Alcotest.test_case "colocation cheaper" `Quick test_colocated_cheaper_than_split;
          Alcotest.test_case "link contention" `Quick test_link_contention_throttles;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "stream adapter" `Quick test_stream_adapter;
        ] );
      ("property", [ prop_selectivity_throughput ]);
    ]
