module Graph = Hgp_graph.Graph

let triangle () = Graph.of_edges 3 [ (0, 1, 1.); (1, 2, 2.); (0, 2, 3.) ]

let test_counts () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Test_support.check_close "total weight" 6. (Graph.total_weight g)

let test_parallel_edges_merge () =
  let g = Graph.of_edges 2 [ (0, 1, 1.); (1, 0, 2.5) ] in
  Alcotest.(check int) "merged" 1 (Graph.m g);
  Test_support.check_close "summed" 3.5 (Graph.edge_weight g 0 1)

let test_self_loops_ignored () =
  let g = Graph.of_edges 2 [ (0, 0, 5.); (0, 1, 1.) ] in
  Alcotest.(check int) "one edge" 1 (Graph.m g)

let test_neighbors () =
  let g = triangle () in
  let seen = ref [] in
  Graph.iter_neighbors (fun v w -> seen := (v, w) :: !seen) g 0;
  Alcotest.(check int) "degree 2" 2 (List.length !seen);
  Alcotest.(check int) "degree fn" 2 (Graph.degree g 0);
  Test_support.check_close "weighted degree" 4. (Graph.weighted_degree g 0)

let test_edge_lookup () =
  let g = triangle () in
  Test_support.check_close "weight" 2. (Graph.edge_weight g 1 2);
  Test_support.check_close "absent" 0. (Graph.edge_weight g 1 1);
  Alcotest.(check bool) "has" true (Graph.has_edge g 0 2);
  Alcotest.(check bool) "symmetric" true (Graph.has_edge g 2 0)

let test_induced () =
  let g = Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.); (0, 3, 4.) ] in
  let sub, back = Graph.induced g [| 1; 2; 3 |] in
  Alcotest.(check int) "sub n" 3 (Graph.n sub);
  Alcotest.(check int) "sub m" 2 (Graph.m sub);
  Alcotest.(check (array int)) "back map" [| 1; 2; 3 |] back;
  Test_support.check_close "kept weight" 2. (Graph.edge_weight sub 0 1)

let test_contract () =
  let g = Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.); (0, 3, 4.) ] in
  let c = Graph.contract g [| 0; 0; 1; 1 |] ~n_parts:2 in
  Alcotest.(check int) "contracted n" 2 (Graph.n c);
  Alcotest.(check int) "contracted m" 1 (Graph.m c);
  Test_support.check_close "parallel merged" 6. (Graph.edge_weight c 0 1)

let test_builder_errors () =
  let b = Graph.Builder.create 2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.Builder.add_edge: vertex out of range") (fun () ->
      Graph.Builder.add_edge b 0 2 1.);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Graph.Builder.add_edge: negative weight") (fun () ->
      Graph.Builder.add_edge b 0 1 (-1.))

let test_empty_graph () =
  let g = Graph.of_edges 0 [] in
  Alcotest.(check int) "n" 0 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.m g)

let prop_csr_consistent_with_edges =
  Test_support.qtest ~count:100 "CSR adjacency matches the edge list"
    (Test_support.gen_graph ())
    (fun g ->
      (* Sum of weighted degrees = 2 * total weight. *)
      let sum_deg = ref 0. in
      for v = 0 to Graph.n g - 1 do
        sum_deg := !sum_deg +. Graph.weighted_degree g v
      done;
      Float.abs (!sum_deg -. (2. *. Graph.total_weight g)) < 1e-6
      (* every listed edge is visible from both endpoints *)
      && Graph.fold_edges
           (fun acc u v w ->
             acc
             && Graph.has_edge g u v && Graph.has_edge g v u
             && Float.abs (Graph.edge_weight g u v -. w) < 1e-9
             && Float.abs (Graph.edge_weight g v u -. w) < 1e-9)
           true g)

let prop_contract_preserves_cut_weight =
  Test_support.qtest ~count:100 "contract keeps exactly the crossing weight"
    (Test_support.gen_graph ())
    (fun g ->
      let n = Graph.n g in
      let parts = Array.init n (fun v -> v mod 2) in
      let c = Graph.contract g parts ~n_parts:2 in
      Float.abs (Graph.total_weight c -. Hgp_graph.Cuts.kway_cut g parts) < 1e-6)

let prop_induced_subset =
  Test_support.qtest ~count:100 "induced keeps exactly internal edges"
    (Test_support.gen_graph ())
    (fun g ->
      let n = Graph.n g in
      let vs = Array.init ((n / 2) + 1) (fun i -> i) in
      let sub, back = Graph.induced g vs in
      let expected =
        Graph.fold_edges
          (fun acc u v w ->
            if u <= n / 2 && v <= n / 2 then acc +. w else acc)
          0. g
      in
      Float.abs (Graph.total_weight sub -. expected) < 1e-6 && back = vs)

let () =
  Alcotest.run "graph"
    [
      ( "unit",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "parallel edges merge" `Quick test_parallel_edges_merge;
          Alcotest.test_case "self loops ignored" `Quick test_self_loops_ignored;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "edge lookup" `Quick test_edge_lookup;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "contract" `Quick test_contract;
          Alcotest.test_case "builder errors" `Quick test_builder_errors;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "property",
        [
          prop_csr_consistent_with_edges;
          prop_contract_preserves_cut_weight;
          prop_induced_subset;
        ] );
    ]
