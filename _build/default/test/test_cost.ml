module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module H = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Prng = Hgp_util.Prng

let sample_instance () =
  let g = Graph.of_edges 4 [ (0, 1, 2.); (1, 2, 3.); (2, 3, 4.) ] in
  let hy = H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 4.; 0. |] ~leaf_capacity:1.0 in
  Instance.create g ~demands:[| 0.5; 0.5; 0.5; 0.5 |] hy

let test_assignment_cost_known () =
  let inst = sample_instance () in
  (* p: 0->leaf0, 1->leaf0 (same leaf), 2->leaf1 (same socket), 3->leaf2. *)
  let p = [| 0; 0; 1; 2 |] in
  (* edge (0,1): same leaf 0; edge (1,2): lca level 1 -> 4*3; edge (2,3):
     lca level 0 -> 10*4. *)
  Test_support.check_close "known cost" ((4. *. 3.) +. (10. *. 4.))
    (Cost.assignment_cost inst p)

let test_leaf_loads () =
  let inst = sample_instance () in
  let loads = Cost.leaf_loads inst [| 0; 0; 1; 2 |] in
  Test_support.check_close "leaf 0" 1.0 loads.(0);
  Test_support.check_close "leaf 3 empty" 0. loads.(3)

let test_violations () =
  let inst = sample_instance () in
  let p = [| 0; 0; 0; 1 |] in
  Test_support.check_close "leaf level violation" 1.5 (Cost.level_violation inst p 2);
  Test_support.check_close "socket level" 1.0 (Cost.level_violation inst p 1);
  Test_support.check_close "max" 1.5 (Cost.max_violation inst p)

let test_is_valid () =
  let inst = sample_instance () in
  Alcotest.(check bool) "balanced ok" true (Cost.is_valid inst [| 0; 1; 2; 3 |] ~slack:1.0);
  Alcotest.(check bool) "overloaded not ok" false
    (Cost.is_valid inst [| 0; 0; 0; 1 |] ~slack:1.0);
  Alcotest.(check bool) "slack accepts" true (Cost.is_valid inst [| 0; 0; 0; 1 |] ~slack:1.5);
  Alcotest.(check bool) "out of range leaf" false (Cost.is_valid inst [| 0; 1; 2; 9 |] ~slack:1.0)

(* Lemma 2: assignment cost (Eq. 1) equals mirror cost (Eq. 3). *)
let prop_lemma2_cost_identity =
  Test_support.qtest ~count:200 "Lemma 2: Eq.1 = Eq.3 on random assignments"
    QCheck2.Gen.(
      let* g = Test_support.gen_graph () in
      let* hy = Test_support.gen_hierarchy in
      let* p = Test_support.gen_assignment (Graph.n g) hy in
      return (g, hy, p))
    (fun (g, hy, p) ->
      let demands = Array.make (Graph.n g) 0.5 in
      let inst = Instance.create g ~demands hy in
      let a = Cost.assignment_cost inst p in
      let m = Cost.mirror_cost inst p in
      Float.abs (a -. m) < 1e-6 *. (1. +. Float.abs a))

(* Lemma 2 must hold for non-normalized cm as well (Lemma 1 interplay). *)
let prop_lemma2_non_normalized =
  Test_support.qtest ~count:100 "Lemma 2 with cm(h) > 0"
    QCheck2.Gen.(
      let* g = Test_support.gen_graph () in
      let* seed = int_bound 10000 in
      return (g, seed))
    (fun (g, seed) ->
      let rng = Prng.create seed in
      let hy = H.create ~degs:[| 2; 2 |] ~cm:[| 12.; 5.; 2. |] ~leaf_capacity:1.0 in
      let p = Array.init (Graph.n g) (fun _ -> Prng.int rng 4) in
      let inst = Instance.create g ~demands:(Array.make (Graph.n g) 0.5) hy in
      let a = Cost.assignment_cost inst p in
      let m = Cost.mirror_cost inst p in
      Float.abs (a -. m) < 1e-6 *. (1. +. Float.abs a))

(* Lemma 1: normalization shifts every assignment's cost by the same
   offset * total weight, so optima are preserved. *)
let prop_lemma1_normalization_shift =
  Test_support.qtest ~count:100 "Lemma 1: cost(cm) = cost(cm') + offset * W"
    QCheck2.Gen.(
      let* g = Test_support.gen_graph () in
      let* seed = int_bound 10000 in
      return (g, seed))
    (fun (g, seed) ->
      let rng = Prng.create seed in
      let hy = H.create ~degs:[| 2; 3 |] ~cm:[| 9.; 4.; 1.5 |] ~leaf_capacity:1.0 in
      let hy', offset = H.normalize hy in
      let p = Array.init (Graph.n g) (fun _ -> Prng.int rng 6) in
      let demands = Array.make (Graph.n g) 0.5 in
      let raw = Cost.assignment_cost (Instance.create g ~demands hy) p in
      let normalized = Cost.assignment_cost (Instance.create g ~demands hy') p in
      Float.abs (raw -. (normalized +. (offset *. Graph.total_weight g)))
      < 1e-6 *. (1. +. Float.abs raw))

let prop_cost_bounds =
  Test_support.qtest ~count:100 "0 <= cost <= cm(0) * W"
    QCheck2.Gen.(
      let* g = Test_support.gen_graph () in
      let* hy = Test_support.gen_hierarchy in
      let* p = Test_support.gen_assignment (Graph.n g) hy in
      return (g, hy, p))
    (fun (g, hy, p) ->
      let inst = Instance.create g ~demands:(Array.make (Graph.n g) 0.5) hy in
      let c = Cost.assignment_cost inst p in
      c >= 0. && c <= (H.cm hy 0 *. Graph.total_weight g) +. 1e-9)

let prop_colocated_free =
  Test_support.qtest ~count:50 "everything on one leaf costs cm(h) * W"
    (Test_support.gen_graph ())
    (fun g ->
      let hy = H.create ~degs:[| 2 |] ~cm:[| 7.; 1.5 |] ~leaf_capacity:1.0 in
      let inst = Instance.create g ~demands:(Array.make (Graph.n g) 0.5) hy in
      let c = Cost.assignment_cost inst (Array.make (Graph.n g) 0) in
      Float.abs (c -. (1.5 *. Graph.total_weight g)) < 1e-9)

let () =
  Alcotest.run "cost"
    [
      ( "unit",
        [
          Alcotest.test_case "known cost" `Quick test_assignment_cost_known;
          Alcotest.test_case "leaf loads" `Quick test_leaf_loads;
          Alcotest.test_case "violations" `Quick test_violations;
          Alcotest.test_case "is_valid" `Quick test_is_valid;
        ] );
      ( "property",
        [
          prop_lemma2_cost_identity;
          prop_lemma2_non_normalized;
          prop_lemma1_normalization_shift;
          prop_cost_bounds;
          prop_colocated_free;
        ] );
    ]
