module Tree = Hgp_tree.Tree
module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators

(* A fixed tree:      0
                    / | \
                   1  2  3
                  / \
                 4   5        weights = node index as float *)
let sample () =
  let parents = [| -1; 0; 0; 0; 1; 1 |] in
  let weights = [| 0.; 1.; 2.; 3.; 4.; 5. |] in
  Tree.of_parents ~root:0 ~parents ~weights

let test_structure () =
  let t = sample () in
  Alcotest.(check int) "nodes" 6 (Tree.n_nodes t);
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check int) "parent of 4" 1 (Tree.parent t 4);
  Test_support.check_close "weight of 5" 5. (Tree.edge_weight t 5);
  Alcotest.(check bool) "leaf 4" true (Tree.is_leaf t 4);
  Alcotest.(check bool) "internal 1" false (Tree.is_leaf t 1);
  Alcotest.(check (array int)) "leaves" [| 2; 3; 4; 5 |] (Tree.leaves t);
  Alcotest.(check int) "n_leaves" 4 (Tree.n_leaves t);
  Alcotest.(check int) "depth 4" 2 (Tree.depth t 4);
  Alcotest.(check (array int)) "subtree leaves of 1" [| 4; 5 |] (Tree.subtree_leaves t 1)

let test_post_order () =
  let t = sample () in
  let post = Tree.post_order t in
  Alcotest.(check int) "covers all" 6 (Array.length post);
  (* Every node appears after its children. *)
  let pos = Array.make 6 0 in
  Array.iteri (fun i v -> pos.(v) <- i) post;
  for v = 1 to 5 do
    Alcotest.(check bool) "child before parent" true (pos.(v) < pos.(Tree.parent t v))
  done

let test_of_graph () =
  let g = Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 2.); (1, 3, 3.) ] in
  let t = Tree.of_graph g ~root:2 in
  Alcotest.(check int) "root" 2 (Tree.root t);
  Alcotest.(check int) "parent of 1" 2 (Tree.parent t 1);
  Test_support.check_close "edge weight preserved" 2. (Tree.edge_weight t 1);
  Alcotest.check_raises "not a tree" (Invalid_argument "Tree.of_graph: not a tree (edge count)")
    (fun () -> ignore (Tree.of_graph (Gen.cycle 3) ~root:0))

let test_lift_internal_jobs () =
  let t = sample () in
  let lifted, job_leaf = Tree.lift_internal_jobs t in
  (* 2 internal nodes (0 and 1) gain dummy leaves. *)
  Alcotest.(check int) "two more nodes" 8 (Tree.n_nodes lifted);
  Alcotest.(check int) "leaf count" 6 (Tree.n_leaves lifted);
  (* Original leaves map to themselves. *)
  Alcotest.(check int) "leaf maps to self" 4 job_leaf.(4);
  (* Internal nodes map to fresh leaves attached by infinite edges. *)
  Alcotest.(check bool) "internal mapped to dummy" true (job_leaf.(0) >= 6);
  Alcotest.(check bool) "dummy edge infinite" true
    (Tree.edge_weight lifted job_leaf.(0) = infinity)

let test_binarize () =
  let t = sample () in
  let b, mapping = Tree.binarize t in
  Alcotest.(check (array int)) "originals keep ids" (Array.init 6 (fun i -> i)) mapping;
  (* Node 0 had 3 children: one dummy added. *)
  Alcotest.(check int) "one dummy" 7 (Tree.n_nodes b);
  (* Binary now. *)
  for v = 0 to Tree.n_nodes b - 1 do
    Alcotest.(check bool) "arity <= 2" true (Array.length (Tree.children b v) <= 2)
  done;
  (* Same leaves. *)
  Alcotest.(check (array int)) "same leaves" (Tree.leaves t) (Tree.leaves b);
  (* Original edge weights preserved on original nodes. *)
  for v = 1 to 5 do
    Test_support.check_close "weight kept" (Tree.edge_weight t v) (Tree.edge_weight b v)
  done

let test_total_edge_weight () =
  let t = sample () in
  Test_support.check_close "sum" 15. (Tree.total_edge_weight t);
  let lifted, _ = Tree.lift_internal_jobs t in
  Test_support.check_close "infinite edges excluded" 15. (Tree.total_edge_weight lifted)

let prop_of_graph_roundtrip =
  Test_support.qtest ~count:100 "of_graph preserves weights and adjacency"
    (Test_support.gen_tree ())
    (fun t ->
      let n = Tree.n_nodes t in
      (* Rebuild the graph and re-root at a different node. *)
      let b = Graph.Builder.create n in
      for v = 0 to n - 1 do
        if v <> Tree.root t then Graph.Builder.add_edge b v (Tree.parent t v) (Tree.edge_weight t v)
      done;
      let g = Graph.Builder.build b in
      let t2 = Tree.of_graph g ~root:(n - 1) in
      Tree.n_nodes t2 = n
      && Float.abs (Tree.total_edge_weight t2 -. Tree.total_edge_weight t) < 1e-9)

let prop_binarize_preserves_leafset =
  Test_support.qtest ~count:100 "binarize keeps leaf set and arity bound"
    (Test_support.gen_tree ())
    (fun t ->
      let b, _ = Tree.binarize t in
      Tree.leaves b = Tree.leaves t
      &&
      let ok = ref true in
      for v = 0 to Tree.n_nodes b - 1 do
        if Array.length (Tree.children b v) > 2 then ok := false
      done;
      !ok)

let prop_subtree_leaves_partition_at_children =
  Test_support.qtest ~count:100 "children's subtree leaves partition the parent's"
    (Test_support.gen_tree ())
    (fun t ->
      let ok = ref true in
      for v = 0 to Tree.n_nodes t - 1 do
        if not (Tree.is_leaf t v) then begin
          let union =
            Array.concat (Array.to_list (Array.map (Tree.subtree_leaves t) (Tree.children t v)))
          in
          let union = Array.to_list union in
          let direct = Array.to_list (Tree.subtree_leaves t v) in
          if List.sort compare union <> List.sort compare direct then ok := false
        end
      done;
      !ok)

let () =
  Alcotest.run "tree"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "post order" `Quick test_post_order;
          Alcotest.test_case "of_graph" `Quick test_of_graph;
          Alcotest.test_case "lift internal jobs" `Quick test_lift_internal_jobs;
          Alcotest.test_case "binarize" `Quick test_binarize;
          Alcotest.test_case "total edge weight" `Quick test_total_edge_weight;
        ] );
      ( "property",
        [
          prop_of_graph_roundtrip;
          prop_binarize_preserves_leafset;
          prop_subtree_leaves_partition_at_children;
        ] );
    ]
