module Graph = Hgp_graph.Graph
module H = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Stream_dag = Hgp_workloads.Stream_dag
module Presets = Hgp_workloads.Presets
module Prng = Hgp_util.Prng

let test_stream_generate () =
  let rng = Prng.create 1 in
  let w = Stream_dag.generate rng Stream_dag.default_params in
  Alcotest.(check bool) "has operators" true (Graph.n w.graph > 8);
  Alcotest.(check bool) "connected" true (Hgp_graph.Traversal.is_connected w.graph);
  Alcotest.(check int) "rates per operator" (Graph.n w.graph) (Array.length w.rates);
  Array.iter (fun r -> Alcotest.(check bool) "positive rate" true (r > 0.)) w.rates;
  Alcotest.(check bool) "has sources" true (Array.exists (( = ) "source") w.kinds);
  Alcotest.(check bool) "has sinks" true (Array.exists (( = ) "sink") w.kinds)

let test_stream_sources_count () =
  let rng = Prng.create 2 in
  let w =
    Stream_dag.generate rng { Stream_dag.default_params with n_sources = 5 }
  in
  let sources = Array.fold_left (fun a k -> if k = "source" then a + 1 else a) 0 w.kinds in
  Alcotest.(check int) "five sources" 5 sources

let test_stream_to_instance () =
  let rng = Prng.create 3 in
  let w = Stream_dag.generate rng Stream_dag.default_params in
  let hy = H.Presets.dual_socket in
  let inst = Stream_dag.to_instance w hy ~load_factor:0.7 in
  Alcotest.(check bool) "feasible" true (Instance.is_feasible inst);
  Alcotest.(check bool) "load near target" true
    (Instance.total_demand inst <= 0.7 *. 16. +. 1e-6)

let test_stream_params_validation () =
  let rng = Prng.create 4 in
  Alcotest.(check bool) "bad selectivity" true
    (try
       ignore
         (Stream_dag.generate rng { Stream_dag.default_params with selectivity = 1.5 });
       false
     with Invalid_argument _ -> true)

let test_presets_build () =
  let hy = H.Presets.dual_socket in
  List.iter
    (fun spec ->
      let rng = Prng.create 42 in
      let inst = spec.Presets.build rng hy in
      Alcotest.(check bool)
        (spec.Presets.name ^ " nonempty")
        true
        (Instance.n inst > 0);
      Alcotest.(check bool)
        (spec.Presets.name ^ " connected")
        true
        (Hgp_graph.Traversal.is_connected inst.graph);
      Alcotest.(check bool) (spec.Presets.name ^ " feasible") true (Instance.is_feasible inst))
    Presets.full_suite

let prop_stream_rates_conserve =
  Test_support.qtest ~count:40 "pipeline rates decay with selectivity"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = { Stream_dag.default_params with n_sources = 4; pipeline_depth = 3 } in
      let w = Stream_dag.generate rng p in
      (* Every non-source operator's rate is at most the sum of source rates. *)
      let source_total = ref 0. in
      Array.iteri
        (fun i k -> if k = "source" then source_total := !source_total +. w.rates.(i))
        w.kinds;
      Array.for_all (fun r -> r <= !source_total +. 1e-6) w.rates)

let prop_instance_demands_in_range =
  Test_support.qtest ~count:40 "stream instance demands are valid"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let w = Stream_dag.generate rng Stream_dag.default_params in
      let hy = H.Presets.cluster in
      let inst = Stream_dag.to_instance w hy ~load_factor:0.6 in
      Array.for_all (fun d -> d > 0. && d <= H.leaf_capacity hy +. 1e-9) inst.demands)

let () =
  Alcotest.run "workloads"
    [
      ( "unit",
        [
          Alcotest.test_case "stream generate" `Quick test_stream_generate;
          Alcotest.test_case "stream sources" `Quick test_stream_sources_count;
          Alcotest.test_case "stream to instance" `Quick test_stream_to_instance;
          Alcotest.test_case "stream params" `Quick test_stream_params_validation;
          Alcotest.test_case "presets build" `Quick test_presets_build;
        ] );
      ("property", [ prop_stream_rates_conserve; prop_instance_demands_in_range ]);
    ]
