module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Traversal = Hgp_graph.Traversal
module Prng = Hgp_util.Prng

let test_bfs_hops_path () =
  let g = Gen.path 5 in
  Alcotest.(check (array int)) "hops" [| 0; 1; 2; 3; 4 |] (Traversal.bfs_hops g 0)

let test_bfs_unreachable () =
  let g = Graph.of_edges 3 [ (0, 1, 1.) ] in
  let d = Traversal.bfs_hops g 0 in
  Alcotest.(check int) "unreachable" max_int d.(2)

let test_bfs_order () =
  let g = Gen.star 5 in
  let order = Traversal.bfs_order g 0 in
  Alcotest.(check int) "covers all" 5 (Array.length order);
  Alcotest.(check int) "starts at src" 0 order.(0)

let test_dijkstra_weighted () =
  (* 0 -1- 1 -1- 2, and a heavy shortcut 0 -5- 2. *)
  let g = Graph.of_edges 3 [ (0, 1, 1.); (1, 2, 1.); (0, 2, 5.) ] in
  let d = Traversal.dijkstra g 0 ~edge_length:(fun w -> w) in
  Test_support.check_close "via path" 2. d.(2)

let test_dijkstra_inverse_length () =
  (* With inverse-weight lengths the heavy edge becomes the short route. *)
  let g = Graph.of_edges 3 [ (0, 1, 1.); (1, 2, 1.); (0, 2, 5.) ] in
  let d = Traversal.dijkstra g 0 ~edge_length:(fun w -> 1. /. w) in
  Test_support.check_close "direct heavy edge" 0.2 d.(2)

let test_components () =
  let g = Graph.of_edges 5 [ (0, 1, 1.); (2, 3, 1.) ] in
  let comp, k = Traversal.components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check bool) "0 and 1 together" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "0 and 2 apart" true (comp.(0) <> comp.(2));
  Alcotest.(check bool) "4 alone" true (comp.(4) <> comp.(0) && comp.(4) <> comp.(2))

let test_ensure_connected () =
  let rng = Prng.create 4 in
  let g = Graph.of_edges 6 [ (0, 1, 1.); (2, 3, 1.); (4, 5, 1.) ] in
  let g' = Traversal.ensure_connected g rng in
  Alcotest.(check bool) "now connected" true (Traversal.is_connected g');
  Alcotest.(check int) "adds exactly k-1 edges" (Graph.m g + 2) (Graph.m g');
  (* Already-connected graphs are returned untouched. *)
  let p = Gen.path 4 in
  Alcotest.(check bool) "same graph" true (p == Traversal.ensure_connected p rng)

let prop_dijkstra_matches_bfs_on_unit =
  Test_support.qtest ~count:100 "dijkstra = bfs on unit lengths"
    (Test_support.gen_graph ())
    (fun g ->
      let hops = Traversal.bfs_hops g 0 in
      let dist = Traversal.dijkstra g 0 ~edge_length:(fun _ -> 1.) in
      let ok = ref true in
      Array.iteri
        (fun v h ->
          let d = dist.(v) in
          if h = max_int then begin
            if d <> infinity then ok := false
          end
          else if Float.abs (d -. float_of_int h) > 1e-9 then ok := false)
        hops;
      !ok)

let prop_dijkstra_triangle_inequality =
  Test_support.qtest ~count:100 "dijkstra satisfies edge relaxation"
    (Test_support.gen_graph ())
    (fun g ->
      let dist = Traversal.dijkstra g 0 ~edge_length:(fun w -> w) in
      Graph.fold_edges
        (fun acc u v w ->
          acc && dist.(v) <= dist.(u) +. w +. 1e-9 && dist.(u) <= dist.(v) +. w +. 1e-9)
        true g)

let prop_components_are_maximal =
  Test_support.qtest ~count:100 "edges never cross components"
    (Test_support.gen_graph ())
    (fun g ->
      let comp, _ = Traversal.components g in
      Graph.fold_edges (fun acc u v _ -> acc && comp.(u) = comp.(v)) true g)

let () =
  Alcotest.run "traversal"
    [
      ( "unit",
        [
          Alcotest.test_case "bfs hops path" `Quick test_bfs_hops_path;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "bfs order" `Quick test_bfs_order;
          Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
          Alcotest.test_case "dijkstra inverse length" `Quick test_dijkstra_inverse_length;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "ensure connected" `Quick test_ensure_connected;
        ] );
      ( "property",
        [
          prop_dijkstra_matches_bfs_on_unit;
          prop_dijkstra_triangle_inequality;
          prop_components_are_maximal;
        ] );
    ]
