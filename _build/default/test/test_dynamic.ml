module H = Hgp_hierarchy.Hierarchy
module Dynamic = Hgp_core.Dynamic
module Solver = Hgp_core.Solver
module Prng = Hgp_util.Prng

let hy () = H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 3.; 0. |] ~leaf_capacity:1.0

let cfg ?(resolve_period = 0) () =
  {
    Dynamic.slack = 1.25;
    resolve_period;
    solver_options = { Solver.default_options with ensemble_size = 2 };
  }

let test_add_and_cost () =
  let t = Dynamic.create (hy ()) (cfg ()) in
  let a = Dynamic.add_task t ~demand:0.5 ~edges:[] in
  let b = Dynamic.add_task t ~demand:0.5 ~edges:[ (a, 10.) ] in
  Alcotest.(check int) "two tasks" 2 (Dynamic.n_alive t);
  (* Greedy co-locates heavily-communicating tasks. *)
  Alcotest.(check int) "co-located" (Dynamic.leaf_of t a) (Dynamic.leaf_of t b);
  Test_support.check_close "zero cost when co-located" 0. (Dynamic.current_cost t)

let test_capacity_forces_split () =
  let t = Dynamic.create (hy ()) (cfg ()) in
  let a = Dynamic.add_task t ~demand:0.8 ~edges:[] in
  let b = Dynamic.add_task t ~demand:0.8 ~edges:[ (a, 5.) ] in
  Alcotest.(check bool) "split across leaves" true
    (Dynamic.leaf_of t a <> Dynamic.leaf_of t b);
  (* The greedy choice picks the cheapest separation: same socket. *)
  Test_support.check_close "same-socket cost" 15. (Dynamic.current_cost t);
  Alcotest.(check bool) "within slack" true (Dynamic.max_violation t <= 1.25 +. 1e-9)

let test_remove_frees_capacity () =
  let t = Dynamic.create (hy ()) (cfg ()) in
  let a = Dynamic.add_task t ~demand:0.9 ~edges:[] in
  let b = Dynamic.add_task t ~demand:0.9 ~edges:[ (a, 1.) ] in
  Dynamic.remove_task t a;
  Alcotest.(check int) "one left" 1 (Dynamic.n_alive t);
  Test_support.check_close "no live edges" 0. (Dynamic.current_cost t);
  (* New task can land next to b again. *)
  let c = Dynamic.add_task t ~demand:0.1 ~edges:[ (b, 3.) ] in
  Alcotest.(check int) "co-located with b" (Dynamic.leaf_of t b) (Dynamic.leaf_of t c)

let test_removed_id_rejected () =
  let t = Dynamic.create (hy ()) (cfg ()) in
  let a = Dynamic.add_task t ~demand:0.5 ~edges:[] in
  Dynamic.remove_task t a;
  Alcotest.(check bool) "edge to removed rejected" true
    (try
       ignore (Dynamic.add_task t ~demand:0.5 ~edges:[ (a, 1.) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "double remove rejected" true
    (try
       Dynamic.remove_task t a;
       false
     with Invalid_argument _ -> true)

let test_rebalance_improves () =
  let rng = Prng.create 5 in
  let t = Dynamic.create (hy ()) (cfg ()) in
  (* Adversarial arrival order: heavy pairs arrive interleaved so greedy
     placement fragments them. *)
  let ids = ref [] in
  for _ = 1 to 12 do
    let edges =
      match !ids with
      | [] -> []
      | existing ->
        List.filteri (fun i _ -> i < 3) (List.map (fun id -> (id, Prng.float rng 10.)) existing)
    in
    ids := Dynamic.add_task t ~demand:0.3 ~edges :: !ids
  done;
  let before = Dynamic.current_cost t in
  let moved = Dynamic.rebalance t in
  let after = Dynamic.current_cost t in
  Alcotest.(check bool) "rebalance not worse" true (after <= before +. 1e-6);
  Alcotest.(check bool) "migrations counted" true ((Dynamic.stats t).migrations = moved)

let test_auto_resolve () =
  let t = Dynamic.create (hy ()) (cfg ~resolve_period:5 ()) in
  for _ = 1 to 11 do
    ignore (Dynamic.add_task t ~demand:0.2 ~edges:[])
  done;
  Alcotest.(check int) "two auto resolves" 2 (Dynamic.stats t).auto_resolves;
  Alcotest.(check int) "11 events" 11 (Dynamic.stats t).events

let prop_loads_consistent =
  Test_support.qtest ~count:60 "loads and violation stay consistent under churn"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 5 40))
    (fun (seed, steps) ->
      let rng = Prng.create seed in
      let t = Dynamic.create (hy ()) (cfg ()) in
      let live = ref [] in
      for _ = 1 to steps do
        if !live <> [] && Prng.float rng 1.0 < 0.3 then begin
          let arr = Array.of_list !live in
          let victim = Prng.choose rng arr in
          Dynamic.remove_task t victim;
          live := List.filter (fun x -> x <> victim) !live
        end
        else begin
          let edges =
            List.filter_map
              (fun id -> if Prng.bool rng then Some (id, 1. +. Prng.float rng 5.) else None)
              !live
          in
          let id = Dynamic.add_task t ~demand:(0.05 +. Prng.float rng 0.4) ~edges in
          live := id :: !live
        end
      done;
      (* Violation may exceed slack only when total demand forces it. *)
      Dynamic.n_alive t = List.length !live
      && Dynamic.current_cost t >= 0.
      &&
      let v = Dynamic.max_violation t in
      v >= 0. && v < 50.)

let prop_cost_matches_independent_recomputation =
  Test_support.qtest ~count:30 "manager cost = independent Eq.1 recomputation"
    QCheck2.Gen.(pair (int_bound 100000) QCheck2.Gen.bool)
    (fun (seed, do_rebalance) ->
      let rng = Prng.create seed in
      let hierarchy = hy () in
      let t = Dynamic.create hierarchy (cfg ()) in
      let live = ref [] and all_edges = ref [] in
      for _ = 1 to 10 do
        let edges =
          List.filter_map
            (fun id -> if Prng.bool rng then Some (id, 1. +. Prng.float rng 4.) else None)
            !live
        in
        let id = Dynamic.add_task t ~demand:0.25 ~edges in
        List.iter (fun (u, w) -> all_edges := (id, u, w) :: !all_edges) edges;
        live := id :: !live
      done;
      if do_rebalance then ignore (Dynamic.rebalance t);
      let expected =
        List.fold_left
          (fun acc (a, b, w) ->
            acc
            +. (w *. H.cm hierarchy (H.lca_level hierarchy (Dynamic.leaf_of t a) (Dynamic.leaf_of t b))))
          0. !all_edges
      in
      Float.abs (Dynamic.current_cost t -. expected) < 1e-6 *. (1. +. expected))

let () =
  Alcotest.run "dynamic"
    [
      ( "unit",
        [
          Alcotest.test_case "add and cost" `Quick test_add_and_cost;
          Alcotest.test_case "capacity forces split" `Quick test_capacity_forces_split;
          Alcotest.test_case "remove frees capacity" `Quick test_remove_frees_capacity;
          Alcotest.test_case "removed id rejected" `Quick test_removed_id_rejected;
          Alcotest.test_case "rebalance improves" `Quick test_rebalance_improves;
          Alcotest.test_case "auto resolve" `Quick test_auto_resolve;
        ] );
      ("property", [ prop_loads_consistent; prop_cost_matches_independent_recomputation ]);
    ]
