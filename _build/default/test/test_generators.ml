module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Traversal = Hgp_graph.Traversal
module Prng = Hgp_util.Prng

let test_path () =
  let g = Gen.path 5 in
  Alcotest.(check int) "edges" 4 (Graph.m g);
  Alcotest.(check int) "end degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "mid degree" 2 (Graph.degree g 2);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_cycle () =
  let g = Gen.cycle 6 in
  Alcotest.(check int) "edges" 6 (Graph.m g);
  for v = 0 to 5 do
    Alcotest.(check int) "degree 2" 2 (Graph.degree g v)
  done

let test_complete () =
  let g = Gen.complete 6 in
  Alcotest.(check int) "edges" 15 (Graph.m g)

let test_star () =
  let g = Gen.star 7 in
  Alcotest.(check int) "edges" 6 (Graph.m g);
  Alcotest.(check int) "center degree" 6 (Graph.degree g 0)

let test_grid () =
  let g = Gen.grid2d ~rows:3 ~cols:4 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  Alcotest.(check int) "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_torus () =
  let g = Gen.torus2d ~rows:3 ~cols:3 in
  Alcotest.(check int) "n" 9 (Graph.n g);
  Alcotest.(check int) "m" 18 (Graph.m g);
  for v = 0 to 8 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree g v)
  done

let test_binary_tree () =
  let g = Gen.binary_tree 3 in
  Alcotest.(check int) "n" 15 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_caterpillar () =
  let g = Gen.caterpillar ~spine:4 ~legs:2 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  Alcotest.(check int) "m" 11 (Graph.m g);
  Alcotest.(check bool) "tree" true (Graph.m g = Graph.n g - 1 && Traversal.is_connected g)

let prop_gnp_connected =
  Test_support.qtest ~count:50 "gnp_connected is connected"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 30))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      Traversal.is_connected (Gen.gnp_connected rng n 0.1))

let prop_random_tree_is_tree =
  Test_support.qtest ~count:100 "random_tree is a tree"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 1 40))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.random_tree rng n in
      Graph.m g = n - 1 && Traversal.is_connected g)

let prop_random_regular_degree =
  Test_support.qtest ~count:50 "random_regular degrees"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 10))
    (fun (seed, half) ->
      let n = 2 * half in
      let degree = 3 in
      if n <= degree then true
      else begin
        let rng = Prng.create seed in
        let g = Gen.random_regular rng ~n ~degree in
        (* Simple graph by construction; degrees at most the target and
           usually equal. *)
        let ok = ref true in
        for v = 0 to n - 1 do
          if Graph.degree g v > degree then ok := false
        done;
        !ok
      end)

let prop_chung_lu_degree_scale =
  Test_support.qtest ~count:20 "chung_lu average degree in a sane band"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 200 in
      let g = Gen.chung_lu rng ~n ~exponent:2.5 ~avg_degree:4.0 in
      let avg = 2. *. float_of_int (Graph.m g) /. float_of_int n in
      avg > 1.0 && avg < 10.0)

let prop_randomize_weights_bounds =
  Test_support.qtest ~count:50 "randomized weights stay in range"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let g = Gen.randomize_weights rng (Gen.grid2d ~rows:4 ~cols:4) ~lo:2.0 ~hi:3.0 in
      Graph.fold_edges (fun acc _ _ w -> acc && w >= 2.0 && w < 3.0) true g)

let test_hypercube () =
  let g = Gen.hypercube 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check int) "m" 32 (Graph.m g);
  for v = 0 to 15 do
    Alcotest.(check int) "regular" 4 (Graph.degree g v)
  done;
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  let g0 = Gen.hypercube 0 in
  Alcotest.(check int) "dim 0" 1 (Graph.n g0)

let test_barbell () =
  let g = Gen.barbell ~clique:4 ~bridge:2 in
  Alcotest.(check int) "n" 10 (Graph.n g);
  (* 2 * C(4,2) + 3 bridge edges *)
  Alcotest.(check int) "m" 15 (Graph.m g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* The global min cut is a single bridge edge. *)
  let value, _ = Hgp_flow.Mincut.stoer_wagner g in
  Test_support.check_close "bottleneck" 1. value;
  let g0 = Gen.barbell ~clique:3 ~bridge:0 in
  Alcotest.(check int) "direct bridge" 7 (Graph.m g0)

let prop_watts_strogatz =
  Test_support.qtest ~count:50 "watts_strogatz: simple, right size, connected-ish"
    QCheck2.Gen.(triple (int_bound 100000) (int_range 6 30) (float_range 0. 1.))
    (fun (seed, n, beta) ->
      let rng = Prng.create seed in
      let g = Gen.watts_strogatz rng ~n ~k:4 ~beta in
      Graph.n g = n
      && Graph.m g <= 2 * n
      (* rewiring can only drop duplicate edges *)
      && Graph.m g >= n)

let test_errors () =
  Alcotest.check_raises "cycle too small" (Invalid_argument "Generators.cycle: n must be >= 3")
    (fun () -> ignore (Gen.cycle 2));
  Alcotest.check_raises "torus too small" (Invalid_argument "Generators.torus2d: dims must be >= 3")
    (fun () -> ignore (Gen.torus2d ~rows:2 ~cols:3));
  Alcotest.check_raises "chung_lu exponent"
    (Invalid_argument "Generators.chung_lu: exponent must exceed 2") (fun () ->
      ignore (Gen.chung_lu (Prng.create 0) ~n:5 ~exponent:1.5 ~avg_degree:2.))

let () =
  Alcotest.run "generators"
    [
      ( "unit",
        [
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "cycle" `Quick test_cycle;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "barbell" `Quick test_barbell;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "property",
        [
          prop_gnp_connected;
          prop_random_tree_is_tree;
          prop_random_regular_degree;
          prop_chung_lu_degree_scale;
          prop_randomize_weights_bounds;
          prop_watts_strogatz;
        ] );
    ]
