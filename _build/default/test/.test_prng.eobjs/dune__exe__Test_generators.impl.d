test/test_generators.ml: Alcotest Hgp_flow Hgp_graph Hgp_util QCheck2 Test_support
