test/test_graph.ml: Alcotest Array Float Hgp_graph List Test_support
