test/test_treecut.ml: Alcotest Array Float Fun Hgp_tree Hgp_util List QCheck2 Test_support
