test/test_feasible.mli:
