test/test_clustering.ml: Alcotest Array Hgp_graph Hgp_racke Hgp_util List QCheck2 Test_support
