test/test_signature.mli:
