test/test_verify.ml: Alcotest Array Float Format Hgp_core Hgp_graph Hgp_hierarchy Hgp_util QCheck2 String Test_support
