test/test_decomposition.mli:
