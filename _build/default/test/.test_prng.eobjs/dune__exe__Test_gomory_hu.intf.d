test/test_gomory_hu.mli:
