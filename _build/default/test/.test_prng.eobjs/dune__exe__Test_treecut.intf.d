test/test_treecut.mli:
