test/test_sim.ml: Alcotest Float Hgp_baselines Hgp_core Hgp_hierarchy Hgp_sim Hgp_util Hgp_workloads List QCheck2 Test_support
