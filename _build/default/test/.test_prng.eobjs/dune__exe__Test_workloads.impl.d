test/test_workloads.ml: Alcotest Array Hgp_core Hgp_graph Hgp_hierarchy Hgp_util Hgp_workloads List QCheck2 Test_support
