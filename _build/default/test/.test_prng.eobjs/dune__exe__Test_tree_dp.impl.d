test/test_tree_dp.ml: Alcotest Array Float Hgp_core Hgp_graph Hgp_hierarchy Hgp_tree Hgp_util QCheck2 Test_support
