test/test_cost.ml: Alcotest Array Float Hgp_core Hgp_graph Hgp_hierarchy Hgp_util QCheck2 Test_support
