test/test_pqueue.ml: Alcotest Array Hgp_util List QCheck2 Test_support
