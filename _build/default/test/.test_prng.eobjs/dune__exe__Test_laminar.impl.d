test/test_laminar.ml: Alcotest Array Hgp_tree
