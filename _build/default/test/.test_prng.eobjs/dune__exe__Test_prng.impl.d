test/test_prng.ml: Alcotest Array Hashtbl Hgp_util List QCheck2 Test_support
