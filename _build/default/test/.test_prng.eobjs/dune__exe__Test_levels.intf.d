test/test_levels.mli:
