test/test_gomory_hu.ml: Alcotest Array Float Hgp_flow Hgp_graph Hgp_util List Test_support
