test/test_integration.ml: Alcotest Array Hgp_baselines Hgp_core Hgp_graph Hgp_hierarchy Hgp_sim Hgp_util Hgp_workloads List Printf Test_support
