test/test_io.ml: Alcotest Filename Float Fun Hgp_graph Sys Test_support
