test/test_decomposition.ml: Alcotest Array Float Hgp_graph Hgp_racke Hgp_tree Hgp_util List QCheck2 Test_support
