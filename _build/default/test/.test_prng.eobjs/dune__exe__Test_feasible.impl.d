test/test_feasible.ml: Alcotest Array Hgp_core Hgp_graph Hgp_hierarchy Hgp_tree Hgp_util List QCheck2 Test_support
