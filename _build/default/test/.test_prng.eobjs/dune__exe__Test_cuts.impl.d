test/test_cuts.ml: Alcotest Array Float Hgp_graph List Test_support
