test/test_traversal.ml: Alcotest Array Float Hgp_graph Hgp_util Test_support
