test/test_flow.ml: Alcotest Array Float Hgp_flow Hgp_graph Test_support
