test/test_collections.ml: Alcotest Array Hgp_core Hgp_graph Hgp_tree Hgp_util QCheck2 Test_support
