test/test_hierarchy.ml: Alcotest Hgp_hierarchy List QCheck2 String Test_support
