test/test_instance.ml: Alcotest Array Filename Fun Hgp_core Hgp_graph Hgp_hierarchy Hgp_util List QCheck2 Sys Test_support
