test/test_signature.ml: Alcotest Hgp_core QCheck2 Test_support
