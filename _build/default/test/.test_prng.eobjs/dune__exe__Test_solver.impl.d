test/test_solver.ml: Alcotest Array Hgp_baselines Hgp_core Hgp_graph Hgp_hierarchy Hgp_racke Hgp_tree Hgp_util List QCheck2 Test_support
