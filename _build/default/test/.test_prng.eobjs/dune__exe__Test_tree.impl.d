test/test_tree.ml: Alcotest Array Float Hgp_graph Hgp_tree List Test_support
