test/test_levels.ml: Alcotest Array Float Hgp_core Hgp_graph Hgp_tree Hgp_util QCheck2 Test_support
