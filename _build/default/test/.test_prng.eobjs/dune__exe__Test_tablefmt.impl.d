test/test_tablefmt.ml: Alcotest Hgp_util List QCheck2 String Test_support
