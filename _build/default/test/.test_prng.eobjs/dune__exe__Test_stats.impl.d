test/test_stats.ml: Alcotest Float Hgp_util QCheck2 Test_support
