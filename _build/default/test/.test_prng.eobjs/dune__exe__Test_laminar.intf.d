test/test_laminar.mli:
