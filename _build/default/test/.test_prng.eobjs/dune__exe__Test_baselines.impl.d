test/test_baselines.ml: Alcotest Array Hgp_baselines Hgp_core Hgp_graph Hgp_hierarchy Hgp_util List QCheck2 Test_support
