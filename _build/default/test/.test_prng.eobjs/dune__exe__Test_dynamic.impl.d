test/test_dynamic.ml: Alcotest Array Float Hgp_core Hgp_hierarchy Hgp_util List QCheck2 Test_support
