test/test_tree_dp.mli:
