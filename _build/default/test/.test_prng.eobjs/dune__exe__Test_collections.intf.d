test/test_collections.mli:
