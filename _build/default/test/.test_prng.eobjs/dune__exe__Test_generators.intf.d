test/test_generators.mli:
