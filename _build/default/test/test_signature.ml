module Signature = Hgp_core.Signature

let space () = Signature.create ~cp_units:[| 12; 6; 3 |] ()

let test_encode_decode () =
  let s = space () in
  let sg = [| 5; 2 |] in
  Alcotest.(check (array int)) "roundtrip" sg (Signature.decode s (Signature.encode s sg))

let test_zero_and_leaf () =
  let s = space () in
  Alcotest.(check (array int)) "zero" [| 0; 0 |] (Signature.decode s (Signature.zero s));
  (match Signature.of_leaf s 2 with
  | Some key -> Alcotest.(check (array int)) "leaf sig" [| 2; 2 |] (Signature.decode s key)
  | None -> Alcotest.fail "leaf should fit");
  Alcotest.(check bool) "oversized leaf" true (Signature.of_leaf s 4 = None)

let test_space_size () =
  let s = space () in
  Alcotest.(check int) "dense size" (7 * 4) (Signature.space_size s)

let test_count_valid () =
  let s = space () in
  (* Monotone pairs (a, b) with a in 0..6, b in 0..3, a >= b:
     b=0: 7, b=1: 6, b=2: 5, b=3: 4 -> 22. *)
  Alcotest.(check int) "monotone count" 22 (Signature.count_valid s);
  let s1 = Signature.create ~cp_units:[| 5; 5 |] () in
  Alcotest.(check int) "single level" 6 (Signature.count_valid s1);
  let s0 = Signature.create ~cp_units:[| 5 |] () in
  Alcotest.(check int) "height zero" 1 (Signature.count_valid s0)

let test_validation () =
  Alcotest.(check bool) "increasing capacities rejected" true
    (try
       ignore (Signature.create ~cp_units:[| 2; 5 |] ());
       false
     with Invalid_argument _ -> true);
  let s = space () in
  Alcotest.(check bool) "out of range encode" true
    (try
       ignore (Signature.encode s [| 7; 0 |]);
       false
     with Invalid_argument _ -> true)

let prop_roundtrip =
  Test_support.qtest ~count:300 "encode/decode roundtrip over valid values"
    QCheck2.Gen.(triple (int_range 0 12) (int_range 0 6) (int_range 0 3))
    (fun (_, a, b) ->
      let s = space () in
      let sg = [| a; b |] in
      Signature.decode s (Signature.encode s sg) = sg)

let prop_bucket_idempotent =
  Test_support.qtest ~count:300 "geometric bucket is idempotent and <= value"
    QCheck2.Gen.(pair (float_range 0.05 1.0) (int_range 0 100000))
    (fun (delta, v) ->
      let s = Signature.create ~cp_units:[| 1000000; 1000000 |] ~bucketing:delta () in
      let b = s.Signature.bucket v in
      b <= v && s.Signature.bucket b = b && (v <= 4 || b >= 1))

let prop_bucket_close =
  Test_support.qtest ~count:300 "bucket within a (1+delta) factor"
    QCheck2.Gen.(pair (float_range 0.05 1.0) (int_range 5 100000))
    (fun (delta, v) ->
      let s = Signature.create ~cp_units:[| 1000000 |] ~bucketing:delta () in
      let b = s.Signature.bucket v in
      float_of_int v <= (1. +. delta) *. float_of_int b +. 1.)

let prop_keys_distinct =
  Test_support.qtest ~count:200 "distinct signatures get distinct keys"
    QCheck2.Gen.(pair (pair (int_range 0 6) (int_range 0 3)) (pair (int_range 0 6) (int_range 0 3)))
    (fun ((a1, b1), (a2, b2)) ->
      let s = space () in
      let k1 = Signature.encode s [| a1; b1 |] and k2 = Signature.encode s [| a2; b2 |] in
      (k1 = k2) = (a1 = a2 && b1 = b2))

let () =
  Alcotest.run "signature"
    [
      ( "unit",
        [
          Alcotest.test_case "encode decode" `Quick test_encode_decode;
          Alcotest.test_case "zero and leaf" `Quick test_zero_and_leaf;
          Alcotest.test_case "space size" `Quick test_space_size;
          Alcotest.test_case "count valid" `Quick test_count_valid;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "property",
        [ prop_roundtrip; prop_bucket_idempotent; prop_bucket_close; prop_keys_distinct ] );
    ]
