module Prng = Hgp_util.Prng

let test_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 4)

let test_copy_independent () =
  let a = Prng.create 9 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_independent () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  let xs = Array.init 32 (fun _ -> Prng.bits64 a) in
  let ys = Array.init 32 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_int_range_errors () =
  let rng = Prng.create 0 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_shuffle_is_permutation () =
  let rng = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_permutation_uniform_smoke () =
  (* All 6 permutations of 3 elements appear over many draws. *)
  let rng = Prng.create 17 in
  let seen = Hashtbl.create 6 in
  for _ = 1 to 500 do
    Hashtbl.replace seen (Array.to_list (Prng.permutation rng 3)) ()
  done;
  Alcotest.(check int) "all 6 permutations" 6 (Hashtbl.length seen)

let test_sample_without_replacement () =
  let rng = Prng.create 23 in
  for _ = 1 to 50 do
    let k = Prng.int rng 10 in
    let s = Prng.sample_without_replacement rng ~n:10 ~k in
    Alcotest.(check int) "size" k (Array.length s);
    let distinct = List.sort_uniq compare (Array.to_list s) in
    Alcotest.(check int) "distinct" k (List.length distinct);
    Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 10)) s
  done

let prop_int_in_bounds =
  Test_support.qtest "int in [0,bound)" QCheck2.Gen.(pair (int_bound 100000) (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_float_in_bounds =
  Test_support.qtest "float in [0,b)" QCheck2.Gen.(pair (int_bound 100000) (float_range 0.001 1e6))
    (fun (seed, b) ->
      let rng = Prng.create seed in
      let v = Prng.float rng b in
      v >= 0. && v < b)

let prop_int_incl =
  Test_support.qtest "int_incl in [lo,hi]"
    QCheck2.Gen.(triple (int_bound 100000) (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Prng.create seed in
      let v = Prng.int_incl rng lo (lo + span) in
      v >= lo && v <= lo + span)

let prop_exponential_positive =
  Test_support.qtest "exponential >= 0"
    QCheck2.Gen.(pair (int_bound 100000) (float_range 0.01 100.))
    (fun (seed, rate) ->
      let rng = Prng.create seed in
      Prng.exponential rng ~rate >= 0.)

let prop_pareto_min =
  Test_support.qtest "pareto >= x_min"
    QCheck2.Gen.(triple (int_bound 100000) (float_range 0.5 5.) (float_range 0.1 10.))
    (fun (seed, alpha, x_min) ->
      let rng = Prng.create seed in
      Prng.pareto rng ~alpha ~x_min >= x_min)

let () =
  Alcotest.run "prng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int errors" `Quick test_int_range_errors;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "permutation coverage" `Quick test_permutation_uniform_smoke;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        ] );
      ( "property",
        [
          prop_int_in_bounds;
          prop_float_in_bounds;
          prop_int_incl;
          prop_exponential_positive;
          prop_pareto_min;
        ] );
    ]
