module Clustering = Hgp_racke.Clustering
module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module Prng = Hgp_util.Prng

let test_partition_covers () =
  let rng = Prng.create 1 in
  let g = Gen.grid2d ~rows:4 ~cols:4 in
  let vertices = Array.init 16 (fun i -> i) in
  let parts =
    Clustering.partition rng g ~vertices ~radius:2.0 ~edge_length:Clustering.unit_length
  in
  let all = List.concat_map Array.to_list parts in
  Alcotest.(check (list int)) "exact cover" (List.init 16 (fun i -> i))
    (List.sort compare all)

let test_partition_subset () =
  let rng = Prng.create 2 in
  let g = Gen.grid2d ~rows:4 ~cols:4 in
  let vertices = [| 0; 1; 2; 5; 6 |] in
  let parts =
    Clustering.partition rng g ~vertices ~radius:1.5 ~edge_length:Clustering.unit_length
  in
  let all = List.concat_map Array.to_list parts in
  Alcotest.(check (list int)) "covers the subset" [ 0; 1; 2; 5; 6 ] (List.sort compare all)

let test_edge_lengths () =
  Test_support.check_close "inverse" 0.25 (Clustering.inverse_weight_length 4.);
  Alcotest.(check bool) "zero weight infinite" true
    (Clustering.inverse_weight_length 0. = infinity);
  Test_support.check_close "unit" 1. (Clustering.unit_length 42.)

let test_hierarchical_covers () =
  let rng = Prng.create 3 in
  let g = Gen.grid2d ~rows:3 ~cols:5 in
  let c = Clustering.hierarchical rng g ~edge_length:Clustering.unit_length in
  let vs = Clustering.cluster_vertices c in
  let sorted = Array.copy vs in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "every vertex once" (Array.init 15 (fun i -> i)) sorted;
  Alcotest.(check bool) "nontrivial depth" true (Clustering.depth c >= 1)

let test_singleton_graph () =
  let rng = Prng.create 4 in
  let g = Graph.of_edges 1 [] in
  let c = Clustering.hierarchical rng g ~edge_length:Clustering.unit_length in
  Alcotest.(check (array int)) "single vertex" [| 0 |] (Clustering.cluster_vertices c)

let prop_clusters_connected =
  Test_support.qtest ~count:60 "every cluster induces a connected subgraph"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 4 20))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.25 in
      let parts =
        Clustering.partition rng g
          ~vertices:(Array.init n (fun i -> i))
          ~radius:2.0 ~edge_length:Clustering.unit_length
      in
      List.for_all
        (fun p ->
          let sub, _ = Graph.induced g p in
          Hgp_graph.Traversal.is_connected sub)
        parts)

let prop_bfs_bisection_nested_and_balanced =
  Test_support.qtest ~count:60 "bfs_bisection: proper nesting, near-equal splits"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 24))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.3 in
      let c = Clustering.bfs_bisection rng g ~edge_length:Clustering.unit_length in
      let vs = Clustering.cluster_vertices c in
      let sorted = Array.copy vs in
      Array.sort compare sorted;
      let rec balanced = function
        | Clustering.Leaf _ -> true
        | Clustering.Node [ a; b ] ->
          let na = Array.length (Clustering.cluster_vertices a) in
          let nb = Array.length (Clustering.cluster_vertices b) in
          abs (na - nb) <= 1 && balanced a && balanced b
        | Clustering.Node [ a ] -> balanced a
        | Clustering.Node _ -> false
      in
      sorted = Array.init n (fun i -> i) && balanced c)

let prop_hierarchical_nested =
  Test_support.qtest ~count:60 "hierarchical clustering is a proper nesting"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 2 20))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.3 in
      let c = Clustering.hierarchical rng g ~edge_length:Clustering.inverse_weight_length in
      (* Check recursively: children's vertex sets partition the parent's. *)
      let rec check = function
        | Clustering.Leaf _ -> true
        | Clustering.Node kids ->
          let parent = Clustering.cluster_vertices (Clustering.Node kids) in
          let union = Array.concat (List.map Clustering.cluster_vertices kids) in
          let s a =
            let c = Array.copy a in
            Array.sort compare c;
            Array.to_list c
          in
          s parent = s union && List.for_all check kids
      in
      check c)

let () =
  Alcotest.run "clustering"
    [
      ( "unit",
        [
          Alcotest.test_case "partition covers" `Quick test_partition_covers;
          Alcotest.test_case "partition subset" `Quick test_partition_subset;
          Alcotest.test_case "edge lengths" `Quick test_edge_lengths;
          Alcotest.test_case "hierarchical covers" `Quick test_hierarchical_covers;
          Alcotest.test_case "singleton graph" `Quick test_singleton_graph;
        ] );
      ("property", [ prop_clusters_connected; prop_bfs_bisection_nested_and_balanced; prop_hierarchical_nested ]);
    ]
