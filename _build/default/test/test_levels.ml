module Tree = Hgp_tree.Tree
module Levels = Hgp_core.Levels
module Laminar = Hgp_tree.Laminar
module Tree_dp = Hgp_core.Tree_dp
module Gen = Hgp_graph.Generators
module Prng = Hgp_util.Prng

let sample () =
  (*        0
          / | \
         1  2  3      kappa: 1->2, 2->0, 3->1   (h = 2)
        / \
       4   5          kappa: 4->2, 5->1                     *)
  let t =
    Tree.of_parents ~root:0 ~parents:[| -1; 0; 0; 0; 1; 1 |]
      ~weights:[| 0.; 1.; 1.; 1.; 1.; 1. |]
  in
  let kappa = [| 0; 2; 0; 1; 2; 1 |] in
  (t, kappa)

let test_components_level0 () =
  let t, kappa = sample () in
  let comp, k = Levels.components t ~kappa ~level:0 in
  Alcotest.(check int) "single component" 1 k;
  Alcotest.(check bool) "all zero" true (Array.for_all (( = ) 0) comp)

let test_components_level1 () =
  let t, kappa = sample () in
  let _, k = Levels.components t ~kappa ~level:1 in
  (* Edges with kappa >= 1: 1, 3, 4, 5.  Components: {0,1,3,4,5}, {2}. *)
  Alcotest.(check int) "two components" 2 k;
  let comp, _ = Levels.components t ~kappa ~level:1 in
  Alcotest.(check bool) "2 isolated" true (comp.(2) <> comp.(0));
  Alcotest.(check bool) "3 with root" true (comp.(3) = comp.(0))

let test_components_level2 () =
  let t, kappa = sample () in
  let comp, k = Levels.components t ~kappa ~level:2 in
  (* Edges with kappa >= 2: 1 and 4.  Components: {0,1,4}, {2}, {3}, {5}. *)
  Alcotest.(check int) "four components" 4 k;
  Alcotest.(check bool) "4 with 0 via 1" true (comp.(4) = comp.(0));
  Alcotest.(check bool) "5 separate" true (comp.(5) <> comp.(0))

let test_laminar_family_valid () =
  let t, kappa = sample () in
  let fam = Levels.laminar_family t ~kappa ~h:2 in
  let universe = Array.copy (Tree.leaves t) in
  Array.sort compare universe;
  Alcotest.(check bool) "Definition 4 structure" true (Laminar.is_laminar fam ~universe)

let gen_labeled_tree =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* n = int_range 2 12 in
  let* h = int_range 1 3 in
  let rng = Prng.create seed in
  let g = Gen.random_tree rng n in
  let t = Tree.of_graph g ~root:0 in
  let kappa = Array.init n (fun _ -> Prng.int rng (h + 1)) in
  kappa.(0) <- 0;
  return (t, kappa, h)

let prop_family_is_laminar =
  Test_support.qtest ~count:150 "any kappa labeling induces a laminar family"
    gen_labeled_tree
    (fun (t, kappa, h) ->
      let fam = Levels.laminar_family t ~kappa ~h in
      let universe = Array.copy (Tree.leaves t) in
      Array.sort compare universe;
      Laminar.is_laminar fam ~universe)

let prop_component_tree_consistent =
  Test_support.qtest ~count:150 "component parents nest correctly"
    gen_labeled_tree
    (fun (t, kappa, h) ->
      let parents = Levels.component_tree t ~kappa ~h in
      let ok = ref true in
      for j = 0 to h - 1 do
        let comp_j, nj = Levels.components t ~kappa ~level:j in
        let comp_j1, _ = Levels.components t ~kappa ~level:(j + 1) in
        Array.iteri
          (fun v c1 ->
            let p = parents.(j).(c1) in
            if p < 0 || p >= nj || p <> comp_j.(v) then ok := false)
          comp_j1
      done;
      !ok)

let prop_check_kappa_matches_family =
  Test_support.qtest ~count:100 "Tree_dp.check_kappa agrees with family demands"
    gen_labeled_tree
    (fun (t, kappa, h) ->
      let n = Tree.n_nodes t in
      let demand_units = Array.init n (fun v -> if Tree.is_leaf t v then 1 else 0) in
      let cp_units = Array.init (h + 1) (fun j -> (2 * (h + 1 - j)) + 1) in
      let viol = Tree_dp.check_kappa t ~demand_units ~kappa ~cp_units in
      let fam = Levels.laminar_family t ~kappa ~h in
      let expected = ref 0. in
      for j = 1 to h do
        Array.iter
          (fun set ->
            let d = float_of_int (Array.length set) in
            expected := Float.max !expected (d /. float_of_int cp_units.(j)))
          fam.(j)
      done;
      Float.abs (viol -. !expected) < 1e-9)

let () =
  Alcotest.run "levels"
    [
      ( "unit",
        [
          Alcotest.test_case "level 0" `Quick test_components_level0;
          Alcotest.test_case "level 1" `Quick test_components_level1;
          Alcotest.test_case "level 2" `Quick test_components_level2;
          Alcotest.test_case "laminar family" `Quick test_laminar_family_valid;
        ] );
      ( "property",
        [ prop_family_is_laminar; prop_component_tree_consistent; prop_check_kappa_matches_family ] );
    ]
