module Laminar = Hgp_tree.Laminar

let universe = [| 0; 1; 2; 3; 4; 5 |]

let test_is_partition () =
  Alcotest.(check bool) "valid" true
    (Laminar.is_partition [| [| 0; 1 |]; [| 2; 3; 4 |]; [| 5 |] |] ~universe);
  Alcotest.(check bool) "missing element" false
    (Laminar.is_partition [| [| 0; 1 |]; [| 2; 3 |] |] ~universe);
  Alcotest.(check bool) "duplicate element" false
    (Laminar.is_partition [| [| 0; 1 |]; [| 1; 2; 3; 4; 5 |] |] ~universe)

let test_refines () =
  Alcotest.(check bool) "finer" true
    (Laminar.refines [| [| 0 |]; [| 1 |]; [| 2; 3 |] |] [| [| 0; 1 |]; [| 2; 3 |] |]);
  Alcotest.(check bool) "crossing" false
    (Laminar.refines [| [| 0; 2 |] |] [| [| 0; 1 |]; [| 2; 3 |] |]);
  Alcotest.(check bool) "unknown element" false
    (Laminar.refines [| [| 9 |] |] [| [| 0; 1 |] |])

let family_ok : Laminar.family =
  [|
    [| universe |];
    [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |];
    [| [| 0 |]; [| 1; 2 |]; [| 3 |]; [| 4; 5 |] |];
  |]

let test_is_laminar () =
  Alcotest.(check bool) "valid family" true (Laminar.is_laminar family_ok ~universe);
  let bad : Laminar.family =
    [| [| universe |]; [| [| 0; 3 |]; [| 1; 2; 4; 5 |] |]; [| [| 0; 1 |]; [| 2; 3; 4; 5 |] |] |]
  in
  Alcotest.(check bool) "crossing family" false (Laminar.is_laminar bad ~universe);
  let no_root : Laminar.family = [| [| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] |] in
  Alcotest.(check bool) "level 0 must be the universe" false
    (Laminar.is_laminar no_root ~universe)

let test_refinement_counts () =
  let counts = Laminar.refinement_counts family_ok in
  Alcotest.(check (list int)) "level 0 splits" [ 2 ] counts.(0);
  Alcotest.(check (list int)) "level 1 splits" [ 2; 2 ] counts.(1)

let test_demands () =
  let d = Laminar.demands family_ok ~demand:(fun x -> float_of_int (x + 1)) in
  Alcotest.(check (list (float 1e-9))) "level 1 demands" [ 6.; 15. ] d.(1)

let () =
  Alcotest.run "laminar"
    [
      ( "unit",
        [
          Alcotest.test_case "is_partition" `Quick test_is_partition;
          Alcotest.test_case "refines" `Quick test_refines;
          Alcotest.test_case "is_laminar" `Quick test_is_laminar;
          Alcotest.test_case "refinement counts" `Quick test_refinement_counts;
          Alcotest.test_case "demands" `Quick test_demands;
        ] );
    ]
