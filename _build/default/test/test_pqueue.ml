module Pqueue = Hgp_util.Pqueue

let test_basic_order () =
  let h = Pqueue.create () in
  Pqueue.push h ~prio:3. "c";
  Pqueue.push h ~prio:1. "a";
  Pqueue.push h ~prio:2. "b";
  Alcotest.(check (pair (float 0.) string)) "peek" (1., "a") (Pqueue.peek_min h);
  Alcotest.(check (pair (float 0.) string)) "pop a" (1., "a") (Pqueue.pop_min h);
  Alcotest.(check (pair (float 0.) string)) "pop b" (2., "b") (Pqueue.pop_min h);
  Alcotest.(check (pair (float 0.) string)) "pop c" (3., "c") (Pqueue.pop_min h);
  Alcotest.(check bool) "empty" true (Pqueue.is_empty h)

let test_empty_raises () =
  let h : int Pqueue.t = Pqueue.create () in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Pqueue.pop_min h));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Pqueue.peek_min h))

let prop_heapsort =
  Test_support.qtest ~count:200 "pops in sorted order"
    QCheck2.Gen.(list_size (int_range 1 200) (float_range (-1e6) 1e6))
    (fun xs ->
      let h = Pqueue.create () in
      List.iteri (fun i x -> Pqueue.push h ~prio:x i) xs;
      let out = ref [] in
      while not (Pqueue.is_empty h) do
        out := fst (Pqueue.pop_min h) :: !out
      done;
      List.rev !out = List.sort compare xs)

let test_indexed_basic () =
  let h = Pqueue.Indexed.create 5 in
  Pqueue.Indexed.insert h 0 10.;
  Pqueue.Indexed.insert h 1 5.;
  Pqueue.Indexed.insert h 2 7.;
  Alcotest.(check bool) "mem" true (Pqueue.Indexed.mem h 1);
  Alcotest.(check (float 0.)) "priority" 7. (Pqueue.Indexed.priority h 2);
  Pqueue.Indexed.decrease h 0 1.;
  let k, p = Pqueue.Indexed.pop_min h in
  Alcotest.(check int) "min key after decrease" 0 k;
  Alcotest.(check (float 0.)) "min prio" 1. p;
  Alcotest.(check bool) "popped absent" false (Pqueue.Indexed.mem h 0)

let test_indexed_decrease_noop () =
  let h = Pqueue.Indexed.create 2 in
  Pqueue.Indexed.insert h 0 1.;
  Pqueue.Indexed.decrease h 0 5.;
  Alcotest.(check (float 0.)) "not raised" 1. (Pqueue.Indexed.priority h 0)

let test_indexed_errors () =
  let h = Pqueue.Indexed.create 2 in
  Pqueue.Indexed.insert h 0 1.;
  Alcotest.check_raises "double insert"
    (Invalid_argument "Pqueue.Indexed.insert: key already present") (fun () ->
      Pqueue.Indexed.insert h 0 2.);
  Alcotest.check_raises "decrease absent"
    (Invalid_argument "Pqueue.Indexed.decrease: key absent") (fun () ->
      Pqueue.Indexed.decrease h 1 0.)

let prop_indexed_dijkstra_style =
  Test_support.qtest ~count:200 "indexed heap with decreases pops sorted final priorities"
    QCheck2.Gen.(
      pair (int_range 1 50) (list_size (int_bound 100) (pair (int_bound 49) (float_range 0. 100.))))
    (fun (n, updates) ->
      let h = Pqueue.Indexed.create n in
      let final = Array.make n infinity in
      List.iter
        (fun (k, p) ->
          let k = k mod n in
          Pqueue.Indexed.insert_or_decrease h k p;
          if p < final.(k) then final.(k) <- p)
        updates;
      let last = ref neg_infinity in
      let ok = ref true in
      while not (Pqueue.Indexed.is_empty h) do
        let k, p = Pqueue.Indexed.pop_min h in
        if p < !last then ok := false;
        if p <> final.(k) then ok := false;
        last := p
      done;
      !ok)

let () =
  Alcotest.run "pqueue"
    [
      ( "unit",
        [
          Alcotest.test_case "basic order" `Quick test_basic_order;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "indexed basic" `Quick test_indexed_basic;
          Alcotest.test_case "indexed decrease noop" `Quick test_indexed_decrease_noop;
          Alcotest.test_case "indexed errors" `Quick test_indexed_errors;
        ] );
      ("property", [ prop_heapsort; prop_indexed_dijkstra_style ]);
    ]
