module Graph = Hgp_graph.Graph
module Cuts = Hgp_graph.Cuts
module Gen = Hgp_graph.Generators

let square () = Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.); (3, 0, 4.) ]

let test_cut_weight () =
  let g = square () in
  Test_support.check_close "cut {0}" 5. (Cuts.cut_weight g (fun v -> v = 0));
  Test_support.check_close "cut {0,1}" 6. (Cuts.cut_weight g (fun v -> v <= 1));
  Test_support.check_close "cut all" 0. (Cuts.cut_weight g (fun _ -> true))

let test_cut_weight_of_set () =
  let g = square () in
  Test_support.check_close "set variant" 6. (Cuts.cut_weight_of_set g [| 0; 1 |])

let test_kway () =
  let g = square () in
  Test_support.check_close "4 singleton parts" 10. (Cuts.kway_cut g [| 0; 1; 2; 3 |]);
  Test_support.check_close "single part" 0. (Cuts.kway_cut g [| 0; 0; 0; 0 |])

let test_boundary () =
  let g = square () in
  let b = Cuts.boundary g [| 0; 0; 1; 1 |] in
  Alcotest.(check int) "two crossing edges" 2 (List.length b)

let test_part_loads_and_imbalance () =
  let parts = [| 0; 0; 1; 1 |] in
  let demand v = float_of_int (v + 1) in
  let loads = Cuts.part_loads parts ~n_parts:2 ~demand in
  Test_support.check_close "part 0" 3. loads.(0);
  Test_support.check_close "part 1" 7. loads.(1);
  Test_support.check_close "imbalance" (7. /. 5.) (Cuts.imbalance parts ~n_parts:2 ~demand)

let prop_cut_complement_symmetric =
  Test_support.qtest ~count:100 "cut(S) = cut(V minus S)"
    (Test_support.gen_graph ())
    (fun g ->
      let n = Graph.n g in
      let in_set v = v mod 3 = 0 in
      let a = Cuts.cut_weight g in_set in
      let b = Cuts.cut_weight g (fun v -> not (in_set v)) in
      Float.abs (a -. b) < 1e-9 && a <= Graph.total_weight g +. 1e-9 && n > 0)

let prop_kway_equals_pairwise_sum =
  Test_support.qtest ~count:100 "k-way cut = sum over crossing edges"
    (Test_support.gen_graph ())
    (fun g ->
      let n = Graph.n g in
      let parts = Array.init n (fun v -> v mod 3) in
      let manual =
        Graph.fold_edges
          (fun acc u v w -> if parts.(u) <> parts.(v) then acc +. w else acc)
          0. g
      in
      Float.abs (Cuts.kway_cut g parts -. manual) < 1e-9)

let () =
  Alcotest.run "cuts"
    [
      ( "unit",
        [
          Alcotest.test_case "cut weight" `Quick test_cut_weight;
          Alcotest.test_case "cut weight of set" `Quick test_cut_weight_of_set;
          Alcotest.test_case "kway" `Quick test_kway;
          Alcotest.test_case "boundary" `Quick test_boundary;
          Alcotest.test_case "loads and imbalance" `Quick test_part_loads_and_imbalance;
        ] );
      ("property", [ prop_cut_complement_symmetric; prop_kway_equals_pairwise_sum ]);
    ]
