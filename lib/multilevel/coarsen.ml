module Csr = Hgp_graph.Csr
module Prng = Hgp_util.Prng

type level = {
  fine : Csr.t;
  cmap : int array;
  coarse : Csr.t;
  key : Hgp_util.Fingerprint.t;
}

type chain = level list

let matching rng csr ~max_weight =
  let n = Csr.n csr in
  let matched = Array.make n (-1) in
  let order = Prng.permutation rng n in
  Array.iter
    (fun v ->
      if matched.(v) = -1 then begin
        let best = ref (-1) and best_w = ref 0. in
        Csr.iter_neighbors
          (fun u w ->
            if
              matched.(u) = -1 && u <> v && w > !best_w
              && Csr.vertex_weight csr v +. Csr.vertex_weight csr u <= max_weight
            then begin
              best := u;
              best_w := w
            end)
          csr v;
        if !best >= 0 then begin
          matched.(v) <- !best;
          matched.(!best) <- v
        end
        else matched.(v) <- v
      end)
    order;
  let cmap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if cmap.(v) = -1 then begin
      cmap.(v) <- !next;
      if matched.(v) <> v && matched.(v) >= 0 then cmap.(matched.(v)) <- !next;
      incr next
    end
  done;
  (cmap, !next)

let step rng csr ~max_weight =
  let cmap, nc = matching rng csr ~max_weight in
  (cmap, Csr.contract csr cmap ~n_parts:nc)

let build rng csr ~threshold ~max_levels ~max_weight =
  let rec go csr acc depth =
    if Csr.n csr <= threshold || depth >= max_levels then List.rev acc
    else begin
      let cmap, coarse = step rng csr ~max_weight in
      if Csr.n coarse >= Csr.n csr then List.rev acc
      else
        go coarse
          ({ fine = csr; cmap; coarse; key = Csr.fingerprint coarse } :: acc)
          (depth + 1)
    end
  in
  go csr [] 0

let coarsest ~fine chain =
  match List.rev chain with [] -> fine | l :: _ -> l.coarse

(* ---- incremental rebuild ----

   Replays the cold [build] against a cached chain from a previous run of
   the SAME seed whose graph differed from [csr] only on the edge weights
   listed in [delta] (vertex weights unchanged).  Each level recomputes the
   matching in full — it consumes [Prng.permutation] exactly as [build], so
   the rng stays in lockstep with the cold path — then compares the fresh
   cmap with the cached one.  While they agree, the weight delta is mapped
   through the contraction (edges swallowed inside a matched pair drop out);
   the moment the mapped delta becomes empty the remaining cached suffix is
   bit-identical to what [build] would recompute (same graph, same rng
   state) and is spliced wholesale.  Any cmap divergence falls back to cold
   contraction for the rest of the chain. *)

type rebuild_result = {
  r_chain : chain;
  r_fine_clean : bool array;
  r_coarse_clean : bool;
  r_reused_levels : int;
}

let rebuild rng csr ~prev ~delta ~threshold ~max_levels ~max_weight =
  let reused = ref 0 in
  let mk fine cmap coarse = { fine; cmap; coarse; key = Csr.fingerprint coarse } in
  (* past any divergence: plain [build] from here on *)
  let rec cold csr acc clean depth =
    if Csr.n csr <= threshold || depth >= max_levels then (List.rev acc, List.rev clean, false)
    else begin
      let cmap, nc = matching rng csr ~max_weight in
      let coarse = Csr.contract csr cmap ~n_parts:nc in
      if Csr.n coarse >= Csr.n csr then (List.rev acc, List.rev clean, false)
      else cold coarse (mk csr cmap coarse :: acc) (false :: clean) (depth + 1)
    end
  in
  let rec go csr delta prev acc clean depth =
    if Csr.n csr <= threshold || depth >= max_levels then
      (List.rev acc, List.rev clean, delta = [] && prev = [])
    else begin
      let cmap, nc = matching rng csr ~max_weight in
      match prev with
      | (p : level) :: prest when cmap = p.cmap ->
        let coarse_delta =
          List.sort_uniq compare
            (List.filter_map
               (fun (u, v) ->
                 let cu = cmap.(u) and cv = cmap.(v) in
                 if cu = cv then None else Some (min cu cv, max cu cv))
               delta)
        in
        if coarse_delta = [] then begin
          (* coarse graphs identical from here down: splice the suffix *)
          reused := 1 + List.length prest;
          let acc = { p with fine = csr } :: acc in
          let clean = (delta = []) :: clean in
          ( List.rev_append acc prest,
            List.rev_append clean (List.map (fun _ -> true) prest),
            true )
        end
        else begin
          let coarse = Csr.contract csr cmap ~n_parts:nc in
          if Csr.n coarse >= Csr.n csr then (List.rev acc, List.rev clean, false)
          else
            go coarse coarse_delta prest
              (mk csr cmap coarse :: acc)
              (false :: clean) (depth + 1)
        end
      | _ ->
        let coarse = Csr.contract csr cmap ~n_parts:nc in
        if Csr.n coarse >= Csr.n csr then (List.rev acc, List.rev clean, false)
        else cold coarse (mk csr cmap coarse :: acc) (false :: clean) (depth + 1)
    end
  in
  let chain, cleans, coarse_clean = go csr delta prev [] [] 0 in
  {
    r_chain = chain;
    r_fine_clean = Array.of_list cleans;
    r_coarse_clean = coarse_clean;
    r_reused_levels = !reused;
  }
