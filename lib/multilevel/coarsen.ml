module Csr = Hgp_graph.Csr
module Prng = Hgp_util.Prng

type level = {
  fine : Csr.t;
  cmap : int array;
  coarse : Csr.t;
  key : Hgp_util.Fingerprint.t;
}

type chain = level list

let matching rng csr ~max_weight =
  let n = Csr.n csr in
  let matched = Array.make n (-1) in
  let order = Prng.permutation rng n in
  Array.iter
    (fun v ->
      if matched.(v) = -1 then begin
        let best = ref (-1) and best_w = ref 0. in
        Csr.iter_neighbors
          (fun u w ->
            if
              matched.(u) = -1 && u <> v && w > !best_w
              && Csr.vertex_weight csr v +. Csr.vertex_weight csr u <= max_weight
            then begin
              best := u;
              best_w := w
            end)
          csr v;
        if !best >= 0 then begin
          matched.(v) <- !best;
          matched.(!best) <- v
        end
        else matched.(v) <- v
      end)
    order;
  let cmap = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if cmap.(v) = -1 then begin
      cmap.(v) <- !next;
      if matched.(v) <> v && matched.(v) >= 0 then cmap.(matched.(v)) <- !next;
      incr next
    end
  done;
  (cmap, !next)

let step rng csr ~max_weight =
  let cmap, nc = matching rng csr ~max_weight in
  (cmap, Csr.contract csr cmap ~n_parts:nc)

let build rng csr ~threshold ~max_levels ~max_weight =
  let rec go csr acc depth =
    if Csr.n csr <= threshold || depth >= max_levels then List.rev acc
    else begin
      let cmap, coarse = step rng csr ~max_weight in
      if Csr.n coarse >= Csr.n csr then List.rev acc
      else
        go coarse
          ({ fine = csr; cmap; coarse; key = Csr.fingerprint coarse } :: acc)
          (depth + 1)
    end
  in
  go csr [] 0

let coarsest ~fine chain =
  match List.rev chain with [] -> fine | l :: _ -> l.coarse
