(** Heavy-edge-matching coarsening on CSR graphs.

    One step matches each vertex with its heaviest still-unmatched neighbor
    (visiting vertices in a seeded random permutation) and contracts matched
    pairs into super-vertices whose weights add up; repeating roughly halves
    the vertex count per level until the coarsest graph fits the exact
    solver.  Matching is capped: a pair is only merged while the combined
    vertex weight stays within [max_weight], so when vertex weights are
    demands every coarse vertex remains a valid demand
    ([Instance.create] requires [d <= leaf_capacity]).

    The matching traversal, tie-breaking (first strictly-heavier neighbor in
    ascending id order wins) and coarse-id assignment are shared verbatim
    with [Hgp_baselines.Multilevel], which delegates here — both produce
    bit-identical coarse graphs for the same seed. *)

type level = {
  fine : Hgp_graph.Csr.t;  (** the graph this transition coarsens *)
  cmap : int array;  (** fine vertex -> coarse vertex *)
  coarse : Hgp_graph.Csr.t;
  key : Hgp_util.Fingerprint.t;
      (** content address of [coarse] — the per-level fingerprint the
          hierarchy cache and [--cache-stats] report against *)
}

(** Finest transition first; [(List.nth chain i).coarse == (List.nth chain
    (i+1)).fine]. *)
type chain = level list

(** [matching rng csr ~max_weight] is one heavy-edge matching: returns the
    fine->coarse map (dense coarse ids, assigned in ascending fine-id order)
    and the coarse vertex count.  Invariants (property-tested): each vertex
    appears in at most one matched pair, matched pairs are edges of [csr],
    and singletons map alone. *)
val matching :
  Hgp_util.Prng.t -> Hgp_graph.Csr.t -> max_weight:float -> int array * int

(** [step rng csr ~max_weight] is [matching] followed by
    {!Hgp_graph.Csr.contract}. *)
val step :
  Hgp_util.Prng.t -> Hgp_graph.Csr.t -> max_weight:float -> int array * Hgp_graph.Csr.t

(** [build rng csr ~threshold ~max_levels ~max_weight] coarsens until the
    vertex count is at most [threshold], a step stops shrinking the graph,
    or [max_levels] transitions accumulate. *)
val build :
  Hgp_util.Prng.t ->
  Hgp_graph.Csr.t ->
  threshold:int ->
  max_levels:int ->
  max_weight:float ->
  chain

(** [coarsest ~fine chain] is the last coarse graph, or [fine] itself for an
    empty chain. *)
val coarsest : fine:Hgp_graph.Csr.t -> chain -> Hgp_graph.Csr.t

type rebuild_result = {
  r_chain : chain;  (** bit-identical to [build rng csr ...] on the new graph *)
  r_fine_clean : bool array;
      (** per transition (finest first): the transition's [fine] graph is
          bit-identical to the previous run's graph at that depth *)
  r_coarse_clean : bool;
      (** the coarsest graph is bit-identical to the previous run's *)
  r_reused_levels : int;  (** transitions spliced without matching/contract *)
}

(** [rebuild rng csr ~prev ~delta ~threshold ~max_levels ~max_weight]
    recoarsens after an edge-weight-only change: [prev] is the chain a
    previous [build] (same seed and parameters) produced on a graph that
    differs from [csr] exactly on the undirected edge pairs in [delta]
    (vertex weights must be unchanged).  The result chain is bit-identical
    to a cold [build] on [csr] — matchings are recomputed per level so the
    rng stays in lockstep — but once the mapped delta contracts away, the
    cached suffix is reused wholesale.  [~prev:[] ~delta:[]] degenerates to
    [build]. *)
val rebuild :
  Hgp_util.Prng.t ->
  Hgp_graph.Csr.t ->
  prev:chain ->
  delta:(int * int) list ->
  threshold:int ->
  max_levels:int ->
  max_weight:float ->
  rebuild_result
