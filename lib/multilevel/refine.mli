(** Certification-preserving boundary refinement on CSR graphs.

    After a coarse solution is projected one level down, every fine vertex
    sits where its super-vertex sat; the only vertices whose placement can
    be wrong at this level are those with an edge crossing a leaf boundary.
    Two engines polish them, both restricted to moves that keep the load of
    every hierarchy-level ancestor of the destination within
    [slack * CP(j)] — with [slack] set to the certified bound
    [(1+eps)(1+h)] no move can push any level past the band the coarse
    certificate established, so the certificate survives uncoarsening (the
    semantics [docs/MULTILEVEL.md] relies on):

    - {!refine} is the historical greedy engine: each pass visits vertices
      in ascending id order (no randomness — the V-cycle must be
      deterministic for a fixed seed) and moves a vertex to the
      neighbor-hosting leaf that reduces its incident communication cost
      the most.  Interior vertices are skipped via an incrementally
      maintained cross-neighbor count; the move sequence is bit-identical
      to the pre-FM implementation.
    - {!refine_fm} is the FM engine: boundary vertices are ranked in a
      bucket queue on quantized gains ({!Bucketq}), gains are invalidated
      lazily on neighbor moves (stale entries die at pop against a
      per-vertex stamp), each vertex moves at most once per pass, and with
      [hill_climb] temporarily negative move sequences are allowed and
      rolled back to the best prefix at the end of the pass — so a pass
      never increases the level cost, but can escape the single-move local
      minima the greedy engine gets stuck in. *)

type stats = {
  passes : int;
  moves : int;  (** applied moves, including any later rolled back *)
  gain : float;  (** total level-cost decrease over all passes *)
  rollbacks : int;  (** moves undone by best-prefix rollback (greedy: 0) *)
}

(** Which engine the V-cycle runs at each level. *)
type algo = Greedy | Fm of { hill_climb : bool }

(** One observed state change, reported through [?observe] of {!refine_fm}:
    an application ([undo = false], [move_gain] = exact cost decrease, may
    be negative under hill-climbing) or a best-prefix rollback of that
    application ([undo = true], [move_gain] negated). *)
type move = {
  vertex : int;
  src : int;
  dst : int;
  move_gain : float;
  undo : bool;
}

(** [cost csr hy assignment] is the level objective both engines descend:
    the sum over edges of [w * edge_cost hy l_u l_v].  (On the finest level
    this is the Equation-1 instance cost.) *)
val cost : Hgp_graph.Csr.t -> Hgp_hierarchy.Hierarchy.t -> int array -> float

(** [boundary csr assignment] is the brute-force boundary set — vertex [v]
    is marked iff some neighbor lives on a different leaf.  This is the
    differential oracle the incremental maintenance is regression-tested
    against (see [test_refine.ml]); the engines themselves never rescan the
    graph after a move. *)
val boundary : Hgp_graph.Csr.t -> int array -> bool array

(** [in_band csr hy assignment ~slack] checks the invariant both engines
    maintain: every hierarchy node at levels [1..h] carries load at most
    [slack * CP(node)] (tolerance 1e-9 for float accumulation).  The V-cycle
    uses it as the splice guard for boundary re-solves; the test layer and
    the E20 ledger use it to re-verify every level. *)
val in_band :
  Hgp_graph.Csr.t -> Hgp_hierarchy.Hierarchy.t -> int array -> slack:float -> bool

(** The quantized-gain bucket queue behind {!refine_fm}, exposed for the
    property suite.  [push] files an entry under [floor (gain / quantum)];
    [pop] returns [(bucket index, entry)] from the highest non-empty bucket,
    FIFO within a bucket.  Quantization affects only the order entries come
    out, never the gains the FM engine applies — popped entries are
    revalidated against exact recomputed gains. *)
module Bucketq : sig
  type 'a t

  val create : quantum:float -> 'a t
  val length : 'a t -> int

  (** [index_of t gain] is the bucket [gain] files under. *)
  val index_of : 'a t -> float -> int

  val push : 'a t -> gain:float -> 'a -> unit
  val pop : 'a t -> (int * 'a) option
  val clear : 'a t -> unit
end

(** [refine csr hy assignment ~slack ~max_passes] runs the greedy engine and
    returns the refined copy of [assignment] (vertex -> leaf of [hy]) and
    move statistics.  Vertex weights of [csr] are the demands. *)
val refine :
  Hgp_graph.Csr.t ->
  Hgp_hierarchy.Hierarchy.t ->
  int array ->
  slack:float ->
  max_passes:int ->
  int array * stats

(** [refine_fm csr hy assignment ~slack ~max_passes ~hill_climb ()] runs the
    FM engine.  With [hill_climb = false] only strictly positive-gain moves
    are applied (monotone descent, no rollback); with [hill_climb = true]
    each pass drains the whole bucket queue — negative moves included — and
    rolls back to the best prefix, so the pass gain is still [>= 0].

    [?observe] is a test hook: called after every applied or undone move
    with the exact gain and a snapshot of the incrementally maintained
    boundary flags (so the suite can pin them to {!boundary}).  It is
    [None] in production and costs nothing there. *)
val refine_fm :
  Hgp_graph.Csr.t ->
  Hgp_hierarchy.Hierarchy.t ->
  int array ->
  slack:float ->
  max_passes:int ->
  hill_climb:bool ->
  ?observe:(move -> bool array -> unit) ->
  unit ->
  int array * stats
