(** Certification-preserving boundary refinement on CSR graphs.

    After a coarse solution is projected one level down, every fine vertex
    sits where its super-vertex sat; the only vertices whose placement can
    be wrong at this level are those with an edge crossing a leaf boundary.
    Each pass visits vertices in ascending id order (no randomness — the
    V-cycle must be deterministic for a fixed seed) and greedily moves a
    vertex to the neighbor-hosting leaf that reduces its incident
    communication cost the most, {e provided} the move keeps the load of
    every hierarchy-level ancestor of the destination within
    [slack * CP(j)].

    With [slack] set to the certified bound [(1+eps)(1+h)], refinement can
    only lower the cost and can never push any level past the band the
    coarse certificate established — so the certificate survives
    uncoarsening (the semantics [docs/MULTILEVEL.md] relies on). *)

type stats = {
  passes : int;
  moves : int;
  gain : float;  (** total incident-cost decrease over all moves *)
}

(** [refine csr hy assignment ~slack ~max_passes] returns the refined copy
    of [assignment] (vertex -> leaf of [hy]) and move statistics.  Vertex
    weights of [csr] are the demands. *)
val refine :
  Hgp_graph.Csr.t ->
  Hgp_hierarchy.Hierarchy.t ->
  int array ->
  slack:float ->
  max_passes:int ->
  int array * stats
