module Csr = Hgp_graph.Csr
module Hierarchy = Hgp_hierarchy.Hierarchy

type stats = {
  passes : int;
  moves : int;
  gain : float;
  rollbacks : int;
}

type algo = Greedy | Fm of { hill_climb : bool }

type move = {
  vertex : int;
  src : int;
  dst : int;
  move_gain : float;
  undo : bool;
}

(* ---- level cost and boundary (shared with Vcycle and the test layer) ---- *)

let cost csr hy assignment =
  let acc = ref 0. in
  Csr.iter_edges
    (fun u v w -> acc := !acc +. (w *. Hierarchy.edge_cost hy assignment.(u) assignment.(v)))
    csr;
  !acc

let boundary csr assignment =
  let n = Csr.n csr in
  let b = Array.make n false in
  for v = 0 to n - 1 do
    let l = assignment.(v) in
    Csr.iter_neighbors (fun u _ -> if assignment.(u) <> l then b.(v) <- true) csr v
  done;
  b

(* ---- bucket queue on quantized gains ----

   Entries land in bucket [floor (gain / quantum)]; [pop] serves the highest
   non-empty bucket FIFO.  Quantization only affects the *order* candidates
   are tried in, never the gains that are applied — the FM engine revalidates
   every popped entry against exact recomputed gains (lazy invalidation), so
   a coarse quantum costs move-ordering quality, not correctness. *)

module Bucketq = struct
  type 'a t = {
    quantum : float;
    buckets : (int, 'a Queue.t) Hashtbl.t;
    mutable best : int;  (* max key present; min_int when empty *)
    mutable size : int;
  }

  let create ~quantum =
    {
      quantum = Float.max 1e-18 quantum;
      buckets = Hashtbl.create 64;
      best = min_int;
      size = 0;
    }

  let length t = t.size
  let index_of t gain = int_of_float (Float.floor (gain /. t.quantum))

  let push t ~gain x =
    let i = index_of t gain in
    let q =
      match Hashtbl.find_opt t.buckets i with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.buckets i q;
        q
    in
    Queue.push x q;
    if i > t.best then t.best <- i;
    t.size <- t.size + 1

  (* Only non-empty buckets are kept in the table, so [best] always names a
     live bucket while [size > 0]. *)
  let pop t =
    if t.size = 0 then None
    else begin
      let i = t.best in
      let q = Hashtbl.find t.buckets i in
      let x = Queue.pop q in
      t.size <- t.size - 1;
      if Queue.is_empty q then begin
        Hashtbl.remove t.buckets i;
        t.best <- Hashtbl.fold (fun k _ acc -> max k acc) t.buckets min_int
      end;
      Some (i, x)
    end

  let clear t =
    Hashtbl.reset t.buckets;
    t.best <- min_int;
    t.size <- 0
end

(* ---- per-node banded load bookkeeping (shared by both engines) ---- *)

type band = {
  hy : Hierarchy.t;
  h : int;
  loads : float array array;  (* level 1..h; level 0 never changes *)
  caps : float array array;
}

let band_init csr hy assignment ~slack =
  let n = Csr.n csr in
  let h = Hierarchy.height hy in
  let loads =
    Array.init (h + 1) (fun j ->
        if j = 0 then [||] else Array.make (Hierarchy.nodes_at_level hy j) 0.)
  in
  for v = 0 to n - 1 do
    let l = assignment.(v) in
    let d = Csr.vertex_weight csr v in
    for j = 1 to h do
      let a = Hierarchy.ancestor hy ~level:j l in
      loads.(j).(a) <- loads.(j).(a) +. d
    done
  done;
  let caps =
    Array.init (h + 1) (fun j ->
        if j = 0 then [||]
        else
          Array.init (Hierarchy.nodes_at_level hy j) (fun idx ->
              slack *. Hierarchy.capacity_of hy ~level:j idx))
  in
  { hy; h; loads; caps }

(* A move to leaf [l] is safe when every ancestor of [l] that is NOT also an
   ancestor of the current leaf keeps its load within the band; shared
   ancestors see no load change. *)
let band_fits b ~from l d =
  let ok = ref true in
  let j = ref 1 in
  while !ok && !j <= b.h do
    let a = Hierarchy.ancestor b.hy ~level:!j l in
    if a <> Hierarchy.ancestor b.hy ~level:!j from then
      if b.loads.(!j).(a) +. d > b.caps.(!j).(a) then ok := false;
    incr j
  done;
  !ok

let band_apply b ~from l d =
  for j = 1 to b.h do
    let a = Hierarchy.ancestor b.hy ~level:j l in
    let p = Hierarchy.ancestor b.hy ~level:j from in
    if a <> p then begin
      b.loads.(j).(a) <- b.loads.(j).(a) +. d;
      b.loads.(j).(p) <- b.loads.(j).(p) -. d
    end
  done

let in_band csr hy assignment ~slack =
  let b = band_init csr hy assignment ~slack in
  let ok = ref true in
  for j = 1 to b.h do
    Array.iteri
      (fun i load -> if load > b.caps.(j).(i) +. 1e-9 then ok := false)
      b.loads.(j)
  done;
  !ok

(* ---- incremental boundary counts ----

   [cnt.(v)] is the number of adjacency entries of [v] whose endpoint sits on
   a different leaf; [v] is a boundary vertex iff [cnt.(v) > 0].  Moving [v]
   only changes the boundary status of [v] itself and of its direct
   neighbors, so one move costs O(deg v) to maintain — the full recompute is
   kept in {!boundary} as the differential oracle for the regression test. *)

let cnt_init csr assignment =
  let n = Csr.n csr in
  let cnt = Array.make n 0 in
  for v = 0 to n - 1 do
    let l = assignment.(v) in
    Csr.iter_neighbors (fun u _ -> if assignment.(u) <> l then cnt.(v) <- cnt.(v) + 1) csr v
  done;
  cnt

(* Call with [assignment] already updated to place [v] on [dst]. *)
let cnt_move csr cnt assignment v ~src ~dst =
  cnt.(v) <- 0;
  Csr.iter_neighbors
    (fun u _ ->
      let lu = assignment.(u) in
      if lu <> dst then cnt.(v) <- cnt.(v) + 1;
      let before = if src <> lu then 1 else 0 in
      let after = if dst <> lu then 1 else 0 in
      cnt.(u) <- cnt.(u) + after - before)
    csr v

(* ---- the greedy engine (historical semantics, bit-identical moves) ---- *)

let refine csr hy assignment ~slack ~max_passes =
  let n = Csr.n csr in
  let assignment = Array.copy assignment in
  let band = band_init csr hy assignment ~slack in
  let incident l v =
    let acc = ref 0. in
    Csr.iter_neighbors
      (fun u w -> if u <> v then acc := !acc +. (w *. Hierarchy.edge_cost hy l assignment.(u)))
      csr v;
    !acc
  in
  let moves = ref 0 and total_gain = ref 0. and passes = ref 0 in
  let improved = ref true in
  (* Candidate targets: only leaves hosting a neighbor — the classic
     boundary-refinement restriction that keeps a pass O(sum deg^2 / n) per
     vertex instead of O(k).  Interior vertices (no cross-leaf edge) have no
     candidates, so the incremental count lets each pass skip them in O(1)
     instead of rescanning their adjacency; the visit order and the move
     decisions over boundary vertices are unchanged. *)
  let cnt = cnt_init csr assignment in
  let cand = Array.make 8 0 in
  let cand = ref cand in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for v = 0 to n - 1 do
      if cnt.(v) > 0 then begin
        let from = assignment.(v) in
        let ncand = ref 0 in
        Csr.iter_neighbors
          (fun u _ ->
            let l = assignment.(u) in
            if l <> from then begin
              let dup = ref false in
              for i = 0 to !ncand - 1 do
                if !cand.(i) = l then dup := true
              done;
              if not !dup then begin
                if !ncand >= Array.length !cand then begin
                  let bigger = Array.make (2 * Array.length !cand) 0 in
                  Array.blit !cand 0 bigger 0 !ncand;
                  cand := bigger
                end;
                !cand.(!ncand) <- l;
                incr ncand
              end
            end)
          csr v;
        if !ncand > 0 then begin
          let here = incident from v in
          let d = Csr.vertex_weight csr v in
          let best_l = ref from and best_gain = ref 1e-12 in
          for i = 0 to !ncand - 1 do
            let l = !cand.(i) in
            let gain = here -. incident l v in
            if gain > !best_gain && band_fits band ~from l d then begin
              best_gain := gain;
              best_l := l
            end
          done;
          if !best_l <> from then begin
            band_apply band ~from !best_l d;
            assignment.(v) <- !best_l;
            cnt_move csr cnt assignment v ~src:from ~dst:!best_l;
            moves := !moves + 1;
            total_gain := !total_gain +. !best_gain;
            improved := true
          end
        end
      end
    done
  done;
  (assignment, { passes = !passes; moves = !moves; gain = !total_gain; rollbacks = 0 })

(* ---- the FM engine ---- *)

(* One logged application; [log] is kept most-recent-first so rolling back to
   the best prefix pops from the head. *)
type logged = { lv : int; lsrc : int; ldst : int; lgain : float }

let refine_fm csr hy assignment ~slack ~max_passes ~hill_climb ?observe () =
  let n = Csr.n csr in
  let assignment = Array.copy assignment in
  let band = band_init csr hy assignment ~slack in
  let cnt = cnt_init csr assignment in
  let incident l v =
    let acc = ref 0. in
    Csr.iter_neighbors
      (fun u w -> if u <> v then acc := !acc +. (w *. Hierarchy.edge_cost hy l assignment.(u)))
      csr v;
    !acc
  in
  let notify mv =
    match observe with
    | None -> ()
    | Some f -> f mv (Array.map (fun c -> c > 0) cnt)
  in
  (* Quantum: gains scale with (edge weight x cost multiplier); an average
     edge at the root multiplier split across 64 buckets orders candidates
     finely enough that bucket ties are rare. *)
  let quantum =
    let m = Csr.m csr in
    let avg_w = if m = 0 then 1. else Csr.total_edge_weight csr /. float_of_int m in
    let c0 = Hierarchy.cm hy 0 in
    Float.max 1e-12 (avg_w *. (if c0 > 0. then c0 else 1.) /. 64.)
  in
  let bq = Bucketq.create ~quantum in
  let stamp = Array.make n 0 in
  let locked = Array.make n false in
  (* Best single-vertex move of [v] under the current assignment, restricted
     to band-legal targets.  With [hill_climb] the best may have negative
     gain; without it, callers drop non-positive candidates. *)
  let best_move v =
    if cnt.(v) = 0 then None
    else begin
      let from = assignment.(v) in
      let d = Csr.vertex_weight csr v in
      let here = incident from v in
      let best_l = ref from and best_g = ref neg_infinity in
      Csr.iter_neighbors
        (fun u _ ->
          let l = assignment.(u) in
          (* Ascending-id neighbor iteration makes the first occurrence of a
             leaf the canonical candidate, so ties are deterministic. *)
          if l <> from && l <> !best_l then begin
            let g = here -. incident l v in
            if g > !best_g +. 1e-15 && band_fits band ~from l d then begin
              best_g := g;
              best_l := l
            end
          end)
        csr v;
      if !best_l = from then None else Some (!best_l, !best_g)
    end
  in
  let push_candidate v =
    if (not locked.(v)) && cnt.(v) > 0 then
      match best_move v with
      | None -> ()
      | Some (_, g) ->
        if hill_climb || g > 1e-12 then Bucketq.push bq ~gain:g (v, stamp.(v))
  in
  let moves = ref 0
  and rollbacks = ref 0
  and total_gain = ref 0.
  and passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    Array.fill locked 0 n false;
    Bucketq.clear bq;
    for v = 0 to n - 1 do
      push_candidate v
    done;
    let log = ref [] and log_len = ref 0 in
    let cum = ref 0. and best_cum = ref 0. and best_len = ref 0 in
    let apply v dst g =
      let src = assignment.(v) in
      let d = Csr.vertex_weight csr v in
      band_apply band ~from:src dst d;
      assignment.(v) <- dst;
      cnt_move csr cnt assignment v ~src ~dst;
      locked.(v) <- true;
      stamp.(v) <- stamp.(v) + 1;
      incr moves;
      log := { lv = v; lsrc = src; ldst = dst; lgain = g } :: !log;
      incr log_len;
      cum := !cum +. g;
      if !cum > !best_cum +. 1e-12 then begin
        best_cum := !cum;
        best_len := !log_len
      end;
      notify { vertex = v; src; dst; move_gain = g; undo = false };
      (* Lazy gain update: a neighbor's cached candidates are stale now —
         bump its stamp so queued entries die at pop, and queue a fresh
         candidate computed against the new assignment. *)
      Csr.iter_neighbors
        (fun u _ ->
          stamp.(u) <- stamp.(u) + 1;
          push_candidate u)
        csr v
    in
    let draining = ref true in
    while !draining do
      match Bucketq.pop bq with
      | None -> draining := false
      | Some (popped_bucket, (v, st)) ->
        if st = stamp.(v) && not locked.(v) then begin
          (* Stamps only change when a neighbor moves, so a fresh entry's
             gain is exact; band legality, however, depends on loads anywhere
             in the tree, so revalidate against the current loads. *)
          match best_move v with
          | None -> ()
          | Some (dst, g) ->
            if (not hill_climb) && g <= 1e-12 then ()
            else if Bucketq.index_of bq g < popped_bucket then
              (* The band shrank under this entry: requeue at its real
                 priority instead of applying out of order. *)
              Bucketq.push bq ~gain:g (v, st)
            else apply v dst g
        end
    done;
    (* Best-prefix rollback: keep the prefix with the highest cumulative
       gain (possibly empty), undoing the tail most-recent-first.  Every
       prefix state was reached through band-checked moves, so the restored
       state is in-band by construction. *)
    let pass_gain =
      if hill_climb then begin
        while !log_len > !best_len do
          match !log with
          | [] -> assert false
          | mv :: rest ->
            log := rest;
            decr log_len;
            let d = Csr.vertex_weight csr mv.lv in
            band_apply band ~from:mv.ldst mv.lsrc d;
            assignment.(mv.lv) <- mv.lsrc;
            cnt_move csr cnt assignment mv.lv ~src:mv.ldst ~dst:mv.lsrc;
            stamp.(mv.lv) <- stamp.(mv.lv) + 1;
            incr rollbacks;
            notify { vertex = mv.lv; src = mv.ldst; dst = mv.lsrc; move_gain = -.mv.lgain; undo = true }
        done;
        !best_cum
      end
      else !cum
    in
    total_gain := !total_gain +. pass_gain;
    if pass_gain > 1e-9 then improved := true
  done;
  ( assignment,
    { passes = !passes; moves = !moves; gain = !total_gain; rollbacks = !rollbacks } )
