module Csr = Hgp_graph.Csr
module Hierarchy = Hgp_hierarchy.Hierarchy

type stats = {
  passes : int;
  moves : int;
  gain : float;
}

let refine csr hy assignment ~slack ~max_passes =
  let n = Csr.n csr in
  let h = Hierarchy.height hy in
  let assignment = Array.copy assignment in
  (* Load per node at every level 1..h (level 0 is the root: moves never
     change the total, so it needs no bookkeeping). *)
  let loads =
    Array.init (h + 1) (fun j ->
        if j = 0 then [||] else Array.make (Hierarchy.nodes_at_level hy j) 0.)
  in
  for v = 0 to n - 1 do
    let l = assignment.(v) in
    let d = Csr.vertex_weight csr v in
    for j = 1 to h do
      let a = Hierarchy.ancestor hy ~level:j l in
      loads.(j).(a) <- loads.(j).(a) +. d
    done
  done;
  let cap =
    Array.init (h + 1) (fun j ->
        if j = 0 then [||]
        else
          Array.init (Hierarchy.nodes_at_level hy j) (fun idx ->
              slack *. Hierarchy.capacity_of hy ~level:j idx))
  in
  (* A move to leaf [l] is safe when every ancestor of [l] that is NOT also
     an ancestor of the current leaf keeps its load within the band; shared
     ancestors see no load change. *)
  let fits ~from l d =
    let ok = ref true in
    let j = ref 1 in
    while !ok && !j <= h do
      let a = Hierarchy.ancestor hy ~level:!j l in
      if a <> Hierarchy.ancestor hy ~level:!j from then
        if loads.(!j).(a) +. d > cap.(!j).(a) then ok := false;
      incr j
    done;
    !ok
  in
  let apply ~from l d =
    for j = 1 to h do
      let a = Hierarchy.ancestor hy ~level:j l in
      let b = Hierarchy.ancestor hy ~level:j from in
      if a <> b then begin
        loads.(j).(a) <- loads.(j).(a) +. d;
        loads.(j).(b) <- loads.(j).(b) -. d
      end
    done
  in
  let incident l v =
    let acc = ref 0. in
    Csr.iter_neighbors
      (fun u w -> if u <> v then acc := !acc +. (w *. Hierarchy.edge_cost hy l assignment.(u)))
      csr v;
    !acc
  in
  let moves = ref 0 and total_gain = ref 0. and passes = ref 0 in
  let improved = ref true in
  (* Candidate targets: only leaves hosting a neighbor — the classic
     boundary-refinement restriction that keeps a pass O(sum deg^2 / n) per
     vertex instead of O(k). *)
  let cand = Array.make 8 0 in
  let cand = ref cand in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for v = 0 to n - 1 do
      let from = assignment.(v) in
      let ncand = ref 0 in
      Csr.iter_neighbors
        (fun u _ ->
          let l = assignment.(u) in
          if l <> from then begin
            let dup = ref false in
            for i = 0 to !ncand - 1 do
              if !cand.(i) = l then dup := true
            done;
            if not !dup then begin
              if !ncand >= Array.length !cand then begin
                let bigger = Array.make (2 * Array.length !cand) 0 in
                Array.blit !cand 0 bigger 0 !ncand;
                cand := bigger
              end;
              !cand.(!ncand) <- l;
              incr ncand
            end
          end)
        csr v;
      if !ncand > 0 then begin
        let here = incident from v in
        let d = Csr.vertex_weight csr v in
        let best_l = ref from and best_gain = ref 1e-12 in
        for i = 0 to !ncand - 1 do
          let l = !cand.(i) in
          let gain = here -. incident l v in
          if gain > !best_gain && fits ~from l d then begin
            best_gain := gain;
            best_l := l
          end
        done;
        if !best_l <> from then begin
          apply ~from !best_l d;
          assignment.(v) <- !best_l;
          moves := !moves + 1;
          total_gain := !total_gain +. !best_gain;
          improved := true
        end
      end
    done
  done;
  (assignment, { passes = !passes; moves = !moves; gain = !total_gain })
