(** The multilevel V-cycle front-end: coarsen → solve exactly → uncoarsen →
    refine.

    The exact Theorem-1 pipeline tops out around a few hundred vertices (the
    DP and the Räcke ensemble both scale with [n]); the V-cycle runs it only
    on a heavy-edge-matching coarsening of the input — typically
    [threshold] ≈ 128 vertices regardless of the input size — then projects
    the coarse assignment back through the level hierarchy with
    certification-preserving boundary refinement at each level
    ({!Refine}).  Coarse vertex weights are the summed demands of their
    clusters, i.e. exactly the nonuniform-weights setting of Makarychev &
    Makarychev, and matching never merges past a leaf capacity, so the
    coarse instance is always well-formed.

    Certification semantics: {!Verify.certify} runs on the {e coarse}
    instance, where the DP's [(1+eps)(1+h)] guarantee actually applies.
    Projection preserves leaf loads exactly (a cluster's demand lands on the
    leaf its super-vertex chose) and refinement is banded by the certified
    bound, so the fine solution inherits the coarse certificate's violation
    band; the fine cost is reported from the true Equation-1 objective.

    Coarsening chains are content-addressed ({!Coarsen.level.key} per level,
    the fine graph's fingerprint ⊕ threshold ⊕ seed as the chain key) and
    cached in a process-wide LRU registered with
    {!Hgp_core.Pipeline.register_external_cache} under the name
    ["hierarchy"], so repeated solves of the same graph — the batch server's
    favorite access pattern — skip coarsening entirely.

    See [docs/MULTILEVEL.md] for the design discussion and when the exact
    path still wins. *)

type options = {
  threshold : int;  (** stop coarsening at this vertex count (default 128) *)
  max_levels : int;  (** hard cap on coarsening transitions (default 40) *)
  refine_passes : int;
      (** boundary-refinement passes per level on the way back up
          (default 2; 0 = pure projection) *)
  refine_algo : Refine.algo;
      (** which engine polishes each level: the historical greedy pass
          (default, bit-identical to pre-FM builds) or the FM gain-bucket
          engine, optionally with hill-climbing ({!Refine.refine_fm}).  FM is
          {e stacked}: it warm-starts from the greedy fixed point, so with
          hill-climbing disabled it is never worse than greedy by
          construction (the ISSUE 9 differential suite pins this). *)
  boundary_resolve : bool;
      (** FM only: after refining a level, extract the induced subgraph of
          its boundary vertices, re-solve it exactly through the staged
          pipeline (same artifact caches and domain pool), and splice the
          result back iff it improves cost and stays in-band (default false) *)
  boundary_max : int;
      (** skip the boundary re-solve when the boundary has more vertices than
          this — the exact pipeline's comfort zone (default 128) *)
  on_level : int -> float -> Hgp_graph.Csr.t -> int array -> unit;
      (** test/bench hook, called after each level is refined with
          [level slack fine_csr assignment]; default no-op.  E20 and the
          per-level band re-verification hang off this. *)
  solver : Hgp_core.Pipeline.options;  (** exact-solver options for the coarsest graph *)
}

val default_options : options

type level_report = {
  level : int;  (** 0 = finest transition *)
  n : int;  (** fine vertices at this transition *)
  m : int;
  moves : int;  (** refinement moves applied after projecting to this level *)
  gain : float;
      (** refinement cost decrease at this level, boundary re-solve included *)
  rollbacks : int;  (** FM best-prefix rollback moves (greedy: 0) *)
  cost_before : float;  (** level cost right after projection *)
  cost_after : float;
      (** level cost after refinement (and boundary re-solve, if any) — the
          E20 ledger's per-level monotonicity check is
          [cost_after <= cost_before] *)
  boundary_resolved : bool;  (** a boundary re-solve was spliced in here *)
}

type result = {
  solution : Hgp_core.Pipeline.solution;
      (** fine-level assignment; [cost] / [max_violation] recomputed on the
          true instance, DP accounting inherited from the coarse solve *)
  coarse_certificate : Hgp_core.Verify.report;
      (** [Verify.certify] of the exact solve on the coarse instance *)
  coarse_n : int;
  levels : int;
  coarsening_ratio : float;  (** fine n / coarse n; 1.0 when no coarsening ran *)
  level_reports : level_report list;  (** finest-first *)
  hierarchy_cached : bool;  (** chain served from the hierarchy cache *)
}

(** [solve ?options inst] runs the V-cycle.  Instances no larger than
    [threshold] skip coarsening and behave exactly like [Solver.solve].
    Raises whatever the exact solver raises on the coarse instance
    ([Infeasible _] after its retry, etc.).

    Telemetry: [multilevel.{csr_build,coarsen,coarse_solve,refine}] spans,
    [multilevel.solves] / [multilevel.refine_moves] counters,
    [multilevel.levels] / [multilevel.coarsening_ratio] gauges and a
    [multilevel.refine_gain.levelN] gauge per level.  When [refine_algo] is
    FM, additionally [refine.fm.{passes,moves,rollbacks,boundary_resolves,
    bytes_allocated}] counters and a [refine.fm.cost_delta.levelN] gauge per
    level — emitted {e only} in FM mode so the greedy path's metrics schema
    (and its goldens) stay byte-identical. *)
val solve : ?options:options -> Hgp_core.Instance.t -> result

(** {1 Incremental re-solve}

    Multilevel sessions thread a delta stream through the whole V-cycle:
    cached chain suffixes are spliced back once the mapped weight delta
    contracts away, the coarse exact solve goes through
    {!Hgp_core.Pipeline.run_incremental} (per-subtree DP snapshots) or is
    skipped when the coarsest graph is unchanged, and refinement re-runs
    only from the first dirty level down.  Every update is bit-identical to
    a cold {!solve} on the post-delta instance (docs/INCREMENTAL.md). *)

type session

type update_report = {
  u_result : result;  (** bit-identical to a cold {!solve} on the new instance *)
  u_churn : float;
      (** exact fraction of the new instance's vertices whose leaf changed
          (new vertices count as changed) *)
  u_resolved_subtrees : int;
      (** decomposition-tree nodes the coarse solve recomputed *)
  u_reused_subtrees : int;  (** tree nodes spliced from DP snapshots *)
  u_reused_levels : int;  (** refinement levels spliced without re-running *)
  u_total_levels : int;
  u_incremental : bool;
      (** [false] when a structural delta forced a cold re-solve *)
  u_certified : bool;  (** coarse certificate within the (1+eps)(1+h) band *)
  u_cert_violation : float;
  u_cert_bound : float;
}

(** [start_session ?options inst] solves cold (warming chain and DP
    snapshots) and opens a session.  Raises like {!solve}. *)
val start_session : ?options:options -> Hgp_core.Instance.t -> session * result

(** [resolve_delta session delta] applies the delta and re-solves, reusing
    chain suffixes, DP snapshots and clean refinement levels; reweight-only
    deltas take the incremental path, structural ones fall back to a cold
    solve (reported via [u_incremental]).  Updates the session and bumps
    [incremental.{updates,dirty_subtrees,reused_subtrees}] /
    [multilevel.incremental.reused_levels] counters and the
    [incremental.churn] gauge.  Sessions are not thread-safe; serialize
    updates per session (the server drains them in submission order).
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) on a delta
    that does not validate against the session's instance; raises like
    {!solve} when the post-delta coarse instance is infeasible. *)
val resolve_delta : session -> Hgp_core.Delta.t -> update_report

val session_instance : session -> Hgp_core.Instance.t
val session_options : session -> options

(** The session's current fine assignment (a fresh copy). *)
val session_assignment : session -> int array

(** The full result of the session's last solve or update. *)
val session_result : session -> result
