module Csr = Hgp_graph.Csr
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Pipeline = Hgp_core.Pipeline
module Solver = Hgp_core.Solver
module Verify = Hgp_core.Verify
module Cost = Hgp_core.Cost
module Obs = Hgp_obs.Obs
module Lru = Hgp_util.Lru
module Fingerprint = Hgp_util.Fingerprint
module Prng = Hgp_util.Prng

module Graph = Hgp_graph.Graph

type options = {
  threshold : int;
  max_levels : int;
  refine_passes : int;
  refine_algo : Refine.algo;
  boundary_resolve : bool;
  boundary_max : int;
  on_level : int -> float -> Csr.t -> int array -> unit;
  solver : Pipeline.options;
}

let default_options =
  {
    threshold = 128;
    max_levels = 40;
    refine_passes = 2;
    refine_algo = Refine.Greedy;
    boundary_resolve = false;
    boundary_max = 128;
    on_level = (fun _ _ _ _ -> ());
    solver = Pipeline.default_options;
  }

type level_report = {
  level : int;
  n : int;
  m : int;
  moves : int;
  gain : float;
  rollbacks : int;
  cost_before : float;
  cost_after : float;
  boundary_resolved : bool;
}

type result = {
  solution : Pipeline.solution;
  coarse_certificate : Verify.report;
  coarse_n : int;
  levels : int;
  coarsening_ratio : float;
  level_reports : level_report list;
  hierarchy_cached : bool;
}

(* ---- hierarchy cache ----
   Chains hold the full per-level CSR arrays, so a handful of entries is
   plenty; the win is the batch server re-solving the same graph under
   different demands/options. *)
let cache : (Fingerprint.t, Coarsen.chain) Lru.t = Lru.create ~capacity:4
let cache_lock = Mutex.create ()

let with_cache f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let () =
  Pipeline.register_external_cache ~name:"hierarchy"
    ~stats:(fun () -> with_cache (fun () -> Lru.stats cache))
    ~clear:(fun () -> with_cache (fun () -> Lru.clear cache))
    ~reset_stats:(fun () -> with_cache (fun () -> Lru.reset_stats cache))

let chain_key fine ~threshold ~max_levels ~seed ~max_weight =
  Csr.fingerprint fine
  |> Fun.flip Fingerprint.add_string "multilevel.chain"
  |> Fun.flip Fingerprint.add_int threshold
  |> Fun.flip Fingerprint.add_int max_levels
  |> Fun.flip Fingerprint.add_int seed
  |> Fun.flip Fingerprint.add_float max_weight

(* ---- boundary re-solve (KaHIP-style local exact V-cycle) ----

   Extract the induced subgraph of the level's boundary vertices, re-solve it
   exactly through the staged pipeline (hitting the same artifact caches and
   worker-domain pool as any other solve), and splice the sub-assignment back
   only when it strictly improves the level cost AND the spliced assignment
   stays inside the certified band — so the coarse certificate survives even
   though the exact solver knew nothing about the non-boundary context.

   The sub-instance must be connected ([Decomposition.build] rejects
   disconnected graphs), so components are chained together with
   negligible-weight edges between their smallest-id vertices; the splice
   guard recomputes the true cost on the full graph, so that distortion
   cannot leak into the accepted solution. *)
let boundary_resolve_level csr hy assignment ~slack ~boundary_max ~solver_options =
  let flags = Refine.boundary csr assignment in
  let k = ref 0 in
  Array.iter (fun b -> if b then incr k) flags;
  if !k < 2 || !k > boundary_max then None
  else begin
    let kk = !k in
    let ids = Array.make kk 0 in
    let sub = Array.make (Csr.n csr) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun v b ->
        if b then begin
          ids.(!next) <- v;
          sub.(v) <- !next;
          incr next
        end)
      flags;
    try
      let bld = Graph.Builder.create kk in
      let parent = Array.init kk (fun i -> i) in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      Csr.iter_edges
        (fun u v w ->
          if sub.(u) >= 0 && sub.(v) >= 0 then begin
            Graph.Builder.add_edge bld sub.(u) sub.(v) w;
            let ru = find sub.(u) and rv = find sub.(v) in
            if ru <> rv then parent.(ru) <- rv
          end)
        csr;
      let prev = ref (-1) in
      for i = 0 to kk - 1 do
        if find i = i then begin
          if !prev >= 0 then Graph.Builder.add_edge bld !prev i 1e-9;
          prev := i
        end
      done;
      let demands = Array.map (Csr.vertex_weight csr) ids in
      let sub_inst = Instance.create (Graph.Builder.build bld) ~demands hy in
      let sol = Solver.solve ~options:solver_options sub_inst in
      let candidate = Array.copy assignment in
      Array.iteri (fun i v -> candidate.(v) <- sol.Pipeline.assignment.(i)) ids;
      let before = Refine.cost csr hy assignment in
      let after = Refine.cost csr hy candidate in
      if after < before -. 1e-9 && Refine.in_band csr hy candidate ~slack then
        Some (candidate, before -. after)
      else None
    with _ ->
      (* The sub-instance can be unsolvable under the exact options (e.g.
         [Infeasible] after retry, or a super-vertex demand the ragged
         validation rejects); the re-solve is opportunistic, so skip it. *)
      None
  end

(* Per-level refinement, shared verbatim between the cold [solve] and the
   incremental session path so the two cannot drift. *)
type refine_acc = {
  mutable a_reports : level_report list;  (* finest-first once the walk ends *)
  mutable a_total_moves : int;
  mutable a_fm_passes : int;
  mutable a_fm_moves : int;
  mutable a_fm_rollbacks : int;
  mutable a_fm_boundary : int;
}

let new_acc () =
  {
    a_reports = [];
    a_total_moves = 0;
    a_fm_passes = 0;
    a_fm_moves = 0;
    a_fm_rollbacks = 0;
    a_fm_boundary = 0;
  }

let is_fm options =
  match options.refine_algo with Refine.Fm _ -> true | Refine.Greedy -> false

let refine_level options hy ~slack ~level (lvl : Coarsen.level) projected acc =
  let cost_before = Refine.cost lvl.Coarsen.fine hy projected in
  let refined, (st : Refine.stats) =
    match options.refine_algo with
    | Refine.Greedy ->
      Refine.refine lvl.Coarsen.fine hy projected ~slack
        ~max_passes:options.refine_passes
    | Refine.Fm { hill_climb } ->
      (* Stacked refinement: FM polishes the greedy fixed point, so
         positive-only FM is never worse than the greedy engine BY
         CONSTRUCTION (every FM move has positive gain from greedy's
         endpoint) and hill-climbing escapes the single-move local
         minimum both engines share.  Cold-started FM explores better
         on average but loses to greedy on a third of instances —
         the warm start is what makes the E20 dominance uncondi-
         tional. *)
      let warm, (gst : Refine.stats) =
        Refine.refine lvl.Coarsen.fine hy projected ~slack
          ~max_passes:options.refine_passes
      in
      let refined, (fst : Refine.stats) =
        Refine.refine_fm lvl.Coarsen.fine hy warm ~slack
          ~max_passes:options.refine_passes ~hill_climb ()
      in
      ( refined,
        {
          Refine.passes = gst.Refine.passes + fst.Refine.passes;
          moves = gst.Refine.moves + fst.Refine.moves;
          gain = gst.Refine.gain +. fst.Refine.gain;
          rollbacks = fst.Refine.rollbacks;
        } )
  in
  let refined, extra_gain, resolved =
    if not (is_fm options && options.boundary_resolve) then (refined, 0., false)
    else
      match
        boundary_resolve_level lvl.Coarsen.fine hy refined ~slack
          ~boundary_max:options.boundary_max ~solver_options:options.solver
      with
      | None -> (refined, 0., false)
      | Some (spliced, g) ->
        acc.a_fm_boundary <- acc.a_fm_boundary + 1;
        (spliced, g, true)
  in
  let cost_after = Refine.cost lvl.Coarsen.fine hy refined in
  acc.a_reports <-
    {
      level;
      n = Csr.n lvl.Coarsen.fine;
      m = Csr.m lvl.Coarsen.fine;
      moves = st.Refine.moves;
      gain = st.Refine.gain +. extra_gain;
      rollbacks = st.Refine.rollbacks;
      cost_before;
      cost_after;
      boundary_resolved = resolved;
    }
    :: acc.a_reports;
  acc.a_total_moves <- acc.a_total_moves + st.Refine.moves;
  Obs.gauge
    (Printf.sprintf "multilevel.refine_gain.level%d" level)
    (st.Refine.gain +. extra_gain);
  if is_fm options then begin
    acc.a_fm_passes <- acc.a_fm_passes + st.Refine.passes;
    acc.a_fm_moves <- acc.a_fm_moves + st.Refine.moves;
    acc.a_fm_rollbacks <- acc.a_fm_rollbacks + st.Refine.rollbacks;
    Obs.gauge
      (Printf.sprintf "refine.fm.cost_delta.level%d" level)
      (cost_before -. cost_after)
  end;
  options.on_level level slack lvl.Coarsen.fine refined;
  refined

let emit_fm_counters options acc ~bytes_before =
  if is_fm options then begin
    Obs.count "refine.fm.passes" acc.a_fm_passes;
    Obs.count "refine.fm.moves" acc.a_fm_moves;
    Obs.count "refine.fm.rollbacks" acc.a_fm_rollbacks;
    Obs.count "refine.fm.boundary_resolves" acc.a_fm_boundary;
    Obs.count "refine.fm.bytes_allocated"
      (int_of_float (Gc.allocated_bytes () -. bytes_before))
  end

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.span "multilevel.solve" @@ fun () ->
  let hy = inst.Instance.hierarchy in
  let eps = options.solver.Pipeline.eps in
  let seed = options.solver.Pipeline.seed in
  (* Coarsening must never grow a super-vertex past what the SMALLEST leaf
     can host, or projection could strand it on an undersized leaf; on
     regular trees min = max, preserving historical chain cache keys. *)
  let max_weight = Hierarchy.min_leaf_capacity hy in
  let fine =
    Obs.span "multilevel.csr_build" (fun () ->
        let before = Gc.allocated_bytes () in
        let csr = Csr.of_graph ~vwgt:inst.Instance.demands inst.Instance.graph in
        (* CI's multilevel smoke divides these two counters to enforce the
           bytes-per-edge ceiling in test/perf_budget.json
           ("csr.build_bytes_per_edge_max"). *)
        Obs.count "multilevel.csr_build_bytes"
          (int_of_float (Gc.allocated_bytes () -. before));
        Obs.count "multilevel.csr_build_edges" (Csr.m csr);
        csr)
  in
  let chain, hierarchy_cached =
    if Csr.n fine <= options.threshold then ([], false)
    else begin
      let key =
        chain_key fine ~threshold:options.threshold ~max_levels:options.max_levels ~seed
          ~max_weight
      in
      match with_cache (fun () -> Lru.find cache key) with
      | Some c -> (c, true)
      | None ->
        let rng = Prng.create seed in
        let c =
          Obs.span "multilevel.coarsen" (fun () ->
              Coarsen.build rng fine ~threshold:options.threshold
                ~max_levels:options.max_levels ~max_weight)
        in
        with_cache (fun () -> Lru.add cache key c);
        (c, false)
    end
  in
  let coarsest = Coarsen.coarsest ~fine chain in
  let coarse_inst =
    if chain = [] then inst
    else
      Instance.create (Csr.to_graph coarsest)
        ~demands:(Array.init (Csr.n coarsest) (Csr.vertex_weight coarsest))
        hy
  in
  let coarse_sol =
    Obs.span "multilevel.coarse_solve" (fun () ->
        Solver.solve ~options:options.solver coarse_inst)
  in
  let coarse_certificate = Verify.certify coarse_inst coarse_sol.Pipeline.assignment ~eps in
  let slack = coarse_certificate.Verify.theorem_bound in
  (* Uncoarsen: walk the chain coarsest-to-finest, projecting through each
     cmap and refining within the certified band. *)
  let acc = new_acc () in
  (* CI's refinement smoke divides this by nothing — it is an absolute
     per-solve ceiling in test/perf_budget.json ("refine.fm.bytes_allocated_max"). *)
  let refine_bytes_before = Gc.allocated_bytes () in
  let assignment =
    Obs.span "multilevel.refine" @@ fun () ->
    List.fold_left
      (fun parts (lvl : Coarsen.level) ->
        let projected =
          Array.init (Csr.n lvl.Coarsen.fine) (fun v -> parts.(lvl.Coarsen.cmap.(v)))
        in
        if options.refine_passes <= 0 then projected
        else begin
          let level = List.length chain - 1 - List.length acc.a_reports in
          refine_level options hy ~slack ~level lvl projected acc
        end)
      coarse_sol.Pipeline.assignment (List.rev chain)
  in
  (* FM-only telemetry keeps the greedy path's metrics schema — and its
     goldens — byte-identical. *)
  emit_fm_counters options acc ~bytes_before:refine_bytes_before;
  let levels = List.length chain in
  let ratio =
    if Csr.n coarsest = 0 then 1.
    else float_of_int (Csr.n fine) /. float_of_int (Csr.n coarsest)
  in
  Obs.count "multilevel.solves" 1;
  Obs.count "multilevel.refine_moves" acc.a_total_moves;
  Obs.count (if hierarchy_cached then "multilevel.cache_hit" else "multilevel.cache_miss") 1;
  Obs.gauge "multilevel.levels" (float_of_int levels);
  Obs.gauge "multilevel.coarsening_ratio" ratio;
  let solution =
    if chain = [] then coarse_sol
    else
      {
        coarse_sol with
        Pipeline.assignment;
        cost = Cost.assignment_cost inst assignment;
        max_violation = Cost.max_violation inst assignment;
      }
  in
  {
    solution;
    coarse_certificate;
    coarse_n = Csr.n coarsest;
    levels;
    coarsening_ratio = ratio;
    level_reports = acc.a_reports;
    hierarchy_cached;
  }

(* ---- incremental re-solve sessions (docs/INCREMENTAL.md) ----

   The incremental engine reruns the same prepare/coarsen/solve/refine flow
   as [solve], with three reuse levers threaded through it:

   - [Coarsen.rebuild] splices the cached chain suffix once the mapped
     weight delta contracts away (matchings are recomputed per level, so the
     result is bit-identical to a cold [Coarsen.build]);
   - the coarse exact solve goes through [Pipeline.run_incremental], whose
     per-subtree Merkle snapshots recompute only the dirty cone of each
     decomposition tree — and is skipped outright when the coarsest graph is
     bit-identical to the previous update's;
   - refinement walks coarsest-to-finest and, while the input partition and
     the level's graph both match the previous update, splices the cached
     refined parts instead of re-running the engines.

   All three levers preserve bit-identity with a cold [solve] on the
   post-delta instance (differentially tested in test_incremental.ml). *)

module Delta = Hgp_core.Delta

type prev_state = {
  p_chain : Coarsen.chain;
  p_coarse_sol : Pipeline.solution;
  p_level_parts : int array array; (* refined parts, indexed by level *)
  p_level_costs : float array; (* cost after refinement, by level *)
  p_total_nodes : int; (* resolved+reused DP tree nodes of the last solve *)
}

type incr_run = {
  i_result : result;
  i_chain : Coarsen.chain;
  i_coarse_sol : Pipeline.solution;
  i_level_parts : int array array;
  i_level_costs : float array;
  i_resolved : int;
  i_reused : int;
  i_reused_levels : int;
  i_total_nodes : int;
}

let run_incr ?prev ?(delta_pairs = []) ?fine ~options (inst : Instance.t) =
  let hy = inst.Instance.hierarchy in
  let eps = options.solver.Pipeline.eps in
  let seed = options.solver.Pipeline.seed in
  let max_weight = Hierarchy.min_leaf_capacity hy in
  let fine =
    match fine with
    | Some f -> f
    | None ->
      Obs.span "multilevel.csr_build" (fun () ->
          Csr.of_graph ~vwgt:inst.Instance.demands inst.Instance.graph)
  in
  let rb =
    Obs.span "multilevel.coarsen" @@ fun () ->
    let rng = Prng.create seed in
    match prev with
    | Some p ->
      Coarsen.rebuild rng fine ~prev:p.p_chain ~delta:delta_pairs
        ~threshold:options.threshold ~max_levels:options.max_levels ~max_weight
    | None ->
      let r =
        Coarsen.rebuild rng fine ~prev:[] ~delta:[] ~threshold:options.threshold
          ~max_levels:options.max_levels ~max_weight
      in
      { r with Coarsen.r_coarse_clean = false }
  in
  let chain = rb.Coarsen.r_chain in
  (* On the opening solve, publish under the content key so a later cold
     solve on the same graph hits the hierarchy cache.  Mid-session resolves
     skip the publish: the session carries its own chain, and hashing the
     fine graph again on every delta would put an O(m) fingerprint on the
     incremental fast path just to warm a cache nobody in the session reads.
     A later cold solve merely re-derives the same chain (seed + graph
     content determine it) at cache-miss cost. *)
  if prev = None && Csr.n fine > options.threshold then begin
    let key =
      Obs.span "multilevel.chain_key" @@ fun () ->
      chain_key fine ~threshold:options.threshold ~max_levels:options.max_levels
        ~seed ~max_weight
    in
    with_cache (fun () -> Lru.add cache key chain)
  end;
  let coarsest = Coarsen.coarsest ~fine chain in
  let coarse_inst =
    if chain = [] then inst
    else
      Instance.create (Csr.to_graph coarsest)
        ~demands:(Array.init (Csr.n coarsest) (Csr.vertex_weight coarsest))
        hy
  in
  let coarse_sol, resolved, reused, coarse_reused =
    match prev with
    | Some p when rb.Coarsen.r_coarse_clean ->
      (* same coarsest graph, same demands, same options: the previous
         coarse solution is exactly what a fresh solve would recompute *)
      (p.p_coarse_sol, 0, p.p_total_nodes, true)
    | _ -> (
      Obs.span "multilevel.coarse_solve" @@ fun () ->
      match Pipeline.run_incremental coarse_inst options.solver with
      | Some (sol, (res, reu)) -> (sol, res, reu, false)
      | None ->
        (* infeasible at the base resolution: the retrying solver replicates
           the cold path bit-for-bit *)
        (Solver.solve ~options:options.solver coarse_inst, 0, 0, false))
  in
  let coarse_certificate =
    Verify.certify coarse_inst coarse_sol.Pipeline.assignment ~eps
  in
  let slack = coarse_certificate.Verify.theorem_bound in
  let nlev = List.length chain in
  let rev = Array.of_list (List.rev chain) in
  let level_parts = Array.make (max 1 nlev) [||] in
  let level_costs = Array.make (max 1 nlev) 0. in
  let acc = new_acc () in
  let reused_levels = ref 0 in
  let clean =
    ref
      (match prev with
      | Some p ->
        Array.length p.p_level_parts = nlev
        && p.p_coarse_sol.Pipeline.assignment = coarse_sol.Pipeline.assignment
      | None -> false)
  in
  let refine_bytes_before = Gc.allocated_bytes () in
  let assignment =
    Obs.span "multilevel.refine" @@ fun () ->
    let parts = ref coarse_sol.Pipeline.assignment in
    for i = 0 to nlev - 1 do
      let level = nlev - 1 - i in
      let lvl = rev.(i) in
      match prev with
      | Some p
        when !clean
             && level < Array.length rb.Coarsen.r_fine_clean
             && rb.Coarsen.r_fine_clean.(level) ->
        (* same input partition, same level graph: the previous update's
           refined parts are exactly what refinement would recompute *)
        parts := p.p_level_parts.(level);
        level_parts.(level) <- p.p_level_parts.(level);
        level_costs.(level) <- p.p_level_costs.(level);
        incr reused_levels;
        if options.refine_passes > 0 then begin
          let c = p.p_level_costs.(level) in
          acc.a_reports <-
            {
              level;
              n = Csr.n lvl.Coarsen.fine;
              m = Csr.m lvl.Coarsen.fine;
              moves = 0;
              gain = 0.;
              rollbacks = 0;
              cost_before = c;
              cost_after = c;
              boundary_resolved = false;
            }
            :: acc.a_reports
        end
      | _ ->
        clean := false;
        let projected =
          Array.init (Csr.n lvl.Coarsen.fine) (fun v -> !parts.(lvl.Coarsen.cmap.(v)))
        in
        let refined =
          if options.refine_passes <= 0 then projected
          else refine_level options hy ~slack ~level lvl projected acc
        in
        parts := refined;
        level_parts.(level) <- refined;
        level_costs.(level) <-
          (match acc.a_reports with
          | r :: _ when options.refine_passes > 0 && r.level = level -> r.cost_after
          | _ -> Refine.cost lvl.Coarsen.fine hy refined)
    done;
    !parts
  in
  emit_fm_counters options acc ~bytes_before:refine_bytes_before;
  let ratio =
    if Csr.n coarsest = 0 then 1.
    else float_of_int (Csr.n fine) /. float_of_int (Csr.n coarsest)
  in
  Obs.gauge "multilevel.levels" (float_of_int nlev);
  Obs.gauge "multilevel.coarsening_ratio" ratio;
  let solution =
    if chain = [] then coarse_sol
    else
      {
        coarse_sol with
        Pipeline.assignment;
        cost = Cost.assignment_cost inst assignment;
        max_violation = Cost.max_violation inst assignment;
      }
  in
  let result =
    {
      solution;
      coarse_certificate;
      coarse_n = Csr.n coarsest;
      levels = nlev;
      coarsening_ratio = ratio;
      level_reports = acc.a_reports;
      hierarchy_cached = rb.Coarsen.r_reused_levels > 0;
    }
  in
  let total_nodes =
    match prev with
    | Some p when coarse_reused -> p.p_total_nodes
    | _ -> resolved + reused
  in
  {
    i_result = result;
    i_chain = chain;
    i_coarse_sol = coarse_sol;
    i_level_parts = level_parts;
    i_level_costs = level_costs;
    i_resolved = resolved;
    i_reused = reused;
    i_reused_levels = !reused_levels;
    i_total_nodes = total_nodes;
  }

type session = {
  v_options : options;
  mutable v_inst : Instance.t;
  mutable v_assignment : int array;
  mutable v_state : prev_state;
  mutable v_result : result;
}

type update_report = {
  u_result : result;
  u_churn : float;
  u_resolved_subtrees : int;
  u_reused_subtrees : int;
  u_reused_levels : int;
  u_total_levels : int;
  u_incremental : bool;
  u_certified : bool;
  u_cert_violation : float;
  u_cert_bound : float;
}

let state_of (r : incr_run) =
  {
    p_chain = r.i_chain;
    p_coarse_sol = r.i_coarse_sol;
    p_level_parts = r.i_level_parts;
    p_level_costs = r.i_level_costs;
    p_total_nodes = r.i_total_nodes;
  }

let start_session ?(options = default_options) inst =
  Obs.span "multilevel.solve" @@ fun () ->
  let run = run_incr ~options inst in
  Obs.count "multilevel.solves" 1;
  ( {
      v_options = options;
      v_inst = inst;
      v_assignment = Array.copy run.i_result.solution.Pipeline.assignment;
      v_state = state_of run;
      v_result = run.i_result;
    },
    run.i_result )

let resolve_delta (s : session) (delta : Delta.t) =
  Obs.span "multilevel.incremental" @@ fun () ->
  let incremental = Delta.is_reweight_only delta in
  let inst', mapping =
    Obs.span "multilevel.delta_apply" (fun () -> Delta.apply_mapped s.v_inst delta)
  in
  let run =
    if incremental then begin
      let delta_pairs =
        List.sort_uniq compare
          (List.filter_map
             (function
               | Delta.Reweight_edge (u, v, _) -> Some (min u v, max u v)
               | _ -> None)
             delta)
      in
      (* Reweight-only deltas keep the adjacency structure, so instead of
         rebuilding the fine CSR from scratch (an O(n + m) pass per update)
         we patch the previous level-0 CSR in O(k log degree) —
         [Csr.reweight]'s contract makes the patch bit-identical to
         [Csr.of_graph] on the post-delta graph. *)
      let fine =
        match s.v_state.p_chain with
        | { Coarsen.fine; _ } :: _ when Csr.n fine = Instance.n inst' ->
          let patches =
            List.filter_map
              (function
                | Delta.Reweight_edge (u, v, w) -> Some (u, v, w)
                | _ -> None)
              delta
          in
          Some
            (Csr.reweight fine
               ~total_ew:(Graph.total_weight inst'.Instance.graph)
               patches)
        | _ -> None
      in
      run_incr ~prev:s.v_state ~delta_pairs ?fine ~options:s.v_options inst'
    end
    else
      (* structural change: vertex ids shifted, so cached chains and parts
         no longer align — fall back to a cold multilevel solve *)
      run_incr ~options:s.v_options inst'
  in
  let sol = run.i_result.solution in
  let churn =
    Pipeline.churn_of ~mapping ~old_assignment:s.v_assignment
      ~assignment:sol.Pipeline.assignment ~n_new:(Instance.n inst')
  in
  s.v_inst <- inst';
  s.v_assignment <- Array.copy sol.Pipeline.assignment;
  s.v_state <- state_of run;
  s.v_result <- run.i_result;
  let cert = run.i_result.coarse_certificate in
  Obs.count "incremental.updates" 1;
  Obs.count "incremental.dirty_subtrees" run.i_resolved;
  Obs.count "incremental.reused_subtrees" run.i_reused;
  Obs.count "multilevel.incremental.reused_levels" run.i_reused_levels;
  Obs.gauge "incremental.churn" churn;
  {
    u_result = run.i_result;
    u_churn = churn;
    u_resolved_subtrees = run.i_resolved;
    u_reused_subtrees = run.i_reused;
    u_reused_levels = run.i_reused_levels;
    u_total_levels = run.i_result.levels;
    u_incremental = incremental;
    u_certified = cert.Verify.within_theorem_bound;
    u_cert_violation = cert.Verify.max_violation;
    u_cert_bound = cert.Verify.theorem_bound;
  }

let session_instance s = s.v_inst
let session_options s = s.v_options
let session_assignment s = Array.copy s.v_assignment
let session_result s = s.v_result
