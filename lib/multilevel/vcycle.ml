module Csr = Hgp_graph.Csr
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Pipeline = Hgp_core.Pipeline
module Solver = Hgp_core.Solver
module Verify = Hgp_core.Verify
module Cost = Hgp_core.Cost
module Obs = Hgp_obs.Obs
module Lru = Hgp_util.Lru
module Fingerprint = Hgp_util.Fingerprint
module Prng = Hgp_util.Prng

module Graph = Hgp_graph.Graph

type options = {
  threshold : int;
  max_levels : int;
  refine_passes : int;
  refine_algo : Refine.algo;
  boundary_resolve : bool;
  boundary_max : int;
  on_level : int -> float -> Csr.t -> int array -> unit;
  solver : Pipeline.options;
}

let default_options =
  {
    threshold = 128;
    max_levels = 40;
    refine_passes = 2;
    refine_algo = Refine.Greedy;
    boundary_resolve = false;
    boundary_max = 128;
    on_level = (fun _ _ _ _ -> ());
    solver = Pipeline.default_options;
  }

type level_report = {
  level : int;
  n : int;
  m : int;
  moves : int;
  gain : float;
  rollbacks : int;
  cost_before : float;
  cost_after : float;
  boundary_resolved : bool;
}

type result = {
  solution : Pipeline.solution;
  coarse_certificate : Verify.report;
  coarse_n : int;
  levels : int;
  coarsening_ratio : float;
  level_reports : level_report list;
  hierarchy_cached : bool;
}

(* ---- hierarchy cache ----
   Chains hold the full per-level CSR arrays, so a handful of entries is
   plenty; the win is the batch server re-solving the same graph under
   different demands/options. *)
let cache : (Fingerprint.t, Coarsen.chain) Lru.t = Lru.create ~capacity:4
let cache_lock = Mutex.create ()

let with_cache f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let () =
  Pipeline.register_external_cache ~name:"hierarchy"
    ~stats:(fun () -> with_cache (fun () -> Lru.stats cache))
    ~clear:(fun () -> with_cache (fun () -> Lru.clear cache))
    ~reset_stats:(fun () -> with_cache (fun () -> Lru.reset_stats cache))

let chain_key fine ~threshold ~max_levels ~seed ~max_weight =
  Csr.fingerprint fine
  |> Fun.flip Fingerprint.add_string "multilevel.chain"
  |> Fun.flip Fingerprint.add_int threshold
  |> Fun.flip Fingerprint.add_int max_levels
  |> Fun.flip Fingerprint.add_int seed
  |> Fun.flip Fingerprint.add_float max_weight

(* ---- boundary re-solve (KaHIP-style local exact V-cycle) ----

   Extract the induced subgraph of the level's boundary vertices, re-solve it
   exactly through the staged pipeline (hitting the same artifact caches and
   worker-domain pool as any other solve), and splice the sub-assignment back
   only when it strictly improves the level cost AND the spliced assignment
   stays inside the certified band — so the coarse certificate survives even
   though the exact solver knew nothing about the non-boundary context.

   The sub-instance must be connected ([Decomposition.build] rejects
   disconnected graphs), so components are chained together with
   negligible-weight edges between their smallest-id vertices; the splice
   guard recomputes the true cost on the full graph, so that distortion
   cannot leak into the accepted solution. *)
let boundary_resolve_level csr hy assignment ~slack ~boundary_max ~solver_options =
  let flags = Refine.boundary csr assignment in
  let k = ref 0 in
  Array.iter (fun b -> if b then incr k) flags;
  if !k < 2 || !k > boundary_max then None
  else begin
    let kk = !k in
    let ids = Array.make kk 0 in
    let sub = Array.make (Csr.n csr) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun v b ->
        if b then begin
          ids.(!next) <- v;
          sub.(v) <- !next;
          incr next
        end)
      flags;
    try
      let bld = Graph.Builder.create kk in
      let parent = Array.init kk (fun i -> i) in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      Csr.iter_edges
        (fun u v w ->
          if sub.(u) >= 0 && sub.(v) >= 0 then begin
            Graph.Builder.add_edge bld sub.(u) sub.(v) w;
            let ru = find sub.(u) and rv = find sub.(v) in
            if ru <> rv then parent.(ru) <- rv
          end)
        csr;
      let prev = ref (-1) in
      for i = 0 to kk - 1 do
        if find i = i then begin
          if !prev >= 0 then Graph.Builder.add_edge bld !prev i 1e-9;
          prev := i
        end
      done;
      let demands = Array.map (Csr.vertex_weight csr) ids in
      let sub_inst = Instance.create (Graph.Builder.build bld) ~demands hy in
      let sol = Solver.solve ~options:solver_options sub_inst in
      let candidate = Array.copy assignment in
      Array.iteri (fun i v -> candidate.(v) <- sol.Pipeline.assignment.(i)) ids;
      let before = Refine.cost csr hy assignment in
      let after = Refine.cost csr hy candidate in
      if after < before -. 1e-9 && Refine.in_band csr hy candidate ~slack then
        Some (candidate, before -. after)
      else None
    with _ ->
      (* The sub-instance can be unsolvable under the exact options (e.g.
         [Infeasible] after retry, or a super-vertex demand the ragged
         validation rejects); the re-solve is opportunistic, so skip it. *)
      None
  end

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.span "multilevel.solve" @@ fun () ->
  let hy = inst.Instance.hierarchy in
  let eps = options.solver.Pipeline.eps in
  let seed = options.solver.Pipeline.seed in
  (* Coarsening must never grow a super-vertex past what the SMALLEST leaf
     can host, or projection could strand it on an undersized leaf; on
     regular trees min = max, preserving historical chain cache keys. *)
  let max_weight = Hierarchy.min_leaf_capacity hy in
  let fine =
    Obs.span "multilevel.csr_build" (fun () ->
        let before = Gc.allocated_bytes () in
        let csr = Csr.of_graph ~vwgt:inst.Instance.demands inst.Instance.graph in
        (* CI's multilevel smoke divides these two counters to enforce the
           bytes-per-edge ceiling in test/perf_budget.json
           ("csr.build_bytes_per_edge_max"). *)
        Obs.count "multilevel.csr_build_bytes"
          (int_of_float (Gc.allocated_bytes () -. before));
        Obs.count "multilevel.csr_build_edges" (Csr.m csr);
        csr)
  in
  let chain, hierarchy_cached =
    if Csr.n fine <= options.threshold then ([], false)
    else begin
      let key =
        chain_key fine ~threshold:options.threshold ~max_levels:options.max_levels ~seed
          ~max_weight
      in
      match with_cache (fun () -> Lru.find cache key) with
      | Some c -> (c, true)
      | None ->
        let rng = Prng.create seed in
        let c =
          Obs.span "multilevel.coarsen" (fun () ->
              Coarsen.build rng fine ~threshold:options.threshold
                ~max_levels:options.max_levels ~max_weight)
        in
        with_cache (fun () -> Lru.add cache key c);
        (c, false)
    end
  in
  let coarsest = Coarsen.coarsest ~fine chain in
  let coarse_inst =
    if chain = [] then inst
    else
      Instance.create (Csr.to_graph coarsest)
        ~demands:(Array.init (Csr.n coarsest) (Csr.vertex_weight coarsest))
        hy
  in
  let coarse_sol =
    Obs.span "multilevel.coarse_solve" (fun () ->
        Solver.solve ~options:options.solver coarse_inst)
  in
  let coarse_certificate = Verify.certify coarse_inst coarse_sol.Pipeline.assignment ~eps in
  let slack = coarse_certificate.Verify.theorem_bound in
  (* Uncoarsen: walk the chain coarsest-to-finest, projecting through each
     cmap and refining within the certified band. *)
  let reports = ref [] in
  let total_moves = ref 0 in
  let is_fm = match options.refine_algo with Refine.Fm _ -> true | Refine.Greedy -> false in
  let fm_passes = ref 0
  and fm_moves = ref 0
  and fm_rollbacks = ref 0
  and fm_boundary = ref 0 in
  (* CI's refinement smoke divides this by nothing — it is an absolute
     per-solve ceiling in test/perf_budget.json ("refine.fm.bytes_allocated_max"). *)
  let refine_bytes_before = Gc.allocated_bytes () in
  let assignment =
    Obs.span "multilevel.refine" @@ fun () ->
    List.fold_left
      (fun parts (lvl : Coarsen.level) ->
        let projected =
          Array.init (Csr.n lvl.Coarsen.fine) (fun v -> parts.(lvl.Coarsen.cmap.(v)))
        in
        if options.refine_passes <= 0 then projected
        else begin
          let level = List.length chain - 1 - List.length !reports in
          let cost_before = Refine.cost lvl.Coarsen.fine hy projected in
          let refined, (st : Refine.stats) =
            match options.refine_algo with
            | Refine.Greedy ->
              Refine.refine lvl.Coarsen.fine hy projected ~slack
                ~max_passes:options.refine_passes
            | Refine.Fm { hill_climb } ->
              (* Stacked refinement: FM polishes the greedy fixed point, so
                 positive-only FM is never worse than the greedy engine BY
                 CONSTRUCTION (every FM move has positive gain from greedy's
                 endpoint) and hill-climbing escapes the single-move local
                 minimum both engines share.  Cold-started FM explores better
                 on average but loses to greedy on a third of instances —
                 the warm start is what makes the E20 dominance uncondi-
                 tional. *)
              let warm, (gst : Refine.stats) =
                Refine.refine lvl.Coarsen.fine hy projected ~slack
                  ~max_passes:options.refine_passes
              in
              let refined, (fst : Refine.stats) =
                Refine.refine_fm lvl.Coarsen.fine hy warm ~slack
                  ~max_passes:options.refine_passes ~hill_climb ()
              in
              ( refined,
                {
                  Refine.passes = gst.Refine.passes + fst.Refine.passes;
                  moves = gst.Refine.moves + fst.Refine.moves;
                  gain = gst.Refine.gain +. fst.Refine.gain;
                  rollbacks = fst.Refine.rollbacks;
                } )
          in
          let refined, extra_gain, resolved =
            if not (is_fm && options.boundary_resolve) then (refined, 0., false)
            else
              match
                boundary_resolve_level lvl.Coarsen.fine hy refined ~slack
                  ~boundary_max:options.boundary_max ~solver_options:options.solver
              with
              | None -> (refined, 0., false)
              | Some (spliced, g) ->
                incr fm_boundary;
                (spliced, g, true)
          in
          let cost_after = Refine.cost lvl.Coarsen.fine hy refined in
          reports :=
            {
              level;
              n = Csr.n lvl.Coarsen.fine;
              m = Csr.m lvl.Coarsen.fine;
              moves = st.Refine.moves;
              gain = st.Refine.gain +. extra_gain;
              rollbacks = st.Refine.rollbacks;
              cost_before;
              cost_after;
              boundary_resolved = resolved;
            }
            :: !reports;
          total_moves := !total_moves + st.Refine.moves;
          Obs.gauge
            (Printf.sprintf "multilevel.refine_gain.level%d" level)
            (st.Refine.gain +. extra_gain);
          if is_fm then begin
            fm_passes := !fm_passes + st.Refine.passes;
            fm_moves := !fm_moves + st.Refine.moves;
            fm_rollbacks := !fm_rollbacks + st.Refine.rollbacks;
            Obs.gauge
              (Printf.sprintf "refine.fm.cost_delta.level%d" level)
              (cost_before -. cost_after)
          end;
          options.on_level level slack lvl.Coarsen.fine refined;
          refined
        end)
      coarse_sol.Pipeline.assignment (List.rev chain)
  in
  (* FM-only telemetry keeps the greedy path's metrics schema — and its
     goldens — byte-identical. *)
  if is_fm then begin
    Obs.count "refine.fm.passes" !fm_passes;
    Obs.count "refine.fm.moves" !fm_moves;
    Obs.count "refine.fm.rollbacks" !fm_rollbacks;
    Obs.count "refine.fm.boundary_resolves" !fm_boundary;
    Obs.count "refine.fm.bytes_allocated"
      (int_of_float (Gc.allocated_bytes () -. refine_bytes_before))
  end;
  let levels = List.length chain in
  let ratio =
    if Csr.n coarsest = 0 then 1.
    else float_of_int (Csr.n fine) /. float_of_int (Csr.n coarsest)
  in
  Obs.count "multilevel.solves" 1;
  Obs.count "multilevel.refine_moves" !total_moves;
  Obs.count (if hierarchy_cached then "multilevel.cache_hit" else "multilevel.cache_miss") 1;
  Obs.gauge "multilevel.levels" (float_of_int levels);
  Obs.gauge "multilevel.coarsening_ratio" ratio;
  let solution =
    if chain = [] then coarse_sol
    else
      {
        coarse_sol with
        Pipeline.assignment;
        cost = Cost.assignment_cost inst assignment;
        max_violation = Cost.max_violation inst assignment;
      }
  in
  {
    solution;
    coarse_certificate;
    coarse_n = Csr.n coarsest;
    levels;
    coarsening_ratio = ratio;
    level_reports = !reports;
    hierarchy_cached;
  }
