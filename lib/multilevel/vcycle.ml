module Csr = Hgp_graph.Csr
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Pipeline = Hgp_core.Pipeline
module Solver = Hgp_core.Solver
module Verify = Hgp_core.Verify
module Cost = Hgp_core.Cost
module Obs = Hgp_obs.Obs
module Lru = Hgp_util.Lru
module Fingerprint = Hgp_util.Fingerprint
module Prng = Hgp_util.Prng

type options = {
  threshold : int;
  max_levels : int;
  refine_passes : int;
  solver : Pipeline.options;
}

let default_options =
  { threshold = 128; max_levels = 40; refine_passes = 2; solver = Pipeline.default_options }

type level_report = {
  level : int;
  n : int;
  m : int;
  moves : int;
  gain : float;
}

type result = {
  solution : Pipeline.solution;
  coarse_certificate : Verify.report;
  coarse_n : int;
  levels : int;
  coarsening_ratio : float;
  level_reports : level_report list;
  hierarchy_cached : bool;
}

(* ---- hierarchy cache ----
   Chains hold the full per-level CSR arrays, so a handful of entries is
   plenty; the win is the batch server re-solving the same graph under
   different demands/options. *)
let cache : (Fingerprint.t, Coarsen.chain) Lru.t = Lru.create ~capacity:4
let cache_lock = Mutex.create ()

let with_cache f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let () =
  Pipeline.register_external_cache ~name:"hierarchy"
    ~stats:(fun () -> with_cache (fun () -> Lru.stats cache))
    ~clear:(fun () -> with_cache (fun () -> Lru.clear cache))
    ~reset_stats:(fun () -> with_cache (fun () -> Lru.reset_stats cache))

let chain_key fine ~threshold ~max_levels ~seed ~max_weight =
  Csr.fingerprint fine
  |> Fun.flip Fingerprint.add_string "multilevel.chain"
  |> Fun.flip Fingerprint.add_int threshold
  |> Fun.flip Fingerprint.add_int max_levels
  |> Fun.flip Fingerprint.add_int seed
  |> Fun.flip Fingerprint.add_float max_weight

let solve ?(options = default_options) (inst : Instance.t) =
  Obs.span "multilevel.solve" @@ fun () ->
  let hy = inst.Instance.hierarchy in
  let eps = options.solver.Pipeline.eps in
  let seed = options.solver.Pipeline.seed in
  (* Coarsening must never grow a super-vertex past what the SMALLEST leaf
     can host, or projection could strand it on an undersized leaf; on
     regular trees min = max, preserving historical chain cache keys. *)
  let max_weight = Hierarchy.min_leaf_capacity hy in
  let fine =
    Obs.span "multilevel.csr_build" (fun () ->
        let before = Gc.allocated_bytes () in
        let csr = Csr.of_graph ~vwgt:inst.Instance.demands inst.Instance.graph in
        (* CI's multilevel smoke divides these two counters to enforce the
           bytes-per-edge ceiling in test/perf_budget.json
           ("csr.build_bytes_per_edge_max"). *)
        Obs.count "multilevel.csr_build_bytes"
          (int_of_float (Gc.allocated_bytes () -. before));
        Obs.count "multilevel.csr_build_edges" (Csr.m csr);
        csr)
  in
  let chain, hierarchy_cached =
    if Csr.n fine <= options.threshold then ([], false)
    else begin
      let key =
        chain_key fine ~threshold:options.threshold ~max_levels:options.max_levels ~seed
          ~max_weight
      in
      match with_cache (fun () -> Lru.find cache key) with
      | Some c -> (c, true)
      | None ->
        let rng = Prng.create seed in
        let c =
          Obs.span "multilevel.coarsen" (fun () ->
              Coarsen.build rng fine ~threshold:options.threshold
                ~max_levels:options.max_levels ~max_weight)
        in
        with_cache (fun () -> Lru.add cache key c);
        (c, false)
    end
  in
  let coarsest = Coarsen.coarsest ~fine chain in
  let coarse_inst =
    if chain = [] then inst
    else
      Instance.create (Csr.to_graph coarsest)
        ~demands:(Array.init (Csr.n coarsest) (Csr.vertex_weight coarsest))
        hy
  in
  let coarse_sol =
    Obs.span "multilevel.coarse_solve" (fun () ->
        Solver.solve ~options:options.solver coarse_inst)
  in
  let coarse_certificate = Verify.certify coarse_inst coarse_sol.Pipeline.assignment ~eps in
  let slack = coarse_certificate.Verify.theorem_bound in
  (* Uncoarsen: walk the chain coarsest-to-finest, projecting through each
     cmap and refining within the certified band. *)
  let reports = ref [] in
  let total_moves = ref 0 in
  let assignment =
    Obs.span "multilevel.refine" @@ fun () ->
    List.fold_left
      (fun parts (lvl : Coarsen.level) ->
        let projected =
          Array.init (Csr.n lvl.Coarsen.fine) (fun v -> parts.(lvl.Coarsen.cmap.(v)))
        in
        if options.refine_passes <= 0 then projected
        else begin
          let refined, (st : Refine.stats) =
            Refine.refine lvl.Coarsen.fine hy projected ~slack
              ~max_passes:options.refine_passes
          in
          let level = List.length chain - 1 - List.length !reports in
          reports :=
            {
              level;
              n = Csr.n lvl.Coarsen.fine;
              m = Csr.m lvl.Coarsen.fine;
              moves = st.Refine.moves;
              gain = st.Refine.gain;
            }
            :: !reports;
          total_moves := !total_moves + st.Refine.moves;
          Obs.gauge (Printf.sprintf "multilevel.refine_gain.level%d" level) st.Refine.gain;
          refined
        end)
      coarse_sol.Pipeline.assignment (List.rev chain)
  in
  let levels = List.length chain in
  let ratio =
    if Csr.n coarsest = 0 then 1.
    else float_of_int (Csr.n fine) /. float_of_int (Csr.n coarsest)
  in
  Obs.count "multilevel.solves" 1;
  Obs.count "multilevel.refine_moves" !total_moves;
  Obs.count (if hierarchy_cached then "multilevel.cache_hit" else "multilevel.cache_miss") 1;
  Obs.gauge "multilevel.levels" (float_of_int levels);
  Obs.gauge "multilevel.coarsening_ratio" ratio;
  let solution =
    if chain = [] then coarse_sol
    else
      {
        coarse_sol with
        Pipeline.assignment;
        cost = Cost.assignment_cost inst assignment;
        max_violation = Cost.max_violation inst assignment;
      }
  in
  {
    solution;
    coarse_certificate;
    coarse_n = Csr.n coarsest;
    levels;
    coarsening_ratio = ratio;
    level_reports = !reports;
    hierarchy_cached;
  }
