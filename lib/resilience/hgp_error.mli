(** Structured error taxonomy for the solve pipeline.

    Every failure a caller can meaningfully react to is a variant of {!t}
    instead of a stringly [Failure]: parse errors carry line numbers, deadline
    errors carry the budget and the stage that blew it, per-tree failures
    carry the ensemble index.  The taxonomy is the contract between the
    pipeline and the {e supervisor} ([Solver.solve_supervised]), which turns
    recoverable variants into degradation-ladder steps, and between the CLI
    and its callers, which see one documented exit code per class (see
    [docs/ROBUSTNESS.md]). *)

type t =
  | Parse of { line : int option; context : string; msg : string }
      (** malformed instance/graph text; [line] is 1-based when known,
          [context] names the section or field ("hierarchy", "demands",
          "graph", "instance") *)
  | Io_error of { path : string; msg : string }
      (** the OS said no: missing file, permission, short read *)
  | Invalid_input of { context : string; msg : string }
      (** structurally invalid in-memory data handed to a builder (dangling
          edge endpoint, negative weight, length mismatch); [context] names
          the constructor ("csr.of_arrays", "csr.contract", ...) *)
  | Infeasible of { resolution : int; retried : bool; msg : string }
      (** the quantized instance admits no packing; [retried] is set once the
          higher-resolution retry has also failed, so the instance is
          overloaded beyond rounding artifacts *)
  | Deadline_exceeded of { budget_ms : float; elapsed_ms : float; stage : string }
      (** a cooperative cancellation point fired; [stage] names the loop that
          noticed ("tree_dp", "ensemble", ...) *)
  | Tree_failure of { tree_index : int; stage : string; msg : string }
      (** one ensemble member failed (decomposition build or DP); the solve
          can proceed on the survivors *)
  | Domain_crash of { tree_index : int; msg : string }
      (** an OCaml 5 domain running one ensemble member died; isolated the
          same way as {!Tree_failure} *)
  | Fault_injected of { site : string; msg : string }
      (** a {!Faults} crash action fired at the named site (testing only) *)
  | Overloaded of { queued : int; limit : int }
      (** the batch server's bounded admission queue is full; the request was
          rejected without being scheduled — retry later (see
          [docs/SERVING.md]) *)
  | Internal of { stage : string; msg : string }
      (** an unexpected exception captured at a supervision boundary *)

exception Error of t

(** [error e] raises {!Error}[ e]. *)
val error : t -> 'a

(** [label e] is a stable kebab-case class name ("parse", "io",
    "invalid-input", "infeasible", "deadline", "tree-failure",
    "domain-crash", "fault", "overloaded", "internal") used in telemetry
    counters, batch-response error fields and logs. *)
val label : t -> string

(** [exit_code e] is the documented CLI exit code for the class (sysexits
    flavored): parse 65, io 66, infeasible 69, internal-ish 70, deadline and
    overloaded 75 (both are EX_TEMPFAIL: retry later). *)
val exit_code : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [message_of_exn exn] renders any exception for embedding into a variant's
    [msg] field ({!Error} payloads render via {!to_string}). *)
val message_of_exn : exn -> string
