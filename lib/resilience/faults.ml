module Obs = Hgp_obs.Obs

type action = Crash | Delay_ms of float | Corrupt

type site_plan = { site : string; action : action; nth : int option }
type t = { seed : int; sites : site_plan list }

let known_sites =
  [
    "instance_io.parse";
    "instance_io.load";
    "demand.quantize";
    "decomposition.build";
    "ensemble_cache.lookup";
    "tree_dp.solve";
    "feasible.pack";
  ]

(* Armed plan plus one hit counter per site, allocated at arm time so the
   post-arm hot path never mutates the table (domain-safe). *)
type armed_state = { plan : t; hits : (string * int Atomic.t) list }

let state : armed_state option Atomic.t = Atomic.make None

let parse s =
  let ( let* ) = Result.bind in
  let parse_item acc item =
    let* acc = acc in
    match String.index_opt item '=' with
    | None -> Error (Printf.sprintf "fault plan: %S is not KEY=VALUE" item)
    | Some eq -> (
      let key = String.trim (String.sub item 0 eq) in
      let value = String.trim (String.sub item (eq + 1) (String.length item - eq - 1)) in
      if key = "seed" then
        match int_of_string_opt value with
        | Some seed -> Ok { acc with seed }
        | None -> Error (Printf.sprintf "fault plan: bad seed %S" value)
      else if not (List.mem key known_sites) then
        Error
          (Printf.sprintf "fault plan: unknown site %S (known: %s)" key
             (String.concat ", " known_sites))
      else
        let value, nth =
          match String.index_opt value '@' with
          | None -> (value, Ok None)
          | Some at ->
            let n = String.sub value (at + 1) (String.length value - at - 1) in
            ( String.sub value 0 at,
              match int_of_string_opt n with
              | Some n when n >= 1 -> Ok (Some n)
              | _ -> Error (Printf.sprintf "fault plan: bad hit selector @%s" n) )
        in
        let* nth = nth in
        let* action =
          if value = "crash" then Ok Crash
          else if value = "corrupt" then Ok Corrupt
          else if String.length value > 6 && String.sub value 0 6 = "delay:" then
            match float_of_string_opt (String.sub value 6 (String.length value - 6)) with
            | Some ms when ms >= 0. -> Ok (Delay_ms ms)
            | _ -> Error (Printf.sprintf "fault plan: bad delay %S" value)
          else Error (Printf.sprintf "fault plan: unknown action %S" value)
        in
        Ok { acc with sites = { site = key; action; nth } :: acc.sites })
  in
  let items =
    String.split_on_char ';' s |> List.map String.trim |> List.filter (fun x -> x <> "")
  in
  let* plan = List.fold_left parse_item (Ok { seed = 1; sites = [] }) items in
  if plan.sites = [] then Error "fault plan: no sites armed"
  else Ok { plan with sites = List.rev plan.sites }

let arm plan =
  let hits = List.map (fun sp -> (sp.site, Atomic.make 0)) plan.sites in
  Atomic.set state (Some { plan; hits })

let disarm () = Atomic.set state None
let armed () = Option.map (fun a -> a.plan) (Atomic.get state)

let env_var = "HGP_FAULT_PLAN"

let from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok false
  | Some s -> (
    match parse s with
    | Ok plan ->
      arm plan;
      Ok true
    | Error e -> Error e)

let with_plan plan f =
  let prev = Atomic.get state in
  arm plan;
  Fun.protect ~finally:(fun () -> Atomic.set state prev) f

(* Busy-wait: millisecond-scale delays for deadline tests; no Unix dep. *)
let spin_ms ms =
  let target = Int64.add (Obs.now_ns ()) (Int64.of_float (ms *. 1e6)) in
  while Obs.now_ns () < target do
    Domain.cpu_relax ()
  done

(* splitmix64-style mixer for seeded, per-hit corruption choices. *)
let mix seed site hit =
  let z = ref (Int64.of_int (seed + (31 * hit) + Hashtbl.hash site)) in
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xbf58476d1ce4e5b9L;
  z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94d049bb133111ebL;
  Int64.to_int (Int64.logand (Int64.logxor !z (Int64.shift_right_logical !z 31)) 0x3fffffffL)

(* Returns the 1-based hit number when [site] is armed and this hit is
   selected, restricted to entries whose action satisfies [select]. *)
let hit_selected site ~select =
  match Atomic.get state with
  | None -> None
  | Some { plan; hits } -> (
    match List.find_opt (fun sp -> sp.site = site && select sp.action) plan.sites with
    | None -> None
    | Some sp -> (
      let counter = List.assoc site hits in
      let hit = 1 + Atomic.fetch_and_add counter 1 in
      match sp.nth with
      | Some n when n <> hit -> None
      | _ -> Some (sp.action, hit)))

let fire site =
  if Atomic.get state <> None then
    match hit_selected site ~select:(function Corrupt -> false | _ -> true) with
    | None -> ()
    | Some (Crash, hit) ->
      Obs.count ("faults.fired." ^ site) 1;
      Hgp_error.error
        (Hgp_error.Fault_injected
           { site; msg = Printf.sprintf "crash armed at hit %d" hit })
    | Some (Delay_ms ms, _) ->
      Obs.count ("faults.fired." ^ site) 1;
      spin_ms ms
    | Some (Corrupt, _) -> ()

let corrupt_index site ~len =
  if len <= 0 || Atomic.get state = None then None
  else
    match hit_selected site ~select:(function Corrupt -> true | _ -> false) with
    | None -> None
    | Some (_, hit) ->
      Obs.count ("faults.fired." ^ site) 1;
      let seed = match armed () with Some p -> p.seed | None -> 1 in
      Some (mix seed site hit mod len)
