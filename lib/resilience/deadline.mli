(** Cooperative deadlines and cancellation.

    A token couples a monotonic start time, an optional wall-clock budget and
    an explicit cancellation flag.  It is immutable except for the flag (an
    [Atomic.t]), so one token can be shared by every domain of a parallel
    ensemble solve: cancelling it (or the budget running out) is observed by
    all of them at their next check point.

    Checking is {e cooperative}: nothing is pre-empted.  Long-running loops
    call {!check} (or the strided {!tick}) at natural boundaries; the solver
    does so between ensemble trees, per DP node, and inside the DP merge
    loop. *)

type t

(** A token that never expires and is never cancelled.  {!check} on it is a
    single atomic load — safe in hot loops. *)
val none : t

(** [of_ms budget] starts the clock now; the token expires [budget]
    milliseconds later.  [budget <= 0] expires immediately. *)
val of_ms : float -> t

(** [of_budget_ms opt] is {!none} for [None] and {!of_ms} for [Some]. *)
val of_budget_ms : float option -> t

(** [cancel t] trips the token by hand (e.g. a sibling rung already
    produced an answer).  Idempotent; visible across domains. *)
val cancel : t -> unit

val cancelled : t -> bool

(** [expired t] is true once the budget has run out {e or} the token was
    cancelled. *)
val expired : t -> bool

val budget_ms : t -> float option

(** [elapsed_ms t] is time since the token was created (0 for {!none}). *)
val elapsed_ms : t -> float

(** [remaining_ms t] is [None] when unlimited, otherwise the (possibly
    negative) milliseconds left. *)
val remaining_ms : t -> float option

(** [check t ~stage] raises {!Hgp_error.Error}
    ([Deadline_exceeded {stage; _}]) if [t] is expired, else returns. *)
val check : t -> stage:string -> unit

(** [tick t ~stage ~count ~mask] increments [count] and runs {!check} only
    when [!count land mask = 0] — the hot-loop form: one increment and one
    branch on most iterations, a clock read every [mask + 1] iterations. *)
val tick : t -> stage:string -> count:int ref -> mask:int -> unit
