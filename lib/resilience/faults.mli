(** Deterministic fault injection for resilience testing.

    The pipeline is instrumented with {e named sites} (see {!known_sites}).
    A {e plan} arms an action at one or more sites; when execution reaches an
    armed site the action fires:

    - [crash]: raise {!Hgp_error.Error} ([Fault_injected _]) — models a bug
      or a dead dependency at that point;
    - [delay:MS]: busy-wait [MS] milliseconds — models a stall, for
      exercising deadlines;
    - [corrupt]: the site corrupts its own data in a documented, seeded way
      (e.g. the DP zeroes one [kappa] entry, the packer drops one leaf) —
      models silent data corruption that only downstream certification can
      catch.

    Plans are fully deterministic: which hit fires is chosen by the plan
    ([@N] selects the Nth hit of that site only; default every hit), and
    which element gets corrupted is derived from the plan's seed.  Every
    fired action bumps an [Obs] counter [faults.fired.<site>].

    Grammar (also accepted from the [HGP_FAULT_PLAN] environment variable):
    {v
      plan   ::= item (";" item)*
      item   ::= "seed=" INT | SITE "=" action
      action ::= ("crash" | "delay:" FLOAT | "corrupt") ("@" INT)?
    v}
    Example: [HGP_FAULT_PLAN="seed=7;decomposition.build=crash@2"] crashes
    only the second decomposition build of the process.

    Disarmed (the default), every entry point is one atomic load. *)

type action = Crash | Delay_ms of float | Corrupt

type site_plan = { site : string; action : action; nth : int option }
type t = { seed : int; sites : site_plan list }

(** Sites wired into the pipeline; {!parse} rejects others. *)
val known_sites : string list

val parse : string -> (t, string) result

(** [arm plan] installs the plan process-wide (hit counters reset). *)
val arm : t -> unit

val disarm : unit -> unit
val armed : unit -> t option

(** The environment variable read by {!from_env}: ["HGP_FAULT_PLAN"]. *)
val env_var : string

(** [from_env ()] arms from [HGP_FAULT_PLAN] if set and non-empty.
    [Ok false] when unset, [Ok true] when armed, [Error _] on a malformed
    plan. *)
val from_env : unit -> (bool, string) result

(** [fire site] executes a pending [crash] or [delay] action at [site]
    (no-op otherwise, and for [corrupt] plans — those act through
    {!corrupt_index}). *)
val fire : string -> unit

(** [corrupt_index site ~len] is [Some i] with [0 <= i < len] exactly when a
    [corrupt] action fires at [site] ([len > 0]); the caller applies its
    documented corruption to element [i]. *)
val corrupt_index : string -> len:int -> int option

(** [with_plan plan f] arms, runs [f ()], and restores the previous arming
    state even on exceptions — the test-suite workhorse. *)
val with_plan : t -> (unit -> 'a) -> 'a
