module Obs = Hgp_obs.Obs

type t = {
  start_ns : int64;
  budget_ns : int64 option;
  flag : bool Atomic.t;  (** explicit cancellation *)
}

let none = { start_ns = 0L; budget_ns = None; flag = Atomic.make false }

let of_ms budget =
  {
    start_ns = Obs.now_ns ();
    budget_ns = Some (Int64.of_float (Float.max 0. budget *. 1e6));
    flag = Atomic.make false;
  }

let of_budget_ms = function None -> none | Some ms -> of_ms ms
let cancel t = Atomic.set t.flag true
let cancelled t = Atomic.get t.flag

let elapsed_ms t =
  match t.budget_ns with
  | None -> 0.
  | Some _ -> Int64.to_float (Int64.sub (Obs.now_ns ()) t.start_ns) /. 1e6

let budget_ms t = Option.map (fun ns -> Int64.to_float ns /. 1e6) t.budget_ns

let remaining_ms t =
  match t.budget_ns with
  | None -> None
  | Some b -> Some ((Int64.to_float b /. 1e6) -. elapsed_ms t)

let expired t =
  Atomic.get t.flag
  ||
  match t.budget_ns with
  | None -> false
  | Some b -> Int64.sub (Obs.now_ns ()) t.start_ns >= b

let check t ~stage =
  if expired t then begin
    Obs.count "deadline.hits" 1;
    Hgp_error.error
      (Hgp_error.Deadline_exceeded
         {
           budget_ms = Option.value ~default:0. (budget_ms t);
           elapsed_ms = elapsed_ms t;
           stage;
         })
  end

let tick t ~stage ~count ~mask =
  incr count;
  if !count land mask = 0 then check t ~stage
