type t =
  | Parse of { line : int option; context : string; msg : string }
  | Io_error of { path : string; msg : string }
  | Invalid_input of { context : string; msg : string }
  | Infeasible of { resolution : int; retried : bool; msg : string }
  | Deadline_exceeded of { budget_ms : float; elapsed_ms : float; stage : string }
  | Tree_failure of { tree_index : int; stage : string; msg : string }
  | Domain_crash of { tree_index : int; msg : string }
  | Fault_injected of { site : string; msg : string }
  | Overloaded of { queued : int; limit : int }
  | Internal of { stage : string; msg : string }

exception Error of t

let error e = raise (Error e)

let label = function
  | Parse _ -> "parse"
  | Io_error _ -> "io"
  | Invalid_input _ -> "invalid-input"
  | Infeasible _ -> "infeasible"
  | Deadline_exceeded _ -> "deadline"
  | Tree_failure _ -> "tree-failure"
  | Domain_crash _ -> "domain-crash"
  | Fault_injected _ -> "fault"
  | Overloaded _ -> "overloaded"
  | Internal _ -> "internal"

let exit_code = function
  | Parse _ -> 65
  | Invalid_input _ -> 65
  | Io_error _ -> 66
  | Infeasible _ -> 69
  | Tree_failure _ | Domain_crash _ | Fault_injected _ | Internal _ -> 70
  | Deadline_exceeded _ | Overloaded _ -> 75

let to_string = function
  | Parse { line; context; msg } ->
    let where = match line with None -> "" | Some l -> Printf.sprintf " at line %d" l in
    Printf.sprintf "parse error%s (%s): %s" where context msg
  | Io_error { path; msg } -> Printf.sprintf "io error on %s: %s" path msg
  | Invalid_input { context; msg } -> Printf.sprintf "invalid input (%s): %s" context msg
  | Infeasible { resolution; retried; msg } ->
    Printf.sprintf "infeasible at resolution %d%s: %s" resolution
      (if retried then " (after higher-resolution retry)" else "")
      msg
  | Deadline_exceeded { budget_ms; elapsed_ms; stage } ->
    Printf.sprintf "deadline of %.1f ms exceeded in %s after %.1f ms" budget_ms stage
      elapsed_ms
  | Tree_failure { tree_index; stage; msg } ->
    Printf.sprintf "ensemble tree %d failed in %s: %s" tree_index stage msg
  | Domain_crash { tree_index; msg } ->
    Printf.sprintf "domain for ensemble tree %d crashed: %s" tree_index msg
  | Fault_injected { site; msg } -> Printf.sprintf "injected fault at %s: %s" site msg
  | Overloaded { queued; limit } ->
    Printf.sprintf "server overloaded: %d requests queued (admission limit %d)" queued
      limit
  | Internal { stage; msg } -> Printf.sprintf "internal error in %s: %s" stage msg

let pp ppf e = Format.pp_print_string ppf (to_string e)

let message_of_exn = function
  | Error e -> to_string e
  | Failure m -> m
  | Invalid_argument m -> Printf.sprintf "invalid argument: %s" m
  | exn -> Printexc.to_string exn

(* Make [Error _] print its payload in uncaught-exception traces. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Hgp_error.Error (%s)" (to_string e))
    | _ -> None)
