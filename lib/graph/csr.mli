(** Flat struct-of-arrays graphs with weighted vertices, built for
    million-vertex scale.

    {!Graph.t} is CSR-backed but pays a boxed [(u, v, w)] tuple per edge and
    a hashtable pass per build; at 10^6 vertices both dominate the solve.
    This module keeps the whole representation in int/float arrays — the same
    idiom as the DP workspace arenas (docs/ARCHITECTURE.md, "DP kernel &
    workspaces") — and adds {e vertex weights}, the quantity coarsening must
    conserve: a coarse vertex's weight is the demand of everything merged
    into it (the nonuniform-weights setting of Makarychev & Makarychev).

    Vertices are [0..n-1].  Parallel edges are merged by summing weights,
    self-loops are dropped (they can never be cut) — the same semantics as
    {!Graph.Builder}.  Adjacency rows are sorted by neighbor id.  The
    structure is immutable.

    Structural validation raises structured
    {!Hgp_resilience.Hgp_error.Invalid_input} errors (exit class 65), not
    [Invalid_argument]: builders sit on the ingest path of the multilevel
    front-end, where malformed data is an input problem, not a bug. *)

type t = private {
  n : int;
  xadj : int array;  (** length [n + 1]; row [v] is [xadj.(v) .. xadj.(v+1) - 1] *)
  adjncy : int array;  (** neighbor ids, ascending within each row *)
  adjw : float array;  (** edge weight per adjacency slot *)
  vwgt : float array;  (** vertex weights (demands); all [> 0.] *)
  total_vw : float;  (** sum of vertex weights *)
  total_ew : float;  (** sum of undirected edge weights *)
}

(** [of_arrays ~n ~src ~dst ~w ()] builds the graph with edges
    [{src.(i), dst.(i)}] of weight [w.(i)] — struct-of-arrays input, no
    per-edge boxing, two counting-sort passes, O(n + m) time and memory.
    [vwgt] defaults to all-ones.
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) on negative
    [n], mismatched array lengths, dangling endpoints (outside [0..n-1]),
    negative or non-finite edge weights, or non-positive vertex weights. *)
val of_arrays :
  n:int ->
  ?vwgt:float array ->
  src:int array ->
  dst:int array ->
  w:float array ->
  unit ->
  t

(** [of_graph ?vwgt g] adopts the CSR arrays of a boxed {!Graph.t} (adjacency
    copied, already merged and sorted).  [vwgt] defaults to all-ones. *)
val of_graph : ?vwgt:float array -> Graph.t -> t

(** [reweight t ~total_ew updates] patches the weights of existing edges —
    O(k log degree) slot lookups plus one O(m) copy of the weight array; the
    CSR skeleton ([xadj]/[adjncy]) and the vertex weights are shared with
    [t].  Both adjacency slots of each [{u, v}] receive exactly the listed
    weight, which is also what {!of_graph} stores for every edge, so the
    result is bit-identical to [of_graph] on the patched graph {e provided}
    [total_ew] is the patched graph's own replayed total
    ({!Graph.total_weight}) — the caller owns that sum because its float
    accumulation order cannot be reproduced from a sparse patch.  This is
    the incremental V-cycle's fast path for reweight-only deltas
    (docs/INCREMENTAL.md).
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) on an unknown
    edge, an out-of-range endpoint, a self-loop, or an invalid weight. *)
val reweight : t -> total_ew:float -> (int * int * float) list -> t

(** [to_graph t] converts back to the boxed representation.  The round trip
    [to_graph (of_graph g)] is an isomorphism: same vertex count, same edge
    multiset, same weights (property-tested in [test_csr.ml]). *)
val to_graph : t -> Graph.t

val n : t -> int

(** [m t] is the number of distinct undirected edges. *)
val m : t -> int

val degree : t -> int -> int
val vertex_weight : t -> int -> float
val total_vertex_weight : t -> float
val total_edge_weight : t -> float

(** [iter_neighbors f t v] calls [f u w] for each neighbor in ascending id
    order. *)
val iter_neighbors : (int -> float -> unit) -> t -> int -> unit

(** [iter_edges f t] calls [f u v w] once per undirected edge with [u < v],
    in ascending [(u, v)] order. *)
val iter_edges : (int -> int -> float -> unit) -> t -> unit

(** [edge_weight t u v] is the weight of [{u, v}] or [0.] — binary search,
    O(log degree). *)
val edge_weight : t -> int -> int -> float

(** [contract t map ~n_parts] merges each part into a super-vertex: vertex
    weights add up, parallel coarse edges merge by summing (in ascending
    fine-edge order, so the float sums are reproducible), intra-part edges
    disappear.  O(n + m).
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) on a length
    mismatch or an out-of-range part id. *)
val contract : t -> int array -> n_parts:int -> t

(** [fingerprint t] digests the full structure including vertex weights —
    the content address used by the multilevel hierarchy cache. *)
val fingerprint : t -> Hgp_util.Fingerprint.t

val pp : Format.formatter -> t -> unit
