(** Undirected weighted graphs in compressed-sparse-row form.

    Vertices are [0..n-1].  Parallel edges added through a {!Builder} are
    merged by summing weights; self-loops are ignored (they can never be cut).
    The structure is immutable after {!Builder.build}. *)

type t

module Builder : sig
  type graph = t
  type t

  (** [create n] starts a builder for a graph on [n] vertices. *)
  val create : int -> t

  (** [add_edge b u v w] records undirected edge [{u,v}] of weight [w].
      Repeated insertions accumulate weight.  Self-loops are ignored.
      Requires [w >= 0.] and valid vertex ids. *)
  val add_edge : t -> int -> int -> float -> unit

  (** [build b] finalizes the CSR structure.  The builder may not be reused. *)
  val build : t -> graph
end

(** [n g] is the number of vertices. *)
val n : t -> int

(** [m g] is the number of distinct undirected edges. *)
val m : t -> int

(** [of_edges n edges] builds a graph from an edge list [(u, v, w)]. *)
val of_edges : int -> (int * int * float) list -> t

(** [edges g] lists all edges as [(u, v, w)] with [u < v]. *)
val edges : t -> (int * int * float) array

(** [iter_edges f g] calls [f u v w] once per undirected edge, [u < v]. *)
val iter_edges : (int -> int -> float -> unit) -> t -> unit

(** [fold_edges f init g] folds over undirected edges. *)
val fold_edges : ('a -> int -> int -> float -> 'a) -> 'a -> t -> 'a

(** [iter_neighbors f g u] calls [f v w] for every neighbor [v] of [u]. *)
val iter_neighbors : (int -> float -> unit) -> t -> int -> unit

(** [fold_neighbors f init g u] folds over the neighbors of [u]. *)
val fold_neighbors : ('a -> int -> float -> 'a) -> 'a -> t -> int -> 'a

(** [degree g u] is the number of neighbors of [u]. *)
val degree : t -> int -> int

(** [weighted_degree g u] is the sum of weights of edges incident to [u]. *)
val weighted_degree : t -> int -> float

(** [total_weight g] is the sum of all edge weights. *)
val total_weight : t -> float

(** [edge_weight g u v] is the weight of edge [{u,v}], or [0.] if absent. *)
val edge_weight : t -> int -> int -> float

(** [has_edge g u v] tests adjacency. *)
val has_edge : t -> int -> int -> bool

(** [induced g vs] is the subgraph induced by the vertex set [vs] (given as an
    array of distinct vertex ids), together with the map from new vertex ids
    [0..|vs|-1] back to the originals (which is [vs] itself).  Edges with both
    endpoints in [vs] are kept. *)
val induced : t -> int array -> t * int array

(** [contract g partition ~n_parts] merges each part into a super-vertex,
    summing weights of parallel edges and dropping intra-part edges.
    [partition.(v)] is the part of [v], in [0..n_parts-1]. *)
val contract : t -> int array -> n_parts:int -> t

(** [reweight_edges g updates] is [g] with the weight of each edge
    [{u, v}] in [updates] replaced by the given weight.  O(m) and
    structure-sharing: the result is bit-identical (including the float
    summation order of {!total_weight}) to rebuilding the graph from the
    patched edge list, but reuses the adjacency skeleton.
    @raise Invalid_argument if an edge is absent, an endpoint is out of
    range, or a weight is negative. *)
val reweight_edges : t -> (int * int * float) list -> t

(** [fingerprint g] is a content fingerprint of the full CSR structure
    (vertex count, adjacency, weights) — two graphs that compare equal
    edge-for-edge share it.  Used as the graph component of solver cache
    keys (see [docs/ARCHITECTURE.md]). *)
val fingerprint : t -> Hgp_util.Fingerprint.t

(** [pp] prints a short description ["graph(n=…, m=…, W=…)"]. *)
val pp : Format.formatter -> t -> unit
