let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d 001\n" (Graph.n g) (Graph.m g));
  for u = 0 to Graph.n g - 1 do
    let first = ref true in
    Graph.iter_neighbors
      (fun v w ->
        if not !first then Buffer.add_char buf ' ';
        first := false;
        Buffer.add_string buf (Printf.sprintf "%d %.17g" (v + 1) w))
      g u;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let tokens_of_line line =
  (* '\r' is a separator so CRLF files parse identically to LF files. *)
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun s -> s <> "")

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '%')
  in
  match lines with
  | [] -> failwith "Io.of_string: empty input"
  | header :: rest ->
    let n, m, weighted =
      match tokens_of_line header with
      | [ n; m ] -> (int_of_string n, int_of_string m, false)
      | [ n; m; fmt ] -> (int_of_string n, int_of_string m, fmt = "1" || fmt = "001")
      | _ -> failwith "Io.of_string: malformed header"
    in
    if List.length rest <> n then
      failwith
        (Printf.sprintf "Io.of_string: expected %d vertex lines, got %d" n
           (List.length rest));
    let b = Graph.Builder.create n in
    List.iteri
      (fun u line ->
        let toks = tokens_of_line line in
        let rec consume = function
          | [] -> ()
          | v :: w :: tl when weighted ->
            let v = int_of_string v - 1 in
            if v > u then Graph.Builder.add_edge b u v (float_of_string w);
            consume tl
          | v :: tl ->
            let v = int_of_string v - 1 in
            if v > u then Graph.Builder.add_edge b u v 1.0;
            consume tl
        in
        consume toks)
      rest;
    let g = Graph.Builder.build b in
    if Graph.m g <> m then
      failwith
        (Printf.sprintf "Io.of_string: header claims %d edges, parsed %d" m (Graph.m g));
    g

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

let to_edge_list_string g =
  let buf = Buffer.create 4096 in
  Graph.iter_edges
    (fun u v w -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" u v w))
    g;
  Buffer.contents buf

module E = Hgp_resilience.Hgp_error

let normalize_ids ?(vertices = []) edges =
  let module IS = Set.Make (Int) in
  let ids =
    (* Seed with the explicitly-kept vertices: ids that must survive even
       when no edge mentions them (isolated vertices under edit streams —
       an id set derived from edges alone would silently drop them and
       shift every later id, breaking the dense-id contract). *)
    List.fold_left
      (fun acc v ->
        if v < 0 then
          E.error
            (E.Invalid_input
               {
                 context = "io.normalize_ids";
                 msg = Printf.sprintf "negative vertex id %d" v;
               });
        IS.add v acc)
      IS.empty vertices
  in
  let ids =
    List.fold_left
      (fun acc (u, v, _) ->
        if u < 0 || v < 0 then
          E.error
            (E.Invalid_input
               {
                 context = "io.normalize_ids";
                 msg = Printf.sprintf "negative vertex id in edge {%d, %d}" u v;
               });
        IS.add u (IS.add v acc))
      ids edges
  in
  (* Dense ids 0..k-1 in ascending original-id order, so normalization of an
     already-dense list is the identity. *)
  let originals = Array.of_list (IS.elements ids) in
  let index = Hashtbl.create (2 * Array.length originals) in
  Array.iteri (fun i id -> Hashtbl.add index id i) originals;
  let dense =
    List.map
      (fun (u, v, w) -> (Hashtbl.find index u, Hashtbl.find index v, w))
      edges
  in
  (Graph.of_edges (Array.length originals) dense, originals)

let of_edge_list_string ?(normalize = false) s =
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           let l = String.trim l in
           l <> "" && l.[0] <> '%')
  in
  let parsed =
    List.map
      (fun line ->
        match tokens_of_line line with
        | [ u; v ] -> (int_of_string u, int_of_string v, 1.0)
        | [ u; v; w ] -> (int_of_string u, int_of_string v, float_of_string w)
        | _ -> failwith "Io.of_edge_list_string: malformed line")
      lines
  in
  if normalize then fst (normalize_ids parsed)
  else begin
    (* Dense-id contract: every id must name a vertex of the result, so ids
       are taken literally and n = max id + 1.  Sparse inputs therefore
       produce isolated padding vertices — callers that want compaction pass
       [~normalize:true]. *)
    List.iter
      (fun (u, v, _) ->
        if u < 0 || v < 0 then
          E.error
            (E.Invalid_input
               {
                 context = "io.of_edge_list_string";
                 msg =
                   Printf.sprintf
                     "negative vertex id in edge {%d, %d}; ids must be dense \
                      0..n-1 (use ~normalize:true to compact)"
                     u v;
               }))
      parsed;
    let n =
      List.fold_left (fun acc (u, v, _) -> max acc (max u v + 1)) 0 parsed
    in
    Graph.of_edges n parsed
  end
