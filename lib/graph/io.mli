(** Graph serialization in the METIS graph-file format.

    Format: a header line [n m fmt] where [fmt = 001] marks edge weights,
    followed by one line per vertex listing [neighbor weight] pairs
    (vertices are 1-based in the file).  Comment lines start with ['%']. *)

(** [to_string g] renders [g] in METIS format with edge weights. *)
val to_string : Graph.t -> string

(** [of_string s] parses a METIS-format graph (with or without edge weights).
    @raise Failure on malformed input or header/content mismatch. *)
val of_string : string -> Graph.t

(** [save g path] writes [to_string g] to [path]. *)
val save : Graph.t -> string -> unit

(** [load path] reads a graph from [path]. *)
val load : string -> Graph.t

(** [to_edge_list_string g] renders one ["u v w"] line per edge (0-based). *)
val to_edge_list_string : Graph.t -> string

(** [normalize_ids ?vertices edges] compacts arbitrary non-negative vertex
    ids to the dense [0..k-1] range every other layer (CSR construction,
    generators, the DP) assumes, preserving ascending id order —
    normalizing an already-dense edge list is the identity.  [vertices]
    lists ids that must exist in the result even if no edge mentions them
    (isolated vertices, e.g. after an edit stream removed their last
    incident edge).  Returns the graph and the map from new id to
    original id.
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) on a negative
    id. *)
val normalize_ids :
  ?vertices:int list -> (int * int * float) list -> Graph.t * int array

(** [of_edge_list_string s] parses the edge-list format.  By default ids are
    taken literally and the vertex count is one plus the largest mentioned
    id, so sparse ids produce isolated padding vertices; pass
    [~normalize:true] to compact ids via {!normalize_ids} instead.
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) on a negative
    id. *)
val of_edge_list_string : ?normalize:bool -> string -> Graph.t
