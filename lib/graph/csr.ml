module E = Hgp_resilience.Hgp_error

type t = {
  n : int;
  xadj : int array;
  adjncy : int array;
  adjw : float array;
  vwgt : float array;
  total_vw : float;
  total_ew : float;
}

let invalid context fmt =
  Printf.ksprintf (fun msg -> E.error (E.Invalid_input { context; msg })) fmt

let sum a =
  let s = ref 0. in
  Array.iter (fun x -> s := !s +. x) a;
  !s

let check_vwgt context n = function
  | None -> Array.make n 1.
  | Some vw ->
    if Array.length vw <> n then
      invalid context "vwgt length %d, expected n = %d" (Array.length vw) n;
    Array.iteri
      (fun v w ->
        if not (w > 0. && Float.is_finite w) then
          invalid context "vertex %d has non-positive weight %g" v w)
      vw;
    Array.copy vw

(* Shared finisher: takes directed arcs already sorted by (src, dst) — two
   stable counting-sort passes upstream — and merges duplicate (src, dst)
   runs by summing.  Stability means each run keeps the caller's arc order,
   and both directions of an undirected edge see the same addition sequence,
   so symmetric slots hold bit-identical weights. *)
let of_sorted_arcs ~n ~vwgt ~total_vw asrc adst aw =
  let na = Array.length asrc in
  let deg = Array.make n 0 in
  let slots = ref 0 in
  for i = 0 to na - 1 do
    if i = 0 || asrc.(i) <> asrc.(i - 1) || adst.(i) <> adst.(i - 1) then begin
      deg.(asrc.(i)) <- deg.(asrc.(i)) + 1;
      incr slots
    end
  done;
  let xadj = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let adjncy = Array.make !slots 0 in
  let adjw = Array.make !slots 0. in
  let total2 = ref 0. in
  let j = ref (-1) in
  for i = 0 to na - 1 do
    if i = 0 || asrc.(i) <> asrc.(i - 1) || adst.(i) <> adst.(i - 1) then begin
      incr j;
      adjncy.(!j) <- adst.(i);
      adjw.(!j) <- aw.(i)
    end
    else adjw.(!j) <- adjw.(!j) +. aw.(i);
    total2 := !total2 +. aw.(i)
  done;
  { n; xadj; adjncy; adjw; vwgt; total_vw; total_ew = !total2 /. 2. }

(* Sort directed arcs by (src, dst) with two stable counting passes: first
   key dst, then key src.  O(n + arcs), no comparisons, no boxing. *)
let sort_arcs ~n asrc adst aw =
  let na = Array.length asrc in
  let count = Array.make (n + 1) 0 in
  let pass key src dst w =
    Array.fill count 0 (n + 1) 0;
    for i = 0 to na - 1 do
      count.(key.(i) + 1) <- count.(key.(i) + 1) + 1
    done;
    for v = 0 to n - 1 do
      count.(v + 1) <- count.(v + 1) + count.(v)
    done;
    let src' = Array.make na 0 in
    let dst' = Array.make na 0 in
    let w' = Array.make na 0. in
    for i = 0 to na - 1 do
      let p = count.(key.(i)) in
      count.(key.(i)) <- p + 1;
      src'.(p) <- src.(i);
      dst'.(p) <- dst.(i);
      w'.(p) <- w.(i)
    done;
    (src', dst', w')
  in
  let asrc, adst, aw = pass adst asrc adst aw in
  pass asrc asrc adst aw

let of_arrays ~n ?vwgt ~src ~dst ~w () =
  let context = "csr.of_arrays" in
  if n < 0 then invalid context "negative vertex count %d" n;
  let ne = Array.length src in
  if Array.length dst <> ne || Array.length w <> ne then
    invalid context "edge array lengths differ: src %d, dst %d, w %d" ne
      (Array.length dst) (Array.length w);
  let vwgt = check_vwgt context n vwgt in
  let live = ref 0 in
  for i = 0 to ne - 1 do
    let u = src.(i) and v = dst.(i) in
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid context "edge %d = {%d, %d} has a dangling endpoint (n = %d)" i u v n;
    if not (w.(i) >= 0. && Float.is_finite w.(i)) then
      invalid context "edge %d = {%d, %d} has invalid weight %g" i u v w.(i);
    if u <> v then incr live
  done;
  let na = 2 * !live in
  let asrc = Array.make na 0 in
  let adst = Array.make na 0 in
  let aw = Array.make na 0. in
  let j = ref 0 in
  for i = 0 to ne - 1 do
    let u = src.(i) and v = dst.(i) in
    if u <> v then begin
      asrc.(!j) <- u;
      adst.(!j) <- v;
      aw.(!j) <- w.(i);
      asrc.(!j + 1) <- v;
      adst.(!j + 1) <- u;
      aw.(!j + 1) <- w.(i);
      j := !j + 2
    end
  done;
  let asrc, adst, aw = sort_arcs ~n asrc adst aw in
  of_sorted_arcs ~n ~vwgt ~total_vw:(sum vwgt) asrc adst aw

let of_graph ?vwgt g =
  let n = Graph.n g in
  let vwgt = check_vwgt "csr.of_graph" n vwgt in
  (* [Graph.edges] is merged and sorted ascending by (u, v) with u < v; the
     Builder fill order (u-slot then v-slot per edge, in edge order) yields
     ascending rows, so replaying it reproduces the exact CSR triple. *)
  let deg = Array.make n 0 in
  Graph.iter_edges
    (fun u v _ ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    g;
  let xadj = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    xadj.(v + 1) <- xadj.(v) + deg.(v)
  done;
  let slots = xadj.(n) in
  let adjncy = Array.make slots 0 in
  let adjw = Array.make slots 0. in
  let fill = Array.copy xadj in
  Graph.iter_edges
    (fun u v w ->
      adjncy.(fill.(u)) <- v;
      adjw.(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      adjncy.(fill.(v)) <- u;
      adjw.(fill.(v)) <- w;
      fill.(v) <- fill.(v) + 1)
    g;
  {
    n;
    xadj;
    adjncy;
    adjw;
    vwgt;
    total_vw = sum vwgt;
    total_ew = Graph.total_weight g;
  }

let slot t u v =
  (* adjacency slot of [v] in row [u], or -1 — rows are ascending *)
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.adjncy.(mid) in
    if x = v then begin
      res := mid;
      lo := !hi + 1
    end
    else if x < v then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let reweight t ~total_ew updates =
  let context = "csr.reweight" in
  let adjw = Array.copy t.adjw in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= t.n || v < 0 || v >= t.n then
        invalid context "reweight {%d, %d}: vertex out of range (n = %d)" u v t.n;
      if u = v then invalid context "reweight {%d, %d}: self-loop" u v;
      if not (w >= 0. && Float.is_finite w) then
        invalid context "reweight {%d, %d}: invalid weight %g" u v w;
      let i = slot t u v and j = slot t v u in
      if i < 0 || j < 0 then invalid context "reweight {%d, %d}: no such edge" u v;
      adjw.(i) <- w;
      adjw.(j) <- w)
    updates;
  { t with adjw; total_ew }

let n t = t.n

let m t = Array.length t.adjncy / 2

let degree t v = t.xadj.(v + 1) - t.xadj.(v)
let vertex_weight t v = t.vwgt.(v)
let total_vertex_weight t = t.total_vw
let total_edge_weight t = t.total_ew

let iter_neighbors f t v =
  for i = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    f t.adjncy.(i) t.adjw.(i)
  done

let iter_edges f t =
  for u = 0 to t.n - 1 do
    for i = t.xadj.(u) to t.xadj.(u + 1) - 1 do
      let v = t.adjncy.(i) in
      if u < v then f u v t.adjw.(i)
    done
  done

let edge_weight t u v =
  (* rows are ascending: binary search the slice *)
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let w = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.adjncy.(mid) in
    if x = v then begin
      w := t.adjw.(mid);
      lo := !hi + 1
    end
    else if x < v then lo := mid + 1
    else hi := mid - 1
  done;
  !w

let to_graph t =
  let b = Graph.Builder.create t.n in
  iter_edges (fun u v w -> Graph.Builder.add_edge b u v w) t;
  Graph.Builder.build b

let contract t map ~n_parts =
  let context = "csr.contract" in
  if Array.length map <> t.n then
    invalid context "partition length %d, expected n = %d" (Array.length map) t.n;
  Array.iteri
    (fun v p ->
      if p < 0 || p >= n_parts then
        invalid context "vertex %d mapped to part %d, outside 0..%d" v p (n_parts - 1))
    map;
  let cvw = Array.make n_parts 0. in
  for v = 0 to t.n - 1 do
    cvw.(map.(v)) <- cvw.(map.(v)) +. t.vwgt.(v)
  done;
  (* Count surviving arcs, then emit both directions of each fine edge in
     ascending (u, v) order; the stable sort keeps that order within each
     coarse run, matching [Graph.contract]'s Builder accumulation order. *)
  let live = ref 0 in
  iter_edges (fun u v _ -> if map.(u) <> map.(v) then incr live) t;
  let na = 2 * !live in
  let asrc = Array.make na 0 in
  let adst = Array.make na 0 in
  let aw = Array.make na 0. in
  let j = ref 0 in
  iter_edges
    (fun u v w ->
      let pu = map.(u) and pv = map.(v) in
      if pu <> pv then begin
        asrc.(!j) <- pu;
        adst.(!j) <- pv;
        aw.(!j) <- w;
        asrc.(!j + 1) <- pv;
        adst.(!j + 1) <- pu;
        aw.(!j + 1) <- w;
        j := !j + 2
      end)
    t;
  let asrc, adst, aw = sort_arcs ~n:n_parts asrc adst aw in
  (* A part with no fine vertex keeps weight 0 — reject it: coarse vertices
     stand for demands and a zero demand is uninstantiable downstream. *)
  Array.iteri
    (fun p w -> if not (w > 0.) then invalid context "part %d is empty" p)
    cvw;
  of_sorted_arcs ~n:n_parts ~vwgt:cvw ~total_vw:(sum cvw) asrc adst aw

let fingerprint t =
  let open Hgp_util.Fingerprint in
  seed |> Fun.flip add_string "csr" |> Fun.flip add_int t.n
  |> Fun.flip add_int_array t.xadj
  |> Fun.flip add_int_array t.adjncy
  |> Fun.flip add_float_array t.adjw
  |> Fun.flip add_float_array t.vwgt

let pp ppf t =
  Format.fprintf ppf "csr(n=%d, m=%d, W=%g, Wv=%g)" t.n (m t) t.total_ew t.total_vw
