type t = {
  n : int;
  xadj : int array;
  adjncy : int array;
  adjw : float array;
  edge_list : (int * int * float) array;
  total_w : float;
}

module Builder = struct
  type graph = t

  type t = {
    bn : int;
    weights : (int, float) Hashtbl.t; (* key = min*n + max *)
    mutable closed : bool;
  }

  let create n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative n";
    { bn = n; weights = Hashtbl.create (4 * max 1 n); closed = false }

  let key b u v = if u < v then (u * b.bn) + v else (v * b.bn) + u

  let add_edge b u v w =
    if b.closed then invalid_arg "Graph.Builder: reused after build";
    if u < 0 || u >= b.bn || v < 0 || v >= b.bn then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if not (w >= 0.) then invalid_arg "Graph.Builder.add_edge: negative weight";
    if u <> v then begin
      let k = key b u v in
      let prev = try Hashtbl.find b.weights k with Not_found -> 0. in
      Hashtbl.replace b.weights k (prev +. w)
    end

  let build b =
    b.closed <- true;
    let n = b.bn in
    let m = Hashtbl.length b.weights in
    let edge_list = Array.make m (0, 0, 0.) in
    let idx = ref 0 in
    Hashtbl.iter
      (fun k w ->
        let u = k / n and v = k mod n in
        edge_list.(!idx) <- (u, v, w);
        incr idx)
      b.weights;
    Array.sort compare edge_list;
    let deg = Array.make n 0 in
    Array.iter
      (fun (u, v, _) ->
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1)
      edge_list;
    let xadj = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      xadj.(i + 1) <- xadj.(i) + deg.(i)
    done;
    let adjncy = Array.make (2 * m) 0 in
    let adjw = Array.make (2 * m) 0. in
    let fill = Array.copy xadj in
    let total_w = ref 0. in
    Array.iter
      (fun (u, v, w) ->
        adjncy.(fill.(u)) <- v;
        adjw.(fill.(u)) <- w;
        fill.(u) <- fill.(u) + 1;
        adjncy.(fill.(v)) <- u;
        adjw.(fill.(v)) <- w;
        fill.(v) <- fill.(v) + 1;
        total_w := !total_w +. w)
      edge_list;
    { n; xadj; adjncy; adjw; edge_list; total_w = !total_w }
end

let n g = g.n
let m g = Array.length g.edge_list

let of_edges nv edges =
  let b = Builder.create nv in
  List.iter (fun (u, v, w) -> Builder.add_edge b u v w) edges;
  Builder.build b

let edges g = Array.copy g.edge_list

let iter_edges f g = Array.iter (fun (u, v, w) -> f u v w) g.edge_list

let fold_edges f init g =
  Array.fold_left (fun acc (u, v, w) -> f acc u v w) init g.edge_list

let iter_neighbors f g u =
  for i = g.xadj.(u) to g.xadj.(u + 1) - 1 do
    f g.adjncy.(i) g.adjw.(i)
  done

let fold_neighbors f init g u =
  let acc = ref init in
  for i = g.xadj.(u) to g.xadj.(u + 1) - 1 do
    acc := f !acc g.adjncy.(i) g.adjw.(i)
  done;
  !acc

let degree g u = g.xadj.(u + 1) - g.xadj.(u)

let weighted_degree g u =
  let acc = ref 0. in
  for i = g.xadj.(u) to g.xadj.(u + 1) - 1 do
    acc := !acc +. g.adjw.(i)
  done;
  !acc

let total_weight g = g.total_w

let edge_weight g u v =
  let w = ref 0. in
  for i = g.xadj.(u) to g.xadj.(u + 1) - 1 do
    if g.adjncy.(i) = v then w := g.adjw.(i)
  done;
  !w

let has_edge g u v =
  let found = ref false in
  for i = g.xadj.(u) to g.xadj.(u + 1) - 1 do
    if g.adjncy.(i) = v then found := true
  done;
  !found

let induced g vs =
  let nv = Array.length vs in
  let index = Hashtbl.create (2 * nv) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem index v then invalid_arg "Graph.induced: duplicate vertex";
      Hashtbl.add index v i)
    vs;
  let b = Builder.create nv in
  Array.iteri
    (fun i v ->
      iter_neighbors
        (fun u w ->
          match Hashtbl.find_opt index u with
          | Some j when j > i -> Builder.add_edge b i j w
          | Some _ | None -> ())
        g v)
    vs;
  (Builder.build b, Array.copy vs)

let contract g partition ~n_parts =
  if Array.length partition <> g.n then invalid_arg "Graph.contract: partition length";
  let b = Builder.create n_parts in
  iter_edges
    (fun u v w ->
      let pu = partition.(u) and pv = partition.(v) in
      if pu < 0 || pu >= n_parts || pv < 0 || pv >= n_parts then
        invalid_arg "Graph.contract: part id out of range";
      if pu <> pv then Builder.add_edge b pu pv w)
    g;
  Builder.build b

let reweight_edges g updates =
  (* Patch weights of existing edges without touching the structure.  The
     CSR skeleton (xadj/adjncy) and the (u, v) order of [edge_list] only
     depend on the edge *set*, so both are shared; [adjw], the patched
     [edge_list], and [total_w] are rebuilt by replaying exactly the fill
     loop of [Builder.build], which makes the result bit-identical to a
     from-scratch build on the patched edge list (including the float
     summation order of [total_w]). *)
  let m = Array.length g.edge_list in
  let edge_list = Array.copy g.edge_list in
  let find a b =
    (* Binary search for (a, b) in the (u, v)-sorted edge list. *)
    let lo = ref 0 and hi = ref (m - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let u, v, _ = edge_list.(mid) in
      let c = compare (u, v) (a, b) in
      if c = 0 then begin
        res := mid;
        lo := !hi + 1
      end
      else if c < 0 then lo := mid + 1
      else hi := mid - 1
    done;
    !res
  in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= g.n || v < 0 || v >= g.n then
        invalid_arg "Graph.reweight_edges: vertex out of range";
      if u = v then invalid_arg "Graph.reweight_edges: self-loop";
      if not (w >= 0.) then invalid_arg "Graph.reweight_edges: negative weight";
      let a = min u v and b = max u v in
      let i = find a b in
      if i < 0 then
        invalid_arg
          (Printf.sprintf "Graph.reweight_edges: no edge {%d, %d}" u v);
      edge_list.(i) <- (a, b, w))
    updates;
  let adjw = Array.make (2 * m) 0. in
  let fill = Array.copy g.xadj in
  let total_w = ref 0. in
  Array.iter
    (fun (u, v, w) ->
      adjw.(fill.(u)) <- w;
      fill.(u) <- fill.(u) + 1;
      adjw.(fill.(v)) <- w;
      fill.(v) <- fill.(v) + 1;
      total_w := !total_w +. w)
    edge_list;
  { g with adjw; edge_list; total_w = !total_w }

let fingerprint g =
  let open Hgp_util.Fingerprint in
  (* The CSR triple determines the graph completely (edge_list and total_w
     are derived from it at build time). *)
  seed |> Fun.flip add_int g.n
  |> Fun.flip add_int_array g.xadj
  |> Fun.flip add_int_array g.adjncy
  |> Fun.flip add_float_array g.adjw

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, W=%g)" g.n (m g) g.total_w
