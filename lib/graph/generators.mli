(** Deterministic graph generators (all randomness comes from the provided
    {!Hgp_util.Prng.t}).  Unless noted, edge weights are [1.0]; use
    {!randomize_weights} to perturb them.

    Every generator emits {e dense} vertex ids [0..n-1] — this is a
    guarantee, not an accident: CSR construction ({!Csr}), the DP kernels
    and the multilevel front-end all index flat arrays by vertex id.
    External edge lists with sparse ids must go through
    {!Io.normalize_ids} first. *)

(** [path n] is the path on [n] vertices. *)
val path : int -> Graph.t

(** [cycle n] is the cycle on [n] vertices ([n >= 3]). *)
val cycle : int -> Graph.t

(** [complete n] is the clique on [n] vertices. *)
val complete : int -> Graph.t

(** [star n] is the star with center [0] and [n-1] rays. *)
val star : int -> Graph.t

(** [grid2d ~rows ~cols] is the 2-D mesh. *)
val grid2d : rows:int -> cols:int -> Graph.t

(** [torus2d ~rows ~cols] is the 2-D torus (wrap-around mesh);
    requires [rows >= 3] and [cols >= 3] so wrap edges are distinct. *)
val torus2d : rows:int -> cols:int -> Graph.t

(** [binary_tree depth] is the complete binary tree with [2^(depth+1) - 1]
    vertices. *)
val binary_tree : int -> Graph.t

(** [caterpillar ~spine ~legs] is a path of [spine] vertices, each with [legs]
    pendant leaves. *)
val caterpillar : spine:int -> legs:int -> Graph.t

(** [gnp rng n p] is an Erdős–Rényi graph: each pair independently with
    probability [p]. *)
val gnp : Hgp_util.Prng.t -> int -> float -> Graph.t

(** [gnp_connected rng n p] is {!gnp} patched to be connected. *)
val gnp_connected : Hgp_util.Prng.t -> int -> float -> Graph.t

(** [chung_lu rng ~n ~exponent ~avg_degree] samples a power-law graph with the
    Chung–Lu model: expected degree of vertex [i] proportional to
    [(i+1)^(-1/(exponent-1))], scaled to the requested average degree.
    Requires [exponent > 2.]. *)
val chung_lu : Hgp_util.Prng.t -> n:int -> exponent:float -> avg_degree:float -> Graph.t

(** [random_regular rng ~n ~degree] samples an approximately [degree]-regular
    simple graph via the configuration model with resampling of clashes.
    Requires [n * degree] even and [degree < n]. *)
val random_regular : Hgp_util.Prng.t -> n:int -> degree:int -> Graph.t

(** [random_tree rng n] is a uniformly random labelled tree (Prüfer). *)
val random_tree : Hgp_util.Prng.t -> int -> Graph.t

(** [randomize_weights rng ?lo ?hi g] returns [g] with each edge weight
    replaced by a uniform draw in [\[lo, hi)] (defaults [1.0] and [10.0]). *)
val randomize_weights : Hgp_util.Prng.t -> ?lo:float -> ?hi:float -> Graph.t -> Graph.t

(** [hypercube dims] is the [dims]-dimensional hypercube on [2^dims]
    vertices ([0 <= dims <= 20]). *)
val hypercube : int -> Graph.t

(** [barbell ~clique ~bridge] is two [clique]-cliques joined by a path of
    [bridge] intermediate vertices (a direct edge when [bridge = 0]) — the
    classic low-conductance stress test for partitioners. *)
val barbell : clique:int -> bridge:int -> Graph.t

(** [watts_strogatz rng ~n ~k ~beta] is a small-world ring lattice ([k]
    neighbors, [k] even) with each edge rewired with probability [beta]. *)
val watts_strogatz : Hgp_util.Prng.t -> n:int -> k:int -> beta:float -> Graph.t
