module Graph = Hgp_graph.Graph
module Io = Hgp_graph.Io
module Hierarchy = Hgp_hierarchy.Hierarchy
module E = Hgp_resilience.Hgp_error

type edit =
  | Reweight_edge of int * int * float
  | Add_edge of int * int * float
  | Remove_edge of int * int
  | Add_vertex of float * (int * float) list
  | Remove_vertex of int

type t = edit list

let invalid fmt =
  Printf.ksprintf
    (fun msg -> E.error (E.Invalid_input { context = "delta.apply"; msg }))
    fmt

let is_reweight_only delta =
  List.for_all (function Reweight_edge _ -> true | _ -> false) delta

let check_weight what w =
  if not (Float.is_finite w) then invalid "%s weight is not finite" what;
  if w < 0. then invalid "%s weight %g is negative" what w

(* Fast path for reweight-only deltas: no id space changes, so the graph is
   patched in place ({!Graph.reweight_edges}, structure-sharing and
   bit-identical to a rebuild) and the mapping is the identity. *)
let apply_reweights (inst : Instance.t) delta =
  let g = inst.graph in
  let n = Graph.n g in
  let updates =
    List.map
      (function
        | Reweight_edge (u, v, w) ->
          if u < 0 || u >= n || v < 0 || v >= n then
            invalid "reweight {%d, %d}: vertex id out of range [0, %d)" u v n;
          if u = v then invalid "reweight {%d, %d}: self-loop" u v;
          check_weight (Printf.sprintf "reweight {%d, %d}:" u v) w;
          if not (Graph.has_edge g u v) then
            invalid "reweight {%d, %d}: no such edge" u v;
          (u, v, w)
        | _ -> assert false)
      delta
  in
  let graph = Graph.reweight_edges g updates in
  Instance.create graph ~demands:inst.demands inst.hierarchy

(* General path: simulate the edit stream over a mutable working state
   (edge table keyed by the (min, max) endpoint pair; demand/alive arrays
   sized for the original vertices plus every [Add_vertex]), then compact
   the surviving ids in one pass. *)
let apply_general (inst : Instance.t) delta =
  let n0 = Graph.n inst.graph in
  let n_adds =
    List.fold_left
      (fun acc -> function Add_vertex _ -> acc + 1 | _ -> acc)
      0 delta
  in
  let n_work = n0 + n_adds in
  let demand = Array.make n_work 0. in
  Array.blit inst.demands 0 demand 0 n0;
  let alive = Array.make n_work false in
  Array.fill alive 0 n0 true;
  let next_id = ref n0 in
  let n_alive = ref n0 in
  let cap = Hierarchy.leaf_capacity inst.hierarchy in
  let edges : (int * int, float) Hashtbl.t =
    Hashtbl.create (4 * max 1 (Graph.m inst.graph))
  in
  Graph.iter_edges (fun u v w -> Hashtbl.replace edges (u, v) w) inst.graph;
  let check_vertex what v =
    if v < 0 || v >= !next_id then
      invalid "%s: vertex id %d out of range [0, %d)" what v !next_id;
    if not alive.(v) then invalid "%s: vertex %d was removed" what v
  in
  let ekey u v = if u < v then (u, v) else (v, u) in
  let check_endpoints what u v =
    check_vertex what u;
    check_vertex what v;
    if u = v then invalid "%s: self-loop {%d, %d}" what u v
  in
  let check_demand what d =
    if not (Float.is_finite d && d > 0.) then
      invalid "%s: demand %g must be positive and finite" what d;
    if d > cap +. 1e-9 then
      invalid "%s: demand %g exceeds leaf capacity %g" what d cap
  in
  List.iter
    (function
      | Reweight_edge (u, v, w) ->
        let what = Printf.sprintf "reweight {%d, %d}" u v in
        check_endpoints what u v;
        check_weight what w;
        let k = ekey u v in
        if not (Hashtbl.mem edges k) then invalid "%s: no such edge" what;
        Hashtbl.replace edges k w
      | Add_edge (u, v, w) ->
        let what = Printf.sprintf "add-edge {%d, %d}" u v in
        check_endpoints what u v;
        check_weight what w;
        let k = ekey u v in
        if Hashtbl.mem edges k then invalid "%s: edge already present" what;
        Hashtbl.replace edges k w
      | Remove_edge (u, v) ->
        let what = Printf.sprintf "remove-edge {%d, %d}" u v in
        check_endpoints what u v;
        let k = ekey u v in
        if not (Hashtbl.mem edges k) then invalid "%s: no such edge" what;
        Hashtbl.remove edges k
      | Add_vertex (d, nbrs) ->
        let id = !next_id in
        let what = Printf.sprintf "add-vertex (working id %d)" id in
        check_demand what d;
        let seen = Hashtbl.create 8 in
        List.iter
          (fun (u, w) ->
            check_vertex what u;
            check_weight what w;
            if Hashtbl.mem seen u then
              invalid "%s: duplicate neighbor %d" what u;
            Hashtbl.add seen u ();
            Hashtbl.replace edges (ekey id u) w)
          nbrs;
        demand.(id) <- d;
        alive.(id) <- true;
        incr next_id;
        incr n_alive
      | Remove_vertex v ->
        let what = Printf.sprintf "remove-vertex %d" v in
        check_vertex what v;
        if !n_alive = 1 then invalid "%s: cannot remove the last vertex" what;
        alive.(v) <- false;
        decr n_alive;
        Hashtbl.filter_map_inplace
          (fun (a, b) w -> if a = v || b = v then None else Some w)
          edges)
    delta;
  let vertices = ref [] in
  for v = !next_id - 1 downto 0 do
    if alive.(v) then vertices := v :: !vertices
  done;
  let edge_list = Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) edges [] in
  (* [normalize_ids] keeps ascending working-id order, so original vertices
     keep their relative order and appended ones land after the survivors
     that precede them. *)
  let graph, originals = Io.normalize_ids ~vertices:!vertices edge_list in
  let demands = Array.map (fun work_id -> demand.(work_id)) originals in
  let mapping = Array.make n0 (-1) in
  Array.iteri (fun new_id work_id -> if work_id < n0 then mapping.(work_id) <- new_id) originals;
  (Instance.create graph ~demands inst.hierarchy, mapping)

let apply_mapped inst delta =
  if is_reweight_only delta then
    (apply_reweights inst delta, Array.init (Graph.n inst.graph) Fun.id)
  else apply_general inst delta

let apply inst delta =
  if is_reweight_only delta then apply_reweights inst delta
  else fst (apply_general inst delta)

(* --- text format ------------------------------------------------------- *)

let to_string delta =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "%hgp-delta 1\n";
  List.iter
    (fun edit ->
      (match edit with
      | Reweight_edge (u, v, w) ->
        Buffer.add_string buf (Printf.sprintf "reweight %d %d %.17g" u v w)
      | Add_edge (u, v, w) ->
        Buffer.add_string buf (Printf.sprintf "add-edge %d %d %.17g" u v w)
      | Remove_edge (u, v) ->
        Buffer.add_string buf (Printf.sprintf "remove-edge %d %d" u v)
      | Add_vertex (d, nbrs) ->
        Buffer.add_string buf (Printf.sprintf "add-vertex %.17g" d);
        List.iter
          (fun (u, w) ->
            Buffer.add_string buf (Printf.sprintf " %d %.17g" u w))
          nbrs
      | Remove_vertex v ->
        Buffer.add_string buf (Printf.sprintf "remove-vertex %d" v));
      Buffer.add_char buf '\n')
    delta;
  Buffer.contents buf

let parse_error ~line fmt =
  Printf.ksprintf
    (fun msg ->
      E.error (E.Parse { line = Some line; context = "delta"; msg }))
    fmt

let of_string s =
  let int ~line what tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None -> parse_error ~line "%s %S is not an integer" what tok
  in
  let num ~line what tok =
    match float_of_string_opt tok with
    | Some v -> v
    | None -> parse_error ~line "%s %S is not a number" what tok
  in
  let rec neighbors ~line = function
    | [] -> []
    | [ u ] ->
      parse_error ~line "neighbor %S is missing its weight" u
    | u :: w :: tl ->
      (int ~line "neighbor id" u, num ~line "neighbor weight" w)
      :: neighbors ~line tl
  in
  let edits = ref [] in
  String.split_on_char '\n' s
  |> List.iteri (fun i raw ->
         let line = i + 1 in
         let l =
           let len = String.length raw in
           String.trim
             (if len > 0 && raw.[len - 1] = '\r' then String.sub raw 0 (len - 1)
              else raw)
         in
         if l = "" || l.[0] = '#' || l = "%hgp-delta 1" then ()
         else
           let toks =
             String.split_on_char ' ' l |> List.filter (fun t -> t <> "")
           in
           let edit =
             match toks with
             | [ "reweight"; u; v; w ] ->
               Reweight_edge
                 (int ~line "vertex" u, int ~line "vertex" v, num ~line "weight" w)
             | [ "add-edge"; u; v; w ] ->
               Add_edge
                 (int ~line "vertex" u, int ~line "vertex" v, num ~line "weight" w)
             | [ "remove-edge"; u; v ] ->
               Remove_edge (int ~line "vertex" u, int ~line "vertex" v)
             | "add-vertex" :: d :: nbrs ->
               Add_vertex (num ~line "demand" d, neighbors ~line nbrs)
             | [ "remove-vertex"; v ] -> Remove_vertex (int ~line "vertex" v)
             | op :: _ ->
               parse_error ~line
                 "unknown or malformed edit %S (expected reweight/add-edge/\
                  remove-edge/add-vertex/remove-vertex)"
                 op
             | [] -> assert false
           in
           edits := edit :: !edits);
  List.rev !edits

let save delta path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string delta))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
