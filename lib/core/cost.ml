module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy

let assignment_cost (inst : Instance.t) p =
  let h = inst.hierarchy in
  Graph.fold_edges
    (fun acc u v w -> acc +. (w *. Hierarchy.edge_cost h p.(u) p.(v)))
    0. inst.graph

let mirror_cost (inst : Instance.t) p =
  let hy = inst.hierarchy in
  let h = Hierarchy.height hy in
  let total = ref 0. in
  for j = 1 to h do
    (* Per-group telescoping: a Level-(j) group whose boundary an edge
       crosses contributes (cm(parent(g)) - cm(g)) / 2 per unit of boundary
       weight; summed over levels and both endpoints this telescopes to
       cm(lca) minus the endpoints' leaf multipliers (added back below).
       On regular trees every group at a level shares one diff, reducing
       exactly to the per-level Eq. 3 formula. *)
    let n_j = Hierarchy.nodes_at_level hy j in
    let diffs =
      Array.init n_j (fun g ->
          (Hierarchy.cm_of hy ~level:(j - 1) (Hierarchy.parent_of hy ~level:j g)
          -. Hierarchy.cm_of hy ~level:j g)
          /. 2.)
    in
    if Array.exists (fun d -> d <> 0.) diffs then begin
      (* Boundary weight of every Level-(j) group: an edge contributes to the
         groups of both endpoints when they differ. *)
      let boundary = Array.make n_j 0. in
      Graph.iter_edges
        (fun u v w ->
          let au = Hierarchy.ancestor hy ~level:j p.(u)
          and av = Hierarchy.ancestor hy ~level:j p.(v) in
          if au <> av then begin
            boundary.(au) <- boundary.(au) +. w;
            boundary.(av) <- boundary.(av) +. w
          end)
        inst.graph;
      Array.iteri (fun g b -> total := !total +. (b *. diffs.(g))) boundary
    end
  done;
  (* A non-normalized hierarchy charges each edge its endpoints' residual
     leaf multipliers (Lemma 1); with one uniform leaf multiplier this is
     the historical cm(h) * total_weight term. *)
  let lo, hi = Hierarchy.cm_range hy h in
  if lo = hi then begin
    let base = lo in
    if base <> 0. then total := !total +. (base *. Graph.total_weight inst.graph)
  end
  else
    Graph.iter_edges
      (fun u v w ->
        total :=
          !total
          +. (w
              *. (Hierarchy.cm_of hy ~level:h p.(u)
                 +. Hierarchy.cm_of hy ~level:h p.(v))
              /. 2.))
      inst.graph;
  !total

let leaf_loads (inst : Instance.t) p =
  let k = Hierarchy.num_leaves inst.hierarchy in
  let loads = Array.make k 0. in
  Array.iteri
    (fun v leaf ->
      if leaf < 0 || leaf >= k then invalid_arg "Cost.leaf_loads: leaf out of range";
      loads.(leaf) <- loads.(leaf) +. inst.demands.(v))
    p;
  loads

let level_violation (inst : Instance.t) p j =
  let hy = inst.hierarchy in
  let loads = Array.make (Hierarchy.nodes_at_level hy j) 0. in
  Array.iteri
    (fun v leaf ->
      let a = Hierarchy.ancestor hy ~level:j leaf in
      loads.(a) <- loads.(a) +. inst.demands.(v))
    p;
  let worst = ref 0. in
  Array.iteri
    (fun idx l -> worst := Float.max !worst (l /. Hierarchy.capacity_of hy ~level:j idx))
    loads;
  !worst

let max_violation (inst : Instance.t) p =
  let h = Hierarchy.height inst.hierarchy in
  let worst = ref 0. in
  for j = 1 to h do
    worst := Float.max !worst (level_violation inst p j)
  done;
  !worst

let is_valid (inst : Instance.t) p ~slack =
  Array.length p = Instance.n inst
  && Array.for_all (fun leaf -> leaf >= 0 && leaf < Hierarchy.num_leaves inst.hierarchy) p
  &&
  let loads = leaf_loads inst p in
  let hy = inst.hierarchy in
  let ok = ref true in
  Array.iteri
    (fun l load -> if load > (slack *. Hierarchy.leaf_cap hy l) +. 1e-9 then ok := false)
    loads;
  !ok
