(** Relaxed-to-feasible conversion (Theorem 5).

    The relaxed solution may split a Level-(j) set into arbitrarily many
    Level-(j+1) sets; a real hierarchy node has only [DEG(j)] children.  The
    conversion packs, top-down, the Level-(j+1) components of each hierarchy
    node's load into its [DEG(j)] children using longest-processing-time
    first-fit (sort by demand descending, place into the least-loaded bin).
    Since every component obeys [CP(j+1)] and the total obeys the parent's
    (possibly already inflated) budget, the load of a child at level [j]
    exceeds [CP(j)] by at most an additive [CP(j)] per level — the
    [(1 + j)] violation factor of the theorem.  The cost never increases:
    components mapped into one child only move their separation level deeper
    (and [cm] is non-increasing). *)

type report = {
  assignment : int array;
      (** tree node -> hierarchy leaf; [-1] for internal tree nodes *)
  level_violation_units : float array;
      (** index [j in 1..h]: max over Level-(j) hierarchy nodes of
          [load_units / CP_units(j)] (entry [0] is total/CP(0)) *)
  max_violation_units : float;
}

(** [pack ?deadline t ~kappa ~demand_units ~hierarchy ~resolution] assigns
    every leaf of [t] to a leaf of the hierarchy.  The labeling must satisfy
    the relaxed capacities (as produced by {!Tree_dp.solve}); the packing
    itself never fails, it only reports violations.  [deadline] is polled
    once per hierarchy level.
    @raise Hgp_resilience.Hgp_error.Error ([Deadline_exceeded _]) when the
    deadline fires. *)
val pack :
  ?deadline:Hgp_resilience.Deadline.t ->
  Hgp_tree.Tree.t ->
  kappa:int array ->
  demand_units:int array ->
  hierarchy:Hgp_hierarchy.Hierarchy.t ->
  resolution:int ->
  report

(** [theoretical_violation_bound ~h ~eps] is [(1. +. eps) *. (1. +. h)] —
    the guarantee of Theorem 2 that tests assert against. *)
val theoretical_violation_bound : h:int -> eps:float -> float
