module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy

type t = {
  graph : Graph.t;
  demands : float array;
  hierarchy : Hierarchy.t;
}

let create graph ~demands hierarchy =
  if Array.length demands <> Graph.n graph then
    invalid_arg "Instance.create: demands length mismatch";
  let cap = Hierarchy.leaf_capacity hierarchy in
  Array.iteri
    (fun v d ->
      if not (d > 0.) then
        invalid_arg (Printf.sprintf "Instance.create: demand of vertex %d must be positive" v);
      if d > cap +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Instance.create: demand of vertex %d exceeds leaf capacity" v))
    demands;
  { graph; demands = Array.copy demands; hierarchy }

let uniform_demands g h ~load_factor =
  if not (load_factor > 0. && load_factor <= 1.) then
    invalid_arg "Instance.uniform_demands: load_factor out of range";
  let n = Graph.n g in
  if n = 0 then invalid_arg "Instance.uniform_demands: empty graph";
  let total_cap = Hierarchy.total_capacity h in
  let d = load_factor *. total_cap /. float_of_int n in
  create g ~demands:(Array.make n d) h

let random_demands rng g h ~load_factor =
  if not (load_factor > 0. && load_factor <= 1.) then
    invalid_arg "Instance.random_demands: load_factor out of range";
  let n = Graph.n g in
  if n = 0 then invalid_arg "Instance.random_demands: empty graph";
  let raw = Array.init n (fun _ -> 0.1 +. Hgp_util.Prng.float rng 0.9) in
  let total_cap = Hierarchy.total_capacity h in
  let target = load_factor *. total_cap in
  let sum = Array.fold_left ( +. ) 0. raw in
  let scale = target /. sum in
  (* Clamp to leaf capacity after scaling; the tiny loss of total load keeps
     the instance valid without rejection sampling. *)
  let cap = Hierarchy.leaf_capacity h in
  let demands = Array.map (fun d -> Float.min (d *. scale) cap) raw in
  create g ~demands h

let n t = Graph.n t.graph

let total_demand t = Array.fold_left ( +. ) 0. t.demands

let is_feasible t =
  total_demand t <= Hierarchy.total_capacity t.hierarchy +. 1e-9

let pp ppf t =
  Format.fprintf ppf "instance(%a, %a, demand=%.3g)" Graph.pp t.graph Hierarchy.pp
    t.hierarchy (total_demand t)
