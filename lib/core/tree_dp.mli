(** The RHGPT dynamic program (Theorems 2–4 of the paper).

    {2 Formulation}

    An RHGPT solution on tree [T] is equivalently an {e edge labeling}
    [kappa : E(T) -> {0..h}]: the two sides of edge [e] share the same
    Level-(j) set exactly for levels [j <= kappa e].  For every level [j],
    the connected components of [{e | kappa e >= j}] are the Level-(j) sets
    and must respect [CP(j)].  The cost is
    [sum_e w(e) * cm(kappa e)] ([cm h = 0] when normalized, so uncut edges
    are free).  This is exactly the structure of "nice solutions"
    (Theorem 3): any relaxed set disconnected in [T] can be split at equal
    cost, so optimal solutions are component-shaped.

    The DP walks [T] bottom-up, folding children one at a time (which
    subsumes the paper's binarization).  A state is the signature
    [(D^(1), ..., D^(h))] of the active components through the current node
    (Definition 8); absorbing a child [c] through an edge labeled [j2] adds
    [w(e) * cm(j2)] and merges the child's levels [<= j2], closing the
    deeper ones — the paper's [merge] with [(j1, j2)]-consistency
    (Definition 9, Claim 1).  Tables are sparse (reachable signatures only).

    The returned cost is optimal for the relaxation, hence a lower bound on
    the optimal HGPT assignment cost whenever every tree node carries a job
    (use {!Hgp_tree.Tree.lift_internal_jobs} first for such instances). *)

type config = {
  cm : float array;  (** length [h+1], non-increasing *)
  cp_units : int array;  (** length [h+1], integer capacities per level *)
  bucketing : float option;  (** geometric state compression (E10) *)
  prune : bool;
      (** Pareto dominance pruning: drop states whose signature is pointwise
          >= another state of lower-or-equal cost.  Sound (capacities are
          upper bounds and future cost is signature-independent) and
          preserves the optimal cost; typically shrinks tables by orders of
          magnitude.  Default on. *)
  beam_width : int option;
      (** Optional cap on the number of states kept per table.  [None]
          (default) keeps the DP exact.  With [Some w], tables exceeding [w]
          states after pruning keep only their [w] cheapest — the DP always
          completes (kappa = 0 merges remain feasible from any kept state)
          but optimality may be lost on instances whose Pareto frontier
          exceeds the beam; the end-to-end solver enables this to keep
          heterogeneous-demand instances tractable. *)
}

(** [config_of_hierarchy hy ~resolution ?bucketing ?prune ?beam_width ()]
    derives [cm] and unit capacities from a hierarchy. *)
val config_of_hierarchy :
  Hgp_hierarchy.Hierarchy.t ->
  resolution:int ->
  ?bucketing:float ->
  ?prune:bool ->
  ?beam_width:int ->
  unit ->
  config

type result = {
  cost : float;  (** optimal relaxed cost *)
  kappa : int array;
      (** [kappa.(v)] for non-root [v] is the label of the edge above [v];
          [kappa.(root)] is [0] by convention (the root component closes at
          Level-0). *)
  root_signature : int array;
  states_explored : int;  (** total table entries created, a work measure *)
}

(** [solve ?deadline ?workspace t ~demand_units config] runs the DP.
    [demand_units.(v)] must be [0] for internal nodes.  Returns [None] when
    the instance is infeasible: a single job exceeds a leaf capacity, or the
    total demand exceeds [CP(0)].

    The DP runs on flat struct-of-arrays state (see docs/ARCHITECTURE.md,
    "DP kernel & workspaces"): all scratch comes from a
    {!Hgp_util.Workspace}.  [workspace] lets a caller solving many trees
    (the pipeline's relaxation stage) thread one lease through every solve;
    when absent the solve borrows this domain's resident workspace for its
    own duration.  Either way the workspace is reset on entry — a passed
    lease must not be shared with a concurrent solve.

    [deadline] (default {!Hgp_resilience.Deadline.none}) is polled once per
    tree node and every 256 state considerations inside the merge loop — the
    pipeline's hottest loop — so an expired or cancelled token aborts the DP
    within microseconds at the cost of one branch per iteration.
    @raise Hgp_resilience.Hgp_error.Error ([Deadline_exceeded _]) when the
    deadline fires. *)
val solve :
  ?deadline:Hgp_resilience.Deadline.t ->
  ?workspace:Hgp_util.Workspace.lease ->
  Hgp_tree.Tree.t ->
  demand_units:int array ->
  config ->
  result option

(** A per-subtree DP snapshot: per-node Merkle keys (a node's key folds its
    children's keys plus its local inputs — demand units, child edge
    weights, config) together with the packed per-node state tables and
    backpointer segments of a completed solve.  A later {!solve_snap} over
    the {e same tree shape} diffs Merkle keys and recomputes only the dirty
    cone — ancestors of changed leaves/edges — splicing clean subtree
    tables back in bit-identically (docs/INCREMENTAL.md). *)
type snapshot

type incr_stats = {
  reused_nodes : int;  (** tree nodes spliced/skipped from the snapshot *)
  resolved_nodes : int;  (** tree nodes recomputed (the dirty cone) *)
  reused_states : int;  (** DP states carried over without recomputation *)
}

(** [solve_snap ?prev t ~demand_units config] is {!solve} extended with
    snapshot capture and reuse.  Without [prev] it runs a full DP and
    returns its snapshot; with [prev] (from an earlier [solve_snap] on the
    same tree shape — a mismatched shape is detected and ignored) it
    recomputes only nodes whose subtree Merkle key changed.  The [result]
    (cost, kappa, root signature, and [states_explored]) is bit-identical
    to a cold {!solve} on the same inputs. *)
val solve_snap :
  ?deadline:Hgp_resilience.Deadline.t ->
  ?workspace:Hgp_util.Workspace.lease ->
  ?prev:snapshot ->
  Hgp_tree.Tree.t ->
  demand_units:int array ->
  config ->
  (result * snapshot * incr_stats) option

(** [brute_force t ~demand_units config] enumerates all [(h+1)^(n-1)] edge
    labelings — ground truth for testing, trees with at most ~12 edges. *)
val brute_force : Hgp_tree.Tree.t -> demand_units:int array -> config -> float option

(** [kappa_cost t ~kappa ~cm] re-evaluates [sum_e w(e) * cm(kappa e)]
    (NaN-safe: infinite weights with zero multipliers count as zero). *)
val kappa_cost : Hgp_tree.Tree.t -> kappa:int array -> cm:float array -> float

(** [check_kappa t ~demand_units ~kappa ~cp_units] verifies that every
    Level-(j) component of the labeling fits in [CP(j)]; returns the worst
    ratio [demand / capacity] over levels [1..h]. *)
val check_kappa :
  Hgp_tree.Tree.t -> demand_units:int array -> kappa:int array -> cp_units:int array -> float
