(** Objective functions and capacity accounting for HGP solutions.

    A solution is an array [p] with [p.(v)] the leaf of [H] hosting vertex
    [v].  Two equivalent cost forms are provided: the assignment form
    (Equation 1 of the paper, summed over unordered edges) and the
    mirror-function form (Equation 3); Lemma 2 states they coincide, which
    the test suite checks. *)

(** [assignment_cost inst p] is
    [sum over edges {u,v} of w(u,v) * cm(LCA(p(u), p(v)))]. *)
val assignment_cost : Instance.t -> int array -> float

(** [mirror_cost inst p] is Equation 3:
    [sum over levels j of sum over Level-(j) H-nodes a of
     w(boundary of P(a)) * (cm(j-1) - cm(j)) / 2], where [P(a)] is the set of
    vertices assigned under [a] and the boundary is taken in [G]. *)
val mirror_cost : Instance.t -> int array -> float

(** [leaf_loads inst p] is the demand hosted by each leaf of [H]. *)
val leaf_loads : Instance.t -> int array -> float array

(** [level_violation inst p j] is the maximum over Level-(j) nodes of
    [load / CP(j)] — [<= 1.] means the level's capacities are respected. *)
val level_violation : Instance.t -> int array -> int -> float

(** [max_violation inst p] is the maximum of {!level_violation} over all
    levels [1..h] (leaf level included); [1.0] for a perfectly packed
    solution, [<= 1.] for any feasible one. *)
val max_violation : Instance.t -> int array -> float

(** [is_valid inst p ~slack] checks that every vertex is assigned to a real
    leaf and no leaf [l] exceeds [slack] times its own capacity
    ([leaf_cap hy l] — uniform on regular hierarchies). *)
val is_valid : Instance.t -> int array -> slack:float -> bool
