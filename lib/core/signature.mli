(** Signature vectors for the RHGPT dynamic program (Definition 8).

    A signature [(D^(1), ..., D^(h))] records, for a tree node [v], the
    integer demand of the Level-(j) active set crossing [v] at every level.
    Corollary 1 forces monotonicity [D^(j) >= D^(j+1)] and the capacity
    invariant [D^(j) <= CP(j)]; both are maintained by construction here.

    Signatures are encoded as single non-negative integers (mixed radix over
    per-level capacities) so they can key hash tables.  An optional geometric
    bucketing compresses large values to powers of [(1 + delta)] — the
    Hochbaum–Shmoys state-reduction idea the paper discusses; it trades a
    bounded capacity violation for a smaller state space (ablation E10). *)

type t = {
  h : int;  (** number of tracked levels (1..h) *)
  caps : int array;  (** [caps.(j-1)] = CP(j) in units, for j = 1..h *)
  strides : int array;
  bucket : int -> int;  (** value compression (identity when unbucketed) *)
}

(** [create ~cp_units ?bucketing ()] builds the space.  [cp_units] has length
    [h+1] with [cp_units.(0) = CP(0)] (unused here beyond validation) and must
    be non-increasing.  [bucketing] is the geometric ratio [delta > 0.]. *)
val create : cp_units:int array -> ?bucketing:float -> unit -> t

(** [encode s sg] packs a signature array (length [h]) into an int key.
    Values are bucketed first. *)
val encode : t -> int array -> int

(** [decode s key] unpacks a key into a fresh signature array. *)
val decode : t -> int -> int array

(** [decode_into s key dst ~pos] unpacks a key into [dst.(pos .. pos+h-1)]
    — the allocation-free form the DP merge loop uses to fill its scratch
    signature matrices.  [dst] must have at least [pos + h] slots. *)
val decode_into : t -> int -> int array -> pos:int -> unit

(** [zero s] is the all-zeros signature key (internal node with no leaves
    absorbed yet). *)
val zero : t -> int

(** [of_leaf s units] is the key of the leaf signature [(u, u, ..., u)], or
    [None] when [units] exceeds the leaf-level capacity. *)
val of_leaf : t -> int -> int option

(** [space_size s] is the product of [(caps.(j) + 1)] — the dense upper bound
    on distinct keys (the DP stores only reachable ones). *)
val space_size : t -> int

(** [count_valid s] counts monotone in-capacity signatures — the true state
    bound quoted when reporting DP statistics.  Exponential-care-free: runs in
    [O(h * max_cap^2)] by DP. *)
val count_valid : t -> int
