module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Tree = Hgp_tree.Tree
module Decomposition = Hgp_racke.Decomposition
module Ensemble = Hgp_racke.Ensemble
module Prng = Hgp_util.Prng
module Obs = Hgp_obs.Obs

let log_src = Logs.Src.create "hgp.solver" ~doc:"HGP end-to-end solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  ensemble_size : int;
  eps : float;
  resolution : int option;
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
  strategy : Ensemble.strategy;
  parallel : bool;
  seed : int;
}

let default_max_resolution = 24

let default_options =
  {
    ensemble_size = 4;
    eps = 0.25;
    resolution = None;
    rounding = Demand.Floor;
    bucketing = None;
    beam_width = Some 512;
    strategy = Ensemble.Mixed;
    parallel = false;
    seed = 42;
  }

type solution = {
  assignment : int array;
  cost : float;
  max_violation : float;
  relaxed_tree_cost : float;
  tree_index : int;
  dp_states : int;
}

(* Default resolution: the paper's n/eps capped for tractability, but never
   so coarse that the mean demand rounds to zero units (which would make the
   quantized instance degenerate). *)
let resolution_for ~n ~total_demand ~leaf_capacity options =
  match options.resolution with
  | Some r -> r
  | None ->
    let paper = Demand.resolution_for_eps ~n ~eps:options.eps in
    let mean_d = Float.max 1e-12 (total_demand /. float_of_int n) in
    (* Target >= 4 units for the mean job so floor rounding stays within
       ~25% per job. *)
    let needed = int_of_float (ceil (4. *. leaf_capacity /. mean_d)) in
    min paper (min 4096 (max default_max_resolution needed))

let resolution_of (inst : Instance.t) options =
  resolution_for ~n:(Instance.n inst) ~total_demand:(Instance.total_demand inst)
    ~leaf_capacity:(Hierarchy.leaf_capacity inst.hierarchy)
    options

let quantize_instance (inst : Instance.t) options =
  let resolution = resolution_of inst options in
  let q =
    Demand.quantize ~demands:inst.demands
      ~leaf_capacity:(Hierarchy.leaf_capacity inst.hierarchy)
      ~resolution ~mode:options.rounding
  in
  (q, resolution)

(* Solve the DP + conversion on one decomposition tree; returns the graph
   assignment and statistics. *)
let run_tree (inst : Instance.t) d ~quantized ~resolution ~options =
  let t = Decomposition.tree d in
  let n_nodes = Tree.n_nodes t in
  let demand_units = Array.make n_nodes 0 in
  Array.iter
    (fun l -> demand_units.(l) <- quantized.Demand.units.(Decomposition.vertex_of_leaf d l))
    (Tree.leaves t);
  let cfg =
    Tree_dp.config_of_hierarchy inst.hierarchy ~resolution ?bucketing:options.bucketing
      ?beam_width:options.beam_width ()
  in
  match Obs.span "solver.tree_dp" (fun () -> Tree_dp.solve t ~demand_units cfg) with
  | None -> None
  | Some r ->
    Obs.span "solver.feasible" @@ fun () ->
    let report =
      Feasible.pack t ~kappa:r.kappa ~demand_units ~hierarchy:inst.hierarchy ~resolution
    in
    let assignment = Array.make (Instance.n inst) (-1) in
    Array.iter
      (fun l -> assignment.(Decomposition.vertex_of_leaf d l) <- report.Feasible.assignment.(l))
      (Tree.leaves t);
    Some (assignment, r.cost, r.states_explored)

let finish inst assignment relaxed_tree_cost tree_index dp_states =
  {
    assignment;
    cost = Cost.assignment_cost inst assignment;
    max_violation = Cost.max_violation inst assignment;
    relaxed_tree_cost;
    tree_index;
    dp_states;
  }

let solve_on_decomposition inst d ~options =
  let quantized, resolution = quantize_instance inst options in
  match run_tree inst d ~quantized ~resolution ~options with
  | Some (assignment, relaxed, states) -> finish inst assignment relaxed 0 states
  | None -> failwith "Solver.solve_on_decomposition: quantized instance is infeasible"

let solve ?(options = default_options) inst =
  Obs.span "solver.total"
    ~attrs:
      [
        ("n", string_of_int (Instance.n inst));
        ("strategy", Ensemble.strategy_name options.strategy);
        ("parallel", string_of_bool options.parallel);
      ]
  @@ fun () ->
  let quantized, resolution =
    Obs.span "solver.quantize" (fun () -> quantize_instance inst options)
  in
  Obs.gauge "solver.resolution" (float_of_int resolution);
  let rng = Prng.create options.seed in
  let ensemble =
    Obs.span "solver.ensemble" (fun () ->
        Ensemble.sample ~strategy:options.strategy rng inst.graph
          ~size:options.ensemble_size)
  in
  let n_trees = Ensemble.size ensemble in
  (* Per-tree solves are independent (all shared state is immutable), so they
     can run on separate domains when requested. *)
  let solve_one i =
    run_tree inst (Ensemble.get ensemble i) ~quantized ~resolution ~options
  in
  let results =
    if options.parallel && n_trees > 1 then begin
      let budget = max 1 (Domain.recommended_domain_count () - 1) in
      let results = Array.make n_trees None in
      let i = ref 0 in
      while !i < n_trees do
        let batch = min budget (n_trees - !i) in
        let domains =
          Array.init batch (fun b ->
              let idx = !i + b in
              (* A spawned domain has a fresh span stack, so the per-tree
                 span is a root: per-domain timings stay visible instead of
                 folding into solver.total. *)
              Domain.spawn (fun () ->
                  Obs.span ("solver.domain." ^ string_of_int idx) (fun () ->
                      solve_one idx)))
        in
        Array.iteri (fun b d -> results.(!i + b) <- Domain.join d) domains;
        i := !i + batch
      done;
      results
    end
    else Array.init n_trees solve_one
  in
  Obs.span "solver.select" @@ fun () ->
  let best = ref None in
  let total_states = ref 0 in
  Array.iteri
    (fun i result ->
      match result with
      | None ->
        Obs.count "solver.trees_infeasible" 1;
        Log.debug (fun m -> m "tree %d: infeasible after quantization" i)
      | Some (assignment, relaxed, states) ->
        total_states := !total_states + states;
        let cost = Cost.assignment_cost inst assignment in
        Log.debug (fun m ->
            m "tree %d: relaxed=%.6g cost=%.6g states=%d" i relaxed cost states);
        (match !best with
        | Some (_, c, _, _) when c <= cost -> ()
        | _ -> best := Some (assignment, cost, relaxed, i)))
    results;
  match !best with
  | Some (assignment, _, relaxed, i) ->
    Obs.count "solver.solves" 1;
    Obs.count "solver.dp_states" !total_states;
    Log.info (fun m ->
        m "solved n=%d k=%d resolution=%d: winning tree %d, %d DP states"
          (Instance.n inst)
          (Hierarchy.num_leaves inst.hierarchy)
          resolution i !total_states);
    finish inst assignment relaxed i !total_states
  | None -> failwith "Solver.solve: quantized instance is infeasible on every tree"

let solve_tree tree ~demands hierarchy ~options =
  let n = Tree.n_nodes tree in
  if Array.length demands <> n then invalid_arg "Solver.solve_tree: demands length";
  let lifted, job_leaf = Tree.lift_internal_jobs tree in
  let resolution =
    resolution_for ~n ~total_demand:(Array.fold_left ( +. ) 0. demands)
      ~leaf_capacity:(Hierarchy.leaf_capacity hierarchy)
      options
  in
  let q =
    Demand.quantize ~demands ~leaf_capacity:(Hierarchy.leaf_capacity hierarchy) ~resolution
      ~mode:options.rounding
  in
  let demand_units = Array.make (Tree.n_nodes lifted) 0 in
  Array.iteri (fun v l -> demand_units.(l) <- q.Demand.units.(v)) job_leaf;
  let cfg =
    Tree_dp.config_of_hierarchy hierarchy ~resolution ?bucketing:options.bucketing
      ?beam_width:options.beam_width ()
  in
  match Tree_dp.solve lifted ~demand_units cfg with
  | None -> failwith "Solver.solve_tree: quantized instance is infeasible"
  | Some r ->
    let report =
      Feasible.pack lifted ~kappa:r.kappa ~demand_units ~hierarchy ~resolution
    in
    let assignment = Array.map (fun l -> report.Feasible.assignment.(l)) job_leaf in
    (* Equation-1 cost with the tree's own edges as communication demands. *)
    let cost = ref 0. in
    for v = 0 to n - 1 do
      if v <> Tree.root tree then begin
        let w = Tree.edge_weight tree v in
        let c = Hierarchy.edge_cost hierarchy assignment.(v) assignment.(Tree.parent tree v) in
        if c <> 0. then cost := !cost +. (w *. c)
      end
    done;
    (* True-demand violation factor. *)
    let worst = ref 0. in
    let h = Hierarchy.height hierarchy in
    for j = 1 to h do
      let loads = Array.make (Hierarchy.nodes_at_level hierarchy j) 0. in
      Array.iteri
        (fun v leaf ->
          let a = Hierarchy.ancestor hierarchy ~level:j leaf in
          loads.(a) <- loads.(a) +. demands.(v))
        assignment;
      let cap = Hierarchy.capacity hierarchy j in
      Array.iter (fun l -> worst := Float.max !worst (l /. cap)) loads
    done;
    (assignment, !cost, r.cost, !worst)
