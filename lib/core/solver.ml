module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Tree = Hgp_tree.Tree
module Decomposition = Hgp_racke.Decomposition
module Ensemble = Hgp_racke.Ensemble
module Prng = Hgp_util.Prng
module Obs = Hgp_obs.Obs
module Hgp_error = Hgp_resilience.Hgp_error
module Deadline = Hgp_resilience.Deadline

let log_src = Logs.Src.create "hgp.solver" ~doc:"HGP end-to-end solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  ensemble_size : int;
  eps : float;
  resolution : int option;
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
  strategy : Ensemble.strategy;
  parallel : bool;
  seed : int;
}

let default_max_resolution = 24

let default_options =
  {
    ensemble_size = 4;
    eps = 0.25;
    resolution = None;
    rounding = Demand.Floor;
    bucketing = None;
    beam_width = Some 512;
    strategy = Ensemble.Mixed;
    parallel = false;
    seed = 42;
  }

type solution = {
  assignment : int array;
  cost : float;
  max_violation : float;
  relaxed_tree_cost : float;
  tree_index : int;
  dp_states : int;
}

(* Default resolution: the paper's n/eps capped for tractability, but never
   so coarse that the mean demand rounds to zero units (which would make the
   quantized instance degenerate). *)
let resolution_for ~n ~total_demand ~leaf_capacity options =
  match options.resolution with
  | Some r -> r
  | None ->
    let paper = Demand.resolution_for_eps ~n ~eps:options.eps in
    let mean_d = Float.max 1e-12 (total_demand /. float_of_int n) in
    (* Target >= 4 units for the mean job so floor rounding stays within
       ~25% per job. *)
    let needed = int_of_float (ceil (4. *. leaf_capacity /. mean_d)) in
    min paper (min 4096 (max default_max_resolution needed))

let resolution_of (inst : Instance.t) options =
  resolution_for ~n:(Instance.n inst) ~total_demand:(Instance.total_demand inst)
    ~leaf_capacity:(Hierarchy.leaf_capacity inst.hierarchy)
    options

let quantize_instance (inst : Instance.t) options =
  let resolution = resolution_of inst options in
  let q =
    Demand.quantize ~demands:inst.demands
      ~leaf_capacity:(Hierarchy.leaf_capacity inst.hierarchy)
      ~resolution ~mode:options.rounding
  in
  (q, resolution)

(* Solve the DP + conversion on one decomposition tree; returns the graph
   assignment and statistics. *)
let run_tree ?(deadline = Deadline.none) (inst : Instance.t) d ~quantized ~resolution
    ~options =
  let t = Decomposition.tree d in
  let n_nodes = Tree.n_nodes t in
  let demand_units = Array.make n_nodes 0 in
  Array.iter
    (fun l -> demand_units.(l) <- quantized.Demand.units.(Decomposition.vertex_of_leaf d l))
    (Tree.leaves t);
  let cfg =
    Tree_dp.config_of_hierarchy inst.hierarchy ~resolution ?bucketing:options.bucketing
      ?beam_width:options.beam_width ()
  in
  match Obs.span "solver.tree_dp" (fun () -> Tree_dp.solve ~deadline t ~demand_units cfg) with
  | None -> None
  | Some r ->
    Obs.span "solver.feasible" @@ fun () ->
    let report =
      Feasible.pack ~deadline t ~kappa:r.kappa ~demand_units ~hierarchy:inst.hierarchy
        ~resolution
    in
    let assignment = Array.make (Instance.n inst) (-1) in
    Array.iter
      (fun l -> assignment.(Decomposition.vertex_of_leaf d l) <- report.Feasible.assignment.(l))
      (Tree.leaves t);
    Some (assignment, r.cost, r.states_explored)

let finish inst assignment relaxed_tree_cost tree_index dp_states =
  {
    assignment;
    cost = Cost.assignment_cost inst assignment;
    max_violation = Cost.max_violation inst assignment;
    relaxed_tree_cost;
    tree_index;
    dp_states;
  }

let infeasible ~resolution ~retried =
  Hgp_error.error
    (Hgp_error.Infeasible
       {
         resolution;
         retried;
         msg = "quantized instance admits no packing on any decomposition tree";
       })

let solve_on_decomposition inst d ~options =
  let quantized, resolution = quantize_instance inst options in
  match run_tree inst d ~quantized ~resolution ~options with
  | Some (assignment, relaxed, states) -> finish inst assignment relaxed 0 states
  | None -> infeasible ~resolution ~retried:false

(* One full ensemble pass at the options' resolution; [None] when every tree
   is infeasible after quantization. *)
let solve_pipeline inst options =
  let quantized, resolution =
    Obs.span "solver.quantize" (fun () -> quantize_instance inst options)
  in
  Obs.gauge "solver.resolution" (float_of_int resolution);
  let rng = Prng.create options.seed in
  let ensemble =
    Obs.span "solver.ensemble" (fun () ->
        Ensemble.sample ~strategy:options.strategy rng inst.graph
          ~size:options.ensemble_size)
  in
  let n_trees = Ensemble.size ensemble in
  (* Per-tree solves are independent (all shared state is immutable), so they
     can run on separate domains when requested. *)
  let solve_one i =
    run_tree inst (Ensemble.get ensemble i) ~quantized ~resolution ~options
  in
  let results =
    if options.parallel && n_trees > 1 then begin
      let budget = max 1 (Domain.recommended_domain_count () - 1) in
      let results = Array.make n_trees None in
      let i = ref 0 in
      while !i < n_trees do
        let batch = min budget (n_trees - !i) in
        let domains =
          Array.init batch (fun b ->
              let idx = !i + b in
              (* A spawned domain has a fresh span stack, so the per-tree
                 span is a root: per-domain timings stay visible instead of
                 folding into solver.total. *)
              Domain.spawn (fun () ->
                  Obs.span ("solver.domain." ^ string_of_int idx) (fun () ->
                      solve_one idx)))
        in
        Array.iteri (fun b d -> results.(!i + b) <- Domain.join d) domains;
        i := !i + batch
      done;
      results
    end
    else Array.init n_trees solve_one
  in
  Obs.span "solver.select" @@ fun () ->
  let best = ref None in
  let total_states = ref 0 in
  Array.iteri
    (fun i result ->
      match result with
      | None ->
        Obs.count "solver.trees_infeasible" 1;
        Log.debug (fun m -> m "tree %d: infeasible after quantization" i)
      | Some (assignment, relaxed, states) ->
        total_states := !total_states + states;
        let cost = Cost.assignment_cost inst assignment in
        Log.debug (fun m ->
            m "tree %d: relaxed=%.6g cost=%.6g states=%d" i relaxed cost states);
        (match !best with
        | Some (_, c, _, _) when c <= cost -> ()
        | _ -> best := Some (assignment, cost, relaxed, i)))
    results;
  match !best with
  | Some (assignment, _, relaxed, i) ->
    Obs.count "solver.solves" 1;
    Obs.count "solver.dp_states" !total_states;
    Log.info (fun m ->
        m "solved n=%d k=%d resolution=%d: winning tree %d, %d DP states"
          (Instance.n inst)
          (Hierarchy.num_leaves inst.hierarchy)
          resolution i !total_states);
    Some (finish inst assignment relaxed i !total_states)
  | None -> None

(* Retry policy for infeasible quantizations: one shot at a finer resolution
   with Floor rounding.  Finer units shrink Ceil's per-job overshoot (the
   usual cause of spurious infeasibility), and Floor never overshoots at
   all, so a second failure means the instance is overloaded for real. *)
let retry_options inst options =
  let r = resolution_of inst options in
  let r' = min 4096 (max (r + 1) (4 * r)) in
  if r' <= r && options.rounding = Demand.Floor then None
  else Some ({ options with resolution = Some r'; rounding = Demand.Floor }, r')

let solve ?(options = default_options) inst =
  Obs.span "solver.total"
    ~attrs:
      [
        ("n", string_of_int (Instance.n inst));
        ("strategy", Ensemble.strategy_name options.strategy);
        ("parallel", string_of_bool options.parallel);
      ]
  @@ fun () ->
  match solve_pipeline inst options with
  | Some s -> s
  | None -> (
    match retry_options inst options with
    | None -> infeasible ~resolution:(resolution_of inst options) ~retried:false
    | Some (options', r') -> (
      Obs.count "solver.resolution_retries" 1;
      Log.info (fun m ->
          m "infeasible at resolution %d; retrying at %d with floor rounding"
            (resolution_of inst options) r');
      match solve_pipeline inst options' with
      | Some s -> s
      | None -> infeasible ~resolution:r' ~retried:true))

(* ---- supervised solve: fault isolation + deadline + degradation ladder ---- *)

type fallback = string * (Instance.t -> int array)

type supervised = {
  solution : solution;
  certificate : Verify.report;
  rung : string;
  rungs_tried : string list;
  degraded : bool;
  tree_failures : Hgp_error.t list;
  errors : Hgp_error.t list;
}

(* Demand-aware least-loaded placement: ignores communication cost entirely
   but runs in O(n (log n + k)), never raises, and keeps every leaf load
   within one job of the balanced optimum — the ladder's bottom rung. *)
let emergency_assignment (inst : Instance.t) =
  let n = Instance.n inst in
  let k = Hierarchy.num_leaves inst.hierarchy in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare inst.demands.(b) inst.demands.(a)) order;
  let loads = Array.make k 0. in
  let assignment = Array.make n (-1) in
  Array.iter
    (fun v ->
      let best = ref 0 in
      for l = 1 to k - 1 do
        if loads.(l) < loads.(!best) then best := l
      done;
      assignment.(v) <- !best;
      loads.(!best) <- loads.(!best) +. inst.demands.(v))
    order;
  assignment

(* The isolated ensemble pass used by the supervisor: every per-tree step
   (decomposition build, DP, packing) is fenced, so one bad tree — or one
   dead domain — costs ensemble diversity, never the solve. *)
let run_ensemble_isolated inst options ~deadline ~record_tree ~record =
  let quantized, resolution =
    Obs.span "solver.quantize" (fun () -> quantize_instance inst options)
  in
  Obs.gauge "solver.resolution" (float_of_int resolution);
  let rng = Prng.create options.seed in
  let ensemble, build_failures =
    Obs.span "solver.ensemble" (fun () ->
        Ensemble.sample_isolated ~strategy:options.strategy ~deadline rng inst.graph
          ~size:options.ensemble_size)
  in
  List.iter
    (fun (i, exn) ->
      record_tree
        (Hgp_error.Tree_failure
           { tree_index = i; stage = "decomposition"; msg = Hgp_error.message_of_exn exn }))
    build_failures;
  let n_trees = Ensemble.size ensemble in
  let deadline_seen = ref false in
  let record_result i = function
    | Ok r -> Some (i, r)
    | Error (Hgp_error.Error (Hgp_error.Deadline_exceeded _ as e)) ->
      (* One deadline report, not one per surviving tree. *)
      if not !deadline_seen then begin
        deadline_seen := true;
        record e
      end;
      None
    | Error exn ->
      record_tree
        (Hgp_error.Tree_failure
           { tree_index = i; stage = "dp"; msg = Hgp_error.message_of_exn exn });
      None
  in
  let solve_one i =
    try
      Deadline.check deadline ~stage:"ensemble";
      Ok (run_tree ~deadline inst (Ensemble.get ensemble i) ~quantized ~resolution ~options)
    with exn -> Error exn
  in
  let outcomes =
    if options.parallel && n_trees > 1 then begin
      let budget = max 1 (Domain.recommended_domain_count () - 1) in
      let outcomes = Array.make n_trees (Error Stdlib.Exit) in
      let i = ref 0 in
      while !i < n_trees do
        let batch = min budget (n_trees - !i) in
        let domains =
          Array.init batch (fun b ->
              let idx = !i + b in
              Domain.spawn (fun () ->
                  Obs.span ("solver.domain." ^ string_of_int idx) (fun () ->
                      solve_one idx)))
        in
        (* [solve_one] already fences the work, so [join] raising means the
           domain itself died — isolate that too. *)
        Array.iteri
          (fun b d ->
            outcomes.(!i + b) <-
              (try Domain.join d
               with exn ->
                 Error
                   (Hgp_error.Error
                      (Hgp_error.Domain_crash
                         { tree_index = !i + b; msg = Hgp_error.message_of_exn exn }))))
          domains;
        i := !i + batch
      done;
      outcomes
    end
    else Array.init n_trees solve_one
  in
  let best = ref None in
  let total_states = ref 0 in
  Array.iteri
    (fun i outcome ->
      match record_result i outcome with
      | None -> ()
      | Some (_, None) -> Obs.count "solver.trees_infeasible" 1
      | Some (_, Some (assignment, relaxed, states)) ->
        total_states := !total_states + states;
        let cost = Cost.assignment_cost inst assignment in
        (match !best with
        | Some (_, c, _, _) when c <= cost -> ()
        | _ -> best := Some (assignment, cost, relaxed, i)))
    outcomes;
  match !best with
  | Some (assignment, _, relaxed, i) ->
    Obs.count "solver.dp_states" !total_states;
    Some (assignment, relaxed, i, !total_states)
  | None -> None

let reduced_options options resolution =
  {
    options with
    ensemble_size = 1;
    strategy = Ensemble.Pure Decomposition.Low_diameter;
    parallel = false;
    beam_width = Some (match options.beam_width with Some b -> min b 64 | None -> 64);
    resolution = Some (max 8 (resolution / 2));
  }

let solve_supervised ?(options = default_options) ?deadline_ms ?(fallbacks = []) inst =
  Obs.span "solver.supervised"
    ~attrs:
      [
        ("n", string_of_int (Instance.n inst));
        ( "deadline_ms",
          match deadline_ms with None -> "none" | Some ms -> Printf.sprintf "%.1f" ms );
      ]
  @@ fun () ->
  let deadline = Deadline.of_budget_ms deadline_ms in
  let errors = ref [] in
  let tree_failures = ref [] in
  let record e = errors := e :: !errors in
  let record_tree e =
    tree_failures := e :: !tree_failures;
    record e;
    Obs.count "supervisor.tree_failures" 1
  in
  let h = Hierarchy.height inst.hierarchy in
  let bound = Feasible.theoretical_violation_bound ~h ~eps:options.eps in
  let rungs_tried = ref [] in
  (* Certification gate: a rung's candidate only wins if it stands on its
     own — complete and within the Theorem-2 violation budget — checked
     independently of how it was produced, so corrupted pipelines cannot
     smuggle a bad answer through. *)
  let certify_candidate ~rung assignment =
    let cert = Verify.certify inst assignment ~eps:options.eps in
    if cert.Verify.assignment_complete && cert.Verify.max_violation <= bound +. 1e-9 then
      Some cert
    else begin
      Obs.count "supervisor.rejected_candidates" 1;
      record
        (Hgp_error.Internal
           {
             stage = rung;
             msg =
               Printf.sprintf
                 "candidate failed certification (complete=%b violation=%.3f bound=%.3f)"
                 cert.Verify.assignment_complete cert.Verify.max_violation bound;
           });
      None
    end
  in
  (* Each rung returns [(assignment, relaxed_cost, tree_index, dp_states)]
     or [None]; [try_rung] fences it and certifies whatever comes out. *)
  let try_rung name f =
    rungs_tried := name :: !rungs_tried;
    match Obs.span ("supervisor.rung." ^ name) f with
    | exception Hgp_error.Error e ->
      record e;
      None
    | exception exn ->
      record (Hgp_error.Internal { stage = name; msg = Hgp_error.message_of_exn exn });
      None
    | None -> None
    | Some (assignment, relaxed, tree_index, states) -> (
      match certify_candidate ~rung:name assignment with
      | None -> None
      | Some cert -> Some (finish inst assignment relaxed tree_index states, cert))
  in
  let ensemble_rung () = run_ensemble_isolated inst options ~deadline ~record_tree ~record in
  let reduced_rung () =
    Deadline.check deadline ~stage:"reduced";
    let options = reduced_options options (resolution_of inst options) in
    run_ensemble_isolated inst options ~deadline ~record_tree ~record
  in
  let fallback_rung name f () =
    Deadline.check deadline ~stage:name;
    Some (f inst, Float.nan, -1, 0)
  in
  (* The emergency rung carries no deadline check on purpose: it is the
     bounded-time floor of the ladder, always allowed to run. *)
  let emergency_rung () = Some (emergency_assignment inst, Float.nan, -1, 0) in
  let ladder =
    (("ensemble", ensemble_rung) :: ("reduced", reduced_rung)
     :: List.map (fun (name, f) -> (name, fallback_rung name f)) fallbacks)
    @ [ ("emergency", emergency_rung) ]
  in
  let rec descend index = function
    | [] ->
      Obs.count "supervisor.failures" 1;
      Error
        (Hgp_error.Infeasible
           {
             resolution = resolution_of inst options;
             retried = false;
             msg = "no degradation rung produced a certifiable assignment";
           })
    | (name, f) :: rest -> (
      match try_rung name f with
      | None ->
        Obs.count "supervisor.degradations" 1;
        descend (index + 1) rest
      | Some (solution, certificate) ->
        Obs.count "supervisor.solves" 1;
        Obs.count ("supervisor.rung." ^ name ^ ".wins") 1;
        Obs.gauge "supervisor.rung_index" (float_of_int index);
        let degraded = index > 0 || !tree_failures <> [] in
        Log.info (fun m ->
            m "supervised solve: rung %s (index %d), %d tree failures%s" name index
              (List.length !tree_failures)
              (if degraded then " [degraded]" else ""));
        Ok
          {
            solution;
            certificate;
            rung = name;
            rungs_tried = List.rev !rungs_tried;
            degraded;
            tree_failures = List.rev !tree_failures;
            errors = List.rev !errors;
          })
  in
  descend 0 ladder

let solve_tree tree ~demands hierarchy ~options =
  let n = Tree.n_nodes tree in
  if Array.length demands <> n then invalid_arg "Solver.solve_tree: demands length";
  let lifted, job_leaf = Tree.lift_internal_jobs tree in
  let resolution =
    resolution_for ~n ~total_demand:(Array.fold_left ( +. ) 0. demands)
      ~leaf_capacity:(Hierarchy.leaf_capacity hierarchy)
      options
  in
  let q =
    Demand.quantize ~demands ~leaf_capacity:(Hierarchy.leaf_capacity hierarchy) ~resolution
      ~mode:options.rounding
  in
  let demand_units = Array.make (Tree.n_nodes lifted) 0 in
  Array.iteri (fun v l -> demand_units.(l) <- q.Demand.units.(v)) job_leaf;
  let cfg =
    Tree_dp.config_of_hierarchy hierarchy ~resolution ?bucketing:options.bucketing
      ?beam_width:options.beam_width ()
  in
  match Tree_dp.solve lifted ~demand_units cfg with
  | None -> infeasible ~resolution ~retried:false
  | Some r ->
    let report =
      Feasible.pack lifted ~kappa:r.kappa ~demand_units ~hierarchy ~resolution
    in
    let assignment = Array.map (fun l -> report.Feasible.assignment.(l)) job_leaf in
    (* Equation-1 cost with the tree's own edges as communication demands. *)
    let cost = ref 0. in
    for v = 0 to n - 1 do
      if v <> Tree.root tree then begin
        let w = Tree.edge_weight tree v in
        let c = Hierarchy.edge_cost hierarchy assignment.(v) assignment.(Tree.parent tree v) in
        if c <> 0. then cost := !cost +. (w *. c)
      end
    done;
    (* True-demand violation factor. *)
    let worst = ref 0. in
    let h = Hierarchy.height hierarchy in
    for j = 1 to h do
      let loads = Array.make (Hierarchy.nodes_at_level hierarchy j) 0. in
      Array.iteri
        (fun v leaf ->
          let a = Hierarchy.ancestor hierarchy ~level:j leaf in
          loads.(a) <- loads.(a) +. demands.(v))
        assignment;
      let cap = Hierarchy.capacity hierarchy j in
      Array.iter (fun l -> worst := Float.max !worst (l /. cap)) loads
    done;
    (assignment, !cost, r.cost, !worst)
