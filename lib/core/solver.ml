module Hierarchy = Hgp_hierarchy.Hierarchy
module Tree = Hgp_tree.Tree
module Decomposition = Hgp_racke.Decomposition
module Ensemble = Hgp_racke.Ensemble
module Obs = Hgp_obs.Obs
module Hgp_error = Hgp_resilience.Hgp_error
module Deadline = Hgp_resilience.Deadline

let log_src = Logs.Src.create "hgp.solver" ~doc:"HGP end-to-end solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* The staged pipeline (prepare -> embed -> relax -> pack) owns the artifact
   types and the caches; this module keeps the public entry points: retry
   policy, the supervised degradation ladder, and the HGPT special case. *)

type options = Pipeline.options = {
  ensemble_size : int;
  eps : float;
  resolution : int option;
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
  strategy : Ensemble.strategy;
  parallel : bool;
  seed : int;
}

let default_max_resolution = Pipeline.default_max_resolution
let default_options = Pipeline.default_options

type solution = Pipeline.solution = {
  assignment : int array;
  cost : float;
  max_violation : float;
  relaxed_tree_cost : float;
  tree_index : int;
  dp_states : int;
  cached_dp_states : int;
}

let resolution_of = Pipeline.resolution_of
let resolution_clamped = Pipeline.resolution_clamped

let infeasible ~resolution ~retried =
  Hgp_error.error
    (Hgp_error.Infeasible
       {
         resolution;
         retried;
         msg = "quantized instance admits no packing on any decomposition tree";
       })

let solve_on_decomposition = Pipeline.solve_on_decomposition

(* Retry policy for infeasible quantizations: one shot at a finer resolution
   with Floor rounding.  Finer units shrink Ceil's per-job overshoot (the
   usual cause of spurious infeasibility), and Floor never overshoots at
   all, so a second failure means the instance is overloaded for real.  The
   ensemble is keyed on (graph, strategy, seed, size) only, so the retry
   reuses the already-sampled trees. *)
let retry_options inst options =
  let r = resolution_of inst options in
  let r' = min 4096 (max (r + 1) (4 * r)) in
  if r' <= r && options.rounding = Demand.Floor then None
  else Some ({ options with resolution = Some r'; rounding = Demand.Floor }, r')

let solve ?(options = default_options) inst =
  Obs.span "solver.total"
    ~attrs:
      [
        ("n", string_of_int (Instance.n inst));
        ("strategy", Ensemble.strategy_name options.strategy);
        ("parallel", string_of_bool options.parallel);
      ]
  @@ fun () ->
  match Pipeline.run inst options with
  | Some s -> s
  | None -> (
    match retry_options inst options with
    | None -> infeasible ~resolution:(resolution_of inst options) ~retried:false
    | Some (options', r') -> (
      Obs.count "solver.resolution_retries" 1;
      Log.info (fun m ->
          m "infeasible at resolution %d; retrying at %d with floor rounding"
            (resolution_of inst options) r');
      match Pipeline.run inst options' with
      | Some s -> s
      | None -> infeasible ~resolution:r' ~retried:true))

(* ---- supervised solve: fault isolation + deadline + degradation ladder ---- *)

type fallback = string * (Instance.t -> int array)

type supervised = {
  solution : solution;
  certificate : Verify.report;
  rung : string;
  rungs_tried : string list;
  degraded : bool;
  tree_failures : Hgp_error.t list;
  errors : Hgp_error.t list;
}

(* Demand-aware least-loaded placement: ignores communication cost entirely
   but runs in O(n (log n + k)), never raises, and keeps every leaf load
   within one job of the balanced optimum — the ladder's bottom rung. *)
let emergency_assignment (inst : Instance.t) =
  let n = Instance.n inst in
  let hy = inst.hierarchy in
  let k = Hierarchy.num_leaves hy in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare inst.demands.(b) inst.demands.(a)) order;
  let loads = Array.make k 0. in
  let assignment = Array.make n (-1) in
  (* Ragged trees weight the choice by leaf capacity (least relative load);
     regular trees keep the exact historical least-absolute-load rule. *)
  let caps = Array.init k (fun l -> Hierarchy.leaf_cap hy l) in
  let regular = Hierarchy.is_regular hy in
  let better l best =
    if regular then loads.(l) < loads.(best)
    else loads.(l) *. caps.(best) < loads.(best) *. caps.(l)
  in
  Array.iter
    (fun v ->
      let best = ref 0 in
      for l = 1 to k - 1 do
        if better l !best then best := l
      done;
      assignment.(v) <- !best;
      loads.(!best) <- loads.(!best) +. inst.demands.(v))
    order;
  assignment

let reduced_options options resolution =
  {
    options with
    ensemble_size = 1;
    strategy = Ensemble.Pure Decomposition.Low_diameter;
    parallel = false;
    beam_width = Some (match options.beam_width with Some b -> min b 64 | None -> 64);
    resolution = Some (max 8 (resolution / 2));
  }

(* A fallback rung carries no tree relaxation; its solution is costed
   directly on the graph. *)
let heuristic_solution inst assignment =
  {
    assignment;
    cost = Cost.assignment_cost inst assignment;
    max_violation = Cost.max_violation inst assignment;
    relaxed_tree_cost = Float.nan;
    tree_index = -1;
    dp_states = 0;
    cached_dp_states = 0;
  }

let solve_supervised ?(options = default_options) ?deadline_ms ?(fallbacks = []) inst =
  Obs.span "solver.supervised"
    ~attrs:
      [
        ("n", string_of_int (Instance.n inst));
        ( "deadline_ms",
          match deadline_ms with None -> "none" | Some ms -> Printf.sprintf "%.1f" ms );
      ]
  @@ fun () ->
  let deadline = Deadline.of_budget_ms deadline_ms in
  let errors = ref [] in
  let tree_failures = ref [] in
  let record e = errors := e :: !errors in
  let record_tree e =
    tree_failures := e :: !tree_failures;
    record e;
    Obs.count "supervisor.tree_failures" 1
  in
  let supervision = { Pipeline.deadline; record_tree; record } in
  let h = Hierarchy.height inst.hierarchy in
  let bound = Feasible.theoretical_violation_bound ~h ~eps:options.eps in
  let rungs_tried = ref [] in
  (* Certification gate: a rung's candidate only wins if it stands on its
     own — complete and within the Theorem-2 violation budget — checked
     independently of how it was produced, so corrupted pipelines cannot
     smuggle a bad answer through. *)
  let certify_candidate ~rung assignment =
    let cert = Verify.certify inst assignment ~eps:options.eps in
    if cert.Verify.assignment_complete && cert.Verify.max_violation <= bound +. 1e-9 then
      Some cert
    else begin
      Obs.count "supervisor.rejected_candidates" 1;
      record
        (Hgp_error.Internal
           {
             stage = rung;
             msg =
               Printf.sprintf
                 "candidate failed certification (complete=%b violation=%.3f bound=%.3f)"
                 cert.Verify.assignment_complete cert.Verify.max_violation bound;
           });
      None
    end
  in
  (* Each rung returns a [solution option]; [try_rung] fences it and
     certifies whatever comes out. *)
  let try_rung name f =
    rungs_tried := name :: !rungs_tried;
    match Obs.span ("supervisor.rung." ^ name) f with
    | exception Hgp_error.Error e ->
      record e;
      None
    | exception exn ->
      record (Hgp_error.Internal { stage = name; msg = Hgp_error.message_of_exn exn });
      None
    | None -> None
    | Some solution -> (
      match certify_candidate ~rung:name solution.assignment with
      | None -> None
      | Some cert -> Some (solution, cert))
  in
  let ensemble_rung () = Pipeline.run ~supervision inst options in
  let reduced_rung () =
    Deadline.check deadline ~stage:"reduced";
    let options = reduced_options options (resolution_of inst options) in
    Pipeline.run ~supervision inst options
  in
  let fallback_rung name f () =
    Deadline.check deadline ~stage:name;
    Some (heuristic_solution inst (f inst))
  in
  (* The emergency rung carries no deadline check on purpose: it is the
     bounded-time floor of the ladder, always allowed to run. *)
  let emergency_rung () = Some (heuristic_solution inst (emergency_assignment inst)) in
  let ladder =
    (("ensemble", ensemble_rung) :: ("reduced", reduced_rung)
     :: List.map (fun (name, f) -> (name, fallback_rung name f)) fallbacks)
    @ [ ("emergency", emergency_rung) ]
  in
  let rec descend index = function
    | [] ->
      Obs.count "supervisor.failures" 1;
      Error
        (Hgp_error.Infeasible
           {
             resolution = resolution_of inst options;
             retried = false;
             msg = "no degradation rung produced a certifiable assignment";
           })
    | (name, f) :: rest -> (
      match try_rung name f with
      | None ->
        Obs.count "supervisor.degradations" 1;
        descend (index + 1) rest
      | Some (solution, certificate) ->
        Obs.count "supervisor.solves" 1;
        Obs.count ("supervisor.rung." ^ name ^ ".wins") 1;
        Obs.gauge "supervisor.rung_index" (float_of_int index);
        let degraded = index > 0 || !tree_failures <> [] in
        Log.info (fun m ->
            m "supervised solve: rung %s (index %d), %d tree failures%s" name index
              (List.length !tree_failures)
              (if degraded then " [degraded]" else ""));
        Ok
          {
            solution;
            certificate;
            rung = name;
            rungs_tried = List.rev !rungs_tried;
            degraded;
            tree_failures = List.rev !tree_failures;
            errors = List.rev !errors;
          })
  in
  descend 0 ladder

let solve_tree tree ~demands hierarchy ~options =
  let n = Tree.n_nodes tree in
  if Array.length demands <> n then invalid_arg "Solver.solve_tree: demands length";
  let lifted, job_leaf = Tree.lift_internal_jobs tree in
  let resolution =
    Pipeline.resolution_for ~n ~total_demand:(Array.fold_left ( +. ) 0. demands)
      ~leaf_capacity:(Hierarchy.leaf_capacity hierarchy)
      options
  in
  let q =
    Demand.quantize ~demands ~leaf_capacity:(Hierarchy.leaf_capacity hierarchy) ~resolution
      ~mode:options.rounding
  in
  let demand_units = Array.make (Tree.n_nodes lifted) 0 in
  Array.iteri (fun v l -> demand_units.(l) <- q.Demand.units.(v)) job_leaf;
  let cfg =
    Tree_dp.config_of_hierarchy hierarchy ~resolution ?bucketing:options.bucketing
      ?beam_width:options.beam_width ()
  in
  match Tree_dp.solve lifted ~demand_units cfg with
  | None -> infeasible ~resolution ~retried:false
  | Some r ->
    let report =
      Feasible.pack lifted ~kappa:r.kappa ~demand_units ~hierarchy ~resolution
    in
    let assignment = Array.map (fun l -> report.Feasible.assignment.(l)) job_leaf in
    (* Equation-1 cost with the tree's own edges as communication demands. *)
    let cost = ref 0. in
    for v = 0 to n - 1 do
      if v <> Tree.root tree then begin
        let w = Tree.edge_weight tree v in
        let c = Hierarchy.edge_cost hierarchy assignment.(v) assignment.(Tree.parent tree v) in
        if c <> 0. then cost := !cost +. (w *. c)
      end
    done;
    (* True-demand violation factor. *)
    let worst = ref 0. in
    let h = Hierarchy.height hierarchy in
    for j = 1 to h do
      let loads = Array.make (Hierarchy.nodes_at_level hierarchy j) 0. in
      Array.iteri
        (fun v leaf ->
          let a = Hierarchy.ancestor hierarchy ~level:j leaf in
          loads.(a) <- loads.(a) +. demands.(v))
        assignment;
      Array.iteri
        (fun idx l ->
          worst := Float.max !worst (l /. Hierarchy.capacity_of hierarchy ~level:j idx))
        loads
    done;
    (assignment, !cost, r.cost, !worst)
