module Tree = Hgp_tree.Tree
module Hierarchy = Hgp_hierarchy.Hierarchy
module Obs = Hgp_obs.Obs
module Deadline = Hgp_resilience.Deadline
module Faults = Hgp_resilience.Faults

type config = {
  cm : float array;
  cp_units : int array;
  bucketing : float option;
  prune : bool;
  beam_width : int option;
}

let config_of_hierarchy hy ~resolution ?bucketing ?(prune = true) ?beam_width () =
  let h = Hierarchy.height hy in
  {
    cm = Array.init (h + 1) (Hierarchy.cm hy);
    cp_units = Array.init (h + 1) (fun j -> resolution * Hierarchy.leaves_under hy j);
    bucketing;
    prune;
    beam_width;
  }

type result = {
  cost : float;
  kappa : int array;
  root_signature : int array;
  states_explored : int;
}

(* w *. c with the convention inf *. 0. = 0. (uncut infinite edges are free). *)
let pay w c = if c = 0. then 0. else w *. c

let validate_config cfg =
  let h = Array.length cfg.cm - 1 in
  if Array.length cfg.cp_units <> h + 1 then
    invalid_arg "Tree_dp: cm / cp_units length mismatch";
  for j = 0 to h - 1 do
    if cfg.cm.(j) < cfg.cm.(j + 1) then invalid_arg "Tree_dp: cm must be non-increasing"
  done;
  h

(* Pareto-prune a state table: drop any signature that is pointwise >= some
   other signature of lower-or-equal cost.  Sound: capacities are upper
   bounds, so a smaller active-set vector admits every completion of a larger
   one at the same future cost; the optimal final cost is preserved because
   states are scanned in increasing cost order and the cheapest is always
   kept. *)
let pareto_prune space h tbl =
  if Hashtbl.length tbl <= 1 then tbl
  else begin
    let entries =
      Hashtbl.fold (fun k c acc -> (c, k, Signature.decode space k) :: acc) tbl []
    in
    let entries = List.sort (fun (c1, k1, _) (c2, k2, _) -> compare (c1, k1) (c2, k2)) entries in
    let kept = ref [] in
    let out = Hashtbl.create 16 in
    List.iter
      (fun (c, k, sg) ->
        let dominated =
          List.exists
            (fun sg' ->
              let ok = ref true in
              for j = 0 to h - 1 do
                if sg'.(j) > sg.(j) then ok := false
              done;
              !ok)
            !kept
        in
        if not dominated then begin
          kept := sg :: !kept;
          Hashtbl.replace out k c
        end)
      entries;
    out
  end

(* Beam truncation: when a table outgrows the budget, keep the lowest-cost
   states.  The DP stays complete (kappa = 0 merges are always feasible from
   any kept state) but may lose optimality; with [None] the DP is exact. *)
let beam_truncate beam tbl =
  match beam with
  | None -> tbl
  | Some width ->
    if Hashtbl.length tbl <= width then tbl
    else begin
      let entries = Hashtbl.fold (fun k c l -> (c, k) :: l) tbl [] in
      let entries = List.sort compare entries in
      let out = Hashtbl.create width in
      List.iteri (fun i (c, k) -> if i < width then Hashtbl.replace out k c) entries;
      out
    end

let solve ?(deadline = Deadline.none) t ~demand_units cfg =
  Faults.fire "tree_dp.solve";
  let h = validate_config cfg in
  let n = Tree.n_nodes t in
  let dl_tick = ref 0 in
  if Array.length demand_units <> n then invalid_arg "Tree_dp.solve: demand_units length";
  Array.iteri
    (fun v d ->
      if d < 0 then invalid_arg "Tree_dp.solve: negative demand";
      if d > 0 && not (Tree.is_leaf t v) then
        invalid_arg "Tree_dp.solve: internal node carries demand")
    demand_units;
  let total = Array.fold_left ( + ) 0 demand_units in
  if total > cfg.cp_units.(0) then None
  else begin
    let space = Signature.create ~cp_units:cfg.cp_units ?bucketing:cfg.bucketing () in
    let caps = Array.sub cfg.cp_units 1 h in
    let strides = space.Signature.strides in
    let states = ref 0 in
    let beam_evictions = ref 0 in
    let pareto_dropped = ref 0 in
    let table_peak = ref 0 in
    (* tables.(v): final signature table of node v (key -> cost). *)
    let tables : (int, float) Hashtbl.t array = Array.make n (Hashtbl.create 0) in
    (* backs.(v).(i): for child index i of v, key in the accumulator after
       absorbing children 0..i -> (previous key, child key, kappa). *)
    let backs : (int, int * int * int) Hashtbl.t array array =
      Array.make n [||]
    in
    let infeasible_leaf = ref false in
    Array.iter
      (fun v ->
        Deadline.check deadline ~stage:"tree_dp";
        if Tree.is_leaf t v then begin
          let tbl = Hashtbl.create 1 in
          (match Signature.of_leaf space demand_units.(v) with
          | Some key ->
            Hashtbl.replace tbl key 0.;
            incr states
          | None -> infeasible_leaf := true);
          tables.(v) <- tbl
        end
        else begin
          let cs = Tree.children t v in
          let nc = Array.length cs in
          backs.(v) <- Array.init nc (fun _ -> Hashtbl.create 16);
          let acc = ref (Hashtbl.create 16) in
          Hashtbl.replace !acc 0 0.;
          Array.iteri
            (fun i c ->
              let w = Tree.edge_weight t c in
              let nacc = Hashtbl.create (Hashtbl.length !acc) in
              let back = backs.(v).(i) in
              let consider key cost prev_key child_key j2 =
                match Hashtbl.find_opt nacc key with
                | Some old when old <= cost -> ()
                | _ ->
                  if not (Hashtbl.mem nacc key) then incr states;
                  Hashtbl.replace nacc key cost;
                  Hashtbl.replace back key (prev_key, child_key, j2)
              in
              (* Decode each table once. *)
              let decode_all tbl =
                Hashtbl.fold (fun k c l -> (k, c, Signature.decode space k) :: l) tbl []
              in
              let acc_entries = decode_all !acc in
              let child_entries = decode_all tables.(c) in
              let a = Array.make h 0 in
              List.iter
                (fun (ka, costa, a_orig) ->
                  List.iter
                    (fun (kc, costc, cvec) ->
                      Deadline.tick deadline ~stage:"tree_dp" ~count:dl_tick ~mask:0xFF;
                      Array.blit a_orig 0 a 0 h;
                      (* j2 = 0: child closes entirely; accumulator unchanged. *)
                      consider ka (costa +. costc +. pay w cfg.cm.(0)) ka kc 0;
                      (* Incrementally merge level j2 = 1..h. *)
                      let key = ref ka in
                      let ok = ref true in
                      let j2 = ref 1 in
                      while !ok && !j2 <= h do
                        let idx = !j2 - 1 in
                        let merged = a.(idx) + cvec.(idx) in
                        if merged > caps.(idx) then ok := false
                        else begin
                          (* bucketed delta keeps the key consistent with
                             re-encoding the bucketed vector *)
                          let bucketed = space.Signature.bucket merged in
                          let prev_b = space.Signature.bucket a.(idx) in
                          key := !key + ((bucketed - prev_b) * strides.(idx));
                          a.(idx) <- merged;
                          consider !key
                            (costa +. costc +. pay w cfg.cm.(!j2))
                            ka kc !j2;
                          incr j2
                        end
                      done)
                    child_entries)
                acc_entries;
              (* Very large raw tables are pre-truncated so the Pareto pass
                 stays near-linear. *)
              let raw_size = Hashtbl.length nacc in
              if raw_size > !table_peak then table_peak := raw_size;
              let pre =
                match cfg.beam_width with
                | Some width when raw_size > 8 * width ->
                  beam_truncate (Some (8 * width)) nacc
                | _ -> nacc
              in
              let pre_size = Hashtbl.length pre in
              let pruned = if cfg.prune then pareto_prune space h pre else pre in
              let pruned_size = Hashtbl.length pruned in
              pareto_dropped := !pareto_dropped + (pre_size - pruned_size);
              let kept = beam_truncate cfg.beam_width pruned in
              beam_evictions :=
                !beam_evictions + (raw_size - pre_size) + (pruned_size - Hashtbl.length kept);
              acc := kept)
            cs;
          tables.(v) <- !acc
        end)
      (Tree.post_order t);
    (* One registry update per solve keeps the DP loops free of telemetry
       calls; all four are no-ops while collection is disabled. *)
    Obs.count "tree_dp.solves" 1;
    Obs.count "tree_dp.states" !states;
    Obs.count "tree_dp.beam_evictions" !beam_evictions;
    Obs.count "tree_dp.pareto_dropped" !pareto_dropped;
    Obs.gauge_max "tree_dp.table_peak" (float_of_int !table_peak);
    if !infeasible_leaf then None
    else begin
      let r = Tree.root t in
      let best = ref None in
      Hashtbl.iter
        (fun key cost ->
          match !best with
          | Some (_, c) when c <= cost -> ()
          | _ -> best := Some (key, cost))
        tables.(r);
      match !best with
      | None -> None
      | Some (root_key, cost) ->
        (* Reconstruct kappa by walking the back tables. *)
        let kappa = Array.make n 0 in
        let stack = Stack.create () in
        Stack.push (r, root_key) stack;
        while not (Stack.is_empty stack) do
          let v, key = Stack.pop stack in
          let cs = Tree.children t v in
          let k = ref key in
          for i = Array.length cs - 1 downto 0 do
            let prev_key, child_key, j2 = Hashtbl.find backs.(v).(i) !k in
            kappa.(cs.(i)) <- j2;
            Stack.push (cs.(i), child_key) stack;
            k := prev_key
          done
        done;
        (* Corrupt action: zero one edge label — a plausible-looking but
           non-optimal labeling whose assignment re-prices downstream. *)
        (match Faults.corrupt_index "tree_dp.solve" ~len:n with
        | Some i -> kappa.(i) <- 0
        | None -> ());
        Some
          {
            cost;
            kappa;
            root_signature = Signature.decode space root_key;
            states_explored = !states;
          }
    end
  end

let kappa_cost t ~kappa ~cm =
  let acc = ref 0. in
  for v = 0 to Tree.n_nodes t - 1 do
    if v <> Tree.root t then acc := !acc +. pay (Tree.edge_weight t v) cm.(kappa.(v))
  done;
  !acc

let check_kappa t ~demand_units ~kappa ~cp_units =
  let n = Tree.n_nodes t in
  let h = Array.length cp_units - 1 in
  let worst = ref 0. in
  for j = 1 to h do
    let dsu = Hgp_util.Dsu.create n in
    for v = 0 to n - 1 do
      if v <> Tree.root t && kappa.(v) >= j then
        ignore (Hgp_util.Dsu.union dsu v (Tree.parent t v))
    done;
    let demand = Array.make n 0 in
    Array.iter
      (fun l ->
        let r = Hgp_util.Dsu.find dsu l in
        demand.(r) <- demand.(r) + demand_units.(l))
      (Tree.leaves t);
    Array.iter
      (fun d ->
        if d > 0 then
          worst := Float.max !worst (float_of_int d /. float_of_int cp_units.(j)))
      demand
  done;
  !worst

let brute_force t ~demand_units cfg =
  let h = validate_config cfg in
  let n = Tree.n_nodes t in
  let root = Tree.root t in
  let edges = List.filter (fun v -> v <> root) (List.init n (fun i -> i)) in
  let m = List.length edges in
  if float_of_int (h + 1) ** float_of_int m > 2e7 then
    invalid_arg "Tree_dp.brute_force: too large";
  let edge_arr = Array.of_list edges in
  let kappa = Array.make n 0 in
  let best = ref None in
  let total = Array.fold_left ( + ) 0 demand_units in
  if total > cfg.cp_units.(0) then None
  else begin
    let rec go i =
      if i = m then begin
        let violation = check_kappa t ~demand_units ~kappa ~cp_units:cfg.cp_units in
        if violation <= 1. +. 1e-12 then begin
          let cost = kappa_cost t ~kappa ~cm:cfg.cm in
          match !best with
          | Some c when c <= cost -> ()
          | _ -> best := Some cost
        end
      end
      else
        for j = 0 to h do
          kappa.(edge_arr.(i)) <- j;
          go (i + 1)
        done
    in
    go 0;
    !best
  end
