module Tree = Hgp_tree.Tree
module Hierarchy = Hgp_hierarchy.Hierarchy
module Obs = Hgp_obs.Obs
module Deadline = Hgp_resilience.Deadline
module Faults = Hgp_resilience.Faults
module Arena = Hgp_util.Arena
module Workspace = Hgp_util.Workspace

type config = {
  cm : float array;
  cp_units : int array;
  bucketing : float option;
  prune : bool;
  beam_width : int option;
}

let config_of_hierarchy hy ~resolution ?bucketing ?(prune = true) ?beam_width () =
  let h = Hierarchy.height hy in
  (* The DP is per-LEVEL: [cm] and [cp_units] are the level envelopes of the
     per-node vectors (exact on regular trees; on ragged trees the maxima —
     an admissible relaxation whose slack is recovered by capacity-aware
     packing and per-node certification, see docs/HIERARCHY.md). *)
  {
    cm = Array.init (h + 1) (Hierarchy.cm hy);
    cp_units = Hierarchy.level_capacity_units hy ~resolution;
    bucketing;
    prune;
    beam_width;
  }

type result = {
  cost : float;
  kappa : int array;
  root_signature : int array;
  states_explored : int;
}

(* w *. c with the convention inf *. 0. = 0. (uncut infinite edges are free). *)
let pay w c = if c = 0. then 0. else w *. c

(* --- per-subtree snapshots (incremental re-solve) ----------------------

   A snapshot captures everything a later solve over the SAME tree shape
   needs to reuse unchanged subtrees: per-node Merkle keys (a node's key
   folds its children's keys plus its local DP inputs, so key equality
   certifies that the whole subtree's inputs are unchanged), the packed
   per-node state tables, the packed backpointer segments, and per-node
   state counts (so [states_explored] stays bit-identical to a cold solve).

   Soundness: node [v]'s final table is a pure function of subtree([v]) —
   the children fold order, the weights of edges strictly inside the
   subtree, the leaf demands, and the config — and so are the back
   segments of all nodes strictly inside it.  Hence equal Merkle keys
   imply bit-identical reusable DP data (docs/INCREMENTAL.md). *)

type snapshot = {
  snap_parents : int array;  (* shape pin: node ids must align *)
  merkle : Hgp_util.Fingerprint.t array;
  s_node_off : int array;
  s_node_len : int array;
  s_node_keys : int array;
  s_node_costs : float array;
  s_back_off : int array;  (* int offsets into s_back_store; stride-4 blocks *)
  s_back_len : int array;
  s_back_store : int array;
  s_states : int array;  (* states created while processing node v itself *)
}

type incr_stats = {
  reused_nodes : int;
  resolved_nodes : int;
  reused_states : int;
}

let no_stats = { reused_nodes = 0; resolved_nodes = 0; reused_states = 0 }

let merkle_keys t ~demand_units cfg =
  let module F = Hgp_util.Fingerprint in
  let cfg_fp =
    let h = F.add_float_array F.seed cfg.cm in
    let h = F.add_int_array h cfg.cp_units in
    let h = F.add_option F.add_float h cfg.bucketing in
    let h = F.add_bool h cfg.prune in
    F.add_option F.add_int h cfg.beam_width
  in
  let n = Tree.n_nodes t in
  let keys = Array.make n F.seed in
  Array.iter
    (fun v ->
      if Tree.is_leaf t v then
        keys.(v) <- F.add_int (F.add_int cfg_fp 0x1ea5) demand_units.(v)
      else begin
        let cs = Tree.children t v in
        let h = ref (F.add_int (F.add_int cfg_fp 0x0de) (Array.length cs)) in
        Array.iter
          (fun c ->
            h := F.add_float (F.combine !h keys.(c)) (Tree.edge_weight t c))
          cs;
        keys.(v) <- !h
      end)
    (Tree.post_order t);
  keys

let validate_config cfg =
  let h = Array.length cfg.cm - 1 in
  if Array.length cfg.cp_units <> h + 1 then
    invalid_arg "Tree_dp: cm / cp_units length mismatch";
  for j = 0 to h - 1 do
    if cfg.cm.(j) < cfg.cm.(j + 1) then invalid_arg "Tree_dp: cm must be non-increasing"
  done;
  h

(* The DP state machinery is flat struct-of-arrays throughout (see
   docs/ARCHITECTURE.md, "DP kernel & workspaces"):

   - per-node state tables are (cost, key)-sorted segments of one packed
     key/cost store, so folding a child iterates two contiguous ranges;
   - the merge accumulator is one open-addressed [Arena.Table] cleared by
     epoch between children;
   - Pareto pruning and beam truncation run over an index permutation
     sorted in place — no intermediate lists, no closures per entry;
   - backpointers are key-sorted stride-4 segments of one packed int store,
     binary-searched during reconstruction.

   All scratch comes from a per-domain {!Hgp_util.Workspace}, so the solve
   allocates only its outputs in steady state.  Results are bit-identical
   to the reference DP (test/support/tree_dp_reference.ml): table contents
   per merge are order-independent (minimum cost per key over the same
   state set), ties are broken canonically — smallest back tuple at equal
   cost, smallest (cost, key) at the root — and the cost arithmetic keeps
   the reference's association order. *)

let solve_impl ?(deadline = Deadline.none) ?workspace ?prev ~want_snap t
    ~demand_units cfg =
  Faults.fire "tree_dp.solve";
  let bytes0 = Gc.allocated_bytes () in
  let h = validate_config cfg in
  let n = Tree.n_nodes t in
  let dl_tick = ref 0 in
  if Array.length demand_units <> n then invalid_arg "Tree_dp.solve: demand_units length";
  Array.iteri
    (fun v d ->
      if d < 0 then invalid_arg "Tree_dp.solve: negative demand";
      if d > 0 && not (Tree.is_leaf t v) then
        invalid_arg "Tree_dp.solve: internal node carries demand")
    demand_units;
  let total = Array.fold_left ( + ) 0 demand_units in
  if total > cfg.cp_units.(0) then None
  else begin
    let owned, ws =
      match (workspace : Workspace.lease option) with
      | Some l -> (None, l.Workspace.workspace)
      | None ->
        let l = Workspace.acquire () in
        (Some l, l.Workspace.workspace)
    in
    Fun.protect
      ~finally:(fun () -> match owned with Some l -> Workspace.release l | None -> ())
    @@ fun () ->
    Workspace.reset ws;
    let ws_reused = Workspace.note_use ws in
    let grows0 = Workspace.grows ws in
    let space = Signature.create ~cp_units:cfg.cp_units ?bucketing:cfg.bucketing () in
    let caps = Array.sub cfg.cp_units 1 h in
    let strides = space.Signature.strides in
    let states = ref 0 in
    let beam_evictions = ref 0 in
    let pareto_dropped = ref 0 in
    let table_peak = ref 0 in
    (* node_off/node_len.(v): node v's final state table, a (cost, key)-
       sorted segment of ws.node_keys / ws.node_costs. *)
    let node_off = Array.make n 0 in
    let node_len = Array.make n 0 in
    (* back_off/back_len.(c): the backpointer segment written when child c
       was folded into its parent — key-sorted stride-4 blocks
       (key, previous key, child key, merge level) in ws.back_store. *)
    let back_off = Array.make n 0 in
    let back_len = Array.make n 0 in
    let sig_a = Array.make h 0 in
    let a = Array.make h 0 in
    let infeasible_leaf = ref false in
    let tbl = ws.Workspace.tbl in
    let po = Tree.post_order t in
    (* Incremental machinery (all of it is inert — zero allocation, one
       branch per node — on the plain [solve] path). *)
    let incremental = want_snap || Option.is_some prev in
    let parents = if incremental then Array.init n (Tree.parent t) else [||] in
    let merkle = if incremental then merkle_keys t ~demand_units cfg else [||] in
    let prev =
      match (prev : snapshot option) with
      | Some s when Array.length s.merkle = n && s.snap_parents = parents ->
        Some s
      | _ -> None
    in
    (* reuse.(v): some ancestor-or-self has an unchanged Merkle key, so v's
       DP data is spliced or skipped.  Reversed post-order visits parents
       before children, making the ancestor propagation a single pass. *)
    let reuse = Array.make (if incremental then n else 0) false in
    (match prev with
    | Some s ->
      for i = n - 1 downto 0 do
        let v = po.(i) in
        let p = parents.(v) in
        reuse.(v) <-
          Int64.equal merkle.(v) s.merkle.(v) || (p >= 0 && reuse.(p))
      done
    | None -> ());
    let states_of = Array.make (if incremental then n else 0) 0 in
    let reused_states = ref 0 in
    Array.iter
      (fun v ->
        Deadline.check deadline ~stage:"tree_dp";
        if incremental && reuse.(v) then begin
          let p = parents.(v) in
          if p < 0 || not reuse.(p) then begin
            (* Maximal clean root: splice its final table into the
               workspace so the (dirty) parent's fold reads it exactly as
               if it had just been computed; interior nodes stay in the
               snapshot (their back segments are read from there during
               reconstruction). *)
            let s = match prev with Some s -> s | None -> assert false in
            let len = s.s_node_len.(v) in
            let off = Arena.Ibuf.alloc ws.Workspace.node_keys len in
            let (_ : int) = Arena.Fbuf.alloc ws.Workspace.node_costs len in
            Array.blit s.s_node_keys s.s_node_off.(v)
              (Arena.Ibuf.data ws.Workspace.node_keys)
              off len;
            Array.blit s.s_node_costs s.s_node_off.(v)
              (Arena.Fbuf.data ws.Workspace.node_costs)
              off len;
            node_off.(v) <- off;
            node_len.(v) <- len;
            let rec add_sub u =
              states_of.(u) <- s.s_states.(u);
              states := !states + s.s_states.(u);
              reused_states := !reused_states + s.s_states.(u);
              Array.iter add_sub (Tree.children t u)
            in
            add_sub v
          end
        end
        else begin
          let s0 = !states in
          (if Tree.is_leaf t v then begin
          node_off.(v) <- Arena.Ibuf.length ws.Workspace.node_keys;
          match Signature.of_leaf space demand_units.(v) with
          | Some key ->
            node_len.(v) <- 1;
            Arena.Ibuf.push ws.Workspace.node_keys key;
            Arena.Fbuf.push ws.Workspace.node_costs 0.;
            incr states
          | None ->
            node_len.(v) <- 0;
            infeasible_leaf := true
        end
        else begin
          let cs = Tree.children t v in
          (* The accumulator starts as the single all-zeros state. *)
          let acc_off = ref (Arena.Ibuf.length ws.Workspace.node_keys) in
          let acc_len = ref 1 in
          Arena.Ibuf.push ws.Workspace.node_keys 0;
          Arena.Fbuf.push ws.Workspace.node_costs 0.;
          Array.iter
            (fun c ->
              let w = Tree.edge_weight t c in
              Arena.Table.clear tbl;
              let coff = node_off.(c) and clen = node_len.(c) in
              (* Decode each child state once into the signature matrix. *)
              Arena.Ibuf.clear ws.Workspace.sigs;
              Arena.Ibuf.reserve ws.Workspace.sigs (clen * h);
              let smat = Arena.Ibuf.data ws.Workspace.sigs in
              let nkeys = Arena.Ibuf.data ws.Workspace.node_keys in
              let ncosts = Arena.Fbuf.data ws.Workspace.node_costs in
              for ci = 0 to clen - 1 do
                Signature.decode_into space nkeys.(coff + ci) smat ~pos:(ci * h)
              done;
              (* Cached table internals for the inlined upsert below.  The
                 inline form keeps the cost float unboxed — Arena.Table.upsert
                 called cross-module would box it on every one of the merge's
                 millions of calls.  Semantics must stay exactly those of
                 [Arena.Table.upsert]; the caches are re-read whenever
                 [ensure_room] grows the backing arrays. *)
              let t_mask = ref (Arena.Table.mask tbl) in
              let t_epoch = ref (Arena.Table.epoch tbl) in
              let t_marks = ref (Arena.Table.marks tbl) in
              let t_keys = ref (Arena.Table.keys tbl) in
              let t_costs = ref (Arena.Table.costs tbl) in
              let t_b1 = ref (Arena.Table.b1s tbl) in
              let t_b2 = ref (Arena.Table.b2s tbl) in
              let t_b3 = ref (Arena.Table.b3s tbl) in
              let refresh () =
                t_mask := Arena.Table.mask tbl;
                t_epoch := Arena.Table.epoch tbl;
                t_marks := Arena.Table.marks tbl;
                t_keys := Arena.Table.keys tbl;
                t_costs := Arena.Table.costs tbl;
                t_b1 := Arena.Table.b1s tbl;
                t_b2 := Arena.Table.b2s tbl;
                t_b3 := Arena.Table.b3s tbl
              in
              for ai = 0 to !acc_len - 1 do
                let ka = nkeys.(!acc_off + ai) in
                let costa = ncosts.(!acc_off + ai) in
                Signature.decode_into space ka sig_a ~pos:0;
                for ci = 0 to clen - 1 do
                  Deadline.tick deadline ~stage:"tree_dp" ~count:dl_tick ~mask:0xFF;
                  let kc = nkeys.(coff + ci) in
                  let costc = ncosts.(coff + ci) in
                  let base = costa +. costc in
                  Array.blit sig_a 0 a 0 h;
                  let cbase = ci * h in
                  let key = ref ka in
                  let ok = ref true in
                  (* j2 = 0: child closes entirely (accumulator key kept);
                     j2 = 1..h: incrementally merge one more level. *)
                  let j2 = ref 0 in
                  while !ok && !j2 <= h do
                    (if !j2 > 0 then begin
                       let idx = !j2 - 1 in
                       let merged = a.(idx) + smat.(cbase + idx) in
                       if merged > caps.(idx) then ok := false
                       else begin
                         (* bucketed delta keeps the key consistent with
                            re-encoding the bucketed vector *)
                         let bucketed = space.Signature.bucket merged in
                         let prev_b = space.Signature.bucket a.(idx) in
                         key := !key + ((bucketed - prev_b) * strides.(idx));
                         a.(idx) <- merged
                       end
                     end);
                    if !ok then begin
                      let c = cfg.cm.(!j2) in
                      (* pay, inlined: inf *. 0. = 0. convention *)
                      let cost = if c = 0. then base else base +. (w *. c) in
                      if
                        2 * (Arena.Table.size tbl + 1) > !t_mask + 1
                        && Arena.Table.ensure_room tbl
                      then refresh ();
                      let mask = !t_mask
                      and marks = !t_marks
                      and keyarr = !t_keys in
                      let ep = !t_epoch in
                      let k = !key in
                      (* same Fibonacci hash / linear probe as the Table *)
                      let s = ref ((k * 0x2545F4914F6CDD1D) land max_int land mask) in
                      while marks.(!s) = ep && keyarr.(!s) <> k do
                        s := (!s + 1) land mask
                      done;
                      let s = !s in
                      if marks.(s) <> ep then begin
                        marks.(s) <- ep;
                        keyarr.(s) <- k;
                        !t_costs.(s) <- cost;
                        !t_b1.(s) <- ka;
                        !t_b2.(s) <- kc;
                        !t_b3.(s) <- !j2;
                        Arena.Table.added tbl;
                        incr states
                      end
                      else begin
                        let costs = !t_costs in
                        let old = costs.(s) in
                        if cost < old then begin
                          costs.(s) <- cost;
                          !t_b1.(s) <- ka;
                          !t_b2.(s) <- kc;
                          !t_b3.(s) <- !j2
                        end
                        else if cost = old then begin
                          (* canonical tie-break: smallest back tuple *)
                          let b1a = !t_b1 and b2a = !t_b2 and b3a = !t_b3 in
                          if
                            ka < b1a.(s)
                            || (ka = b1a.(s)
                               && (kc < b2a.(s) || (kc = b2a.(s) && !j2 < b3a.(s))))
                          then begin
                            b1a.(s) <- ka;
                            b2a.(s) <- kc;
                            b3a.(s) <- !j2
                          end
                        end
                      end
                    end;
                    incr j2
                  done
                done
              done;
              (* Extract the raw table into sortable parallel arrays — a
                 direct slot scan (closure-free, floats unboxed). *)
              let raw = Arena.Table.size tbl in
              if raw > !table_peak then table_peak := raw;
              Arena.Ibuf.clear ws.Workspace.ekeys;
              Arena.Fbuf.clear ws.Workspace.ecosts;
              Arena.Ibuf.clear ws.Workspace.eb1;
              Arena.Ibuf.clear ws.Workspace.eb2;
              Arena.Ibuf.clear ws.Workspace.eb3;
              ignore (Arena.Ibuf.alloc ws.Workspace.ekeys raw : int);
              ignore (Arena.Fbuf.alloc ws.Workspace.ecosts raw : int);
              ignore (Arena.Ibuf.alloc ws.Workspace.eb1 raw : int);
              ignore (Arena.Ibuf.alloc ws.Workspace.eb2 raw : int);
              ignore (Arena.Ibuf.alloc ws.Workspace.eb3 raw : int);
              (let ekeys = Arena.Ibuf.data ws.Workspace.ekeys in
               let ecosts = Arena.Fbuf.data ws.Workspace.ecosts in
               let eb1 = Arena.Ibuf.data ws.Workspace.eb1 in
               let eb2 = Arena.Ibuf.data ws.Workspace.eb2 in
               let eb3 = Arena.Ibuf.data ws.Workspace.eb3 in
               let marks = !t_marks
               and src_keys = !t_keys
               and src_costs = !t_costs
               and src_b1 = !t_b1
               and src_b2 = !t_b2
               and src_b3 = !t_b3 in
               let ep = !t_epoch in
               let out = ref 0 in
               for s = 0 to !t_mask do
                 if marks.(s) = ep then begin
                   ekeys.(!out) <- src_keys.(s);
                   ecosts.(!out) <- src_costs.(s);
                   eb1.(!out) <- src_b1.(s);
                   eb2.(!out) <- src_b2.(s);
                   eb3.(!out) <- src_b3.(s);
                   incr out
                 end
               done);
              Arena.Ibuf.reserve ws.Workspace.perm raw;
              let perm = Arena.Ibuf.data ws.Workspace.perm in
              for i = 0 to raw - 1 do
                perm.(i) <- i
              done;
              let ekeys = Arena.Ibuf.data ws.Workspace.ekeys in
              let ecosts = Arena.Fbuf.data ws.Workspace.ecosts in
              Arena.sort_perm_by_cost_key perm 0 raw ecosts ekeys;
              (* Very large raw tables are pre-truncated so the Pareto pass
                 stays near-linear: the sorted prefix IS beam truncation. *)
              let pre =
                match cfg.beam_width with
                | Some width when raw > 8 * width -> 8 * width
                | _ -> raw
              in
              (* Pareto-prune the sorted prefix: drop any state whose
                 signature is pointwise >= an earlier (cheaper-or-equal)
                 kept state.  Sound: capacities are upper bounds, so a
                 smaller active-set vector admits every completion of a
                 larger one at the same future cost. *)
              Arena.Ibuf.clear ws.Workspace.kept;
              let pruned =
                if cfg.prune && pre > 1 then begin
                  Arena.Ibuf.clear ws.Workspace.sigs;
                  Arena.Ibuf.reserve ws.Workspace.sigs (pre * h);
                  let psig = Arena.Ibuf.data ws.Workspace.sigs in
                  for idx = 0 to pre - 1 do
                    Signature.decode_into space ekeys.(perm.(idx)) psig ~pos:(idx * h)
                  done;
                  let kept = ws.Workspace.kept in
                  for idx = 0 to pre - 1 do
                    let dominated = ref false in
                    let ki = ref 0 in
                    let nk = Arena.Ibuf.length kept in
                    let kdata = Arena.Ibuf.data kept in
                    while (not !dominated) && !ki < nk do
                      let r = kdata.(!ki) in
                      let ok = ref true in
                      let j = ref 0 in
                      while !ok && !j < h do
                        if psig.((r * h) + !j) > psig.((idx * h) + !j) then ok := false;
                        incr j
                      done;
                      if !ok then dominated := true;
                      incr ki
                    done;
                    if not !dominated then Arena.Ibuf.push kept idx
                  done;
                  Arena.Ibuf.length kept
                end
                else begin
                  for idx = 0 to pre - 1 do
                    Arena.Ibuf.push ws.Workspace.kept idx
                  done;
                  pre
                end
              in
              pareto_dropped := !pareto_dropped + (pre - pruned);
              let kept_count =
                match cfg.beam_width with
                | Some width when pruned > width -> width
                | _ -> pruned
              in
              beam_evictions := !beam_evictions + (raw - pre) + (pruned - kept_count);
              (* Persist the survivors' backpointers as a key-sorted
                 stride-4 segment; only kept states are ever looked up. *)
              let kdata = Arena.Ibuf.data ws.Workspace.kept in
              let eb1 = Arena.Ibuf.data ws.Workspace.eb1 in
              let eb2 = Arena.Ibuf.data ws.Workspace.eb2 in
              let eb3 = Arena.Ibuf.data ws.Workspace.eb3 in
              let bo = Arena.Ibuf.alloc ws.Workspace.back_store (4 * kept_count) in
              let bdata = Arena.Ibuf.data ws.Workspace.back_store in
              for i = 0 to kept_count - 1 do
                let e = perm.(kdata.(i)) in
                bdata.(bo + (4 * i)) <- ekeys.(e);
                bdata.(bo + (4 * i) + 1) <- eb1.(e);
                bdata.(bo + (4 * i) + 2) <- eb2.(e);
                bdata.(bo + (4 * i) + 3) <- eb3.(e)
              done;
              Arena.sort_stride4_by_key bdata bo kept_count;
              back_off.(c) <- bo;
              back_len.(c) <- kept_count;
              (* The survivors, already (cost, key)-sorted, become the new
                 accumulator segment. *)
              let ao = Arena.Ibuf.alloc ws.Workspace.node_keys kept_count in
              let (_ : int) = Arena.Fbuf.alloc ws.Workspace.node_costs kept_count in
              let nkeys = Arena.Ibuf.data ws.Workspace.node_keys in
              let ncosts = Arena.Fbuf.data ws.Workspace.node_costs in
              for i = 0 to kept_count - 1 do
                let e = perm.(kdata.(i)) in
                nkeys.(ao + i) <- ekeys.(e);
                ncosts.(ao + i) <- ecosts.(e)
              done;
              acc_off := ao;
              acc_len := kept_count)
            cs;
          node_off.(v) <- !acc_off;
          node_len.(v) <- !acc_len
        end);
          if incremental then states_of.(v) <- !states - s0
        end)
      po;
    (* One registry update per solve keeps the DP loops free of telemetry
       calls; all are no-ops while collection is disabled. *)
    Obs.count "tree_dp.solves" 1;
    Obs.count "tree_dp.states" !states;
    Obs.count "tree_dp.beam_evictions" !beam_evictions;
    Obs.count "tree_dp.pareto_dropped" !pareto_dropped;
    Obs.gauge_max "tree_dp.table_peak" (float_of_int !table_peak);
    if ws_reused then Obs.count "workspace.reuses" 1;
    Obs.count "workspace.grows" (Workspace.grows ws - grows0);
    Obs.count "tree_dp.bytes_allocated"
      (int_of_float (Gc.allocated_bytes () -. bytes0));
    if !infeasible_leaf then None
    else begin
      let r = Tree.root t in
      if node_len.(r) = 0 then None
      else begin
        (* Segments are (cost, key)-sorted: the head is the canonical
           optimum (minimal cost, smallest key among ties). *)
        let root_key = Arena.Ibuf.get ws.Workspace.node_keys node_off.(r) in
        let cost = Arena.Fbuf.get ws.Workspace.node_costs node_off.(r) in
        (* Reconstruct kappa by walking the packed back segments. *)
        let kappa = Array.make n 0 in
        let sv = Array.make n 0 in
        let sk = Array.make n 0 in
        sv.(0) <- r;
        sk.(0) <- root_key;
        let sp = ref 1 in
        let bdata_ws = Arena.Ibuf.data ws.Workspace.back_store in
        while !sp > 0 do
          decr sp;
          let v = sv.(!sp) and key = sk.(!sp) in
          let cs = Tree.children t v in
          (* A child's back segment was written when [v] folded it — fresh
             in the workspace iff [v] was recomputed this run, otherwise it
             lives in the snapshot (v is inside a clean subtree). *)
          let from_prev = incremental && reuse.(v) in
          let k = ref key in
          for i = Array.length cs - 1 downto 0 do
            let c = cs.(i) in
            let bdata, off, len =
              if from_prev then begin
                let s = match prev with Some s -> s | None -> assert false in
                (s.s_back_store, s.s_back_off.(c), s.s_back_len.(c))
              end
              else (bdata_ws, back_off.(c), back_len.(c))
            in
            let lo = ref 0 and hi = ref (len - 1) and found = ref (-1) in
            while !found < 0 && !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              let km = bdata.(off + (4 * mid)) in
              if km = !k then found := mid
              else if km < !k then lo := mid + 1
              else hi := mid - 1
            done;
            if !found < 0 then invalid_arg "Tree_dp.solve: missing backpointer";
            let f = off + (4 * !found) in
            kappa.(c) <- bdata.(f + 3);
            sv.(!sp) <- c;
            sk.(!sp) <- bdata.(f + 2);
            incr sp;
            k := bdata.(f + 1)
          done
        done;
        (* Corrupt action: zero one edge label — a plausible-looking but
           non-optimal labeling whose assignment re-prices downstream. *)
        (match Faults.corrupt_index "tree_dp.solve" ~len:n with
        | Some i -> kappa.(i) <- 0
        | None -> ());
        let stats =
          if not incremental then no_stats
          else begin
            let reused = ref 0 in
            Array.iter (fun r -> if r then incr reused) reuse;
            {
              reused_nodes = !reused;
              resolved_nodes = n - !reused;
              reused_states = !reused_states;
            }
          end
        in
        let snap =
          if not want_snap then None
          else begin
            (* Stitch the new snapshot from this run's workspace (recomputed
               nodes and spliced clean roots) and the previous snapshot
               (interiors of clean subtrees, never touched this run). *)
            let nk = Arena.Ibuf.data ws.Workspace.node_keys in
            let nc = Arena.Fbuf.data ws.Workspace.node_costs in
            let bd = Arena.Ibuf.data ws.Workspace.back_store in
            let interior v =
              reuse.(v) && parents.(v) >= 0 && reuse.(parents.(v))
            in
            let tot_tab = ref 0 and tot_back = ref 0 in
            for v = 0 to n - 1 do
              (match prev with
              | Some s when interior v -> tot_tab := !tot_tab + s.s_node_len.(v)
              | _ -> tot_tab := !tot_tab + node_len.(v));
              if parents.(v) >= 0 then
                match prev with
                | Some s when reuse.(parents.(v)) ->
                  tot_back := !tot_back + s.s_back_len.(v)
                | _ -> tot_back := !tot_back + back_len.(v)
            done;
            let o_no = Array.make n 0 and o_nl = Array.make n 0 in
            let o_keys = Array.make (max 1 !tot_tab) 0 in
            let o_costs = Array.make (max 1 !tot_tab) 0. in
            let o_bo = Array.make n 0 and o_bl = Array.make n 0 in
            let o_bs = Array.make (max 1 (4 * !tot_back)) 0 in
            let tpos = ref 0 and bpos = ref 0 in
            for v = 0 to n - 1 do
              (match prev with
              | Some s when interior v ->
                let len = s.s_node_len.(v) in
                Array.blit s.s_node_keys s.s_node_off.(v) o_keys !tpos len;
                Array.blit s.s_node_costs s.s_node_off.(v) o_costs !tpos len;
                o_no.(v) <- !tpos;
                o_nl.(v) <- len;
                tpos := !tpos + len
              | _ ->
                let len = node_len.(v) in
                Array.blit nk node_off.(v) o_keys !tpos len;
                Array.blit nc node_off.(v) o_costs !tpos len;
                o_no.(v) <- !tpos;
                o_nl.(v) <- len;
                tpos := !tpos + len);
              if parents.(v) >= 0 then
                match prev with
                | Some s when reuse.(parents.(v)) ->
                  let len = s.s_back_len.(v) in
                  Array.blit s.s_back_store s.s_back_off.(v) o_bs !bpos (4 * len);
                  o_bo.(v) <- !bpos;
                  o_bl.(v) <- len;
                  bpos := !bpos + (4 * len)
                | _ ->
                  let len = back_len.(v) in
                  Array.blit bd back_off.(v) o_bs !bpos (4 * len);
                  o_bo.(v) <- !bpos;
                  o_bl.(v) <- len;
                  bpos := !bpos + (4 * len)
            done;
            Some
              {
                snap_parents = parents;
                merkle;
                s_node_off = o_no;
                s_node_len = o_nl;
                s_node_keys = o_keys;
                s_node_costs = o_costs;
                s_back_off = o_bo;
                s_back_len = o_bl;
                s_back_store = o_bs;
                s_states = states_of;
              }
          end
        in
        Some
          ( {
              cost;
              kappa;
              root_signature = Signature.decode space root_key;
              states_explored = !states;
            },
            snap,
            stats )
      end
    end
  end

let solve ?deadline ?workspace t ~demand_units cfg =
  match solve_impl ?deadline ?workspace ~want_snap:false t ~demand_units cfg with
  | Some (r, _, _) -> Some r
  | None -> None

let solve_snap ?deadline ?workspace ?prev t ~demand_units cfg =
  match solve_impl ?deadline ?workspace ?prev ~want_snap:true t ~demand_units cfg with
  | Some (r, Some snap, stats) -> Some (r, snap, stats)
  | Some (_, None, _) -> assert false
  | None -> None

let kappa_cost t ~kappa ~cm =
  let acc = ref 0. in
  for v = 0 to Tree.n_nodes t - 1 do
    if v <> Tree.root t then acc := !acc +. pay (Tree.edge_weight t v) cm.(kappa.(v))
  done;
  !acc

let check_kappa t ~demand_units ~kappa ~cp_units =
  let n = Tree.n_nodes t in
  let h = Array.length cp_units - 1 in
  let worst = ref 0. in
  for j = 1 to h do
    let dsu = Hgp_util.Dsu.create n in
    for v = 0 to n - 1 do
      if v <> Tree.root t && kappa.(v) >= j then
        ignore (Hgp_util.Dsu.union dsu v (Tree.parent t v))
    done;
    let demand = Array.make n 0 in
    Array.iter
      (fun l ->
        let r = Hgp_util.Dsu.find dsu l in
        demand.(r) <- demand.(r) + demand_units.(l))
      (Tree.leaves t);
    Array.iter
      (fun d ->
        if d > 0 then
          worst := Float.max !worst (float_of_int d /. float_of_int cp_units.(j)))
      demand
  done;
  !worst

let brute_force t ~demand_units cfg =
  let h = validate_config cfg in
  let n = Tree.n_nodes t in
  let root = Tree.root t in
  let edges = List.filter (fun v -> v <> root) (List.init n (fun i -> i)) in
  let m = List.length edges in
  if float_of_int (h + 1) ** float_of_int m > 2e7 then
    invalid_arg "Tree_dp.brute_force: too large";
  let edge_arr = Array.of_list edges in
  let kappa = Array.make n 0 in
  let best = ref None in
  let total = Array.fold_left ( + ) 0 demand_units in
  if total > cfg.cp_units.(0) then None
  else begin
    let rec go i =
      if i = m then begin
        let violation = check_kappa t ~demand_units ~kappa ~cp_units:cfg.cp_units in
        if violation <= 1. +. 1e-12 then begin
          let cost = kappa_cost t ~kappa ~cm:cfg.cm in
          match !best with
          | Some c when c <= cost -> ()
          | _ -> best := Some cost
        end
      end
      else
        for j = 0 to h do
          kappa.(edge_arr.(i)) <- j;
          go (i + 1)
        done
    in
    go 0;
    !best
  end
