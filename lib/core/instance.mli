(** HGP problem instances.

    An instance couples a communication graph [G] (vertex demands, edge
    weights) with a hierarchy [H].  A solution is an assignment of every
    vertex to a leaf of [H]; see {!Cost} for objectives and {!Solver} for the
    algorithms. *)

type t = private {
  graph : Hgp_graph.Graph.t;
  demands : float array;
  hierarchy : Hgp_hierarchy.Hierarchy.t;
}

(** [create graph ~demands hierarchy] validates and packs an instance.
    Demands must satisfy [0 < d(v) <= leaf_capacity hierarchy]
    (the largest leaf's capacity on a ragged hierarchy).
    @raise Invalid_argument on length mismatch or out-of-range demand. *)
val create :
  Hgp_graph.Graph.t -> demands:float array -> Hgp_hierarchy.Hierarchy.t -> t

(** [uniform_demands g h ~load_factor] builds demands giving every vertex the
    same demand, scaled so total demand equals [load_factor] times the total
    capacity of [h].  Requires [0 < load_factor <= 1.] and that the resulting
    per-vertex demand does not exceed a leaf capacity. *)
val uniform_demands :
  Hgp_graph.Graph.t -> Hgp_hierarchy.Hierarchy.t -> load_factor:float -> t

(** [random_demands rng g h ~load_factor] like {!uniform_demands} but with
    demands drawn uniformly and rescaled to the target load. *)
val random_demands :
  Hgp_util.Prng.t ->
  Hgp_graph.Graph.t ->
  Hgp_hierarchy.Hierarchy.t ->
  load_factor:float ->
  t

(** [n t] is the number of tasks. *)
val n : t -> int

(** [total_demand t] is the sum of demands. *)
val total_demand : t -> float

(** [is_feasible t] tests [total_demand <= total capacity].  (A [true] answer
    does not guarantee a perfect packing exists, only the aggregate bound.) *)
val is_feasible : t -> bool

(** [pp] prints a one-line summary. *)
val pp : Format.formatter -> t -> unit
