(** Typed edit logs against an {!Instance} — the entry point of the
    incremental solve path (docs/INCREMENTAL.md).

    A delta is an ordered list of edits applied sequentially.  Edits refer
    to vertices by {e working ids}: the instance's original dense ids
    [0..n-1], plus ids [n, n+1, …] for vertices appended by [Add_vertex]
    (in delta order).  Removing a vertex retires its working id — later
    edits may not mention it — but does not shift any other id; the final
    instance is re-compacted to dense ids in one pass at the end
    ({!Io.normalize_ids} with the surviving ids as the kept-vertex set, so
    vertices left isolated by edge removals survive).

    Validation failures raise {!Hgp_resilience.Hgp_error.Error} with an
    [Invalid_input] payload (context ["delta.apply"]): out-of-range or
    retired ids, self-loops, negative or non-finite weights,
    reweight/remove of an absent edge, add of a present edge, demands
    outside [(0, leaf_capacity]], or removing the last vertex. *)

type edit =
  | Reweight_edge of int * int * float
      (** [Reweight_edge (u, v, w)]: set the weight of existing edge
          [{u, v}] to [w >= 0.]. *)
  | Add_edge of int * int * float
      (** [Add_edge (u, v, w)]: add edge [{u, v}] (must be absent). *)
  | Remove_edge of int * int
      (** [Remove_edge (u, v)]: delete existing edge [{u, v}].  Endpoints
          survive even if this was their last edge. *)
  | Add_vertex of float * (int * float) list
      (** [Add_vertex (d, nbrs)]: append a vertex with demand [d] and
          edges to the (distinct, live) vertices in [nbrs].  The new
          vertex gets the next unused working id. *)
  | Remove_vertex of int
      (** [Remove_vertex v]: delete [v] and every incident edge. *)

type t = edit list

(** [apply inst delta] is the post-delta instance (same hierarchy). *)
val apply : Instance.t -> t -> Instance.t

(** [apply_mapped inst delta] additionally returns the map from each
    {e original} vertex id to its id in the new instance, or [-1] if the
    vertex was removed.  Used for churn accounting
    ({!Pipeline.resolve_delta}). *)
val apply_mapped : Instance.t -> t -> Instance.t * int array

(** [is_reweight_only delta] is true when every edit is [Reweight_edge] —
    the structure-preserving case the multilevel incremental path
    accepts ({!Hgp_multilevel} [Vcycle.resolve_delta]). *)
val is_reweight_only : t -> bool

(** {1 Text format}

    One edit per line, after a [%hgp-delta 1] header; blank lines and
    [#] comments are skipped:
    {v
    %hgp-delta 1
    reweight U V W
    add-edge U V W
    remove-edge U V
    add-vertex D [U W]...
    remove-vertex V
    v} *)

(** [to_string delta] renders the text format (17-digit floats, so a
    round-trip is exact). *)
val to_string : t -> string

(** [of_string s] parses the text format.
    @raise Hgp_resilience.Hgp_error.Error ([Parse _], context ["delta"])
    with a 1-based line number on malformed input. *)
val of_string : string -> t

(** [save delta path] / [load path] — file round-trip of the text format. *)
val save : t -> string -> unit

val load : string -> t
