module Tree = Hgp_tree.Tree
module Hierarchy = Hgp_hierarchy.Hierarchy
module Obs = Hgp_obs.Obs
module Deadline = Hgp_resilience.Deadline
module Faults = Hgp_resilience.Faults

type report = {
  assignment : int array;
  level_violation_units : float array;
  max_violation_units : float;
}

let theoretical_violation_bound ~h ~eps = (1. +. eps) *. (1. +. float_of_int h)

let pack ?(deadline = Deadline.none) t ~kappa ~demand_units ~hierarchy ~resolution =
  Faults.fire "feasible.pack";
  Obs.span "feasible.pack" @@ fun () ->
  let h = Hierarchy.height hierarchy in
  let n = Tree.n_nodes t in
  let per_level =
    Array.init (h + 1) (fun j ->
        Deadline.check deadline ~stage:"feasible";
        Levels.components t ~kappa ~level:j)
  in
  (* Leaf lists and unit demands per component, per level. *)
  let comp_leaves =
    Array.init (h + 1) (fun j ->
        let comp, n_comps = per_level.(j) in
        let buckets = Array.make n_comps [] in
        Array.iter (fun l -> buckets.(comp.(l)) <- l :: buckets.(comp.(l))) (Tree.leaves t);
        buckets)
  in
  let comp_demand =
    Array.init (h + 1) (fun j ->
        Array.map
          (fun leaves -> List.fold_left (fun acc l -> acc + demand_units.(l)) 0 leaves)
          comp_leaves.(j))
  in
  (* children_of.(j).(c): Level-(j+1) components (with leaves) inside
     Level-(j) component c. *)
  let children_of =
    Array.init h (fun j ->
        let comp_j, n_j = per_level.(j) in
        let comp_j1, n_j1 = per_level.(j + 1) in
        let parent = Array.make n_j1 (-1) in
        Array.iteri (fun v c1 -> parent.(c1) <- comp_j.(v)) comp_j1;
        let kids = Array.make n_j [] in
        for c1 = n_j1 - 1 downto 0 do
          if comp_leaves.(j + 1).(c1) <> [] then kids.(parent.(c1)) <- c1 :: kids.(parent.(c1))
        done;
        kids)
  in
  (* Per-node capacities in demand units: bins are weighted by the actual
     child node's capacity (all equal on regular trees). *)
  let cap_units = Hierarchy.capacity_units hierarchy ~resolution in
  let assignment = Array.make n (-1) in
  let rec place j h_idx comp_ids =
    if j = h then
      List.iter
        (fun c -> List.iter (fun l -> assignment.(l) <- h_idx) comp_leaves.(h).(c))
        comp_ids
    else begin
      let items = List.concat_map (fun c -> children_of.(j).(c)) comp_ids in
      let items =
        List.sort
          (fun a b -> compare comp_demand.(j + 1).(b) comp_demand.(j + 1).(a))
          items
      in
      let deg = Hierarchy.deg_of hierarchy ~level:j h_idx in
      let first_child, _ = Hierarchy.children_of hierarchy ~level:j h_idx in
      let bins = Array.make deg [] in
      let loads = Array.make deg 0 in
      let cap b = cap_units.(j + 1).(first_child + b) in
      List.iter
        (fun c ->
          (* Least RELATIVE load (load / capacity), compared by integer
             cross-multiplication so equal-capacity bins reduce exactly to
             the historical least-absolute-load rule. *)
          let best = ref 0 in
          for b = 1 to deg - 1 do
            if loads.(b) * cap !best < loads.(!best) * cap b then best := b
          done;
          bins.(!best) <- c :: bins.(!best);
          loads.(!best) <- loads.(!best) + comp_demand.(j + 1).(c))
        items;
      for b = 0 to deg - 1 do
        place (j + 1) (first_child + b) bins.(b)
      done
    end
  in
  (* Level-0: the whole tree is one component; feed every leafful one anyway
     for robustness. *)
  let _, n0 = per_level.(0) in
  let roots = List.filter (fun c -> comp_leaves.(0).(c) <> []) (List.init n0 (fun i -> i)) in
  place 0 0 roots;
  (* Corrupt action: drop one leaf's placement — an incomplete assignment
     that certification must flag ([assignment_complete = false]). *)
  (let leaves = Tree.leaves t in
   match Faults.corrupt_index "feasible.pack" ~len:(Array.length leaves) with
   | Some i -> assignment.(leaves.(i)) <- -1
   | None -> ());
  (* Violation accounting from the final assignment, in units. *)
  let level_violation_units = Array.make (h + 1) 0. in
  let total_units = Array.fold_left ( + ) 0 demand_units in
  level_violation_units.(0) <-
    float_of_int total_units /. float_of_int cap_units.(0).(0);
  for j = 1 to h do
    let loads = Array.make (Hierarchy.nodes_at_level hierarchy j) 0 in
    Array.iter
      (fun l ->
        if assignment.(l) >= 0 then begin
          let a = Hierarchy.ancestor hierarchy ~level:j assignment.(l) in
          loads.(a) <- loads.(a) + demand_units.(l)
        end)
      (Tree.leaves t);
    Array.iteri
      (fun idx load ->
        level_violation_units.(j) <-
          Float.max level_violation_units.(j)
            (float_of_int load /. float_of_int cap_units.(j).(idx)))
      loads
  done;
  let max_violation_units = Array.fold_left Float.max 0. level_violation_units in
  Obs.count "feasible.packs" 1;
  Obs.count "feasible.leaves_packed" (Array.length (Tree.leaves t));
  { assignment; level_violation_units; max_violation_units }
