type t = {
  h : int;
  caps : int array;
  strides : int array;
  bucket : int -> int;
}

let geometric_bucket delta v =
  (* Small values exact; larger ones rounded down to the nearest
     representative of a geometric ladder.  Built incrementally so that
     representatives map to themselves (idempotence is required by the DP's
     incremental key arithmetic). *)
  if v <= 4 then v
  else begin
    let ratio = 1. +. delta in
    let r = ref 4 in
    let continue = ref true in
    while !continue do
      let next = max (!r + 1) (int_of_float (floor (float_of_int !r *. ratio))) in
      if next <= v then r := next else continue := false
    done;
    !r
  end

let create ~cp_units ?bucketing () =
  let h = Array.length cp_units - 1 in
  if h < 0 then invalid_arg "Signature.create: cp_units must be non-empty";
  for j = 0 to h - 1 do
    if cp_units.(j) < cp_units.(j + 1) then
      invalid_arg "Signature.create: capacities must be non-increasing with depth"
  done;
  Array.iter (fun c -> if c < 0 then invalid_arg "Signature.create: negative capacity") cp_units;
  let caps = Array.sub cp_units 1 h in
  let strides = Array.make h 1 in
  for j = 1 to h - 1 do
    strides.(j) <- strides.(j - 1) * (caps.(j - 1) + 1);
    if strides.(j) < 0 then invalid_arg "Signature.create: state space overflows int"
  done;
  let bucket =
    match bucketing with
    | None -> fun v -> v
    | Some delta ->
      if not (delta > 0.) then invalid_arg "Signature.create: bucketing delta must be positive";
      geometric_bucket delta
  in
  { h; caps; strides; bucket }

let encode s sg =
  if Array.length sg <> s.h then invalid_arg "Signature.encode: length mismatch";
  let key = ref 0 in
  for j = 0 to s.h - 1 do
    let v = s.bucket sg.(j) in
    if v < 0 || v > s.caps.(j) then invalid_arg "Signature.encode: value out of range";
    key := !key + (v * s.strides.(j))
  done;
  !key

let decode_into s key dst ~pos =
  let k = ref key in
  for j = s.h - 1 downto 0 do
    dst.(pos + j) <- !k / s.strides.(j);
    k := !k mod s.strides.(j)
  done

let decode s key =
  let sg = Array.make s.h 0 in
  decode_into s key sg ~pos:0;
  sg

let zero _s = 0

let of_leaf s units =
  if s.h = 0 then Some 0
  else if units > s.caps.(s.h - 1) then None
  else begin
    let key = ref 0 in
    let v = s.bucket units in
    for j = 0 to s.h - 1 do
      key := !key + (v * s.strides.(j))
    done;
    Some !key
  end

let space_size s =
  Array.fold_left (fun acc c -> acc * (c + 1)) 1 s.caps

let count_valid s =
  if s.h = 0 then 1
  else begin
    (* counts.(v): number of monotone suffixes starting with value v at the
       current level.  Process levels from deepest to shallowest. *)
    let deepest = s.caps.(s.h - 1) in
    let counts = ref (Array.make (deepest + 1) 1) in
    for j = s.h - 2 downto 0 do
      let cap = s.caps.(j) in
      let prev = !counts in
      let prev_cap = Array.length prev - 1 in
      (* suffix_sums.(v) = sum of prev.(0..min v prev_cap) *)
      let next = Array.make (cap + 1) 0 in
      let running = ref 0 in
      for v = 0 to cap do
        if v <= prev_cap then running := !running + prev.(v);
        next.(v) <- !running
      done;
      counts := next
    done;
    Array.fold_left ( + ) 0 !counts
  end
