module Hierarchy = Hgp_hierarchy.Hierarchy
module Graph = Hgp_graph.Graph

type config = {
  slack : float;
  resolve_period : int;
  solver_options : Solver.options;
}

let default_config _hierarchy =
  { slack = 1.25; resolve_period = 0; solver_options = Solver.default_options }

type stats = {
  events : int;
  auto_resolves : int;
  migrations : int;
}

type task = {
  mutable alive : bool;
  demand : float;
  mutable leaf : int;
  mutable edges : (int * float) list; (* neighbor id, weight *)
}

type t = {
  hierarchy : Hierarchy.t;
  config : config;
  mutable tasks : task array;
  mutable n_tasks : int; (* ids handed out so far *)
  loads : float array; (* per leaf *)
  mutable events : int;
  mutable auto_resolves : int;
  mutable migrations : int;
}

let create hierarchy config =
  if not (config.slack >= 1.0) then invalid_arg "Dynamic.create: slack must be >= 1";
  {
    hierarchy;
    config;
    (* Array.init, not Array.make with a record literal: the latter would
       alias ONE mutable placeholder into every slot. *)
    tasks = Array.init 16 (fun _ -> { alive = false; demand = 0.; leaf = -1; edges = [] });
    n_tasks = 0;
    loads = Array.make (Hierarchy.num_leaves hierarchy) 0.;
    events = 0;
    auto_resolves = 0;
    migrations = 0;
  }

let n_alive t =
  let c = ref 0 in
  for i = 0 to t.n_tasks - 1 do
    if t.tasks.(i).alive then incr c
  done;
  !c

let get_task t id =
  if id < 0 || id >= t.n_tasks || not t.tasks.(id).alive then
    invalid_arg "Dynamic: unknown or removed task id";
  t.tasks.(id)

let leaf_of t id = (get_task t id).leaf

let current_cost t =
  let acc = ref 0. in
  for v = 0 to t.n_tasks - 1 do
    let tv = t.tasks.(v) in
    if tv.alive then
      List.iter
        (fun (u, w) ->
          (* Count each live edge once (from the lower endpoint). *)
          if u < v && t.tasks.(u).alive then
            acc := !acc +. (w *. Hierarchy.edge_cost t.hierarchy tv.leaf t.tasks.(u).leaf))
        tv.edges
  done;
  !acc

let max_violation t =
  let hy = t.hierarchy in
  let h = Hierarchy.height hy in
  let worst = ref 0. in
  for j = 1 to h do
    let loads = Array.make (Hierarchy.nodes_at_level hy j) 0. in
    for v = 0 to t.n_tasks - 1 do
      let tv = t.tasks.(v) in
      if tv.alive then begin
        let a = Hierarchy.ancestor hy ~level:j tv.leaf in
        loads.(a) <- loads.(a) +. tv.demand
      end
    done;
    Array.iteri
      (fun idx l -> worst := Float.max !worst (l /. Hierarchy.capacity_of hy ~level:j idx))
      loads
  done;
  !worst

(* Greedy placement of one task against current neighbors. *)
let place_greedy t demand edges =
  let hy = t.hierarchy in
  let k = Hierarchy.num_leaves hy in
  let best_leaf = ref (-1) and best = ref infinity in
  for l = 0 to k - 1 do
    let cap = t.config.slack *. Hierarchy.leaf_cap hy l in
    if t.loads.(l) +. demand <= cap +. 1e-9 then begin
      let c =
        List.fold_left
          (fun acc (u, w) ->
            acc +. (w *. Hierarchy.edge_cost hy l t.tasks.(u).leaf))
          0. edges
      in
      if
        c < !best -. 1e-12
        || (c < !best +. 1e-12 && (!best_leaf < 0 || t.loads.(l) < t.loads.(!best_leaf)))
      then begin
        best := c;
        best_leaf := l
      end
    end
  done;
  if !best_leaf >= 0 then !best_leaf
  else begin
    (* No leaf has room under slack: use the least-loaded one. *)
    let least = ref 0 in
    for l = 1 to k - 1 do
      if t.loads.(l) < t.loads.(!least) then least := l
    done;
    !least
  end

let rebalance t =
  let alive = ref [] in
  for v = t.n_tasks - 1 downto 0 do
    if t.tasks.(v).alive then alive := v :: !alive
  done;
  let ids = Array.of_list !alive in
  let n = Array.length ids in
  if n < 2 then 0
  else begin
    let index = Hashtbl.create (2 * n) in
    Array.iteri (fun i id -> Hashtbl.add index id i) ids;
    let b = Graph.Builder.create n in
    Array.iteri
      (fun i id ->
        List.iter
          (fun (u, w) ->
            match Hashtbl.find_opt index u with
            | Some j when j > i && t.tasks.(u).alive -> Graph.Builder.add_edge b i j w
            | _ -> ())
          t.tasks.(id).edges)
      ids;
    let g = Graph.Builder.build b in
    let rng = Hgp_util.Prng.create t.config.solver_options.Solver.seed in
    let g = Hgp_graph.Traversal.ensure_connected g rng in
    let demands = Array.map (fun id -> t.tasks.(id).demand) ids in
    let inst = Instance.create g ~demands t.hierarchy in
    let sol = Solver.solve ~options:t.config.solver_options inst in
    (* Guarded application: the solver is an approximation, so keep the
       incumbent placement when it is already cheaper. *)
    (* Evaluate the candidate on the real task edges (the instance graph may
       contain connectivity patch edges that are not real communication). *)
    let candidate_leaf id = sol.Solver.assignment.(Hashtbl.find index id) in
    let candidate_cost = ref 0. in
    Array.iter
      (fun id ->
        List.iter
          (fun (u, w) ->
            if u < id && t.tasks.(u).alive then
              candidate_cost :=
                !candidate_cost
                +. (w *. Hierarchy.edge_cost t.hierarchy (candidate_leaf id) (candidate_leaf u)))
          t.tasks.(id).edges)
      ids;
    let candidate_cost = !candidate_cost in
    let incumbent_cost = current_cost t in
    if candidate_cost > incumbent_cost +. 1e-9 then 0
    else begin
      let moved = ref 0 in
      Array.fill t.loads 0 (Array.length t.loads) 0.;
      Array.iteri
        (fun i id ->
          let task = t.tasks.(id) in
          let leaf = sol.Solver.assignment.(i) in
          if leaf <> task.leaf then incr moved;
          task.leaf <- leaf;
          t.loads.(leaf) <- t.loads.(leaf) +. task.demand)
        ids;
      t.migrations <- t.migrations + !moved;
      !moved
    end
  end

let bump_event t =
  t.events <- t.events + 1;
  if t.config.resolve_period > 0 && t.events mod t.config.resolve_period = 0 then begin
    t.auto_resolves <- t.auto_resolves + 1;
    ignore (rebalance t)
  end

let add_task t ~demand ~edges =
  let hy = t.hierarchy in
  if not (demand > 0.) || demand > Hierarchy.leaf_capacity hy +. 1e-9 then
    invalid_arg "Dynamic.add_task: demand out of range";
  List.iter (fun (u, _) -> ignore (get_task t u)) edges;
  List.iter
    (fun (_, w) -> if not (w >= 0.) then invalid_arg "Dynamic.add_task: negative weight")
    edges;
  let id = t.n_tasks in
  if id = Array.length t.tasks then begin
    let bigger =
      (* distinct placeholder records per slot, see [create] *)
      Array.init (2 * id) (fun _ -> { alive = false; demand = 0.; leaf = -1; edges = [] })
    in
    Array.blit t.tasks 0 bigger 0 id;
    t.tasks <- bigger
  end;
  let leaf = place_greedy t demand edges in
  let task = { alive = true; demand; leaf; edges } in
  t.tasks.(id) <- task;
  t.n_tasks <- id + 1;
  t.loads.(leaf) <- t.loads.(leaf) +. demand;
  (* Record the reverse links so departures and later placements see them. *)
  List.iter (fun (u, w) -> t.tasks.(u).edges <- (id, w) :: t.tasks.(u).edges) edges;
  bump_event t;
  id

let remove_task t id =
  let task = get_task t id in
  task.alive <- false;
  t.loads.(task.leaf) <- t.loads.(task.leaf) -. task.demand;
  (* Unlink from neighbors. *)
  List.iter
    (fun (u, _) ->
      if u < t.n_tasks && t.tasks.(u).alive then
        t.tasks.(u).edges <- List.filter (fun (x, _) -> x <> id) t.tasks.(u).edges)
    task.edges;
  bump_event t

let stats t = { events = t.events; auto_resolves = t.auto_resolves; migrations = t.migrations }
