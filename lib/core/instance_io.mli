(** Serialization of full HGP instances (graph + demands + hierarchy).

    Text format, line oriented:
    {v
    %hgp-instance 1
    hierarchy 2x4x2@100,30,8,0 capacity 1
    demands 0.5 0.25 ...
    graph
    <METIS graph text>
    v}
    Comment lines starting with ['#'] are ignored before the [graph]
    section.

    All parse failures raise {!Hgp_resilience.Hgp_error.Error} with a
    [Parse] payload carrying the 1-based line number (when attributable) and
    the section or field in which the problem was found; file-system
    failures in {!load}/{!save} carry an [Io_error] payload.  Fault sites
    ["instance_io.parse"] and ["instance_io.load"] are wired in for
    resilience testing (see [docs/ROBUSTNESS.md]). *)

(** [to_string inst] renders the instance. *)
val to_string : Instance.t -> string

(** [of_string s] parses an instance.
    @raise Hgp_resilience.Hgp_error.Error with a [Parse] payload on
    malformed input. *)
val of_string : string -> Instance.t

(** [save inst path] / [load path]: file variants.
    @raise Hgp_resilience.Hgp_error.Error with an [Io_error] payload when
    the OS refuses, in addition to {!of_string}'s parse errors. *)
val save : Instance.t -> string -> unit

val load : string -> Instance.t
