module Hierarchy = Hgp_hierarchy.Hierarchy
module Topology = Hgp_hierarchy.Topology
module Io = Hgp_graph.Io
module Hgp_error = Hgp_resilience.Hgp_error
module Faults = Hgp_resilience.Faults

let to_string (inst : Instance.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "%hgp-instance 1\n";
  (* Ragged specs embed their per-leaf capacities; the separate "capacity"
     field is the regular format's uniform leaf capacity (the regular spec
     grammar itself carries none). *)
  (if Hierarchy.is_regular inst.hierarchy then
     Buffer.add_string buf
       (Printf.sprintf "hierarchy %s capacity %.17g\n"
          (Topology.to_spec inst.hierarchy)
          (Hierarchy.leaf_capacity inst.hierarchy))
   else
     Buffer.add_string buf
       (Printf.sprintf "hierarchy %s\n" (Topology.to_spec inst.hierarchy)));
  Buffer.add_string buf "demands";
  Array.iter (fun d -> Buffer.add_string buf (Printf.sprintf " %.17g" d)) inst.demands;
  Buffer.add_string buf "\ngraph\n";
  Buffer.add_string buf (Io.to_string inst.graph);
  Buffer.contents buf

let parse_error ?line ~context fmt =
  Printf.ksprintf
    (fun msg -> Hgp_error.error (Hgp_error.Parse { line; context; msg }))
    fmt

(* Wrap a section parser so that stringly failures from the underlying
   parsers (Topology.parse, Io.of_string, float_of_string) surface as
   [Parse] errors anchored at [line]. *)
let in_context ~line ~context f =
  try f () with
  | Hgp_error.Error _ as e -> raise e
  | Failure msg | Invalid_argument msg -> parse_error ~line ~context "%s" msg

let of_string s =
  Faults.fire "instance_io.parse";
  let lines =
    (* Accept CRLF input (files written on Windows, or piped through tools
       that rewrite line endings): a carriage return before the newline is
       never meaningful in this format. *)
    String.split_on_char '\n' s
    |> List.map (fun l ->
           let len = String.length l in
           if len > 0 && l.[len - 1] = '\r' then String.sub l 0 (len - 1) else l)
  in
  (* [parse] walks the header section; returns the graph section's starting
     line number along with its lines. *)
  let rec parse lines lineno hierarchy demands =
    match lines with
    | [] -> parse_error ~context:"instance" "missing graph section"
    | line :: rest -> (
      let line_t = String.trim line in
      if line_t = "" || line_t.[0] = '#' || line_t = "%hgp-instance 1" then
        parse rest (lineno + 1) hierarchy demands
      else
        match String.index_opt line_t ' ' with
        | _ when line_t = "graph" -> (hierarchy, demands, rest, lineno + 1)
        | Some _ when String.length line_t > 10 && String.sub line_t 0 10 = "hierarchy " -> (
          if Option.is_some hierarchy then
            parse_error ~line:lineno ~context:"hierarchy" "duplicate hierarchy line";
          let spec = String.sub line_t 10 (String.length line_t - 10) in
          match String.split_on_char ' ' spec with
          | [ topo; "capacity"; cap ] ->
            let h =
              in_context ~line:lineno ~context:"hierarchy" (fun () ->
                  let base = Topology.parse topo in
                  let cap =
                    match float_of_string_opt cap with
                    | Some c -> c
                    | None ->
                      parse_error ~line:lineno ~context:"hierarchy"
                        "leaf capacity %S is not a number" cap
                  in
                  if not (Hierarchy.is_regular base) then
                    parse_error ~line:lineno ~context:"hierarchy"
                      "a ragged hierarchy spec embeds per-leaf capacities; \
                       'capacity' only applies to regular specs";
                  Hierarchy.create ~degs:(Hierarchy.degs base)
                    ~cm:(Array.init (Hierarchy.height base + 1) (Hierarchy.cm base))
                    ~leaf_capacity:cap)
            in
            parse rest (lineno + 1) (Some h) demands
          | [ topo ] ->
            let h =
              in_context ~line:lineno ~context:"hierarchy" (fun () -> Topology.parse topo)
            in
            parse rest (lineno + 1) (Some h) demands
          | _ ->
            parse_error ~line:lineno ~context:"hierarchy"
              "expected 'hierarchy SPEC [capacity C]', got %S" line_t)
        | Some _ when String.length line_t > 8 && String.sub line_t 0 8 = "demands " ->
          if Option.is_some demands then
            parse_error ~line:lineno ~context:"demands" "duplicate demands line";
          let ds =
            String.sub line_t 8 (String.length line_t - 8)
            |> String.split_on_char ' '
            |> List.filter (fun x -> x <> "")
            |> List.mapi (fun field x ->
                   match float_of_string_opt x with
                   | Some d -> d
                   | None ->
                     parse_error ~line:lineno ~context:"demands"
                       "field %d: %S is not a number" (field + 1) x)
            |> Array.of_list
          in
          parse rest (lineno + 1) hierarchy (Some ds)
        | _ ->
          parse_error ~line:lineno ~context:"instance" "unexpected line %S" line_t)
  in
  let hierarchy, demands, graph_lines, graph_line = parse lines 1 None None in
  let graph =
    in_context ~line:graph_line ~context:"graph" (fun () ->
        Io.of_string (String.concat "\n" graph_lines))
  in
  match (hierarchy, demands) with
  | Some h, Some d ->
    (* Corrupt action: one demand becomes NaN, as a bit flip would; instance
       validation must refuse it with a structured error. *)
    (match Faults.corrupt_index "instance_io.parse" ~len:(Array.length d) with
    | Some i -> d.(i) <- Float.nan
    | None -> ());
    in_context ~line:graph_line ~context:"instance" (fun () ->
        Instance.create graph ~demands:d h)
  | None, _ -> parse_error ~context:"hierarchy" "missing hierarchy line"
  | _, None -> parse_error ~context:"demands" "missing demands line"

let save inst path =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string inst))
  with Sys_error msg -> Hgp_error.error (Hgp_error.Io_error { path; msg })

let load path =
  Faults.fire "instance_io.load";
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_string (really_input_string ic len))
  with
  | Sys_error msg | Failure msg -> Hgp_error.error (Hgp_error.Io_error { path; msg })
  | End_of_file -> Hgp_error.error (Hgp_error.Io_error { path; msg = "short read" })
