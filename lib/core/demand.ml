type mode = Floor | Ceil

type t = {
  units : int array;
  unit_size : float;
  resolution : int;
  mode : mode;
}

let quantize ~demands ~leaf_capacity ~resolution ~mode =
  Hgp_resilience.Faults.fire "demand.quantize";
  if resolution < 1 then invalid_arg "Demand.quantize: resolution must be >= 1";
  if not (leaf_capacity > 0.) then invalid_arg "Demand.quantize: leaf_capacity";
  let unit_size = leaf_capacity /. float_of_int resolution in
  let units =
    Array.map
      (fun d ->
        if not (d > 0.) || d > leaf_capacity +. 1e-9 then
          invalid_arg "Demand.quantize: demand out of range";
        let scaled = d /. unit_size in
        let u =
          match mode with
          | Floor -> int_of_float (floor (scaled +. 1e-9))
          | Ceil -> int_of_float (ceil (scaled -. 1e-9))
        in
        (* Ceil may overshoot to resolution + 1 on d = leaf_capacity + fp
           noise; clamp into the representable range. *)
        max 0 (min u resolution))
      demands
  in
  (* Corrupt action: one job's units jump to a full leaf capacity — the
     quantized instance no longer matches the float demands; downstream
     certification against the true demands must absorb or reject it. *)
  (match Hgp_resilience.Faults.corrupt_index "demand.quantize" ~len:(Array.length units) with
  | Some i -> units.(i) <- resolution
  | None -> ());
  Hgp_obs.Obs.count "demand.quantize_calls" 1;
  (* Jobs rounded to zero units vanish from the relaxed instance — the lead
     indicator that the resolution is too coarse for the demand profile. *)
  Hgp_obs.Obs.count "demand.zero_unit_jobs"
    (Array.fold_left (fun acc u -> if u = 0 then acc + 1 else acc) 0 units);
  { units; unit_size; resolution; mode }

let resolution_for_eps ~n ~eps =
  if not (eps > 0.) then invalid_arg "Demand.resolution_for_eps: eps must be positive";
  max 1 (int_of_float (ceil (float_of_int n /. eps)))

let capacity_units t ~hierarchy =
  Hgp_hierarchy.Hierarchy.level_capacity_units hierarchy ~resolution:t.resolution

let rounding_error_bound t ~n_jobs = float_of_int n_jobs *. t.unit_size
