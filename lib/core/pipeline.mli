(** The Theorem-1 solve as an explicit staged pipeline with memoizable,
    content-addressed artifacts.

    {v
      Instance × options
        │  prepare     (validate, pick resolution, quantize demands)
        ▼
      Prepared ──────────────────────────── key: instance ⊕ eps ⊕
        │  embed       (sample Räcke ensemble;      resolution ⊕ rounding
        ▼               memoized in Ensemble_cache)
      Embedded ─────────────────────────── key: graph ⊕ strategy ⊕ seed ⊕ size
        │  relax       (per-tree DP, Theorems 2–4; domain pool when parallel)
        ▼
      Relaxed  (per-tree kappa labelings + work counts)
        │  pack        (Theorem-5 conversion per tree, best by true cost)
        ▼
      Packed   ─────────────────────────── key: prepared ⊕ embedded ⊕
                                                bucketing ⊕ beam width
    v}

    Each stage is a pure function of its inputs, every input is captured by
    the stage's fingerprint key, and the two expensive artifacts (ensembles,
    packed solutions) are cached process-wide: a repeated solve, the 4×
    infeasibility retry (same ensemble key — only the resolution changed),
    every [Portfolio.solve] candidate sweep and every supervised-rung descent
    reuse them instead of re-sampling.  [parallel] is deliberately absent
    from every key: the parallel and sequential paths are bit-identical by
    construction (tested), so they may share artifacts.  The reuse-legality
    argument and the full key table live in [docs/ARCHITECTURE.md].

    Fault-injection interplay: while a fault plan is armed, {e all} caches
    are bypassed (reads and writes), so every [HGP_FAULT_PLAN] site still
    fires at its stage boundary and no faulted artifact is ever retained.

    This module owns {!options} / {!solution}; {!Solver} re-exports them, so
    existing code and tests compile unchanged against [Solver.*]. *)

type options = {
  ensemble_size : int;  (** number of decomposition trees sampled *)
  eps : float;  (** rounding accuracy; drives resolution unless set *)
  resolution : int option;
      (** demand units per leaf capacity; default caps the paper's
          [n / eps] at {!default_max_resolution} to keep the DP practical
          (the cap is a documented substitution) *)
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
      (** DP state budget per table (see {!Tree_dp.config}); [Some 512] by
          default — exact on small frontiers, graceful on large ones *)
  strategy : Hgp_racke.Ensemble.strategy;
      (** decomposition-tree shapes; [Mixed] (default) round-robins
          low-diameter / BFS-bisection / Gomory–Hu shapes for diversity *)
  parallel : bool;
      (** solve ensemble trees on the shared worker-domain pool (per-tree
          work is independent and shares only immutable data); off by
          default *)
  seed : int;
}

val default_options : options

(** The resolution cap applied when [resolution = None]. *)
val default_max_resolution : int

type solution = {
  assignment : int array;  (** vertex -> hierarchy leaf *)
  cost : float;  (** Equation-1 cost of [assignment] on the graph *)
  max_violation : float;  (** true-demand violation factor (1.0 = feasible) *)
  relaxed_tree_cost : float;
      (** DP optimum on the winning tree; [nan] when the winning rung of a
          supervised solve was a fallback with no tree relaxation *)
  tree_index : int;  (** which ensemble member won; [-1] for fallback rungs *)
  dp_states : int;
      (** DP table entries explored by {e this} solve (0 when the whole
          solution came from the packed cache) *)
  cached_dp_states : int;
      (** DP work inherited from the packed-solution cache — the states the
          producing solve explored; [dp_states + cached_dp_states] is the
          total work the answer embodies, without double-counting *)
}

(** [resolution_of inst options] is the effective resolution the prepare
    stage will use. *)
val resolution_of : Instance.t -> options -> int

(** The same computation from raw quantities (used by the HGPT special case,
    which has no {!Instance.t}). *)
val resolution_for :
  n:int -> total_demand:float -> leaf_capacity:float -> options -> int

(** [resolution_clamped inst options] is true when the 4096 tractability cap
    engaged — i.e. eps stopped binding the resolution (satellite of ISSUE 3;
    also counted under [solver.resolution_clamped]). *)
val resolution_clamped : Instance.t -> options -> bool

(** {1 Supervision hooks}

    The supervised solve threads fault isolation through the stage
    boundaries: per-tree failures are recorded and skipped rather than
    raised, and an expired deadline aborts the current stage. *)

type supervision = {
  deadline : Hgp_resilience.Deadline.t;
  record_tree : Hgp_resilience.Hgp_error.t -> unit;
      (** called with [Tree_failure _] / [Domain_crash _] per lost tree *)
  record : Hgp_resilience.Hgp_error.t -> unit;
      (** called for non-tree events (one deduplicated deadline report) *)
}

(** [run ?supervision inst options] executes prepare → embed → relax → pack
    and returns the best feasible assignment by true graph cost, or [None]
    when every tree is infeasible after quantization.

    Without [supervision] this is the fail-fast path: any error propagates.
    With it, per-tree faults are recorded via the hooks and survivors carry
    the solve.

    Telemetry: [pipeline.stage.*] spans, [cache.{hit,miss,evict}] counters
    (plus [cache.{ensemble,packed}.*] breakdowns), and the pre-existing
    [solver.*] span/counter names, unchanged. *)
val run : ?supervision:supervision -> Instance.t -> options -> solution option

(** [solve_on_decomposition inst d ~options] runs relax + pack on one given
    tree (no ensemble, no caching); exposed for ensemble ablations.
    @raise Hgp_resilience.Hgp_error.Error ([Infeasible _]) — no retry. *)
val solve_on_decomposition :
  Instance.t -> Hgp_racke.Decomposition.t -> options:options -> solution

(** {1 Incremental re-solve}

    Sessions thread solve state across a delta stream: the per-subtree DP
    snapshot cache (registered as [subtree_dp] in {!cache_stats}) lets each
    re-solve recompute only the dirty cone of every decomposition tree,
    splicing clean-subtree tables back in bit-identically
    (docs/INCREMENTAL.md). *)

(** [run_incremental ?supervision inst options] is {!run} with the relax
    stage routed through the per-subtree snapshot cache.  The packed-
    solution cache is not consulted (the report must reflect true
    incremental work) but healthy results are still published to it.
    Returns the solution plus [(resolved_subtrees, reused_subtrees)]:
    decomposition-tree nodes recomputed vs spliced, summed over the
    ensemble.  The solution is bit-identical to a cold {!run} on the same
    instance. *)
val run_incremental :
  ?supervision:supervision ->
  Instance.t ->
  options ->
  (solution * (int * int)) option

(** A named incremental-solve session: the current instance, pinned
    options, and the last assignment (for churn accounting). *)
type session

type update_report = {
  u_solution : solution;
  churn : float;
      (** exact fraction of the new instance's vertices whose leaf changed
          vs the session's previous assignment (new vertices count as
          changed; removed vertices leave the denominator) *)
  resolved_subtrees : int;  (** tree nodes recomputed (the dirty cone) *)
  reused_subtrees : int;  (** tree nodes spliced from snapshots *)
  certified : bool;  (** {!Verify.certify} within the (1+eps)(1+h) band *)
  cert_violation : float;
  cert_bound : float;
}

(** [start_session inst options] solves cold (warming the snapshot cache)
    and opens a session; [None] when every tree is infeasible. *)
val start_session : Instance.t -> options -> (session * solution) option

(** [resolve_delta ?supervision session delta] applies the delta
    ({!Delta.apply_mapped}), re-solves incrementally, re-certifies with
    {!Verify.certify}, updates the session state, and bumps the
    [incremental.{updates,dirty_subtrees,reused_subtrees}] counters and the
    [incremental.churn] gauge.  [None] when the post-delta instance is
    infeasible at this resolution (the session is left unchanged — callers
    fall back to a cold {!Solver.solve}, which retries at higher
    resolution).
    @raise Hgp_resilience.Hgp_error.Error ([Invalid_input _]) when the
    delta does not validate against the session's instance. *)
val resolve_delta :
  ?supervision:supervision -> session -> Delta.t -> update_report option

(** [churn_of ~mapping ~old_assignment ~assignment ~n_new] is the exact
    fraction of the new instance's vertices whose leaf assignment changed:
    [mapping] is {!Delta.apply_mapped}'s old-id -> new-id map (new vertices,
    i.e. ids not in its range, count as changed; removed old vertices are
    out of the denominator).  Shared with the multilevel session layer. *)
val churn_of :
  mapping:int array ->
  old_assignment:int array ->
  assignment:int array ->
  n_new:int ->
  float

val session_instance : session -> Instance.t
val session_options : session -> options

(** The session's current assignment (a fresh copy) and its cost. *)
val session_assignment : session -> int array

val session_cost : session -> float

(** {1 Cache control and introspection} *)

(** Packed-solution caching is on by default; [set_caching false] disables
    the packed cache {e and} the ensemble cache (tests use this to force
    cold solves). *)
val set_caching : bool -> unit

(** Drop all cached artifacts (both caches, plus registered external
    caches); stats histories survive. *)
val clear_caches : unit -> unit

(** [register_external_cache ~name ~stats ~clear ~reset_stats] enrolls a
    cache owned by a higher layer (e.g. the multilevel front-end's coarse
    hierarchy cache) into {!cache_stats}, {!clear_caches},
    {!reset_cache_stats} and the [--cache-stats] rendering — core cannot
    depend on those layers, so they push their introspection hooks down.
    Call once at module init; re-registering a name replaces its hooks. *)
val register_external_cache :
  name:string ->
  stats:(unit -> Hgp_util.Lru.stats) ->
  clear:(unit -> unit) ->
  reset_stats:(unit -> unit) ->
  unit

(** [("ensemble", stats); ("packed", stats)], then one entry per registered
    external cache in registration order. *)
val cache_stats : unit -> (string * Hgp_util.Lru.stats) list

(** Zero both caches' hit/miss/eviction counters. *)
val reset_cache_stats : unit -> unit

(** The [--cache-stats] rendering: one ["cache NAME hits=…"] line per cache,
    then one ["stage NAME … ms"] line per stage — shared by the CLI and the
    golden tests so the snapshot cannot drift from the implementation. *)
val render_cache_stats : unit -> string

(** Cumulative wall-clock per stage since process start (or {!reset_timings}),
    as [(stage, milliseconds)] in pipeline order.  Always on — independent
    of [Obs] being enabled — so [--cache-stats] can print stage timing lines
    without paying for full telemetry. *)
val stage_timings : unit -> (string * float) list

val reset_timings : unit -> unit
