(** End-to-end HGP solvers (Theorem 1 pipeline and the HGPT special case).

    For a general graph: sample an ensemble of decomposition trees (Theorem
    6/7 substrate), solve the relaxed problem optimally on each tree
    (Theorems 2–4), convert each relaxed solution to a feasible hierarchy
    assignment (Theorem 5) and keep the assignment whose {e true graph cost}
    (Equation 1) is smallest.  Picking by true cost instead of by tree cost
    is a strict improvement over the paper's statement and keeps the same
    guarantee.

    The execution engine is {!Pipeline}: an explicit staged pipeline
    (prepare → embed → relax → pack) whose expensive artifacts — sampled
    ensembles and packed solutions — are content-addressed and cached
    process-wide, so repeated solves, the infeasibility retry, supervised
    rungs and portfolio candidates reuse them (see [docs/ARCHITECTURE.md]).
    This module re-exports the pipeline's {!options} / {!solution} types, so
    [Solver.default_options] and friends work as before.

    Two entry points: {!solve} is the raw pipeline (fails fast with a
    structured error), {!solve_supervised} wraps it in fault isolation, a
    cooperative deadline, and a certified degradation ladder — the
    production entry point (see [docs/ROBUSTNESS.md]). *)

type options = Pipeline.options = {
  ensemble_size : int;  (** number of decomposition trees sampled *)
  eps : float;  (** rounding accuracy; drives resolution unless set *)
  resolution : int option;
      (** demand units per leaf capacity; default caps the paper's
          [n / eps] at {!default_max_resolution} to keep the DP practical
          (the cap is a documented substitution) *)
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
      (** DP state budget per table (see {!Tree_dp.config}); [Some 512] by
          default — exact on small frontiers, graceful on large ones *)
  strategy : Hgp_racke.Ensemble.strategy;
      (** decomposition-tree shapes; [Mixed] (default) round-robins
          low-diameter / BFS-bisection / Gomory–Hu shapes for diversity *)
  parallel : bool;
      (** solve ensemble trees on the shared worker-domain pool (per-tree
          work is independent and shares only immutable data); off by
          default *)
  seed : int;
}

val default_options : options

(** The resolution cap applied when [resolution = None]. *)
val default_max_resolution : int

type solution = Pipeline.solution = {
  assignment : int array;  (** vertex -> hierarchy leaf *)
  cost : float;  (** Equation-1 cost of [assignment] on the graph *)
  max_violation : float;  (** true-demand violation factor (1.0 = feasible) *)
  relaxed_tree_cost : float;
      (** DP optimum on the winning tree; [nan] when the winning rung of a
          supervised solve was a fallback with no tree relaxation *)
  tree_index : int;  (** which ensemble member won; [-1] for fallback rungs *)
  dp_states : int;
      (** DP table entries explored by {e this} solve over all trees
          (0 when the whole solution was served from the packed cache) *)
  cached_dp_states : int;
      (** DP work inherited from the packed-solution cache (the producing
          solve's states); totals never double-count *)
}

(** [resolution_of inst options] is the effective demand resolution the
    prepare stage will use (either [options.resolution] or the capped
    default derived from eps). *)
val resolution_of : Instance.t -> options -> int

(** [resolution_clamped inst options] reports whether the default-resolution
    rule would hit its 4096 tractability cap — i.e. eps stopped binding.
    Also counted under [solver.resolution_clamped]; the CLI prints a note. *)
val resolution_clamped : Instance.t -> options -> bool

(** [solve ?options inst] runs the full pipeline.  The instance's graph must
    be connected (preprocess with {!Hgp_graph.Traversal.ensure_connected}).

    When the quantized instance is infeasible, the solve is retried once at
    a finer resolution with floor rounding (finer units shrink the rounding
    overshoot that causes spurious infeasibility — most often with
    [Demand.Ceil]); the retry reuses the cached ensemble, since the ensemble
    key does not involve the resolution; only then is the failure surfaced.
    @raise Hgp_resilience.Hgp_error.Error with an [Infeasible] payload
    ([retried = true] when the retry also failed). *)
val solve : ?options:options -> Instance.t -> solution

(** [solve_on_decomposition inst d ~options] solves on one given tree;
    exposed for ensemble ablations.
    @raise Hgp_resilience.Hgp_error.Error ([Infeasible _]) — no retry. *)
val solve_on_decomposition :
  Instance.t -> Hgp_racke.Decomposition.t -> options:options -> solution

(** {1 Supervised solving} *)

(** A named degradation rung supplied by the caller (e.g. the portfolio or
    recursive-bisection baselines, which live above this library).  It
    receives the instance and returns a vertex->leaf assignment; anything it
    raises is recorded and the ladder steps past it. *)
type fallback = string * (Instance.t -> int array)

type supervised = {
  solution : solution;
  certificate : Verify.report;  (** independent re-certification of the answer *)
  rung : string;  (** which ladder rung produced the answer *)
  rungs_tried : string list;  (** in descent order, including [rung] *)
  degraded : bool;
      (** true when any tree failed or a rung below "ensemble" won *)
  tree_failures : Hgp_resilience.Hgp_error.t list;
      (** per-tree isolation events ([Tree_failure] / [Domain_crash]) *)
  errors : Hgp_resilience.Hgp_error.t list;  (** everything recorded, including the above *)
}

(** [solve_supervised ?options ?deadline_ms ?fallbacks inst] is the
    resilient entry point:

    - {b fault isolation}: each ensemble member's decomposition build, DP
      and packing run behind a fence; a raising tree (or a crashed pool
      worker in [parallel] mode) is recorded and skipped, and the solve
      proceeds on the survivors — a Räcke ensemble is a distribution over
      trees, so losing members costs diversity, never correctness;
    - {b deadline}: [deadline_ms] starts a cooperative token checked in the
      ensemble loop, the DP merge loop, and the packer; on expiry the
      current rung aborts within microseconds and the ladder descends;
    - {b degradation ladder}: rung 0 is the full ensemble; rung 1 retries
      with a single tree, a narrow beam and halved resolution; then each
      [fallbacks] entry in order; the final rung is a least-loaded
      demand-balancing placement that cannot fail and takes
      [O(n (log n + k))].  Every rung's candidate is re-checked with
      {!Verify.certify} and must be complete and within the Theorem-2
      violation budget [(1+eps)(1+h)] to win.

    Degraded results (lost trees, expired deadlines) are never written to
    the pipeline's caches, and any armed fault plan bypasses them entirely,
    so supervision composes with artifact reuse without retaining damage.

    Returns [Error _] only when {e no} rung — including the emergency
    placement — certifies, i.e. the instance is overloaded beyond the
    violation budget.  Never raises; never leaves a pool task unjoined.
    Telemetry: [supervisor.*] counters and the [supervisor.rung_index]
    gauge (see [docs/OBSERVABILITY.md]). *)
val solve_supervised :
  ?options:options ->
  ?deadline_ms:float ->
  ?fallbacks:fallback list ->
  Instance.t ->
  (supervised, Hgp_resilience.Hgp_error.t) result

(** [solve_tree tree ~demands hierarchy ~options] solves the HGPT problem
    where the communication graph is itself the tree [tree] and {e every
    node} is a job with the given demand (the paper's dummy-leaf reduction is
    applied internally).  Returns the assignment indexed by original tree
    node, its Equation-1 cost (edges of [tree] as the communication edges),
    the relaxed DP lower bound, and the violation factor.
    @raise Hgp_resilience.Hgp_error.Error ([Infeasible _]) when the
    quantized instance admits no packing. *)
val solve_tree :
  Hgp_tree.Tree.t ->
  demands:float array ->
  Hgp_hierarchy.Hierarchy.t ->
  options:options ->
  int array * float * float * float
