module Hierarchy = Hgp_hierarchy.Hierarchy

type report = {
  n : int;
  assignment_complete : bool;
  cost_eq1 : float;
  cost_eq3 : float;
  lemma2_gap : float;
  leaf_loads : float array;
  level_violation : float array;
  max_violation : float;
  theorem_bound : float;
  within_theorem_bound : bool;
}

let certify (inst : Instance.t) p ~eps =
  let hy = inst.hierarchy in
  let h = Hierarchy.height hy in
  let k = Hierarchy.num_leaves hy in
  let n = Instance.n inst in
  let assignment_complete =
    Array.length p = n && Array.for_all (fun l -> l >= 0 && l < k) p
  in
  let cost_eq1, cost_eq3, lemma2_gap =
    if assignment_complete then begin
      let a = Cost.assignment_cost inst p in
      let m = Cost.mirror_cost inst p in
      (a, m, Float.abs (a -. m) /. (1. +. Float.abs a))
    end
    else (nan, nan, nan)
  in
  let leaf_loads = Array.make k 0. in
  let count = min n (Array.length p) in
  for v = 0 to count - 1 do
    if p.(v) >= 0 && p.(v) < k then leaf_loads.(p.(v)) <- leaf_loads.(p.(v)) +. inst.demands.(v)
  done;
  let level_violation = Array.make (h + 1) 0. in
  level_violation.(0) <- Instance.total_demand inst /. Hierarchy.capacity_of hy ~level:0 0;
  for j = 1 to h do
    let loads = Array.make (Hierarchy.nodes_at_level hy j) 0. in
    for l = 0 to k - 1 do
      let a = Hierarchy.ancestor hy ~level:j l in
      loads.(a) <- loads.(a) +. leaf_loads.(l)
    done;
    (* Violation is per NODE: each node's load against its own capacity
       (uniform per level on regular trees, heterogeneous on ragged ones). *)
    Array.iteri
      (fun idx load ->
        level_violation.(j) <-
          Float.max level_violation.(j) (load /. Hierarchy.capacity_of hy ~level:j idx))
      loads
  done;
  let max_violation = ref 0. in
  for j = 1 to h do
    max_violation := Float.max !max_violation level_violation.(j)
  done;
  let theorem_bound = Feasible.theoretical_violation_bound ~h ~eps in
  {
    n;
    assignment_complete;
    cost_eq1;
    cost_eq3;
    lemma2_gap;
    leaf_loads;
    level_violation;
    max_violation = !max_violation;
    theorem_bound;
    within_theorem_bound = !max_violation <= theorem_bound +. 1e-9;
  }

let pp ppf r =
  Format.fprintf ppf "certificate (n = %d)@." r.n;
  Format.fprintf ppf "  assignment complete : %b@." r.assignment_complete;
  Format.fprintf ppf "  cost (Eq. 1)        : %.6g@." r.cost_eq1;
  Format.fprintf ppf "  cost (Eq. 3)        : %.6g  (Lemma 2 gap %.1e)@." r.cost_eq3
    r.lemma2_gap;
  Format.fprintf ppf "  per-level violation :";
  Array.iteri (fun j v -> Format.fprintf ppf " L%d=%.3f" j v) r.level_violation;
  Format.fprintf ppf "@.";
  Format.fprintf ppf "  max violation       : %.3f (Theorem 1 bound %.2f — %s)@."
    r.max_violation r.theorem_bound
    (if r.within_theorem_bound then "WITHIN" else "EXCEEDED")
