module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Tree = Hgp_tree.Tree
module Decomposition = Hgp_racke.Decomposition
module Ensemble = Hgp_racke.Ensemble
module Ensemble_cache = Hgp_racke.Ensemble_cache
module Fingerprint = Hgp_util.Fingerprint
module Lru = Hgp_util.Lru
module Domain_pool = Hgp_util.Domain_pool
module Workspace = Hgp_util.Workspace
module Obs = Hgp_obs.Obs
module Hgp_error = Hgp_resilience.Hgp_error
module Deadline = Hgp_resilience.Deadline
module Faults = Hgp_resilience.Faults

let log_src = Logs.Src.create "hgp.pipeline" ~doc:"HGP staged solve pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  ensemble_size : int;
  eps : float;
  resolution : int option;
  rounding : Demand.mode;
  bucketing : float option;
  beam_width : int option;
  strategy : Ensemble.strategy;
  parallel : bool;
  seed : int;
}

let default_max_resolution = 24

let default_options =
  {
    ensemble_size = 4;
    eps = 0.25;
    resolution = None;
    rounding = Demand.Floor;
    bucketing = None;
    beam_width = Some 512;
    strategy = Ensemble.Mixed;
    parallel = false;
    seed = 42;
  }

type solution = {
  assignment : int array;
  cost : float;
  max_violation : float;
  relaxed_tree_cost : float;
  tree_index : int;
  dp_states : int;
  cached_dp_states : int;
}

type supervision = {
  deadline : Deadline.t;
  record_tree : Hgp_error.t -> unit;
  record : Hgp_error.t -> unit;
}

(* ---- stage timing (always on, independent of Obs) ---- *)

let stage_names = [| "prepare"; "embed"; "relax"; "pack" |]
let stage_ns = Array.make (Array.length stage_names) 0L
let stage_lock = Mutex.create ()

let stage_timings () =
  Mutex.lock stage_lock;
  let out =
    Array.to_list
      (Array.mapi (fun i name -> (name, Int64.to_float stage_ns.(i) /. 1e6)) stage_names)
  in
  Mutex.unlock stage_lock;
  out

let reset_timings () =
  Mutex.lock stage_lock;
  Array.fill stage_ns 0 (Array.length stage_ns) 0L;
  Mutex.unlock stage_lock

(* Wraps a stage in its [pipeline.stage.*] span and charges its wall time to
   the always-on accumulator (so [--cache-stats] has timings even with
   telemetry off). *)
let stage idx f =
  let t0 = Obs.now_ns () in
  let charge () =
    let dur = Int64.sub (Obs.now_ns ()) t0 in
    Mutex.lock stage_lock;
    stage_ns.(idx) <- Int64.add stage_ns.(idx) dur;
    Mutex.unlock stage_lock
  in
  match Obs.span ("pipeline.stage." ^ stage_names.(idx)) f with
  | v ->
    charge ();
    v
  | exception e ->
    charge ();
    raise e

(* ---- Prepared ---- *)

type prepared = {
  inst : Instance.t;
  options : options;
  quantized : Demand.t;
  resolution : int;
  clamped : bool;
  p_key : Fingerprint.t;
}

(* Default resolution: the paper's n/eps capped for tractability, but never
   so coarse that the mean demand rounds to zero units (which would make the
   quantized instance degenerate).  [clamped] reports when the 4096 cap — and
   not eps or the mean-demand floor — decided the value. *)
let resolution_spec ~n ~total_demand ~leaf_capacity (options : options) =
  match options.resolution with
  | Some r -> (r, false)
  | None ->
    let paper = Demand.resolution_for_eps ~n ~eps:options.eps in
    let mean_d = Float.max 1e-12 (total_demand /. float_of_int n) in
    (* Target >= 4 units for the mean job so floor rounding stays within
       ~25% per job. *)
    let needed = int_of_float (ceil (4. *. leaf_capacity /. mean_d)) in
    let uncapped = min paper (max default_max_resolution needed) in
    let r = min 4096 uncapped in
    (r, r < uncapped)

let resolution_spec_of (inst : Instance.t) options =
  resolution_spec ~n:(Instance.n inst) ~total_demand:(Instance.total_demand inst)
    ~leaf_capacity:(Hierarchy.leaf_capacity inst.hierarchy)
    options

let resolution_of inst options = fst (resolution_spec_of inst options)
let resolution_clamped inst options = snd (resolution_spec_of inst options)

let resolution_for ~n ~total_demand ~leaf_capacity options =
  fst (resolution_spec ~n ~total_demand ~leaf_capacity options)

(* Everything [prepare] consumes: graph + demands + hierarchy shape, plus the
   option fields that shape quantization.  [eps] is digested even though only
   the derived resolution feeds the DP, so changing eps is always a cache
   miss — the conservative reading of the key contract. *)
let prepared_key (inst : Instance.t) options ~resolution =
  Graph.fingerprint inst.graph
  |> Fun.flip Fingerprint.add_float_array inst.demands
  |> Fun.flip Fingerprint.combine (Hierarchy.fingerprint inst.hierarchy)
  |> Fun.flip Fingerprint.add_float options.eps
  |> Fun.flip Fingerprint.add_int resolution
  |> Fun.flip Fingerprint.add_bool (options.rounding = Demand.Ceil)

let prepare (inst : Instance.t) options =
  stage 0 @@ fun () ->
  let resolution, clamped = resolution_spec_of inst options in
  if clamped then Obs.count "solver.resolution_clamped" 1;
  let quantized =
    Obs.span "solver.quantize" (fun () ->
        Demand.quantize ~demands:inst.demands
          ~leaf_capacity:(Hierarchy.leaf_capacity inst.hierarchy)
          ~resolution ~mode:options.rounding)
  in
  Obs.gauge "solver.resolution" (float_of_int resolution);
  { inst; options; quantized; resolution; clamped; p_key = prepared_key inst options ~resolution }

(* ---- Embedded ---- *)

type embedded = {
  prepared : prepared;
  ensemble : Ensemble.t;
  e_key : Fingerprint.t;
  complete : bool;  (** no build failures, no deadline expiry — cache-legal *)
}

let embed ?supervision (p : prepared) =
  stage 1 @@ fun () ->
  let { inst; options; _ } = p in
  let e_key =
    Ensemble_cache.key inst.Instance.graph ~strategy:options.strategy ~seed:options.seed
      ~size:options.ensemble_size
  in
  let ensemble, failures =
    Obs.span "solver.ensemble" (fun () ->
        match supervision with
        | None ->
          let e, _from_cache =
            Ensemble_cache.sample ~strategy:options.strategy ~seed:options.seed
              inst.Instance.graph ~size:options.ensemble_size
          in
          (e, [])
        | Some sv ->
          let (e, failures), _from_cache =
            Ensemble_cache.sample_isolated ~strategy:options.strategy ~deadline:sv.deadline
              ~seed:options.seed inst.Instance.graph ~size:options.ensemble_size
          in
          (e, failures))
  in
  (match supervision with
  | Some sv ->
    List.iter
      (fun (i, exn) ->
        sv.record_tree
          (Hgp_error.Tree_failure
             { tree_index = i; stage = "decomposition"; msg = Hgp_error.message_of_exn exn }))
      failures
  | None -> ());
  let complete = failures = [] && Ensemble.size ensemble = options.ensemble_size in
  { prepared = p; ensemble; e_key; complete }

(* ---- Relaxed ---- *)

type tree_relaxed = { demand_units : int array; dp : Tree_dp.result }

(* DP on one decomposition tree; [None] when the quantized instance does not
   fit that tree. *)
let relax_tree ?(deadline = Deadline.none) ?workspace (p : prepared) d =
  let t = Decomposition.tree d in
  let n_nodes = Tree.n_nodes t in
  let demand_units = Array.make n_nodes 0 in
  Array.iter
    (fun l ->
      demand_units.(l) <- p.quantized.Demand.units.(Decomposition.vertex_of_leaf d l))
    (Tree.leaves t);
  let cfg =
    Tree_dp.config_of_hierarchy p.inst.Instance.hierarchy ~resolution:p.resolution
      ?bucketing:p.options.bucketing ?beam_width:p.options.beam_width ()
  in
  match
    Obs.span "solver.tree_dp" (fun () ->
        Tree_dp.solve ~deadline ?workspace t ~demand_units cfg)
  with
  | None -> None
  | Some r -> Some { demand_units; dp = r }

(* Per-tree DP over the whole ensemble.  Fail-fast without supervision; with
   it every slot is fenced and an [Error] marks a lost tree.  The parallel
   path reuses the shared domain pool instead of spawning per solve; a slot
   whose error escaped the fence means the worker itself died mid-task and is
   surfaced as [Domain_crash], exactly like a failed [Domain.join] before. *)
let relax ?supervision (e : embedded) =
  stage 2 @@ fun () ->
  let p = e.prepared in
  let n_trees = Ensemble.size e.ensemble in
  let solve_one ?workspace i =
    match supervision with
    | None -> Ok (relax_tree ?workspace p (Ensemble.get e.ensemble i))
    | Some sv -> (
      try
        Deadline.check sv.deadline ~stage:"ensemble";
        Ok (relax_tree ~deadline:sv.deadline ?workspace p (Ensemble.get e.ensemble i))
      with exn -> Error exn)
  in
  if p.options.parallel && n_trees > 1 then begin
    let tasks =
      Array.init n_trees (fun i () ->
          (* Pool workers have an empty span stack between tasks, so the
             per-tree span is a root: per-domain timings stay visible
             instead of folding into solver.total.  Each task borrows its
             worker domain's resident workspace: scratch is reused across
             the tasks a domain executes and never crosses domains. *)
          Obs.span ("solver.domain." ^ string_of_int i) (fun () ->
              Workspace.with_ws (fun lease -> solve_one ~workspace:lease i)))
    in
    let slots = Domain_pool.run_batch (Domain_pool.shared ()) tasks in
    Array.mapi
      (fun i slot ->
        match slot with
        | Ok outcome -> outcome
        | Error exn -> (
          match supervision with
          | Some _ ->
            Error
              (Hgp_error.Error
                 (Hgp_error.Domain_crash
                    { tree_index = i; msg = Hgp_error.message_of_exn exn }))
          | None -> raise exn))
      slots
  end
  else
    (* Sequential ensemble: one lease threads the same scratch through
       every tree's DP. *)
    Workspace.with_ws (fun lease ->
        Array.init n_trees (fun i -> solve_one ~workspace:lease i))

(* ---- Packed ---- *)

(* Theorem-5 conversion of one relaxed tree back to a hierarchy assignment
   on the original vertices. *)
let pack_tree ?(deadline = Deadline.none) (p : prepared) d (tr : tree_relaxed) =
  let t = Decomposition.tree d in
  Obs.span "solver.feasible" @@ fun () ->
  let report =
    Feasible.pack ~deadline t ~kappa:tr.dp.Tree_dp.kappa ~demand_units:tr.demand_units
      ~hierarchy:p.inst.Instance.hierarchy ~resolution:p.resolution
  in
  let assignment = Array.make (Instance.n p.inst) (-1) in
  Array.iter
    (fun l ->
      assignment.(Decomposition.vertex_of_leaf d l) <- report.Feasible.assignment.(l))
    (Tree.leaves t);
  assignment

let finish inst assignment relaxed_tree_cost tree_index dp_states =
  {
    assignment;
    cost = Cost.assignment_cost inst assignment;
    max_violation = Cost.max_violation inst assignment;
    relaxed_tree_cost;
    tree_index;
    dp_states;
    cached_dp_states = 0;
  }

(* Pack every surviving tree, then keep the assignment with the smallest
   {e true} graph cost (Equation 1) — a strict improvement over the paper's
   pick-by-tree-cost that preserves the guarantee.  Returns the solution and
   whether any tree was lost in this stage or earlier ones. *)
let pack_and_select ?supervision ~deadline_seen ~lost (e : embedded) outcomes =
  stage 3 @@ fun () ->
  let p = e.prepared in
  let record_deadline sv err =
    (* One deadline report per run, not one per surviving tree. *)
    if not !deadline_seen then begin
      deadline_seen := true;
      sv.record err
    end
  in
  let packed =
    Array.mapi
      (fun i outcome ->
        match outcome with
        | Error (Hgp_error.Error (Hgp_error.Deadline_exceeded _ as err)) ->
          (match supervision with Some sv -> record_deadline sv err | None -> ());
          None
        | Error exn ->
          lost := true;
          (match supervision with
          | Some sv ->
            sv.record_tree
              (Hgp_error.Tree_failure
                 { tree_index = i; stage = "dp"; msg = Hgp_error.message_of_exn exn })
          | None -> ());
          None
        | Ok None ->
          Obs.count "solver.trees_infeasible" 1;
          Log.debug (fun m -> m "tree %d: infeasible after quantization" i);
          None
        | Ok (Some tr) -> (
          let d = Ensemble.get e.ensemble i in
          match supervision with
          | None -> Some (pack_tree p d tr, tr.dp.Tree_dp.cost, tr.dp.Tree_dp.states_explored)
          | Some sv -> (
            try
              Some
                ( pack_tree ~deadline:sv.deadline p d tr,
                  tr.dp.Tree_dp.cost,
                  tr.dp.Tree_dp.states_explored )
            with
            | Hgp_error.Error (Hgp_error.Deadline_exceeded _ as err) ->
              record_deadline sv err;
              None
            | exn ->
              lost := true;
              sv.record_tree
                (Hgp_error.Tree_failure
                   { tree_index = i; stage = "pack"; msg = Hgp_error.message_of_exn exn });
              None)))
      outcomes
  in
  Obs.span "solver.select" @@ fun () ->
  let best = ref None in
  let total_states = ref 0 in
  Array.iteri
    (fun i result ->
      match result with
      | None -> ()
      | Some (assignment, relaxed, states) ->
        total_states := !total_states + states;
        let cost = Cost.assignment_cost p.inst assignment in
        Log.debug (fun m ->
            m "tree %d: relaxed=%.6g cost=%.6g states=%d" i relaxed cost states);
        (match !best with
        | Some (_, c, _, _) when c <= cost -> ()
        | _ -> best := Some (assignment, cost, relaxed, i)))
    packed;
  match !best with
  | Some (assignment, _, relaxed, i) ->
    Obs.count "solver.dp_states" !total_states;
    if supervision = None then Obs.count "solver.solves" 1;
    Log.info (fun m ->
        m "solved n=%d k=%d resolution=%d: winning tree %d, %d DP states"
          (Instance.n p.inst)
          (Hierarchy.num_leaves p.inst.Instance.hierarchy)
          p.resolution i !total_states);
    Some (finish p.inst assignment relaxed i !total_states)
  | None -> None

(* ---- packed-solution cache ---- *)

(* Packed solutions are small (one int per vertex); a larger capacity than
   the ensemble cache covers whole eps/strategy sweeps. *)
let packed_capacity = 64

let packed_cache : (Fingerprint.t, solution) Lru.t = Lru.create ~capacity:packed_capacity
let packed_lock = Mutex.create ()
let caching = Atomic.make true

let set_caching b =
  Atomic.set caching b;
  Ensemble_cache.set_enabled b

(* Caches owned by layers above this library (the multilevel front-end's
   hierarchy cache) register themselves here so [--cache-stats] covers them
   without core depending on those layers.  Registration happens at module
   init of the owning library, so the set is fixed before any solve. *)
type external_cache = {
  ec_name : string;
  ec_stats : unit -> Lru.stats;
  ec_clear : unit -> unit;
  ec_reset_stats : unit -> unit;
}

let external_caches : external_cache list ref = ref []
let external_lock = Mutex.create ()

let register_external_cache ~name ~stats ~clear ~reset_stats =
  Mutex.lock external_lock;
  external_caches :=
    { ec_name = name; ec_stats = stats; ec_clear = clear; ec_reset_stats = reset_stats }
    :: List.filter (fun ec -> ec.ec_name <> name) !external_caches;
  Mutex.unlock external_lock

let external_snapshot () =
  Mutex.lock external_lock;
  let ecs = !external_caches in
  Mutex.unlock external_lock;
  List.rev ecs

let clear_caches () =
  Mutex.lock packed_lock;
  Lru.clear packed_cache;
  Mutex.unlock packed_lock;
  Ensemble_cache.clear ();
  List.iter (fun ec -> ec.ec_clear ()) (external_snapshot ())

let cache_stats () =
  Mutex.lock packed_lock;
  let p = Lru.stats packed_cache in
  Mutex.unlock packed_lock;
  [ ("ensemble", Ensemble_cache.stats ()); ("packed", p) ]
  @ List.map (fun ec -> (ec.ec_name, ec.ec_stats ())) (external_snapshot ())

let reset_cache_stats () =
  Mutex.lock packed_lock;
  Lru.reset_stats packed_cache;
  Mutex.unlock packed_lock;
  Ensemble_cache.reset_stats ();
  List.iter (fun ec -> ec.ec_reset_stats ()) (external_snapshot ())

let render_cache_stats () =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, (st : Lru.stats)) ->
      Buffer.add_string b
        (Printf.sprintf "cache %-8s hits=%d misses=%d evictions=%d entries=%d\n" name
           st.Lru.hits st.Lru.misses st.Lru.evictions st.Lru.entries))
    (cache_stats ());
  List.iter
    (fun (stage, ms) ->
      Buffer.add_string b (Printf.sprintf "stage %-8s %10.3f ms\n" stage ms))
    (stage_timings ());
  Buffer.contents b

(* [parallel] is deliberately not digested: the sequential and parallel
   paths produce bit-identical solutions (same trees, same per-tree DP, same
   selection order), so they legally share cache entries. *)
let packed_key (p : prepared) ~e_key =
  Fingerprint.combine p.p_key e_key
  |> Fun.flip (Fingerprint.add_option Fingerprint.add_float) p.options.bucketing
  |> Fun.flip (Fingerprint.add_option Fingerprint.add_int) p.options.beam_width

let cache_active () = Atomic.get caching && Faults.armed () = None

let packed_find key =
  if not (cache_active ()) then None
  else begin
    Mutex.lock packed_lock;
    let r = Lru.find packed_cache key in
    Mutex.unlock packed_lock;
    (match r with
    | Some _ ->
      Obs.count "cache.hit" 1;
      Obs.count "cache.packed.hit" 1
    | None ->
      Obs.count "cache.miss" 1;
      Obs.count "cache.packed.miss" 1);
    (* Both ends deep-copy the assignment: cached arrays must never alias
       caller-visible ones (Local_search.repair mutates in place). *)
    Option.map
      (fun sol ->
        {
          sol with
          assignment = Array.copy sol.assignment;
          dp_states = 0;
          cached_dp_states = sol.dp_states + sol.cached_dp_states;
        })
      r
  end

let packed_add key sol =
  if cache_active () then begin
    Mutex.lock packed_lock;
    let before = (Lru.stats packed_cache).Lru.evictions in
    Lru.add packed_cache key { sol with assignment = Array.copy sol.assignment };
    let evicted = (Lru.stats packed_cache).Lru.evictions - before in
    Mutex.unlock packed_lock;
    if evicted > 0 then begin
      Obs.count "cache.evict" evicted;
      Obs.count "cache.packed.evict" evicted
    end
  end

(* ---- the full pipeline ---- *)

let run ?supervision inst options =
  let p = prepare inst options in
  let key =
    packed_key p
      ~e_key:
        (Ensemble_cache.key inst.Instance.graph ~strategy:options.strategy
           ~seed:options.seed ~size:options.ensemble_size)
  in
  match packed_find key with
  | Some sol ->
    (* Work counters reflect work actually performed by this solve: zero DP
       states, one solve.  The inherited work is visible in
       [sol.cached_dp_states] and the [solver.dp_states_cached] counter. *)
    Obs.count "solver.dp_states" 0;
    Obs.count "solver.dp_states_cached" sol.cached_dp_states;
    if supervision = None then Obs.count "solver.solves" 1;
    Log.debug (fun m -> m "packed cache hit (%s)" (Fingerprint.to_hex key));
    Some sol
  | None ->
    let deadline_seen = ref false in
    let lost = ref false in
    let e = embed ?supervision p in
    if not e.complete then lost := true;
    let outcomes = relax ?supervision e in
    let result = pack_and_select ?supervision ~deadline_seen ~lost e outcomes in
    (match result with
    | Some sol when (not !lost) && not !deadline_seen ->
      (* Only healthy, complete runs are cacheable: a degraded solution is
         correct but not bit-identical to what a fresh solve would return. *)
      packed_add key sol
    | _ -> ());
    result

let infeasible ~resolution ~retried =
  Hgp_error.error
    (Hgp_error.Infeasible
       {
         resolution;
         retried;
         msg = "quantized instance admits no packing on any decomposition tree";
       })

let solve_on_decomposition inst d ~options =
  let p = prepare inst options in
  match relax_tree p d with
  | None -> infeasible ~resolution:p.resolution ~retried:false
  | Some tr ->
    let assignment = pack_tree p d tr in
    finish inst assignment tr.dp.Tree_dp.cost 0 tr.dp.Tree_dp.states_explored

(* ---- incremental re-solve: per-subtree DP snapshots + sessions ----

   The snapshot cache is keyed by decomposition-tree SHAPE (parents array +
   slot-determining option fields): the per-node Merkle keys inside the
   snapshot do the data diffing, so a re-solve after a delta reuses every
   subtree whose inputs are unchanged and recomputes only the dirty cone
   (docs/INCREMENTAL.md). *)

let subtree_cache : (Fingerprint.t, Tree_dp.snapshot) Lru.t =
  Lru.create ~capacity:16

let subtree_lock = Mutex.create ()

let () =
  register_external_cache ~name:"subtree_dp"
    ~stats:(fun () ->
      Mutex.lock subtree_lock;
      let s = Lru.stats subtree_cache in
      Mutex.unlock subtree_lock;
      s)
    ~clear:(fun () ->
      Mutex.lock subtree_lock;
      Lru.clear subtree_cache;
      Mutex.unlock subtree_lock)
    ~reset_stats:(fun () ->
      Mutex.lock subtree_lock;
      Lru.reset_stats subtree_cache;
      Mutex.unlock subtree_lock)

(* Only shape and slot identity: the snapshot's Merkle keys already digest
   demands, edge weights, and the DP config, so the cache key needs just
   enough to make node ids align (parents) and to keep distinct solve
   configurations in distinct slots. *)
let shape_key (p : prepared) d ~tree_index =
  let t = Decomposition.tree d in
  let parents = Array.init (Tree.n_nodes t) (Tree.parent t) in
  Fingerprint.add_string Fingerprint.seed "pipeline.subtree_dp"
  |> Fun.flip Fingerprint.add_int_array parents
  |> Fun.flip Fingerprint.combine (Hierarchy.fingerprint p.inst.Instance.hierarchy)
  |> Fun.flip Fingerprint.add_int p.resolution
  |> Fun.flip Fingerprint.add_bool (p.options.rounding = Demand.Ceil)
  |> Fun.flip Fingerprint.add_int tree_index

(* {!relax_tree} with snapshot reuse: consult the subtree cache, run the
   Merkle-diffing DP, publish the stitched snapshot back.  Bit-identical
   results by {!Tree_dp.solve_snap}'s contract. *)
let relax_tree_incr ?(deadline = Deadline.none) ?workspace (p : prepared) d
    ~tree_index =
  let t = Decomposition.tree d in
  let n_nodes = Tree.n_nodes t in
  let demand_units = Array.make n_nodes 0 in
  Array.iter
    (fun l ->
      demand_units.(l) <- p.quantized.Demand.units.(Decomposition.vertex_of_leaf d l))
    (Tree.leaves t);
  let cfg =
    Tree_dp.config_of_hierarchy p.inst.Instance.hierarchy ~resolution:p.resolution
      ?bucketing:p.options.bucketing ?beam_width:p.options.beam_width ()
  in
  let key = shape_key p d ~tree_index in
  let prev =
    if not (cache_active ()) then None
    else begin
      Mutex.lock subtree_lock;
      let r = Lru.find subtree_cache key in
      Mutex.unlock subtree_lock;
      r
    end
  in
  match
    Obs.span "solver.tree_dp" (fun () ->
        Tree_dp.solve_snap ~deadline ?workspace ?prev t ~demand_units cfg)
  with
  | None -> None
  | Some (r, snap, st) ->
    if cache_active () then begin
      Mutex.lock subtree_lock;
      Lru.add subtree_cache key snap;
      Mutex.unlock subtree_lock
    end;
    Some ({ demand_units; dp = r }, st)

(* [run] with the relax stage routed through the snapshot cache.  The
   packed-solution cache is NOT consulted (an incremental solve must report
   its true per-subtree work), but healthy results are still published to
   it — they are bit-identical to what a cold run would cache.  Returns the
   solution plus [(resolved_subtrees, reused_subtrees)] summed over the
   ensemble.  Sequential by design: one workspace lease threads every
   tree's DP, keeping arena scratch warm across re-solves. *)
let run_incremental ?supervision inst options =
  let p = prepare inst options in
  let key =
    packed_key p
      ~e_key:
        (Ensemble_cache.key inst.Instance.graph ~strategy:options.strategy
           ~seed:options.seed ~size:options.ensemble_size)
  in
  let deadline_seen = ref false in
  let lost = ref false in
  let e = embed ?supervision p in
  if not e.complete then lost := true;
  let resolved = ref 0 and reused = ref 0 in
  let outcomes =
    stage 2 @@ fun () ->
    Workspace.with_ws (fun lease ->
        Array.init (Ensemble.size e.ensemble) (fun i ->
            let d = Ensemble.get e.ensemble i in
            let solve_one ?deadline () =
              match relax_tree_incr ?deadline ~workspace:lease p d ~tree_index:i with
              | None -> None
              | Some (tr, st) ->
                resolved := !resolved + st.Tree_dp.resolved_nodes;
                reused := !reused + st.Tree_dp.reused_nodes;
                Some tr
            in
            match supervision with
            | None -> Ok (solve_one ())
            | Some sv -> (
              try
                Deadline.check sv.deadline ~stage:"ensemble";
                Ok (solve_one ~deadline:sv.deadline ())
              with exn -> Error exn)))
  in
  let result = pack_and_select ?supervision ~deadline_seen ~lost e outcomes in
  (match result with
  | Some sol when (not !lost) && not !deadline_seen -> packed_add key sol
  | _ -> ());
  match result with
  | None -> None
  | Some sol -> Some (sol, (!resolved, !reused))

(* ---- sessions: named solve state for delta streams ---- *)

type session = {
  mutable s_inst : Instance.t;
  s_options : options;
  mutable s_assignment : int array;
  mutable s_cost : float;
}

type update_report = {
  u_solution : solution;
  churn : float;
  resolved_subtrees : int;
  reused_subtrees : int;
  certified : bool;
  cert_violation : float;
  cert_bound : float;
}

let start_session inst options =
  match run_incremental inst options with
  | None -> None
  | Some (sol, _) ->
    Some
      ( {
          s_inst = inst;
          s_options = options;
          s_assignment = Array.copy sol.assignment;
          s_cost = sol.cost;
        },
        sol )

let session_instance s = s.s_inst
let session_options s = s.s_options
let session_assignment s = Array.copy s.s_assignment
let session_cost s = s.s_cost

(* Churn = exact fraction of the NEW instance's vertices whose leaf differs
   from the session's previous assignment; vertices that did not exist
   before count as changed, removed vertices are out of the denominator. *)
let churn_of ~mapping ~old_assignment ~assignment ~n_new =
  let changed = ref 0 in
  let covered = Array.make (max 1 n_new) false in
  Array.iteri
    (fun old_v new_v ->
      if new_v >= 0 then begin
        covered.(new_v) <- true;
        if old_assignment.(old_v) <> assignment.(new_v) then incr changed
      end)
    mapping;
  for v = 0 to n_new - 1 do
    if not covered.(v) then incr changed
  done;
  float_of_int !changed /. float_of_int (max 1 n_new)

let resolve_delta ?supervision (s : session) delta =
  let inst', mapping = Delta.apply_mapped s.s_inst delta in
  match run_incremental ?supervision inst' s.s_options with
  | None -> None
  | Some (sol, (resolved_subtrees, reused_subtrees)) ->
    let churn =
      churn_of ~mapping ~old_assignment:s.s_assignment ~assignment:sol.assignment
        ~n_new:(Instance.n inst')
    in
    let cert = Verify.certify inst' sol.assignment ~eps:s.s_options.eps in
    s.s_inst <- inst';
    s.s_assignment <- Array.copy sol.assignment;
    s.s_cost <- sol.cost;
    Obs.count "incremental.updates" 1;
    Obs.count "incremental.dirty_subtrees" resolved_subtrees;
    Obs.count "incremental.reused_subtrees" reused_subtrees;
    Obs.gauge "incremental.churn" churn;
    Log.info (fun m ->
        m "incremental update: resolved=%d reused=%d churn=%.4f certified=%b"
          resolved_subtrees reused_subtrees churn
          cert.Verify.within_theorem_bound);
    Some
      {
        u_solution = sol;
        churn;
        resolved_subtrees;
        reused_subtrees;
        certified = cert.Verify.within_theorem_bound;
        cert_violation = cert.Verify.max_violation;
        cert_bound = cert.Verify.theorem_bound;
      }
