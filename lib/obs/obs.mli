(** Lightweight telemetry for the Theorem-1 pipeline.

    A process-global registry of hierarchical spans (monotonic wall-clock
    timers), named counters and gauges, with pluggable sinks.  Collection is
    {e off} by default: every entry point first reads one atomic flag, so the
    instrumented hot paths pay a single branch when telemetry is disabled.

    Spans nest: {!span} pushes a frame on a domain-local stack, so a span
    started inside another span records the enclosing span's name as its
    parent, and the parent accumulates the child's wall time to compute its
    own {e self} time (total minus direct children).  Spans executed on a
    freshly spawned domain start a new stack and therefore have no parent —
    per-domain timings of parallel ensemble solves show up as root spans.

    Aggregation is by span name: repeated executions of the same span merge
    into one {!span_stat} (count, total, self, max).  The registry is
    protected by a mutex and safe to use from multiple domains. *)

(** Key/value annotations attached to a span (last completion wins). *)
type attrs = (string * string) list

(** {1 Collection switch} *)

val enabled : unit -> bool

(** [enable ()] turns collection on process-wide. *)
val enable : unit -> unit

(** [disable ()] turns collection off; already-recorded data is kept. *)
val disable : unit -> unit

(** [reset ()] drops all recorded spans, counters and gauges. *)
val reset : unit -> unit

(** {1 Recording} *)

(** [now_ns ()] is the current monotonic clock reading in nanoseconds.
    Usable even when collection is disabled. *)
val now_ns : unit -> int64

(** [span name ?attrs f] runs [f ()], timing it when collection is enabled.
    The timing is recorded even if [f] raises.  When disabled this is
    [f ()] plus one atomic load. *)
val span : string -> ?attrs:attrs -> (unit -> 'a) -> 'a

(** [count name n] adds [n] to the named counter (created at 0). *)
val count : string -> int -> unit

(** [counter_value name] reads the named counter's current value ([0] when
    it has never been counted).  Works regardless of the collection switch —
    used by the resilience tests to assert which fault sites fired. *)
val counter_value : string -> int

(** [gauge name v] sets the named gauge to [v]. *)
val gauge : string -> float -> unit

(** [gauge_max name v] raises the named gauge to [v] if [v] is larger. *)
val gauge_max : string -> float -> unit

(** {1 Snapshots} *)

type span_stat = {
  name : string;
  parent : string option;  (** enclosing span at first completion *)
  count : int;  (** completions merged into this stat *)
  total_ns : int64;  (** summed wall time *)
  self_ns : int64;  (** total minus direct children's wall time *)
  max_ns : int64;  (** slowest single completion *)
  attrs : attrs;
}

type snapshot = {
  spans : span_stat list;  (** sorted by name *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
}

(** [snapshot ()] copies the current registry contents. *)
val snapshot : unit -> snapshot

(** [ms_of_ns ns] converts to milliseconds. *)
val ms_of_ns : int64 -> float

(** {1 Sinks}

    See [docs/OBSERVABILITY.md] for the JSON-lines schema. *)

type sink =
  | Noop  (** discard — the default posture *)
  | Table  (** human-readable aligned tables (via {!Hgp_util.Tablefmt}) *)
  | Jsonl  (** one JSON object per line, machine-readable *)

(** [render sink snap] renders a snapshot to a string ([""] for {!Noop}). *)
val render : sink -> snapshot -> string

(** [emit sink oc] renders the current registry contents to [oc]. *)
val emit : sink -> out_channel -> unit

(** [sink_of_string s] parses ["json"] / ["table"] / ["noop"]. *)
val sink_of_string : string -> (sink, string) result
