type attrs = (string * string) list

(* ---- registry ---- *)

type span_agg = {
  mutable sa_parent : string option;
  mutable sa_count : int;
  mutable sa_total : int64;
  mutable sa_self : int64;
  mutable sa_max : int64;
  mutable sa_attrs : attrs;
}

let enabled_flag = Atomic.make false
let lock = Mutex.create ()
let span_tbl : (string, span_agg) Hashtbl.t = Hashtbl.create 64
let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64
let gauge_tbl : (string, float ref) Hashtbl.t = Hashtbl.create 64

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () =
  with_lock (fun () ->
      Hashtbl.reset span_tbl;
      Hashtbl.reset counter_tbl;
      Hashtbl.reset gauge_tbl)

let now_ns () = Monotonic_clock.now ()

(* ---- spans ---- *)

(* Per-domain stack of open spans; a spawned domain starts empty, so its
   spans are roots (desired for per-domain ensemble timings). *)
type frame = { fr_name : string; mutable fr_child_ns : int64 }

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let record_span name ~parent ~dur ~self ~attrs =
  with_lock (fun () ->
      match Hashtbl.find_opt span_tbl name with
      | Some a ->
        a.sa_count <- a.sa_count + 1;
        a.sa_total <- Int64.add a.sa_total dur;
        a.sa_self <- Int64.add a.sa_self self;
        if dur > a.sa_max then a.sa_max <- dur;
        if attrs <> [] then a.sa_attrs <- attrs
      | None ->
        Hashtbl.replace span_tbl name
          {
            sa_parent = parent;
            sa_count = 1;
            sa_total = dur;
            sa_self = self;
            sa_max = dur;
            sa_attrs = attrs;
          })

let span name ?(attrs = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | fr :: _ -> Some fr.fr_name in
    let frame = { fr_name = name; fr_child_ns = 0L } in
    stack := frame :: !stack;
    let t0 = now_ns () in
    let finish () =
      let dur = Int64.sub (now_ns ()) t0 in
      (match !stack with
      | fr :: rest when fr == frame ->
        stack := rest;
        (match rest with
        | up :: _ -> up.fr_child_ns <- Int64.add up.fr_child_ns dur
        | [] -> ())
      | _ ->
        (* Unbalanced (an inner span escaped via an exception path that
           bypassed us): drop frames down to ours to stay consistent. *)
        let rec pop () =
          match !stack with
          | [] -> ()
          | fr :: rest ->
            stack := rest;
            if fr != frame then pop ()
        in
        pop ());
      let self = Int64.sub dur frame.fr_child_ns in
      let self = if self < 0L then 0L else self in
      record_span name ~parent ~dur ~self ~attrs
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ---- counters / gauges ---- *)

let count name n =
  if Atomic.get enabled_flag then
    with_lock (fun () ->
        match Hashtbl.find_opt counter_tbl name with
        | Some r -> r := !r + n
        | None -> Hashtbl.replace counter_tbl name (ref n))

let counter_value name =
  with_lock (fun () ->
      match Hashtbl.find_opt counter_tbl name with Some r -> !r | None -> 0)

let gauge name v =
  if Atomic.get enabled_flag then
    with_lock (fun () ->
        match Hashtbl.find_opt gauge_tbl name with
        | Some r -> r := v
        | None -> Hashtbl.replace gauge_tbl name (ref v))

let gauge_max name v =
  if Atomic.get enabled_flag then
    with_lock (fun () ->
        match Hashtbl.find_opt gauge_tbl name with
        | Some r -> if v > !r then r := v
        | None -> Hashtbl.replace gauge_tbl name (ref v))

(* ---- snapshots ---- *)

type span_stat = {
  name : string;
  parent : string option;
  count : int;
  total_ns : int64;
  self_ns : int64;
  max_ns : int64;
  attrs : attrs;
}

type snapshot = {
  spans : span_stat list;
  counters : (string * int) list;
  gauges : (string * float) list;
}

let snapshot () =
  with_lock (fun () ->
      let spans =
        Hashtbl.fold
          (fun name a acc ->
            {
              name;
              parent = a.sa_parent;
              count = a.sa_count;
              total_ns = a.sa_total;
              self_ns = a.sa_self;
              max_ns = a.sa_max;
              attrs = a.sa_attrs;
            }
            :: acc)
          span_tbl []
        |> List.sort (fun a b -> compare a.name b.name)
      in
      let counters =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counter_tbl []
        |> List.sort compare
      in
      let gauges =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) gauge_tbl []
        |> List.sort compare
      in
      { spans; counters; gauges })

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* ---- sinks ---- *)

type sink = Noop | Table | Jsonl

let sink_of_string = function
  | "json" | "jsonl" -> Ok Jsonl
  | "table" -> Ok Table
  | "noop" | "none" -> Ok Noop
  | s -> Error (Printf.sprintf "unknown metrics sink %S (expected json or table)" s)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.6f keeps JSON floats plain (no OCaml "1e+07" exponent spelling that
   some line-oriented consumers choke on) at nanosecond-ish resolution. *)
let json_ms ns = Printf.sprintf "%.6f" (ms_of_ns ns)

let jsonl_of_snapshot snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"type\":\"meta\",\"schema\":\"hgp-obs-v1\"}\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"type\":\"span\",\"name\":\"%s\",\"parent\":%s,\"count\":%d,\"total_ms\":%s,\"self_ms\":%s,\"max_ms\":%s"
           (json_escape s.name)
           (match s.parent with
           | None -> "null"
           | Some p -> Printf.sprintf "\"%s\"" (json_escape p))
           s.count (json_ms s.total_ns) (json_ms s.self_ns) (json_ms s.max_ns));
      if s.attrs <> [] then begin
        Buffer.add_string b ",\"attrs\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.attrs;
        Buffer.add_char b '}'
      end;
      Buffer.add_string b "}\n")
    snap.spans;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}\n"
           (json_escape name) v))
    snap.counters;
  List.iter
    (fun (name, v) ->
      let value = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
      Buffer.add_string b
        (Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}\n"
           (json_escape name) value))
    snap.gauges;
  Buffer.contents b

let table_of_snapshot snap =
  let b = Buffer.create 1024 in
  if snap.spans <> [] then begin
    let rows =
      List.map
        (fun s ->
          [
            s.name;
            (match s.parent with None -> "-" | Some p -> p);
            string_of_int s.count;
            Printf.sprintf "%.3f" (ms_of_ns s.total_ns);
            Printf.sprintf "%.3f" (ms_of_ns s.self_ns);
            Printf.sprintf "%.3f" (ms_of_ns s.max_ns);
          ])
        snap.spans
    in
    Buffer.add_string b "== spans ==\n";
    Buffer.add_string b
      (Hgp_util.Tablefmt.render
         ~header:[ "span"; "parent"; "count"; "total ms"; "self ms"; "max ms" ]
         rows);
    Buffer.add_char b '\n'
  end;
  if snap.counters <> [] then begin
    Buffer.add_string b "== counters ==\n";
    Buffer.add_string b
      (Hgp_util.Tablefmt.render ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) snap.counters));
    Buffer.add_char b '\n'
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string b "== gauges ==\n";
    Buffer.add_string b
      (Hgp_util.Tablefmt.render ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; Hgp_util.Tablefmt.fmt_float v ]) snap.gauges));
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

let render sink snap =
  match sink with
  | Noop -> ""
  | Table -> table_of_snapshot snap
  | Jsonl -> jsonl_of_snapshot snap

let emit sink oc =
  match sink with
  | Noop -> ()
  | _ ->
    output_string oc (render sink (snapshot ()));
    flush oc
