(** Parsing, rendering and derivation of hierarchy topologies.

    Two textual formats (see [docs/HIERARCHY.md]):

    - regular: ["DEGSxDEGS@CM,CM,..."], e.g. ["2x4x2@100,30,8,0"] for a
      dual-socket server, or a preset name from
      {!Hierarchy.Presets.all_named};
    - ragged: a bracketed node ["[CM,ITEM,ITEM,...]"] whose items are child
      nodes or leaves (["CAP"] or ["CAP:CM"]), e.g.
      ["[100,[10,4,4,4,4],[10,4,4,2],[5,8,8]]"].  The whole spec is a
      single whitespace-free token.

    This module also derives cost multipliers from physical latency tables
    (the way a practitioner would calibrate [cm] from measured core-to-core
    latencies). *)

(** [parse s] accepts a preset name or an explicit spec.
    @raise Invalid_argument on malformed input. *)
val parse : string -> Hierarchy.t

(** [parse_result s] is [parse] with an error message instead of an
    exception; the message names the offending token and its character
    position. *)
val parse_result : string -> (Hierarchy.t, string) result

(** [to_spec h] renders a hierarchy back to its textual format — the
    regular ["degs@cms"] grammar when [Hierarchy.is_regular h], the ragged
    bracket grammar otherwise (round-trips through {!parse}). *)
val to_spec : Hierarchy.t -> string

(** [of_latencies ~degs ~latencies ~leaf_capacity] builds a hierarchy whose
    cost multipliers are communication latencies per level: [latencies.(j)]
    is the cost of a message between tasks whose lowest common ancestor is at
    Level-(j) (e.g. nanoseconds).  Same length/monotonicity rules as
    {!Hierarchy.create}'s [cm]. *)
val of_latencies :
  degs:int array -> latencies:float array -> leaf_capacity:float -> Hierarchy.t

(** [describe h] is a human-readable multi-line description: one line per
    level with node counts, capacity / multiplier / fan-out ranges
    (collapsed to a single value when uniform). *)
val describe : Hierarchy.t -> string
