type t = {
  degs : int array;
  cm : float array;
  leaf_capacity : float;
  leaves_under : int array; (* leaves_under.(j): leaves below a Level-(j) node *)
}

let create ~degs ~cm ~leaf_capacity =
  let h = Array.length degs in
  if Array.length cm <> h + 1 then invalid_arg "Hierarchy.create: cm must have length h+1";
  Array.iter (fun d -> if d < 1 then invalid_arg "Hierarchy.create: degree must be >= 1") degs;
  for j = 0 to h - 1 do
    if cm.(j) < cm.(j + 1) then invalid_arg "Hierarchy.create: cm must be non-increasing"
  done;
  Array.iter (fun c -> if not (c >= 0.) then invalid_arg "Hierarchy.create: cm must be >= 0") cm;
  if not (leaf_capacity > 0.) then invalid_arg "Hierarchy.create: leaf_capacity must be positive";
  let leaves_under = Array.make (h + 1) 1 in
  for j = h - 1 downto 0 do
    leaves_under.(j) <- leaves_under.(j + 1) * degs.(j)
  done;
  { degs = Array.copy degs; cm = Array.copy cm; leaf_capacity; leaves_under }

let height t = Array.length t.degs

let deg t j =
  if j < 0 || j >= height t then invalid_arg "Hierarchy.deg: level out of range";
  t.degs.(j)

let degs t = Array.copy t.degs

let num_leaves t = t.leaves_under.(0)

let leaves_under t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.leaves_under: level out of range";
  t.leaves_under.(j)

let nodes_at_level t j = num_leaves t / leaves_under t j

let leaf_capacity t = t.leaf_capacity

let capacity t j = float_of_int (leaves_under t j) *. t.leaf_capacity

let cm t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.cm: level out of range";
  t.cm.(j)

let ancestor t ~level leaf =
  if leaf < 0 || leaf >= num_leaves t then invalid_arg "Hierarchy.ancestor: leaf out of range";
  leaf / leaves_under t level

let lca_level t a b =
  if a < 0 || a >= num_leaves t || b < 0 || b >= num_leaves t then
    invalid_arg "Hierarchy.lca_level: leaf out of range";
  let h = height t in
  if a = b then h
  else begin
    (* Deepest level at which the ancestors coincide. *)
    let rec go j =
      if j < 0 then 0
      else if a / t.leaves_under.(j) = b / t.leaves_under.(j) then j
      else go (j - 1)
    in
    go (h - 1)
  end

let edge_cost t a b = t.cm.(lca_level t a b)

let is_normalized t = t.cm.(height t) = 0.

let normalize t =
  let offset = t.cm.(height t) in
  if offset = 0. then (t, 0.)
  else begin
    let cm' = Array.map (fun c -> c -. offset) t.cm in
    ({ t with cm = cm' }, offset)
  end

let children_of t ~level idx =
  if level < 0 || level >= height t then invalid_arg "Hierarchy.children_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.children_of: idx";
  let d = t.degs.(level) in
  (idx * d, (idx * d) + d - 1)

let leaves_of t ~level idx =
  if level < 0 || level > height t then invalid_arg "Hierarchy.leaves_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.leaves_of: idx";
  let span = leaves_under t level in
  (idx * span, (idx * span) + span - 1)

let fingerprint t =
  let open Hgp_util.Fingerprint in
  (* degs + cm + leaf_capacity determine the hierarchy (leaves_under is
     derived). *)
  seed |> Fun.flip add_int_array t.degs
  |> Fun.flip add_float_array t.cm
  |> Fun.flip add_float t.leaf_capacity

let pp ppf t =
  let degs_s =
    String.concat "x" (Array.to_list (Array.map string_of_int t.degs))
  in
  let cm_s =
    String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") t.cm))
  in
  Format.fprintf ppf "H(h=%d, degs=%s, k=%d, cm=[%s], cap=%g)" (height t)
    (if degs_s = "" then "-" else degs_s)
    (num_leaves t) cm_s t.leaf_capacity

module Presets = struct
  let flat ~k =
    create ~degs:[| k |] ~cm:[| 1.0; 0.0 |] ~leaf_capacity:1.0

  let dual_socket =
    (* cross-socket memory bus / shared L3 / shared L2 between hyperthreads *)
    create ~degs:[| 2; 4; 2 |] ~cm:[| 100.0; 30.0; 8.0; 0.0 |] ~leaf_capacity:1.0

  let quad_socket =
    (* The 64-core server of the paper's introduction; cm(h)=1 models the
       residual cost of same-core communication (not normalized). *)
    create ~degs:[| 4; 8; 2 |] ~cm:[| 120.0; 40.0; 10.0; 1.0 |] ~leaf_capacity:1.0

  let cluster =
    create ~degs:[| 2; 4; 8 |] ~cm:[| 1000.0; 100.0; 10.0; 0.0 |] ~leaf_capacity:1.0

  let datacenter =
    create ~degs:[| 2; 4; 4; 4 |]
      ~cm:[| 5000.0; 1000.0; 100.0; 10.0; 0.0 |]
      ~leaf_capacity:1.0

  let uniform ~branching ~height =
    if height < 0 then invalid_arg "Presets.uniform: negative height";
    let degs = Array.make height branching in
    let cm = Array.init (height + 1) (fun j -> float_of_int ((1 lsl (height - j)) - 1)) in
    create ~degs ~cm ~leaf_capacity:1.0

  let all =
    [
      ("flat16", flat ~k:16);
      ("dual_socket", dual_socket);
      ("quad_socket", quad_socket);
      ("cluster", cluster);
      ("datacenter", datacenter);
    ]
end
