(* The hierarchy tree H, generalized to irregular ("ragged") shapes.

   One internal representation serves both worlds: a leveled tree (every
   leaf at depth h) stored level-major — the nodes of Level-(j) occupy the
   contiguous id range [level_off.(j), level_off.(j+1)) and the children of
   any node are contiguous at the next level.  Per-node arrays carry the
   fan-out, cost multiplier, capacity and leaf span; an (h+1) x k ancestor
   matrix makes navigation a lookup.

   Regular hierarchies (the paper's model: uniform fan-out per level,
   per-level multipliers, one leaf capacity) additionally keep their
   original (degs, cm, leaf_capacity) triple in [regular].  That field is
   the compatibility layer: fingerprints, printing and the textual spec
   use the exact historical formulas, so every pre-refactor cache key,
   golden file and solution is reproduced bit for bit (see
   test/test_differential.ml). *)

type regular = {
  degs : int array;
  cm : float array;
  leaf_capacity : float;
  leaves_under : int array; (* leaves_under.(j): leaves below a Level-(j) node *)
}

type t = {
  height : int;
  level_off : int array; (* length h+2: level-j ids in [off.(j), off.(j+1)) *)
  first_child : int array; (* absolute id of first child; -1 for leaves *)
  n_children : int array; (* 0 for leaves *)
  node_cm : float array;
  node_cap : float array; (* total leaf capacity under the node *)
  node_leaves : int array; (* leaves under the node *)
  leaf_start : int array; (* first leaf index under the node *)
  anc : int array; (* anc.(j*k + l): within-level index of leaf l's level-j ancestor *)
  lvl_deg : int array; (* length h: max fan-out at each level *)
  lvl_cm : float array; (* length h+1: max multiplier at each level *)
  lvl_cap : float array; (* length h+1: max node capacity at each level *)
  lvl_leaves : int array; (* length h+1: max leaves-under at each level *)
  leaf_cap_min : float;
  leaf_cap_max : float;
  regular : regular option;
}

type spec =
  | Leaf of { capacity : float; cm : float }
  | Node of { cm : float; children : spec list }

(* ---- basic accessors (defined early; builders below use them) ---- *)

let height t = t.height
let num_leaves t = t.level_off.(t.height + 1) - t.level_off.(t.height)
let is_regular t = t.regular <> None

let nodes_at_level t j = t.level_off.(j + 1) - t.level_off.(j)

let deg t j =
  if j < 0 || j >= height t then invalid_arg "Hierarchy.deg: level out of range";
  t.lvl_deg.(j)

let degs t = Array.copy t.lvl_deg

let leaves_under t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.leaves_under: level out of range";
  t.lvl_leaves.(j)

let leaf_capacity t = t.leaf_cap_max
let max_leaf_capacity t = t.leaf_cap_max
let min_leaf_capacity t = t.leaf_cap_min

let leaf_cap t l =
  if l < 0 || l >= num_leaves t then invalid_arg "Hierarchy.leaf_cap: leaf out of range";
  t.node_cap.(t.level_off.(t.height) + l)

let capacity t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.capacity: level out of range";
  t.lvl_cap.(j)

let capacity_of t ~level idx =
  if level < 0 || level > height t then invalid_arg "Hierarchy.capacity_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.capacity_of: idx";
  t.node_cap.(t.level_off.(level) + idx)

let total_capacity t = t.node_cap.(0)

let cm t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.cm: level out of range";
  t.lvl_cm.(j)

let cm_of t ~level idx =
  if level < 0 || level > height t then invalid_arg "Hierarchy.cm_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.cm_of: idx";
  t.node_cm.(t.level_off.(level) + idx)

let deg_of t ~level idx =
  if level < 0 || level >= height t then invalid_arg "Hierarchy.deg_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.deg_of: idx";
  t.n_children.(t.level_off.(level) + idx)

let leaves_under_of t ~level idx =
  if level < 0 || level > height t then invalid_arg "Hierarchy.leaves_under_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.leaves_under_of: idx";
  t.node_leaves.(t.level_off.(level) + idx)

let range_over_level t arr j =
  let lo = ref infinity and hi = ref neg_infinity in
  for id = t.level_off.(j) to t.level_off.(j + 1) - 1 do
    if arr.(id) < !lo then lo := arr.(id);
    if arr.(id) > !hi then hi := arr.(id)
  done;
  (!lo, !hi)

let cm_range t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.cm_range: level out of range";
  range_over_level t t.node_cm j

let capacity_range t j =
  if j < 0 || j > height t then invalid_arg "Hierarchy.capacity_range: level out of range";
  range_over_level t t.node_cap j

let deg_range t j =
  if j < 0 || j >= height t then invalid_arg "Hierarchy.deg_range: level out of range";
  let lo = ref max_int and hi = ref 0 in
  for id = t.level_off.(j) to t.level_off.(j + 1) - 1 do
    if t.n_children.(id) < !lo then lo := t.n_children.(id);
    if t.n_children.(id) > !hi then hi := t.n_children.(id)
  done;
  (!lo, !hi)

(* ---- navigation ---- *)

let ancestor t ~level leaf =
  if leaf < 0 || leaf >= num_leaves t then invalid_arg "Hierarchy.ancestor: leaf out of range";
  if level < 0 || level > height t then invalid_arg "Hierarchy.ancestor: level out of range";
  t.anc.((level * num_leaves t) + leaf)

let parent_of t ~level idx =
  if level < 1 || level > height t then invalid_arg "Hierarchy.parent_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.parent_of: idx";
  let l = t.leaf_start.(t.level_off.(level) + idx) in
  t.anc.(((level - 1) * num_leaves t) + l)

let lca_level t a b =
  if a < 0 || a >= num_leaves t || b < 0 || b >= num_leaves t then
    invalid_arg "Hierarchy.lca_level: leaf out of range";
  let h = height t in
  if a = b then h
  else begin
    let k = num_leaves t in
    (* Deepest level at which the ancestors coincide. *)
    let rec go j =
      if j < 0 then 0
      else if t.anc.((j * k) + a) = t.anc.((j * k) + b) then j
      else go (j - 1)
    in
    go (h - 1)
  end

let lca_node t a b =
  let j = lca_level t a b in
  (j, t.anc.((j * num_leaves t) + a))

let edge_cost t a b =
  let j = lca_level t a b in
  t.node_cm.(t.level_off.(j) + t.anc.((j * num_leaves t) + a))

let children_of t ~level idx =
  if level < 0 || level >= height t then invalid_arg "Hierarchy.children_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.children_of: idx";
  let id = t.level_off.(level) + idx in
  let first = t.first_child.(id) - t.level_off.(level + 1) in
  (first, first + t.n_children.(id) - 1)

let leaves_of t ~level idx =
  if level < 0 || level > height t then invalid_arg "Hierarchy.leaves_of: level";
  if idx < 0 || idx >= nodes_at_level t level then invalid_arg "Hierarchy.leaves_of: idx";
  let id = t.level_off.(level) + idx in
  (t.leaf_start.(id), t.leaf_start.(id) + t.node_leaves.(id) - 1)

(* ---- normalization (Lemma 1) ---- *)

let leaf_cm_min t =
  let m = ref infinity in
  for id = t.level_off.(t.height) to t.level_off.(t.height + 1) - 1 do
    if t.node_cm.(id) < !m then m := t.node_cm.(id)
  done;
  !m

let is_normalized t = leaf_cm_min t = 0.

let normalize t =
  let offset = leaf_cm_min t in
  if offset = 0. then (t, 0.)
  else
    let node_cm = Array.map (fun c -> c -. offset) t.node_cm in
    let lvl_cm = Array.map (fun c -> c -. offset) t.lvl_cm in
    let regular =
      Option.map
        (fun r -> { r with cm = Array.map (fun c -> c -. offset) r.cm })
        t.regular
    in
    ({ t with node_cm; lvl_cm; regular }, offset)

(* ---- capacities in demand units (for the signature DP) ---- *)

let capacity_units t ~resolution =
  if resolution < 1 then invalid_arg "Hierarchy.capacity_units: resolution must be >= 1";
  let h = height t in
  match t.regular with
  | Some r ->
    (* Exact historical rule: [resolution] units per (uniform) leaf. *)
    Array.init (h + 1) (fun j ->
        Array.make (nodes_at_level t j) (resolution * r.leaves_under.(j)))
  | None ->
    (* Units are fractions of the LARGEST leaf, so a max-size demand still
       quantizes to [resolution] units; per-node capacities round to the
       nearest unit (>= 1 so no node vanishes). *)
    let unit = t.leaf_cap_max /. float_of_int resolution in
    Array.init (h + 1) (fun j ->
        Array.init (nodes_at_level t j) (fun idx ->
            let u = Float.round (t.node_cap.(t.level_off.(j) + idx) /. unit) in
            Stdlib.max 1 (int_of_float u)))

let level_capacity_units t ~resolution =
  capacity_units t ~resolution
  |> Array.map (fun row -> Array.fold_left Stdlib.max 1 row)

(* ---- constructors ---- *)

let create ~degs ~cm ~leaf_capacity =
  let h = Array.length degs in
  if Array.length cm <> h + 1 then invalid_arg "Hierarchy.create: cm must have length h+1";
  Array.iter (fun d -> if d < 1 then invalid_arg "Hierarchy.create: degree must be >= 1") degs;
  for j = 0 to h - 1 do
    if cm.(j) < cm.(j + 1) then invalid_arg "Hierarchy.create: cm must be non-increasing"
  done;
  Array.iter (fun c -> if not (c >= 0.) then invalid_arg "Hierarchy.create: cm must be >= 0") cm;
  if not (leaf_capacity > 0.) then invalid_arg "Hierarchy.create: leaf_capacity must be positive";
  let leaves_under = Array.make (h + 1) 1 in
  for j = h - 1 downto 0 do
    leaves_under.(j) <- leaves_under.(j + 1) * degs.(j)
  done;
  let k = leaves_under.(0) in
  let level_off = Array.make (h + 2) 0 in
  for j = 0 to h do
    level_off.(j + 1) <- level_off.(j) + (k / leaves_under.(j))
  done;
  let n_nodes = level_off.(h + 1) in
  let first_child = Array.make n_nodes (-1) in
  let n_children = Array.make n_nodes 0 in
  let node_cm = Array.make n_nodes 0. in
  let node_cap = Array.make n_nodes 0. in
  let node_leaves = Array.make n_nodes 1 in
  let leaf_start = Array.make n_nodes 0 in
  for j = 0 to h do
    let cap_j = float_of_int leaves_under.(j) *. leaf_capacity in
    for idx = 0 to (k / leaves_under.(j)) - 1 do
      let id = level_off.(j) + idx in
      node_cm.(id) <- cm.(j);
      node_cap.(id) <- cap_j;
      node_leaves.(id) <- leaves_under.(j);
      leaf_start.(id) <- idx * leaves_under.(j);
      if j < h then begin
        n_children.(id) <- degs.(j);
        first_child.(id) <- level_off.(j + 1) + (idx * degs.(j))
      end
    done
  done;
  let anc = Array.make ((h + 1) * k) 0 in
  for j = 0 to h do
    for l = 0 to k - 1 do
      anc.((j * k) + l) <- l / leaves_under.(j)
    done
  done;
  {
    height = h;
    level_off;
    first_child;
    n_children;
    node_cm;
    node_cap;
    node_leaves;
    leaf_start;
    anc;
    lvl_deg = Array.copy degs;
    lvl_cm = Array.copy cm;
    lvl_cap = Array.init (h + 1) (fun j -> float_of_int leaves_under.(j) *. leaf_capacity);
    lvl_leaves = Array.copy leaves_under;
    leaf_cap_min = leaf_capacity;
    leaf_cap_max = leaf_capacity;
    regular = Some { degs = Array.copy degs; cm = Array.copy cm; leaf_capacity; leaves_under };
  }

(* Depth of a spec; also validates that siblings agree so all leaves end up
   at the same depth (the DP and the per-level machinery require a leveled
   tree). *)
let rec spec_depth = function
  | Leaf _ -> 0
  | Node { children = []; _ } ->
    invalid_arg "Hierarchy.create_ragged: internal node must have >= 1 child"
  | Node { children; _ } ->
    let ds = List.map spec_depth children in
    let d0 = List.hd ds in
    List.iter
      (fun d ->
        if d <> d0 then
          invalid_arg "Hierarchy.create_ragged: all leaves must be at the same depth")
      ds;
    d0 + 1

let create_ragged sp =
  let h = spec_depth sp in
  (* Count nodes per level. *)
  let counts = Array.make (h + 1) 0 in
  let rec count lvl = function
    | Leaf _ -> counts.(lvl) <- counts.(lvl) + 1
    | Node { children; _ } ->
      counts.(lvl) <- counts.(lvl) + 1;
      List.iter (count (lvl + 1)) children
  in
  count 0 sp;
  let level_off = Array.make (h + 2) 0 in
  for j = 0 to h do
    level_off.(j + 1) <- level_off.(j) + counts.(j)
  done;
  let n_nodes = level_off.(h + 1) in
  let k = counts.(h) in
  let first_child = Array.make n_nodes (-1) in
  let n_children = Array.make n_nodes 0 in
  let node_cm = Array.make n_nodes 0. in
  let node_cap = Array.make n_nodes 0. in
  let node_leaves = Array.make n_nodes 0 in
  let leaf_start = Array.make n_nodes 0 in
  let anc = Array.make ((h + 1) * k) 0 in
  let cursor = Array.make (h + 1) 0 in
  (* chain.(j): within-level index of the current node's level-j ancestor. *)
  let chain = Array.make (h + 1) 0 in
  let next_leaf = ref 0 in
  let rec fill lvl parent_cm sp =
    let idx = cursor.(lvl) in
    cursor.(lvl) <- idx + 1;
    chain.(lvl) <- idx;
    let id = level_off.(lvl) + idx in
    (match sp with
    | Leaf { capacity; cm } ->
      if not (capacity > 0.) then
        invalid_arg "Hierarchy.create_ragged: leaf capacity must be positive";
      if not (cm >= 0.) then invalid_arg "Hierarchy.create_ragged: cm must be >= 0";
      if cm > parent_cm then
        invalid_arg "Hierarchy.create_ragged: cm must be non-increasing along paths";
      let l = !next_leaf in
      incr next_leaf;
      node_cm.(id) <- cm;
      node_cap.(id) <- capacity;
      node_leaves.(id) <- 1;
      leaf_start.(id) <- l;
      for j = 0 to h do
        anc.((j * k) + l) <- chain.(j)
      done
    | Node { cm; children } ->
      if not (cm >= 0.) then invalid_arg "Hierarchy.create_ragged: cm must be >= 0";
      if cm > parent_cm then
        invalid_arg "Hierarchy.create_ragged: cm must be non-increasing along paths";
      node_cm.(id) <- cm;
      first_child.(id) <- level_off.(lvl + 1) + cursor.(lvl + 1);
      n_children.(id) <- List.length children;
      leaf_start.(id) <- !next_leaf;
      List.iter (fill (lvl + 1) cm) children;
      let cap = ref 0. and leaves = ref 0 in
      for c = first_child.(id) to first_child.(id) + n_children.(id) - 1 do
        cap := !cap +. node_cap.(c);
        leaves := !leaves + node_leaves.(c)
      done;
      node_cap.(id) <- !cap;
      node_leaves.(id) <- !leaves)
  in
  fill 0 infinity sp;
  (* If the spec happens to be perfectly regular, rebuild through the
     regular constructor so content-addressing and the textual spec agree
     with the historical representation. *)
  let detect_regular () =
    let uniform_level j =
      let id0 = level_off.(j) in
      let ok = ref true in
      for id = id0 + 1 to level_off.(j + 1) - 1 do
        if n_children.(id) <> n_children.(id0) || node_cm.(id) <> node_cm.(id0) then
          ok := false
      done;
      !ok
    in
    let caps_uniform = ref true in
    for id = level_off.(h) + 1 to level_off.(h + 1) - 1 do
      if node_cap.(id) <> node_cap.(level_off.(h)) then caps_uniform := false
    done;
    let all_uniform = ref !caps_uniform in
    for j = 0 to h do
      if not (uniform_level j) then all_uniform := false
    done;
    if not !all_uniform then None
    else
      Some
        (create
           ~degs:(Array.init h (fun j -> n_children.(level_off.(j))))
           ~cm:(Array.init (h + 1) (fun j -> node_cm.(level_off.(j))))
           ~leaf_capacity:node_cap.(level_off.(h)))
  in
  match detect_regular () with
  | Some t -> t
  | None ->
    let lvl_deg =
      Array.init h (fun j ->
          let m = ref 0 in
          for id = level_off.(j) to level_off.(j + 1) - 1 do
            if n_children.(id) > !m then m := n_children.(id)
          done;
          !m)
    in
    let max_over arr j init =
      let m = ref init in
      for id = level_off.(j) to level_off.(j + 1) - 1 do
        if arr.(id) > !m then m := arr.(id)
      done;
      !m
    in
    let lvl_cm = Array.init (h + 1) (fun j -> max_over node_cm j neg_infinity) in
    let lvl_cap = Array.init (h + 1) (fun j -> max_over node_cap j neg_infinity) in
    let lvl_leaves = Array.init (h + 1) (fun j -> max_over node_leaves j 0) in
    let cap_min = ref infinity and cap_max = ref neg_infinity in
    for id = level_off.(h) to level_off.(h + 1) - 1 do
      if node_cap.(id) < !cap_min then cap_min := node_cap.(id);
      if node_cap.(id) > !cap_max then cap_max := node_cap.(id)
    done;
    {
      height = h;
      level_off;
      first_child;
      n_children;
      node_cm;
      node_cap;
      node_leaves;
      leaf_start;
      anc;
      lvl_deg;
      lvl_cm;
      lvl_cap;
      lvl_leaves;
      leaf_cap_min = !cap_min;
      leaf_cap_max = !cap_max;
      regular = None;
    }

let rec spec_of_node t id lvl =
  if lvl = t.height then Leaf { capacity = t.node_cap.(id); cm = t.node_cm.(id) }
  else
    Node
      {
        cm = t.node_cm.(id);
        children =
          List.init t.n_children.(id) (fun c ->
              spec_of_node t (t.first_child.(id) + c) (lvl + 1));
      }

let spec_of t = spec_of_node t 0 0

(* ---- fingerprints ---- *)

let fingerprint t =
  let open Hgp_util.Fingerprint in
  match t.regular with
  | Some r ->
    (* Historical formula, preserved exactly: degs + cm + leaf_capacity
       determine a regular hierarchy (leaves_under is derived). *)
    seed |> Fun.flip add_int_array r.degs
    |> Fun.flip add_float_array r.cm
    |> Fun.flip add_float r.leaf_capacity
  | None ->
    (* Level-major structure + per-node multipliers + per-leaf capacities:
       perturbing a single leaf capacity or one subtree's multiplier yields
       a different key (cache-integrity tests rely on this). *)
    let k = num_leaves t in
    let leaf_caps = Array.sub t.node_cap t.level_off.(t.height) k in
    seed |> Fun.flip add_string "ragged"
    |> Fun.flip add_int_array t.n_children
    |> Fun.flip add_float_array t.node_cm
    |> Fun.flip add_float_array leaf_caps

let pp ppf t =
  match t.regular with
  | Some r ->
    let degs_s =
      String.concat "x" (Array.to_list (Array.map string_of_int r.degs))
    in
    let cm_s =
      String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") r.cm))
    in
    Format.fprintf ppf "H(h=%d, degs=%s, k=%d, cm=[%s], cap=%g)" (height t)
      (if degs_s = "" then "-" else degs_s)
      (num_leaves t) cm_s r.leaf_capacity
  | None ->
    Format.fprintf ppf "H(h=%d, ragged, k=%d, nodes=%d, cm0=%g, caps=%g..%g)"
      (height t) (num_leaves t) t.level_off.(t.height + 1) t.node_cm.(0)
      t.leaf_cap_min t.leaf_cap_max

module Presets = struct
  let flat ~k =
    create ~degs:[| k |] ~cm:[| 1.0; 0.0 |] ~leaf_capacity:1.0

  let dual_socket =
    (* cross-socket memory bus / shared L3 / shared L2 between hyperthreads *)
    create ~degs:[| 2; 4; 2 |] ~cm:[| 100.0; 30.0; 8.0; 0.0 |] ~leaf_capacity:1.0

  let quad_socket =
    (* The 64-core server of the paper's introduction; cm(h)=1 models the
       residual cost of same-core communication (not normalized). *)
    create ~degs:[| 4; 8; 2 |] ~cm:[| 120.0; 40.0; 10.0; 1.0 |] ~leaf_capacity:1.0

  let cluster =
    create ~degs:[| 2; 4; 8 |] ~cm:[| 1000.0; 100.0; 10.0; 0.0 |] ~leaf_capacity:1.0

  let datacenter =
    create ~degs:[| 2; 4; 4; 4 |]
      ~cm:[| 5000.0; 1000.0; 100.0; 10.0; 0.0 |]
      ~leaf_capacity:1.0

  let uniform ~branching ~height =
    if height < 0 then invalid_arg "Presets.uniform: negative height";
    let degs = Array.make height branching in
    let cm = Array.init (height + 1) (fun j -> float_of_int ((1 lsl (height - j)) - 1)) in
    create ~degs ~cm ~leaf_capacity:1.0

  let leaves ?(cm = 0.) caps =
    List.map (fun c -> Leaf { capacity = c; cm }) caps

  let ragged_rack =
    (* A rack row mid-rollout: one full rack, one partially filled with a
       downbinned machine, and a premium two-machine rack on a faster
       switch (lower subtree multiplier). *)
    create_ragged
      (Node
         {
           cm = 100.0;
           children =
             [
               Node { cm = 10.0; children = leaves [ 4.; 4.; 4.; 4. ] };
               Node { cm = 10.0; children = leaves [ 4.; 4.; 2. ] };
               Node { cm = 5.0; children = leaves [ 8.; 8. ] };
             ];
         })

  let gpu_cpu_tier =
    (* Accelerator island (few big leaves, fast interconnect) next to a CPU
       tier (many small leaves, slower fabric). *)
    create_ragged
      (Node
         {
           cm = 50.0;
           children =
             [
               Node { cm = 4.0; children = leaves [ 16.; 16.; 16.; 16. ] };
               Node { cm = 12.0; children = leaves [ 2.; 2.; 2.; 2.; 2.; 2.; 2.; 2. ] };
             ];
         })

  let all =
    [
      ("flat16", flat ~k:16);
      ("dual_socket", dual_socket);
      ("quad_socket", quad_socket);
      ("cluster", cluster);
      ("datacenter", datacenter);
    ]

  let ragged_all = [ ("ragged_rack", ragged_rack); ("gpu_cpu_tier", gpu_cpu_tier) ]
  let all_named = all @ ragged_all
end
