(* Textual hierarchy specs.

   Regular grammar (historical): "DEGSxDEGS@CM,CM,...", e.g.
   "2x4x2@100,30,8,0", or a preset name.

   Ragged grammar (see docs/HIERARCHY.md): a bracketed node
   "[CM,ITEM,ITEM,...]" whose items are child nodes or leaves; a leaf is
   "CAP" or "CAP:CM".  E.g. "[100,[10,4,4,4,4],[10,4,4,2],[5,8,8]]".
   The spec is a single shell- and instance-file-friendly token (no
   whitespace).

   Parse errors name the offending token and its character position. *)

(* ---- positioned errors ---- *)

exception Bad of string (* detail, already carrying token + position *)

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let wrap s f =
  try Ok (f ()) with
  | Bad detail -> Error (Printf.sprintf "malformed hierarchy spec %S: %s" s detail)
  | Invalid_argument m -> Error m

(* ---- regular grammar ---- *)

(* [split_positions sep s off] splits [s] on [sep], returning each field with
   its character position in the overall spec ([off] = where [s] starts). *)
let split_positions sep s off =
  let parts = String.split_on_char sep s in
  let rec go pos = function
    | [] -> []
    | p :: rest -> (pos, p) :: go (pos + String.length p + 1) rest
  in
  go off parts

let parse_regular s degs_s cms_s =
  ignore s;
  let degs =
    if degs_s = "" then [||]
    else
      split_positions 'x' degs_s 0
      |> List.map (fun (pos, tok) ->
             match int_of_string_opt tok with
             | Some d -> d
             | None -> bad "bad fan-out %S at char %d (expected an integer)" tok pos)
      |> Array.of_list
  in
  let cm =
    split_positions ',' cms_s (String.length degs_s + 1)
    |> List.map (fun (pos, tok) ->
           match float_of_string_opt tok with
           | Some c -> c
           | None -> bad "bad multiplier %S at char %d (expected a number)" tok pos)
    |> Array.of_list
  in
  Hierarchy.create ~degs ~cm ~leaf_capacity:1.0

(* ---- ragged grammar ---- *)

type token = Open of int | Close of int | Comma of int | Atom of int * string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '[' ->
      toks := Open !i :: !toks;
      incr i
    | ']' ->
      toks := Close !i :: !toks;
      incr i
    | ',' ->
      toks := Comma !i :: !toks;
      incr i
    | _ ->
      let start = !i in
      while !i < n && s.[!i] <> '[' && s.[!i] <> ']' && s.[!i] <> ',' do
        incr i
      done;
      toks := Atom (start, String.sub s start (!i - start)) :: !toks);
    ()
  done;
  List.rev !toks

let token_pos = function Open p | Close p | Comma p | Atom (p, _) -> p

let parse_ragged s =
  let toks = ref (tokenize s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> bad "unexpected end of spec at char %d" (String.length s)
    | t :: rest ->
      toks := rest;
      t
  in
  let number tok pos what =
    match float_of_string_opt tok with
    | Some v -> v
    | None -> bad "bad %s %S at char %d (expected a number)" what tok pos
  in
  let leaf_of_atom pos tok =
    match String.index_opt tok ':' with
    | None -> Hierarchy.Leaf { capacity = number tok pos "leaf capacity"; cm = 0. }
    | Some i ->
      let cap = String.sub tok 0 i in
      let cm = String.sub tok (i + 1) (String.length tok - i - 1) in
      Hierarchy.Leaf
        {
          capacity = number cap pos "leaf capacity";
          cm = number cm (pos + i + 1) "leaf multiplier";
        }
  in
  let rec node () =
    match next () with
    | Open _ -> (
      let cm =
        match next () with
        | Atom (pos, tok) -> number tok pos "multiplier"
        | t -> bad "expected a multiplier after '[' at char %d" (token_pos t)
      in
      let children = ref [] in
      let rec items () =
        match next () with
        | Comma _ ->
          (match peek () with
          | Some (Open _) -> children := node () :: !children
          | Some (Atom (pos, tok)) ->
            ignore (next ());
            children := leaf_of_atom pos tok :: !children
          | Some t -> bad "expected a child or leaf at char %d" (token_pos t)
          | None -> bad "unexpected end of spec at char %d" (String.length s));
          items ()
        | Close _ -> ()
        | t -> bad "expected ',' or ']' at char %d" (token_pos t)
      in
      items ();
      match List.rev !children with
      | [] -> Hierarchy.Leaf { capacity = cm; cm = 0. } (* "[4]" = lone leaf *)
      | children -> Hierarchy.Node { cm; children })
    | t -> bad "expected '[' at char %d" (token_pos t)
  in
  let spec = node () in
  (match peek () with
  | Some t -> bad "trailing input %S at char %d" s (token_pos t)
  | None -> ());
  Hierarchy.create_ragged spec

(* ---- entry points ---- *)

let parse_result s =
  if String.length s > 0 && s.[0] = '[' then wrap s (fun () -> parse_ragged s)
  else
    match String.split_on_char '@' s with
    | [ preset ] -> (
      match List.assoc_opt preset Hierarchy.Presets.all_named with
      | Some h -> Ok h
      | None ->
        Error
          (Printf.sprintf "unknown hierarchy preset %S (know: %s)" preset
             (String.concat ", " (List.map fst Hierarchy.Presets.all_named))))
    | [ degs_s; cms_s ] -> wrap s (fun () -> parse_regular s degs_s cms_s)
    | _ -> Error "expected PRESET, DEGSxDEGS@CM,CM,..., or a ragged [..] spec"

let parse s =
  match parse_result s with
  | Ok h -> h
  | Error m -> invalid_arg ("Topology.parse: " ^ m)

let to_spec h =
  if Hierarchy.is_regular h then
    let degs =
      Hierarchy.degs h |> Array.map string_of_int |> Array.to_list |> String.concat "x"
    in
    let cms =
      List.init
        (Hierarchy.height h + 1)
        (fun j -> Printf.sprintf "%g" (Hierarchy.cm h j))
      |> String.concat ","
    in
    degs ^ "@" ^ cms
  else
    let rec render = function
      | Hierarchy.Leaf { capacity; cm } ->
        if cm = 0. then Printf.sprintf "%g" capacity
        else Printf.sprintf "%g:%g" capacity cm
      | Hierarchy.Node { cm; children } ->
        Printf.sprintf "[%g,%s]" cm (String.concat "," (List.map render children))
    in
    render (Hierarchy.spec_of h)

let of_latencies ~degs ~latencies ~leaf_capacity =
  Hierarchy.create ~degs ~cm:latencies ~leaf_capacity

let level_name j h =
  (* Conventional names for common heights; clean generic fallback (root /
     leaf / level-j) for heights without a naming table. *)
  let names =
    match h with
    | 1 -> [| "root"; "core" |]
    | 2 -> [| "machine"; "socket"; "core" |]
    | 3 -> [| "machine"; "socket"; "core"; "hyperthread" |]
    | 4 -> [| "pod"; "rack"; "server"; "socket"; "core" |]
    | _ -> [||]
  in
  if Array.length names = h + 1 && j >= 0 && j <= h then names.(j)
  else if j = 0 then "root"
  else if j = h then "leaf"
  else Printf.sprintf "level-%d" j

let range_s fmt (lo, hi) =
  if lo = hi then Printf.sprintf fmt lo
  else Printf.sprintf (fmt ^^ "..") lo ^ Printf.sprintf fmt hi

let describe h =
  let buf = Buffer.create 256 in
  let height = Hierarchy.height h in
  Buffer.add_string buf (Format.asprintf "%a\n" Hierarchy.pp h);
  for j = 0 to height do
    Buffer.add_string buf
      (Printf.sprintf "  level %d (%s): %d node(s), capacity %s, cm %s%s\n" j
         (level_name j height)
         (Hierarchy.nodes_at_level h j)
         (range_s "%g" (Hierarchy.capacity_range h j))
         (range_s "%g" (Hierarchy.cm_range h j))
         (if j < height then
            Printf.sprintf ", fan-out %s" (range_s "%d" (Hierarchy.deg_range h j))
          else ""))
  done;
  Buffer.contents buf
