(** The hierarchy tree [H] of the HGP problem, generalized to irregular
    ("ragged") shapes: per-node child counts, per-leaf capacities, and
    per-subtree cost multipliers.

    [H] is a {e leveled} tree: the root is Level-0 and every leaf lives at
    Level-[h].  Each node carries a cost multiplier, non-increasing along
    every root-to-leaf path; cutting a task-graph edge whose endpoints land
    on leaves with lowest common ancestor node [x] costs [w * cm(x)].  Each
    leaf carries its own capacity.

    The paper's regular model — uniform fan-out [degs.(j)] per level, one
    multiplier [cm.(j)] per level, one leaf capacity — is the special case
    built by {!create}.  Regular hierarchies keep their historical
    semantics {e exactly}: leaves are numbered left to right, the Level-(j)
    ancestor of a leaf is [leaf / leaves_under j], and {!fingerprint}
    reproduces the pre-generalization cache keys bit for bit.  The
    per-level accessors ({!deg}, {!cm}, {!capacity}, {!leaves_under})
    remain total on ragged trees by returning the level {e envelope}
    (maximum over the level's nodes) — callers that need exact per-node
    values use the [_of] variants.  See [docs/HIERARCHY.md]. *)

type t

(** Shape description consumed by {!create_ragged}: a leaf with its own
    capacity (and optional residual same-leaf multiplier), or an internal
    node with a subtree multiplier and at least one child. *)
type spec =
  | Leaf of { capacity : float; cm : float }
  | Node of { cm : float; children : spec list }

(** [create ~degs ~cm ~leaf_capacity] builds a {e regular} hierarchy of
    height [Array.length degs]; [degs.(j)] is the fan-out of Level-(j) nodes
    and [cm] must have length [height + 1] and be non-increasing with
    [cm.(j) >= 0].  [degs = [||]] gives the trivial single-leaf hierarchy.
    Requires every [degs.(j) >= 1] and [leaf_capacity > 0.]. *)
val create : degs:int array -> cm:float array -> leaf_capacity:float -> t

(** [create_ragged spec] builds an irregular hierarchy.  Requires all
    leaves at the same depth, every internal node non-empty, capacities
    positive, and multipliers non-negative and non-increasing along every
    root-to-leaf path.  A spec that happens to be perfectly regular
    (uniform fan-outs, multipliers and capacities per level) is rebuilt
    through {!create}, so equal content always means equal
    {!fingerprint}.
    @raise Invalid_argument on malformed specs. *)
val create_ragged : spec -> t

(** [spec_of t] recovers the shape (inverse of {!create_ragged} up to
    regular-detection). *)
val spec_of : t -> spec

(** [is_regular t] is true for hierarchies built by {!create} (or detected
    as regular); such trees honor every historical arithmetic identity. *)
val is_regular : t -> bool

(** [height t] is [h]; leaves live at Level-[h]. *)
val height : t -> int

(** [deg t j] is the fan-out of Level-(j) nodes, [0 <= j < height t]; on a
    ragged tree, the {e maximum} fan-out at the level. *)
val deg : t -> int -> int

(** [deg_of t ~level idx] is the exact fan-out of node [idx] at [level]. *)
val deg_of : t -> level:int -> int -> int

(** [deg_range t j] is the [(min, max)] fan-out over Level-(j) nodes. *)
val deg_range : t -> int -> int * int

(** [degs t] is the per-level fan-out vector (per-level maxima when
    ragged). *)
val degs : t -> int array

(** [num_leaves t] is [k], the number of leaves. *)
val num_leaves : t -> int

(** [nodes_at_level t j] is the number of Level-(j) nodes. *)
val nodes_at_level : t -> int -> int

(** [leaves_under t j] is the number of leaves in the subtree of a Level-(j)
    node (the maximum over the level's nodes when ragged). *)
val leaves_under : t -> int -> int

(** [leaves_under_of t ~level idx] is the exact leaf count under node
    [idx]. *)
val leaves_under_of : t -> level:int -> int -> int

(** [leaf_capacity t] is the capacity of one leaf; on a ragged tree, the
    {e largest} leaf capacity (the demand-quantization scale — a valid
    instance's per-vertex demand never exceeds it). *)
val leaf_capacity : t -> float

(** [max_leaf_capacity t] = [leaf_capacity t], under its honest name. *)
val max_leaf_capacity : t -> float

(** [min_leaf_capacity t] is the smallest leaf capacity — the safe cap for
    coarsening merges (a merged vertex of this weight still fits on any
    leaf; see [docs/MULTILEVEL.md]). *)
val min_leaf_capacity : t -> float

(** [leaf_cap t l] is the capacity of leaf [l]. *)
val leaf_cap : t -> int -> float

(** [capacity t j] is [CP(j)]: total leaf capacity under a Level-(j) node
    (the maximum over the level's nodes when ragged). *)
val capacity : t -> int -> float

(** [capacity_of t ~level idx] is the exact total leaf capacity under node
    [idx] at [level] — the denominator of that node's load violation. *)
val capacity_of : t -> level:int -> int -> float

(** [capacity_range t j] is the [(min, max)] node capacity at Level-(j). *)
val capacity_range : t -> int -> float * float

(** [total_capacity t] is the whole machine: the root's capacity. *)
val total_capacity : t -> float

(** [cm t j] is the Level-(j) cost multiplier, [0 <= j <= height t] (the
    maximum over the level's nodes when ragged — an admissible pessimistic
    bound for the per-level DP relaxation). *)
val cm : t -> int -> float

(** [cm_of t ~level idx] is the exact multiplier of node [idx] at
    [level]. *)
val cm_of : t -> level:int -> int -> float

(** [cm_range t j] is the [(min, max)] multiplier at Level-(j). *)
val cm_range : t -> int -> float * float

(** [ancestor t ~level leaf] is the index (within its level) of the Level-
    [level] ancestor of [leaf]. *)
val ancestor : t -> level:int -> int -> int

(** [parent_of t ~level idx] is the within-level index (at [level - 1]) of
    the parent of node [idx] at [level], [1 <= level <= height t]. *)
val parent_of : t -> level:int -> int -> int

(** [lca_level t a b] is the level of the lowest common ancestor of leaves
    [a] and [b] ([height t] when [a = b]). *)
val lca_level : t -> int -> int -> int

(** [lca_node t a b] is [(level, idx)] of the lowest common ancestor. *)
val lca_node : t -> int -> int -> int * int

(** [edge_cost t a b] is the multiplier of the lowest-common-ancestor
    {e node} of leaves [a] and [b] — the per-unit-weight cost of placing
    communicating tasks there.  Equals [cm (lca_level t a b)] on regular
    trees. *)
val edge_cost : t -> int -> int -> float

(** [is_normalized t] tests that the smallest leaf multiplier is [0]
    ([cm h = 0] on regular trees). *)
val is_normalized : t -> bool

(** [normalize t] implements Lemma 1: returns [(t', offset)] where every
    multiplier is reduced by [offset], the smallest leaf multiplier.  On
    regular trees (uniform leaf multiplier) any solution's cost satisfies
    [cost t p = cost t' p +. offset *. total_edge_weight]; on ragged trees
    with non-uniform leaf multipliers the identity degrades to a bound and
    the exact cost should be evaluated un-normalized. *)
val normalize : t -> t * float

(** [children_of t ~level idx] is the index range [(first, last)] of the
    children (at [level + 1]) of node [idx] at [level].  Children are
    always contiguous, including on ragged trees. *)
val children_of : t -> level:int -> int -> int * int

(** [leaves_of t ~level idx] is the inclusive leaf range [(first, last)]
    under node [idx] at [level]. *)
val leaves_of : t -> level:int -> int -> int * int

(** [capacity_units t ~resolution] is the per-node capacity expressed in
    demand units — [units.(j).(idx)] for node [idx] at Level-(j).  On
    regular trees this is exactly [resolution * leaves_under j] (the
    historical DP rule); on ragged trees units are fractions of the largest
    leaf and each node's capacity rounds to the nearest unit (>= 1).
    Child units never exceed parent units. *)
val capacity_units : t -> resolution:int -> int array array

(** [level_capacity_units t ~resolution] is the per-level envelope (row
    maxima of {!capacity_units}) — the signature DP's per-level capacity
    vector, non-increasing with depth. *)
val level_capacity_units : t -> resolution:int -> int array

(** [fingerprint t] is a content fingerprint of the hierarchy — the
    hierarchy component of solver cache keys (see [docs/ARCHITECTURE.md]).
    Regular trees reproduce the historical (degs, cm, leaf_capacity)
    digest exactly; ragged trees digest the level-major structure,
    per-node multipliers and per-leaf capacities, so any single-field
    perturbation (one leaf capacity, one subtree multiplier) changes the
    key. *)
val fingerprint : t -> Hgp_util.Fingerprint.t

(** [pp] prints a one-line description. *)
val pp : Format.formatter -> t -> unit

(** Hardware-inspired presets.  Cost multipliers are derived from typical
    communication latencies (arbitrary units); some presets are deliberately
    not normalized to exercise Lemma 1. *)
module Presets : sig
  (** [flat ~k] encodes classic k-balanced graph partitioning: height 1,
      [cm = [|1; 0|]]. *)
  val flat : k:int -> t

  (** [dual_socket] is 2 sockets x 4 cores x 2 hyperthreads (16 leaves),
      height 3. *)
  val dual_socket : t

  (** [quad_socket] is 4 sockets x 8 cores x 2 hyperthreads (64 leaves), the
      server of the paper's introduction; [cm h = 1] (not normalized). *)
  val quad_socket : t

  (** [cluster] is 2 racks x 4 servers x 8 cores (64 leaves), height 3, with
      steep network-versus-memory multipliers. *)
  val cluster : t

  (** [datacenter] is height 4: 2 pods x 4 racks x 4 servers x 4 cores. *)
  val datacenter : t

  (** [uniform ~branching ~height] has fan-out [branching] everywhere and
      geometrically decaying multipliers [cm j = 2^(h-j) - 1]. *)
  val uniform : branching:int -> height:int -> t

  (** [ragged_rack] is an irregular rack row: a full 4-machine rack, a
      partially filled rack with a downbinned machine (caps 4,4,2), and a
      premium 2-machine rack (caps 8,8) on a faster switch. *)
  val ragged_rack : t

  (** [gpu_cpu_tier] is an accelerator island (4 leaves of capacity 16,
      fast interconnect) next to a CPU tier (8 leaves of capacity 2). *)
  val gpu_cpu_tier : t

  (** [all] is every named {e regular} preset with its label (kept stable
      for the differential suite and existing cache keys). *)
  val all : (string * t) list

  (** [ragged_all] is every named ragged preset. *)
  val ragged_all : (string * t) list

  (** [all_named] is [all @ ragged_all] — the lookup table for
      {!Topology.parse}. *)
  val all_named : (string * t) list
end
