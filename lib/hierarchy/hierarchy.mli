(** The hierarchy tree [H] of the HGP problem.

    [H] is regular at every level: a Level-(j) node has exactly [deg j]
    children (the root is Level-0, leaves are Level-[h]).  Each level carries
    a cost multiplier [cm j] with [cm 0 >= cm 1 >= ... >= cm h]; cutting a
    task-graph edge whose endpoints land on leaves with lowest common ancestor
    at Level-(j) costs [w * cm j].  Each leaf has the same capacity.

    Leaves are numbered [0..k-1] left to right, so the Level-(j) ancestor of a
    leaf is [leaf / leaves_under j] — all tree navigation is arithmetic. *)

type t

(** [create ~degs ~cm ~leaf_capacity] builds a hierarchy of height
    [Array.length degs]; [degs.(j)] is the fan-out of Level-(j) nodes and [cm]
    must have length [height + 1] and be non-increasing with
    [cm.(j) >= 0].  [degs = [||]] gives the trivial single-leaf hierarchy.
    Requires every [degs.(j) >= 1] and [leaf_capacity > 0.]. *)
val create : degs:int array -> cm:float array -> leaf_capacity:float -> t

(** [height t] is [h]; leaves live at Level-[h]. *)
val height : t -> int

(** [deg t j] is the fan-out of Level-(j) nodes, [0 <= j < height t]. *)
val deg : t -> int -> int

(** [degs t] is a copy of the fan-out vector. *)
val degs : t -> int array

(** [num_leaves t] is [k], the number of leaves. *)
val num_leaves : t -> int

(** [nodes_at_level t j] is the number of Level-(j) nodes. *)
val nodes_at_level : t -> int -> int

(** [leaves_under t j] is the number of leaves in the subtree of a Level-(j)
    node. *)
val leaves_under : t -> int -> int

(** [leaf_capacity t] is the capacity of one leaf. *)
val leaf_capacity : t -> float

(** [capacity t j] is [CP(j)]: total leaf capacity under a Level-(j) node. *)
val capacity : t -> int -> float

(** [cm t j] is the Level-(j) cost multiplier, [0 <= j <= height t]. *)
val cm : t -> int -> float

(** [ancestor t ~level leaf] is the index (within its level) of the Level-
    [level] ancestor of [leaf]. *)
val ancestor : t -> level:int -> int -> int

(** [lca_level t a b] is the level of the lowest common ancestor of leaves
    [a] and [b] ([height t] when [a = b]). *)
val lca_level : t -> int -> int -> int

(** [edge_cost t a b] is [cm (lca_level t a b)] — the per-unit-weight cost of
    placing communicating tasks on leaves [a] and [b]. *)
val edge_cost : t -> int -> int -> float

(** [is_normalized t] tests [cm h = 0]. *)
val is_normalized : t -> bool

(** [normalize t] implements Lemma 1: returns [(t', offset)] where [t'] has
    [cm' j = cm j - cm h] and any solution's cost satisfies
    [cost t p = cost t' p +. offset *. total_edge_weight]. *)
val normalize : t -> t * float

(** [children_of t ~level idx] is the index range [(first, last)] of the
    children (at [level + 1]) of node [idx] at [level]. *)
val children_of : t -> level:int -> int -> int * int

(** [leaves_of t ~level idx] is the inclusive leaf range [(first, last)] under
    node [idx] at [level]. *)
val leaves_of : t -> level:int -> int -> int * int

(** [fingerprint t] is a content fingerprint of the hierarchy shape
    (degrees, cost multipliers, leaf capacity) — the hierarchy component of
    solver cache keys (see [docs/ARCHITECTURE.md]). *)
val fingerprint : t -> Hgp_util.Fingerprint.t

(** [pp] prints a one-line description. *)
val pp : Format.formatter -> t -> unit

(** Hardware-inspired presets.  Cost multipliers are derived from typical
    communication latencies (arbitrary units); some presets are deliberately
    not normalized to exercise Lemma 1. *)
module Presets : sig
  (** [flat ~k] encodes classic k-balanced graph partitioning: height 1,
      [cm = [|1; 0|]]. *)
  val flat : k:int -> t

  (** [dual_socket] is 2 sockets x 4 cores x 2 hyperthreads (16 leaves),
      height 3. *)
  val dual_socket : t

  (** [quad_socket] is 4 sockets x 8 cores x 2 hyperthreads (64 leaves), the
      server of the paper's introduction; [cm h = 1] (not normalized). *)
  val quad_socket : t

  (** [cluster] is 2 racks x 4 servers x 8 cores (64 leaves), height 3, with
      steep network-versus-memory multipliers. *)
  val cluster : t

  (** [datacenter] is height 4: 2 pods x 4 racks x 4 servers x 4 cores. *)
  val datacenter : t

  (** [uniform ~branching ~height] has fan-out [branching] everywhere and
      geometrically decaying multipliers [cm j = 2^(h-j) - 1]. *)
  val uniform : branching:int -> height:int -> t

  (** [all] is every named preset with its label. *)
  val all : (string * t) list
end
