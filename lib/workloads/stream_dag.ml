module Prng = Hgp_util.Prng
module Graph = Hgp_graph.Graph

type params = {
  n_sources : int;
  pipeline_depth : int;
  join_probability : float;
  fanout_probability : float;
  selectivity : float;
  rate_min : float;
  rate_max : float;
}

let default_params =
  {
    n_sources = 8;
    pipeline_depth = 5;
    join_probability = 0.15;
    fanout_probability = 0.1;
    selectivity = 0.8;
    rate_min = 10.;
    rate_max = 100.;
  }

type t = {
  graph : Graph.t;
  rates : float array;
  kinds : string array;
  directed_edges : (int * int * float) list;
}

type op = { id : int; rate : float }

let generate rng p =
  if p.n_sources < 1 || p.pipeline_depth < 1 then invalid_arg "Stream_dag.generate";
  if not (p.selectivity > 0. && p.selectivity <= 1.) then
    invalid_arg "Stream_dag.generate: selectivity out of range";
  let rates = ref [] and kinds = ref [] and edges = ref [] in
  let next = ref 0 in
  let fresh rate kind =
    let id = !next in
    incr next;
    rates := rate :: !rates;
    kinds := kind :: !kinds;
    { id; rate }
  in
  let connect a b w = edges := (a.id, b.id, w) :: !edges in
  (* Frontier of live pipeline heads. *)
  let frontier =
    ref
      (List.init p.n_sources (fun _ ->
           fresh (p.rate_min +. Prng.float rng (p.rate_max -. p.rate_min)) "source"))
  in
  for _stage = 1 to p.pipeline_depth do
    let heads = !frontier in
    let rec step acc = function
      | [] -> acc
      | a :: b :: rest when Prng.float rng 1.0 < p.join_probability ->
        (* Join two pipelines: output rate is the sum, decayed. *)
        let out = fresh ((a.rate +. b.rate) *. p.selectivity) "join" in
        connect a out a.rate;
        connect b out b.rate;
        step (out :: acc) rest
      | a :: rest when Prng.float rng 1.0 < p.fanout_probability ->
        (* Fan out into two downstream operators sharing the rate. *)
        let o1 = fresh (a.rate *. p.selectivity /. 2.) "op" in
        let o2 = fresh (a.rate *. p.selectivity /. 2.) "op" in
        connect a o1 (a.rate /. 2.);
        connect a o2 (a.rate /. 2.);
        step (o1 :: o2 :: acc) rest
      | a :: rest ->
        let out = fresh (a.rate *. p.selectivity) "op" in
        connect a out a.rate;
        step (out :: acc) rest
    in
    frontier := step [] heads
  done;
  (* Terminate every pipeline in a sink; group a few pipelines per sink to
     model shared output tables. *)
  let heads = Array.of_list !frontier in
  Prng.shuffle rng heads;
  let group = 3 in
  let i = ref 0 in
  while !i < Array.length heads do
    let upto = min (Array.length heads) (!i + group) in
    let members = Array.sub heads !i (upto - !i) in
    let total = Array.fold_left (fun acc a -> acc +. a.rate) 0. members in
    let sink = fresh total "sink" in
    Array.iter (fun a -> connect a sink a.rate) members;
    i := upto
  done;
  let n = !next in
  let graph = Graph.of_edges n (List.rev !edges) in
  let graph = Hgp_graph.Traversal.ensure_connected graph rng in
  {
    graph;
    rates = Array.of_list (List.rev !rates);
    kinds = Array.of_list (List.rev !kinds);
    directed_edges = List.rev !edges;
  }

let to_instance w hierarchy ~load_factor =
  let n = Graph.n w.graph in
  let total_cap = Hgp_hierarchy.Hierarchy.total_capacity hierarchy in
  let total_rate = Array.fold_left ( +. ) 0. w.rates in
  let scale = load_factor *. total_cap /. total_rate in
  let cap = Hgp_hierarchy.Hierarchy.leaf_capacity hierarchy in
  let demands =
    Array.init n (fun v -> Float.min cap (Float.max 1e-6 (w.rates.(v) *. scale)))
  in
  Hgp_core.Instance.create w.graph ~demands hierarchy

let to_sim_workload w ~demands =
  let n = Graph.n w.graph in
  if Array.length demands <> n then invalid_arg "Stream_dag.to_sim_workload: demands";
  let sources = ref [] and sinks = ref [] in
  Array.iteri
    (fun v k ->
      if k = "source" then sources := (v, w.rates.(v)) :: !sources
      else if k = "sink" then sinks := v :: !sinks)
    w.kinds;
  {
    Hgp_sim.Des.n_tasks = n;
    sources = List.rev !sources;
    edges = w.directed_edges;
    rates = Array.copy w.rates;
    demands = Array.copy demands;
    sinks = List.rev !sinks;
  }
