module Prng = Hgp_util.Prng
module Gen = Hgp_graph.Generators
module Instance = Hgp_core.Instance

type spec = {
  name : string;
  build : Prng.t -> Hgp_hierarchy.Hierarchy.t -> Instance.t;
}

(* Uniform demands targeting [load_factor] of the hierarchy capacity, with
   each task clamped to one leaf capacity (small workloads on large
   hierarchies would otherwise be invalid; the realized load is lower). *)
let uniform_clamped g hy ~load_factor =
  let n = Hgp_graph.Graph.n g in
  let cap = Hgp_hierarchy.Hierarchy.leaf_capacity hy in
  let total_cap = Hgp_hierarchy.Hierarchy.total_capacity hy in
  let d = Float.min cap (load_factor *. total_cap /. float_of_int n) in
  Instance.create g ~demands:(Array.make n d) hy

let random_clamped rng g hy ~load_factor =
  let n = Hgp_graph.Graph.n g in
  let cap = Hgp_hierarchy.Hierarchy.leaf_capacity hy in
  let total_cap = Hgp_hierarchy.Hierarchy.total_capacity hy in
  let raw = Array.init n (fun _ -> 0.1 +. Prng.float rng 0.9) in
  let sum = Array.fold_left ( +. ) 0. raw in
  let scale = load_factor *. total_cap /. sum in
  Instance.create g ~demands:(Array.map (fun d -> Float.min cap (d *. scale)) raw) hy

let stream ~n_sources ~depth =
  {
    name = Printf.sprintf "stream(%dx%d)" n_sources depth;
    build =
      (fun rng hy ->
        let params =
          { Stream_dag.default_params with n_sources; pipeline_depth = depth }
        in
        let w = Stream_dag.generate rng params in
        Stream_dag.to_instance w hy ~load_factor:0.7);
  }

let mesh ~rows ~cols =
  {
    name = Printf.sprintf "mesh(%dx%d)" rows cols;
    build =
      (fun _rng hy ->
        let g = Gen.grid2d ~rows ~cols in
        uniform_clamped g hy ~load_factor:0.8);
  }

let gnp ~n ~p =
  {
    name = Printf.sprintf "gnp(%d,%.2f)" n p;
    build =
      (fun rng hy ->
        let g = Gen.gnp_connected rng n p in
        let g = Gen.randomize_weights rng g ~lo:1.0 ~hi:5.0 in
        random_clamped rng g hy ~load_factor:0.75);
  }

let powerlaw ~n =
  {
    name = Printf.sprintf "powerlaw(%d)" n;
    build =
      (fun rng hy ->
        let g = Gen.chung_lu rng ~n ~exponent:2.5 ~avg_degree:4.0 in
        let g = Hgp_graph.Traversal.ensure_connected g rng in
        uniform_clamped g hy ~load_factor:0.75);
  }

let small_suite =
  [
    stream ~n_sources:8 ~depth:4;
    mesh ~rows:6 ~cols:6;
    gnp ~n:40 ~p:0.15;
    powerlaw ~n:48;
  ]

let barbell ~clique ~bridge =
  {
    name = Printf.sprintf "barbell(%d,%d)" clique bridge;
    build =
      (fun _rng hy ->
        let g = Gen.barbell ~clique ~bridge in
        uniform_clamped g hy ~load_factor:0.7);
  }

let small_world ~n =
  {
    name = Printf.sprintf "smallworld(%d)" n;
    build =
      (fun rng hy ->
        let g = Gen.watts_strogatz rng ~n ~k:4 ~beta:0.15 in
        let g = Hgp_graph.Traversal.ensure_connected g rng in
        uniform_clamped g hy ~load_factor:0.7);
  }

let full_suite =
  small_suite @ [ barbell ~clique:10 ~bridge:4; small_world ~n:48 ]
