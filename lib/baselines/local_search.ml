module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance

type stats = {
  passes : int;
  moves : int;
  swaps : int;
  initial_cost : float;
  final_cost : float;
}

(* Cost of vertex v's incident edges when v sits on leaf [l]. *)
let incident_cost (inst : Instance.t) assignment v l =
  Graph.fold_neighbors
    (fun acc u w ->
      if u = v then acc
      else acc +. (w *. Hierarchy.edge_cost inst.hierarchy l assignment.(u)))
    0. inst.graph v

let refine (inst : Instance.t) p ~slack ~max_passes =
  let n = Instance.n inst in
  let hy = inst.hierarchy in
  let k = Hierarchy.num_leaves hy in
  let caps = Array.init k (fun l -> slack *. Hierarchy.leaf_cap hy l) in
  let assignment = Array.copy p in
  let loads = Array.make k 0. in
  Array.iteri (fun v l -> loads.(l) <- loads.(l) +. inst.demands.(v)) assignment;
  let initial_cost = Hgp_core.Cost.assignment_cost inst assignment in
  let moves = ref 0 and swaps = ref 0 and passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for v = 0 to n - 1 do
      let from = assignment.(v) in
      let here = incident_cost inst assignment v from in
      let d = inst.demands.(v) in
      (* Best move irrespective of capacity, and best feasible move. *)
      let best_leaf = ref from and best_gain = ref 0. in
      let best_any_leaf = ref from and best_any_gain = ref 0. in
      for l = 0 to k - 1 do
        if l <> from then begin
          let there = incident_cost inst assignment v l in
          let gain = here -. there in
          if gain > !best_any_gain +. 1e-12 then begin
            best_any_gain := gain;
            best_any_leaf := l
          end;
          if gain > !best_gain +. 1e-12 && loads.(l) +. d <= caps.(l) +. 1e-9 then begin
            best_gain := gain;
            best_leaf := l
          end
        end
      done;
      if !best_leaf <> from then begin
        assignment.(v) <- !best_leaf;
        loads.(from) <- loads.(from) -. d;
        loads.(!best_leaf) <- loads.(!best_leaf) +. d;
        incr moves;
        improved := true
      end
      else if !best_any_leaf <> from then begin
        (* Capacity-blocked: look for a profitable swap partner on the
           target leaf. *)
        let target = !best_any_leaf in
        let best_u = ref (-1) and best_swap_gain = ref 0. in
        for u = 0 to n - 1 do
          if assignment.(u) = target && u <> v then begin
            let du = inst.demands.(u) in
            if
              loads.(target) -. du +. d <= caps.(target) +. 1e-9
              && loads.(from) -. d +. du <= caps.(from) +. 1e-9
            then begin
              let u_here = incident_cost inst assignment u target in
              let u_there = incident_cost inst assignment u from in
              let gain_v = here -. incident_cost inst assignment v target in
              let gain_u = u_here -. u_there in
              (* A shared edge {u,v} keeps its cost after the swap (endpoints
                 trade places), but both naive gains assumed the other
                 endpoint fixed and credited its saving; subtract the double
                 count: 2 w (cm(lca(from,target)) - cm(h)). *)
              let wuv = Graph.edge_weight inst.graph u v in
              let correction =
                if wuv > 0. then
                  2. *. wuv
                  *. (Hierarchy.edge_cost hy from target
                     -. Hierarchy.cm hy (Hierarchy.height hy))
                else 0.
              in
              let gain = gain_v +. gain_u -. correction in
              if gain > !best_swap_gain +. 1e-12 then begin
                best_swap_gain := gain;
                best_u := u
              end
            end
          end
        done;
        if !best_u >= 0 then begin
          let u = !best_u in
          let du = inst.demands.(u) in
          assignment.(v) <- target;
          assignment.(u) <- from;
          loads.(from) <- loads.(from) -. d +. du;
          loads.(target) <- loads.(target) +. d -. du;
          incr swaps;
          improved := true
        end
      end
    done
  done;
  let final_cost = Hgp_core.Cost.assignment_cost inst assignment in
  (assignment, { passes = !passes; moves = !moves; swaps = !swaps; initial_cost; final_cost })

let repair (inst : Instance.t) p ~slack =
  let n = Instance.n inst in
  let hy = inst.hierarchy in
  let k = Hierarchy.num_leaves hy in
  let caps = Array.init k (fun l -> slack *. Hierarchy.leaf_cap hy l) in
  let assignment = Array.copy p in
  let loads = Array.make k 0. in
  Array.iteri (fun v l -> loads.(l) <- loads.(l) +. inst.demands.(v)) assignment;
  let overloaded l = loads.(l) > caps.(l) +. 1e-9 in
  let any_overloaded () =
    let bad = ref false in
    for l = 0 to k - 1 do
      if overloaded l then bad := true
    done;
    !bad
  in
  (* Repeatedly evict from the most overloaded leaf the vertex whose best
     feasible relocation costs the least extra communication. *)
  let progress = ref true in
  while !progress && any_overloaded () do
    progress := false;
    let worst = ref 0 in
    for l = 1 to k - 1 do
      if loads.(l) > loads.(!worst) then worst := l
    done;
    if overloaded !worst then begin
      let best = ref None in
      for v = 0 to n - 1 do
        if assignment.(v) = !worst then begin
          let here = incident_cost inst assignment v !worst in
          for l = 0 to k - 1 do
            if l <> !worst && loads.(l) +. inst.demands.(v) <= caps.(l) +. 1e-9 then begin
              let delta = incident_cost inst assignment v l -. here in
              match !best with
              | Some (_, _, d) when d <= delta -> ()
              | _ -> best := Some (v, l, delta)
            end
          done
        end
      done;
      match !best with
      | Some (v, l, _) ->
        loads.(!worst) <- loads.(!worst) -. inst.demands.(v);
        loads.(l) <- loads.(l) +. inst.demands.(v);
        assignment.(v) <- l;
        progress := true
      | None -> ()
    end
  done;
  let feasible = not (any_overloaded ()) in
  (assignment, feasible)
