(** Simple placement heuristics: random and greedy.

    Both return a full assignment even on tight instances: if no leaf has
    room, the least-overloaded leaf is used, so quality comparisons are
    always possible and the violation is reported separately by
    {!Hgp_core.Cost.max_violation}. *)

(** Vertex orders for {!greedy}. *)
type order =
  | Heavy_first  (** decreasing weighted degree (default) *)
  | Bfs  (** BFS from the heaviest vertex — follows communication locality *)
  | Demand_first  (** decreasing demand — packs the big rocks first *)

(** [random rng inst ~slack] shuffles the vertices and assigns each to a
    uniformly random leaf with room (under [slack] times that leaf's own
    capacity),
    falling back to the least-loaded leaf. *)
val random : Hgp_util.Prng.t -> Hgp_core.Instance.t -> slack:float -> int array

(** [greedy inst ?order ~slack] places each vertex on the leaf minimizing the
    incremental Equation-1 cost against already-placed neighbors, among
    leaves with room; ties prefer the least-loaded leaf. *)
val greedy : Hgp_core.Instance.t -> ?order:order -> slack:float -> unit -> int array
