module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Cost = Hgp_core.Cost
module Solver = Hgp_core.Solver
module Obs = Hgp_obs.Obs

type entry = {
  name : string;
  assignment : int array;
  cost : float;
  violation : float;
}

type result = {
  best : entry;
  entries : entry list;
}

let solve ?(solver_options = Solver.default_options) ?(include_hgp = true) rng
    (inst : Instance.t) ~slack ~refine_passes =
  let k = Hierarchy.num_leaves inst.hierarchy in
  let capacity = slack *. Hierarchy.leaf_capacity inst.hierarchy in
  let candidates =
    [
      ("greedy", fun () -> Placement.greedy inst ~slack ());
      ( "kbgp+map",
        fun () ->
          let parts =
            (Multilevel.partition rng inst.graph ~demands:inst.demands ~k ~capacity).parts
          in
          Mapping.optimize inst ~parts ~k );
      ("dual-recursive", fun () -> Recursive_bisection.assign rng inst ~slack);
    ]
    @
    if include_hgp then
      [ ("hgp", fun () -> (Solver.solve ~options:solver_options inst).assignment) ]
    else []
  in
  let entries =
    List.map
      (fun (name, f) ->
        Obs.span ("portfolio.candidate." ^ name) @@ fun () ->
        let raw = f () in
        let repaired, _ = Local_search.repair inst raw ~slack in
        let refined, _ =
          Local_search.refine inst repaired ~slack ~max_passes:refine_passes
        in
        {
          name;
          assignment = refined;
          cost = Cost.assignment_cost inst refined;
          violation = Cost.max_violation inst refined;
        })
      candidates
  in
  let entries = List.sort (fun a b -> compare a.cost b.cost) entries in
  let within = List.filter (fun e -> e.violation <= slack +. 1e-9) entries in
  let best =
    match within with
    | e :: _ -> e
    | [] ->
      List.fold_left
        (fun acc e -> if e.violation < acc.violation then e else acc)
        (List.hd entries) entries
  in
  { best; entries }
