module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Prng = Hgp_util.Prng

type order = Heavy_first | Bfs | Demand_first

let least_loaded loads =
  let best = ref 0 in
  for l = 1 to Array.length loads - 1 do
    if loads.(l) < loads.(!best) then best := l
  done;
  !best

let random rng (inst : Instance.t) ~slack =
  let n = Instance.n inst in
  let k = Hierarchy.num_leaves inst.hierarchy in
  let caps =
    Array.init k (fun l -> slack *. Hierarchy.leaf_cap inst.hierarchy l)
  in
  let order = Prng.permutation rng n in
  let assignment = Array.make n (-1) in
  let loads = Array.make k 0. in
  Array.iter
    (fun v ->
      let d = inst.demands.(v) in
      (* Try a few random leaves, then fall back to least-loaded. *)
      let placed = ref false in
      let attempts = ref 0 in
      while (not !placed) && !attempts < 4 * k do
        let l = Prng.int rng k in
        if loads.(l) +. d <= caps.(l) +. 1e-9 then begin
          assignment.(v) <- l;
          loads.(l) <- loads.(l) +. d;
          placed := true
        end;
        incr attempts
      done;
      if not !placed then begin
        let l = least_loaded loads in
        assignment.(v) <- l;
        loads.(l) <- loads.(l) +. d
      end)
    order;
  assignment

let vertex_order (inst : Instance.t) = function
  | Heavy_first ->
    let order = Array.init (Instance.n inst) (fun i -> i) in
    Array.sort
      (fun a b ->
        compare
          (Graph.weighted_degree inst.graph b)
          (Graph.weighted_degree inst.graph a))
      order;
    order
  | Demand_first ->
    let order = Array.init (Instance.n inst) (fun i -> i) in
    Array.sort (fun a b -> compare inst.demands.(b) inst.demands.(a)) order;
    order
  | Bfs ->
    let n = Instance.n inst in
    let heaviest = ref 0 in
    for v = 1 to n - 1 do
      if Graph.weighted_degree inst.graph v > Graph.weighted_degree inst.graph !heaviest
      then heaviest := v
    done;
    let order = Hgp_graph.Traversal.bfs_order inst.graph !heaviest in
    if Array.length order = n then order
    else begin
      (* Disconnected graph: append unreachable vertices. *)
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) order;
      let rest = List.filter (fun v -> not seen.(v)) (List.init n (fun i -> i)) in
      Array.append order (Array.of_list rest)
    end

let greedy (inst : Instance.t) ?(order = Heavy_first) ~slack () =
  let n = Instance.n inst in
  let hy = inst.hierarchy in
  let k = Hierarchy.num_leaves hy in
  let caps = Array.init k (fun l -> slack *. Hierarchy.leaf_cap hy l) in
  let assignment = Array.make n (-1) in
  let loads = Array.make k 0. in
  let sequence = vertex_order inst order in
  Array.iter
    (fun v ->
      let d = inst.demands.(v) in
      let best_leaf = ref (-1) in
      let best_cost = ref infinity in
      let best_load = ref infinity in
      for l = 0 to k - 1 do
        if loads.(l) +. d <= caps.(l) +. 1e-9 then begin
          let c =
            Graph.fold_neighbors
              (fun acc u w ->
                if assignment.(u) >= 0 then acc +. (w *. Hierarchy.edge_cost hy l assignment.(u))
                else acc)
              0. inst.graph v
          in
          if c < !best_cost -. 1e-12 || (c < !best_cost +. 1e-12 && loads.(l) < !best_load)
          then begin
            best_cost := c;
            best_leaf := l;
            best_load := loads.(l)
          end
        end
      done;
      let l = if !best_leaf >= 0 then !best_leaf else least_loaded loads in
      assignment.(v) <- l;
      loads.(l) <- loads.(l) +. d)
    sequence;
  assignment
