module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance

let assign rng (inst : Instance.t) ~slack =
  let hy = inst.hierarchy in
  let h = Hierarchy.height hy in
  let assignment = Array.make (Instance.n inst) (-1) in
  (* vertices: original vertex ids currently routed to hierarchy node
     (level, idx). *)
  let rec descend level idx vertices =
    if Array.length vertices > 0 then begin
      if level = h then Array.iter (fun v -> assignment.(v) <- idx) vertices
      else begin
        let deg = Hierarchy.deg_of hy ~level idx in
        let sub, back = Graph.induced inst.graph vertices in
        let demands = Array.map (fun v -> inst.demands.(v)) vertices in
        let first_child, _ = Hierarchy.children_of hy ~level idx in
        (* Each child subtree gets its own capacity bound; on regular trees
           all children agree and this collapses to the historical single
           [slack * capacity(level+1)] bound. *)
        let capacities =
          Array.init deg (fun b ->
              slack *. Hierarchy.capacity_of hy ~level:(level + 1) (first_child + b))
        in
        let result =
          Multilevel.partition rng ~capacities sub ~demands ~k:deg
            ~capacity:capacities.(0)
        in
        let groups = Array.make deg [] in
        Array.iteri
          (fun i p -> groups.(p) <- back.(i) :: groups.(p))
          result.Multilevel.parts;
        Array.iteri
          (fun b members -> descend (level + 1) (first_child + b) (Array.of_list members))
          groups
      end
    end
  in
  descend 0 0 (Array.init (Instance.n inst) (fun i -> i));
  assignment
