(** Exact HGP by branch-and-bound — ground truth for tiny instances.

    Enumerates assignments vertex by vertex (heaviest weighted degree first),
    pruning branches that exceed leaf capacities or the best cost found so
    far.  Exponential: intended for [n <= ~10] with small hierarchies. *)

(** [exact inst ~slack] returns [(assignment, cost)] minimizing the
    Equation-1 cost over assignments where every leaf [l]'s load is at most
    [slack *. leaf_cap hy l], or [None] when no such assignment exists.
    [slack = 1.0] is the strict problem. *)
val exact : Hgp_core.Instance.t -> slack:float -> (int array * float) option

(** [exact_or_fail inst ~slack] unwraps {!exact}.
    @raise Failure when infeasible. *)
val exact_or_fail : Hgp_core.Instance.t -> slack:float -> int array * float
