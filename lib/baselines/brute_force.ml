module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance

let exact (inst : Instance.t) ~slack =
  let g = inst.graph in
  let hy = inst.hierarchy in
  let n = Graph.n g in
  let k = Hierarchy.num_leaves hy in
  let caps = Array.init k (fun l -> slack *. Hierarchy.leaf_cap hy l) in
  (* Heaviest vertices first: better pruning. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (Graph.weighted_degree g b) (Graph.weighted_degree g a))
    order;
  let assignment = Array.make n (-1) in
  let loads = Array.make k 0. in
  let best_cost = ref infinity in
  let best_assignment = ref None in
  let rec go i partial_cost =
    if partial_cost < !best_cost then begin
      if i = n then begin
        best_cost := partial_cost;
        best_assignment := Some (Array.copy assignment)
      end
      else begin
        let v = order.(i) in
        for leaf = 0 to k - 1 do
          if loads.(leaf) +. inst.demands.(v) <= caps.(leaf) +. 1e-9 then begin
            (* Incremental cost: edges to already-placed neighbors. *)
            let delta =
              Graph.fold_neighbors
                (fun acc u w ->
                  if assignment.(u) >= 0 then
                    acc +. (w *. Hierarchy.edge_cost hy leaf assignment.(u))
                  else acc)
                0. g v
            in
            assignment.(v) <- leaf;
            loads.(leaf) <- loads.(leaf) +. inst.demands.(v);
            go (i + 1) (partial_cost +. delta);
            loads.(leaf) <- loads.(leaf) -. inst.demands.(v);
            assignment.(v) <- -1
          end
        done
      end
    end
  in
  go 0 0.;
  match !best_assignment with
  | Some a -> Some (a, !best_cost)
  | None -> None

let exact_or_fail inst ~slack =
  match exact inst ~slack with
  | Some r -> r
  | None -> failwith "Brute_force.exact_or_fail: infeasible instance"
