module Graph = Hgp_graph.Graph
module Prng = Hgp_util.Prng

type result = {
  parts : int array;
  cut : float;
  levels : int;
}

(* One coarsening step: heavy-edge matching.  Returns the coarse graph, the
   coarse demands, and the fine->coarse vertex map.  Delegates to the shared
   CSR matching kernel (the multilevel V-cycle's coarsener) with no weight
   cap — [Hgp_multilevel.Coarsen] reproduces this module's historical
   traversal, tie-breaking and id-assignment bit-for-bit, so fixed-seed
   baselines results are unchanged. *)
let coarsen rng g demands =
  let csr = Hgp_graph.Csr.of_graph ~vwgt:demands g in
  let coarse_id, coarse_csr =
    Hgp_multilevel.Coarsen.step rng csr ~max_weight:infinity
  in
  let nc = Hgp_graph.Csr.n coarse_csr in
  let coarse_demands = Array.init nc (Hgp_graph.Csr.vertex_weight coarse_csr) in
  (Hgp_graph.Csr.to_graph coarse_csr, coarse_demands, coarse_id)

(* Initial partition on the coarsest graph: chunk a BFS ordering into k
   contiguous groups of roughly equal demand — or, with heterogeneous part
   capacities, demand proportional to each part's capacity share.  BFS
   contiguity gives locality (low cut); chunking guarantees every part is
   used and balanced. *)
let initial_partition rng g demands k caps =
  let n = Graph.n g in
  let src = Prng.int rng (max 1 n) in
  let bfs = Hgp_graph.Traversal.bfs_order g src in
  let order =
    if Array.length bfs = n then bfs
    else begin
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) bfs;
      let rest = List.filter (fun v -> not seen.(v)) (List.init n (fun i -> i)) in
      Array.append bfs (Array.of_list rest)
    end
  in
  let total = Array.fold_left ( +. ) 0. demands in
  let uniform = Array.for_all (fun c -> c = caps.(0)) caps in
  let cap_tail =
    (* cap_tail.(p) = sum of capacities of parts p..k-1, for proportional
       targets on heterogeneous parts. *)
    let t = Array.make (k + 1) 0. in
    for p = k - 1 downto 0 do
      t.(p) <- t.(p + 1) +. caps.(p)
    done;
    t
  in
  let parts = Array.make n 0 in
  let current = ref 0 in
  let acc = ref 0. in
  let assigned = ref 0. in
  Array.iter
    (fun v ->
      let remaining_parts = k - !current in
      let remaining_demand = total -. !assigned +. !acc in
      let ideal =
        if uniform then remaining_demand /. float_of_int remaining_parts
        else remaining_demand *. caps.(!current) /. cap_tail.(!current)
      in
      if !acc >= ideal -. 1e-12 && !acc > 0. && !current < k - 1 then begin
        incr current;
        acc := 0.
      end;
      parts.(v) <- !current;
      acc := !acc +. demands.(v);
      assigned := !assigned +. demands.(v))
    order;
  parts

let flat_cut g parts = Hgp_graph.Cuts.kway_cut g parts

let flat_refine rng g ~demands ~k ~caps parts ~max_passes =
  let n = Graph.n g in
  let parts = Array.copy parts in
  let loads = Array.make k 0. in
  Array.iteri (fun v p -> loads.(p) <- loads.(p) +. demands.(v)) parts;
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    let order = Prng.permutation rng n in
    Array.iter
      (fun v ->
        let from = parts.(v) in
        (* Connectivity to each part. *)
        let conn = Hashtbl.create 8 in
        Graph.iter_neighbors
          (fun u w ->
            let p = parts.(u) in
            let prev = try Hashtbl.find conn p with Not_found -> 0. in
            Hashtbl.replace conn p (prev +. w))
          g v;
        let here = try Hashtbl.find conn from with Not_found -> 0. in
        let d = demands.(v) in
        let best_p = ref from and best_gain = ref 1e-12 in
        Hashtbl.iter
          (fun p there ->
            if p <> from then begin
              let gain = there -. here in
              let fits = loads.(p) +. d <= caps.(p) +. 1e-9 in
              (* Allow the move when the target fits, or when it strictly
                 improves balance of an overloaded source. *)
              let balance_ok = fits || loads.(p) +. d < loads.(from) in
              if gain > !best_gain && balance_ok then begin
                best_gain := gain;
                best_p := p
              end
            end)
          conn;
        if !best_p <> from then begin
          loads.(from) <- loads.(from) -. d;
          loads.(!best_p) <- loads.(!best_p) +. d;
          parts.(v) <- !best_p;
          improved := true
        end)
      order
  done;
  (parts, flat_cut g parts)

let partition rng ?capacities g ~demands ~k ~capacity =
  if k < 1 then invalid_arg "Multilevel.partition: k must be >= 1";
  if Array.length demands <> Graph.n g then invalid_arg "Multilevel.partition: demands length";
  let caps =
    match capacities with
    | None -> Array.make k capacity
    | Some c ->
      if Array.length c <> k then invalid_arg "Multilevel.partition: capacities length";
      c
  in
  if k = 1 then { parts = Array.make (Graph.n g) 0; cut = 0.; levels = 0 }
  else begin
    (* Coarsening phase: keep (fine graph, fine demands, fine->coarse map)
       per level, head = deepest transition. *)
    let stop_at = max (3 * k) 24 in
    let rec shrink g demands acc =
      if Graph.n g <= stop_at || List.length acc > 40 then (g, demands, acc)
      else begin
        let cg, cd, cmap = coarsen rng g demands in
        if Graph.n cg >= Graph.n g then (g, demands, acc)
        else shrink cg cd ((g, demands, cmap) :: acc)
      end
    in
    let cg, cd, chain = shrink g demands [] in
    let coarse_parts = initial_partition rng cg cd k caps in
    let coarse_parts, _ =
      flat_refine rng cg ~demands:cd ~k ~caps coarse_parts ~max_passes:8
    in
    (* Uncoarsening: project through each stored level and refine there. *)
    let parts =
      List.fold_left
        (fun parts (fine_g, fine_d, cmap) ->
          let fine_parts = Array.map (fun c -> parts.(c)) cmap in
          let refined, _ =
            flat_refine rng fine_g ~demands:fine_d ~k ~caps fine_parts ~max_passes:4
          in
          refined)
        coarse_parts chain
    in
    { parts; cut = flat_cut g parts; levels = List.length chain }
  end
