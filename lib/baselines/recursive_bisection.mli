(** Dual recursive bipartitioning (Pellegrini / SCOTCH style).

    The hierarchy is descended top-down; at each Level-(j) node its vertex
    load is split into one group per child with the multilevel partitioner
    (minimizing the flat cut at that level, each group targeting that
    child's own capacity), and
    each group recurses into one child.  This is the strongest classical
    heuristic for the mapping problem and the main competitor in
    experiment E7. *)

(** [assign rng inst ~slack] returns the vertex->leaf assignment. *)
val assign : Hgp_util.Prng.t -> Hgp_core.Instance.t -> slack:float -> int array
