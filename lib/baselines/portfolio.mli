(** Portfolio solver: run the approximation algorithm and the classical
    heuristics, refine each with hierarchy-aware local search, and return the
    best assignment found — the pragmatic "production" entry point that
    combines the paper's guarantee with heuristic polish.

    Candidates: the HGP solver (Theorem 1 pipeline), greedy placement,
    multilevel k-BGP with optimized part-to-leaf mapping, and dual recursive
    bipartitioning.  Every candidate is post-processed by
    {!Local_search.refine} under the given slack. *)

type entry = {
  name : string;
  assignment : int array;
  cost : float;
  violation : float;
}

type result = {
  best : entry;  (** lowest cost among candidates within the slack *)
  entries : entry list;  (** every candidate, sorted by cost *)
}

(** [solve ?solver_options ?include_hgp rng inst ~slack ~refine_passes] runs
    the whole portfolio.  When no candidate respects [slack], the
    lowest-violation one wins instead.  [include_hgp] (default [true]) also
    runs the Theorem-1 solver; the supervised solve's degradation ladder
    passes [false], since by the time the portfolio is a fallback the
    pipeline has already failed. *)
val solve :
  ?solver_options:Hgp_core.Solver.options ->
  ?include_hgp:bool ->
  Hgp_util.Prng.t ->
  Hgp_core.Instance.t ->
  slack:float ->
  refine_passes:int ->
  result
