(** Hierarchy-aware local search: move/swap refinement of an assignment.

    A Fiduccia–Mattheyses-flavoured pass over the vertices: each vertex is
    tentatively moved to the leaf minimizing its incident Equation-1 cost
    subject to the capacity slack; when a beneficial move is blocked by
    capacity, beneficial pairwise swaps are tried.  Passes repeat until no
    improvement or [max_passes].  Cost strictly decreases across passes, so
    the procedure terminates.

    Useful both as a standalone heuristic (from a greedy/random start) and as
    a post-pass on any solution, including the approximation algorithm's. *)

type stats = {
  passes : int;
  moves : int;
  swaps : int;
  initial_cost : float;
  final_cost : float;
}

(** [refine inst p ~slack ~max_passes] returns the improved assignment and
    statistics.  [p] is not mutated. *)
val refine :
  Hgp_core.Instance.t -> int array -> slack:float -> max_passes:int -> int array * stats

(** [repair inst p ~slack] restores per-leaf capacity (each leaf within
    [slack] times its own capacity) by moving the cheapest-to-move vertices off
    overloaded leaves onto feasible leaves with minimal cost increase.
    Returns the repaired assignment and whether it is now within slack
    (repair can fail only when total demand genuinely exceeds
    [slack * capacity]).  [p] is not mutated. *)
val repair : Hgp_core.Instance.t -> int array -> slack:float -> int array * bool
