(** Multilevel flat k-way graph partitioning (the METIS recipe): heavy-edge
    matching coarsening, greedy initial partitioning on the coarsest graph,
    then boundary Kernighan–Lin/FM refinement while projecting back up.

    This is the classical k-Balanced Graph Partitioning solver the paper
    generalizes; it optimizes the {e flat} cut (every crossing edge costs its
    weight) and is the "hierarchy-blind" baseline of experiment E7. *)

type result = {
  parts : int array;  (** vertex -> part id in [0..k-1] *)
  cut : float;  (** flat cut weight *)
  levels : int;  (** coarsening levels used *)
}

(** [partition rng g ~demands ~k ~capacity] computes a k-way partition whose
    part loads aim to stay within [capacity] (best effort; the refinement
    never makes an over-capacity part worse).  With [?capacities] (length
    [k]) each part gets its own bound and the initial chunking targets
    demand proportional to capacity share — the heterogeneous-hierarchy
    case; [capacity] is then ignored.  Requires [k >= 1] and
    [Array.length demands = Graph.n g]. *)
val partition :
  Hgp_util.Prng.t ->
  ?capacities:float array ->
  Hgp_graph.Graph.t ->
  demands:float array ->
  k:int ->
  capacity:float ->
  result

(** [flat_refine rng g ~demands ~k ~caps parts ~max_passes] runs only the
    FM move pass on an existing partition (exposed for reuse and tests);
    [caps] gives the per-part load bound.  Returns the refined copy and its
    cut. *)
val flat_refine :
  Hgp_util.Prng.t ->
  Hgp_graph.Graph.t ->
  demands:float array ->
  k:int ->
  caps:float array ->
  int array ->
  max_passes:int ->
  int array * float
