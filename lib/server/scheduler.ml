module Fingerprint = Hgp_util.Fingerprint
module Domain_pool = Hgp_util.Domain_pool
module Obs = Hgp_obs.Obs

type stats = { steals : int; per_shard : int array }

let shard_of_fingerprint (fp : Fingerprint.t) ~shards =
  if shards < 1 then invalid_arg "Scheduler.shard_of_fingerprint: shards < 1";
  Int64.to_int (Int64.rem (Int64.logand fp Int64.max_int) (Int64.of_int shards))

(* A shard's home queue: indices into the item array, sorted by priority at
   dispatch (the batch is fully known up front, so no heap is needed).  The
   owner takes from the front, thieves from the back. *)
type deque = {
  lock : Mutex.t;
  items : int array;
  mutable front : int;
  mutable back : int;  (* exclusive *)
}

let take_front d =
  Mutex.lock d.lock;
  let r =
    if d.front < d.back then begin
      let i = d.items.(d.front) in
      d.front <- d.front + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let take_back d =
  Mutex.lock d.lock;
  let r =
    if d.front < d.back then begin
      d.back <- d.back - 1;
      Some d.items.(d.back)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let run ~pool ~shards ~shard_of ~priority_of ~f items =
  let n = Array.length items in
  if n = 0 then ([||], { steals = 0; per_shard = [||] })
  else begin
    let shards = max 1 (min shards n) in
    (* Partition into home shards, preserving submission order per shard. *)
    let buckets = Array.make shards [] in
    for i = n - 1 downto 0 do
      let s = shard_of_fingerprint (shard_of items.(i)) ~shards in
      buckets.(s) <- i :: buckets.(s)
    done;
    let per_shard = Array.map List.length buckets in
    let deques =
      Array.map
        (fun idxs ->
          (* Higher priority first; [stable_sort] keeps submission order
             inside a priority class. *)
          let sorted =
            List.stable_sort
              (fun a b -> compare (priority_of items.(b)) (priority_of items.(a)))
              idxs
          in
          let arr = Array.of_list sorted in
          { lock = Mutex.create (); items = arr; front = 0; back = Array.length arr })
        buckets
    in
    let results = Array.make n None in
    let steals = Atomic.make 0 in
    let exec i =
      let r = try Ok (f items.(i)) with exn -> Error exn in
      results.(i) <- Some r
    in
    let runner s () =
      let rec own () =
        match take_front deques.(s) with
        | Some i ->
          exec i;
          own ()
        | None -> steal 1
      and steal d =
        if d < shards then begin
          match take_back deques.((s + d) mod shards) with
          | Some i ->
            Atomic.incr steals;
            exec i;
            (* Sweep again from the top: re-checking the (empty) home queue
               is one mutex op, and the next theft should again prefer the
               nearest sibling. *)
            own ()
          | None -> steal (d + 1)
        end
      in
      own ()
    in
    let slots = Domain_pool.run_batch pool (Array.init shards runner) in
    (* A runner slot only errors if the runner itself died outside the
       per-item fence — surface that instead of silently losing items. *)
    Array.iter (function Ok () -> () | Error exn -> raise exn) slots;
    let stolen = Atomic.get steals in
    if stolen > 0 then Obs.count "server.steals" stolen;
    let results =
      Array.map
        (function
          | Some r -> r
          | None -> Error (Failure "Scheduler.run: item never executed"))
        results
    in
    (results, { steals = stolen; per_shard })
  end
