(** Sharded, cache-affine batch scheduler with work stealing.

    A batch of items is partitioned into [shards] home queues by a
    fingerprint ({!shard_of_fingerprint}), so items with equal keys — and
    therefore interchangeable cached artifacts — always share a home shard
    and run back-to-back on the same worker, turning the process-wide
    [Ensemble_cache] / packed-solution LRUs into per-shard warm caches.
    Within a shard, items run in priority order (higher first; ties keep
    submission order).

    Affinity alone strands workers when the key distribution is skewed, so
    idle runners {e steal from the back} of sibling queues — the lowest
    priority, latest-arrival end — bounding the tail at the cost of a
    cold-cache execution for the stolen item.  Steals are counted
    ([server.steals] and {!stats}).

    Execution rides the existing {!Hgp_util.Domain_pool}: one runner task per
    shard is dispatched via [run_batch], inheriting its per-slot crash
    capture, its inline fallback when domains are unavailable, and its
    "no task outlives the call" guarantee.  Every item is additionally
    fenced: an item that raises fills its own slot with [Error] and the
    runner moves on — one poisoned request never takes down its shard. *)

type stats = {
  steals : int;  (** items executed away from their home shard *)
  per_shard : int array;
      (** items {e assigned} to each home shard (length = effective shard
          count) — deterministic, unlike who executed them *)
}

(** Deterministic home shard of a fingerprint, [0 <= result < shards]. *)
val shard_of_fingerprint : Hgp_util.Fingerprint.t -> shards:int -> int

(** [run ~pool ~shards ~shard_of ~priority_of ~f items] executes [f] on every
    item and returns per-item results in input order, plus scheduling stats.
    The effective shard count is [min shards (Array.length items)], at least
    1.  Blocks until every item completed; at most [Domain_pool.size pool]
    items run concurrently. *)
val run :
  pool:Hgp_util.Domain_pool.t ->
  shards:int ->
  shard_of:('a -> Hgp_util.Fingerprint.t) ->
  priority_of:('a -> int) ->
  f:('a -> 'b) ->
  'a array ->
  ('b, exn) result array * stats
