(** JSON-lines request/response protocol for the batch solve service.

    One request per line, one response per line, UTF-8, no framing beyond the
    newline — the format a load generator, a shell pipe and a log ingester
    all speak.  Instances travel {e inline} (the [Instance_io] text format
    embedded as a JSON string, so the whole request is self-contained and
    replayable) or by [path] reference to an instance file on disk.

    Request schema (unknown fields are ignored for forward compatibility):
    {v
      {"id":"r1", "instance":"%hgp-instance 1\n...", "trees":4, "seed":42,
       "eps":0.25, "resolution":null, "deadline_ms":250.0, "priority":0}
    v}
    Only ["id"] and one of ["instance"] / ["path"] are required; the other
    fields default as shown.  Floats are serialized with ["%.17g"], so a
    request that round-trips through {!request_to_line} / {!parse_request}
    resolves to the {e same} {!Hgp_util.Fingerprint.t} — the scheduler's
    shard affinity and the artifact caches depend on this (property-tested).

    Response schema:
    {v
      {"id":"r1","status":"ok","cost":C,"violation":V,"rung":"ensemble",
       "degraded":false,"tree_failures":0,"cache_hit":true,"dp_states":N,
       "cached_dp_states":M,"queue_ms":Q,"solve_ms":S,"assignment":[l0,...]}
      {"id":"r2","status":"error","error":"deadline","message":"...",
       "queue_ms":Q,"solve_ms":0.000}
    v}
    ["error"] is {!Hgp_resilience.Hgp_error.label} — the same stable class
    names the CLI exit codes use.  Errors are per-request, never fatal to the
    service (see [docs/SERVING.md]). *)

module Fingerprint = Hgp_util.Fingerprint
module Hgp_error = Hgp_resilience.Hgp_error

(** {1 Minimal JSON}

    The toolkit deliberately carries no JSON dependency; this is the same
    subset the [Obs] JSON-lines sink emits, plus a parser for it. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(** [parse_json s] parses one complete JSON value ([Error] carries an offset
    diagnostic).  Handles the standard escapes incl. [\uXXXX] (encoded to
    UTF-8; surrogate pairs are not supported — the writer never emits them). *)
val parse_json : string -> (json, string) result

(** {1 Requests} *)

type source =
  | Inline of string  (** [Instance_io] text embedded in the request *)
  | Path of string  (** instance file on the server's disk *)

type request = {
  id : string;
  source : source;
  trees : int;  (** ensemble size; default 4 *)
  seed : int;  (** default 42 *)
  eps : float;  (** default 0.25 *)
  resolution : int option;  (** default: derived from eps *)
  deadline_ms : float option;  (** per-request budget incl. queue wait *)
  priority : int;  (** higher first within a shard; default 0 *)
  session : string option;
      (** when set, a successful solve opens (or replaces) a named
          incremental session on the server which later [update] requests
          target (docs/INCREMENTAL.md); default [None] *)
}

(** [request ~id source] with the documented defaults. *)
val request :
  id:string ->
  ?trees:int ->
  ?seed:int ->
  ?eps:float ->
  ?resolution:int ->
  ?deadline_ms:float ->
  ?priority:int ->
  ?session:string ->
  source ->
  request

(** [inline_request ~id inst] embeds [Instance_io.to_string inst]. *)
val inline_request :
  id:string ->
  ?trees:int ->
  ?seed:int ->
  ?eps:float ->
  ?resolution:int ->
  ?deadline_ms:float ->
  ?priority:int ->
  ?session:string ->
  Hgp_core.Instance.t ->
  request

val parse_request : string -> (request, string) result

(** One line, no trailing newline. *)
val request_to_line : request -> string

(** {1 Update requests}

    A delta against a named session opened by an earlier solve request:
    {v
      {"id":"u1","session":"s1","delta":"%hgp-delta 1\n...","deadline_ms":50.0}
    v}
    The delta travels inline in the [Hgp_core.Delta] text format.  A line is
    classified as an update iff it carries a ["delta"] field ({!parse_any}). *)

type update_request = {
  u_id : string;
  u_session : string;  (** must match a solve request's [session] *)
  u_delta : string;  (** [Hgp_core.Delta] text, parsed at execution *)
  u_deadline_ms : float option;
}

val update_request :
  id:string -> session:string -> ?deadline_ms:float -> string -> update_request

type any_request = Solve of request | Update of update_request

(** [parse_any line] dispatches on the presence of a ["delta"] field. *)
val parse_any : string -> (any_request, string) result

(** One line, no trailing newline; round-trips through {!parse_any}. *)
val update_to_line : update_request -> string

(** {1 Resolution}

    Parsing the embedded instance and deriving the affinity key happens once
    at admission, not per scheduler touch. *)

type resolved = {
  request : request;
  inst : Hgp_core.Instance.t;
  key : Fingerprint.t;
      (** digests instance content (graph ⊕ demands ⊕ hierarchy) ⊕ trees ⊕
          seed ⊕ eps ⊕ resolution — exactly the solve-artifact determinants,
          so equal keys mean interchangeable solves.  [deadline_ms] and
          [priority] are deliberately excluded. *)
  options : Hgp_core.Solver.options;
      (** derived solver options; [parallel] is forced off — the server
          parallelizes {e across} requests, not within one *)
}

(** [resolve r] parses/loads the instance and computes the affinity key.
    Errors are the structured [Parse] / [Io_error] taxonomy. *)
val resolve : request -> (resolved, Hgp_error.t) result

(** {1 Responses} *)

type solved = {
  cost : float;
  violation : float;
  rung : string;
  degraded : bool;
  tree_failures : int;
  cache_hit : bool;
      (** served from the packed-solution cache or coalesced onto an
          identical in-flight request *)
  dp_states : int;
  cached_dp_states : int;
  assignment : int array;
}

(** Result of an update request: status ["updated"], with incremental-work
    and churn accounting.  [up_incremental] is false when the delta was
    structural and the server fell back to a full re-solve inside the
    session. *)
type updated = {
  up_cost : float;
  up_violation : float;
  up_churn : float;  (** fraction of vertices whose leaf changed *)
  up_resolved_subtrees : int;
  up_reused_subtrees : int;
  up_incremental : bool;
  up_certified : bool;
  up_assignment : int array;
}

type outcome = Solved of solved | Updated of updated | Failed of Hgp_error.t

type response = {
  id : string;
  outcome : outcome;
  queue_ms : float;  (** admission → dispatch (or rejection) *)
  solve_ms : float;  (** 0 for rejections and coalesced followers *)
}

(** One line, no trailing newline.  Field order is fixed (golden-tested). *)
val response_to_line : response -> string
