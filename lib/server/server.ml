module Fingerprint = Hgp_util.Fingerprint
module Domain_pool = Hgp_util.Domain_pool
module Prng = Hgp_util.Prng
module Obs = Hgp_obs.Obs
module Hgp_error = Hgp_resilience.Hgp_error
module Solver = Hgp_core.Solver
module B = Hgp_baselines

let log_src = Logs.Src.create "hgp.server" ~doc:"HGP batch solve service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = { workers : int; queue_limit : int; slack : float }

let default_config =
  {
    workers = max 1 (Domain.recommended_domain_count () - 1);
    queue_limit = 256;
    slack = 1.25;
  }

type stats = {
  submitted : int;
  admitted : int;
  rejected_overloaded : int;
  rejected_resolve : int;
  deadline_expired : int;
  coalesced : int;
  ok : int;
  errors : int;
  degraded : int;
  cache_hits : int;
  steals : int;
  batches : int;
}

let zero_stats =
  {
    submitted = 0;
    admitted = 0;
    rejected_overloaded = 0;
    rejected_resolve = 0;
    deadline_expired = 0;
    coalesced = 0;
    ok = 0;
    errors = 0;
    degraded = 0;
    cache_hits = 0;
    steals = 0;
    batches = 0;
  }

type pending = { resolved : Protocol.resolved; submit_ns : int64; index : int }

type t = {
  config : config;
  pool : Domain_pool.t;
  mutex : Mutex.t;
  mutable queue : pending list;  (* newest first *)
  mutable queued : int;
  mutable next_index : int;
  mutable stopping : bool;
  mutable stats : stats;
  coalesced_live : int Atomic.t;  (* bumped on worker domains, folded in [stats] *)
}

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_limit < 1 then invalid_arg "Server.create: queue_limit must be >= 1";
  {
    config;
    pool = Domain_pool.create ~size:config.workers;
    mutex = Mutex.create ();
    queue = [];
    queued = 0;
    next_index = 0;
    stopping = false;
    stats = zero_stats;
    coalesced_live = Atomic.make 0;
  }

let config t = t.config

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let pending t = with_lock t (fun () -> t.queued)

let stats t =
  with_lock t (fun () -> { t.stats with coalesced = Atomic.get t.coalesced_live })

let render_stats (s : stats) =
  Printf.sprintf
    "submitted=%d admitted=%d overloaded=%d resolve_rejects=%d deadline=%d \
     coalesced=%d ok=%d errors=%d degraded=%d cache_hits=%d steals=%d batches=%d"
    s.submitted s.admitted s.rejected_overloaded s.rejected_resolve s.deadline_expired
    s.coalesced s.ok s.errors s.degraded s.cache_hits s.steals s.batches

(* The same degradation ladder the CLI's one-shot solve installs: the refined
   heuristic portfolio (sans the hgp candidate — it just failed above), then
   plain dual recursive bisection; each with a fresh deterministic rng so a
   request's answer does not depend on its neighbours. *)
let ladder_fallbacks ~slack ~seed =
  [
    ( "portfolio",
      fun inst ->
        (B.Portfolio.solve ~include_hgp:false (Prng.create seed) inst ~slack
           ~refine_passes:2)
          .best
          .B.Portfolio.assignment );
    ( "recursive-bisection",
      fun inst -> B.Recursive_bisection.assign (Prng.create seed) inst ~slack );
  ]

(* ---- admission ---- *)

let rejected_response (req : Protocol.request) e =
  { Protocol.id = req.Protocol.id; outcome = Protocol.Failed e; queue_ms = 0.; solve_ms = 0. }

let submit t (req : Protocol.request) =
  Obs.count "server.requests" 1;
  let verdict =
    with_lock t (fun () ->
        t.stats <- { t.stats with submitted = t.stats.submitted + 1 };
        if t.stopping || t.queued >= t.config.queue_limit then begin
          t.stats <- { t.stats with rejected_overloaded = t.stats.rejected_overloaded + 1 };
          `Full t.queued
        end
        else begin
          (* Reserve the slot now; the (possibly expensive) instance parse
             happens outside the lock. *)
          t.queued <- t.queued + 1;
          let index = t.next_index in
          t.next_index <- index + 1;
          `Reserved index
        end)
  in
  match verdict with
  | `Full queued ->
    Obs.count "server.rejected.overloaded" 1;
    `Rejected
      (rejected_response req (Hgp_error.Overloaded { queued; limit = t.config.queue_limit }))
  | `Reserved index -> (
    let submit_ns = Obs.now_ns () in
    match Protocol.resolve req with
    | Error e ->
      with_lock t (fun () ->
          t.queued <- t.queued - 1;
          t.stats <- { t.stats with rejected_resolve = t.stats.rejected_resolve + 1 });
      Obs.count "server.rejected.resolve" 1;
      `Rejected (rejected_response req e)
    | Ok resolved ->
      with_lock t (fun () ->
          t.queue <- { resolved; submit_ns; index } :: t.queue;
          t.stats <- { t.stats with admitted = t.stats.admitted + 1 });
      Obs.count "server.admitted" 1;
      `Admitted)

(* ---- dispatch ---- *)

type group = { key : Fingerprint.t; members : pending list; priority : int }

(* Runs on a shard worker.  Answers every member of one coalesced group:
   queue-expired members get their structured deadline error, the survivors
   share a single supervised solve under the leader's remaining budget. *)
let handle t group =
  let dispatch_ns = Obs.now_ns () in
  let queue_ms p = Int64.to_float (Int64.sub dispatch_ns p.submit_ns) /. 1e6 in
  List.iter
    (fun p -> Obs.gauge_max "server.queue_wait_max_ms" (queue_ms p))
    group.members;
  let expired, alive =
    List.partition
      (fun p ->
        match p.resolved.Protocol.request.Protocol.deadline_ms with
        | Some d -> queue_ms p >= d
        | None -> false)
      group.members
  in
  let expired_responses =
    List.map
      (fun p ->
        let req = p.resolved.Protocol.request in
        let budget = Option.value ~default:0. req.Protocol.deadline_ms in
        ( p.index,
          {
            Protocol.id = req.Protocol.id;
            outcome =
              Protocol.Failed
                (Hgp_error.Deadline_exceeded
                   { budget_ms = budget; elapsed_ms = queue_ms p; stage = "queue" });
            queue_ms = queue_ms p;
            solve_ms = 0.;
          } ))
      expired
  in
  match alive with
  | [] -> expired_responses
  | leader :: followers ->
    if followers <> [] then begin
      Atomic.fetch_and_add t.coalesced_live (List.length followers) |> ignore;
      Obs.count "server.coalesced" (List.length followers)
    end;
    let { Protocol.inst; options; request; _ } = leader.resolved in
    let remaining =
      Option.map (fun d -> d -. queue_ms leader) request.Protocol.deadline_ms
    in
    let t0 = Obs.now_ns () in
    let result =
      Obs.span "server.solve" (fun () ->
          try
            Solver.solve_supervised ~options ?deadline_ms:remaining
              ~fallbacks:(ladder_fallbacks ~slack:t.config.slack ~seed:options.Solver.seed)
              inst
          with exn ->
            (* [solve_supervised] promises not to raise; fence anyway so a
               broken promise poisons one response, not the batch. *)
            Error
              (Hgp_error.Internal
                 { stage = "server.solve"; msg = Hgp_error.message_of_exn exn }))
    in
    let solve_ms = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6 in
    let outcome_of ~follower =
      match result with
      | Ok s ->
        let sol = s.Solver.solution in
        Protocol.Solved
          {
            cost = sol.Solver.cost;
            violation = sol.Solver.max_violation;
            rung = s.Solver.rung;
            degraded = s.Solver.degraded;
            tree_failures = List.length s.Solver.tree_failures;
            cache_hit =
              follower || (sol.Solver.dp_states = 0 && sol.Solver.cached_dp_states > 0);
            dp_states = sol.Solver.dp_states;
            cached_dp_states = sol.Solver.cached_dp_states;
            assignment = sol.Solver.assignment;
          }
      | Error e -> Protocol.Failed e
    in
    ( leader.index,
      {
        Protocol.id = request.Protocol.id;
        outcome = outcome_of ~follower:false;
        queue_ms = queue_ms leader;
        solve_ms;
      } )
    :: List.map
         (fun p ->
           ( p.index,
             {
               Protocol.id = p.resolved.Protocol.request.Protocol.id;
               outcome = outcome_of ~follower:true;
               queue_ms = queue_ms p;
               solve_ms = 0.;
             } ))
         followers
    @ expired_responses

let tally t (responses : Protocol.response list) steals =
  with_lock t (fun () ->
      let s = ref { t.stats with steals = t.stats.steals + steals } in
      List.iter
        (fun (r : Protocol.response) ->
          match r.Protocol.outcome with
          | Protocol.Solved sol ->
            s := { !s with ok = !s.ok + 1 };
            if sol.Protocol.degraded then s := { !s with degraded = !s.degraded + 1 };
            if sol.Protocol.cache_hit then s := { !s with cache_hits = !s.cache_hits + 1 }
          | Protocol.Failed (Hgp_error.Deadline_exceeded _) ->
            s :=
              { !s with errors = !s.errors + 1; deadline_expired = !s.deadline_expired + 1 }
          | Protocol.Failed _ -> s := { !s with errors = !s.errors + 1 })
        responses;
      t.stats <- !s);
  List.iter
    (fun (r : Protocol.response) ->
      match r.Protocol.outcome with
      | Protocol.Solved sol ->
        Obs.count "server.responses.ok" 1;
        if sol.Protocol.degraded then Obs.count "server.degraded" 1;
        if sol.Protocol.cache_hit then Obs.count "server.cache_hits" 1
      | Protocol.Failed (Hgp_error.Deadline_exceeded _) ->
        Obs.count "server.responses.error" 1;
        Obs.count "server.deadline_expired" 1
      | Protocol.Failed _ -> Obs.count "server.responses.error" 1)
    responses

let drain t =
  let batch =
    with_lock t (fun () ->
        let grabbed = List.rev t.queue in
        t.queue <- [];
        t.queued <- t.queued - List.length grabbed;
        grabbed)
  in
  match batch with
  | [] -> []
  | _ ->
    with_lock t (fun () -> t.stats <- { t.stats with batches = t.stats.batches + 1 });
    Obs.count "server.batches" 1;
    Obs.gauge "server.queue_depth" (float_of_int (List.length batch));
    Obs.span "server.drain" @@ fun () ->
    (* Coalesce by affinity key, preserving first-seen order so the response
       order and the shard layout are both deterministic. *)
    let tbl : (Fingerprint.t, pending list ref) Hashtbl.t = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun p ->
        let k = p.resolved.Protocol.key in
        match Hashtbl.find_opt tbl k with
        | None ->
          Hashtbl.add tbl k (ref [ p ]);
          order := k :: !order
        | Some r -> r := p :: !r)
      batch;
    let groups =
      !order
      |> List.rev_map (fun k ->
             let members = List.rev !(Hashtbl.find tbl k) in
             let priority =
               List.fold_left
                 (fun a p -> max a p.resolved.Protocol.request.Protocol.priority)
                 min_int members
             in
             { key = k; members; priority })
      |> List.rev
      |> Array.of_list
    in
    Log.info (fun m ->
        m "drain: %d requests in %d groups over %d workers" (List.length batch)
          (Array.length groups) t.config.workers);
    let results, sstats =
      Scheduler.run ~pool:t.pool ~shards:t.config.workers
        ~shard_of:(fun g -> g.key)
        ~priority_of:(fun g -> g.priority)
        ~f:(handle t) groups
    in
    let responses = ref [] in
    Array.iteri
      (fun gi slot ->
        match slot with
        | Ok rs -> responses := rs @ !responses
        | Error exn ->
          (* The per-group fence failed — answer every member structurally
             rather than dropping them. *)
          let msg = Hgp_error.message_of_exn exn in
          List.iter
            (fun p ->
              responses :=
                ( p.index,
                  {
                    Protocol.id = p.resolved.Protocol.request.Protocol.id;
                    outcome =
                      Protocol.Failed
                        (Hgp_error.Internal { stage = "server.dispatch"; msg });
                    queue_ms = 0.;
                    solve_ms = 0.;
                  } )
                :: !responses)
            groups.(gi).members)
      results;
    let ordered =
      List.sort (fun (a, _) (b, _) -> compare a b) !responses |> List.map snd
    in
    tally t ordered sstats.Scheduler.steals;
    ordered

let shutdown t =
  with_lock t (fun () -> t.stopping <- true);
  let rest = drain t in
  Domain_pool.shutdown t.pool;
  rest
