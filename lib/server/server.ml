module Fingerprint = Hgp_util.Fingerprint
module Domain_pool = Hgp_util.Domain_pool
module Prng = Hgp_util.Prng
module Obs = Hgp_obs.Obs
module Hgp_error = Hgp_resilience.Hgp_error
module Solver = Hgp_core.Solver
module Pipeline = Hgp_core.Pipeline
module Delta = Hgp_core.Delta
module B = Hgp_baselines

let log_src = Logs.Src.create "hgp.server" ~doc:"HGP batch solve service"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = { workers : int; queue_limit : int; slack : float }

let default_config =
  {
    workers = max 1 (Domain.recommended_domain_count () - 1);
    queue_limit = 256;
    slack = 1.25;
  }

type stats = {
  submitted : int;
  admitted : int;
  rejected_overloaded : int;
  rejected_resolve : int;
  deadline_expired : int;
  coalesced : int;
  ok : int;
  errors : int;
  degraded : int;
  cache_hits : int;
  steals : int;
  batches : int;
  updates : int;
}

let zero_stats =
  {
    submitted = 0;
    admitted = 0;
    rejected_overloaded = 0;
    rejected_resolve = 0;
    deadline_expired = 0;
    coalesced = 0;
    ok = 0;
    errors = 0;
    degraded = 0;
    cache_hits = 0;
    steals = 0;
    batches = 0;
    updates = 0;
  }

type pending = { resolved : Protocol.resolved; submit_ns : int64; index : int }

type pending_update = {
  update : Protocol.update_request;
  delta : Delta.t;  (* parsed at admission, like [resolve] for solves *)
  u_submit_ns : int64;
  u_index : int;
}

type t = {
  config : config;
  pool : Domain_pool.t;
  mutex : Mutex.t;
  mutable queue : pending list;  (* newest first *)
  mutable update_queue : pending_update list;  (* newest first *)
  mutable queued : int;
  mutable next_index : int;
  mutable stopping : bool;
  mutable stats : stats;
  coalesced_live : int Atomic.t;  (* bumped on worker domains, folded in [stats] *)
  smutex : Mutex.t;  (* guards [sessions]; never held with [mutex] *)
  sessions : (string, Pipeline.session) Hashtbl.t;
}

let create ?(config = default_config) () =
  if config.workers < 1 then invalid_arg "Server.create: workers must be >= 1";
  if config.queue_limit < 1 then invalid_arg "Server.create: queue_limit must be >= 1";
  {
    config;
    pool = Domain_pool.create ~size:config.workers;
    mutex = Mutex.create ();
    queue = [];
    update_queue = [];
    queued = 0;
    next_index = 0;
    stopping = false;
    stats = zero_stats;
    coalesced_live = Atomic.make 0;
    smutex = Mutex.create ();
    sessions = Hashtbl.create 8;
  }

let config t = t.config

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let with_slock t f =
  Mutex.lock t.smutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.smutex) f

let session_count t = with_slock t (fun () -> Hashtbl.length t.sessions)

let pending t = with_lock t (fun () -> t.queued)

let stats t =
  with_lock t (fun () -> { t.stats with coalesced = Atomic.get t.coalesced_live })

let render_stats (s : stats) =
  Printf.sprintf
    "submitted=%d admitted=%d overloaded=%d resolve_rejects=%d deadline=%d \
     coalesced=%d ok=%d errors=%d degraded=%d cache_hits=%d steals=%d batches=%d \
     updates=%d"
    s.submitted s.admitted s.rejected_overloaded s.rejected_resolve s.deadline_expired
    s.coalesced s.ok s.errors s.degraded s.cache_hits s.steals s.batches s.updates

(* The same degradation ladder the CLI's one-shot solve installs: the refined
   heuristic portfolio (sans the hgp candidate — it just failed above), then
   plain dual recursive bisection; each with a fresh deterministic rng so a
   request's answer does not depend on its neighbours. *)
let ladder_fallbacks ~slack ~seed =
  [
    ( "portfolio",
      fun inst ->
        (B.Portfolio.solve ~include_hgp:false (Prng.create seed) inst ~slack
           ~refine_passes:2)
          .best
          .B.Portfolio.assignment );
    ( "recursive-bisection",
      fun inst -> B.Recursive_bisection.assign (Prng.create seed) inst ~slack );
  ]

(* ---- admission ---- *)

let rejected_response (req : Protocol.request) e =
  { Protocol.id = req.Protocol.id; outcome = Protocol.Failed e; queue_ms = 0.; solve_ms = 0. }

let submit t (req : Protocol.request) =
  Obs.count "server.requests" 1;
  let verdict =
    with_lock t (fun () ->
        t.stats <- { t.stats with submitted = t.stats.submitted + 1 };
        if t.stopping || t.queued >= t.config.queue_limit then begin
          t.stats <- { t.stats with rejected_overloaded = t.stats.rejected_overloaded + 1 };
          `Full t.queued
        end
        else begin
          (* Reserve the slot now; the (possibly expensive) instance parse
             happens outside the lock. *)
          t.queued <- t.queued + 1;
          let index = t.next_index in
          t.next_index <- index + 1;
          `Reserved index
        end)
  in
  match verdict with
  | `Full queued ->
    Obs.count "server.rejected.overloaded" 1;
    `Rejected
      (rejected_response req (Hgp_error.Overloaded { queued; limit = t.config.queue_limit }))
  | `Reserved index -> (
    let submit_ns = Obs.now_ns () in
    match Protocol.resolve req with
    | Error e ->
      with_lock t (fun () ->
          t.queued <- t.queued - 1;
          t.stats <- { t.stats with rejected_resolve = t.stats.rejected_resolve + 1 });
      Obs.count "server.rejected.resolve" 1;
      `Rejected (rejected_response req e)
    | Ok resolved ->
      with_lock t (fun () ->
          t.queue <- { resolved; submit_ns; index } :: t.queue;
          t.stats <- { t.stats with admitted = t.stats.admitted + 1 });
      Obs.count "server.admitted" 1;
      `Admitted)

let rejected_update (u : Protocol.update_request) e =
  {
    Protocol.id = u.Protocol.u_id;
    outcome = Protocol.Failed e;
    queue_ms = 0.;
    solve_ms = 0.;
  }

(* Updates share the solve queue's admission budget and index space, so
   responses interleave in submission order and back-pressure covers both
   kinds of work. *)
let submit_update t (u : Protocol.update_request) =
  Obs.count "server.requests" 1;
  let verdict =
    with_lock t (fun () ->
        t.stats <- { t.stats with submitted = t.stats.submitted + 1 };
        if t.stopping || t.queued >= t.config.queue_limit then begin
          t.stats <- { t.stats with rejected_overloaded = t.stats.rejected_overloaded + 1 };
          `Full t.queued
        end
        else begin
          t.queued <- t.queued + 1;
          let index = t.next_index in
          t.next_index <- index + 1;
          `Reserved index
        end)
  in
  match verdict with
  | `Full queued ->
    Obs.count "server.rejected.overloaded" 1;
    `Rejected
      (rejected_update u (Hgp_error.Overloaded { queued; limit = t.config.queue_limit }))
  | `Reserved u_index -> (
    let u_submit_ns = Obs.now_ns () in
    match Delta.of_string u.Protocol.u_delta with
    | exception Hgp_error.Error e ->
      with_lock t (fun () ->
          t.queued <- t.queued - 1;
          t.stats <- { t.stats with rejected_resolve = t.stats.rejected_resolve + 1 });
      Obs.count "server.rejected.resolve" 1;
      `Rejected (rejected_update u e)
    | delta ->
      with_lock t (fun () ->
          t.update_queue <- { update = u; delta; u_submit_ns; u_index } :: t.update_queue;
          t.stats <- { t.stats with admitted = t.stats.admitted + 1 });
      Obs.count "server.admitted" 1;
      `Admitted)

let submit_any t = function
  | Protocol.Solve r -> submit t r
  | Protocol.Update u -> submit_update t u

(* ---- dispatch ---- *)

type group = { key : Fingerprint.t; members : pending list; priority : int }

(* Session-bearing solves go through [Pipeline.start_session] fail-fast, so
   the registered session state and the response embody the same
   bit-identical pipeline solution.  On infeasibility or any raised error the
   group falls back to the supervised ladder below with nothing registered —
   a fallback-rung answer has no DP snapshots to update incrementally.
   Distinct session names in one coalesced group each get their own session
   (the repeat solves hit the warm caches); the solutions are bit-identical,
   so answering the group from the first is sound. *)
let register_sessions t ~inst ~options alive =
  let names =
    List.filter_map (fun p -> p.resolved.Protocol.request.Protocol.session) alive
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc name ->
      match (try Pipeline.start_session inst options with _ -> None) with
      | None -> acc
      | Some (sess, sol) ->
        with_slock t (fun () -> Hashtbl.replace t.sessions name sess);
        Obs.count "server.sessions.opened" 1;
        (match acc with None -> Some sol | some -> some))
    None names

(* Runs on a shard worker.  Answers every member of one coalesced group:
   queue-expired members get their structured deadline error, the survivors
   share a single supervised solve under the leader's remaining budget. *)
let handle t group =
  let dispatch_ns = Obs.now_ns () in
  let queue_ms p = Int64.to_float (Int64.sub dispatch_ns p.submit_ns) /. 1e6 in
  List.iter
    (fun p -> Obs.gauge_max "server.queue_wait_max_ms" (queue_ms p))
    group.members;
  let expired, alive =
    List.partition
      (fun p ->
        match p.resolved.Protocol.request.Protocol.deadline_ms with
        | Some d -> queue_ms p >= d
        | None -> false)
      group.members
  in
  let expired_responses =
    List.map
      (fun p ->
        let req = p.resolved.Protocol.request in
        let budget = Option.value ~default:0. req.Protocol.deadline_ms in
        ( p.index,
          {
            Protocol.id = req.Protocol.id;
            outcome =
              Protocol.Failed
                (Hgp_error.Deadline_exceeded
                   { budget_ms = budget; elapsed_ms = queue_ms p; stage = "queue" });
            queue_ms = queue_ms p;
            solve_ms = 0.;
          } ))
      expired
  in
  match alive with
  | [] -> expired_responses
  | leader :: followers ->
    if followers <> [] then begin
      Atomic.fetch_and_add t.coalesced_live (List.length followers) |> ignore;
      Obs.count "server.coalesced" (List.length followers)
    end;
    let { Protocol.inst; options; request; _ } = leader.resolved in
    let remaining =
      Option.map (fun d -> d -. queue_ms leader) request.Protocol.deadline_ms
    in
    let t0 = Obs.now_ns () in
    let result =
      Obs.span "server.solve" (fun () ->
          match register_sessions t ~inst ~options alive with
          | Some sol -> `Session sol
          | None -> (
            try
              `Ladder
                (Solver.solve_supervised ~options ?deadline_ms:remaining
                   ~fallbacks:
                     (ladder_fallbacks ~slack:t.config.slack ~seed:options.Solver.seed)
                   inst)
            with exn ->
              (* [solve_supervised] promises not to raise; fence anyway so a
                 broken promise poisons one response, not the batch. *)
              `Ladder
                (Error
                   (Hgp_error.Internal
                      { stage = "server.solve"; msg = Hgp_error.message_of_exn exn }))))
    in
    let solve_ms = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6 in
    let outcome_of ~follower =
      match result with
      | `Session sol ->
        Protocol.Solved
          {
            cost = sol.Solver.cost;
            violation = sol.Solver.max_violation;
            rung = "ensemble";
            degraded = false;
            tree_failures = 0;
            cache_hit =
              follower || (sol.Solver.dp_states = 0 && sol.Solver.cached_dp_states > 0);
            dp_states = sol.Solver.dp_states;
            cached_dp_states = sol.Solver.cached_dp_states;
            assignment = sol.Solver.assignment;
          }
      | `Ladder (Ok s) ->
        let sol = s.Solver.solution in
        Protocol.Solved
          {
            cost = sol.Solver.cost;
            violation = sol.Solver.max_violation;
            rung = s.Solver.rung;
            degraded = s.Solver.degraded;
            tree_failures = List.length s.Solver.tree_failures;
            cache_hit =
              follower || (sol.Solver.dp_states = 0 && sol.Solver.cached_dp_states > 0);
            dp_states = sol.Solver.dp_states;
            cached_dp_states = sol.Solver.cached_dp_states;
            assignment = sol.Solver.assignment;
          }
      | `Ladder (Error e) -> Protocol.Failed e
    in
    ( leader.index,
      {
        Protocol.id = request.Protocol.id;
        outcome = outcome_of ~follower:false;
        queue_ms = queue_ms leader;
        solve_ms;
      } )
    :: List.map
         (fun p ->
           ( p.index,
             {
               Protocol.id = p.resolved.Protocol.request.Protocol.id;
               outcome = outcome_of ~follower:true;
               queue_ms = queue_ms p;
               solve_ms = 0.;
             } ))
         followers
    @ expired_responses

(* Runs on the drain thread, after the solve batch: sessions opened by
   same-batch solves are visible, and per-session serialization (the
   [Pipeline.resolve_delta] contract) comes for free. *)
let run_update t (pu : pending_update) ~dispatch_ns =
  let u = pu.update in
  let queue_ms = Int64.to_float (Int64.sub dispatch_ns pu.u_submit_ns) /. 1e6 in
  Obs.gauge_max "server.queue_wait_max_ms" queue_ms;
  let expired =
    match u.Protocol.u_deadline_ms with Some d -> queue_ms >= d | None -> false
  in
  if expired then
    ( pu.u_index,
      {
        Protocol.id = u.Protocol.u_id;
        outcome =
          Protocol.Failed
            (Hgp_error.Deadline_exceeded
               {
                 budget_ms = Option.value ~default:0. u.Protocol.u_deadline_ms;
                 elapsed_ms = queue_ms;
                 stage = "queue";
               });
        queue_ms;
        solve_ms = 0.;
      } )
  else begin
    let sess = with_slock t (fun () -> Hashtbl.find_opt t.sessions u.Protocol.u_session) in
    let t0 = Obs.now_ns () in
    let outcome =
      match sess with
      | None ->
        Protocol.Failed
          (Hgp_error.Invalid_input
             {
               context = "server.update";
               msg =
                 Printf.sprintf
                   "unknown session %S (open one with a solve request carrying \
                    \"session\")"
                   u.Protocol.u_session;
             })
      | Some sess -> (
        Obs.span "server.update" @@ fun () ->
        try
          match Pipeline.resolve_delta sess pu.delta with
          | Some r ->
            let sol = r.Pipeline.u_solution in
            Protocol.Updated
              {
                up_cost = sol.Solver.cost;
                up_violation = sol.Solver.max_violation;
                up_churn = r.Pipeline.churn;
                up_resolved_subtrees = r.Pipeline.resolved_subtrees;
                up_reused_subtrees = r.Pipeline.reused_subtrees;
                up_incremental = true;
                up_certified = r.Pipeline.certified;
                up_assignment = sol.Solver.assignment;
              }
          | None ->
            let inst = Pipeline.session_instance sess in
            let options = Pipeline.session_options sess in
            Protocol.Failed
              (Hgp_error.Infeasible
                 {
                   resolution = Pipeline.resolution_of inst options;
                   retried = false;
                   msg =
                     "post-delta instance is infeasible at the session's \
                      resolution; submit a fresh solve request";
                 })
        with
        | Hgp_error.Error e -> Protocol.Failed e
        | exn ->
          Protocol.Failed
            (Hgp_error.Internal
               { stage = "server.update"; msg = Hgp_error.message_of_exn exn }))
    in
    let solve_ms = Int64.to_float (Int64.sub (Obs.now_ns ()) t0) /. 1e6 in
    (pu.u_index, { Protocol.id = u.Protocol.u_id; outcome; queue_ms; solve_ms })
  end

let tally t (responses : Protocol.response list) steals =
  with_lock t (fun () ->
      let s = ref { t.stats with steals = t.stats.steals + steals } in
      List.iter
        (fun (r : Protocol.response) ->
          match r.Protocol.outcome with
          | Protocol.Solved sol ->
            s := { !s with ok = !s.ok + 1 };
            if sol.Protocol.degraded then s := { !s with degraded = !s.degraded + 1 };
            if sol.Protocol.cache_hit then s := { !s with cache_hits = !s.cache_hits + 1 }
          | Protocol.Updated _ ->
            s := { !s with ok = !s.ok + 1; updates = !s.updates + 1 }
          | Protocol.Failed (Hgp_error.Deadline_exceeded _) ->
            s :=
              { !s with errors = !s.errors + 1; deadline_expired = !s.deadline_expired + 1 }
          | Protocol.Failed _ -> s := { !s with errors = !s.errors + 1 })
        responses;
      t.stats <- !s);
  List.iter
    (fun (r : Protocol.response) ->
      match r.Protocol.outcome with
      | Protocol.Solved sol ->
        Obs.count "server.responses.ok" 1;
        if sol.Protocol.degraded then Obs.count "server.degraded" 1;
        if sol.Protocol.cache_hit then Obs.count "server.cache_hits" 1
      | Protocol.Updated _ ->
        Obs.count "server.responses.ok" 1;
        Obs.count "server.updates" 1
      | Protocol.Failed (Hgp_error.Deadline_exceeded _) ->
        Obs.count "server.responses.error" 1;
        Obs.count "server.deadline_expired" 1
      | Protocol.Failed _ -> Obs.count "server.responses.error" 1)
    responses

let drain t =
  let batch, updates =
    with_lock t (fun () ->
        let grabbed = List.rev t.queue in
        let upds = List.rev t.update_queue in
        t.queue <- [];
        t.update_queue <- [];
        t.queued <- t.queued - List.length grabbed - List.length upds;
        (grabbed, upds))
  in
  if batch = [] && updates = [] then []
  else begin
    with_lock t (fun () -> t.stats <- { t.stats with batches = t.stats.batches + 1 });
    Obs.count "server.batches" 1;
    Obs.gauge "server.queue_depth"
      (float_of_int (List.length batch + List.length updates));
    Obs.span "server.drain" @@ fun () ->
    let responses = ref [] in
    let steals = ref 0 in
    if batch <> [] then begin
      (* Coalesce by affinity key, preserving first-seen order so the response
         order and the shard layout are both deterministic. *)
      let tbl : (Fingerprint.t, pending list ref) Hashtbl.t = Hashtbl.create 32 in
      let order = ref [] in
      List.iter
        (fun p ->
          let k = p.resolved.Protocol.key in
          match Hashtbl.find_opt tbl k with
          | None ->
            Hashtbl.add tbl k (ref [ p ]);
            order := k :: !order
          | Some r -> r := p :: !r)
        batch;
      let groups =
        !order
        |> List.rev_map (fun k ->
               let members = List.rev !(Hashtbl.find tbl k) in
               let priority =
                 List.fold_left
                   (fun a p -> max a p.resolved.Protocol.request.Protocol.priority)
                   min_int members
               in
               { key = k; members; priority })
        |> List.rev
        |> Array.of_list
      in
      Log.info (fun m ->
          m "drain: %d requests in %d groups over %d workers" (List.length batch)
            (Array.length groups) t.config.workers);
      let results, sstats =
        Scheduler.run ~pool:t.pool ~shards:t.config.workers
          ~shard_of:(fun g -> g.key)
          ~priority_of:(fun g -> g.priority)
          ~f:(handle t) groups
      in
      steals := sstats.Scheduler.steals;
      Array.iteri
        (fun gi slot ->
          match slot with
          | Ok rs -> responses := rs @ !responses
          | Error exn ->
            (* The per-group fence failed — answer every member structurally
               rather than dropping them. *)
            let msg = Hgp_error.message_of_exn exn in
            List.iter
              (fun p ->
                responses :=
                  ( p.index,
                    {
                      Protocol.id = p.resolved.Protocol.request.Protocol.id;
                      outcome =
                        Protocol.Failed
                          (Hgp_error.Internal { stage = "server.dispatch"; msg });
                      queue_ms = 0.;
                      solve_ms = 0.;
                    } )
                  :: !responses)
              groups.(gi).members)
        results
    end;
    if updates <> [] then begin
      Log.info (fun m -> m "drain: %d updates" (List.length updates));
      let dispatch_ns = Obs.now_ns () in
      List.iter
        (fun pu -> responses := run_update t pu ~dispatch_ns :: !responses)
        (List.sort (fun a b -> compare a.u_index b.u_index) updates)
    end;
    let ordered =
      List.sort (fun (a, _) (b, _) -> compare a b) !responses |> List.map snd
    in
    tally t ordered !steals;
    ordered
  end

let shutdown t =
  with_lock t (fun () -> t.stopping <- true);
  let rest = drain t in
  Domain_pool.shutdown t.pool;
  rest
