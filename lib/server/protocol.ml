module Fingerprint = Hgp_util.Fingerprint
module Graph = Hgp_graph.Graph
module Hierarchy = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Instance_io = Hgp_core.Instance_io
module Solver = Hgp_core.Solver
module Hgp_error = Hgp_resilience.Hgp_error

(* ---- minimal JSON ---- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Json_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m -> raise (Json_error (Printf.sprintf "%s at offset %d" m !pos)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail "expected '%c'" c
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents buf
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* UTF-8 encode; surrogate pairs unsupported (never emitted). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail "bad escape '\\%c'" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Json_error m -> Error m

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* ---- requests ---- *)

type source = Inline of string | Path of string

type request = {
  id : string;
  source : source;
  trees : int;
  seed : int;
  eps : float;
  resolution : int option;
  deadline_ms : float option;
  priority : int;
  session : string option;
}

let request ~id ?(trees = 4) ?(seed = 42) ?(eps = 0.25) ?resolution ?deadline_ms
    ?(priority = 0) ?session source =
  { id; source; trees; seed; eps; resolution; deadline_ms; priority; session }

let inline_request ~id ?trees ?seed ?eps ?resolution ?deadline_ms ?priority ?session
    inst =
  request ~id ?trees ?seed ?eps ?resolution ?deadline_ms ?priority ?session
    (Inline (Instance_io.to_string inst))

let as_int = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

(* Typed field access with defaults: a missing or [null] field defaults, a
   present field of the wrong type is a hard parse error — silent coercion
   would corrupt cache keys. *)
let get kvs k coerce ~default ~what =
  match List.assoc_opt k kvs with
  | None | Some Null -> Ok default
  | Some v -> (
    match coerce v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S must be %s" k what))

let ( let* ) = Result.bind

let parse_request line =
  match parse_json line with
  | Error m -> Error m
  | Ok (Obj kvs) ->
    let* id =
      match List.assoc_opt "id" kvs with
      | Some (Str id) -> Ok id
      | _ -> Error "request is missing the string field \"id\""
    in
    let* source =
      match (List.assoc_opt "instance" kvs, List.assoc_opt "path" kvs) with
      | Some (Str text), None -> Ok (Inline text)
      | None, Some (Str p) -> Ok (Path p)
      | Some _, Some _ -> Error "request has both \"instance\" and \"path\""
      | Some _, None -> Error "field \"instance\" must be a string"
      | None, Some _ -> Error "field \"path\" must be a string"
      | None, None -> Error "request needs \"instance\" (inline text) or \"path\""
    in
    let* trees = get kvs "trees" as_int ~default:4 ~what:"an integer" in
    let* seed = get kvs "seed" as_int ~default:42 ~what:"an integer" in
    let num = function Num f -> Some f | _ -> None in
    let* eps = get kvs "eps" num ~default:0.25 ~what:"a number" in
    let* resolution =
      get kvs "resolution"
        (fun v -> Option.map Option.some (as_int v))
        ~default:None ~what:"an integer"
    in
    let* deadline_ms =
      get kvs "deadline_ms"
        (fun v -> Option.map Option.some (num v))
        ~default:None ~what:"a number"
    in
    let* priority = get kvs "priority" as_int ~default:0 ~what:"an integer" in
    let* session =
      get kvs "session"
        (function Str s -> Some (Some s) | _ -> None)
        ~default:None ~what:"a string"
    in
    if trees < 1 then Error "field \"trees\" must be >= 1"
    else if not (Float.is_finite eps) || eps <= 0. then
      Error "field \"eps\" must be a finite positive number"
    else Ok { id; source; trees; seed; eps; resolution; deadline_ms; priority; session }
  | Ok _ -> Error "request line is not a JSON object"

let request_to_line r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"id\":";
  add_json_string buf r.id;
  (match r.source with
  | Inline text ->
    Buffer.add_string buf ",\"instance\":";
    add_json_string buf text
  | Path p ->
    Buffer.add_string buf ",\"path\":";
    add_json_string buf p);
  Printf.bprintf buf ",\"trees\":%d,\"seed\":%d,\"eps\":%.17g" r.trees r.seed r.eps;
  (match r.resolution with
  | None -> ()
  | Some res -> Printf.bprintf buf ",\"resolution\":%d" res);
  (match r.deadline_ms with
  | None -> ()
  | Some d -> Printf.bprintf buf ",\"deadline_ms\":%.17g" d);
  Printf.bprintf buf ",\"priority\":%d" r.priority;
  (match r.session with
  | None -> ()
  | Some s ->
    Buffer.add_string buf ",\"session\":";
    add_json_string buf s);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- update requests ---- *)

type update_request = {
  u_id : string;
  u_session : string;
  u_delta : string;
  u_deadline_ms : float option;
}

let update_request ~id ~session ?deadline_ms delta =
  { u_id = id; u_session = session; u_delta = delta; u_deadline_ms = deadline_ms }

let parse_update kvs =
  let* u_id =
    match List.assoc_opt "id" kvs with
    | Some (Str id) -> Ok id
    | _ -> Error "request is missing the string field \"id\""
  in
  let* u_session =
    match List.assoc_opt "session" kvs with
    | Some (Str s) -> Ok s
    | _ -> Error "update request needs the string field \"session\""
  in
  let* u_delta =
    match List.assoc_opt "delta" kvs with
    | Some (Str d) -> Ok d
    | _ -> Error "field \"delta\" must be a string"
  in
  let num = function Num f -> Some f | _ -> None in
  let* u_deadline_ms =
    get kvs "deadline_ms"
      (fun v -> Option.map Option.some (num v))
      ~default:None ~what:"a number"
  in
  Ok { u_id; u_session; u_delta; u_deadline_ms }

type any_request = Solve of request | Update of update_request

let parse_any line =
  match parse_json line with
  | Error m -> Error m
  | Ok (Obj kvs) ->
    if List.mem_assoc "delta" kvs then
      let* u = parse_update kvs in
      Ok (Update u)
    else
      let* r = parse_request line in
      Ok (Solve r)
  | Ok _ -> Error "request line is not a JSON object"

let update_to_line u =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"id\":";
  add_json_string buf u.u_id;
  Buffer.add_string buf ",\"session\":";
  add_json_string buf u.u_session;
  Buffer.add_string buf ",\"delta\":";
  add_json_string buf u.u_delta;
  (match u.u_deadline_ms with
  | None -> ()
  | Some d -> Printf.bprintf buf ",\"deadline_ms\":%.17g" d);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---- resolution ---- *)

type resolved = {
  request : request;
  inst : Instance.t;
  key : Fingerprint.t;
  options : Solver.options;
}

let key_of ~inst (r : request) =
  Graph.fingerprint inst.Instance.graph
  |> Fun.flip Fingerprint.add_float_array inst.Instance.demands
  |> Fun.flip Fingerprint.combine (Hierarchy.fingerprint inst.Instance.hierarchy)
  |> Fun.flip Fingerprint.add_int r.trees
  |> Fun.flip Fingerprint.add_int r.seed
  |> Fun.flip Fingerprint.add_float r.eps
  |> Fun.flip (Fingerprint.add_option Fingerprint.add_int) r.resolution

let options_of_request (r : request) =
  {
    Solver.default_options with
    ensemble_size = r.trees;
    seed = r.seed;
    eps = r.eps;
    resolution = r.resolution;
    parallel = false;
  }

let resolve r =
  try
    let inst =
      match r.source with
      | Inline text -> Instance_io.of_string text
      | Path p -> Instance_io.load p
    in
    Ok { request = r; inst; key = key_of ~inst r; options = options_of_request r }
  with
  | Hgp_error.Error e -> Error e
  | exn ->
    Error (Hgp_error.Internal { stage = "resolve"; msg = Hgp_error.message_of_exn exn })

(* ---- responses ---- *)

type solved = {
  cost : float;
  violation : float;
  rung : string;
  degraded : bool;
  tree_failures : int;
  cache_hit : bool;
  dp_states : int;
  cached_dp_states : int;
  assignment : int array;
}

type updated = {
  up_cost : float;
  up_violation : float;
  up_churn : float;
  up_resolved_subtrees : int;
  up_reused_subtrees : int;
  up_incremental : bool;
  up_certified : bool;
  up_assignment : int array;
}

type outcome = Solved of solved | Updated of updated | Failed of Hgp_error.t

type response = { id : string; outcome : outcome; queue_ms : float; solve_ms : float }

let response_to_line resp =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"id\":";
  add_json_string buf resp.id;
  (match resp.outcome with
  | Solved s ->
    Printf.bprintf buf ",\"status\":\"ok\",\"cost\":%.17g,\"violation\":%.17g" s.cost
      s.violation;
    Buffer.add_string buf ",\"rung\":";
    add_json_string buf s.rung;
    Printf.bprintf buf
      ",\"degraded\":%b,\"tree_failures\":%d,\"cache_hit\":%b,\"dp_states\":%d,\"cached_dp_states\":%d"
      s.degraded s.tree_failures s.cache_hit s.dp_states s.cached_dp_states
  | Updated u ->
    Printf.bprintf buf
      ",\"status\":\"updated\",\"cost\":%.17g,\"violation\":%.17g,\"churn\":%.17g,\"resolved_subtrees\":%d,\"reused_subtrees\":%d,\"incremental\":%b,\"certified\":%b"
      u.up_cost u.up_violation u.up_churn u.up_resolved_subtrees u.up_reused_subtrees
      u.up_incremental u.up_certified
  | Failed e ->
    Printf.bprintf buf ",\"status\":\"error\",\"error\":\"%s\"" (Hgp_error.label e);
    Buffer.add_string buf ",\"message\":";
    add_json_string buf (Hgp_error.to_string e));
  Printf.bprintf buf ",\"queue_ms\":%.3f,\"solve_ms\":%.3f" resp.queue_ms resp.solve_ms;
  let add_assignment assignment =
    Buffer.add_string buf ",\"assignment\":[";
    Array.iteri
      (fun i leaf ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (string_of_int leaf))
      assignment;
    Buffer.add_char buf ']'
  in
  (match resp.outcome with
  | Solved s -> add_assignment s.assignment
  | Updated u -> add_assignment u.up_assignment
  | Failed _ -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf
