(** Long-running batch solve service over the artifact caches.

    The service model is {e windowed batching}: requests are admitted into a
    bounded queue ({!submit}) and dispatched as a batch ({!drain}) onto a
    dedicated worker-domain pool through the cache-affine {!Scheduler}.  The
    process-wide [Ensemble_cache] and packed-solution LRUs are shared by the
    whole fleet, so a graph that has been embedded once is never embedded
    again, no matter which request — or which worker — asks next.

    Guarantees (see [docs/SERVING.md] for the full contract):

    - {b bounded admission}: once [queue_limit] requests are pending, further
      submits are rejected with a structured
      [Hgp_error.Overloaded] response — load sheds at the front door, never
      by falling over mid-solve;
    - {b per-request deadlines}: a request whose budget expired while it
      waited in the queue is answered with a [Deadline_exceeded] error
      without being solved; one that reaches a worker solves under its
      {e remaining} budget via the supervised degradation ladder, so late
      requests degrade per-request instead of failing the batch;
    - {b coalescing}: requests with equal affinity keys (same instance and
      solve-determining options) in one drain are solved once; followers
      receive the same outcome marked [cache_hit] — duplicate in-flight
      requests are bit-identical by construction, not by luck;
    - {b isolation}: a request that fails — injected fault, infeasible
      instance, poisoned input — produces an error {e response}; the server,
      its workers, and every other request keep going;
    - {b graceful drain}: {!shutdown} stops admission, flushes everything
      already admitted, and joins the pool; nothing admitted is ever dropped.

    Telemetry: [server.*] counters/spans (see [docs/OBSERVABILITY.md]). *)

type config = {
  workers : int;  (** worker domains = scheduler shards *)
  queue_limit : int;  (** bounded admission queue *)
  slack : float;  (** capacity slack for the heuristic fallback rungs *)
}

(** [{workers = max 1 (recommended_domain_count () - 1); queue_limit = 256;
     slack = 1.25}] *)
val default_config : config

type stats = {
  submitted : int;
  admitted : int;
  rejected_overloaded : int;
  rejected_resolve : int;  (** parse / io failures at admission *)
  deadline_expired : int;  (** budget ran out while queued *)
  coalesced : int;  (** followers served by an identical in-flight solve *)
  ok : int;
  errors : int;
  degraded : int;
  cache_hits : int;  (** packed-cache hits + coalesced followers *)
  steals : int;
  batches : int;
  updates : int;  (** update requests answered with status ["updated"] *)
}

type t

(** [create ?config ()] — the pool is created immediately but its domains
    spawn lazily on the first drain. *)
val create : ?config:config -> unit -> t

val config : t -> config

(** Requests admitted but not yet drained. *)
val pending : t -> int

(** [submit t req] resolves the request (parsing the embedded instance,
    computing the affinity key) and admits it, or returns the ready-to-send
    rejection response ([overloaded], [parse], [io], ...).  The queue-wait
    clock starts here. *)
val submit : t -> Protocol.request -> [ `Admitted | `Rejected of Protocol.response ]

(** {1 Incremental sessions}

    A solve request carrying [session = Some name] is solved fail-fast
    through [Pipeline.start_session]: the response and the registered
    session embody the same bit-identical pipeline solution, and later
    {!submit_update} requests naming the session re-solve only the dirty
    cone of the delta (docs/INCREMENTAL.md).  If the fail-fast solve is
    infeasible or raises, the request falls back to the supervised
    degradation ladder and {e no} session is registered — a fallback-rung
    answer has no DP snapshots to update.  Re-using a name replaces the
    session.  Session solves ignore the remaining [deadline_ms] budget
    (queue-expiry still applies). *)

(** [submit_update t u] admits a delta against a named session under the
    same bounded queue ([Overloaded] past the limit); a malformed delta is
    rejected at admission with its structured [Parse] error.  Updates
    execute during {!drain}, {e after} the solve batch (so a session opened
    in the same batch is visible) and in submission order; responses
    interleave with solve responses by submission index.  Failure modes per
    update: unknown session → [Invalid_input]; queue-expired deadline →
    [Deadline_exceeded]; post-delta infeasibility → [Infeasible] (the
    session keeps its pre-delta state). *)
val submit_update :
  t -> Protocol.update_request -> [ `Admitted | `Rejected of Protocol.response ]

(** Dispatches on the request kind. *)
val submit_any :
  t -> Protocol.any_request -> [ `Admitted | `Rejected of Protocol.response ]

(** Currently registered sessions. *)
val session_count : t -> int

(** [drain t] dispatches every pending request and returns their responses in
    submission order.  Blocks until the batch completes.  Never raises on
    request failures — those become error responses. *)
val drain : t -> Protocol.response list

(** [shutdown t] stops admission (subsequent submits are rejected as
    overloaded), drains what is pending, joins the pool, and returns the
    final responses.  Idempotent on an already-stopped server. *)
val shutdown : t -> Protocol.response list

(** Cumulative since {!create}. *)
val stats : t -> stats

(** One [key=value] summary line for operators ("submitted=… ok=… …"). *)
val render_stats : stats -> string
