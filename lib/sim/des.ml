module H = Hgp_hierarchy.Hierarchy
module Prng = Hgp_util.Prng
module Pqueue = Hgp_util.Pqueue

type workload = {
  n_tasks : int;
  sources : (int * float) list;
  edges : (int * int * float) list;
  rates : float array;
  demands : float array;
  sinks : int list;
}

type config = {
  duration : float;
  warmup : float;
  load : float;
  comm_overhead : float;
  latency_per_cm : float;
  link_occupancy : float;
  max_queue : int;
  seed : int;
}

let default_config =
  {
    duration = 50.0;
    warmup = 5.0;
    load = 1.0;
    comm_overhead = 1e-4;
    latency_per_cm = 1e-4;
    link_occupancy = 0.;
    max_queue = 256;
    seed = 1;
  }

type metrics = {
  completed : int;
  dropped : int;
  avg_latency : float;
  p99_latency : float;
  max_core_utilization : float;
  throughput : float;
}

(* Events: the float key of the heap is the firing time. *)
type event =
  | Emit of int (* source task emits a tuple *)
  | Arrive of int * float (* tuple arrives at task; payload = birth time *)
  | Core_done of int (* core finishes its current tuple *)

type core_state = {
  mutable busy : bool;
  queue : (int * float) Queue.t; (* (task, birth) *)
  mutable busy_time : float;
  mutable busy_since : float;
}

let run w hy ~assignment cfg =
  if Array.length assignment <> w.n_tasks then invalid_arg "Des.run: assignment length";
  Array.iter
    (fun l ->
      if l < 0 || l >= H.num_leaves hy then invalid_arg "Des.run: assignment out of range")
    assignment;
  if not (cfg.duration > 0. && cfg.warmup >= 0. && cfg.load > 0.) then
    invalid_arg "Des.run: bad config";
  let rng = Prng.create cfg.seed in
  let n_cores = H.num_leaves hy in
  let cores =
    Array.init n_cores (fun _ ->
        { busy = false; queue = Queue.create (); busy_time = 0.; busy_since = 0. })
  in
  (* Input rate of each task: emission rate for sources, sum of incoming
     edge rates otherwise.  Forwarding probability edge_rate / in_rate(src)
     reproduces the average flow rates (selectivity included); service time
     demand / in_rate makes a task at nominal rate load its core by exactly
     its HGP demand. *)
  let in_rate = Array.make w.n_tasks 0. in
  List.iter (fun (_, dst, rate) -> in_rate.(dst) <- in_rate.(dst) +. rate) w.edges;
  List.iter (fun (s, rate) -> in_rate.(s) <- rate) w.sources;
  let out_edges = Array.make w.n_tasks [] in
  List.iter
    (fun (src, dst, rate) ->
      let p = if in_rate.(src) > 0. then Float.min 1.0 (rate /. in_rate.(src)) else 0. in
      out_edges.(src) <- (dst, p) :: out_edges.(src))
    w.edges;
  let service = Array.make w.n_tasks 0. in
  for v = 0 to w.n_tasks - 1 do
    service.(v) <- (if in_rate.(v) > 0. then w.demands.(v) /. in_rate.(v) else 0.)
  done;
  let is_sink = Array.make w.n_tasks false in
  List.iter (fun v -> is_sink.(v) <- true) w.sinks;
  let cm0 = Float.max (H.cm hy 0) 1e-12 in
  let comm_cpu lvl = cfg.comm_overhead *. (H.cm hy lvl /. cm0) in
  let net_latency lvl = cfg.latency_per_cm *. H.cm hy lvl in
  (* Shared links: one per internal hierarchy node; a message whose endpoints
     meet at Level-(lvl) occupies that ancestor's link exclusively for
     link_occupancy * cm(lvl)/cm(0) seconds. *)
  let h_height = H.height hy in
  let link_free =
    Array.init h_height (fun j -> Array.make (H.nodes_at_level hy j) 0.)
  in
  let cross_link now src_leaf lvl =
    if cfg.link_occupancy <= 0. || lvl >= h_height then (now, 0.)
    else begin
      let idx = H.ancestor hy ~level:lvl src_leaf in
      let occupancy = cfg.link_occupancy *. (H.cm hy lvl /. cm0) in
      let start = Float.max now link_free.(lvl).(idx) in
      link_free.(lvl).(idx) <- start +. occupancy;
      (start, occupancy)
    end
  in
  let events : event Pqueue.t = Pqueue.create () in
  let horizon = cfg.warmup +. cfg.duration in
  let completed = ref 0 and dropped = ref 0 in
  let latencies = ref [] in
  (* Seed the source emissions. *)
  List.iter
    (fun (s, rate) ->
      let rate = rate *. cfg.load in
      if rate > 0. then
        Pqueue.push events ~prio:(Prng.exponential rng ~rate) (Emit s))
    w.sources;
  let start_if_idle now core_id =
    let core = cores.(core_id) in
    if (not core.busy) && not (Queue.is_empty core.queue) then begin
      core.busy <- true;
      core.busy_since <- now;
      let task, _birth = Queue.peek core.queue in
      (* Service time includes the send overhead of the edges we will fire;
         to keep the engine single-pass we charge the base service here and
         the communication overhead at completion via the Core_done event
         time.  Sample the forwarding choices now by deferring: the actual
         forwarding happens in Core_done handling, so precompute the extra
         CPU as expected overhead — instead we simply fire Core_done after
         base service and charge comm CPU by extending busy time there. *)
      Pqueue.push events ~prio:(now +. service.(task)) (Core_done core_id)
    end
  in
  let enqueue now task birth =
    let core_id = assignment.(task) in
    let core = cores.(core_id) in
    if Queue.length core.queue >= cfg.max_queue then incr dropped
    else begin
      Queue.add (task, birth) core.queue;
      start_if_idle now core_id
    end
  in
  let rec loop () =
    if not (Pqueue.is_empty events) then begin
      let now, ev = Pqueue.pop_min events in
      if now <= horizon then begin
        (match ev with
        | Emit s ->
          enqueue now s now;
          let rate = (List.assoc s w.sources) *. cfg.load in
          Pqueue.push events ~prio:(now +. Prng.exponential rng ~rate) (Emit s)
        | Arrive (task, birth) -> enqueue now task birth
        | Core_done core_id ->
          let core = cores.(core_id) in
          let task, birth = Queue.pop core.queue in
          (* Forward downstream, paying send CPU on this core. *)
          let send_cpu = ref 0. in
          if is_sink.(task) then begin
            if now >= cfg.warmup then begin
              incr completed;
              latencies := (now -. birth) :: !latencies
            end
          end
          else
            List.iter
              (fun (dst, p) ->
                if Prng.float rng 1.0 < p then begin
                  let lvl = H.lca_level hy assignment.(task) assignment.(dst) in
                  send_cpu := !send_cpu +. comm_cpu lvl;
                  let ready = now +. !send_cpu in
                  let start, occupancy = cross_link ready assignment.(task) lvl in
                  Pqueue.push events
                    ~prio:(start +. occupancy +. net_latency lvl)
                    (Arrive (dst, birth))
                end)
              out_edges.(task);
          let free_at = now +. !send_cpu in
          core.busy_time <- core.busy_time +. (free_at -. core.busy_since);
          core.busy <- false;
          (* The send overhead occupies the core; model it by restarting the
             core only after it. *)
          if not (Queue.is_empty core.queue) then begin
            core.busy <- true;
            core.busy_since <- free_at;
            let next_task, _ = Queue.peek core.queue in
            Pqueue.push events ~prio:(free_at +. service.(next_task)) (Core_done core_id)
          end);
        loop ()
      end
    end
  in
  loop ();
  let lat = Array.of_list !latencies in
  let avg_latency = if Array.length lat = 0 then nan else Hgp_util.Stats.mean lat in
  let p99_latency = if Array.length lat = 0 then nan else Hgp_util.Stats.quantile lat 0.99 in
  let max_core_utilization =
    Array.fold_left (fun acc c -> Float.max acc (c.busy_time /. horizon)) 0. cores
  in
  {
    completed = !completed;
    dropped = !dropped;
    avg_latency;
    p99_latency;
    max_core_utilization;
    throughput = float_of_int !completed /. cfg.duration;
  }

(* ---- drifting workload: delta streams against a live placement ---- *)

module Obs = Hgp_obs.Obs
module Graph = Hgp_graph.Graph
module Instance = Hgp_core.Instance
module Delta = Hgp_core.Delta
module Pipeline = Hgp_core.Pipeline
module Vcycle = Hgp_multilevel.Vcycle

type drift_params = {
  steps : int;
  edits_per_step : int;
  magnitude : float;
  structural_every : int;
  cold_every : int;
}

let default_drift_params =
  { steps = 20; edits_per_step = 2; magnitude = 0.5; structural_every = 0; cold_every = 5 }

type drift_backend = Exact of Pipeline.options | Multilevel of Vcycle.options

type drift_step = {
  d_step : int;
  d_edits : int;
  d_structural : bool;
  d_incr_ms : float;
  d_cold_ms : float;
  d_identical : bool;
  d_churn : float;
  d_certified : bool;
  d_resolved : int;
  d_reused : int;
}

type drift_report = {
  d_steps : drift_step list;
  d_final_n : int;
  d_mean_incr_ms : float;
  d_mean_cold_ms : float;
  d_amortized : float;
  d_all_certified : bool;
  d_all_identical : bool;
}

(* Edit stream against the CURRENT instance: reweights of distinct existing
   edges (rates drifting by up to [magnitude] relative), plus — on
   structural steps — one topology edit appended last, so a removal can
   only retire an edge the earlier reweights have already touched (the
   delta stays valid under sequential application). *)
let drift_delta rng inst ~edits ~magnitude ~structural =
  let g = inst.Instance.graph in
  let es = Graph.edges g in
  let m = Array.length es in
  let n = Graph.n g in
  let reweight idx =
    let u, v, w = es.(idx) in
    let f = 1. +. (magnitude *. ((2. *. Prng.float rng 1.) -. 1.)) in
    Delta.Reweight_edge (u, v, Float.max 1e-9 (w *. f))
  in
  let k = min edits m in
  let picks = Prng.sample_without_replacement rng ~n:m ~k in
  let reweights = Array.to_list (Array.map reweight picks) in
  if not structural then reweights
  else
    let edit =
      if Prng.bool rng && n >= 2 then begin
        (* add a chord between a probed non-adjacent pair *)
        let rec probe tries =
          if tries = 0 then reweight (Prng.int rng m)
          else
            let u = Prng.int rng n and v = Prng.int rng n in
            if u <> v && not (Graph.has_edge g u v) then
              Delta.Add_edge (min u v, max u v, 0.5 +. Prng.float rng 2.)
            else probe (tries - 1)
        in
        probe 16
      end
      else if m > 1 then begin
        (* remove an edge that is not a bridge: the exact decomposition
           requires a connected graph, so a removal that severs it would
           poison the whole stream.  One DSU pass over the other edges
           tells whether the candidate's endpoints stay connected. *)
        let keeps_connected skip =
          let parent = Array.init n Fun.id in
          let rec find x =
            if parent.(x) = x then x
            else begin
              parent.(x) <- find parent.(x);
              parent.(x)
            end
          in
          Array.iteri
            (fun i (u, v, _) ->
              if i <> skip then begin
                let a = find u and b = find v in
                if a <> b then parent.(a) <- b
              end)
            es;
          let u, v, _ = es.(skip) in
          find u = find v
        in
        let rec probe tries =
          if tries = 0 then reweight (Prng.int rng m)
          else
            let i = Prng.int rng m in
            if keeps_connected i then
              let u, v, _ = es.(i) in
              Delta.Remove_edge (u, v)
            else probe (tries - 1)
        in
        probe 8
      end
      else reweight 0
    in
    reweights @ [ edit ]

type drift_session = S_exact of Pipeline.session | S_ml of Vcycle.session

let run_drift ?(params = default_drift_params) rng inst backend =
  let ms t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e6 in
  let sess =
    match backend with
    | Exact options -> (
      match Pipeline.start_session inst options with
      | Some (s, _) -> S_exact s
      | None -> invalid_arg "Des.run_drift: instance is infeasible")
    | Multilevel options ->
      let s, _ = Vcycle.start_session ~options inst in
      S_ml s
  in
  let current_instance () =
    match sess with
    | S_exact s -> Pipeline.session_instance s
    | S_ml s -> Vcycle.session_instance s
  in
  let current_assignment () =
    match sess with
    | S_exact s -> Pipeline.session_assignment s
    | S_ml s -> Vcycle.session_assignment s
  in
  (* Cache-independent cold oracle: [set_caching false] bypasses the
     pipeline caches outright; the multilevel chain LRU ignores that flag,
     so it is dropped explicitly — sessions keep their own chain, only the
     next coarse re-solve pays a re-warm. *)
  let cold_solve inst' =
    Pipeline.set_caching false;
    Fun.protect
      ~finally:(fun () -> Pipeline.set_caching true)
      (fun () ->
        match backend with
        | Exact options -> (
          match Pipeline.run inst' options with
          | Some sol -> sol.Pipeline.assignment
          | None -> invalid_arg "Des.run_drift: cold re-solve infeasible")
        | Multilevel options ->
          Pipeline.clear_caches ();
          (Vcycle.solve ~options inst').Vcycle.solution.Pipeline.assignment)
  in
  let steps = ref [] in
  for step = 1 to params.steps do
    let structural =
      params.structural_every > 0 && step mod params.structural_every = 0
    in
    let delta =
      drift_delta rng (current_instance ()) ~edits:params.edits_per_step
        ~magnitude:params.magnitude ~structural
    in
    let t0 = Obs.now_ns () in
    let churn, certified, resolved, reused =
      match sess with
      | S_exact s -> (
        match Pipeline.resolve_delta s delta with
        | Some r ->
          ( r.Pipeline.churn,
            r.Pipeline.certified,
            r.Pipeline.resolved_subtrees,
            r.Pipeline.reused_subtrees )
        | None -> invalid_arg "Des.run_drift: delta made the instance infeasible")
      | S_ml s ->
        let r = Vcycle.resolve_delta s delta in
        (r.Vcycle.u_churn, r.Vcycle.u_certified, r.Vcycle.u_resolved_subtrees,
         r.Vcycle.u_reused_subtrees)
    in
    let incr_ms = ms t0 (Obs.now_ns ()) in
    let cold_ms, identical =
      if params.cold_every > 0 && step mod params.cold_every = 0 then begin
        let inst' = current_instance () in
        let c0 = Obs.now_ns () in
        let cold = cold_solve inst' in
        (ms c0 (Obs.now_ns ()), cold = current_assignment ())
      end
      else (nan, true)
    in
    steps :=
      {
        d_step = step;
        d_edits = List.length delta;
        d_structural = structural;
        d_incr_ms = incr_ms;
        d_cold_ms = cold_ms;
        d_identical = identical;
        d_churn = churn;
        d_certified = certified;
        d_resolved = resolved;
        d_reused = reused;
      }
      :: !steps
  done;
  let steps = List.rev !steps in
  let mean f xs = match xs with [] -> nan | _ -> List.fold_left (fun a x -> a +. f x) 0. xs /. float_of_int (List.length xs) in
  let sampled = List.filter (fun s -> Float.is_finite s.d_cold_ms) steps in
  let d_mean_incr_ms = mean (fun s -> s.d_incr_ms) steps in
  let d_mean_cold_ms = mean (fun s -> s.d_cold_ms) sampled in
  {
    d_steps = steps;
    d_final_n = Instance.n (current_instance ());
    d_mean_incr_ms;
    d_mean_cold_ms;
    d_amortized = d_mean_incr_ms /. d_mean_cold_ms;
    d_all_certified = List.for_all (fun s -> s.d_certified) steps;
    d_all_identical = List.for_all (fun s -> s.d_identical) steps;
  }
