(** Discrete-event simulation of a pinned stream-processing system — the
    motivating scenario of the paper (TidalRace-style task pinning), used to
    show that the abstract HGP cost tracks real latency and throughput.

    Model:
    - operators of a dataflow DAG are pinned to hierarchy leaves (cores);
    - each core executes one tuple at a time, FCFS across its operators;
    - an operator's service time per tuple is [demand / rate], so a stream
      at its nominal rate loads the core by exactly its HGP demand;
    - forwarding a tuple along an edge whose endpoints sit on cores with
      LCA level [j] costs the {e sending core} an extra
      [comm_overhead * cm(j) / cm(0)] of CPU time and delays the tuple by a
      network latency [latency_per_cm * cm(j)] — co-located operators
      communicate for free, which is precisely the structure the HGP
      objective optimizes;
    - sources emit Poisson streams; join/fan-out semantics follow edge rates
      probabilistically;
    - sinks record end-to-end tuple latency.

    The simulation is deterministic given the seed. *)

type workload = {
  n_tasks : int;
  sources : (int * float) list;  (** (task, emission rate) *)
  edges : (int * int * float) list;  (** dataflow edges (src, dst, rate) *)
  rates : float array;  (** nominal processed rate per task *)
  demands : float array;  (** HGP demand (core fraction) per task *)
  sinks : int list;
}

(* An adapter from generated stream DAGs lives in
   [Hgp_workloads.Stream_dag.to_sim_workload] to keep this library free of a
   workloads dependency. *)

type config = {
  duration : float;  (** simulated seconds after warmup *)
  warmup : float;  (** initial transient discarded from metrics *)
  load : float;  (** source-rate multiplier (1.0 = nominal) *)
  comm_overhead : float;  (** CPU seconds per forwarded tuple at cm(0) *)
  latency_per_cm : float;  (** network seconds per unit of [cm] *)
  link_occupancy : float;
      (** exclusive seconds a tuple occupies the shared link of the
          endpoints' lowest common ancestor, at cm(0), scaled by
          [cm(lvl)/cm(0)]; [0.] (default) disables link contention *)
  max_queue : int;  (** per-core queue bound; overflowing tuples drop *)
  seed : int;
}

val default_config : config

type metrics = {
  completed : int;  (** tuples absorbed by sinks during measurement *)
  dropped : int;  (** tuples lost to full queues *)
  avg_latency : float;  (** mean end-to-end latency (s); [nan] if none *)
  p99_latency : float;
  max_core_utilization : float;  (** busiest core's busy fraction *)
  throughput : float;  (** completed tuples per simulated second *)
}

(** [run workload hierarchy ~assignment config] simulates the pinned system.
    [assignment.(task)] must be a valid hierarchy leaf. *)
val run :
  workload ->
  Hgp_hierarchy.Hierarchy.t ->
  assignment:int array ->
  config ->
  metrics

(** {1 Drifting workloads}

    The incremental re-partitioning scenario (docs/INCREMENTAL.md): the
    stream's rates drift, each drift step becomes a {!Hgp_core.Delta}
    against the live instance, and a solve {e session} re-solves only the
    dirty cone.  [run_drift] drives such a delta stream and measures the
    amortized incremental re-solve cost against periodically sampled cold
    full solves — the workload behind the CI incremental-smoke gate and
    bench experiment E21. *)

type drift_params = {
  steps : int;  (** drift steps (one delta each) *)
  edits_per_step : int;  (** edge reweights per delta *)
  magnitude : float;  (** max relative weight perturbation, e.g. [0.5] *)
  structural_every : int;
      (** every k-th delta also adds or removes one edge; [0] keeps the
          stream reweight-only (the multilevel fast path) *)
  cold_every : int;
      (** sample a cache-bypassing cold solve (timing + bit-identity check)
          every k-th step; [0] disables — note a multilevel cold sample
          clears the process-wide caches (sessions keep their own state) *)
}

(** [{steps = 20; edits_per_step = 2; magnitude = 0.5; structural_every = 0;
     cold_every = 5}] *)
val default_drift_params : drift_params

type drift_backend =
  | Exact of Hgp_core.Pipeline.options  (** flat pipeline session *)
  | Multilevel of Hgp_multilevel.Vcycle.options  (** V-cycle session *)

type drift_step = {
  d_step : int;  (** 1-based *)
  d_edits : int;
  d_structural : bool;
  d_incr_ms : float;  (** wall time of the incremental re-solve *)
  d_cold_ms : float;  (** wall time of the sampled cold solve; [nan] unsampled *)
  d_identical : bool;
      (** cold assignment bit-identical to the session's; vacuously [true]
          on unsampled steps *)
  d_churn : float;
  d_certified : bool;
  d_resolved : int;  (** subtree-DP nodes recomputed *)
  d_reused : int;  (** subtree-DP nodes spliced from snapshots *)
}

type drift_report = {
  d_steps : drift_step list;  (** in step order *)
  d_final_n : int;
  d_mean_incr_ms : float;
  d_mean_cold_ms : float;  (** over sampled steps; [nan] when [cold_every = 0] *)
  d_amortized : float;  (** [mean_incr / mean_cold]; [nan] without samples *)
  d_all_certified : bool;
  d_all_identical : bool;
}

(** [drift_delta rng inst ~edits ~magnitude ~structural] is one drift step's
    delta against [inst]: [min edits m] reweights of distinct edges; when
    [structural], one add/remove-edge edit appended last.  Deterministic in
    [rng]; always valid for [Delta.apply inst], and removals never pick a
    bridge (the exact decomposition requires a connected graph, so a
    disconnecting edit would poison every later step of the stream). *)
val drift_delta :
  Hgp_util.Prng.t ->
  Hgp_core.Instance.t ->
  edits:int ->
  magnitude:float ->
  structural:bool ->
  Hgp_core.Delta.t

(** [run_drift rng inst backend] opens a session on [inst], streams
    [params.steps] drift deltas through it, and reports per-step and
    aggregate metrics.  Raises [Invalid_argument] if the initial instance or
    any drifted instance is infeasible (drift magnitudes that keep weights
    positive cannot change feasibility — demands are untouched). *)
val run_drift :
  ?params:drift_params ->
  Hgp_util.Prng.t ->
  Hgp_core.Instance.t ->
  drift_backend ->
  drift_report
