type t = int64

let seed = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let add_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let add_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * shift)))
  done;
  !h

(* Tag bytes keep field types from aliasing (e.g. int 1 vs float 1.0 vs
   Some 1); every [add_*] below leads with its tag. *)
let tag h b = add_byte h b

let add_int h x = add_int64 (tag h 0x01) (Int64.of_int x)
let add_float h x = add_int64 (tag h 0x02) (Int64.bits_of_float x)
let add_bool h x = add_byte (tag h 0x03) (if x then 1 else 0)

let add_string h s =
  let h = ref (add_int64 (tag h 0x04) (Int64.of_int (String.length s))) in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  !h

let add_int_array h a =
  let h = ref (add_int64 (tag h 0x05) (Int64.of_int (Array.length a))) in
  Array.iter (fun x -> h := add_int64 !h (Int64.of_int x)) a;
  !h

let add_float_array h a =
  let h = ref (add_int64 (tag h 0x06) (Int64.of_int (Array.length a))) in
  Array.iter (fun x -> h := add_int64 !h (Int64.bits_of_float x)) a;
  !h

let add_option f h = function
  | None -> tag h 0x07
  | Some x -> f (tag h 0x08) x

let combine h h' = add_int64 (tag h 0x09) h'

let to_hex h = Printf.sprintf "%016Lx" h
