type t = {
  limit : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_progress : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable stopping : bool;
}

(* True on pool-worker domains: an inner [run_batch] issued from a task must
   execute inline — queuing it behind the very workers that are blocked on
   its completion would deadlock. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let create ~size =
  if size < 0 then invalid_arg "Domain_pool.create: negative size";
  {
    limit = size;
    mutex = Mutex.create ();
    work_available = Condition.create ();
    batch_progress = Condition.create ();
    queue = Queue.create ();
    workers = [];
    stopping = false;
  }

let size t = t.limit
let spawned t = List.length t.workers

let worker_loop t () =
  Domain.DLS.set in_worker true;
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work_available t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
      (* stopping and drained *)
      Mutex.unlock t.mutex;
      ()
    | Some task ->
      Mutex.unlock t.mutex;
      task ();
      next ()
  in
  next ()

(* Called with [t.mutex] held.  Spawn failure (domain limit reached) is not
   fatal: the pool just runs with fewer workers, or the caller falls back to
   inline execution when none could be spawned at all. *)
let ensure_workers t wanted =
  let wanted = min wanted t.limit in
  let ok = ref true in
  while !ok && List.length t.workers < wanted do
    match Domain.spawn (worker_loop t) with
    | d -> t.workers <- d :: t.workers
    | exception _ -> ok := false
  done

let run_inline tasks =
  Array.map (fun task -> try Ok (task ()) with exn -> Error exn) tasks

let run_batch t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.limit = 0 || Domain.DLS.get in_worker then run_inline tasks
  else begin
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      run_inline tasks
    end
    else begin
      ensure_workers t n;
      if t.workers = [] then begin
        Mutex.unlock t.mutex;
        run_inline tasks
      end
      else begin
        let results = Array.make n None in
        let remaining = ref n in
        let slot i () =
          let r = try Ok (tasks.(i) ()) with exn -> Error exn in
          Mutex.lock t.mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast t.batch_progress;
          Mutex.unlock t.mutex
        in
        for i = 0 to n - 1 do
          Queue.add (slot i) t.queue
        done;
        Condition.broadcast t.work_available;
        while !remaining > 0 do
          Condition.wait t.batch_progress t.mutex
        done;
        Mutex.unlock t.mutex;
        Array.map
          (function
            | Some r -> r
            | None -> Error (Failure "Domain_pool.run_batch: slot never completed"))
          results
      end
    end
  end

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let shared_pool = ref None
let shared_mutex = Mutex.create ()

let shared () =
  Mutex.lock shared_mutex;
  let t =
    match !shared_pool with
    | Some t -> t
    | None ->
      let t = create ~size:(max 1 (Domain.recommended_domain_count () - 1)) in
      shared_pool := Some t;
      at_exit (fun () -> shutdown t);
      t
  in
  Mutex.unlock shared_mutex;
  t
