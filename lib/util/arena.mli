(** Reusable flat scratch storage for allocation-free hot loops.

    The DP kernel of [Tree_dp] runs entirely on these structures: growable
    int/float buffers for packed per-node state, and an open-addressed
    int-keyed table (struct-of-arrays slots) for the merge accumulator.
    All of them keep their capacity across uses — clearing is O(1) — so a
    workspace that owns them amortises allocation to zero in steady state.
    See docs/ARCHITECTURE.md, "DP kernel & workspaces". *)

(** Growable [int] buffer.  [clear] resets the length, never the capacity. *)
module Ibuf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val capacity : t -> int

  (** Times the backing array was reallocated (the [workspace.grows] feed). *)
  val grows : t -> int

  val clear : t -> unit
  val reserve : t -> int -> unit
  val push : t -> int -> unit

  (** [alloc t n] appends [n] uninitialised slots, returning the offset of
      the first — segment-style allocation for packed per-node storage. *)
  val alloc : t -> int -> int

  val get : t -> int -> int
  val set : t -> int -> int -> unit

  (** The backing array (valid indices [0 .. length - 1]; invalidated by the
      next growth).  Exposed so kernels can index without bounds-check-heavy
      wrappers in their inner loops. *)
  val data : t -> int array
end

(** Growable [float] buffer; same contract as {!Ibuf}. *)
module Fbuf : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val capacity : t -> int
  val grows : t -> int
  val clear : t -> unit
  val reserve : t -> int -> unit
  val push : t -> float -> unit
  val alloc : t -> int -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val data : t -> float array
end

(** Open-addressed hash table from non-negative [int] keys to a float cost
    plus a 3-int payload, stored as parallel arrays (struct-of-arrays).

    - power-of-two capacity, linear probing, Fibonacci hashing;
    - load factor capped at 1/2;
    - {!clear} bumps an epoch instead of touching slots — O(1) reuse;
    - {!upsert} keeps the minimum cost per key, breaking exact-cost ties by
      the lexicographically smallest payload, a canonical rule independent
      of insertion order. *)
module Table : sig
  type t

  val create : ?capacity:int -> unit -> t
  val size : t -> int
  val capacity : t -> int
  val grows : t -> int
  val clear : t -> unit

  (** [upsert t key cost b1 b2 b3] returns [true] iff [key] was new. *)
  val upsert : t -> int -> float -> int -> int -> int -> bool

  (** {2 Raw-slot access}

      Without flambda every float argument crossing a module boundary is
      boxed; the DP merge performs millions of upserts, so its kernel
      inlines the probe/update against these parallel arrays (keeping the
      exact {!upsert} semantics).  A slot [s] is occupied iff
      [(marks t).(s) = epoch t].  Every accessor is invalidated by growth:
      call {!ensure_room} before each insertion and re-read them when it
      returns [true]. *)

  val mask : t -> int
  val epoch : t -> int
  val marks : t -> int array
  val keys : t -> int array
  val costs : t -> float array
  val b1s : t -> int array
  val b2s : t -> int array
  val b3s : t -> int array

  (** Grow if one more insertion would exceed the load factor; [true] means
      the backing arrays were replaced (and the epoch reset). *)
  val ensure_room : t -> bool

  (** Record one insertion performed directly through the raw slots. *)
  val added : t -> unit

  val find_opt : t -> int -> float option
  val mem : t -> int -> bool

  (** Visits occupied slots in slot order (not canonical — sort after
      extraction when order matters). *)
  val fold_slots : t -> ('a -> int -> float -> int -> int -> int -> 'a) -> 'a -> 'a

  val iter : t -> (int -> float -> int -> int -> int -> unit) -> unit
end

(** [sort_perm_by_cost_key perm lo len costs keys] heapsorts the index
    slice [perm.(lo .. lo+len-1)] by [(costs.(i), keys.(i))] ascending —
    in place, allocation-free, deterministic. *)
val sort_perm_by_cost_key : int array -> int -> int -> float array -> int array -> unit

(** [sort_perm_by_key perm lo len keys] — same, ordering by key alone. *)
val sort_perm_by_key : int array -> int -> int -> int array -> unit

(** [sort_stride4_by_key data off count] heapsorts [count] 4-int blocks at
    [data.(off), data.(off+4), ...] by each block's first element — lays
    packed backpointer segments out in key order for binary search. *)
val sort_stride4_by_key : int array -> int -> int -> unit

