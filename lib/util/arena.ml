(* Reusable flat scratch storage for allocation-free hot loops.

   Growable int/float buffers plus an open-addressed int-keyed table laid
   out struct-of-arrays.  Everything here is built for *reuse*: buffers
   keep their capacity across solves, and the table clears by bumping an
   epoch instead of touching its slots, so steady-state use allocates
   nothing at all. *)

(* ---- growable int buffer ---- *)

module Ibuf = struct
  type t = { mutable data : int array; mutable len : int; mutable grows : int }

  let create ?(capacity = 64) () =
    { data = Array.make (max 1 capacity) 0; len = 0; grows = 0 }

  let length t = t.len
  let capacity t = Array.length t.data
  let grows t = t.grows
  let clear t = t.len <- 0

  let reserve t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while !cap < n do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap 0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger;
      t.grows <- t.grows + 1
    end

  let push t v =
    reserve t (t.len + 1);
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  (* [alloc t n] appends [n] uninitialised slots and returns the offset of
     the first — segment-style allocation for packed per-node storage. *)
  let alloc t n =
    reserve t (t.len + n);
    let off = t.len in
    t.len <- t.len + n;
    off

  let get t i = t.data.(i)
  let set t i v = t.data.(i) <- v
  let data t = t.data
end

(* ---- growable float buffer ---- *)

module Fbuf = struct
  type t = { mutable data : float array; mutable len : int; mutable grows : int }

  let create ?(capacity = 64) () =
    { data = Array.make (max 1 capacity) 0.; len = 0; grows = 0 }

  let length t = t.len
  let capacity t = Array.length t.data
  let grows t = t.grows
  let clear t = t.len <- 0

  let reserve t n =
    if n > Array.length t.data then begin
      let cap = ref (Array.length t.data) in
      while !cap < n do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger;
      t.grows <- t.grows + 1
    end

  let push t v =
    reserve t (t.len + 1);
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let alloc t n =
    reserve t (t.len + n);
    let off = t.len in
    t.len <- t.len + n;
    off

  let get t i = t.data.(i)
  let set t i v = t.data.(i) <- v
  let data t = t.data
end

(* ---- open-addressed flat table: int key -> cost + 3-int payload ---- *)

(* Slots live in parallel arrays; a slot is occupied iff its [marks] entry
   equals the current [epoch], so [clear] is one increment.  Linear probing
   over a power-of-two capacity; resident entries are capped at half the
   slot count, which keeps probe chains short. *)
module Table = struct
  type t = {
    mutable mask : int;  (* capacity - 1, capacity a power of two *)
    mutable keys : int array;
    mutable costs : float array;
    mutable b1 : int array;  (* back payload: previous key *)
    mutable b2 : int array;  (* back payload: child key *)
    mutable b3 : int array;  (* back payload: merge level *)
    mutable marks : int array;  (* occupied iff marks.(i) = epoch *)
    mutable epoch : int;
    mutable size : int;
    mutable grows : int;
  }

  let min_capacity = 16

  let rec pow2_at_least c n = if c >= n then c else pow2_at_least (2 * c) n

  let create ?(capacity = min_capacity) () =
    let cap = pow2_at_least min_capacity capacity in
    {
      mask = cap - 1;
      keys = Array.make cap 0;
      costs = Array.make cap 0.;
      b1 = Array.make cap 0;
      b2 = Array.make cap 0;
      b3 = Array.make cap 0;
      marks = Array.make cap (-1);
      epoch = 0;
      size = 0;
      grows = 0;
    }

  let size t = t.size
  let capacity t = t.mask + 1
  let grows t = t.grows

  let clear t =
    t.epoch <- t.epoch + 1;
    t.size <- 0

  (* Fibonacci hashing spreads consecutive signature keys (which differ by
     small stride multiples) across the slot range before masking. *)
  let hash key mask = (key * 0x2545F4914F6CDD1D) land max_int land mask

  (* Slot of [key], or the empty slot where it would go. *)
  let find_slot t key =
    let mask = t.mask in
    let i = ref (hash key mask) in
    while t.marks.(!i) = t.epoch && t.keys.(!i) <> key do
      i := (!i + 1) land mask
    done;
    !i

  let grow t =
    let old_cap = t.mask + 1 in
    let old_keys = t.keys
    and old_costs = t.costs
    and old_b1 = t.b1
    and old_b2 = t.b2
    and old_b3 = t.b3
    and old_marks = t.marks
    and old_epoch = t.epoch in
    let cap = 2 * old_cap in
    t.mask <- cap - 1;
    t.keys <- Array.make cap 0;
    t.costs <- Array.make cap 0.;
    t.b1 <- Array.make cap 0;
    t.b2 <- Array.make cap 0;
    t.b3 <- Array.make cap 0;
    t.marks <- Array.make cap (-1);
    t.epoch <- 0;
    t.grows <- t.grows + 1;
    for i = 0 to old_cap - 1 do
      if old_marks.(i) = old_epoch then begin
        let s = find_slot t old_keys.(i) in
        t.keys.(s) <- old_keys.(i);
        t.costs.(s) <- old_costs.(i);
        t.b1.(s) <- old_b1.(i);
        t.b2.(s) <- old_b2.(i);
        t.b3.(s) <- old_b3.(i);
        t.marks.(s) <- 0
      end
    done

  (* [upsert t key cost b1 b2 b3] keeps, per key, the smallest cost; on an
     exact cost tie the lexicographically smallest [(b1, b2, b3)] payload
     wins.  This rule is canonical — independent of insertion order — which
     is what makes the DP's backpointers deterministic regardless of how
     the merge loop enumerates states.  Returns [true] when [key] was not
     yet present. *)
  let upsert t key cost b1 b2 b3 =
    if 2 * (t.size + 1) > t.mask + 1 then grow t;
    let s = find_slot t key in
    if t.marks.(s) <> t.epoch then begin
      t.marks.(s) <- t.epoch;
      t.keys.(s) <- key;
      t.costs.(s) <- cost;
      t.b1.(s) <- b1;
      t.b2.(s) <- b2;
      t.b3.(s) <- b3;
      t.size <- t.size + 1;
      true
    end
    else begin
      let old = t.costs.(s) in
      if cost < old then begin
        t.costs.(s) <- cost;
        t.b1.(s) <- b1;
        t.b2.(s) <- b2;
        t.b3.(s) <- b3
      end
      else if
        cost = old
        && (b1 < t.b1.(s)
           || (b1 = t.b1.(s) && (b2 < t.b2.(s) || (b2 = t.b2.(s) && b3 < t.b3.(s)))))
      then begin
        t.b1.(s) <- b1;
        t.b2.(s) <- b2;
        t.b3.(s) <- b3
      end;
      false
    end

  (* Raw-slot access for inlined hot paths.  Without flambda, every float
     crossing a module boundary is boxed; a DP merge performs millions of
     upserts, so [Tree_dp] inlines the upsert against these arrays instead
     (semantics must match {!upsert} exactly).  All of these invalidate on
     {!grow} — callers re-read them when [ensure_room] returns [true]. *)
  let mask t = t.mask
  let epoch t = t.epoch
  let marks t = t.marks
  let keys t = t.keys
  let costs t = t.costs
  let b1s t = t.b1
  let b2s t = t.b2
  let b3s t = t.b3

  (* Grow if one more insertion would exceed the load factor; [true] means
     the backing arrays were replaced (and the epoch reset). *)
  let ensure_room t =
    if 2 * (t.size + 1) > t.mask + 1 then begin
      grow t;
      true
    end
    else false

  (* Record an insertion performed directly through the raw-slot arrays. *)
  let added t = t.size <- t.size + 1

  let find_opt t key =
    let s = find_slot t key in
    if t.marks.(s) = t.epoch then Some t.costs.(s) else None

  let mem t key =
    let s = find_slot t key in
    t.marks.(s) = t.epoch

  (* [fold_slots t f acc] visits occupied slots in slot order.  Exposed for
     extraction into sortable scratch arrays — consumers needing a canonical
     order must sort what they extract. *)
  let fold_slots t f acc =
    let r = ref acc in
    for i = 0 to t.mask do
      if t.marks.(i) = t.epoch then r := f !r t.keys.(i) t.costs.(i) t.b1.(i) t.b2.(i) t.b3.(i)
    done;
    !r

  let iter t f =
    for i = 0 to t.mask do
      if t.marks.(i) = t.epoch then f t.keys.(i) t.costs.(i) t.b1.(i) t.b2.(i) t.b3.(i)
    done
end

(* ---- permutation sort ---- *)

(* In-place heapsort of [perm.(lo .. lo+len-1)] ordering indices by
   [(costs.(i), keys.(i))] ascending.  Heapsort: no allocation, no closure
   in the compare, deterministic O(len log len) worst case.  [perm] holds
   slot/entry indices into the parallel [costs]/[keys] arrays. *)
let sort_perm_by_cost_key perm lo len (costs : float array) (keys : int array) =
  if len > 1 then begin
    let less i j =
      (* (cost, key) lexicographic *)
      let ci = costs.(i) and cj = costs.(j) in
      ci < cj || (ci = cj && keys.(i) < keys.(j))
    in
    let sift_down root last =
      let r = ref root in
      let continue = ref true in
      while !continue do
        let child = (2 * !r) + 1 in
        if child > last then continue := false
        else begin
          let child =
            if child + 1 <= last && less (perm.(lo + child)) (perm.(lo + child + 1)) then
              child + 1
            else child
          in
          if less (perm.(lo + !r)) (perm.(lo + child)) then begin
            let tmp = perm.(lo + !r) in
            perm.(lo + !r) <- perm.(lo + child);
            perm.(lo + child) <- tmp;
            r := child
          end
          else continue := false
        end
      done
    in
    for root = (len - 2) / 2 downto 0 do
      sift_down root (len - 1)
    done;
    for last = len - 1 downto 1 do
      let tmp = perm.(lo) in
      perm.(lo) <- perm.(lo + last);
      perm.(lo + last) <- tmp;
      sift_down 0 (last - 1)
    done
  end

(* In-place heapsort of [count] 4-int blocks at [data.(off ...)], ordered
   by each block's first element — lays backpointer segments out in key
   order so reconstruction can binary-search them. *)
let sort_stride4_by_key (data : int array) off count =
  if count > 1 then begin
    let swap_block i j =
      let bi = off + (4 * i) and bj = off + (4 * j) in
      for d = 0 to 3 do
        let tmp = data.(bi + d) in
        data.(bi + d) <- data.(bj + d);
        data.(bj + d) <- tmp
      done
    in
    let key i = data.(off + (4 * i)) in
    let sift_down root last =
      let r = ref root in
      let continue = ref true in
      while !continue do
        let child = (2 * !r) + 1 in
        if child > last then continue := false
        else begin
          let child = if child + 1 <= last && key child < key (child + 1) then child + 1 else child in
          if key !r < key child then begin
            swap_block !r child;
            r := child
          end
          else continue := false
        end
      done
    in
    for root = (count - 2) / 2 downto 0 do
      sift_down root (count - 1)
    done;
    for last = count - 1 downto 1 do
      swap_block 0 last;
      sift_down 0 (last - 1)
    done
  end

(* Same shape, ordering indices by [keys.(i)] alone — used to lay back
   segments out in key order for binary search. *)
let sort_perm_by_key perm lo len (keys : int array) =
  if len > 1 then begin
    let sift_down root last =
      let r = ref root in
      let continue = ref true in
      while !continue do
        let child = (2 * !r) + 1 in
        if child > last then continue := false
        else begin
          let child =
            if child + 1 <= last && keys.(perm.(lo + child)) < keys.(perm.(lo + child + 1))
            then child + 1
            else child
          in
          if keys.(perm.(lo + !r)) < keys.(perm.(lo + child)) then begin
            let tmp = perm.(lo + !r) in
            perm.(lo + !r) <- perm.(lo + child);
            perm.(lo + child) <- tmp;
            r := child
          end
          else continue := false
        end
      done
    in
    for root = (len - 2) / 2 downto 0 do
      sift_down root (len - 1)
    done;
    for last = len - 1 downto 1 do
      let tmp = perm.(lo) in
      perm.(lo) <- perm.(lo + last);
      perm.(lo + last) <- tmp;
      sift_down 0 (last - 1)
    done
  end
