(** A reusable pool of worker domains for per-solve task batches.

    [Domain.spawn] costs hundreds of microseconds (thread + minor heap + GC
    registration); paying it for every ensemble member of every solve is
    wasteful once solves repeat.  A pool spawns its workers once — lazily, on
    the first batch — and reuses them for the life of the process.

    Semantics are tailored to the solver's needs:

    - {b per-slot fault capture}: a task that raises fills its slot with
      [Error exn]; other slots are unaffected — the per-tree isolation
      contract of the supervised solve.
    - {b caller blocks}: [run_batch] returns only when every slot is filled,
      so no task of a batch ever outlives the call (the "never leaves a
      domain unjoined" guarantee moves here).
    - {b re-entrancy}: a task that itself calls [run_batch] (any pool) runs
      that inner batch inline on its own domain instead of deadlocking on
      the queue.
    - {b span isolation}: tasks run on worker domains whose telemetry span
      stack (domain-local) is empty between tasks, so a task's outermost
      span is a root — the same visibility as a freshly spawned domain.

    Workers never hold results or task closures between batches, so nothing
    is retained after [run_batch] returns. *)

type t

(** [create ~size] makes an independent pool of at most [size] workers
    ([size >= 0]; a pool of size 0 runs every batch inline). Workers are
    spawned on demand, never eagerly. *)
val create : size:int -> t

(** The process-wide pool sized [max 1 (recommended_domain_count () - 1)] —
    the same concurrency budget the solver previously applied per solve.
    Created on first use; joined automatically at process exit. *)
val shared : unit -> t

(** Maximum number of workers (the [size] given to {!create}). *)
val size : t -> int

(** Workers actually spawned so far. *)
val spawned : t -> int

(** [run_batch t tasks] runs every task to completion and returns one
    [Ok result] or [Error exn] per slot, in order.  At most [size t] tasks
    run concurrently; the caller blocks (it does not steal work, so its own
    domain-local state never leaks into task telemetry).  Falls back to
    inline sequential execution when called from inside a pool worker, when
    the pool has size 0, or when domain spawning fails. *)
val run_batch : t -> (unit -> 'a) array -> ('a, exn) result array

(** [shutdown t] stops and joins all workers; the pool runs inline
    afterwards.  Idempotent.  Called automatically for {!shared} at exit. *)
val shutdown : t -> unit
