(** Per-domain pools of DP scratch arenas.

    A workspace bundles every scratch structure the flat DP kernel of
    [Tree_dp] needs — the merge-accumulator table, packed per-node state
    and backpointer stores, and the extraction/permutation buffers of the
    sorted prune passes.  One lives on each domain (via [Domain.DLS]), so
    the worker domains of {!Domain_pool} reuse their own scratch across
    solves and parallel ensemble members never contend for it.

    Ownership rule: a workspace belongs to exactly one in-flight solve on
    its domain.  {!acquire} hands out the domain's resident workspace and
    marks it busy; a nested acquire on the same domain (re-entrant solve)
    gets a fresh transient workspace instead.  See docs/ARCHITECTURE.md,
    "DP kernel & workspaces". *)

type t = {
  tbl : Arena.Table.t;  (** merge accumulator: key → cost + back payload *)
  node_keys : Arena.Ibuf.t;  (** packed per-node state tables: keys *)
  node_costs : Arena.Fbuf.t;  (** packed per-node state tables: costs *)
  back_store : Arena.Ibuf.t;  (** packed backpointer segments, stride 4 *)
  ekeys : Arena.Ibuf.t;  (** merge-result extraction: keys *)
  ecosts : Arena.Fbuf.t;  (** merge-result extraction: costs *)
  eb1 : Arena.Ibuf.t;  (** extraction: back previous-key *)
  eb2 : Arena.Ibuf.t;  (** extraction: back child-key *)
  eb3 : Arena.Ibuf.t;  (** extraction: back merge-level *)
  perm : Arena.Ibuf.t;  (** index permutation for sorted passes *)
  sigs : Arena.Ibuf.t;  (** decoded signature matrix (entries × h) *)
  kept : Arena.Ibuf.t;  (** surviving entry indices after pruning *)
  mutable uses : int;  (** solves served so far (feeds [workspace.reuses]) *)
}

(** [create ()] builds a fresh, unpooled workspace (tests, transients). *)
val create : unit -> t

(** [note_use ws] records one solve served by [ws]; [true] when the
    workspace already served an earlier solve — the [workspace.reuses]
    feed (the consumer bumps the counter, [Hgp_util] cannot see [Obs]). *)
val note_use : t -> bool

(** Cumulative growth events across all member arenas; report the delta
    over a borrow window as the [workspace.grows] counter. *)
val grows : t -> int

(** [reset ws] clears lengths, keeping every capacity. *)
val reset : t -> unit

(** A borrow of a workspace.  [slot] is [None] for transient (re-entrant)
    borrows. *)
type lease = { workspace : t; slot : slot option }

and slot

(** [acquire ()] borrows this domain's workspace (reset, marked busy), or a
    transient one when the resident workspace is already borrowed. *)
val acquire : unit -> lease

(** [release lease] returns the workspace to its domain.  Transient leases
    release to nothing. *)
val release : lease -> unit

(** [with_ws f] is [acquire]/[release] with exception safety. *)
val with_ws : (lease -> 'a) -> 'a
