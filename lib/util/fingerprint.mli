(** Content fingerprints for cache keys (FNV-1a, 64-bit).

    A fingerprint is an immutable accumulator: feed it the fields that define
    an artifact and use the final value as a content-addressed cache key.
    Distinct field {e types} are domain-separated with a tag byte, so e.g.
    [add_int h 1] and [add_float h 1.0] diverge, as do [add_option f h None]
    and [add_option f h (Some x)] for any [x].

    FNV-1a is not cryptographic — collisions are possible in principle — but
    over 64 bits they are vanishingly unlikely for the handful of live cache
    entries these keys index, and the function is allocation-free and fast
    over the large CSR arrays it must digest. *)

type t = int64

(** The FNV-1a offset basis — the empty fingerprint. *)
val seed : t

val add_int : t -> int -> t
val add_int64 : t -> int64 -> t
val add_bool : t -> bool -> t

(** Digests the IEEE-754 bit pattern, so [-0.] <> [0.] and [nan]s are stable. *)
val add_float : t -> float -> t

val add_string : t -> string -> t

(** Arrays are length-prefixed, so [[|1|]; [|2|]] and [[|1; 2|]; [||]]
    digest differently. *)
val add_int_array : t -> int array -> t

val add_float_array : t -> float array -> t

(** [add_option f h o] domain-separates [None] from [Some] before applying
    [f] to the payload. *)
val add_option : (t -> 'a -> t) -> t -> 'a option -> t

(** [combine h h'] folds a finished fingerprint into another (tagged, so it
    is not equivalent to hashing the concatenated inputs). *)
val combine : t -> t -> t

(** 16-digit lowercase hex, for logs and [--cache-stats] output. *)
val to_hex : t -> string
