(* Per-domain pools of DP scratch arenas.

   One workspace per domain, handed out through [Domain.DLS]: the pool
   workers of [Domain_pool] each lazily materialise their own on first DP
   solve and keep it for the domain's lifetime, so parallel ensemble solves
   never share scratch and never reallocate it.  A re-entrant acquire (a
   solve nested inside a solve on the same domain) falls back to a fresh
   transient workspace rather than corrupting the one in use. *)

type t = {
  tbl : Arena.Table.t;  (* merge accumulator: key -> cost + back payload *)
  node_keys : Arena.Ibuf.t;  (* packed per-node state tables: keys *)
  node_costs : Arena.Fbuf.t;  (* packed per-node state tables: costs *)
  back_store : Arena.Ibuf.t;  (* packed backpointer segments, stride 4 *)
  ekeys : Arena.Ibuf.t;  (* merge-result extraction: keys *)
  ecosts : Arena.Fbuf.t;  (* merge-result extraction: costs *)
  eb1 : Arena.Ibuf.t;  (* extraction: back previous-key *)
  eb2 : Arena.Ibuf.t;  (* extraction: back child-key *)
  eb3 : Arena.Ibuf.t;  (* extraction: back merge-level *)
  perm : Arena.Ibuf.t;  (* index permutation for sorted passes *)
  sigs : Arena.Ibuf.t;  (* decoded signature matrix (entries x h) *)
  kept : Arena.Ibuf.t;  (* surviving entry indices after pruning *)
  mutable uses : int;  (* solves served so far (feeds workspace.reuses) *)
}

let create () =
  {
    tbl = Arena.Table.create ~capacity:256 ();
    node_keys = Arena.Ibuf.create ~capacity:256 ();
    node_costs = Arena.Fbuf.create ~capacity:256 ();
    back_store = Arena.Ibuf.create ~capacity:1024 ();
    ekeys = Arena.Ibuf.create ~capacity:256 ();
    ecosts = Arena.Fbuf.create ~capacity:256 ();
    eb1 = Arena.Ibuf.create ~capacity:256 ();
    eb2 = Arena.Ibuf.create ~capacity:256 ();
    eb3 = Arena.Ibuf.create ~capacity:256 ();
    perm = Arena.Ibuf.create ~capacity:256 ();
    sigs = Arena.Ibuf.create ~capacity:256 ();
    kept = Arena.Ibuf.create ~capacity:64 ();
    uses = 0;
  }

(* [note_use ws] records one solve served by [ws]; true when the workspace
   already served an earlier solve (its scratch is being reused). *)
let note_use ws =
  let reused = ws.uses > 0 in
  ws.uses <- ws.uses + 1;
  reused

(* Total growth events across members — the [workspace.grows] feed (the
   caller reports the delta over a borrow window). *)
let grows ws =
  Arena.Table.grows ws.tbl
  + Arena.Ibuf.grows ws.node_keys
  + Arena.Fbuf.grows ws.node_costs
  + Arena.Ibuf.grows ws.back_store
  + Arena.Ibuf.grows ws.ekeys
  + Arena.Fbuf.grows ws.ecosts
  + Arena.Ibuf.grows ws.eb1
  + Arena.Ibuf.grows ws.eb2
  + Arena.Ibuf.grows ws.eb3
  + Arena.Ibuf.grows ws.perm
  + Arena.Ibuf.grows ws.sigs
  + Arena.Ibuf.grows ws.kept

(* Per-solve reset: lengths only, capacity (the whole point) is kept. *)
let reset ws =
  Arena.Table.clear ws.tbl;
  Arena.Ibuf.clear ws.node_keys;
  Arena.Fbuf.clear ws.node_costs;
  Arena.Ibuf.clear ws.back_store;
  Arena.Ibuf.clear ws.ekeys;
  Arena.Fbuf.clear ws.ecosts;
  Arena.Ibuf.clear ws.eb1;
  Arena.Ibuf.clear ws.eb2;
  Arena.Ibuf.clear ws.eb3;
  Arena.Ibuf.clear ws.perm;
  Arena.Ibuf.clear ws.sigs;
  Arena.Ibuf.clear ws.kept

type slot = { ws : t; mutable busy : bool }

let dls_key : slot Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { ws = create (); busy = false })

type lease = { workspace : t; slot : slot option }

let acquire () =
  let s = Domain.DLS.get dls_key in
  if s.busy then { workspace = create (); slot = None }
  else begin
    s.busy <- true;
    reset s.ws;
    { workspace = s.ws; slot = Some s }
  end

let release lease = match lease.slot with Some s -> s.busy <- false | None -> ()

let with_ws f =
  let lease = acquire () in
  Fun.protect ~finally:(fun () -> release lease) (fun () -> f lease)
