(** Bounded least-recently-used maps for artifact caches.

    Designed for a handful of large values (decomposition-tree ensembles,
    packed solutions), not for high entry counts: recency is tracked with a
    generation stamp per entry and eviction scans all entries for the oldest
    stamp, so [find]/[add] are O(1) amortized hash operations but each
    eviction is O(capacity).  With the intended capacities (tens of entries)
    this is cheaper and simpler than an intrusive list.

    Not thread-safe — callers that share a cache across domains must hold
    their own lock around every call (the solver's caches do). *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** current occupancy *)
}

(** [create ~capacity] — requires [capacity >= 1]. *)
val create : capacity:int -> ('k, 'v) t

(** [find t k] returns the cached value and refreshes its recency;
    counts a hit or a miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts or replaces the binding, evicting the
    least-recently-used entry when the cache is full.  Neither path counts
    as a hit or miss. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [mem t k] tests presence without touching recency or hit/miss stats. *)
val mem : ('k, 'v) t -> 'k -> bool

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

(** Drops all entries and (unlike {!stats} accumulation) keeps the
    hit/miss/eviction history intact. *)
val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> stats

(** Zeroes the hit/miss/eviction history without touching entries. *)
val reset_stats : ('k, 'v) t -> unit
