type ('k, 'v) entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some _ -> Hashtbl.remove t.table k
  | None -> if Hashtbl.length t.table >= t.capacity then evict_oldest t);
  let e = { value = v; stamp = 0 } in
  touch t e;
  Hashtbl.replace t.table k e

let mem t k = Hashtbl.mem t.table k
let length t = Hashtbl.length t.table
let capacity t = t.capacity
let clear t = Hashtbl.reset t.table

let stats (t : (_, _) t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; entries = Hashtbl.length t.table }

let reset_stats (t : (_, _) t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
