module Graph = Hgp_graph.Graph
module Tree = Hgp_tree.Tree
module Prng = Hgp_util.Prng
module Obs = Hgp_obs.Obs

type t = {
  tree : Tree.t;
  graph : Graph.t;
  leaf_of_vertex : int array;
  vertex_of_leaf : int array; (* -1 for internal tree nodes *)
}

type strategy = Low_diameter | Bfs_bisection | Gomory_hu

let strategy_name = function
  | Low_diameter -> "low_diameter"
  | Bfs_bisection -> "bfs_bisection"
  | Gomory_hu -> "gomory_hu"

(* Shared finisher: given the tree shape (parent pointers, ids in DFS order
   so parents precede children is NOT assumed — depths are computed by
   chasing) and the vertex<->leaf maps, compute every edge's weight as the
   exact G-cut induced by removing it: for each graph edge, add its weight to
   all tree edges on the leaf-to-leaf path. *)
let finish g ~root ~parent_arr ~leaf_of_vertex ~vertex_of_node =
  let total = Array.length parent_arr in
  let depth = Array.make total (-1) in
  let rec depth_of x =
    if x = root then 0
    else if depth.(x) >= 0 then depth.(x)
    else begin
      let d = 1 + depth_of parent_arr.(x) in
      depth.(x) <- d;
      d
    end
  in
  depth.(root) <- 0;
  for x = 0 to total - 1 do
    ignore (depth_of x)
  done;
  let weights = Array.make total 0. in
  Obs.span "decomposition.cut_weights" (fun () ->
  Graph.iter_edges
    (fun u v w ->
      let a = ref leaf_of_vertex.(u) and b = ref leaf_of_vertex.(v) in
      while depth.(!a) > depth.(!b) do
        weights.(!a) <- weights.(!a) +. w;
        a := parent_arr.(!a)
      done;
      while depth.(!b) > depth.(!a) do
        weights.(!b) <- weights.(!b) +. w;
        b := parent_arr.(!b)
      done;
      while !a <> !b do
        weights.(!a) <- weights.(!a) +. w;
        weights.(!b) <- weights.(!b) +. w;
        a := parent_arr.(!a);
        b := parent_arr.(!b)
      done)
    g);
  let tree = Tree.of_parents ~root ~parents:parent_arr ~weights in
  let vertex_of_leaf =
    Array.init total (fun id ->
        match Hashtbl.find_opt vertex_of_node id with Some v -> v | None -> -1)
  in
  { tree; graph = g; leaf_of_vertex; vertex_of_leaf }

let of_clustering g c =
  let n = Graph.n g in
  (* First pass: number tree nodes (root = 0, then DFS order). *)
  let parents = ref [] in
  let n_nodes = ref 0 in
  let leaf_of_vertex = Array.make n (-1) in
  let vertex_of_node = Hashtbl.create (2 * n) in
  let fresh parent =
    let id = !n_nodes in
    incr n_nodes;
    parents := (id, parent) :: !parents;
    id
  in
  let rec go parent cluster =
    let id = fresh parent in
    (match cluster with
    | Clustering.Leaf v ->
      if leaf_of_vertex.(v) <> -1 then
        invalid_arg "Decomposition.of_clustering: vertex appears twice";
      leaf_of_vertex.(v) <- id;
      Hashtbl.add vertex_of_node id v
    | Clustering.Node children -> List.iter (fun ch -> ignore (go id ch)) children);
    id
  in
  let root = go (-1) c in
  Array.iteri
    (fun v l ->
      if l = -1 then
        invalid_arg (Printf.sprintf "Decomposition.of_clustering: vertex %d missing" v))
    leaf_of_vertex;
  let total = !n_nodes in
  let parent_arr = Array.make total (-1) in
  List.iter (fun (id, p) -> parent_arr.(id) <- p) !parents;
  finish g ~root ~parent_arr ~leaf_of_vertex ~vertex_of_node

let of_spanning_shape g ~parents =
  let n = Graph.n g in
  if Array.length parents <> n then invalid_arg "Decomposition.of_spanning_shape: length";
  let root = ref (-1) in
  Array.iteri (fun v p -> if p = -1 then root := v) parents;
  if !root < 0 then invalid_arg "Decomposition.of_spanning_shape: no root";
  (* Vertices become internal nodes 0..n-1; dummy leaf for vertex v is n+v. *)
  let parent_arr = Array.make (2 * n) (-1) in
  Array.iteri (fun v p -> parent_arr.(v) <- p) parents;
  let leaf_of_vertex = Array.init n (fun v -> n + v) in
  let vertex_of_node = Hashtbl.create (2 * n) in
  for v = 0 to n - 1 do
    parent_arr.(n + v) <- v;
    Hashtbl.add vertex_of_node (n + v) v
  done;
  finish g ~root:!root ~parent_arr ~leaf_of_vertex ~vertex_of_node

let build ?(strategy = Low_diameter) rng g =
  if not (Hgp_graph.Traversal.is_connected g) then
    invalid_arg "Decomposition.build: graph must be connected";
  Hgp_resilience.Faults.fire "decomposition.build";
  Obs.span "decomposition.build" ~attrs:[ ("strategy", strategy_name strategy) ]
  @@ fun () ->
  let d =
    match strategy with
    | Low_diameter ->
      let c = Clustering.hierarchical rng g ~edge_length:Clustering.inverse_weight_length in
      of_clustering g c
    | Bfs_bisection ->
      let c = Clustering.bfs_bisection rng g ~edge_length:Clustering.inverse_weight_length in
      of_clustering g c
    | Gomory_hu ->
      let gh = Hgp_flow.Gomory_hu.build g in
      of_spanning_shape g ~parents:gh.Hgp_flow.Gomory_hu.parent
  in
  Obs.count "decomposition.trees_built" 1;
  Obs.count "decomposition.tree_nodes" (Tree.n_nodes d.tree);
  (* Corrupt action: silently swap the leaves of two graph vertices.  The
     tree stays structurally valid but its cut weights no longer describe the
     mapped vertices — exactly the kind of wrong-but-plausible data only
     end-to-end certification catches. *)
  (match Hgp_resilience.Faults.corrupt_index "decomposition.build" ~len:(Graph.n g) with
  | Some i when Graph.n g >= 2 ->
    let j = (i + 1) mod Graph.n g in
    let li = d.leaf_of_vertex.(i) and lj = d.leaf_of_vertex.(j) in
    d.leaf_of_vertex.(i) <- lj;
    d.leaf_of_vertex.(j) <- li;
    d.vertex_of_leaf.(li) <- j;
    d.vertex_of_leaf.(lj) <- i
  | _ -> ());
  d

let tree d = d.tree
let graph d = d.graph
let leaf_of_vertex d v = d.leaf_of_vertex.(v)

let vertex_of_leaf d l =
  let v = d.vertex_of_leaf.(l) in
  if v = -1 then invalid_arg "Decomposition.vertex_of_leaf: not a leaf";
  v

let tree_cut_weight d ~in_vertex_set =
  Hgp_tree.Treecut.min_cut_weight d.tree ~in_set:(fun l -> in_vertex_set d.vertex_of_leaf.(l))

let graph_cut_weight d ~in_vertex_set = Hgp_graph.Cuts.cut_weight d.graph in_vertex_set

let distortion_sample d rng ~trials =
  let n = Graph.n d.graph in
  let ratios = ref [] in
  for _ = 1 to trials do
    (* Grow a random BFS ball to get a nontrivial, clustered vertex set. *)
    let target = 1 + Prng.int rng (max 1 (n - 1)) in
    let src = Prng.int rng n in
    let order = Hgp_graph.Traversal.bfs_order d.graph src in
    let size = min target (Array.length order) in
    let members = Array.make n false in
    Array.iteri (fun i v -> if i < size then members.(v) <- true) order;
    let wg = graph_cut_weight d ~in_vertex_set:(fun v -> members.(v)) in
    if wg > 0. then begin
      let wt = tree_cut_weight d ~in_vertex_set:(fun v -> members.(v)) in
      ratios := (wt /. wg) :: !ratios
    end
  done;
  Array.of_list !ratios
