module Obs = Hgp_obs.Obs

type t = { trees : Decomposition.t array }

type strategy = Pure of Decomposition.strategy | Mixed

let strategy_name = function
  | Pure s -> Decomposition.strategy_name s
  | Mixed -> "mixed"

let mixed_cycle =
  [| Decomposition.Low_diameter; Decomposition.Bfs_bisection; Decomposition.Gomory_hu |]

let sample ?(strategy = Pure Decomposition.Low_diameter) rng g ~size =
  if size < 1 then invalid_arg "Ensemble.sample: size must be >= 1";
  let shape_of i =
    match strategy with
    | Pure s -> s
    | Mixed -> mixed_cycle.(i mod Array.length mixed_cycle)
  in
  let trees =
    Array.init size (fun i ->
        let rng' = Hgp_util.Prng.split rng in
        let shape = shape_of i in
        (* One span per shape so a mixed ensemble reports how its sampling
           time splits across strategies. *)
        Obs.span ("ensemble.build." ^ Decomposition.strategy_name shape) (fun () ->
            Decomposition.build ~strategy:shape rng' g))
  in
  Obs.count "ensemble.trees_sampled" size;
  { trees }

let sample_isolated ?(strategy = Pure Decomposition.Low_diameter)
    ?(deadline = Hgp_resilience.Deadline.none) rng g ~size =
  if size < 1 then invalid_arg "Ensemble.sample_isolated: size must be >= 1";
  let shape_of i =
    match strategy with
    | Pure s -> s
    | Mixed -> mixed_cycle.(i mod Array.length mixed_cycle)
  in
  let failures = ref [] in
  let trees = ref [] in
  let i = ref 0 in
  while !i < size && not (Hgp_resilience.Deadline.expired deadline) do
    (* Split before trying: slot [i] consumes its RNG stream whether or not
       the build survives, keeping later trees deterministic. *)
    let rng' = Hgp_util.Prng.split rng in
    let shape = shape_of !i in
    (try
       let d =
         Obs.span ("ensemble.build." ^ Decomposition.strategy_name shape) (fun () ->
             Decomposition.build ~strategy:shape rng' g)
       in
       trees := d :: !trees
     with exn ->
       Obs.count "ensemble.build_failures" 1;
       failures := (!i, exn) :: !failures);
    incr i
  done;
  let trees = Array.of_list (List.rev !trees) in
  Obs.count "ensemble.trees_sampled" (Array.length trees);
  ({ trees }, List.rev !failures)

let size e = Array.length e.trees
let get e i = e.trees.(i)
let to_list e = Array.to_list e.trees

let best_of e f =
  let best = ref None in
  Array.iteri
    (fun i d ->
      let result, score = f d in
      match !best with
      | Some (_, _, s) when s <= score -> ()
      | _ -> best := Some (i, result, score))
    e.trees;
  match !best with
  | Some x -> x
  | None -> invalid_arg "Ensemble.best_of: empty ensemble"

let average_distortion e rng ~trials =
  let means =
    Array.map
      (fun d ->
        let ratios = Decomposition.distortion_sample d rng ~trials in
        if Array.length ratios = 0 then 1.0 else Hgp_util.Stats.mean ratios)
      e.trees
  in
  Hgp_util.Stats.mean means
