(** Decomposition trees (Section 4 of the paper).

    A decomposition tree [T] for graph [G] has a bijection between its leaves
    and [V(G)]; the weight of every tree edge equals the [G]-weight of the cut
    induced by removing it (the leaf bipartition), so Proposition 1 —
    [w_T(CUT_T(P_T)) >= w(CUT_G(m(P_T)))] — holds exactly by construction,
    whatever the tree's shape.  Three shape strategies are provided; all share
    the same exact-cut weight computation. *)

type t

(** How to choose the shape of a decomposition tree. *)
type strategy =
  | Low_diameter
      (** recursive random-shift low-diameter clustering (CKR/MPX) — the
          default, carries the [O(log n)] expected-distortion guarantee *)
  | Bfs_bisection
      (** recursive balanced halving of a Dijkstra ordering — geometric
          splits, strong on meshes *)
  | Gomory_hu
      (** the shape of a Gomory–Hu (flow-equivalent) cut tree — groups
          vertices by connectivity; costs [n - 1] max-flows *)

(** [strategy_name s] is a stable lowercase identifier ("low_diameter",
    "bfs_bisection", "gomory_hu") used in telemetry attributes and reports. *)
val strategy_name : strategy -> string

(** [of_clustering g c] builds the decomposition tree of a hierarchical
    clustering of [g].  The clustering must cover every vertex exactly once.
    Unary chains in [c] are preserved as given. *)
val of_clustering : Hgp_graph.Graph.t -> Clustering.cluster -> t

(** [of_spanning_shape g ~parents] builds a decomposition tree from a tree
    {e on the vertices themselves} ([parents.(root) = -1]): every vertex
    becomes an internal node carrying a fresh dummy leaf, and all edge
    weights are recomputed as exact induced cuts. *)
val of_spanning_shape : Hgp_graph.Graph.t -> parents:int array -> t

(** [build ?strategy rng g] samples one decomposition tree of the connected
    graph [g] (default {!Low_diameter}). *)
val build : ?strategy:strategy -> Hgp_util.Prng.t -> Hgp_graph.Graph.t -> t

(** [tree d] is the underlying rooted tree. *)
val tree : t -> Hgp_tree.Tree.t

(** [graph d] is the underlying graph. *)
val graph : t -> Hgp_graph.Graph.t

(** [leaf_of_vertex d v] is the tree leaf representing graph vertex [v]
    (the map [m'_V]). *)
val leaf_of_vertex : t -> int -> int

(** [vertex_of_leaf d l] is the graph vertex of tree leaf [l] (the map
    [m_V] restricted to leaves).
    @raise Invalid_argument if [l] is not a leaf. *)
val vertex_of_leaf : t -> int -> int

(** [tree_cut_weight d ~in_vertex_set] is [w_T(CUT_T(P_T))] for the leaf set
    corresponding to the given vertex predicate. *)
val tree_cut_weight : t -> in_vertex_set:(int -> bool) -> float

(** [graph_cut_weight d ~in_vertex_set] is [w(CUT_G(...))] of the same set. *)
val graph_cut_weight : t -> in_vertex_set:(int -> bool) -> float

(** [distortion_sample d rng ~trials] samples random connected-ish vertex
    subsets and returns the array of ratios [w_T / w_G] (only for samples
    with [w_G > 0]).  Proposition 1 guarantees every ratio is [>= 1]. *)
val distortion_sample : t -> Hgp_util.Prng.t -> trials:int -> float array
