module Fingerprint = Hgp_util.Fingerprint
module Lru = Hgp_util.Lru
module Obs = Hgp_obs.Obs
module Faults = Hgp_resilience.Faults
module Deadline = Hgp_resilience.Deadline

(* Ensembles are the largest artifacts we retain (O(size * n) tree nodes
   plus leaf maps); a small capacity bounds residency while still covering a
   portfolio run + retry + bench sweep over a handful of graphs. *)
let capacity = 16

let cache : (Fingerprint.t, Ensemble.t) Lru.t = Lru.create ~capacity
let lock = Mutex.create ()
let enabled_flag = Atomic.make true

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let clear () = with_lock (fun () -> Lru.clear cache)
let stats () = with_lock (fun () -> Lru.stats cache)
let reset_stats () = with_lock (fun () -> Lru.reset_stats cache)

let key g ~strategy ~seed ~size =
  Hgp_graph.Graph.fingerprint g
  |> Fun.flip Fingerprint.add_string (Ensemble.strategy_name strategy)
  |> Fun.flip Fingerprint.add_int seed
  |> Fun.flip Fingerprint.add_int size

(* The lookup is itself a fault site, fired before the bypass decision so a
   plan can exercise "cache layer broken" even though armed plans otherwise
   skip the cache entirely. *)
let lookup k =
  Faults.fire "ensemble_cache.lookup";
  if (not (Atomic.get enabled_flag)) || Faults.armed () <> None then None
  else begin
    let r = with_lock (fun () -> Lru.find cache k) in
    (match r with
    | Some _ ->
      Obs.count "cache.hit" 1;
      Obs.count "cache.ensemble.hit" 1
    | None ->
      Obs.count "cache.miss" 1;
      Obs.count "cache.ensemble.miss" 1);
    r
  end

let store k e =
  if Atomic.get enabled_flag && Faults.armed () = None then begin
    let evicted =
      with_lock (fun () ->
          let before = (Lru.stats cache).Lru.evictions in
          Lru.add cache k e;
          (Lru.stats cache).Lru.evictions - before)
    in
    if evicted > 0 then begin
      Obs.count "cache.evict" evicted;
      Obs.count "cache.ensemble.evict" evicted
    end
  end

let sample ~strategy ~seed g ~size =
  let k = key g ~strategy ~seed ~size in
  match lookup k with
  | Some e -> (e, true)
  | None ->
    let e = Ensemble.sample ~strategy (Hgp_util.Prng.create seed) g ~size in
    store k e;
    (e, false)

let sample_isolated ~strategy ?(deadline = Deadline.none) ~seed g ~size =
  let k = key g ~strategy ~seed ~size in
  match lookup k with
  | Some e -> ((e, []), true)
  | None ->
    let ((e, failures) as r) =
      Ensemble.sample_isolated ~strategy ~deadline (Hgp_util.Prng.create seed) g ~size
    in
    (* Only complete ensembles are cacheable: a partial one (lost trees or
       an expired deadline) is correct for this solve but not bit-identical
       to what a healthy solve would produce. *)
    if failures = [] && Ensemble.size e = size && not (Deadline.expired deadline) then
      store k e;
    (r, false)
