(** Distributions of decomposition trees (Theorems 6–7).

    Räcke's theorem provides a convex combination of decomposition trees; the
    HGP algorithm (Theorem 7) solves the problem on each tree and keeps the
    solution whose *graph* cost is smallest.  This module samples and manages
    such an ensemble. *)

type t

(** Ensemble composition. *)
type strategy =
  | Pure of Decomposition.strategy  (** every tree from one shape strategy *)
  | Mixed
      (** round-robin over all shape strategies — diversity usually helps
          the best-of selection of Theorem 7 *)

(** [strategy_name s] is a stable identifier ("mixed" or the underlying
    {!Decomposition.strategy_name}) for telemetry and reports. *)
val strategy_name : strategy -> string

(** [sample ?strategy rng g ~size] draws [size] independent decomposition
    trees of the connected graph [g] (default
    [Pure Decomposition.Low_diameter]).  Requires [size >= 1]. *)
val sample :
  ?strategy:strategy -> Hgp_util.Prng.t -> Hgp_graph.Graph.t -> size:int -> t

(** [sample_isolated ?strategy ?deadline rng g ~size] is {!sample} with
    per-tree fault isolation: a tree whose decomposition build raises is
    skipped (counted under [ensemble.build_failures]) and reported as
    [(original_index, exn)]; the survivors form the ensemble.  Losing a tree
    only costs diversity — a Räcke ensemble is a distribution over trees, so
    any member alone still upper-bounds every cut (Proposition 1).  The RNG
    stream is split per slot {e before} building, so surviving trees are
    bit-identical to the same slots of {!sample}.  When [deadline] expires,
    sampling stops early and the partial ensemble is returned; the ensemble
    may therefore be empty. *)
val sample_isolated :
  ?strategy:strategy ->
  ?deadline:Hgp_resilience.Deadline.t ->
  Hgp_util.Prng.t ->
  Hgp_graph.Graph.t ->
  size:int ->
  t * (int * exn) list

(** [size e] is the number of trees. *)
val size : t -> int

(** [get e i] is the [i]-th decomposition. *)
val get : t -> int -> Decomposition.t

(** [to_list e] lists all decompositions. *)
val to_list : t -> Decomposition.t list

(** [best_of e f] applies [f] to every decomposition and returns
    [(index, result, score)] minimizing the score computed by [f].
    [f] returns [(result, score)]. *)
val best_of : t -> (Decomposition.t -> 'a * float) -> int * 'a * float

(** [average_distortion e rng ~trials] is the mean over trees of the mean
    sampled cut ratio [w_T / w_G] — the empirical analogue of the [O(log n)]
    guarantee of Theorem 6. *)
val average_distortion : t -> Hgp_util.Prng.t -> trials:int -> float
