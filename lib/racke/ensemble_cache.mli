(** Process-wide memo of sampled decomposition-tree ensembles.

    Räcke's embedding is {e oblivious}: the tree distribution depends only on
    the graph, never on the demands, the hierarchy, or the rounding of the
    solve that uses it (PAPER.md Theorems 6–7; Andersen–Feige make the
    duality explicit).  An ensemble is therefore determined by exactly
    [(graph, strategy, seed, size)] — everything else about a solve may
    change and the same trees remain valid and bit-identical, which is what
    makes this cache legal (see [docs/ARCHITECTURE.md] for the argument).

    The cache holds {!Ensemble.t} values, which are immutable after
    sampling; callers share entries freely across domains.  Lookups from
    different domains are serialized by an internal lock.

    {b Fault-injection interplay}: whenever a fault plan is armed
    ({!Hgp_resilience.Faults.armed}), the cache is bypassed — reads and
    writes — so every [decomposition.build] fault site still fires exactly
    as in an uncached build, and no faulted artifact is ever retained.  The
    lookup itself is the [ensemble_cache.lookup] fault site, fired before
    the bypass decision. *)

(** [key g ~strategy ~seed ~size] is the content-addressed cache key — the
    ensemble component of downstream (packed-solution) cache keys. *)
val key :
  Hgp_graph.Graph.t ->
  strategy:Ensemble.strategy ->
  seed:int ->
  size:int ->
  Hgp_util.Fingerprint.t

(** [sample ~strategy ~seed g ~size] is [Ensemble.sample] memoized on
    {!key}; the PRNG is created from [seed] internally so a cache hit and a
    fresh sample are bit-identical.  Returns [(ensemble, from_cache)]. *)
val sample :
  strategy:Ensemble.strategy -> seed:int -> Hgp_graph.Graph.t -> size:int -> Ensemble.t * bool

(** [sample_isolated] is the fault-isolated variant used by the supervised
    solve.  A cached (complete) ensemble is served with an empty failure
    list — exactly what [Ensemble.sample_isolated] returns when nothing
    fails, which is the only case that is ever stored: partial ensembles
    (build failures or deadline expiry) are never cached. *)
val sample_isolated :
  strategy:Ensemble.strategy ->
  ?deadline:Hgp_resilience.Deadline.t ->
  seed:int ->
  Hgp_graph.Graph.t ->
  size:int ->
  (Ensemble.t * (int * exn) list) * bool

(** Caching is on by default; [set_enabled false] makes both [sample]
    functions delegate straight to {!Ensemble} (used by tests and by
    [--no-cache] style tooling). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Drop all entries (hit/miss history is preserved; see
    {!Hgp_util.Lru.stats}). *)
val clear : unit -> unit

val stats : unit -> Hgp_util.Lru.stats

(** Zero the hit/miss/eviction counters. *)
val reset_stats : unit -> unit
