module Graph = Hgp_graph.Graph
module Gen = Hgp_graph.Generators
module H = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Verify = Hgp_core.Verify
module Solver = Hgp_core.Solver
module Prng = Hgp_util.Prng

let hy () = H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 3.; 0. |] ~leaf_capacity:1.0

let test_complete_certificate () =
  let g = Graph.of_edges 4 [ (0, 1, 2.); (1, 2, 3.); (2, 3, 4.) ] in
  let inst = Instance.create g ~demands:[| 0.5; 0.5; 0.5; 0.5 |] (hy ()) in
  let r = Verify.certify inst [| 0; 0; 1; 2 |] ~eps:0.25 in
  Alcotest.(check bool) "complete" true r.assignment_complete;
  Test_support.check_close "eq1" ((3. *. 3.) +. (10. *. 4.)) r.cost_eq1;
  Alcotest.(check bool) "lemma2 tiny" true (r.lemma2_gap < 1e-9);
  Test_support.check_close "leaf load" 1.0 r.leaf_loads.(0);
  Test_support.check_close "level 0 = total/CP0" 0.5 r.level_violation.(0);
  Alcotest.(check bool) "within bound" true r.within_theorem_bound;
  Test_support.check_close "bound" (1.25 *. 3.) r.theorem_bound

let test_incomplete_certificate () =
  let g = Gen.path 3 in
  let inst = Instance.create g ~demands:[| 0.3; 0.3; 0.3 |] (hy ()) in
  let r = Verify.certify inst [| 0; -1; 0 |] ~eps:0.25 in
  Alcotest.(check bool) "incomplete" false r.assignment_complete;
  Alcotest.(check bool) "costs are nan" true (Float.is_nan r.cost_eq1);
  (* Loads still counted for the valid entries. *)
  Test_support.check_close "partial load" 0.6 r.leaf_loads.(0)

let test_pp_renders () =
  let g = Gen.path 3 in
  let inst = Instance.create g ~demands:[| 0.3; 0.3; 0.3 |] (hy ()) in
  let r = Verify.certify inst [| 0; 1; 2 |] ~eps:0.25 in
  let s = Format.asprintf "%a" Verify.pp r in
  Alcotest.(check bool) "mentions certificate" true (String.length s > 40)

(* Malformed-input hardening: certify must never raise — it reports
   [assignment_complete = false] and ignores invalid entries in the load
   accounting. *)

let malformed_instance () =
  let g = Gen.path 4 in
  Instance.create g ~demands:[| 0.4; 0.4; 0.4; 0.4 |] (hy ())

let certify_never_raises name p check =
  match Verify.certify (malformed_instance ()) p ~eps:0.25 with
  | r -> check r
  | exception e -> Alcotest.failf "%s: certify raised %s" name (Printexc.to_string e)

let test_out_of_range_leaf_ids () =
  certify_never_raises "too large" [| 0; 7; 1; 2 |] (fun r ->
      Alcotest.(check bool) "incomplete (leaf id >= k)" false r.assignment_complete;
      (* The three valid entries still contribute to leaf loads. *)
      Test_support.check_close "valid loads counted" 0.4 r.leaf_loads.(0));
  certify_never_raises "negative" [| 0; -3; 1; 2 |] (fun r ->
      Alcotest.(check bool) "incomplete (negative leaf)" false r.assignment_complete);
  certify_never_raises "max_int" [| max_int; 0; 1; 2 |] (fun r ->
      Alcotest.(check bool) "incomplete (max_int leaf)" false r.assignment_complete)

let test_short_assignment_array () =
  certify_never_raises "short" [| 0; 1 |] (fun r ->
      Alcotest.(check bool) "incomplete (short array)" false r.assignment_complete;
      Alcotest.(check bool) "costs are nan" true (Float.is_nan r.cost_eq1));
  certify_never_raises "empty" [||] (fun r ->
      Alcotest.(check bool) "incomplete (empty array)" false r.assignment_complete;
      Alcotest.(check bool) "violations still finite" true
        (Array.for_all Float.is_finite r.level_violation))

let test_long_assignment_array () =
  certify_never_raises "long" [| 0; 1; 2; 3; 0; 1 |] (fun r ->
      Alcotest.(check bool) "incomplete (length mismatch)" false r.assignment_complete)

let test_zero_demand_vertices () =
  (* Instance.create rejects non-positive demands: the zero-demand malformed
     case cannot even be constructed, which is the stronger guarantee. *)
  let g = Gen.path 3 in
  Alcotest.(check bool) "zero demand rejected at construction" true
    (try
       ignore (Instance.create g ~demands:[| 0.3; 0.; 0.3 |] (hy ()));
       false
     with Invalid_argument _ -> true);
  (* Near-zero positive demands are fine and certify cleanly. *)
  let inst = Instance.create g ~demands:[| 1e-12; 1e-12; 1e-12 |] (hy ()) in
  match Verify.certify inst [| 0; 1; 2 |] ~eps:0.25 with
  | r ->
    Alcotest.(check bool) "complete with tiny demands" true r.assignment_complete;
    Alcotest.(check bool) "violation ~ 0" true (r.max_violation < 1e-9)
  | exception e -> Alcotest.failf "tiny demands: certify raised %s" (Printexc.to_string e)

let prop_solver_output_certifies =
  Test_support.qtest ~count:25 "solver output always certifies within Theorem 1"
    QCheck2.Gen.(pair (int_bound 100000) (int_range 8 24))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.gnp_connected rng n 0.3 in
      let inst = Instance.uniform_demands g (hy ()) ~load_factor:0.6 in
      let sol = Solver.solve ~options:{ Solver.default_options with ensemble_size = 2 } inst in
      let r = Verify.certify inst sol.assignment ~eps:1.0 in
      r.assignment_complete && r.lemma2_gap < 1e-9 && r.within_theorem_bound
      && Float.abs (r.cost_eq1 -. sol.cost) < 1e-6 *. (1. +. sol.cost)
      && Float.abs (r.max_violation -. sol.max_violation) < 1e-9)

let () =
  Alcotest.run "verify"
    [
      ( "unit",
        [
          Alcotest.test_case "complete certificate" `Quick test_complete_certificate;
          Alcotest.test_case "incomplete certificate" `Quick test_incomplete_certificate;
          Alcotest.test_case "pp renders" `Quick test_pp_renders;
          Alcotest.test_case "out-of-range leaf ids" `Quick test_out_of_range_leaf_ids;
          Alcotest.test_case "short/empty assignment" `Quick test_short_assignment_array;
          Alcotest.test_case "long assignment" `Quick test_long_assignment_array;
          Alcotest.test_case "zero-demand vertices" `Quick test_zero_demand_vertices;
        ] );
      ("property", [ prop_solver_output_certifies ]);
    ]
