(* Reference implementation of the RHGPT dynamic program — the pre-flat-
   kernel Hashtbl version, kept verbatim in structure as the differential
   oracle for [Hgp_core.Tree_dp.solve].

   Deliberate differences from the historical code, so that results are
   bit-comparable with the flat kernel:

   - ties are broken canonically instead of by Hashtbl iteration order:
     at equal cost the lexicographically smallest
     [(previous key, child key, merge level)] backpointer wins, and the
     root state is the smallest [(cost, key)] pair;
   - the per-node table array is built with [Array.init], not
     [Array.make n (Hashtbl.create 0)] — the latter aliases ONE table into
     every slot (benign here only because each node overwrites its slot
     before reading it, and a bug class worth not propagating);
   - no [Obs] telemetry and no [Faults] hooks: the oracle must stay inert
     under chaos profiles while the kernel under test carries the
     instrumentation.

   Deadline handling is kept (same check/tick cadence) so deadline-abort
   behaviour can be compared too. *)

module Tree = Hgp_tree.Tree
module Deadline = Hgp_resilience.Deadline
module Tree_dp = Hgp_core.Tree_dp
module Signature = Hgp_core.Signature

let pay w c = if c = 0. then 0. else w *. c

(* Same soundness argument as the kernel's prune pass; scans states in
   increasing (cost, key) order and keeps the non-dominated ones. *)
let pareto_prune space h tbl =
  if Hashtbl.length tbl <= 1 then tbl
  else begin
    let entries =
      Hashtbl.fold (fun k (c, b) acc -> (c, k, b, Signature.decode space k) :: acc) tbl []
    in
    let entries =
      List.sort (fun (c1, k1, _, _) (c2, k2, _, _) -> compare (c1, k1) (c2, k2)) entries
    in
    let kept = ref [] in
    let out = Hashtbl.create 16 in
    List.iter
      (fun (c, k, b, sg) ->
        let dominated =
          List.exists
            (fun sg' ->
              let ok = ref true in
              for j = 0 to h - 1 do
                if sg'.(j) > sg.(j) then ok := false
              done;
              !ok)
            !kept
        in
        if not dominated then begin
          kept := sg :: !kept;
          Hashtbl.replace out k (c, b)
        end)
      entries;
    out
  end

let beam_truncate beam tbl =
  match beam with
  | None -> tbl
  | Some width ->
    if Hashtbl.length tbl <= width then tbl
    else begin
      let entries = Hashtbl.fold (fun k (c, b) l -> (c, k, b) :: l) tbl [] in
      let entries = List.sort (fun (c1, k1, _) (c2, k2, _) -> compare (c1, k1) (c2, k2)) entries in
      let out = Hashtbl.create width in
      List.iteri (fun i (c, k, b) -> if i < width then Hashtbl.replace out k (c, b)) entries;
      out
    end

let solve ?(deadline = Deadline.none) t ~demand_units (cfg : Tree_dp.config) =
  let h = Array.length cfg.cm - 1 in
  if Array.length cfg.cp_units <> h + 1 then
    invalid_arg "Tree_dp_reference: cm / cp_units length mismatch";
  let n = Tree.n_nodes t in
  let dl_tick = ref 0 in
  if Array.length demand_units <> n then invalid_arg "Tree_dp_reference: demand_units length";
  let total = Array.fold_left ( + ) 0 demand_units in
  if total > cfg.cp_units.(0) then None
  else begin
    let space = Signature.create ~cp_units:cfg.cp_units ?bucketing:cfg.bucketing () in
    let caps = Array.sub cfg.cp_units 1 h in
    let strides = space.Signature.strides in
    let states = ref 0 in
    (* tables.(v): final signature table of node v
       (key -> cost * back tuple of the merge that produced it). *)
    let tables : (int, float * (int * int * int)) Hashtbl.t array =
      Array.init n (fun _ -> Hashtbl.create 0)
    in
    (* backs.(v).(i): for child index i of v, key in the accumulator after
       absorbing children 0..i -> (previous key, child key, kappa). *)
    let backs : (int, int * int * int) Hashtbl.t array array = Array.make n [||] in
    let infeasible_leaf = ref false in
    Array.iter
      (fun v ->
        Deadline.check deadline ~stage:"tree_dp";
        if Tree.is_leaf t v then begin
          let tbl = Hashtbl.create 1 in
          (match Signature.of_leaf space demand_units.(v) with
          | Some key ->
            Hashtbl.replace tbl key (0., (0, 0, 0));
            incr states
          | None -> infeasible_leaf := true);
          tables.(v) <- tbl
        end
        else begin
          let cs = Tree.children t v in
          let nc = Array.length cs in
          backs.(v) <- Array.init nc (fun _ -> Hashtbl.create 16);
          let acc = ref (Hashtbl.create 16) in
          Hashtbl.replace !acc 0 (0., (0, 0, 0));
          Array.iteri
            (fun i c ->
              let w = Tree.edge_weight t c in
              let nacc = Hashtbl.create (Hashtbl.length !acc) in
              let consider key cost prev_key child_key j2 =
                let better =
                  match Hashtbl.find_opt nacc key with
                  | None ->
                    incr states;
                    true
                  | Some (old, _) when cost < old -> true
                  | Some (old, ob) when cost = old ->
                    (* canonical tie-break: smallest back tuple wins *)
                    compare (prev_key, child_key, j2) ob < 0
                  | Some _ -> false
                in
                if better then Hashtbl.replace nacc key (cost, (prev_key, child_key, j2))
              in
              (* Decode each table once. *)
              let decode_all tbl =
                Hashtbl.fold (fun k (c, _) l -> (k, c, Signature.decode space k) :: l) tbl []
              in
              let acc_entries = decode_all !acc in
              let child_entries = decode_all tables.(c) in
              let a = Array.make h 0 in
              List.iter
                (fun (ka, costa, a_orig) ->
                  List.iter
                    (fun (kc, costc, cvec) ->
                      Deadline.tick deadline ~stage:"tree_dp" ~count:dl_tick ~mask:0xFF;
                      Array.blit a_orig 0 a 0 h;
                      (* j2 = 0: child closes entirely; accumulator unchanged. *)
                      consider ka (costa +. costc +. pay w cfg.cm.(0)) ka kc 0;
                      (* Incrementally merge level j2 = 1..h. *)
                      let key = ref ka in
                      let ok = ref true in
                      let j2 = ref 1 in
                      while !ok && !j2 <= h do
                        let idx = !j2 - 1 in
                        let merged = a.(idx) + cvec.(idx) in
                        if merged > caps.(idx) then ok := false
                        else begin
                          let bucketed = space.Signature.bucket merged in
                          let prev_b = space.Signature.bucket a.(idx) in
                          key := !key + ((bucketed - prev_b) * strides.(idx));
                          a.(idx) <- merged;
                          consider !key (costa +. costc +. pay w cfg.cm.(!j2)) ka kc !j2;
                          incr j2
                        end
                      done)
                    child_entries)
                acc_entries;
              let pre =
                match cfg.beam_width with
                | Some width when Hashtbl.length nacc > 8 * width ->
                  beam_truncate (Some (8 * width)) nacc
                | _ -> nacc
              in
              let pruned = if cfg.prune then pareto_prune space h pre else pre in
              let kept = beam_truncate cfg.beam_width pruned in
              let back = backs.(v).(i) in
              Hashtbl.iter (fun key (_, b) -> Hashtbl.replace back key b) kept;
              acc := kept)
            cs;
          tables.(v) <- !acc
        end)
      (Tree.post_order t);
    if !infeasible_leaf then None
    else begin
      let r = Tree.root t in
      let best = ref None in
      Hashtbl.iter
        (fun key (cost, _) ->
          match !best with
          (* canonical root pick: smallest (cost, key) *)
          | Some (k0, c0) when compare (c0, k0) (cost, key) <= 0 -> ()
          | _ -> best := Some (key, cost))
        tables.(r);
      match !best with
      | None -> None
      | Some (root_key, cost) ->
        (* Reconstruct kappa by walking the back tables. *)
        let kappa = Array.make n 0 in
        let stack = Stack.create () in
        Stack.push (r, root_key) stack;
        while not (Stack.is_empty stack) do
          let v, key = Stack.pop stack in
          let cs = Tree.children t v in
          let k = ref key in
          for i = Array.length cs - 1 downto 0 do
            let prev_key, child_key, j2 = Hashtbl.find backs.(v).(i) !k in
            kappa.(cs.(i)) <- j2;
            Stack.push (cs.(i), child_key) stack;
            k := prev_key
          done
        done;
        Some
          {
            Tree_dp.cost;
            kappa;
            root_signature = Signature.decode space root_key;
            states_explored = !states;
          }
    end
  end
