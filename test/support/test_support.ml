(* Shared helpers for the test suites. *)

let check_close ?(eps = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A small deterministic PRNG generator seeded from QCheck input. *)
let gen_rng = QCheck2.Gen.map Hgp_util.Prng.create QCheck2.Gen.(int_bound 1_000_000)

(* Random small connected weighted graph. *)
let gen_graph ?(max_n = 12) () =
  let open QCheck2.Gen in
  let* n = int_range 2 max_n in
  let* seed = int_bound 1_000_000 in
  let rng = Hgp_util.Prng.create seed in
  let g = Hgp_graph.Generators.gnp_connected rng n 0.4 in
  let g = Hgp_graph.Generators.randomize_weights rng g ~lo:1.0 ~hi:9.0 in
  return g

(* Random small tree (as Tree.t) with random integer weights. *)
let gen_tree ?(max_n = 10) () =
  let open QCheck2.Gen in
  let* n = int_range 2 max_n in
  let* seed = int_bound 1_000_000 in
  let rng = Hgp_util.Prng.create seed in
  let g = Hgp_graph.Generators.random_tree rng n in
  let g = Hgp_graph.Generators.randomize_weights rng g ~lo:1.0 ~hi:9.0 in
  return (Hgp_tree.Tree.of_graph g ~root:0)

(* Small random hierarchy: height 1..3, degrees 2..3, decreasing cm. *)
let gen_hierarchy =
  let open QCheck2.Gen in
  let* h = int_range 1 3 in
  let* degs = array_repeat h (int_range 2 3) in
  let* steps = array_repeat h (float_range 0.5 10.0) in
  (* cm built by accumulating nonnegative steps from the leaf level up. *)
  let cm = Array.make (h + 1) 0. in
  for j = h - 1 downto 0 do
    cm.(j) <- cm.(j + 1) +. steps.(j)
  done;
  return (Hgp_hierarchy.Hierarchy.create ~degs ~cm ~leaf_capacity:1.0)

(* Small random ragged hierarchy: all leaves at one depth 1..3, per-node
   fan-out 1..3, per-leaf capacities, non-increasing cm along every path.
   All capacities and multipliers are quarter-integers, so the "%g" used by
   Topology.to_spec prints them exactly and parse/to_spec round-trips are
   lossless. *)
let gen_ragged_hierarchy =
  let open QCheck2.Gen in
  let module H = Hgp_hierarchy.Hierarchy in
  let* h = int_range 1 3 in
  let* seed = int_bound 1_000_000 in
  let rng = Hgp_util.Prng.create seed in
  let quarter lo hi = 0.25 *. float_of_int (lo + Hgp_util.Prng.int rng (hi - lo + 1)) in
  let rec build depth cm =
    if depth = h then H.Leaf { capacity = quarter 1 16; cm }
    else begin
      let n_children = 1 + Hgp_util.Prng.int rng 3 in
      let children =
        List.init n_children (fun _ -> build (depth + 1) (Float.max 0. (cm -. quarter 0 12)))
      in
      H.Node { cm; children }
    end
  in
  return (H.create_ragged (build 0 (quarter 4 60)))

(* Random assignment of [n] vertices to hierarchy leaves (ignores capacity —
   for cost-identity style properties). *)
let gen_assignment n hy =
  QCheck2.Gen.(array_size (return n) (int_bound (Hgp_hierarchy.Hierarchy.num_leaves hy - 1)))

(* Differential oracle for the flat DP kernel (see tree_dp_reference.ml);
   re-exported because this module is the library's entry point. *)
module Tree_dp_reference = Tree_dp_reference
