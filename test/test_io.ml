module Graph = Hgp_graph.Graph
module Io = Hgp_graph.Io
module Gen = Hgp_graph.Generators

let graphs_equal a b =
  Graph.n a = Graph.n b && Graph.m a = Graph.m b
  && Graph.fold_edges
       (fun acc u v w -> acc && Float.abs (Graph.edge_weight b u v -. w) < 1e-9)
       true a

let test_roundtrip_metis () =
  let g = Graph.of_edges 4 [ (0, 1, 1.5); (1, 2, 2.); (2, 3, 0.5); (0, 3, 4.) ] in
  let g' = Io.of_string (Io.to_string g) in
  Alcotest.(check bool) "roundtrip" true (graphs_equal g g')

let test_unweighted_parse () =
  let s = "3 2\n2 3\n1\n1\n" in
  let g = Io.of_string s in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g);
  Test_support.check_close "unit weight" 1. (Graph.edge_weight g 0 1)

let test_comments_ignored () =
  let s = "% a comment\n2 1\n2\n1\n" in
  let g = Io.of_string s in
  Alcotest.(check int) "m" 1 (Graph.m g)

let test_malformed () =
  Alcotest.(check bool) "bad header raises" true
    (try
       ignore (Io.of_string "not a header\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "wrong line count raises" true
    (try
       ignore (Io.of_string "3 1\n2\n1\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "wrong edge count raises" true
    (try
       ignore (Io.of_string "2 5\n2\n1\n");
       false
     with Failure _ -> true)

let test_file_roundtrip () =
  let g = Gen.grid2d ~rows:3 ~cols:3 in
  let path = Filename.temp_file "hgp" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save g path;
      let g' = Io.load path in
      Alcotest.(check bool) "file roundtrip" true (graphs_equal g g'))

(* CRLF line endings (and a trailing blank line) must parse identically to
   the LF original. *)
let to_crlf s =
  String.split_on_char '\n' s |> String.concat "\r\n"

let test_crlf_parse () =
  let g = Graph.of_edges 4 [ (0, 1, 1.5); (1, 2, 2.); (2, 3, 0.5); (0, 3, 4.) ] in
  let s = to_crlf (Io.to_string g) ^ "\r\n\r\n" in
  Alcotest.(check bool) "crlf parses to same graph" true
    (graphs_equal g (Io.of_string s))

let test_edge_list_roundtrip () =
  let g = Graph.of_edges 5 [ (0, 4, 2.); (1, 2, 3.) ] in
  let g' = Io.of_edge_list_string (Io.to_edge_list_string g) in
  Alcotest.(check bool) "roundtrip" true (graphs_equal g g')

(* normalize_ids with sparse original ids: the mapping must be dense,
   order-preserving, and cover ~vertices even when they touch no edge —
   the delta layer relies on this to keep a vertex alive after its last
   incident edge is removed. *)
let test_normalize_sparse_ids () =
  let g, map = Io.normalize_ids [ (10, 3, 1.5); (7, 10, 2.) ] in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g);
  Alcotest.(check (array int)) "order-preserving map" [| 3; 7; 10 |] map;
  Test_support.check_close "edge 10-3" 1.5 (Graph.edge_weight g 2 0);
  Test_support.check_close "edge 7-10" 2. (Graph.edge_weight g 1 2)

let test_normalize_isolated_vertices () =
  (* 5 and 42 have no incident edge but must still get dense ids. *)
  let g, map = Io.normalize_ids ~vertices:[ 42; 5; 3 ] [ (3, 9, 1.) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check (array int)) "map" [| 3; 5; 9; 42 |] map;
  Alcotest.(check bool) "edge kept" true (Graph.has_edge g 0 2);
  (* all vertices already covered by edges: ~vertices is a no-op *)
  let g', map' = Io.normalize_ids ~vertices:[ 3; 9 ] [ (3, 9, 1.) ] in
  Alcotest.(check int) "no-op n" 2 (Graph.n g');
  Alcotest.(check (array int)) "no-op map" [| 3; 9 |] map';
  (* edge-free instance: a single surviving isolated vertex *)
  let g'', map'' = Io.normalize_ids ~vertices:[ 6 ] [] in
  Alcotest.(check int) "lonely n" 1 (Graph.n g'');
  Alcotest.(check int) "lonely m" 0 (Graph.m g'');
  Alcotest.(check (array int)) "lonely map" [| 6 |] map'';
  Alcotest.(check bool) "negative id rejected" true
    (try
       ignore (Io.normalize_ids ~vertices:[ -1 ] []);
       false
     with Hgp_resilience.Hgp_error.Error (Hgp_resilience.Hgp_error.Invalid_input _) ->
       true)

let prop_metis_roundtrip =
  Test_support.qtest ~count:50 "METIS roundtrip on random graphs"
    (Test_support.gen_graph ())
    (fun g -> graphs_equal g (Io.of_string (Io.to_string g)))

let prop_edge_list_roundtrip =
  Test_support.qtest ~count:50 "edge-list roundtrip on random graphs"
    (Test_support.gen_graph ())
    (fun g ->
      (* Edge-list format infers n from the max id: isolated trailing
         vertices are not representable, so compare edge sets only. *)
      let g' = Io.of_edge_list_string (Io.to_edge_list_string g) in
      Graph.m g = Graph.m g'
      && Graph.fold_edges
           (fun acc u v w -> acc && Float.abs (Graph.edge_weight g' u v -. w) < 1e-9)
           true g)

let () =
  Alcotest.run "io"
    [
      ( "unit",
        [
          Alcotest.test_case "metis roundtrip" `Quick test_roundtrip_metis;
          Alcotest.test_case "unweighted parse" `Quick test_unweighted_parse;
          Alcotest.test_case "comments" `Quick test_comments_ignored;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "crlf parse" `Quick test_crlf_parse;
          Alcotest.test_case "edge list roundtrip" `Quick test_edge_list_roundtrip;
          Alcotest.test_case "normalize sparse ids" `Quick test_normalize_sparse_ids;
          Alcotest.test_case "normalize isolated vertices" `Quick
            test_normalize_isolated_vertices;
        ] );
      ("property", [ prop_metis_roundtrip; prop_edge_list_roundtrip ]);
    ]
