(* End-to-end integration: every workload preset x several hierarchies runs
   through the full pipeline and the result is independently certified. *)

module H = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Solver = Hgp_core.Solver
module Verify = Hgp_core.Verify
module Prng = Hgp_util.Prng

let hierarchies =
  [
    ("flat8", H.Presets.flat ~k:8);
    ("dual_socket", H.Presets.dual_socket);
    ("uniform-3x3", H.Presets.uniform ~branching:3 ~height:2);
    (* Heterogeneous fleets: irregular fan-out, per-leaf capacities,
       per-subtree multipliers. *)
    ("ragged_rack", H.Presets.ragged_rack);
    ("gpu_cpu_tier", H.Presets.gpu_cpu_tier);
  ]

let pipeline_case (spec : Hgp_workloads.Presets.spec) (hname, hy) () =
  let rng = Prng.create 4242 in
  let inst = spec.build rng hy in
  let sol =
    Solver.solve ~options:{ Solver.default_options with ensemble_size = 2; seed = 9 } inst
  in
  let r = Verify.certify inst sol.assignment ~eps:1.0 in
  Alcotest.(check bool) (hname ^ " complete") true r.assignment_complete;
  Alcotest.(check bool) (hname ^ " lemma2") true (r.lemma2_gap < 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "%s within Theorem 1 bound (got %.3f vs %.2f)" hname r.max_violation
       r.theorem_bound)
    true r.within_theorem_bound;
  Test_support.check_close (hname ^ " cost matches") sol.cost r.cost_eq1

let pipeline_tests =
  List.concat_map
    (fun (spec : Hgp_workloads.Presets.spec) ->
      List.map
        (fun hpair ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" spec.name (fst hpair))
            `Slow (pipeline_case spec hpair))
        hierarchies)
    Hgp_workloads.Presets.full_suite

(* The whole toolchain on one instance: serialize, reload, solve, refine,
   repair, certify, simulate. *)
let test_full_toolchain () =
  let rng = Prng.create 777 in
  let hy = H.Presets.dual_socket in
  let w =
    Hgp_workloads.Stream_dag.generate rng
      { Hgp_workloads.Stream_dag.default_params with n_sources = 6; pipeline_depth = 4 }
  in
  let inst = Hgp_workloads.Stream_dag.to_instance w hy ~load_factor:0.5 in
  (* Round-trip through the instance file format. *)
  let inst = Hgp_core.Instance_io.of_string (Hgp_core.Instance_io.to_string inst) in
  let sol = Solver.solve ~options:{ Solver.default_options with ensemble_size = 2 } inst in
  let repaired, _ = Hgp_baselines.Local_search.repair inst sol.assignment ~slack:1.3 in
  let refined, stats =
    Hgp_baselines.Local_search.refine inst repaired ~slack:1.3 ~max_passes:4
  in
  Alcotest.(check bool) "refinement not worse" true
    (stats.final_cost <= stats.initial_cost +. 1e-9);
  let r = Verify.certify inst refined ~eps:1.0 in
  Alcotest.(check bool) "certified" true
    (r.assignment_complete && r.within_theorem_bound);
  (* And it actually executes. *)
  let sim = Hgp_workloads.Stream_dag.to_sim_workload w ~demands:inst.demands in
  let m =
    Hgp_sim.Des.run sim hy ~assignment:refined
      { Hgp_sim.Des.default_config with duration = 5.0; warmup = 1.0; load = 0.5 }
  in
  Alcotest.(check bool) "tuples delivered" true (m.completed > 0)

let test_dynamic_then_static_agree () =
  (* Build a graph through the dynamic manager, then check that a static
     instance constructed from the same tasks yields the same cost for the
     manager's placement. *)
  let hy = H.Presets.dual_socket in
  let rng = Prng.create 31 in
  let mgr = Hgp_core.Dynamic.create hy (Hgp_core.Dynamic.default_config hy) in
  let ids = ref [] in
  let edges = ref [] in
  for _ = 1 to 15 do
    let peers = List.filteri (fun i _ -> i < 2) !ids in
    let es = List.map (fun id -> (id, 1. +. Prng.float rng 4.)) peers in
    let id = Hgp_core.Dynamic.add_task mgr ~demand:0.3 ~edges:es in
    List.iter (fun (u, w) -> edges := (id, u, w) :: !edges) es;
    ids := id :: !ids
  done;
  let n = List.length !ids in
  let g = Hgp_graph.Graph.of_edges n !edges in
  let inst = Instance.create g ~demands:(Array.make n 0.3) hy in
  let p = Array.init n (fun id -> Hgp_core.Dynamic.leaf_of mgr id) in
  Test_support.check_close "costs agree"
    (Hgp_core.Cost.assignment_cost inst p)
    (Hgp_core.Dynamic.current_cost mgr)

let () =
  Alcotest.run "integration"
    [
      ("pipeline", pipeline_tests);
      ( "toolchain",
        [
          Alcotest.test_case "full toolchain" `Slow test_full_toolchain;
          Alcotest.test_case "dynamic vs static cost" `Quick test_dynamic_then_static_agree;
        ] );
    ]
