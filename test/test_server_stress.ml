(* Concurrency stress/soak layer for the shared infrastructure under the
   batch solve service: the (externally locked) LRU caches, the shared
   worker-domain pool, and the server's duplicate-coalescing drain.

   These tests hammer the structures from 4+ concurrent domains with mixed
   insert/lookup/evict traffic and a crash mid-storm, then assert the
   invariants that the service depends on: no corrupted values, stats that
   sum exactly (hits + misses = lookups), occupancy within capacity, crash
   isolation per slot, and bit-identical solutions for duplicate requests
   both within one drain and across warm re-drains. *)

module Lru = Hgp_util.Lru
module Domain_pool = Hgp_util.Domain_pool
module Prng = Hgp_util.Prng
module Gen = Hgp_graph.Generators
module H = Hgp_hierarchy.Hierarchy
module Instance = Hgp_core.Instance
module Pipeline = Hgp_core.Pipeline
module Protocol = Hgp_server.Protocol
module Server = Hgp_server.Server
module Hgp_error = Hgp_resilience.Hgp_error

let domains = 4
let ops_per_domain = 20_000

(* The value stored for key [k]; a torn or crossed read would break it. *)
let value_of k = (k * 31) + 7

(* One storm domain: a deterministic mix of finds and adds against a shared
   cache, counting its own lookups.  [crash_at = Some n] raises after n ops
   (the mid-storm crash-slot test). *)
let storm ?crash_at ~cache ~lock ~seed ~lookups () =
  let rng = Prng.create seed in
  for op = 1 to ops_per_domain do
    (match crash_at with
    | Some n when op = n -> failwith "storm crash"
    | _ -> ());
    let k = Prng.int rng 64 in
    Mutex.lock lock;
    (if Prng.int rng 100 < 60 then begin
       incr lookups;
       match Lru.find cache k with
       | None -> ()
       | Some v -> if v <> value_of k then (Mutex.unlock lock; Alcotest.failf "corrupt value for %d: %d" k v)
     end
     else Lru.add cache k (value_of k));
    Mutex.unlock lock
  done

let test_lru_storm () =
  let cache = Lru.create ~capacity:16 in
  let lock = Mutex.create () in
  let lookups = Array.init domains (fun _ -> ref 0) in
  let pool = Domain_pool.create ~size:domains in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let slots =
        Domain_pool.run_batch pool
          (Array.init domains (fun d () ->
               storm ~cache ~lock ~seed:(1000 + d) ~lookups:lookups.(d) ()))
      in
      Array.iteri
        (fun d r ->
          match r with
          | Ok () -> ()
          | Error e -> Alcotest.failf "storm domain %d died: %s" d (Printexc.to_string e))
        slots;
      let total_lookups = Array.fold_left (fun a r -> a + !r) 0 lookups in
      let st = Lru.stats cache in
      Alcotest.(check int) "hits + misses = lookups" total_lookups
        (st.Lru.hits + st.Lru.misses);
      Alcotest.(check bool) "some of each" true (st.Lru.hits > 0 && st.Lru.misses > 0);
      Alcotest.(check bool) "occupancy within capacity" true
        (st.Lru.entries <= 16 && st.Lru.entries = Lru.length cache);
      Alcotest.(check bool) "evictions happened under pressure" true
        (st.Lru.evictions > 0);
      (* Every surviving entry is intact. *)
      for k = 0 to 63 do
        match Lru.find cache k with
        | Some v -> Alcotest.(check int) "intact value" (value_of k) v
        | None -> ()
      done)

let test_crash_slot_mid_storm () =
  (* Domain 2 crashes a third of the way in; its slot reports the error, the
     other three storms complete, the cache stays consistent, and the SAME
     pool then runs a clean follow-up batch (recovery). *)
  let cache = Lru.create ~capacity:8 in
  let lock = Mutex.create () in
  let lookups = Array.init domains (fun _ -> ref 0) in
  let pool = Domain_pool.create ~size:domains in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let slots =
        Domain_pool.run_batch pool
          (Array.init domains (fun d () ->
               storm
                 ?crash_at:(if d = 2 then Some (ops_per_domain / 3) else None)
                 ~cache ~lock ~seed:(2000 + d) ~lookups:lookups.(d) ()))
      in
      Array.iteri
        (fun d r ->
          match (d, r) with
          | 2, Error (Failure m) when m = "storm crash" -> ()
          | 2, Ok () -> Alcotest.fail "slot 2 should have crashed"
          | 2, Error e -> Alcotest.failf "slot 2 wrong error: %s" (Printexc.to_string e)
          | _, Ok () -> ()
          | d, Error e ->
            Alcotest.failf "sibling %d infected by crash: %s" d (Printexc.to_string e))
        slots;
      let st = Lru.stats cache in
      let total_lookups = Array.fold_left (fun a r -> a + !r) 0 lookups in
      Alcotest.(check int) "stats exact despite the crash" total_lookups
        (st.Lru.hits + st.Lru.misses);
      Alcotest.(check bool) "occupancy within capacity" true (st.Lru.entries <= 8);
      (* Recovery: the pool is reusable after a crashed slot. *)
      let again = Domain_pool.run_batch pool (Array.init domains (fun d () -> d * d)) in
      Array.iteri
        (fun d r ->
          match r with
          | Ok v -> Alcotest.(check int) "post-crash batch ok" (d * d) v
          | Error e -> Alcotest.failf "post-crash batch: %s" (Printexc.to_string e))
        again)

let test_concurrent_batches_on_shared_pool () =
  (* Several spawner domains drive run_batch on ONE pool at once — the
     service shape: concurrent drains share workers.  Every batch must get
     exactly its own results back. *)
  let pool = Domain_pool.create ~size:domains in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      let spawners =
        Array.init 3 (fun s ->
            Domain.spawn (fun () ->
                let ok = ref true in
                for round = 0 to 19 do
                  let tasks = Array.init 8 (fun i () -> (s * 10_000) + (round * 100) + i) in
                  let slots = Domain_pool.run_batch pool tasks in
                  Array.iteri
                    (fun i r ->
                      match r with
                      | Ok v -> if v <> (s * 10_000) + (round * 100) + i then ok := false
                      | Error _ -> ok := false)
                    slots
                done;
                !ok))
      in
      Array.iteri
        (fun s d ->
          Alcotest.(check bool) (Printf.sprintf "spawner %d saw only its results" s) true
            (Domain.join d))
        spawners)

(* ---- duplicate in-flight requests through the server ---- *)

let hy () = H.create ~degs:[| 2; 2 |] ~cm:[| 10.; 3.; 0. |] ~leaf_capacity:1.0

let mk_instance seed =
  let rng = Prng.create seed in
  let g = Gen.gnp_connected rng 12 0.4 in
  Instance.uniform_demands g (hy ()) ~load_factor:0.6

let solved (r : Protocol.response) =
  match r.Protocol.outcome with
  | Protocol.Solved s -> s
  | Protocol.Updated _ ->
    Alcotest.failf "request %s answered as an update" r.Protocol.id
  | Protocol.Failed e ->
    Alcotest.failf "request %s failed: %s" r.Protocol.id (Hgp_error.to_string e)

let test_duplicate_requests_under_storm () =
  (* 4 distinct instances x 4 in-flight duplicates over 4 workers, twice.
     Within a drain duplicates must be bit-identical; the second (warm)
     drain must reproduce the first bit-for-bit and be served from the
     packed cache. *)
  Pipeline.clear_caches ();
  Pipeline.reset_cache_stats ();
  let server =
    Server.create ~config:{ Server.workers = domains; queue_limit = 64; slack = 1.25 } ()
  in
  let submit_round () =
    for dup = 0 to 3 do
      for i = 0 to 3 do
        match
          Server.submit server
            (Protocol.inline_request
               ~id:(Printf.sprintf "i%d-d%d" i dup)
               ~trees:2 ~seed:(50 + i) (mk_instance (50 + i)))
        with
        | `Admitted -> ()
        | `Rejected r ->
          Alcotest.failf "unexpected rejection: %s" (Protocol.response_to_line r)
      done
    done;
    Server.drain server
  in
  let first = submit_round () in
  let second = submit_round () in
  Alcotest.(check int) "16 responses" 16 (List.length first);
  let assignment_of responses id =
    match List.find_opt (fun (r : Protocol.response) -> r.Protocol.id = id) responses with
    | Some r -> (solved r).Protocol.assignment
    | None -> Alcotest.failf "missing response %s" id
  in
  for i = 0 to 3 do
    let leader = assignment_of first (Printf.sprintf "i%d-d0" i) in
    for dup = 1 to 3 do
      Alcotest.(check bool) "duplicates bit-identical in flight" true
        (assignment_of first (Printf.sprintf "i%d-d%d" i dup) = leader)
    done;
    (* Across drains: warm equals cold. *)
    for dup = 0 to 3 do
      Alcotest.(check bool) "warm re-drain bit-identical" true
        (assignment_of second (Printf.sprintf "i%d-d%d" i dup) = leader)
    done
  done;
  (* The second drain's leaders hit the packed cache: every response of the
     warm round is a cache hit. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "warm round all cache hits" true (solved r).Protocol.cache_hit)
    second;
  let st = Server.stats server in
  Alcotest.(check int) "all ok" 32 st.Server.ok;
  Alcotest.(check int) "coalesced 3 followers x 4 keys x 2 drains" 24 st.Server.coalesced;
  Alcotest.(check int) "response conservation" st.Server.admitted
    (st.Server.ok + st.Server.errors);
  ignore (Server.shutdown server)

let () =
  Alcotest.run "server_stress"
    [
      ( "storm",
        [
          Alcotest.test_case "lru storm" `Quick test_lru_storm;
          Alcotest.test_case "crash slot mid-storm" `Quick test_crash_slot_mid_storm;
          Alcotest.test_case "concurrent batches" `Quick test_concurrent_batches_on_shared_pool;
          Alcotest.test_case "duplicate requests" `Quick test_duplicate_requests_under_storm;
        ] );
    ]
